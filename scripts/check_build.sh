#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
#   scripts/check_build.sh          # tier-1 build + full ctest
#   scripts/check_build.sh --asan   # additionally run obs/sim/arena tests under
#                                   # AddressSanitizer (-DFGCS_SANITIZE=address)
#   scripts/check_build.sh --bench  # additionally run the sim-core benchmark
#                                   # suite with its regression gate
#                                   # (scripts/run_bench.sh --check-only)
#   scripts/check_build.sh --chaos  # additionally run the fault-injection /
#                                   # robustness suites under
#                                   # -DFGCS_SANITIZE=address,undefined, plus
#                                   # the kill(-9) crash harness (--crash)
#   scripts/check_build.sh --crash  # additionally run the crash-injection
#                                   # harness (tools/fgcs_crashtest): SIGKILL a
#                                   # checkpointed sweep at randomized commit
#                                   # points, resume, and require bit-identical
#                                   # output across >= 20 kill points
#   scripts/check_build.sh --fuzz   # additionally run the deterministic fuzz
#                                   # driver (10k iterations per target) under
#                                   # -DFGCS_SANITIZE=address,undefined
#   scripts/check_build.sh --tsan   # additionally run the fleet sweep engine,
#                                   # thread-pool, parallel-prediction,
#                                   # parallel-query-scan, and arena/knob
#                                   # suites under -DFGCS_SANITIZE=thread
#
# The fgcs_obs module itself always compiles with -Werror (see
# src/fgcs/obs/CMakeLists.txt), so the observability layer stays clean
# under -Wall -Wextra -Wpedantic in every build this script runs.
set -euo pipefail

cd "$(dirname "$0")/.."

run_asan=0
run_bench=0
run_chaos=0
run_crash=0
run_fuzz=0
run_tsan=0
for arg in "$@"; do
  case "$arg" in
    --asan) run_asan=1 ;;
    --bench) run_bench=1 ;;
    --chaos) run_chaos=1; run_crash=1 ;;
    --crash) run_crash=1 ;;
    --fuzz) run_fuzz=1 ;;
    --tsan) run_tsan=1 ;;
    *) echo "usage: $0 [--asan] [--bench] [--chaos] [--crash] [--fuzz] [--tsan]" >&2
       exit 2 ;;
  esac
done

echo "== tier-1: lint =="
scripts/lint_determinism.sh

echo "== tier-1: configure + build =="
cmake -B build -S . -DFGCS_WERROR=OFF
cmake --build build -j

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "$run_asan" -eq 1 ]]; then
  echo "== asan: configure + build =="
  cmake -B build-asan -S . -DFGCS_SANITIZE=address
  cmake --build build-asan -j

  echo "== asan: obs + sim + arena tests =="
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
    -R '^(Obs|TraceSink|JsonEscape|Observer|Counter|Gauge|Histogram|Metric|Simulation|EventQueue|SimTime|SimDuration|Arena|Knobs)'
fi

if [[ "$run_chaos" -eq 1 ]]; then
  echo "== chaos: configure + build (address,undefined) =="
  cmake -B build-chaos -S . -DFGCS_SANITIZE=address,undefined
  cmake --build build-chaos -j

  echo "== chaos: fault-injection + robustness suites =="
  ctest --test-dir build-chaos --output-on-failure -j "$(nproc)" \
    -R '^(FaultPlan|FaultInjector|MachineFaultSession|FaultChaos|GuestStudy|GuestController|CheckpointPolicy|ControllerFixture|TraceSalvage)'
fi

if [[ "$run_crash" -eq 1 ]]; then
  echo "== crash: kill(-9) + resume bit-identity harness =="
  cmake --build build -j --target fgcs_crashtest
  build/tools/fgcs_crashtest --points 20 --machines 16 --days 4 \
    --dir build/crash_harness.tmp
fi

if [[ "$run_fuzz" -eq 1 ]]; then
  echo "== fuzz: configure + build (address,undefined) =="
  cmake -B build-fuzz -S . -DFGCS_SANITIZE=address,undefined
  cmake --build build-fuzz -j --target fgcs_fuzz_driver

  echo "== fuzz: deterministic driver, 10k iterations per target =="
  build-fuzz/tests/fuzz/fgcs_fuzz_driver \
    --target all --corpus tests/fuzz/corpus --iterations 10000 --seed 20060806
fi

if [[ "$run_tsan" -eq 1 ]]; then
  echo "== tsan: configure + build (thread) =="
  cmake -B build-tsan -S . -DFGCS_SANITIZE=thread
  cmake --build build-tsan -j

  echo "== tsan: fleet + parallel + columnar + serve + query suites =="
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
    -R '^(Fleet|TraceV2|PredictParallel|ObsShard|ObsFlightRecorder|ThreadPool|ParallelFor|Testbed|Arena|Knobs|Serve|Query)'
fi

if [[ "$run_bench" -eq 1 ]]; then
  echo "== bench: sim-core suite + regression gate =="
  scripts/run_bench.sh --check-only

  echo "== bench: fleet telemetry overhead budget =="
  # Budget the telemetry's *absolute* cost per machine-day, not a percent
  # of sweep wall time: the columnar engine made the sweep ~30x faster,
  # so a relative budget would flag sim speedups as telemetry regressions.
  # Measured cost is ~4 us/machine-day; 15 us leaves shared-host headroom
  # while still catching a real hook-cost regression.
  usec_per_md="$(awk '
    match($0, /"fleet_telemetry_machines": [0-9.]+/)   { m = substr($0, RSTART + 27, RLENGTH - 27) }
    match($0, /"fleet_telemetry_days": [0-9.]+/)       { d = substr($0, RSTART + 23, RLENGTH - 23) }
    match($0, /"fleet_telemetry_alloc_ms": [0-9.]+/)   { a = substr($0, RSTART + 27, RLENGTH - 27) }
    match($0, /"fleet_telemetry_collect_ms": [0-9.]+/) { c = substr($0, RSTART + 29, RLENGTH - 29) }
    match($0, /"fleet_telemetry_write_ms": [0-9.]+/)   { w = substr($0, RSTART + 27, RLENGTH - 27) }
    END { if (m && d) printf "%.2f", (a + c + w) * 1000.0 / (m * d) }
  ' build/BENCH_obs.latest.json)"
  if [[ -z "$usec_per_md" ]]; then
    echo "check_build: FAIL — build/BENCH_obs.latest.json is missing the" \
         "fleet_telemetry_* phase fields (run_bench.sh should write them)" >&2
    exit 1
  fi
  echo "gate: fleet telemetry phase-accounted cost ${usec_per_md} us/machine-day (budget 15)"
  if awk -v o="$usec_per_md" 'BEGIN { exit !(o >= 15.0) }'; then
    echo "check_build: FAIL — enabled-telemetry fleet cost ${usec_per_md}" \
         "us/machine-day exceeds the 15 us budget" >&2
    exit 1
  fi
fi

if [[ "$run_bench" -eq 1 ]]; then
  echo "== bench: serve suite scale gate =="
  # The serving layer's headline claim is absolute, not relative: the
  # committed BENCH_serve.json must come from >= 1M queries against a
  # >= 2000-machine fleet. A smaller run would make the qps/p99 gates
  # meaningless, so it fails here regardless of how fast it was.
  serve_json="build/BENCH_serve.latest.json"
  serve_queries="$(sed -n 's/.*"serve_queries": \([0-9]*\).*/\1/p' "$serve_json")"
  serve_machines="$(sed -n 's/.*"serve_machines": \([0-9]*\).*/\1/p' "$serve_json")"
  echo "gate: serve load ${serve_queries:-<missing>} queries over ${serve_machines:-<missing>} machines (need >= 1000000 / >= 2000)"
  if [[ -z "$serve_queries" || -z "$serve_machines" ]] || \
     [[ "$serve_queries" -lt 1000000 || "$serve_machines" -lt 2000 ]]; then
    echo "check_build: FAIL — serve bench below the 1M-query / 2000-machine floor" >&2
    exit 1
  fi
fi

if [[ "$run_bench" -eq 1 ]]; then
  echo "== bench: query suite scale gate =="
  # The streaming-analytics claim is also absolute: the committed
  # BENCH_query.json must come from a >= 1,000,000-machine spill, and the
  # scan's peak RSS must sit under a fixed budget — O(shard + block)
  # memory is the engine's contract, so a fleet-sized RSS is a failure
  # no matter how fast the scan was.
  query_json="build/BENCH_query.latest.json"
  query_machines="$(sed -n 's/.*"query_machines": \([0-9]*\).*/\1/p' "$query_json")"
  query_rss="$(sed -n 's/.*"query_full_scan_peak_rss_mb": \([0-9.]*\).*/\1/p' "$query_json")"
  echo "gate: query bench ${query_machines:-<missing>} machines, full-scan peak RSS ${query_rss:-<missing>} MB (need >= 1000000 machines, RSS <= 256 MB)"
  if [[ -z "$query_machines" || -z "$query_rss" ]] || \
     [[ "$query_machines" -lt 1000000 ]] || \
     awk -v r="$query_rss" 'BEGIN { exit !(r > 256.0) }'; then
    echo "check_build: FAIL — query bench below the 1M-machine floor or" \
         "over the 256 MB scan-RSS budget" >&2
    exit 1
  fi
fi

echo "check_build: OK"

#!/usr/bin/env bash
# Sim-core benchmark runner with a regression gate.
#
#   scripts/run_bench.sh                # build Release, run the suite,
#                                       # refresh BENCH_simcore.json
#   scripts/run_bench.sh --check-only   # run + gate, do NOT overwrite the
#                                       # committed baseline
#
# Runs `perf_microbench --all`, which writes BENCH_simcore.json (sim-core
# fast-path suite) and BENCH_obs.json (observability overhead baseline).
# If a committed BENCH_simcore.json baseline exists, the script fails when
# event-queue throughput regresses more than 20% below it — enough slack
# to absorb shared-host noise while still catching real regressions.
#
# docs/performance.md explains every field in the JSON outputs.
set -euo pipefail

cd "$(dirname "$0")/.."

check_only=0
for arg in "$@"; do
  case "$arg" in
    --check-only) check_only=1 ;;
    *) echo "usage: $0 [--check-only]" >&2; exit 2 ;;
  esac
done

baseline_events_per_sec=""
if [[ -f BENCH_simcore.json ]]; then
  baseline_events_per_sec="$(sed -n \
    's/.*"event_queue_events_per_sec": \([0-9.]*\).*/\1/p' BENCH_simcore.json)"
fi

echo "== bench: configure + build (Release) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DFGCS_WERROR=OFF
cmake --build build -j --target perf_microbench

echo "== bench: sim-core suite =="
out="BENCH_simcore.json"
obs_out="BENCH_obs.json"
if [[ "$check_only" -eq 1 ]]; then
  out="$(mktemp /tmp/BENCH_simcore.XXXXXX.json)"
  obs_out="$(mktemp /tmp/BENCH_obs.XXXXXX.json)"
fi
./build/bench/perf_microbench --simcore="$out" --obs-baseline="$obs_out"
echo
cat "$out"
echo

if [[ -n "$baseline_events_per_sec" ]]; then
  current="$(sed -n \
    's/.*"event_queue_events_per_sec": \([0-9.]*\).*/\1/p' "$out")"
  floor="$(awk -v b="$baseline_events_per_sec" 'BEGIN { printf "%.0f", b * 0.8 }')"
  echo "gate: event queue ${current} ev/s vs committed baseline" \
       "${baseline_events_per_sec} ev/s (floor ${floor})"
  if awk -v c="$current" -v f="$floor" 'BEGIN { exit !(c < f) }'; then
    echo "run_bench: FAIL — event-queue throughput regressed >20%" >&2
    exit 1
  fi
else
  echo "gate: no committed BENCH_simcore.json baseline; skipping"
fi

echo "run_bench: OK"

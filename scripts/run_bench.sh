#!/usr/bin/env bash
# Sim-core benchmark runner with a regression gate.
#
#   scripts/run_bench.sh                # build Release, run the suite,
#                                       # refresh BENCH_simcore.json
#   scripts/run_bench.sh --check-only   # run + gate, do NOT overwrite the
#                                       # committed baseline
#
# Runs `perf_microbench --all`, which writes BENCH_simcore.json (sim-core
# fast-path suite), BENCH_obs.json (observability overhead baseline),
# BENCH_fleet.json (sharded fleet sweep: threads sweep, peak RSS, the
# full 2,000-machine x 92-day run), BENCH_serve.json (online
# availability service: live ingest + a million-query load), and
# BENCH_query.json (streaming analytics: the full aggregation pass over
# a million-machine spill). If a committed baseline exists, the script
# fails when event-queue throughput, single-thread fleet
# machine-days/sec, serve queries/sec, or single-thread query
# records/sec regresses more than 20% below it — enough slack to
# absorb shared-host noise while still catching real regressions.
# Absolute gates ride along: the columnar steady state must allocate
# zero, per-shard checkpointing may cost at most 3% of a spilled
# sweep's wall time, the query scan's peak RSS must stay under a fixed
# ceiling (O(shard), never O(fleet)), and the selective query must skip
# at least 90% of blocks via pushdown. The query throughput gate is
# single-thread only: the bench box exposes one hardware thread, so
# parallel-scan scaling is not measurable here (scaling_note in the
# JSON records this).
#
# docs/performance.md explains every field in the JSON outputs.
set -euo pipefail

cd "$(dirname "$0")/.."

check_only=0
for arg in "$@"; do
  case "$arg" in
    --check-only) check_only=1 ;;
    *) echo "usage: $0 [--check-only]" >&2; exit 2 ;;
  esac
done

baseline_events_per_sec=""
if [[ -f BENCH_simcore.json ]]; then
  baseline_events_per_sec="$(sed -n \
    's/.*"event_queue_events_per_sec": \([0-9.]*\).*/\1/p' BENCH_simcore.json)"
fi
baseline_fleet_md_per_sec=""
if [[ -f BENCH_fleet.json ]]; then
  baseline_fleet_md_per_sec="$(sed -n \
    's/.*"single_thread_machine_days_per_sec": \([0-9.]*\).*/\1/p' \
    BENCH_fleet.json)"
fi
baseline_obs_events_per_sec=""
if [[ -f BENCH_obs.json ]]; then
  baseline_obs_events_per_sec="$(sed -n \
    's/.*"observer_enabled_events_per_sec": \([0-9.]*\).*/\1/p' \
    BENCH_obs.json)"
fi
baseline_serve_qps=""
baseline_serve_p99=""
if [[ -f BENCH_serve.json ]]; then
  baseline_serve_qps="$(sed -n \
    's/.*"serve_queries_per_sec": \([0-9.]*\).*/\1/p' BENCH_serve.json)"
  baseline_serve_p99="$(sed -n \
    's/.*"serve_latency_p99_us": \([0-9.]*\).*/\1/p' BENCH_serve.json)"
fi
baseline_query_rps=""
if [[ -f BENCH_query.json ]]; then
  baseline_query_rps="$(sed -n \
    's/.*"query_single_thread_records_per_sec": \([0-9.]*\).*/\1/p' \
    BENCH_query.json)"
fi

echo "== bench: configure + build (Release) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DFGCS_WERROR=OFF
cmake --build build -j --target perf_microbench

echo "== bench: sim-core + fleet suites =="
out="BENCH_simcore.json"
obs_out="BENCH_obs.json"
fleet_out="BENCH_fleet.json"
serve_out="BENCH_serve.json"
query_out="BENCH_query.json"
if [[ "$check_only" -eq 1 ]]; then
  out="$(mktemp /tmp/BENCH_simcore.XXXXXX.json)"
  obs_out="$(mktemp /tmp/BENCH_obs.XXXXXX.json)"
  fleet_out="$(mktemp /tmp/BENCH_fleet.XXXXXX.json)"
  serve_out="$(mktemp /tmp/BENCH_serve.XXXXXX.json)"
  query_out="$(mktemp /tmp/BENCH_query.XXXXXX.json)"
fi
./build/bench/perf_microbench --simcore="$out" --obs-baseline="$obs_out" \
  --fleet="$fleet_out" --serve="$serve_out" --query="$query_out"
# Keep the freshest obs + serve + query numbers where check_build.sh
# --bench can assert on them regardless of --check-only (the committed
# baseline is only refreshed on a full run).
cp "$obs_out" build/BENCH_obs.latest.json
cp "$serve_out" build/BENCH_serve.latest.json
cp "$query_out" build/BENCH_query.latest.json
echo
cat "$out"
echo
cat "$obs_out"
echo
cat "$fleet_out"
echo
cat "$serve_out"
echo
cat "$query_out"
echo

if [[ -n "$baseline_events_per_sec" ]]; then
  current="$(sed -n \
    's/.*"event_queue_events_per_sec": \([0-9.]*\).*/\1/p' "$out")"
  floor="$(awk -v b="$baseline_events_per_sec" 'BEGIN { printf "%.0f", b * 0.8 }')"
  echo "gate: event queue ${current} ev/s vs committed baseline" \
       "${baseline_events_per_sec} ev/s (floor ${floor})"
  if awk -v c="$current" -v f="$floor" 'BEGIN { exit !(c < f) }'; then
    echo "run_bench: FAIL — event-queue throughput regressed >20%" >&2
    exit 1
  fi
else
  echo "gate: no committed BENCH_simcore.json baseline; skipping"
fi

# The columnar engine's zero-allocation steady state is an invariant, not
# a noisy measurement: after warm-up a machine-day must perform zero heap
# allocations. Any nonzero count is a hard failure.
allocs_per_md="$(sed -n \
  's/.*"steady_state_allocs_per_machine_day": \([0-9.]*\).*/\1/p' \
  "$fleet_out")"
echo "gate: steady-state allocations ${allocs_per_md:-<missing>} per machine-day (must be 0)"
if [[ -z "$allocs_per_md" ]] || \
   awk -v a="$allocs_per_md" 'BEGIN { exit !(a > 0) }'; then
  echo "run_bench: FAIL — columnar engine allocated on the steady-state path" >&2
  exit 1
fi

# Crash tolerance must stay effectively free: the per-shard commit
# (state blob + atomic manifest rewrite, plus the one sweep-final durable
# sync), measured by replaying the full sweep's commit sequence, may cost
# at most 3% of the measured full-sweep wall time.
ckpt_overhead="$(sed -n \
  's/.*"checkpoint_overhead_percent": \(-\{0,1\}[0-9.]*\).*/\1/p' \
  "$fleet_out")"
echo "gate: checkpoint overhead ${ckpt_overhead:-<missing>}% of spilled sweep wall (budget 3%)"
if [[ -z "$ckpt_overhead" ]] || \
   awk -v o="$ckpt_overhead" 'BEGIN { exit !(o >= 3.0) }'; then
  echo "run_bench: FAIL — per-shard checkpointing costs ${ckpt_overhead:-<missing>}%" \
       "of sweep wall time, over the 3% budget" >&2
  exit 1
fi

if [[ -n "$baseline_fleet_md_per_sec" ]]; then
  current_fleet="$(sed -n \
    's/.*"single_thread_machine_days_per_sec": \([0-9.]*\).*/\1/p' \
    "$fleet_out")"
  fleet_floor="$(awk -v b="$baseline_fleet_md_per_sec" \
    'BEGIN { printf "%.0f", b * 0.8 }')"
  echo "gate: fleet ${current_fleet} machine-days/s vs committed baseline" \
       "${baseline_fleet_md_per_sec} machine-days/s (floor ${fleet_floor})"
  if awk -v c="$current_fleet" -v f="$fleet_floor" 'BEGIN { exit !(c < f) }'; then
    echo "run_bench: FAIL — fleet sweep throughput regressed >20%" >&2
    exit 1
  fi
else
  echo "gate: no committed BENCH_fleet.json baseline; skipping"
fi

if [[ -n "$baseline_obs_events_per_sec" ]]; then
  current_obs="$(sed -n \
    's/.*"observer_enabled_events_per_sec": \([0-9.]*\).*/\1/p' "$obs_out")"
  obs_floor="$(awk -v b="$baseline_obs_events_per_sec" \
    'BEGIN { printf "%.0f", b * 0.8 }')"
  echo "gate: observer-enabled event queue ${current_obs} ev/s vs committed" \
       "baseline ${baseline_obs_events_per_sec} ev/s (floor ${obs_floor})"
  if awk -v c="$current_obs" -v f="$obs_floor" 'BEGIN { exit !(c < f) }'; then
    echo "run_bench: FAIL — observer-enabled event-queue throughput" \
         "regressed >20% (telemetry hook cost grew)" >&2
    exit 1
  fi
else
  echo "gate: no committed BENCH_obs.json baseline; skipping"
fi

if [[ -n "$baseline_serve_qps" ]]; then
  current_qps="$(sed -n \
    's/.*"serve_queries_per_sec": \([0-9.]*\).*/\1/p' "$serve_out")"
  qps_floor="$(awk -v b="$baseline_serve_qps" 'BEGIN { printf "%.0f", b * 0.8 }')"
  echo "gate: serve ${current_qps} queries/s vs committed baseline" \
       "${baseline_serve_qps} queries/s (floor ${qps_floor})"
  if awk -v c="$current_qps" -v f="$qps_floor" 'BEGIN { exit !(c < f) }'; then
    echo "run_bench: FAIL — serve query throughput regressed >20%" >&2
    exit 1
  fi
else
  echo "gate: no committed BENCH_serve.json baseline; skipping"
fi

# Tail latency gets a looser 2x ceiling: p99 on a shared host is noisier
# than throughput, but an order-of-magnitude blowup (a lock on the read
# path, an accidental deep copy per query) must still fail the gate.
if [[ -n "$baseline_serve_p99" ]]; then
  current_p99="$(sed -n \
    's/.*"serve_latency_p99_us": \([0-9.]*\).*/\1/p' "$serve_out")"
  p99_ceiling="$(awk -v b="$baseline_serve_p99" 'BEGIN { printf "%.4f", b * 2.0 }')"
  echo "gate: serve p99 ${current_p99}us vs committed baseline" \
       "${baseline_serve_p99}us (ceiling ${p99_ceiling}us)"
  if awk -v c="$current_p99" -v f="$p99_ceiling" 'BEGIN { exit !(c > f) }'; then
    echo "run_bench: FAIL — serve p99 query latency more than doubled" >&2
    exit 1
  fi
fi

if [[ -n "$baseline_query_rps" ]]; then
  current_query="$(sed -n \
    's/.*"query_single_thread_records_per_sec": \([0-9.]*\).*/\1/p' \
    "$query_out")"
  query_floor="$(awk -v b="$baseline_query_rps" 'BEGIN { printf "%.0f", b * 0.8 }')"
  echo "gate: query scan ${current_query} records/s (single thread) vs" \
       "committed baseline ${baseline_query_rps} records/s (floor ${query_floor})"
  if awk -v c="$current_query" -v f="$query_floor" 'BEGIN { exit !(c < f) }'; then
    echo "run_bench: FAIL — query scan throughput regressed >20%" >&2
    exit 1
  fi
else
  echo "gate: no committed BENCH_query.json baseline; skipping"
fi

# The streaming engine's memory bound is an invariant: scanning a
# million-machine spill must hold peak RSS O(shard + block), never
# O(fleet). A fixed absolute ceiling (not a relative drift gate) catches
# any accidental materialization — the measured scan sits under 100 MB
# while materializing the fleet would need several hundred.
query_rss_ceiling_mb=256
query_rss="$(sed -n \
  's/.*"query_full_scan_peak_rss_mb": \([0-9.]*\).*/\1/p' "$query_out")"
echo "gate: query full-scan peak RSS ${query_rss:-<missing>} MB (ceiling ${query_rss_ceiling_mb} MB)"
if [[ -z "$query_rss" ]] || \
   awk -v r="$query_rss" -v c="$query_rss_ceiling_mb" 'BEGIN { exit !(r > c) }'; then
  echo "run_bench: FAIL — query scan peak RSS ${query_rss:-<missing>} MB" \
       "breaches the ${query_rss_ceiling_mb} MB O(shard) ceiling" >&2
  exit 1
fi

# Pushdown effectiveness: the tracked 1%-of-machines predicate must skip
# at least 90% of blocks via footer machine ranges + zone maps.
query_skip="$(sed -n \
  's/.*"query_selective_blocks_skipped_fraction": \([0-9.]*\).*/\1/p' \
  "$query_out")"
echo "gate: query selective scan skips ${query_skip:-<missing>} of blocks (floor 0.90)"
if [[ -z "$query_skip" ]] || \
   awk -v s="$query_skip" 'BEGIN { exit !(s < 0.90) }'; then
  echo "run_bench: FAIL — selective query pushdown skipped only" \
       "${query_skip:-<missing>} of blocks, under the 0.90 floor" >&2
  exit 1
fi

echo "run_bench: OK"

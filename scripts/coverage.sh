#!/usr/bin/env bash
# Line-coverage gate for the fgcs library sources.
#
#   scripts/coverage.sh               # build, test, report, enforce floor
#   FGCS_COVERAGE_FLOOR=80 scripts/coverage.sh
#   scripts/coverage.sh --report-only # skip the floor check (just print)
#
# Builds with -DFGCS_COVERAGE=ON (GCC: --coverage -O0; Clang:
# -fprofile-instr-generate), runs the full ctest suite, then aggregates
# per-line execution counts with `gcov --json-format` across all
# translation units.  Coverage is measured over src/fgcs/** only — tests,
# tools, and third-party code are excluded.
#
# Tool fallbacks: prefers gcovr if installed (nicer report), else raw
# gcov + an inline aggregator; bails out gracefully when neither the
# compiler's coverage runtime nor gcov is present.
set -euo pipefail

cd "$(dirname "$0")/.."

floor="${FGCS_COVERAGE_FLOOR:-70}"
report_only=0
for arg in "$@"; do
  case "$arg" in
    --report-only) report_only=1 ;;
    *) echo "usage: $0 [--report-only]" >&2; exit 2 ;;
  esac
done

if ! command -v gcov >/dev/null 2>&1 && ! command -v gcovr >/dev/null 2>&1; then
  echo "coverage: neither gcov nor gcovr found; skipping (install gcc or gcovr)" >&2
  exit 0
fi

echo "== coverage: configure + build (-DFGCS_COVERAGE=ON) =="
cmake -B build-cov -S . -DFGCS_COVERAGE=ON -DFGCS_WERROR=OFF
cmake --build build-cov -j

echo "== coverage: run test suite =="
# Stale counters from a previous run would double-count.
find build-cov -name '*.gcda' -delete
ctest --test-dir build-cov -j "$(nproc)" --output-on-failure

echo "== coverage: aggregate =="
if command -v gcovr >/dev/null 2>&1; then
  gcovr --root . --filter 'src/fgcs/' build-cov --fail-under-line "$floor" \
    $([[ "$report_only" -eq 1 ]] && echo --fail-under-line 0)
  echo "coverage: OK (gcovr, floor ${floor}%)"
  exit 0
fi

percent=$(python3 - "$floor" <<'PY'
import json, os, subprocess, sys

covered = {}   # (source, line) -> hit?
for dirpath, _dirs, files in os.walk("build-cov"):
    if "_deps" in dirpath:
        continue
    for name in files:
        if not name.endswith(".gcda"):
            continue
        out = subprocess.run(
            ["gcov", "--stdout", "--json-format", os.path.join(dirpath, name)],
            capture_output=True, text=True)
        if out.returncode != 0 or not out.stdout:
            continue
        for chunk in out.stdout.splitlines():
            if not chunk.strip():
                continue
            try:
                data = json.loads(chunk)
            except json.JSONDecodeError:
                continue
            for f in data.get("files", []):
                src = os.path.normpath(f["file"])
                if not src.startswith("src/fgcs/"):
                    src = os.path.relpath(src, os.getcwd())
                if not src.startswith("src/fgcs/"):
                    continue
                for line in f.get("lines", []):
                    key = (src, line["line_number"])
                    covered[key] = covered.get(key, False) or line["count"] > 0

total = len(covered)
hit = sum(1 for v in covered.values() if v)
if total == 0:
    print("coverage: no instrumented lines under src/fgcs found", file=sys.stderr)
    sys.exit(3)

by_file = {}
for (src, _line), ok in covered.items():
    t, h = by_file.get(src, (0, 0))
    by_file[src] = (t + 1, h + (1 if ok else 0))
for src in sorted(by_file):
    t, h = by_file[src]
    print(f"  {100.0 * h / t:6.1f}%  {h:5d}/{t:<5d}  {src}", file=sys.stderr)

pct = 100.0 * hit / total
print(f"coverage: {pct:.1f}% of {total} lines under src/fgcs", file=sys.stderr)
print(f"{pct:.1f}")
PY
)

echo "== coverage: ${percent}% (floor ${floor}%) =="
if [[ "$report_only" -eq 1 ]]; then
  echo "coverage: report-only mode, floor not enforced"
  exit 0
fi
awk -v p="$percent" -v f="$floor" 'BEGIN { exit !(p + 0 >= f + 0) }' || {
  echo "coverage: FAILED — ${percent}% is below the ${floor}% floor" >&2
  exit 1
}
echo "coverage: OK"

#!/usr/bin/env python3
"""Plot the paper's figures from the CSV series exported by the CLI.

Usage:
    ./build/tools/fgcs figures --out figs/
    python3 scripts/plot_figures.py figs/ [--save out_dir]

Requires matplotlib (plots to screen by default, PNGs with --save).
Each plot mirrors the corresponding figure in Ren & Eigenmann (ICPP 2006).
"""
import argparse
import csv
import pathlib
import sys


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv_dir", type=pathlib.Path,
                        help="directory written by `fgcs figures --out`")
    parser.add_argument("--save", type=pathlib.Path, default=None,
                        help="write PNGs here instead of showing windows")
    args = parser.parse_args()

    try:
        import matplotlib
        if args.save:
            matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    def finish(fig, name):
        if args.save:
            args.save.mkdir(parents=True, exist_ok=True)
            fig.savefig(args.save / f"{name}.png", dpi=150,
                        bbox_inches="tight")
            print(f"wrote {args.save / name}.png")
        else:
            plt.show()

    d = args.csv_dir

    # Figure 1: reduction rate vs L_H per host-group size, two panels.
    rows = read_csv(d / "fig1.csv")
    fig, axes = plt.subplots(1, 2, figsize=(11, 4), sharey=True)
    for panel, ax, title in (("a", axes[0], "equal priority (Th1)"),
                             ("b", axes[1], "guest nice 19 (Th2)")):
        sizes = sorted({int(r["group_size"]) for r in rows})
        for m in sizes:
            pts = sorted(((float(r["lh"]), float(r["reduction"]))
                          for r in rows
                          if r["panel"] == panel and int(r["group_size"]) == m))
            ax.plot([p[0] for p in pts], [p[1] for p in pts],
                    marker="o", label=f"M={m}")
        ax.axhline(0.05, color="gray", linestyle="--", linewidth=1)
        ax.set_xlabel("host CPU usage in absence of guest (L_H)")
        ax.set_title(title)
        ax.legend(fontsize=7)
    axes[0].set_ylabel("reduction rate of host CPU usage")
    fig.suptitle("Figure 1: host slowdown under CPU contention")
    finish(fig, "fig1")

    # Figure 2: reduction vs L_H per guest priority.
    rows = read_csv(d / "fig2.csv")
    fig, ax = plt.subplots(figsize=(6, 4))
    for nice in sorted({int(r["guest_nice"]) for r in rows}):
        pts = sorted(((float(r["lh"]), float(r["reduction"]))
                      for r in rows if int(r["guest_nice"]) == nice))
        ax.plot([p[0] for p in pts], [p[1] for p in pts], marker="o",
                label=f"nice {nice}")
    ax.set_xlabel("L_H")
    ax.set_ylabel("reduction rate")
    ax.set_title("Figure 2: only nice 19 limits the guest")
    ax.legend(fontsize=7)
    finish(fig, "fig2")

    # Figure 6: interval-length CDFs.
    rows = read_csv(d / "fig6.csv")
    fig, ax = plt.subplots(figsize=(6, 4))
    xs = [float(r["hours"]) for r in rows]
    ax.plot(xs, [float(r["weekday_cdf"]) for r in rows], label="weekday")
    ax.plot(xs, [float(r["weekend_cdf"]) for r in rows], label="weekend")
    ax.set_xlabel("interval length (hours)")
    ax.set_ylabel("cumulative fraction")
    ax.set_title("Figure 6: availability-interval CDF")
    ax.legend()
    finish(fig, "fig6")

    # Figure 7: occurrences per hour with ranges.
    rows = read_csv(d / "fig7.csv")
    fig, axes = plt.subplots(1, 2, figsize=(11, 4), sharey=True)
    for ax, cls in ((axes[0], "weekday"), (axes[1], "weekend")):
        sel = [r for r in rows if r["day_class"] == cls]
        hours = [int(r["hour"]) + 1 for r in sel]
        means = [float(r["mean"]) for r in sel]
        lows = [float(r["mean"]) - float(r["min"]) for r in sel]
        highs = [float(r["max"]) - float(r["mean"]) for r in sel]
        ax.bar(hours, means, yerr=[lows, highs], capsize=2)
        ax.set_xlabel("hour of day")
        ax.set_title(cls)
    axes[0].set_ylabel("unavailability occurrences")
    fig.suptitle("Figure 7: occurrences per hour (mean + range)")
    finish(fig, "fig7")

    # Capacity profile (extension).
    rows = read_csv(d / "capacity.csv")
    fig, ax = plt.subplots(figsize=(6, 4))
    hours = [int(r["hour"]) for r in rows]
    ax.plot(hours, [float(r["weekday_cpu"]) for r in rows], label="weekday")
    ax.plot(hours, [float(r["weekend_cpu"]) for r in rows], label="weekend")
    ax.set_xlabel("hour of day")
    ax.set_ylabel("deliverable CPU fraction")
    ax.set_title("Extension: deliverable capacity by hour")
    ax.legend()
    finish(fig, "capacity")


if __name__ == "__main__":
    main()

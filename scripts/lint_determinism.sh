#!/usr/bin/env bash
# Determinism lint: the simulation core must be a pure function of its
# seeds.  Reject sources of hidden nondeterminism in the deterministic
# subtree (src/fgcs/{sim,os,core,fault,fleet,monitor,workload,util}):
#
#   - wall-clock reads   (std::chrono clocks, time(), gettimeofday, ...)
#   - libc / hardware RNG (rand, srand, random_device) — all randomness
#     must flow through util::RngStream keyed substreams
#   - unordered associative containers, whose iteration order varies
#     across libstdc++ versions and hash seeds
#
# A line may opt out with a trailing `NOLINT(determinism)` comment plus a
# justification; none exist today and new ones should be rare.
#
#   scripts/lint_determinism.sh          # exit 0 clean, 1 with findings
set -euo pipefail

cd "$(dirname "$0")/.."

# monitor, workload, and util joined the deterministic subtree when the
# columnar engine moved detector batching, load generation, and the arena
# allocator onto the per-machine hot path; recover joined with the
# checkpoint/resume path (a resumed sweep must be a pure function of the
# config plus the bytes on disk); serve joined when the online predictor
# service landed (snapshot contents and load-generator draws must be a
# pure function of the ingested records and the query seed — latency
# timing lives in bench/ and tools/, outside this subtree); query joined
# with the streaming analytics engine (a parallel segment scan must fold
# to bit-identical aggregates regardless of worker count or timing —
# scan-throughput clocks live in bench/ and tools/).
DIRS=(src/fgcs/sim src/fgcs/os src/fgcs/core src/fgcs/fault src/fgcs/fleet
      src/fgcs/monitor src/fgcs/workload src/fgcs/util src/fgcs/recover
      src/fgcs/serve src/fgcs/query)

# pattern<TAB>human-readable reason
RULES=$(cat <<'EOF'
std::chrono::(system_clock|steady_clock|high_resolution_clock)	wall-clock read; sim code must use sim::SimTime
\b(time|gettimeofday|clock_gettime|localtime|gmtime)\s*\(	wall-clock/libc time read; sim code must use sim::SimTime
\b(rand|srand|rand_r|drand48|lrand48)\s*\(	libc RNG; use util::RngStream keyed substreams
std::random_device	hardware RNG is nondeterministic; seed util::RngStream explicitly
std::unordered_(map|set|multimap|multiset)	unordered iteration order is not stable; use std::map/std::set or a sorted vector
EOF
)

status=0
while IFS=$'\t' read -r pattern reason; do
  [[ -z "$pattern" ]] && continue
  # -I skips binaries; filter suppressed lines and pure comment lines.
  if hits=$(grep -rnIE --include='*.hpp' --include='*.cpp' "$pattern" "${DIRS[@]}" \
      | grep -v 'NOLINT(determinism)' \
      | grep -vE '^[^:]+:[0-9]+:\s*(//|\*)'); then
    echo "lint_determinism: banned pattern '$pattern'" >&2
    echo "  reason: $reason" >&2
    echo "$hits" | sed 's/^/  /' >&2
    status=1
  fi
done <<< "$RULES"

if [[ "$status" -eq 0 ]]; then
  echo "lint_determinism: OK (${DIRS[*]})"
fi
exit "$status"

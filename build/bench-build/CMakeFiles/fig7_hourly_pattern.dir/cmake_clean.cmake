file(REMOVE_RECURSE
  "../bench/fig7_hourly_pattern"
  "../bench/fig7_hourly_pattern.pdb"
  "CMakeFiles/fig7_hourly_pattern.dir/fig7_hourly_pattern.cpp.o"
  "CMakeFiles/fig7_hourly_pattern.dir/fig7_hourly_pattern.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_hourly_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

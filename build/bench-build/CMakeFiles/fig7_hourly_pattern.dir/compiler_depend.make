# Empty compiler generated dependencies file for fig7_hourly_pattern.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig6_interval_cdf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig6_interval_cdf"
  "../bench/fig6_interval_cdf.pdb"
  "CMakeFiles/fig6_interval_cdf.dir/fig6_interval_cdf.cpp.o"
  "CMakeFiles/fig6_interval_cdf.dir/fig6_interval_cdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_interval_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for abl_threshold_sensitivity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/abl_threshold_sensitivity"
  "../bench/abl_threshold_sensitivity.pdb"
  "CMakeFiles/abl_threshold_sensitivity.dir/abl_threshold_sensitivity.cpp.o"
  "CMakeFiles/abl_threshold_sensitivity.dir/abl_threshold_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_threshold_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

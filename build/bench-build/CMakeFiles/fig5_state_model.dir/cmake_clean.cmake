file(REMOVE_RECURSE
  "../bench/fig5_state_model"
  "../bench/fig5_state_model.pdb"
  "CMakeFiles/fig5_state_model.dir/fig5_state_model.cpp.o"
  "CMakeFiles/fig5_state_model.dir/fig5_state_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_state_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

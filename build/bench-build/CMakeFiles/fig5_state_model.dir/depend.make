# Empty dependencies file for fig5_state_model.
# This may be replaced when dependencies are built.

# Empty dependencies file for ext_enterprise_testbed.
# This may be replaced when dependencies are built.

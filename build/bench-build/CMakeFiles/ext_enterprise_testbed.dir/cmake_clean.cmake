file(REMOVE_RECURSE
  "../bench/ext_enterprise_testbed"
  "../bench/ext_enterprise_testbed.pdb"
  "CMakeFiles/ext_enterprise_testbed.dir/ext_enterprise_testbed.cpp.o"
  "CMakeFiles/ext_enterprise_testbed.dir/ext_enterprise_testbed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_enterprise_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for abl_suspend_window.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/abl_suspend_window"
  "../bench/abl_suspend_window.pdb"
  "CMakeFiles/abl_suspend_window.dir/abl_suspend_window.cpp.o"
  "CMakeFiles/abl_suspend_window.dir/abl_suspend_window.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_suspend_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for abl_scheduler_params.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/abl_scheduler_params"
  "../bench/abl_scheduler_params.pdb"
  "CMakeFiles/abl_scheduler_params.dir/abl_scheduler_params.cpp.o"
  "CMakeFiles/abl_scheduler_params.dir/abl_scheduler_params.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_scheduler_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

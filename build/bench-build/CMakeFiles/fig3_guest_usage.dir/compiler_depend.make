# Empty compiler generated dependencies file for fig3_guest_usage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig3_guest_usage"
  "../bench/fig3_guest_usage.pdb"
  "CMakeFiles/fig3_guest_usage.dir/fig3_guest_usage.cpp.o"
  "CMakeFiles/fig3_guest_usage.dir/fig3_guest_usage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_guest_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table2_unavailability_causes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/table2_unavailability_causes"
  "../bench/table2_unavailability_causes.pdb"
  "CMakeFiles/table2_unavailability_causes.dir/table2_unavailability_causes.cpp.o"
  "CMakeFiles/table2_unavailability_causes.dir/table2_unavailability_causes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_unavailability_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

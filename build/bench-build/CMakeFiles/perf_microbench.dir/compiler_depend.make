# Empty compiler generated dependencies file for perf_microbench.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ext_capacity_profile"
  "../bench/ext_capacity_profile.pdb"
  "CMakeFiles/ext_capacity_profile.dir/ext_capacity_profile.cpp.o"
  "CMakeFiles/ext_capacity_profile.dir/ext_capacity_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_capacity_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ext_capacity_profile.
# This may be replaced when dependencies are built.

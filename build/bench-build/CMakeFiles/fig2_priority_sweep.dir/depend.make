# Empty dependencies file for fig2_priority_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig2_priority_sweep"
  "../bench/fig2_priority_sweep.pdb"
  "CMakeFiles/fig2_priority_sweep.dir/fig2_priority_sweep.cpp.o"
  "CMakeFiles/fig2_priority_sweep.dir/fig2_priority_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_priority_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig4_mixed_contention.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig4_mixed_contention"
  "../bench/fig4_mixed_contention.pdb"
  "CMakeFiles/fig4_mixed_contention.dir/fig4_mixed_contention.cpp.o"
  "CMakeFiles/fig4_mixed_contention.dir/fig4_mixed_contention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mixed_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ext_checkpointing.
# This may be replaced when dependencies are built.

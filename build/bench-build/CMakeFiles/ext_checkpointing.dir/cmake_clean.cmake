file(REMOVE_RECURSE
  "../bench/ext_checkpointing"
  "../bench/ext_checkpointing.pdb"
  "CMakeFiles/ext_checkpointing.dir/ext_checkpointing.cpp.o"
  "CMakeFiles/ext_checkpointing.dir/ext_checkpointing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_checkpointing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

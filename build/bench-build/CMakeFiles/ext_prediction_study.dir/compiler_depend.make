# Empty compiler generated dependencies file for ext_prediction_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ext_prediction_study"
  "../bench/ext_prediction_study.pdb"
  "CMakeFiles/ext_prediction_study.dir/ext_prediction_study.cpp.o"
  "CMakeFiles/ext_prediction_study.dir/ext_prediction_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_prediction_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

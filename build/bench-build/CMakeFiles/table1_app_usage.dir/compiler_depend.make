# Empty compiler generated dependencies file for table1_app_usage.
# This may be replaced when dependencies are built.

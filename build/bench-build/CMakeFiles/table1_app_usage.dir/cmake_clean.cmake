file(REMOVE_RECURSE
  "../bench/table1_app_usage"
  "../bench/table1_app_usage.pdb"
  "CMakeFiles/table1_app_usage.dir/table1_app_usage.cpp.o"
  "CMakeFiles/table1_app_usage.dir/table1_app_usage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_app_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

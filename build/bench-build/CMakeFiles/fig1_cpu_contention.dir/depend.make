# Empty dependencies file for fig1_cpu_contention.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig1_cpu_contention"
  "../bench/fig1_cpu_contention.pdb"
  "CMakeFiles/fig1_cpu_contention.dir/fig1_cpu_contention.cpp.o"
  "CMakeFiles/fig1_cpu_contention.dir/fig1_cpu_contention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_cpu_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

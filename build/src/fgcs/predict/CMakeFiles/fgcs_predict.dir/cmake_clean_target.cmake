file(REMOVE_RECURSE
  "libfgcs_predict.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fgcs_predict.dir/baselines.cpp.o"
  "CMakeFiles/fgcs_predict.dir/baselines.cpp.o.d"
  "CMakeFiles/fgcs_predict.dir/evaluation.cpp.o"
  "CMakeFiles/fgcs_predict.dir/evaluation.cpp.o.d"
  "CMakeFiles/fgcs_predict.dir/history_window.cpp.o"
  "CMakeFiles/fgcs_predict.dir/history_window.cpp.o.d"
  "CMakeFiles/fgcs_predict.dir/interval_estimator.cpp.o"
  "CMakeFiles/fgcs_predict.dir/interval_estimator.cpp.o.d"
  "CMakeFiles/fgcs_predict.dir/predictor.cpp.o"
  "CMakeFiles/fgcs_predict.dir/predictor.cpp.o.d"
  "CMakeFiles/fgcs_predict.dir/robust_history.cpp.o"
  "CMakeFiles/fgcs_predict.dir/robust_history.cpp.o.d"
  "CMakeFiles/fgcs_predict.dir/semi_markov.cpp.o"
  "CMakeFiles/fgcs_predict.dir/semi_markov.cpp.o.d"
  "libfgcs_predict.a"
  "libfgcs_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

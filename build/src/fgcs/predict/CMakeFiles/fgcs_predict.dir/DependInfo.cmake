
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fgcs/predict/baselines.cpp" "src/fgcs/predict/CMakeFiles/fgcs_predict.dir/baselines.cpp.o" "gcc" "src/fgcs/predict/CMakeFiles/fgcs_predict.dir/baselines.cpp.o.d"
  "/root/repo/src/fgcs/predict/evaluation.cpp" "src/fgcs/predict/CMakeFiles/fgcs_predict.dir/evaluation.cpp.o" "gcc" "src/fgcs/predict/CMakeFiles/fgcs_predict.dir/evaluation.cpp.o.d"
  "/root/repo/src/fgcs/predict/history_window.cpp" "src/fgcs/predict/CMakeFiles/fgcs_predict.dir/history_window.cpp.o" "gcc" "src/fgcs/predict/CMakeFiles/fgcs_predict.dir/history_window.cpp.o.d"
  "/root/repo/src/fgcs/predict/interval_estimator.cpp" "src/fgcs/predict/CMakeFiles/fgcs_predict.dir/interval_estimator.cpp.o" "gcc" "src/fgcs/predict/CMakeFiles/fgcs_predict.dir/interval_estimator.cpp.o.d"
  "/root/repo/src/fgcs/predict/predictor.cpp" "src/fgcs/predict/CMakeFiles/fgcs_predict.dir/predictor.cpp.o" "gcc" "src/fgcs/predict/CMakeFiles/fgcs_predict.dir/predictor.cpp.o.d"
  "/root/repo/src/fgcs/predict/robust_history.cpp" "src/fgcs/predict/CMakeFiles/fgcs_predict.dir/robust_history.cpp.o" "gcc" "src/fgcs/predict/CMakeFiles/fgcs_predict.dir/robust_history.cpp.o.d"
  "/root/repo/src/fgcs/predict/semi_markov.cpp" "src/fgcs/predict/CMakeFiles/fgcs_predict.dir/semi_markov.cpp.o" "gcc" "src/fgcs/predict/CMakeFiles/fgcs_predict.dir/semi_markov.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fgcs/trace/CMakeFiles/fgcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/stats/CMakeFiles/fgcs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/util/CMakeFiles/fgcs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/monitor/CMakeFiles/fgcs_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/workload/CMakeFiles/fgcs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/os/CMakeFiles/fgcs_os.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/sim/CMakeFiles/fgcs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

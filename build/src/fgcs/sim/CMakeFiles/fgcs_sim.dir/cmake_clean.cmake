file(REMOVE_RECURSE
  "CMakeFiles/fgcs_sim.dir/event_queue.cpp.o"
  "CMakeFiles/fgcs_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/fgcs_sim.dir/simulation.cpp.o"
  "CMakeFiles/fgcs_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/fgcs_sim.dir/time.cpp.o"
  "CMakeFiles/fgcs_sim.dir/time.cpp.o.d"
  "libfgcs_sim.a"
  "libfgcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

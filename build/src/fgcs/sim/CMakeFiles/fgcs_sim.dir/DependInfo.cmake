
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fgcs/sim/event_queue.cpp" "src/fgcs/sim/CMakeFiles/fgcs_sim.dir/event_queue.cpp.o" "gcc" "src/fgcs/sim/CMakeFiles/fgcs_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/fgcs/sim/simulation.cpp" "src/fgcs/sim/CMakeFiles/fgcs_sim.dir/simulation.cpp.o" "gcc" "src/fgcs/sim/CMakeFiles/fgcs_sim.dir/simulation.cpp.o.d"
  "/root/repo/src/fgcs/sim/time.cpp" "src/fgcs/sim/CMakeFiles/fgcs_sim.dir/time.cpp.o" "gcc" "src/fgcs/sim/CMakeFiles/fgcs_sim.dir/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fgcs/util/CMakeFiles/fgcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

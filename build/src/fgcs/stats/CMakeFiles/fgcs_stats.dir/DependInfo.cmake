
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fgcs/stats/bootstrap.cpp" "src/fgcs/stats/CMakeFiles/fgcs_stats.dir/bootstrap.cpp.o" "gcc" "src/fgcs/stats/CMakeFiles/fgcs_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/fgcs/stats/descriptive.cpp" "src/fgcs/stats/CMakeFiles/fgcs_stats.dir/descriptive.cpp.o" "gcc" "src/fgcs/stats/CMakeFiles/fgcs_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/fgcs/stats/distributions.cpp" "src/fgcs/stats/CMakeFiles/fgcs_stats.dir/distributions.cpp.o" "gcc" "src/fgcs/stats/CMakeFiles/fgcs_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/fgcs/stats/ecdf.cpp" "src/fgcs/stats/CMakeFiles/fgcs_stats.dir/ecdf.cpp.o" "gcc" "src/fgcs/stats/CMakeFiles/fgcs_stats.dir/ecdf.cpp.o.d"
  "/root/repo/src/fgcs/stats/histogram.cpp" "src/fgcs/stats/CMakeFiles/fgcs_stats.dir/histogram.cpp.o" "gcc" "src/fgcs/stats/CMakeFiles/fgcs_stats.dir/histogram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fgcs/util/CMakeFiles/fgcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/fgcs_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/fgcs_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/fgcs_stats.dir/descriptive.cpp.o"
  "CMakeFiles/fgcs_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/fgcs_stats.dir/distributions.cpp.o"
  "CMakeFiles/fgcs_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/fgcs_stats.dir/ecdf.cpp.o"
  "CMakeFiles/fgcs_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/fgcs_stats.dir/histogram.cpp.o"
  "CMakeFiles/fgcs_stats.dir/histogram.cpp.o.d"
  "libfgcs_stats.a"
  "libfgcs_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

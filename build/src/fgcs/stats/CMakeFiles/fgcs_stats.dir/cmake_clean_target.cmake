file(REMOVE_RECURSE
  "libfgcs_stats.a"
)

# Empty dependencies file for fgcs_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fgcs_ishare.dir/discovery.cpp.o"
  "CMakeFiles/fgcs_ishare.dir/discovery.cpp.o.d"
  "CMakeFiles/fgcs_ishare.dir/system.cpp.o"
  "CMakeFiles/fgcs_ishare.dir/system.cpp.o.d"
  "libfgcs_ishare.a"
  "libfgcs_ishare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_ishare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

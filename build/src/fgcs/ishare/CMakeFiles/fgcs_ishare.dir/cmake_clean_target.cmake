file(REMOVE_RECURSE
  "libfgcs_ishare.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fgcs/ishare/discovery.cpp" "src/fgcs/ishare/CMakeFiles/fgcs_ishare.dir/discovery.cpp.o" "gcc" "src/fgcs/ishare/CMakeFiles/fgcs_ishare.dir/discovery.cpp.o.d"
  "/root/repo/src/fgcs/ishare/system.cpp" "src/fgcs/ishare/CMakeFiles/fgcs_ishare.dir/system.cpp.o" "gcc" "src/fgcs/ishare/CMakeFiles/fgcs_ishare.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fgcs/monitor/CMakeFiles/fgcs_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/os/CMakeFiles/fgcs_os.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/sim/CMakeFiles/fgcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/util/CMakeFiles/fgcs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/workload/CMakeFiles/fgcs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/stats/CMakeFiles/fgcs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for fgcs_util.
# This may be replaced when dependencies are built.

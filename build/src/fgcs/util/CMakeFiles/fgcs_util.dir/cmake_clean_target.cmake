file(REMOVE_RECURSE
  "libfgcs_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fgcs_util.dir/cli.cpp.o"
  "CMakeFiles/fgcs_util.dir/cli.cpp.o.d"
  "CMakeFiles/fgcs_util.dir/csv.cpp.o"
  "CMakeFiles/fgcs_util.dir/csv.cpp.o.d"
  "CMakeFiles/fgcs_util.dir/error.cpp.o"
  "CMakeFiles/fgcs_util.dir/error.cpp.o.d"
  "CMakeFiles/fgcs_util.dir/parallel.cpp.o"
  "CMakeFiles/fgcs_util.dir/parallel.cpp.o.d"
  "CMakeFiles/fgcs_util.dir/rng.cpp.o"
  "CMakeFiles/fgcs_util.dir/rng.cpp.o.d"
  "CMakeFiles/fgcs_util.dir/table.cpp.o"
  "CMakeFiles/fgcs_util.dir/table.cpp.o.d"
  "libfgcs_util.a"
  "libfgcs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

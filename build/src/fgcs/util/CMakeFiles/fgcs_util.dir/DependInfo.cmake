
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fgcs/util/cli.cpp" "src/fgcs/util/CMakeFiles/fgcs_util.dir/cli.cpp.o" "gcc" "src/fgcs/util/CMakeFiles/fgcs_util.dir/cli.cpp.o.d"
  "/root/repo/src/fgcs/util/csv.cpp" "src/fgcs/util/CMakeFiles/fgcs_util.dir/csv.cpp.o" "gcc" "src/fgcs/util/CMakeFiles/fgcs_util.dir/csv.cpp.o.d"
  "/root/repo/src/fgcs/util/error.cpp" "src/fgcs/util/CMakeFiles/fgcs_util.dir/error.cpp.o" "gcc" "src/fgcs/util/CMakeFiles/fgcs_util.dir/error.cpp.o.d"
  "/root/repo/src/fgcs/util/parallel.cpp" "src/fgcs/util/CMakeFiles/fgcs_util.dir/parallel.cpp.o" "gcc" "src/fgcs/util/CMakeFiles/fgcs_util.dir/parallel.cpp.o.d"
  "/root/repo/src/fgcs/util/rng.cpp" "src/fgcs/util/CMakeFiles/fgcs_util.dir/rng.cpp.o" "gcc" "src/fgcs/util/CMakeFiles/fgcs_util.dir/rng.cpp.o.d"
  "/root/repo/src/fgcs/util/table.cpp" "src/fgcs/util/CMakeFiles/fgcs_util.dir/table.cpp.o" "gcc" "src/fgcs/util/CMakeFiles/fgcs_util.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/fgcs_trace.dir/calendar.cpp.o"
  "CMakeFiles/fgcs_trace.dir/calendar.cpp.o.d"
  "CMakeFiles/fgcs_trace.dir/index.cpp.o"
  "CMakeFiles/fgcs_trace.dir/index.cpp.o.d"
  "CMakeFiles/fgcs_trace.dir/io.cpp.o"
  "CMakeFiles/fgcs_trace.dir/io.cpp.o.d"
  "CMakeFiles/fgcs_trace.dir/trace_set.cpp.o"
  "CMakeFiles/fgcs_trace.dir/trace_set.cpp.o.d"
  "libfgcs_trace.a"
  "libfgcs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

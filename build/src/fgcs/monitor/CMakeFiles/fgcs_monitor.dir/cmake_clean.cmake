file(REMOVE_RECURSE
  "CMakeFiles/fgcs_monitor.dir/availability.cpp.o"
  "CMakeFiles/fgcs_monitor.dir/availability.cpp.o.d"
  "CMakeFiles/fgcs_monitor.dir/detector.cpp.o"
  "CMakeFiles/fgcs_monitor.dir/detector.cpp.o.d"
  "CMakeFiles/fgcs_monitor.dir/guest_controller.cpp.o"
  "CMakeFiles/fgcs_monitor.dir/guest_controller.cpp.o.d"
  "CMakeFiles/fgcs_monitor.dir/machine_sampler.cpp.o"
  "CMakeFiles/fgcs_monitor.dir/machine_sampler.cpp.o.d"
  "CMakeFiles/fgcs_monitor.dir/policy.cpp.o"
  "CMakeFiles/fgcs_monitor.dir/policy.cpp.o.d"
  "CMakeFiles/fgcs_monitor.dir/state_timeline.cpp.o"
  "CMakeFiles/fgcs_monitor.dir/state_timeline.cpp.o.d"
  "libfgcs_monitor.a"
  "libfgcs_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fgcs/monitor/availability.cpp" "src/fgcs/monitor/CMakeFiles/fgcs_monitor.dir/availability.cpp.o" "gcc" "src/fgcs/monitor/CMakeFiles/fgcs_monitor.dir/availability.cpp.o.d"
  "/root/repo/src/fgcs/monitor/detector.cpp" "src/fgcs/monitor/CMakeFiles/fgcs_monitor.dir/detector.cpp.o" "gcc" "src/fgcs/monitor/CMakeFiles/fgcs_monitor.dir/detector.cpp.o.d"
  "/root/repo/src/fgcs/monitor/guest_controller.cpp" "src/fgcs/monitor/CMakeFiles/fgcs_monitor.dir/guest_controller.cpp.o" "gcc" "src/fgcs/monitor/CMakeFiles/fgcs_monitor.dir/guest_controller.cpp.o.d"
  "/root/repo/src/fgcs/monitor/machine_sampler.cpp" "src/fgcs/monitor/CMakeFiles/fgcs_monitor.dir/machine_sampler.cpp.o" "gcc" "src/fgcs/monitor/CMakeFiles/fgcs_monitor.dir/machine_sampler.cpp.o.d"
  "/root/repo/src/fgcs/monitor/policy.cpp" "src/fgcs/monitor/CMakeFiles/fgcs_monitor.dir/policy.cpp.o" "gcc" "src/fgcs/monitor/CMakeFiles/fgcs_monitor.dir/policy.cpp.o.d"
  "/root/repo/src/fgcs/monitor/state_timeline.cpp" "src/fgcs/monitor/CMakeFiles/fgcs_monitor.dir/state_timeline.cpp.o" "gcc" "src/fgcs/monitor/CMakeFiles/fgcs_monitor.dir/state_timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fgcs/os/CMakeFiles/fgcs_os.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/workload/CMakeFiles/fgcs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/sim/CMakeFiles/fgcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/util/CMakeFiles/fgcs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/stats/CMakeFiles/fgcs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

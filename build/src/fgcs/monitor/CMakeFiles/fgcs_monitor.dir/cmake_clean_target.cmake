file(REMOVE_RECURSE
  "libfgcs_monitor.a"
)

# Empty dependencies file for fgcs_monitor.
# This may be replaced when dependencies are built.

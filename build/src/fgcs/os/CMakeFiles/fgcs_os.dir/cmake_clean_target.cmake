file(REMOVE_RECURSE
  "libfgcs_os.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fgcs_os.dir/machine.cpp.o"
  "CMakeFiles/fgcs_os.dir/machine.cpp.o.d"
  "CMakeFiles/fgcs_os.dir/memory.cpp.o"
  "CMakeFiles/fgcs_os.dir/memory.cpp.o.d"
  "CMakeFiles/fgcs_os.dir/process.cpp.o"
  "CMakeFiles/fgcs_os.dir/process.cpp.o.d"
  "CMakeFiles/fgcs_os.dir/scheduler.cpp.o"
  "CMakeFiles/fgcs_os.dir/scheduler.cpp.o.d"
  "libfgcs_os.a"
  "libfgcs_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

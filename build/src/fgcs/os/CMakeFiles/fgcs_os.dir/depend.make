# Empty dependencies file for fgcs_os.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fgcs/os/machine.cpp" "src/fgcs/os/CMakeFiles/fgcs_os.dir/machine.cpp.o" "gcc" "src/fgcs/os/CMakeFiles/fgcs_os.dir/machine.cpp.o.d"
  "/root/repo/src/fgcs/os/memory.cpp" "src/fgcs/os/CMakeFiles/fgcs_os.dir/memory.cpp.o" "gcc" "src/fgcs/os/CMakeFiles/fgcs_os.dir/memory.cpp.o.d"
  "/root/repo/src/fgcs/os/process.cpp" "src/fgcs/os/CMakeFiles/fgcs_os.dir/process.cpp.o" "gcc" "src/fgcs/os/CMakeFiles/fgcs_os.dir/process.cpp.o.d"
  "/root/repo/src/fgcs/os/scheduler.cpp" "src/fgcs/os/CMakeFiles/fgcs_os.dir/scheduler.cpp.o" "gcc" "src/fgcs/os/CMakeFiles/fgcs_os.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fgcs/sim/CMakeFiles/fgcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/util/CMakeFiles/fgcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

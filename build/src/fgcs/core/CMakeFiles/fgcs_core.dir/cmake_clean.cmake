file(REMOVE_RECURSE
  "CMakeFiles/fgcs_core.dir/analyzer.cpp.o"
  "CMakeFiles/fgcs_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/fgcs_core.dir/contention.cpp.o"
  "CMakeFiles/fgcs_core.dir/contention.cpp.o.d"
  "CMakeFiles/fgcs_core.dir/prediction_study.cpp.o"
  "CMakeFiles/fgcs_core.dir/prediction_study.cpp.o.d"
  "CMakeFiles/fgcs_core.dir/testbed.cpp.o"
  "CMakeFiles/fgcs_core.dir/testbed.cpp.o.d"
  "libfgcs_core.a"
  "libfgcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libfgcs_core.a"
)

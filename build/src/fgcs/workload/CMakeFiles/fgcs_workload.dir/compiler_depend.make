# Empty compiler generated dependencies file for fgcs_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fgcs_workload.dir/load_model.cpp.o"
  "CMakeFiles/fgcs_workload.dir/load_model.cpp.o.d"
  "CMakeFiles/fgcs_workload.dir/musbus.cpp.o"
  "CMakeFiles/fgcs_workload.dir/musbus.cpp.o.d"
  "CMakeFiles/fgcs_workload.dir/spec_cpu2000.cpp.o"
  "CMakeFiles/fgcs_workload.dir/spec_cpu2000.cpp.o.d"
  "CMakeFiles/fgcs_workload.dir/synthetic.cpp.o"
  "CMakeFiles/fgcs_workload.dir/synthetic.cpp.o.d"
  "libfgcs_workload.a"
  "libfgcs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

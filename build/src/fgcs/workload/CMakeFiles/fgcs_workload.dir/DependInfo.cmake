
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fgcs/workload/load_model.cpp" "src/fgcs/workload/CMakeFiles/fgcs_workload.dir/load_model.cpp.o" "gcc" "src/fgcs/workload/CMakeFiles/fgcs_workload.dir/load_model.cpp.o.d"
  "/root/repo/src/fgcs/workload/musbus.cpp" "src/fgcs/workload/CMakeFiles/fgcs_workload.dir/musbus.cpp.o" "gcc" "src/fgcs/workload/CMakeFiles/fgcs_workload.dir/musbus.cpp.o.d"
  "/root/repo/src/fgcs/workload/spec_cpu2000.cpp" "src/fgcs/workload/CMakeFiles/fgcs_workload.dir/spec_cpu2000.cpp.o" "gcc" "src/fgcs/workload/CMakeFiles/fgcs_workload.dir/spec_cpu2000.cpp.o.d"
  "/root/repo/src/fgcs/workload/synthetic.cpp" "src/fgcs/workload/CMakeFiles/fgcs_workload.dir/synthetic.cpp.o" "gcc" "src/fgcs/workload/CMakeFiles/fgcs_workload.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fgcs/os/CMakeFiles/fgcs_os.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/stats/CMakeFiles/fgcs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/sim/CMakeFiles/fgcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/util/CMakeFiles/fgcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

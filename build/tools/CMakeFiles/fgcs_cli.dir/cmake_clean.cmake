file(REMOVE_RECURSE
  "CMakeFiles/fgcs_cli.dir/fgcs_cli.cpp.o"
  "CMakeFiles/fgcs_cli.dir/fgcs_cli.cpp.o.d"
  "fgcs"
  "fgcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

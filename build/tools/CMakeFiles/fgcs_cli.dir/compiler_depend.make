# Empty compiler generated dependencies file for fgcs_cli.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for proactive_scheduler.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/proactive_scheduler.dir/proactive_scheduler.cpp.o"
  "CMakeFiles/proactive_scheduler.dir/proactive_scheduler.cpp.o.d"
  "proactive_scheduler"
  "proactive_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proactive_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

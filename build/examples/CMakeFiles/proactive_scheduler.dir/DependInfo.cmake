
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/proactive_scheduler.cpp" "examples/CMakeFiles/proactive_scheduler.dir/proactive_scheduler.cpp.o" "gcc" "examples/CMakeFiles/proactive_scheduler.dir/proactive_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fgcs/ishare/CMakeFiles/fgcs_ishare.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/core/CMakeFiles/fgcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/predict/CMakeFiles/fgcs_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/trace/CMakeFiles/fgcs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/monitor/CMakeFiles/fgcs_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/workload/CMakeFiles/fgcs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/os/CMakeFiles/fgcs_os.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/sim/CMakeFiles/fgcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/stats/CMakeFiles/fgcs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/fgcs/util/CMakeFiles/fgcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for testbed_trace_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/testbed_trace_analysis.dir/testbed_trace_analysis.cpp.o"
  "CMakeFiles/testbed_trace_analysis.dir/testbed_trace_analysis.cpp.o.d"
  "testbed_trace_analysis"
  "testbed_trace_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_trace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fgcs_cluster.
# This may be replaced when dependencies are built.

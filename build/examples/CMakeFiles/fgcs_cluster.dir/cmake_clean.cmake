file(REMOVE_RECURSE
  "CMakeFiles/fgcs_cluster.dir/fgcs_cluster.cpp.o"
  "CMakeFiles/fgcs_cluster.dir/fgcs_cluster.cpp.o.d"
  "fgcs_cluster"
  "fgcs_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgcs_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

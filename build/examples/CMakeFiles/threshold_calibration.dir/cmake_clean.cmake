file(REMOVE_RECURSE
  "CMakeFiles/threshold_calibration.dir/threshold_calibration.cpp.o"
  "CMakeFiles/threshold_calibration.dir/threshold_calibration.cpp.o.d"
  "threshold_calibration"
  "threshold_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for threshold_calibration.
# This may be replaced when dependencies are built.

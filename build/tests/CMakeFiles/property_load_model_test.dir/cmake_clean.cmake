file(REMOVE_RECURSE
  "CMakeFiles/property_load_model_test.dir/property_load_model_test.cpp.o"
  "CMakeFiles/property_load_model_test.dir/property_load_model_test.cpp.o.d"
  "property_load_model_test"
  "property_load_model_test.pdb"
  "property_load_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_load_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for property_load_model_test.
# This may be replaced when dependencies are built.

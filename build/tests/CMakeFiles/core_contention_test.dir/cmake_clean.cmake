file(REMOVE_RECURSE
  "CMakeFiles/core_contention_test.dir/core_contention_test.cpp.o"
  "CMakeFiles/core_contention_test.dir/core_contention_test.cpp.o.d"
  "core_contention_test"
  "core_contention_test.pdb"
  "core_contention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_contention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for trace_set_test.
# This may be replaced when dependencies are built.

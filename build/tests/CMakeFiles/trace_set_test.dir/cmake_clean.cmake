file(REMOVE_RECURSE
  "CMakeFiles/trace_set_test.dir/trace_set_test.cpp.o"
  "CMakeFiles/trace_set_test.dir/trace_set_test.cpp.o.d"
  "trace_set_test"
  "trace_set_test.pdb"
  "trace_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

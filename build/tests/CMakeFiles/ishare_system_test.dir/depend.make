# Empty dependencies file for ishare_system_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ishare_system_test.dir/ishare_system_test.cpp.o"
  "CMakeFiles/ishare_system_test.dir/ishare_system_test.cpp.o.d"
  "ishare_system_test"
  "ishare_system_test.pdb"
  "ishare_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ishare_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

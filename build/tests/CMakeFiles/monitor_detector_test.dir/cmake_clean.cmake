file(REMOVE_RECURSE
  "CMakeFiles/monitor_detector_test.dir/monitor_detector_test.cpp.o"
  "CMakeFiles/monitor_detector_test.dir/monitor_detector_test.cpp.o.d"
  "monitor_detector_test"
  "monitor_detector_test.pdb"
  "monitor_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

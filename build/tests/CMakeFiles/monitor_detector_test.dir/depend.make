# Empty dependencies file for monitor_detector_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for os_scheduler_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/os_scheduler_test.dir/os_scheduler_test.cpp.o"
  "CMakeFiles/os_scheduler_test.dir/os_scheduler_test.cpp.o.d"
  "os_scheduler_test"
  "os_scheduler_test.pdb"
  "os_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

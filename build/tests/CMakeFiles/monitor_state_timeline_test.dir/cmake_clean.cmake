file(REMOVE_RECURSE
  "CMakeFiles/monitor_state_timeline_test.dir/monitor_state_timeline_test.cpp.o"
  "CMakeFiles/monitor_state_timeline_test.dir/monitor_state_timeline_test.cpp.o.d"
  "monitor_state_timeline_test"
  "monitor_state_timeline_test.pdb"
  "monitor_state_timeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_state_timeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for monitor_state_timeline_test.
# This may be replaced when dependencies are built.

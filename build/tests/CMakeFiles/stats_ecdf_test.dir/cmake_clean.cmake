file(REMOVE_RECURSE
  "CMakeFiles/stats_ecdf_test.dir/stats_ecdf_test.cpp.o"
  "CMakeFiles/stats_ecdf_test.dir/stats_ecdf_test.cpp.o.d"
  "stats_ecdf_test"
  "stats_ecdf_test.pdb"
  "stats_ecdf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_ecdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

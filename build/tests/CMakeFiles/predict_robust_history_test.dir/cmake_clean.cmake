file(REMOVE_RECURSE
  "CMakeFiles/predict_robust_history_test.dir/predict_robust_history_test.cpp.o"
  "CMakeFiles/predict_robust_history_test.dir/predict_robust_history_test.cpp.o.d"
  "predict_robust_history_test"
  "predict_robust_history_test.pdb"
  "predict_robust_history_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_robust_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

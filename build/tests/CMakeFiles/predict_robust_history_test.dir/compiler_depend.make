# Empty compiler generated dependencies file for predict_robust_history_test.
# This may be replaced when dependencies are built.

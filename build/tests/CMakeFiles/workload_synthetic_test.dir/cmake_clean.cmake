file(REMOVE_RECURSE
  "CMakeFiles/workload_synthetic_test.dir/workload_synthetic_test.cpp.o"
  "CMakeFiles/workload_synthetic_test.dir/workload_synthetic_test.cpp.o.d"
  "workload_synthetic_test"
  "workload_synthetic_test.pdb"
  "workload_synthetic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_synthetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

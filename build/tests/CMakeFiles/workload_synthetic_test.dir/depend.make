# Empty dependencies file for workload_synthetic_test.
# This may be replaced when dependencies are built.

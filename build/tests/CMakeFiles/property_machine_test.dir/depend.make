# Empty dependencies file for property_machine_test.
# This may be replaced when dependencies are built.

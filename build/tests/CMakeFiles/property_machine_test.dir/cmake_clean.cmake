file(REMOVE_RECURSE
  "CMakeFiles/property_machine_test.dir/property_machine_test.cpp.o"
  "CMakeFiles/property_machine_test.dir/property_machine_test.cpp.o.d"
  "property_machine_test"
  "property_machine_test.pdb"
  "property_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

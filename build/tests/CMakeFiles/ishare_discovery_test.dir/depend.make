# Empty dependencies file for ishare_discovery_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ishare_discovery_test.dir/ishare_discovery_test.cpp.o"
  "CMakeFiles/ishare_discovery_test.dir/ishare_discovery_test.cpp.o.d"
  "ishare_discovery_test"
  "ishare_discovery_test.pdb"
  "ishare_discovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ishare_discovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for stats_bootstrap_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for workload_load_model_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/workload_load_model_test.dir/workload_load_model_test.cpp.o"
  "CMakeFiles/workload_load_model_test.dir/workload_load_model_test.cpp.o.d"
  "workload_load_model_test"
  "workload_load_model_test.pdb"
  "workload_load_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_load_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/predict_semi_markov_test.dir/predict_semi_markov_test.cpp.o"
  "CMakeFiles/predict_semi_markov_test.dir/predict_semi_markov_test.cpp.o.d"
  "predict_semi_markov_test"
  "predict_semi_markov_test.pdb"
  "predict_semi_markov_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_semi_markov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for predict_semi_markov_test.
# This may be replaced when dependencies are built.

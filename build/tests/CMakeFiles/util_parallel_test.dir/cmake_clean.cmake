file(REMOVE_RECURSE
  "CMakeFiles/util_parallel_test.dir/util_parallel_test.cpp.o"
  "CMakeFiles/util_parallel_test.dir/util_parallel_test.cpp.o.d"
  "util_parallel_test"
  "util_parallel_test.pdb"
  "util_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

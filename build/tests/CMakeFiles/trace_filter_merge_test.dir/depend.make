# Empty dependencies file for trace_filter_merge_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/trace_filter_merge_test.dir/trace_filter_merge_test.cpp.o"
  "CMakeFiles/trace_filter_merge_test.dir/trace_filter_merge_test.cpp.o.d"
  "trace_filter_merge_test"
  "trace_filter_merge_test.pdb"
  "trace_filter_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_filter_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/workload_apps_test.dir/workload_apps_test.cpp.o"
  "CMakeFiles/workload_apps_test.dir/workload_apps_test.cpp.o.d"
  "workload_apps_test"
  "workload_apps_test.pdb"
  "workload_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for workload_apps_test.
# This may be replaced when dependencies are built.

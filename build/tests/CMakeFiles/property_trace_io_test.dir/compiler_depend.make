# Empty compiler generated dependencies file for property_trace_io_test.
# This may be replaced when dependencies are built.

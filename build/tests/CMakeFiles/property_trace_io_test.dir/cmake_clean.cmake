file(REMOVE_RECURSE
  "CMakeFiles/property_trace_io_test.dir/property_trace_io_test.cpp.o"
  "CMakeFiles/property_trace_io_test.dir/property_trace_io_test.cpp.o.d"
  "property_trace_io_test"
  "property_trace_io_test.pdb"
  "property_trace_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_trace_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

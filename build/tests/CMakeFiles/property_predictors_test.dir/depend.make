# Empty dependencies file for property_predictors_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/property_predictors_test.dir/property_predictors_test.cpp.o"
  "CMakeFiles/property_predictors_test.dir/property_predictors_test.cpp.o.d"
  "property_predictors_test"
  "property_predictors_test.pdb"
  "property_predictors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_predictors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

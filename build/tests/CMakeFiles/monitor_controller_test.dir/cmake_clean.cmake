file(REMOVE_RECURSE
  "CMakeFiles/monitor_controller_test.dir/monitor_controller_test.cpp.o"
  "CMakeFiles/monitor_controller_test.dir/monitor_controller_test.cpp.o.d"
  "monitor_controller_test"
  "monitor_controller_test.pdb"
  "monitor_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

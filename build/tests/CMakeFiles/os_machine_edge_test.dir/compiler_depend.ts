# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for os_machine_edge_test.

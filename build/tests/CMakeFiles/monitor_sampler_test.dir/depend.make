# Empty dependencies file for monitor_sampler_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/monitor_sampler_test.dir/monitor_sampler_test.cpp.o"
  "CMakeFiles/monitor_sampler_test.dir/monitor_sampler_test.cpp.o.d"
  "monitor_sampler_test"
  "monitor_sampler_test.pdb"
  "monitor_sampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

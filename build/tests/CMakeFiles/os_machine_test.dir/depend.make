# Empty dependencies file for os_machine_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/os_machine_test.dir/os_machine_test.cpp.o"
  "CMakeFiles/os_machine_test.dir/os_machine_test.cpp.o.d"
  "os_machine_test"
  "os_machine_test.pdb"
  "os_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

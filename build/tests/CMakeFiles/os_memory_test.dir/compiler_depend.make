# Empty compiler generated dependencies file for os_memory_test.
# This may be replaced when dependencies are built.

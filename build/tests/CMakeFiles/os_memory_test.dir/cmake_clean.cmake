file(REMOVE_RECURSE
  "CMakeFiles/os_memory_test.dir/os_memory_test.cpp.o"
  "CMakeFiles/os_memory_test.dir/os_memory_test.cpp.o.d"
  "os_memory_test"
  "os_memory_test.pdb"
  "os_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/predict_interval_estimator_test.dir/predict_interval_estimator_test.cpp.o"
  "CMakeFiles/predict_interval_estimator_test.dir/predict_interval_estimator_test.cpp.o.d"
  "predict_interval_estimator_test"
  "predict_interval_estimator_test.pdb"
  "predict_interval_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_interval_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

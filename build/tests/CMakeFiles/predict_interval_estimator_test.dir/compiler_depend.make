# Empty compiler generated dependencies file for predict_interval_estimator_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for predict_baselines_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/predict_baselines_test.dir/predict_baselines_test.cpp.o"
  "CMakeFiles/predict_baselines_test.dir/predict_baselines_test.cpp.o.d"
  "predict_baselines_test"
  "predict_baselines_test.pdb"
  "predict_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

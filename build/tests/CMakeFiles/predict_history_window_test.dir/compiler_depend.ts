# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for predict_history_window_test.

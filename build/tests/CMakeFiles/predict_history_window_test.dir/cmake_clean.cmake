file(REMOVE_RECURSE
  "CMakeFiles/predict_history_window_test.dir/predict_history_window_test.cpp.o"
  "CMakeFiles/predict_history_window_test.dir/predict_history_window_test.cpp.o.d"
  "predict_history_window_test"
  "predict_history_window_test.pdb"
  "predict_history_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_history_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for predict_history_window_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for stats_distributions_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/predict_evaluation_test.dir/predict_evaluation_test.cpp.o"
  "CMakeFiles/predict_evaluation_test.dir/predict_evaluation_test.cpp.o.d"
  "predict_evaluation_test"
  "predict_evaluation_test.pdb"
  "predict_evaluation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_evaluation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/os_theory_crosscheck_test.dir/os_theory_crosscheck_test.cpp.o"
  "CMakeFiles/os_theory_crosscheck_test.dir/os_theory_crosscheck_test.cpp.o.d"
  "os_theory_crosscheck_test"
  "os_theory_crosscheck_test.pdb"
  "os_theory_crosscheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_theory_crosscheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

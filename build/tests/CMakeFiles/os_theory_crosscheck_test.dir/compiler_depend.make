# Empty compiler generated dependencies file for os_theory_crosscheck_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/trace_calendar_test.dir/trace_calendar_test.cpp.o"
  "CMakeFiles/trace_calendar_test.dir/trace_calendar_test.cpp.o.d"
  "trace_calendar_test"
  "trace_calendar_test.pdb"
  "trace_calendar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_calendar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

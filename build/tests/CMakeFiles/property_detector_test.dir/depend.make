# Empty dependencies file for property_detector_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/property_detector_test.dir/property_detector_test.cpp.o"
  "CMakeFiles/property_detector_test.dir/property_detector_test.cpp.o.d"
  "property_detector_test"
  "property_detector_test.pdb"
  "property_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

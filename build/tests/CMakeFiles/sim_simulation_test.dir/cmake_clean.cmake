file(REMOVE_RECURSE
  "CMakeFiles/sim_simulation_test.dir/sim_simulation_test.cpp.o"
  "CMakeFiles/sim_simulation_test.dir/sim_simulation_test.cpp.o.d"
  "sim_simulation_test"
  "sim_simulation_test.pdb"
  "sim_simulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

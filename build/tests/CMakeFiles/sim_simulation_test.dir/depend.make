# Empty dependencies file for sim_simulation_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/core_testbed_test.dir/core_testbed_test.cpp.o"
  "CMakeFiles/core_testbed_test.dir/core_testbed_test.cpp.o.d"
  "core_testbed_test"
  "core_testbed_test.pdb"
  "core_testbed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_testbed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

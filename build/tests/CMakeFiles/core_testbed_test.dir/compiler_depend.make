# Empty compiler generated dependencies file for core_testbed_test.
# This may be replaced when dependencies are built.

// Cross-check: the simulated scheduler against closed-form predictions.
//
// For a nice-19 CPU-bound guest against a single duty-cycle host, the
// fluid model of the counter scheduler predicts
//
//   host reduction(u) ~= 1 - 1 / (1 + g * u),   g = ts(19) / ts(0),
//
// once the host's sleeper credit is exhausted within each burst (see
// docs/architecture.md). The simulation must track this within the
// credit-induced deviation. This guards the scheduler against silent
// regressions that unit tests of individual mechanisms would miss.
#include <gtest/gtest.h>

#include "fgcs/os/machine.hpp"
#include "fgcs/workload/synthetic.hpp"

namespace fgcs::os {
namespace {

using namespace sim::time_literals;

double measure_reduction(double u, int guest_nice, std::uint64_t seed) {
  auto run = [&](bool with_guest) {
    Machine m(SchedulerParams::linux_2_4(), MemoryParams::linux_1gb(), seed);
    m.spawn(workload::synthetic_host(u));
    if (with_guest) m.spawn(workload::synthetic_guest(guest_nice));
    m.run_for(40_s);
    const CpuTotals before = m.totals();
    m.run_for(sim::SimDuration::minutes(6));
    return CpuTotals::host_usage(before, m.totals());
  };
  const double alone = run(false);
  const double together = run(true);
  return (alone - together) / alone;
}

class Nice19TheoryTest : public ::testing::TestWithParam<double> {};

TEST_P(Nice19TheoryTest, ReductionTracksFluidModel) {
  const double u = GetParam();
  const auto params = SchedulerParams::linux_2_4();
  const double g = params.refill_ticks(19) / params.refill_ticks(0);
  const double fluid = 1.0 - 1.0 / (1.0 + g * u);
  const double measured = measure_reduction(u, 19, 321);
  // Sleeper credit shields part of each burst, so the measured reduction
  // sits at or below the fluid bound; it must not exceed it materially
  // and must not collapse to zero at high load.
  EXPECT_LE(measured, fluid + 0.015) << "u=" << u;
  if (u >= 0.7) {
    EXPECT_GE(measured, 0.4 * fluid) << "u=" << u;
  }
}

INSTANTIATE_TEST_SUITE_P(LoadGrid, Nice19TheoryTest,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9, 1.0));

TEST(EqualPriorityTheory, FairShareAtSaturation) {
  // Two CPU-bound processes at equal nice must converge to the fluid 50%
  // fair share — the anchor of Figure 1(a)'s top-right point.
  const double measured = measure_reduction(1.0, 0, 99);
  EXPECT_NEAR(measured, 0.5, 0.01);
}

TEST(EqualPriorityTheory, GuestShareBoundedByFairShare) {
  // At equal priority, a single guest can never take more than half the
  // machine from a saturated host (no priority inversion).
  for (const double u : {0.6, 0.8, 1.0}) {
    EXPECT_LE(measure_reduction(u, 0, 7), 0.5 + 0.01) << u;
  }
}

}  // namespace
}  // namespace fgcs::os

// Tests for the SPEC CPU2000 guest models and Musbus host workloads
// (Table 1 fidelity).
#include <gtest/gtest.h>

#include "fgcs/util/error.hpp"
#include "fgcs/workload/musbus.hpp"
#include "fgcs/workload/spec_cpu2000.hpp"

namespace fgcs::workload {
namespace {

TEST(SpecCpu2000, FourAppsWithTable1Footprints) {
  const auto apps = spec_cpu2000_apps();
  ASSERT_EQ(apps.size(), 4u);
  EXPECT_EQ(spec_app("apsi").resident_mb, 193.0);
  EXPECT_EQ(spec_app("apsi").virtual_mb, 205.0);
  EXPECT_EQ(spec_app("galgel").resident_mb, 29.0);
  EXPECT_EQ(spec_app("galgel").virtual_mb, 155.0);
  EXPECT_EQ(spec_app("bzip2").resident_mb, 180.0);
  EXPECT_EQ(spec_app("mcf").resident_mb, 96.0);
  EXPECT_EQ(spec_app("mcf").virtual_mb, 96.0);
}

TEST(SpecCpu2000, AllCpuBound) {
  for (const auto& app : spec_cpu2000_apps()) {
    EXPECT_GE(app.cpu_usage, 0.97) << app.name;
  }
}

TEST(SpecCpu2000, UnknownAppThrows) {
  EXPECT_THROW(spec_app("gcc"), ConfigError);
}

TEST(SpecCpu2000, GuestSpecConstruction) {
  const auto spec = spec_guest(spec_app("bzip2"), 19);
  EXPECT_EQ(spec.kind, os::ProcessKind::kGuest);
  EXPECT_EQ(spec.nice, 19);
  EXPECT_EQ(spec.resident_mb, 180.0);
  EXPECT_EQ(spec.working_set_mb, 180.0);
  EXPECT_TRUE(static_cast<bool>(spec.program));
}

TEST(Musbus, SixWorkloadsWithTable1Values) {
  const auto ws = musbus_workloads();
  ASSERT_EQ(ws.size(), 6u);
  EXPECT_DOUBLE_EQ(musbus_workload("H1").cpu_usage, 0.086);
  EXPECT_DOUBLE_EQ(musbus_workload("H2").cpu_usage, 0.092);
  EXPECT_DOUBLE_EQ(musbus_workload("H3").cpu_usage, 0.172);
  EXPECT_DOUBLE_EQ(musbus_workload("H4").cpu_usage, 0.219);
  EXPECT_DOUBLE_EQ(musbus_workload("H5").cpu_usage, 0.570);
  EXPECT_DOUBLE_EQ(musbus_workload("H6").cpu_usage, 0.662);
  EXPECT_DOUBLE_EQ(musbus_workload("H2").resident_mb, 213.0);
  EXPECT_DOUBLE_EQ(musbus_workload("H5").resident_mb, 210.0);
}

TEST(Musbus, UnknownWorkloadThrows) {
  EXPECT_THROW(musbus_workload("H7"), ConfigError);
}

TEST(Musbus, ComponentsPreserveAggregates) {
  for (const auto& w : musbus_workloads()) {
    const auto procs = musbus_processes(w);
    ASSERT_EQ(procs.size(), 3u) << w.name;
    double mem = 0.0;
    for (const auto& p : procs) {
      EXPECT_EQ(p.kind, os::ProcessKind::kHost);
      EXPECT_EQ(p.nice, 0);
      mem += p.resident_mb;
    }
    EXPECT_NEAR(mem, w.resident_mb, 1e-9) << w.name;
  }
}

TEST(Musbus, ComponentNamesIncludeWorkload) {
  const auto procs = musbus_processes(musbus_workload("H3"));
  for (const auto& p : procs) {
    EXPECT_EQ(p.name.rfind("H3-", 0), 0u) << p.name;
  }
}

}  // namespace
}  // namespace fgcs::workload

// Tests for the semi-Markov / renewal predictor.
#include <gtest/gtest.h>

#include "fgcs/predict/semi_markov.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::predict {
namespace {

using namespace sim::time_literals;
using monitor::AvailabilityState;
using sim::SimDuration;
using sim::SimTime;

// Weekday-regular failures: every 4 hours a 30-minute episode, so
// availability intervals are all exactly 3.5 hours on machine 0.
trace::TraceSet regular_trace(int days = 30) {
  trace::TraceSet t(1, SimTime::epoch(),
                    SimTime::epoch() + SimDuration::days(days));
  for (int d = 0; d < days; ++d) {
    for (int h = 0; h < 24; h += 4) {
      trace::UnavailabilityRecord r;
      r.machine = 0;
      r.start = SimTime::epoch() + SimDuration::days(d) + SimDuration::hours(h);
      r.end = r.start + 30_min;
      r.cause = AvailabilityState::kS3CpuUnavailable;
      t.add(r);
    }
  }
  return t;
}

struct SemiMarkovFixture : ::testing::Test {
  SemiMarkovFixture() : trace(regular_trace()), index(trace) {
    predictor.attach(index, calendar);
  }
  trace::TraceSet trace;
  trace::TraceIndex index;
  trace::TraceCalendar calendar;
  SemiMarkovPredictor predictor;
};

TEST_F(SemiMarkovFixture, FreshIntervalLongWindowFails) {
  // Query right after an episode ends (age ~0) with a 4h window: every
  // historical interval is 3.5h, so failure is certain.
  PredictionQuery q{0,
                    SimTime::epoch() + SimDuration::days(20) + 35_min,
                    SimDuration::hours(4)};
  EXPECT_LT(predictor.predict_availability(q), 0.1);
}

TEST_F(SemiMarkovFixture, FreshIntervalShortWindowSurvives) {
  PredictionQuery q{0,
                    SimTime::epoch() + SimDuration::days(20) + 35_min,
                    SimDuration::hours(1)};
  EXPECT_GT(predictor.predict_availability(q), 0.9);
}

TEST_F(SemiMarkovFixture, InsideEpisodeIsUnavailable) {
  PredictionQuery q{0,
                    SimTime::epoch() + SimDuration::days(20) + 10_min,
                    SimDuration::hours(1)};
  EXPECT_DOUBLE_EQ(predictor.predict_availability(q), 0.0);
}

TEST_F(SemiMarkovFixture, AgedIntervalNearsEnd) {
  // Age 3h into a 3.5h interval: even a 1-hour window must fail.
  PredictionQuery q{0,
                    SimTime::epoch() + SimDuration::days(20) + 30_min + 3_h,
                    SimDuration::hours(1)};
  EXPECT_LT(predictor.predict_availability(q), 0.1);
}

TEST_F(SemiMarkovFixture, OccurrenceRateFromRenewalTheory) {
  // Mean interval 3.5h -> an 7h window expects ~2 occurrences.
  PredictionQuery q{0,
                    SimTime::epoch() + SimDuration::days(20) + 40_min,
                    SimDuration::hours(7)};
  EXPECT_NEAR(predictor.predict_occurrences(q), 2.0, 0.2);
}

TEST(SemiMarkovPredictor, ThinHistoryFallsBackToPrior) {
  trace::TraceSet t(1, SimTime::epoch(),
                    SimTime::epoch() + SimDuration::days(10));
  trace::UnavailabilityRecord r;
  r.machine = 0;
  r.start = SimTime::epoch() + 1_h;
  r.end = r.start + 10_min;
  r.cause = AvailabilityState::kS3CpuUnavailable;
  t.add(r);
  const trace::TraceIndex index(t);
  const trace::TraceCalendar cal;
  SemiMarkovConfig cfg;
  cfg.prior_availability = 0.66;
  SemiMarkovPredictor p(cfg);
  p.attach(index, cal);
  PredictionQuery q{0, SimTime::epoch() + SimDuration::days(5),
                    SimDuration::hours(2)};
  EXPECT_DOUBLE_EQ(p.predict_availability(q), 0.66);
}

TEST(SemiMarkovPredictor, ConfigValidation) {
  SemiMarkovConfig cfg;
  cfg.prior_availability = 1.5;
  EXPECT_THROW(SemiMarkovPredictor{cfg}, ConfigError);
}

TEST(SemiMarkovPredictor, AgeBeyondHistoryIsPessimisticButBounded) {
  const auto t = regular_trace(20);
  const trace::TraceIndex index(t);
  const trace::TraceCalendar cal;
  SemiMarkovPredictor p;
  p.attach(index, cal);
  // Craft a query whose age exceeds every observed interval. The last
  // episode of day 19 ends at 20:30; query at day 19, 23:59 would have
  // been inside... instead query after the final day with a huge age.
  PredictionQuery q{0,
                    SimTime::epoch() + SimDuration::days(25),
                    SimDuration::hours(1)};
  const double avail = p.predict_availability(q);
  EXPECT_GE(avail, 0.0);
  EXPECT_LE(avail, 0.3);
}

}  // namespace
}  // namespace fgcs::predict

// fgcs::recover: manifest round-trips and tamper detection, sweep
// fingerprint sensitivity, RNG substream keys, shard state blobs, and
// plan_resume's validate-everything semantics.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "fgcs/recover/manifest.hpp"
#include "fgcs/recover/shard_state.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/io.hpp"

namespace fgcs::recover {
namespace {

namespace fs = std::filesystem;

ShardCheckpoint sample_shard(std::uint64_t idx) {
  ShardCheckpoint cp;
  cp.shard = idx;
  cp.first_machine = static_cast<std::uint32_t>(idx * 4);
  cp.machine_count = 4;
  cp.records = 1000 + idx;
  cp.segment_name = "shard-000" + std::to_string(idx) + ".trc2";
  cp.segment_crc = 0xDEADBEEFu ^ static_cast<std::uint32_t>(idx);
  cp.segment_bytes = 4096 + idx;
  cp.state_name = shard_state_name(idx);
  cp.state_crc = 0x1234u + static_cast<std::uint32_t>(idx);
  cp.rng_key = shard_rng_key(20050815, cp.first_machine);
  return cp;
}

Manifest sample_manifest() {
  Manifest m;
  m.fingerprint = 0xABCDEF0123456789ull;
  m.shard_count = 6;
  m.shards = {sample_shard(0), sample_shard(2), sample_shard(5)};
  return m;
}

SweepIdentity sample_identity() {
  SweepIdentity id;
  id.machines = 24;
  id.days = 7;
  id.start_dow = 1;
  id.seed = 20050815;
  id.shard_machines = 4;
  id.fault_plan = "none";
  id.metrics = true;
  id.metrics_resolution_us = 3600000000;
  id.ram_mb = 1024.0;
  id.kernel_mb = 100.0;
  id.th1 = 0.20;
  id.th2 = 0.60;
  id.sample_period_us = 15000000;
  return id;
}

class ManifestDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("recover_manifest_test." +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (fs::path(dir_) / name).string();
  }
  void write_file(const std::string& name, const std::string& bytes) const {
    std::ofstream out(path(name), std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  std::string dir_;
};

// --- serialization ---------------------------------------------------------

TEST(RecoverManifest, SerializeParseRoundTrips) {
  const Manifest m = sample_manifest();
  const Manifest back = Manifest::parse(m.serialize(), "test");
  EXPECT_EQ(back.fingerprint, m.fingerprint);
  EXPECT_EQ(back.shard_count, m.shard_count);
  ASSERT_EQ(back.shards.size(), m.shards.size());
  for (std::size_t i = 0; i < m.shards.size(); ++i) {
    const ShardCheckpoint& a = m.shards[i];
    const ShardCheckpoint& b = back.shards[i];
    EXPECT_EQ(b.shard, a.shard);
    EXPECT_EQ(b.first_machine, a.first_machine);
    EXPECT_EQ(b.machine_count, a.machine_count);
    EXPECT_EQ(b.records, a.records);
    EXPECT_EQ(b.segment_name, a.segment_name);
    EXPECT_EQ(b.segment_crc, a.segment_crc);
    EXPECT_EQ(b.segment_bytes, a.segment_bytes);
    EXPECT_EQ(b.state_name, a.state_name);
    EXPECT_EQ(b.state_crc, a.state_crc);
    EXPECT_EQ(b.rng_key, a.rng_key);
  }
}

TEST(RecoverManifest, EmptyManifestRoundTrips) {
  Manifest m;
  m.fingerprint = 7;
  m.shard_count = 3;
  const Manifest back = Manifest::parse(m.serialize(), "test");
  EXPECT_EQ(back.fingerprint, 7u);
  EXPECT_EQ(back.shard_count, 3u);
  EXPECT_TRUE(back.shards.empty());
}

TEST(RecoverManifest, TrailingCrcCatchesAnySingleByteFlip) {
  const std::string text = sample_manifest().serialize();
  // Flip one byte in the body (not inside the crc line itself, whose own
  // corruption is equally fatal — spot-check a few offsets).
  for (std::size_t off : {std::size_t{0}, text.size() / 3, text.size() / 2}) {
    std::string bad = text;
    bad[off] = static_cast<char>(bad[off] ^ 0x20);
    EXPECT_THROW(Manifest::parse(bad, "test"), IoError) << off;
  }
}

TEST(RecoverManifest, RejectsAlienHeaderAndMalformedLines) {
  EXPECT_THROW(Manifest::parse("", "test"), IoError);
  EXPECT_THROW(Manifest::parse("not-a-checkpoint v1\n", "test"),
               IoError);
  EXPECT_THROW(Manifest::parse("fgcs-checkpoint v99\n", "test"),
               IoError);

  // A structurally valid file with a garbage shard line must not parse
  // even with a correct trailing CRC.
  std::string body =
      "fgcs-checkpoint v1\n"
      "fingerprint 00000000000000ff\n"
      "shard_count 2\n"
      "shard zero seg.trc2 st.state 0 1 10 00000000 1 00000000 0\n";
  char crc_line[32];
  std::snprintf(crc_line, sizeof crc_line, "crc %08x\n",
                util::crc32(body.data(), body.size()));
  EXPECT_THROW(Manifest::parse(body + crc_line, "test"), IoError);
}

TEST(RecoverManifest, RejectsDuplicateAndOutOfRangeShards) {
  Manifest m = sample_manifest();
  m.shards.push_back(sample_shard(2));  // duplicate of an existing entry
  EXPECT_THROW(Manifest::parse(m.serialize(), "test"), IoError);

  Manifest n = sample_manifest();
  n.shards.push_back(sample_shard(n.shard_count));  // index == count
  EXPECT_THROW(Manifest::parse(n.serialize(), "test"), IoError);

  Manifest z = sample_manifest();
  z.shards[0].machine_count = 0;
  EXPECT_THROW(Manifest::parse(z.serialize(), "test"), IoError);
}

// --- fingerprint -----------------------------------------------------------

TEST(RecoverManifest, FingerprintIsStableForEqualIdentities) {
  EXPECT_EQ(fingerprint(sample_identity()), fingerprint(sample_identity()));
}

TEST(RecoverManifest, FingerprintIsSensitiveToEveryField) {
  const std::uint64_t base = fingerprint(sample_identity());
  SweepIdentity id;

  id = sample_identity(); id.machines = 25;
  EXPECT_NE(fingerprint(id), base) << "machines";
  id = sample_identity(); id.days = 8;
  EXPECT_NE(fingerprint(id), base) << "days";
  id = sample_identity(); id.start_dow = 2;
  EXPECT_NE(fingerprint(id), base) << "start_dow";
  id = sample_identity(); id.seed = 20050816;
  EXPECT_NE(fingerprint(id), base) << "seed";
  id = sample_identity(); id.shard_machines = 8;
  EXPECT_NE(fingerprint(id), base) << "shard_machines";
  id = sample_identity(); id.fault_plan = "crash:0.1";
  EXPECT_NE(fingerprint(id), base) << "fault_plan";
  id = sample_identity(); id.metrics = false;
  EXPECT_NE(fingerprint(id), base) << "metrics";
  id = sample_identity(); id.metrics_resolution_us = 60000000;
  EXPECT_NE(fingerprint(id), base) << "metrics_resolution_us";
  id = sample_identity(); id.ram_mb = 2048.0;
  EXPECT_NE(fingerprint(id), base) << "ram_mb";
  id = sample_identity(); id.kernel_mb = 200.0;
  EXPECT_NE(fingerprint(id), base) << "kernel_mb";
  id = sample_identity(); id.th1 = 0.25;
  EXPECT_NE(fingerprint(id), base) << "th1";
  id = sample_identity(); id.th2 = 0.65;
  EXPECT_NE(fingerprint(id), base) << "th2";
  id = sample_identity(); id.sample_period_us = 30000000;
  EXPECT_NE(fingerprint(id), base) << "sample_period_us";
}

TEST(RecoverManifest, ShardRngKeysDifferPerShardAndPerSeed) {
  EXPECT_NE(shard_rng_key(1, 0), shard_rng_key(1, 4));
  EXPECT_NE(shard_rng_key(1, 0), shard_rng_key(2, 0));
  EXPECT_EQ(shard_rng_key(1, 0), shard_rng_key(1, 0));
}

// --- shard state blobs -----------------------------------------------------

TEST_F(ManifestDirTest, ShardStateRoundTripsAndDetectsCorruption) {
  ShardState state;
  state.counters.testbed_machines = 3;
  state.counters.sim_events_executed = 4321;
  state.records = 4321;
  state.ts_bins = {1, 2, 3, 4, 5, 6, 7, 8};

  const std::string blob = path(shard_state_name(7));
  EXPECT_EQ(shard_state_name(7), "shard-0007.state");
  const std::uint32_t crc = write_shard_state(blob, state);
  EXPECT_EQ(crc, util::file_crc32(blob));

  const ShardState back = read_shard_state(blob);
  EXPECT_EQ(back.records, 4321u);
  EXPECT_EQ(back.counters.testbed_machines, 3u);
  EXPECT_EQ(back.counters.sim_events_executed, 4321u);
  EXPECT_EQ(back.ts_bins, state.ts_bins);

  // Flip one payload byte: the trailing CRC must catch it.
  {
    std::fstream f(blob, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(16);
    char c;
    f.seekg(16); f.get(c);
    f.seekp(16); f.put(static_cast<char>(c ^ 0x01));
  }
  EXPECT_THROW(read_shard_state(blob), IoError);
  EXPECT_THROW(read_shard_state(path("missing.state")), IoError);
}

// --- plan_resume -----------------------------------------------------------

TEST_F(ManifestDirTest, MissingManifestMeansFreshStart) {
  const ResumePlan plan = plan_resume(dir_, 0x1234, 4, 1);
  EXPECT_TRUE(plan.valid.empty());
  EXPECT_TRUE(plan.dropped.empty());
}

TEST_F(ManifestDirTest, WrongFingerprintOrShardCountIsLoud) {
  Manifest m;
  m.fingerprint = 0xAAAA;
  m.shard_count = 4;
  const std::string text = m.serialize();
  util::atomic_replace_file(manifest_path(dir_), text.data(), text.size());

  EXPECT_NO_THROW(plan_resume(dir_, 0xAAAA, 4, 1));
  EXPECT_THROW(plan_resume(dir_, 0xBBBB, 4, 1), IoError);
  EXPECT_THROW(plan_resume(dir_, 0xAAAA, 5, 1), IoError);
}

TEST_F(ManifestDirTest, ValidatesEveryClaimedFileAndDropsTheRest) {
  // Build a manifest claiming three shards; give shard 0 perfect files,
  // shard 1 a resized segment, and shard 2 no state blob at all.
  const std::uint64_t seed = 99;
  const std::string seg_bytes = "columnar segment stand-in";
  ShardState st;
  st.records = 10;

  Manifest m;
  m.fingerprint = 0xF00D;
  m.shard_count = 3;
  for (std::uint64_t i = 0; i < 3; ++i) {
    ShardCheckpoint cp;
    cp.shard = i;
    cp.first_machine = static_cast<std::uint32_t>(i * 2);
    cp.machine_count = 2;
    cp.records = 10;
    cp.segment_name = "seg-" + std::to_string(i) + ".trc2";
    cp.state_name = "st-" + std::to_string(i) + ".state";
    cp.rng_key = shard_rng_key(seed, cp.first_machine);
    write_file(cp.segment_name, seg_bytes);
    cp.segment_crc = util::crc32(seg_bytes.data(), seg_bytes.size());
    cp.segment_bytes = seg_bytes.size();
    cp.state_crc = write_shard_state(path(cp.state_name), st);
    m.shards.push_back(cp);
  }
  write_file(m.shards[1].segment_name, seg_bytes + "!");  // resized
  fs::remove(path(m.shards[2].state_name));               // missing

  const std::string text = m.serialize();
  util::atomic_replace_file(manifest_path(dir_), text.data(), text.size());

  const ResumePlan plan = plan_resume(dir_, 0xF00D, 3, seed);
  ASSERT_EQ(plan.valid.size(), 1u);
  EXPECT_EQ(plan.valid[0].shard, 0u);
  EXPECT_EQ(plan.dropped.size(), 2u);
}

TEST_F(ManifestDirTest, StaleRngKeyIsDroppedNotSpliced) {
  const std::string seg_bytes = "segment";
  ShardState st;
  st.records = 1;

  Manifest m;
  m.fingerprint = 0xF00D;
  m.shard_count = 1;
  ShardCheckpoint cp;
  cp.shard = 0;
  cp.first_machine = 0;
  cp.machine_count = 2;
  cp.records = 1;
  cp.segment_name = "seg.trc2";
  cp.state_name = "st.state";
  cp.rng_key = shard_rng_key(123, 0) ^ 1;  // derivation "changed"
  write_file(cp.segment_name, seg_bytes);
  cp.segment_crc = util::crc32(seg_bytes.data(), seg_bytes.size());
  cp.segment_bytes = seg_bytes.size();
  cp.state_crc = write_shard_state(path(cp.state_name), st);
  m.shards.push_back(cp);

  const std::string text = m.serialize();
  util::atomic_replace_file(manifest_path(dir_), text.data(), text.size());

  const ResumePlan plan = plan_resume(dir_, 0xF00D, 1, 123);
  EXPECT_TRUE(plan.valid.empty());
  ASSERT_EQ(plan.dropped.size(), 1u);
}

// --- CheckpointLog ---------------------------------------------------------

TEST_F(ManifestDirTest, CheckpointLogCommitsDurablyAndRejectsDuplicates) {
  CheckpointLog log(dir_, 0xBEEF, 4);
  log.commit(sample_shard(1));
  log.commit(sample_shard(3));

  // The on-disk manifest is parseable and lists both shards in order.
  std::ifstream in(manifest_path(dir_), std::ios::binary);
  const std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  const Manifest on_disk = Manifest::parse(text, "on-disk");
  EXPECT_EQ(on_disk.fingerprint, 0xBEEFu);
  ASSERT_EQ(on_disk.shards.size(), 2u);
  EXPECT_EQ(on_disk.shards[0].shard, 1u);
  EXPECT_EQ(on_disk.shards[1].shard, 3u);
  EXPECT_FALSE(fs::exists(manifest_path(dir_) + ".tmp"));

  // Double-committing a shard is a caller bug, not an I/O condition.
  EXPECT_THROW(log.commit(sample_shard(3)), ConfigError);
  EXPECT_EQ(log.snapshot().shards.size(), 2u);
}

TEST_F(ManifestDirTest, PreloadedShardsSurviveTheNextRewrite) {
  CheckpointLog log(dir_, 0xBEEF, 4);
  log.preload({sample_shard(0), sample_shard(2)});
  log.commit(sample_shard(1));

  std::ifstream in(manifest_path(dir_), std::ios::binary);
  const std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  const Manifest on_disk = Manifest::parse(text, "on-disk");
  ASSERT_EQ(on_disk.shards.size(), 3u);
  EXPECT_EQ(on_disk.shards[0].shard, 0u);
  EXPECT_EQ(on_disk.shards[1].shard, 1u);
  EXPECT_EQ(on_disk.shards[2].shard, 2u);
}

}  // namespace
}  // namespace fgcs::recover

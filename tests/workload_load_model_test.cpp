// Tests for the testbed host-load model: trajectories, overlays, profiles,
// generation invariants.
#include <gtest/gtest.h>

#include <algorithm>

#include "fgcs/util/error.hpp"
#include "fgcs/workload/load_model.hpp"

namespace fgcs::workload {
namespace {

using namespace sim::time_literals;
using sim::SimDuration;
using sim::SimTime;

SimTime at(std::int64_t s) { return SimTime::epoch() + SimDuration::seconds(s); }

TEST(LoadTrajectory, StepFunctionLookup) {
  LoadTrajectory traj({{at(0), 0.1, 100.0},
                       {at(10), 0.5, 200.0},
                       {at(20), 0.2, 50.0}});
  EXPECT_DOUBLE_EQ(traj.cpu_at(at(0)), 0.1);
  EXPECT_DOUBLE_EQ(traj.cpu_at(at(9)), 0.1);
  EXPECT_DOUBLE_EQ(traj.cpu_at(at(10)), 0.5);
  EXPECT_DOUBLE_EQ(traj.cpu_at(at(15)), 0.5);
  EXPECT_DOUBLE_EQ(traj.cpu_at(at(25)), 0.2);
  EXPECT_DOUBLE_EQ(traj.mem_at(at(12)), 200.0);
}

TEST(LoadTrajectory, EarlyTimesClampToFirstPoint) {
  LoadTrajectory traj({{at(10), 0.7, 10.0}});
  EXPECT_DOUBLE_EQ(traj.cpu_at(at(0)), 0.7);
}

TEST(LoadTrajectory, RejectsUnsortedPoints) {
  EXPECT_THROW(LoadTrajectory({{at(10), 0.1, 0.0}, {at(5), 0.2, 0.0}}),
               ConfigError);
  EXPECT_THROW(LoadTrajectory({{at(5), 0.1, 0.0}, {at(5), 0.2, 0.0}}),
               ConfigError);
}

TEST(LoadTrajectory, CursorMatchesBinarySearch) {
  std::vector<LoadPoint> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({at(i * 7), i * 0.01, static_cast<double>(i)});
  }
  LoadTrajectory traj(pts);
  LoadTrajectory::Cursor cursor(traj);
  for (int s = 0; s < 700; s += 3) {
    ASSERT_DOUBLE_EQ(cursor.at(at(s)).cpu, traj.cpu_at(at(s))) << s;
  }
}

TEST(LoadOverlay, SumsOverlappingContributions) {
  LoadOverlay ov;
  ov.add_cpu(at(0), at(100), 0.3);
  ov.add_cpu(at(50), at(150), 0.4);
  const auto traj = ov.build(SimTime::epoch());
  EXPECT_DOUBLE_EQ(traj.cpu_at(at(10)), 0.3);
  EXPECT_DOUBLE_EQ(traj.cpu_at(at(60)), 0.7);
  EXPECT_DOUBLE_EQ(traj.cpu_at(at(120)), 0.4);
  EXPECT_DOUBLE_EQ(traj.cpu_at(at(200)), 0.0);
}

TEST(LoadOverlay, CapsCpuAtOne) {
  LoadOverlay ov;
  ov.add_cpu(at(0), at(10), 0.8);
  ov.add_cpu(at(0), at(10), 0.9);
  const auto traj = ov.build(SimTime::epoch());
  EXPECT_DOUBLE_EQ(traj.cpu_at(at(5)), 1.0);
}

TEST(LoadOverlay, MemorySumsWithoutCap) {
  LoadOverlay ov;
  ov.add_mem(at(0), at(10), 700.0);
  ov.add_mem(at(5), at(15), 600.0);
  const auto traj = ov.build(SimTime::epoch());
  EXPECT_DOUBLE_EQ(traj.mem_at(at(7)), 1300.0);
}

TEST(LoadOverlay, EmptyIntervalRejected) {
  LoadOverlay ov;
  EXPECT_THROW(ov.add_cpu(at(5), at(5), 0.5), ConfigError);
  EXPECT_THROW(ov.add_mem(at(5), at(4), 10.0), ConfigError);
}

TEST(HourlyRates, DailyTotal) {
  HourlyRates r;
  r.weekday[3] = 0.5;
  r.weekday[10] = 1.5;
  r.weekend[0] = 0.25;
  EXPECT_DOUBLE_EQ(r.daily_total(false), 2.0);
  EXPECT_DOUBLE_EQ(r.daily_total(true), 0.25);
}

TEST(Calendar, IsWeekendDay) {
  // start_dow = 0 (Monday): days 5, 6 are the first weekend.
  EXPECT_FALSE(is_weekend_day(0));
  EXPECT_FALSE(is_weekend_day(4));
  EXPECT_TRUE(is_weekend_day(5));
  EXPECT_TRUE(is_weekend_day(6));
  EXPECT_FALSE(is_weekend_day(7));
  EXPECT_TRUE(is_weekend_day(12));
  // Saturday start.
  EXPECT_TRUE(is_weekend_day(0, 5));
  EXPECT_FALSE(is_weekend_day(2, 5));
}

TEST(LabProfile, BuiltinsValidate) {
  EXPECT_NO_THROW(LabProfile::purdue_lab().validate());
  EXPECT_NO_THROW(LabProfile::enterprise_desktop().validate());
}

TEST(LabProfile, ValidationRejectsBadValues) {
  auto p = LabProfile::purdue_lab();
  p.cpu_episode_rate.weekday[0] = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);

  p = LabProfile::purdue_lab();
  p.base_load_weekday[10] = 0.9;  // above the background cap
  EXPECT_THROW(p.validate(), ConfigError);

  p = LabProfile::purdue_lab();
  p.updatedb_hour = 24;
  EXPECT_THROW(p.validate(), ConfigError);

  p = LabProfile::purdue_lab();
  p.choppy_probability = 1.5;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(GenerateMachineLoad, Deterministic) {
  const auto profile = LabProfile::purdue_lab();
  const auto a = generate_machine_load(profile, 42, 3, 7);
  const auto b = generate_machine_load(profile, 42, 3, 7);
  ASSERT_EQ(a.load.points().size(), b.load.points().size());
  for (std::size_t i = 0; i < a.load.points().size(); ++i) {
    ASSERT_EQ(a.load.points()[i].t, b.load.points()[i].t);
    ASSERT_EQ(a.load.points()[i].cpu, b.load.points()[i].cpu);
  }
  ASSERT_EQ(a.downtimes.size(), b.downtimes.size());
}

TEST(GenerateMachineLoad, MachinesDiffer) {
  const auto profile = LabProfile::purdue_lab();
  const auto a = generate_machine_load(profile, 42, 0, 7);
  const auto b = generate_machine_load(profile, 42, 1, 7);
  EXPECT_NE(a.load.points().size(), b.load.points().size());
}

TEST(GenerateMachineLoad, UpdatedbSpikesEveryDay) {
  auto profile = LabProfile::purdue_lab();
  const int days = 10;
  const auto trace = generate_machine_load(profile, 7, 0, days);
  for (int d = 0; d < days; ++d) {
    const SimTime probe = SimTime::epoch() + SimDuration::days(d) +
                          SimDuration::hours(4) + 10_min;
    EXPECT_GT(trace.load.cpu_at(probe), 0.6) << "day " << d;
  }
}

TEST(GenerateMachineLoad, NoUpdatedbWhenDisabled) {
  auto profile = LabProfile::purdue_lab();
  profile.updatedb_enabled = false;
  // Also silence other load sources to isolate the cron.
  profile.cpu_episode_rate = HourlyRates{};
  profile.mem_episode_rate = HourlyRates{};
  profile.busy_episode_rate = HourlyRates{};
  profile.spike_rate_per_day = 0.0;
  const auto trace = generate_machine_load(profile, 7, 0, 5);
  for (int d = 0; d < 5; ++d) {
    const SimTime probe = SimTime::epoch() + SimDuration::days(d) +
                          SimDuration::hours(4) + 10_min;
    EXPECT_LT(trace.load.cpu_at(probe), 0.6) << "day " << d;
  }
}

TEST(GenerateMachineLoad, DowntimesSortedAndDisjoint) {
  auto profile = LabProfile::purdue_lab();
  profile.reboot_rate_per_day = 0.5;  // exaggerate to get many
  profile.failure_rate_per_day = 0.1;
  const auto trace = generate_machine_load(profile, 11, 0, 60);
  ASSERT_GT(trace.downtimes.size(), 5u);
  for (std::size_t i = 1; i < trace.downtimes.size(); ++i) {
    const auto& prev = trace.downtimes[i - 1];
    const auto& cur = trace.downtimes[i];
    EXPECT_GE(cur.start.as_micros(),
              (prev.start + prev.duration).as_micros());
  }
}

TEST(GenerateMachineLoad, RebootsShorterThanFailures) {
  auto profile = LabProfile::purdue_lab();
  profile.reboot_rate_per_day = 0.5;
  profile.failure_rate_per_day = 0.2;
  const auto trace = generate_machine_load(profile, 13, 0, 120);
  for (const auto& d : trace.downtimes) {
    if (d.is_reboot) {
      EXPECT_LT(d.duration, 1_min);
    }
  }
}

TEST(GenerateMachineLoad, BackgroundStaysBelowTh2) {
  auto profile = LabProfile::purdue_lab();
  profile.cpu_episode_rate = HourlyRates{};
  profile.mem_episode_rate = HourlyRates{};
  profile.busy_episode_rate = HourlyRates{};
  profile.spike_rate_per_day = 0.0;
  profile.updatedb_enabled = false;
  const auto trace = generate_machine_load(profile, 3, 0, 7);
  for (const auto& pt : trace.load.points()) {
    EXPECT_LT(pt.cpu, 0.60);
  }
}

TEST(GenerateMachineLoad, BusyEpisodesStayBelowTh2) {
  auto profile = LabProfile::purdue_lab();
  profile.cpu_episode_rate = HourlyRates{};
  profile.mem_episode_rate = HourlyRates{};
  profile.spike_rate_per_day = 0.0;
  profile.updatedb_enabled = false;
  const auto trace = generate_machine_load(profile, 5, 0, 30);
  for (const auto& pt : trace.load.points()) {
    EXPECT_LT(pt.cpu, 0.60) << pt.t.str();
  }
}

TEST(GenerateMachineLoad, CpuValuesAlwaysInRange) {
  const auto trace =
      generate_machine_load(LabProfile::purdue_lab(), 17, 2, 30);
  for (const auto& pt : trace.load.points()) {
    ASSERT_GE(pt.cpu, 0.0);
    ASSERT_LE(pt.cpu, 1.0);
    ASSERT_GE(pt.mem_mb, 0.0);
  }
}

TEST(GenerateMachineLoad, RequiresPositiveDays) {
  EXPECT_THROW(generate_machine_load(LabProfile::purdue_lab(), 1, 0, 0),
               ConfigError);
}

TEST(GenerateMachineLoad, EnterpriseQuietAtNight) {
  const auto trace =
      generate_machine_load(LabProfile::enterprise_desktop(), 19, 0, 14);
  // Probe 2-3 AM every day: office machines are idle.
  for (int d = 0; d < 14; ++d) {
    const SimTime probe =
        SimTime::epoch() + SimDuration::days(d) + SimDuration::hours(2);
    EXPECT_LT(trace.load.cpu_at(probe), 0.3) << "day " << d;
  }
}

}  // namespace
}  // namespace fgcs::workload

// Tests for the trace calendar.
#include <gtest/gtest.h>

#include "fgcs/trace/calendar.hpp"

namespace fgcs::trace {
namespace {

using namespace sim::time_literals;
using sim::SimDuration;
using sim::SimTime;

TEST(TraceCalendar, DayIndex) {
  TraceCalendar cal;
  EXPECT_EQ(cal.day_index(SimTime::epoch()), 0);
  EXPECT_EQ(cal.day_index(SimTime::epoch() + 23_h), 0);
  EXPECT_EQ(cal.day_index(SimTime::epoch() + 24_h), 1);
  EXPECT_EQ(cal.day_index(SimTime::epoch() + SimDuration::days(91) + 5_h), 91);
}

TEST(TraceCalendar, HourOfDay) {
  TraceCalendar cal;
  EXPECT_EQ(cal.hour_of_day(SimTime::epoch()), 0);
  EXPECT_EQ(cal.hour_of_day(SimTime::epoch() + 4_h + 30_min), 4);
  EXPECT_EQ(cal.hour_of_day(SimTime::epoch() + SimDuration::days(3) + 23_h), 23);
}

TEST(TraceCalendar, DayOfWeekFromMondayStart) {
  TraceCalendar cal(DayOfWeek::kMonday);
  EXPECT_EQ(cal.day_of_week_for_day(0), DayOfWeek::kMonday);
  EXPECT_EQ(cal.day_of_week_for_day(4), DayOfWeek::kFriday);
  EXPECT_EQ(cal.day_of_week_for_day(5), DayOfWeek::kSaturday);
  EXPECT_EQ(cal.day_of_week_for_day(6), DayOfWeek::kSunday);
  EXPECT_EQ(cal.day_of_week_for_day(7), DayOfWeek::kMonday);
}

TEST(TraceCalendar, WeekendDetection) {
  TraceCalendar cal;
  EXPECT_FALSE(cal.is_weekend_day(0));
  EXPECT_TRUE(cal.is_weekend_day(5));
  EXPECT_TRUE(cal.is_weekend_day(6));
  EXPECT_FALSE(cal.is_weekend_day(7));
  EXPECT_TRUE(cal.is_weekend(SimTime::epoch() + SimDuration::days(5) + 3_h));
}

TEST(TraceCalendar, NonMondayStart) {
  TraceCalendar cal(DayOfWeek::kSaturday);
  EXPECT_TRUE(cal.is_weekend_day(0));
  EXPECT_TRUE(cal.is_weekend_day(1));
  EXPECT_FALSE(cal.is_weekend_day(2));
}

TEST(TraceCalendar, DayStart) {
  TraceCalendar cal;
  EXPECT_EQ(cal.day_start(0), SimTime::epoch());
  EXPECT_EQ(cal.day_start(10), SimTime::epoch() + SimDuration::days(10));
}

TEST(TraceCalendar, Label) {
  TraceCalendar cal;
  const SimTime t = SimTime::epoch() + SimDuration::days(12) + 14_h + 5_min;
  EXPECT_EQ(cal.label(t), "day 12 (Sat) 14:05");
}

TEST(DayOfWeek, Names) {
  EXPECT_STREQ(to_string(DayOfWeek::kMonday), "Mon");
  EXPECT_STREQ(to_string(DayOfWeek::kSunday), "Sun");
}

}  // namespace
}  // namespace fgcs::trace

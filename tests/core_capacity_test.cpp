// Tests for the detailed testbed outputs: state timelines and the
// deliverable-capacity profile.
#include <gtest/gtest.h>

#include "fgcs/core/testbed.hpp"

namespace fgcs::core {
namespace {

using monitor::AvailabilityState;

TestbedConfig small_config() {
  TestbedConfig cfg;
  cfg.machines = 3;
  cfg.days = 14;
  return cfg;
}

TEST(TestbedDetail, TimelineConsistentWithRecords) {
  const auto detail = run_testbed_machine_detailed(small_config(), 0);
  // Failure-state time in the timeline equals the summed record durations.
  sim::SimDuration record_time = sim::SimDuration::zero();
  for (const auto& r : detail.records) record_time += r.duration();
  const sim::SimDuration timeline_failure_time =
      detail.timeline.time_in(AvailabilityState::kS3CpuUnavailable) +
      detail.timeline.time_in(AvailabilityState::kS4MemoryThrashing) +
      detail.timeline.time_in(AvailabilityState::kS5MachineUnavailable);
  // S3 episodes start at the excursion start (before the confirming
  // transition), so records may be slightly longer than timeline time.
  const double diff_h =
      (record_time - timeline_failure_time).as_hours();
  EXPECT_GE(diff_h, 0.0);
  EXPECT_LT(diff_h, 0.05 * record_time.as_hours() + 1.0);
}

TEST(TestbedDetail, RecordsMatchPlainRun) {
  const auto cfg = small_config();
  const auto detail = run_testbed_machine_detailed(cfg, 1);
  const auto plain = run_testbed_machine(cfg, 1);
  ASSERT_EQ(detail.records.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(detail.records[i].start, plain[i].start);
    EXPECT_EQ(detail.records[i].cause, plain[i].cause);
  }
}

TEST(TestbedDetail, OccupancyFractionsSumToOne) {
  const auto detail = run_testbed_machine_detailed(small_config(), 2);
  double sum = 0.0;
  for (const auto s :
       {AvailabilityState::kS1FullAvailability,
        AvailabilityState::kS2LowestPriority,
        AvailabilityState::kS3CpuUnavailable,
        AvailabilityState::kS4MemoryThrashing,
        AvailabilityState::kS5MachineUnavailable}) {
    sum += detail.timeline.fraction_in(s);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(detail.timeline.availability(), 0.4);
  EXPECT_LT(detail.timeline.availability(), 0.95);
}

TEST(CapacityProfile, ValuesAreSane) {
  const auto profile = run_capacity_profile(small_config());
  for (int h = 0; h < 24; ++h) {
    const auto hh = static_cast<std::size_t>(h);
    EXPECT_GE(profile.weekday_cpu[hh], 0.0);
    EXPECT_LE(profile.weekday_cpu[hh], 1.0);
    EXPECT_GE(profile.weekend_cpu[hh], 0.0);
    EXPECT_LE(profile.weekend_cpu[hh], 1.0);
    EXPECT_GE(profile.weekday_free_mem[hh], 0.0);
    EXPECT_LE(profile.weekday_free_mem[hh], 1024.0);
  }
  EXPECT_GT(profile.overall_cpu, 0.3);
  EXPECT_LT(profile.overall_cpu, 1.0);
  EXPECT_GT(profile.overall_usable, 0.4);
  EXPECT_LE(profile.overall_usable, 1.0);
}

TEST(CapacityProfile, UpdatedbHourDeliversLess) {
  const auto profile = run_capacity_profile(small_config());
  // Hour 4-5 (updatedb) must deliver far less than the pre-dawn hours.
  EXPECT_LT(profile.weekday_cpu[4], profile.weekday_cpu[3] - 0.2);
  EXPECT_LT(profile.weekend_cpu[4], profile.weekend_cpu[3] - 0.2);
}

TEST(CapacityProfile, NightDeliversMoreThanAfternoon) {
  const auto profile = run_capacity_profile(small_config());
  EXPECT_GT(profile.weekday_cpu[3], profile.weekday_cpu[14]);
}

TEST(CapacityProfile, WeekendAfternoonBeatsWeekday) {
  // Compare whole afternoons on a larger sample (few weekend days exist
  // in a two-week config).
  auto cfg = small_config();
  cfg.machines = 6;
  cfg.days = 35;
  const auto profile = run_capacity_profile(cfg);
  double wd = 0.0, we = 0.0;
  for (std::size_t h = 12; h < 18; ++h) {
    wd += profile.weekday_cpu[h];
    we += profile.weekend_cpu[h];
  }
  EXPECT_GT(we, wd);
}

TEST(CapacityProfile, DisablingUpdatedbRestoresHour4) {
  auto cfg = small_config();
  cfg.profile.updatedb_enabled = false;
  const auto profile = run_capacity_profile(cfg);
  EXPECT_GT(profile.weekday_cpu[4], 0.8);
}

}  // namespace
}  // namespace fgcs::core

// Tests for InlineFunction: the small-buffer, move-only callable used as
// the event-queue and thread-pool task currency.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "fgcs/util/inline_function.hpp"

namespace fgcs::util {
namespace {

TEST(InlineFunction, DefaultConstructedIsEmpty) {
  InlineFunction<int()> f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, InvokesWithArgumentsAndReturn) {
  InlineFunction<int(int, int)> f = [](int a, int b) { return a * 10 + b; };
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(3, 4), 34);
}

TEST(InlineFunction, SmallCapturesStayInline) {
  int x = 5;
  InlineFunction<int()> f = [x] { return x + 1; };
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(), 6);
}

TEST(InlineFunction, LargeCapturesSpillToHeap) {
  struct Big {
    char bytes[128] = {};
  };
  Big big;
  big.bytes[100] = 9;
  InlineFunction<int()> f = [big] { return big.bytes[100]; };
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(f(), 9);
}

TEST(InlineFunction, MoveTransfersTarget) {
  InlineFunction<int()> a = [] { return 17; };
  InlineFunction<int()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(b(), 17);
}

TEST(InlineFunction, MoveAssignDestroysPreviousTarget) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  InlineFunction<void()> f = [t = std::move(token)] { (void)t; };
  EXPECT_FALSE(watch.expired());
  f = [] {};
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunction, ResetReleasesCaptures) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  InlineFunction<void()> f = [t = std::move(token)] { (void)t; };
  f.reset();
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunction, DestructorReleasesCaptures) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    InlineFunction<void()> f = [t = std::move(token)] { (void)t; };
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunction, HeapTargetReleasedOnDestruction) {
  struct Big {
    std::shared_ptr<int> token;
    char pad[128] = {};
  };
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    InlineFunction<void()> f = [b = Big{std::move(token)}] { (void)b; };
    EXPECT_FALSE(f.is_inline());
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunction, MoveOnlyCapturesWork) {
  auto p = std::make_unique<int>(21);
  InlineFunction<int()> f = [p = std::move(p)] { return *p * 2; };
  InlineFunction<int()> g = std::move(f);
  EXPECT_EQ(g(), 42);
}

TEST(InlineFunction, MutableStatePersistsAcrossCalls) {
  InlineFunction<int()> f = [n = 0]() mutable { return ++n; };
  EXPECT_EQ(f(), 1);
  EXPECT_EQ(f(), 2);
  EXPECT_EQ(f(), 3);
}

TEST(InlineFunction, CapacityMatchesTemplateParameter) {
  EXPECT_EQ((InlineFunction<void(), 48>::capacity()), 48u);
  EXPECT_EQ((InlineFunction<void(), 64>::capacity()), 64u);
}

TEST(InlineFunction, ReferenceArgumentsPassThrough) {
  InlineFunction<void(int&)> f = [](int& v) { v += 5; };
  int value = 1;
  f(value);
  EXPECT_EQ(value, 6);
}

}  // namespace
}  // namespace fgcs::util

// Tests for the five-state availability model and unavailability detector.
#include <gtest/gtest.h>

#include "fgcs/monitor/detector.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::monitor {
namespace {

using namespace sim::time_literals;
using sim::SimDuration;
using sim::SimTime;

constexpr auto S1 = AvailabilityState::kS1FullAvailability;
constexpr auto S2 = AvailabilityState::kS2LowestPriority;
constexpr auto S3 = AvailabilityState::kS3CpuUnavailable;
constexpr auto S4 = AvailabilityState::kS4MemoryThrashing;
constexpr auto S5 = AvailabilityState::kS5MachineUnavailable;

TEST(AvailabilityState, Names) {
  EXPECT_STREQ(to_string(S1), "S1");
  EXPECT_STREQ(to_string(S5), "S5");
  EXPECT_EQ(availability_state_from_string("S3"), S3);
  EXPECT_THROW(availability_state_from_string("S9"), ConfigError);
}

TEST(AvailabilityState, Predicates) {
  EXPECT_FALSE(is_failure(S1));
  EXPECT_FALSE(is_failure(S2));
  EXPECT_TRUE(is_failure(S3));
  EXPECT_TRUE(is_failure(S4));
  EXPECT_TRUE(is_failure(S5));
  EXPECT_TRUE(is_uec(S3));
  EXPECT_TRUE(is_uec(S4));
  EXPECT_FALSE(is_uec(S5));
  EXPECT_FALSE(is_uec(S1));
}

TEST(ThresholdPolicy, Validation) {
  ThresholdPolicy p;
  p.th1 = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = ThresholdPolicy{};
  p.th2 = p.th1;
  EXPECT_THROW(p.validate(), ConfigError);
  p = ThresholdPolicy{};
  p.sample_period = SimDuration::zero();
  EXPECT_THROW(p.validate(), ConfigError);
  EXPECT_NO_THROW(ThresholdPolicy::linux_testbed().validate());
}

// A small harness feeding samples at a fixed period.
class DetectorHarness {
 public:
  explicit DetectorHarness(ThresholdPolicy policy = ThresholdPolicy::linux_testbed())
      : detector_(policy) {}

  AvailabilityState feed(double cpu, double free_mem = 900.0,
                         bool alive = true) {
    t_ += 15_s;
    return detector_.observe({t_, cpu, free_mem, alive});
  }

  AvailabilityState feed_for(SimDuration span, double cpu,
                             double free_mem = 900.0, bool alive = true) {
    AvailabilityState s = detector_.state();
    const auto steps = span.as_micros() / (15_s).as_micros();
    for (std::int64_t i = 0; i < steps; ++i) s = feed(cpu, free_mem, alive);
    return s;
  }

  UnavailabilityDetector detector_;
  SimTime t_ = SimTime::epoch();
};

TEST(Detector, StartsAvailable) {
  UnavailabilityDetector d{ThresholdPolicy::linux_testbed()};
  EXPECT_EQ(d.state(), S1);
}

TEST(Detector, LightLoadIsS1) {
  DetectorHarness h;
  EXPECT_EQ(h.feed(0.1), S1);
  EXPECT_EQ(h.feed(0.19), S1);
}

TEST(Detector, ModerateLoadIsS2) {
  DetectorHarness h;
  EXPECT_EQ(h.feed(0.20), S2);  // Th1 inclusive
  EXPECT_EQ(h.feed(0.45), S2);
  EXPECT_EQ(h.feed(0.60), S2);  // Th2 inclusive: renice suffices
}

TEST(Detector, S1S2Hysteresis) {
  DetectorHarness h;
  EXPECT_EQ(h.feed(0.3), S2);
  EXPECT_EQ(h.feed(0.1), S1);
  EXPECT_EQ(h.feed(0.5), S2);
}

TEST(Detector, TransientSpikeDoesNotFail) {
  DetectorHarness h;
  h.feed(0.3);
  // Three samples above Th2 spanning 30s < 1 min sustain window.
  EXPECT_EQ(h.feed(0.9), S2);
  EXPECT_TRUE(h.detector_.transient_high());
  EXPECT_EQ(h.feed(0.9), S2);
  EXPECT_EQ(h.feed(0.3), S2);  // spike over, no failure
  EXPECT_FALSE(h.detector_.transient_high());
  EXPECT_TRUE(h.detector_.episodes().empty());
}

TEST(Detector, SustainedHighLoadBecomesS3) {
  DetectorHarness h;
  h.feed(0.3);
  AvailabilityState s = h.feed_for(2_min, 0.9);
  EXPECT_EQ(s, S3);
  ASSERT_EQ(h.detector_.episodes().size(), 1u);
  EXPECT_EQ(h.detector_.episodes()[0].cause, S3);
}

TEST(Detector, S3StartsAtExcursionStart) {
  DetectorHarness h;
  h.feed(0.3);  // t = 15s
  const SimTime excursion_start = h.t_ + 15_s;
  h.feed_for(3_min, 0.9);
  ASSERT_FALSE(h.detector_.episodes().empty());
  EXPECT_EQ(h.detector_.episodes()[0].start, excursion_start);
}

TEST(Detector, SpikeResetsSustainTimer) {
  DetectorHarness h;
  // Alternate high-high-low forever: never sustained.
  for (int i = 0; i < 40; ++i) {
    h.feed(0.9);
    h.feed(0.9);
    h.feed(0.3);
  }
  EXPECT_TRUE(h.detector_.episodes().empty());
}

TEST(Detector, S3RecoversWhenLoadDrops) {
  DetectorHarness h;
  h.feed_for(2_min, 0.9);
  ASSERT_EQ(h.detector_.state(), S3);
  EXPECT_EQ(h.feed(0.4), S2);
  ASSERT_EQ(h.detector_.episodes().size(), 1u);
  EXPECT_FALSE(h.detector_.episodes()[0].open);
  EXPECT_EQ(h.detector_.episodes()[0].end, h.t_);
}

TEST(Detector, LowMemoryIsImmediateS4) {
  DetectorHarness h;
  h.feed(0.3);
  EXPECT_EQ(h.feed(0.3, 150.0), S4);  // below the 200 MB guest working set
  ASSERT_EQ(h.detector_.episodes().size(), 1u);
  EXPECT_EQ(h.detector_.episodes()[0].cause, S4);
}

TEST(Detector, S4RecoveryRestoresAvailability) {
  DetectorHarness h;
  h.feed(0.3, 100.0);
  EXPECT_EQ(h.detector_.state(), S4);
  EXPECT_EQ(h.feed(0.3, 800.0), S2);
}

TEST(Detector, S4DuringSustainedHighLoadChainsToS3WithoutGap) {
  DetectorHarness h;
  h.feed_for(3_min, 0.9);  // S3
  ASSERT_EQ(h.detector_.state(), S3);
  h.feed(0.9, 100.0);  // memory exhausted while load stays high -> S4
  EXPECT_EQ(h.detector_.state(), S4);
  h.feed(0.9, 100.0);
  // Memory frees, CPU still high and long-sustained: straight back to S3.
  EXPECT_EQ(h.feed(0.9, 800.0), S3);
  const auto eps = h.detector_.episodes();
  ASSERT_EQ(eps.size(), 3u);
  EXPECT_EQ(eps[0].cause, S3);
  EXPECT_EQ(eps[1].cause, S4);
  EXPECT_EQ(eps[2].cause, S3);
  // Records touch: no fabricated availability between them.
  EXPECT_EQ(eps[0].end, eps[1].start);
  EXPECT_EQ(eps[1].end, eps[2].start);
}

TEST(Detector, ServiceDeadIsS5) {
  DetectorHarness h;
  h.feed(0.3);
  EXPECT_EQ(h.feed(0.0, 900.0, false), S5);
  ASSERT_EQ(h.detector_.episodes().size(), 1u);
  EXPECT_EQ(h.detector_.episodes()[0].cause, S5);
}

TEST(Detector, S5PreemptsEverything) {
  DetectorHarness h;
  EXPECT_EQ(h.feed(0.9, 50.0, false), S5);  // dead beats low-mem + high cpu
}

TEST(Detector, RebootRecoveryIntoHighLoadIsS2ThenS3) {
  DetectorHarness h;
  h.feed(0.2, 900.0, false);
  ASSERT_EQ(h.detector_.state(), S5);
  // Machine back, load instantly high: sustain window restarts.
  EXPECT_EQ(h.feed(0.9), S2);
  EXPECT_EQ(h.feed_for(2_min, 0.9), S3);
}

TEST(Detector, EpisodeRecordsObservationsAtStart) {
  DetectorHarness h;
  h.feed(0.3);
  h.feed(0.95, 700.0);
  h.feed_for(90_s, 0.95, 700.0);
  ASSERT_FALSE(h.detector_.episodes().empty());
  EXPECT_DOUBLE_EQ(h.detector_.episodes()[0].host_cpu_at_start, 0.95);
  EXPECT_DOUBLE_EQ(h.detector_.episodes()[0].free_mem_at_start, 700.0);
}

TEST(Detector, FinishClosesOpenEpisode) {
  DetectorHarness h;
  h.feed_for(2_min, 0.9);
  ASSERT_TRUE(h.detector_.episodes().back().open);
  h.detector_.finish(h.t_ + 1_min);
  EXPECT_FALSE(h.detector_.episodes().back().open);
  EXPECT_EQ(h.detector_.episodes().back().end, h.t_ + 1_min);
}

TEST(Detector, TransitionsAreLogged) {
  DetectorHarness h;
  h.feed(0.1);  // S1 (no transition: initial state)
  h.feed(0.3);  // S1 -> S2
  h.feed(0.1);  // S2 -> S1
  const auto trans = h.detector_.transitions();
  ASSERT_EQ(trans.size(), 2u);
  EXPECT_EQ(trans[0].from, S1);
  EXPECT_EQ(trans[0].to, S2);
  EXPECT_EQ(trans[1].from, S2);
  EXPECT_EQ(trans[1].to, S1);
}

TEST(Detector, CustomThresholds) {
  ThresholdPolicy p;
  p.th1 = 0.10;
  p.th2 = 0.30;
  DetectorHarness h(p);
  EXPECT_EQ(h.feed(0.05), S1);
  EXPECT_EQ(h.feed(0.15), S2);
  EXPECT_EQ(h.feed_for(2_min, 0.35), S3);
}

TEST(Detector, ZeroSustainWindowFailsImmediately) {
  ThresholdPolicy p;
  p.sustain_window = SimDuration::zero();
  DetectorHarness h(p);
  EXPECT_EQ(h.feed(0.9), S3);
}

TEST(Detector, MultipleEpisodesCounted) {
  DetectorHarness h;
  for (int i = 0; i < 5; ++i) {
    h.feed_for(3_min, 0.9);
    h.feed_for(10_min, 0.1);
  }
  EXPECT_EQ(h.detector_.episodes().size(), 5u);
  for (const auto& ep : h.detector_.episodes()) {
    EXPECT_FALSE(ep.open);
    EXPECT_GT(ep.duration(), SimDuration::zero());
  }
}

}  // namespace
}  // namespace fgcs::monitor

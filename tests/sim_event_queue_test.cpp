// Tests for the discrete-event queue: ordering, tie stability, cancellation.
#include <gtest/gtest.h>

#include <vector>

#include "fgcs/sim/event_queue.hpp"

namespace fgcs::sim {
namespace {

using namespace time_literals;

SimTime at(std::int64_t s) { return SimTime::epoch() + SimDuration::seconds(s); }

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), SimTime::max());
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(3), [&] { order.push_back(3); });
  q.schedule(at(1), [&] { order.push_back(1); });
  q.schedule(at(2), [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, RunNextReturnsEventTime) {
  EventQueue q;
  q.schedule(at(7), [] {});
  EXPECT_EQ(q.run_next(), at(7));
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(at(9), [] {});
  q.schedule(at(4), [] {});
  EXPECT_EQ(q.next_time(), at(4));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule(at(1), [&] { fired = true; });
  h.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelOneOfMany) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(1), [&] { order.push_back(1); });
  EventHandle h = q.schedule(at(2), [&] { order.push_back(2); });
  q.schedule(at(3), [&] { order.push_back(3); });
  h.cancel();
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  EventHandle h = q.schedule(at(1), [] {});
  h.cancel();
  h.cancel();
  EXPECT_TRUE(h.cancelled());
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.cancelled());
  h.cancel();  // no-op, no crash
}

TEST(EventQueue, HandleCopiesShareCancellation) {
  EventQueue q;
  bool fired = false;
  EventHandle h1 = q.schedule(at(1), [&] { fired = true; });
  EventHandle h2 = h1;
  h2.cancel();
  EXPECT_TRUE(h1.cancelled());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.schedule(at(1), [] {});
  q.schedule(at(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(1), [&] {
    order.push_back(1);
    q.schedule(at(2), [&] { order.push_back(2); });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, SizeCountsPending) {
  EventQueue q;
  q.schedule(at(1), [] {});
  q.schedule(at(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.run_next();
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace fgcs::sim

// Tests for the discrete-event queue: ordering, tie stability, cancellation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fgcs/obs/observer.hpp"
#include "fgcs/sim/event_queue.hpp"

namespace fgcs::sim {
namespace {

using namespace time_literals;

SimTime at(std::int64_t s) { return SimTime::epoch() + SimDuration::seconds(s); }

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), SimTime::max());
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(3), [&] { order.push_back(3); });
  q.schedule(at(1), [&] { order.push_back(1); });
  q.schedule(at(2), [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, RunNextReturnsEventTime) {
  EventQueue q;
  q.schedule(at(7), [] {});
  EXPECT_EQ(q.run_next(), at(7));
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(at(9), [] {});
  q.schedule(at(4), [] {});
  EXPECT_EQ(q.next_time(), at(4));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule(at(1), [&] { fired = true; });
  h.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelOneOfMany) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(1), [&] { order.push_back(1); });
  EventHandle h = q.schedule(at(2), [&] { order.push_back(2); });
  q.schedule(at(3), [&] { order.push_back(3); });
  h.cancel();
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  EventHandle h = q.schedule(at(1), [] {});
  h.cancel();
  h.cancel();
  EXPECT_TRUE(h.cancelled());
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.cancelled());
  h.cancel();  // no-op, no crash
}

TEST(EventQueue, HandleCopiesShareCancellation) {
  EventQueue q;
  bool fired = false;
  EventHandle h1 = q.schedule(at(1), [&] { fired = true; });
  EventHandle h2 = h1;
  h2.cancel();
  EXPECT_TRUE(h1.cancelled());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.schedule(at(1), [] {});
  q.schedule(at(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(at(1), [&] {
    order.push_back(1);
    q.schedule(at(2), [&] { order.push_back(2); });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, SizeCountsPending) {
  EventQueue q;
  q.schedule(at(1), [] {});
  q.schedule(at(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.run_next();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, LiveSizeExcludesCancelled) {
  EventQueue q;
  q.schedule(at(1), [] {});
  EventHandle h = q.schedule(at(2), [] {});
  q.schedule(at(3), [] {});
  EXPECT_EQ(q.live_size(), 3u);
  h.cancel();
  // live_size drops immediately; size() is a raw upper bound and may
  // still count the tombstone until it is popped or compacted away.
  EXPECT_EQ(q.live_size(), 2u);
  EXPECT_GE(q.size(), q.live_size());
  while (!q.empty()) q.run_next();
  EXPECT_EQ(q.live_size(), 0u);
}

TEST(EventQueue, EmptyTracksLiveEventsNotTombstones) {
  EventQueue q;
  EventHandle h = q.schedule(at(1), [] {});
  h.cancel();
  // The cancelled entry may still sit in the heap, but the queue holds no
  // runnable work.
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), SimTime::max());
}

TEST(EventQueue, CompactionBoundsCancelledBacklog) {
  // Schedule a large far-future batch, cancel all of it, and keep one
  // live event: the periodic compaction must prevent the heap from
  // retaining the full cancelled backlog.
  EventQueue q;
  bool fired = false;
  q.schedule(at(1), [&] { fired = true; });
  std::vector<EventHandle> handles;
  for (int i = 0; i < 4096; ++i) {
    handles.push_back(q.schedule(at(1000 + i), [] {}));
  }
  for (auto& h : handles) h.cancel();
  EXPECT_EQ(q.live_size(), 1u);
  // Compaction runs on the next mutation: one further schedule must sweep
  // the tombstones instead of letting 4096 of them linger behind 2 live
  // events.
  q.schedule(at(2), [] {});
  EXPECT_EQ(q.live_size(), 2u);
  EXPECT_LT(q.size(), 64u);
  q.run_next();
  EXPECT_TRUE(fired);
  q.run_next();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelReleasesCapturesEagerly) {
  // A cancelled event's captures must be destroyed at cancel() time, not
  // when the tombstone is later popped — a handle kept alive must not pin
  // captured state either.
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  EventQueue q;
  EventHandle h = q.schedule(at(1), [t = std::move(token)] { (void)*t; });
  EXPECT_FALSE(watch.expired());
  h.cancel();
  EXPECT_TRUE(watch.expired()) << "cancel() must release the callback";
}

TEST(EventQueue, RunReleasesCapturesAfterFiring) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  EventQueue q;
  q.schedule(at(1), [t = std::move(token)] { (void)*t; });
  q.run_next();
  EXPECT_TRUE(watch.expired());
}

TEST(EventQueue, ClearReleasesCaptures) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  EventQueue q;
  q.schedule(at(1), [t = std::move(token)] { (void)*t; });
  q.clear();
  EXPECT_TRUE(watch.expired());
}

TEST(EventQueue, HandleOutlivesQueue) {
  EventHandle h;
  {
    EventQueue q;
    h = q.schedule(at(1), [] {});
  }
  // The queue died with the event still pending; the handle must stay
  // safe to query and cancel.
  h.cancel();
  EXPECT_TRUE(h.valid());
}

TEST(EventQueue, CancelledAccurateUntilSlotRecycled) {
  EventQueue q;
  EventHandle cancelled = q.schedule(at(1), [] {});
  cancelled.cancel();
  EXPECT_TRUE(cancelled.cancelled());
  EventHandle fired = q.schedule(at(2), [] {});
  while (!q.empty()) q.run_next();
  EXPECT_FALSE(fired.cancelled());  // ran to completion, never cancelled
  // Recycle both slots with fresh events: stale handles must not report
  // the new occupants' state as their own cancellation.
  q.schedule(at(3), [] {});
  q.schedule(at(4), [] {});
  EXPECT_FALSE(fired.cancelled());
  // Cancelling a stale handle must not kill the slot's new occupant.
  fired.cancel();
  EXPECT_EQ(q.live_size(), 2u);
}

TEST(EventQueue, LargeCapturesSpillButStillRun) {
  // Captures beyond the inline buffer take the heap fallback; behavior is
  // identical either way.
  struct Big {
    char bytes[96];
  };
  Big big{};
  big.bytes[0] = 'x';
  EventQueue q;
  char seen = 0;
  q.schedule(at(1), [big, &seen] { seen = big.bytes[0]; });
  q.run_next();
  EXPECT_EQ(seen, 'x');
}

TEST(EventQueue, StressInterleavedScheduleCancelRun) {
  // Deterministic churn across slot reuse, compaction, and execution; the
  // surviving events must fire exactly once, in time order.
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventHandle> doomed;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      const int id = round * 20 + i;
      if (i % 3 == 0) {
        doomed.push_back(q.schedule(at(10 + id), [] {}));
      } else {
        q.schedule(at(10 + id), [&fired, id] { fired.push_back(id); });
      }
    }
    if (round % 2 == 0) {
      for (auto& h : doomed) h.cancel();
      doomed.clear();
    }
  }
  for (auto& h : doomed) h.cancel();
  while (!q.empty()) q.run_next();
  ASSERT_FALSE(fired.empty());
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LT(fired[i - 1], fired[i]);
  }
  std::size_t expected = 0;
  for (int id = 0; id < 1000; ++id) {
    if (id % 20 % 3 != 0) ++expected;
  }
  EXPECT_EQ(fired.size(), expected);
}

// Regression: cancel() reports whether THIS call cancelled a live event,
// and every dead-handle path (fired, double-cancel, inert, recycled) is a
// false-returning no-op.
TEST(EventQueue, CancelReturnsTrueOnlyForTheCancellingCall) {
  EventQueue q;
  EventHandle h = q.schedule(at(1), [] {});
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.cancel()) << "second cancel of the same event";
  EXPECT_TRUE(h.cancelled());
}

TEST(EventQueue, CancelAfterFireIsRejectedNoOp) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule(at(1), [&] { fired = true; });
  q.run_next();
  ASSERT_TRUE(fired);
  EXPECT_FALSE(h.cancel());
  EXPECT_FALSE(h.cancelled());
  EXPECT_FALSE(h.cancel()) << "repeat cancel on a fired event";
}

TEST(EventQueue, CancelOnDefaultHandleReturnsFalse) {
  EventHandle h;
  EXPECT_FALSE(h.cancel());
  EXPECT_FALSE(h.cancel());
}

TEST(EventQueue, CancelThroughCopyConsumesTheOneCancellation) {
  EventQueue q;
  EventHandle h1 = q.schedule(at(1), [] {});
  EventHandle h2 = h1;
  EXPECT_TRUE(h2.cancel());
  EXPECT_FALSE(h1.cancel()) << "the copy already cancelled it";
}

TEST(EventQueue, DoubleCancelBumpsStatsOnce) {
  EventQueue q;
  EventHandle h = q.schedule(at(1), [] {});
  h.cancel();
  h.cancel();
  EventHandle fired_handle = q.schedule(at(2), [] {});
  while (!q.empty()) q.run_next();
  fired_handle.cancel();  // after fire: must not count either
  EXPECT_EQ(q.stats().scheduled, 2u);
  EXPECT_EQ(q.stats().cancelled, 1u);
}

TEST(EventQueue, DrainStatsResetsTheCounters) {
  EventQueue q;
  EventHandle h = q.schedule(at(1), [] {});
  h.cancel();
  const SimEventStats drained = q.drain_stats();
  EXPECT_EQ(drained.scheduled, 1u);
  EXPECT_EQ(drained.cancelled, 1u);
  EXPECT_EQ(q.stats().scheduled, 0u);
  EXPECT_EQ(q.stats().cancelled, 0u);
}

TEST(EventQueue, CancelOnRecycledSlotIsNoOp) {
  // After the cancelled event's slot is reused by a later schedule, the
  // stale handle must not be able to kill the new occupant.
  EventQueue q;
  EventHandle stale = q.schedule(at(1), [] {});
  ASSERT_TRUE(stale.cancel());
  bool fired = false;
  q.schedule(at(2), [&] { fired = true; });  // recycles the slot
  EXPECT_FALSE(stale.cancel());
  while (!q.empty()) q.run_next();
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace fgcs::sim

// Property tests across the whole predictor panel: probabilities stay in
// [0, 1], occurrence estimates stay non-negative, predictions are
// deterministic, and every predictor respects the "history only before
// the query" contract (verified by trace truncation equivalence).
#include <gtest/gtest.h>

#include <memory>

#include "fgcs/core/testbed.hpp"
#include "fgcs/predict/baselines.hpp"
#include "fgcs/predict/history_window.hpp"
#include "fgcs/predict/robust_history.hpp"
#include "fgcs/predict/semi_markov.hpp"

namespace fgcs::predict {
namespace {

using namespace sim::time_literals;
using sim::SimDuration;
using sim::SimTime;

enum class Kind { kHistory, kPooled, kRobust, kSemiMarkov, kRecentRate,
                  kCounter, kAlways };

std::unique_ptr<AvailabilityPredictor> make(Kind kind) {
  switch (kind) {
    case Kind::kHistory:
      return std::make_unique<HistoryWindowPredictor>();
    case Kind::kPooled: {
      HistoryWindowConfig cfg;
      cfg.pool_machines = true;
      return std::make_unique<HistoryWindowPredictor>(cfg);
    }
    case Kind::kRobust:
      return std::make_unique<RobustHistoryPredictor>();
    case Kind::kSemiMarkov:
      return std::make_unique<SemiMarkovPredictor>();
    case Kind::kRecentRate:
      return std::make_unique<RecentRatePredictor>();
    case Kind::kCounter:
      return std::make_unique<SaturatingCounterPredictor>();
    case Kind::kAlways:
      return std::make_unique<AlwaysAvailablePredictor>();
  }
  return nullptr;
}

const trace::TraceSet& shared_trace() {
  static const trace::TraceSet trace = [] {
    core::TestbedConfig cfg;
    cfg.machines = 3;
    cfg.days = 28;
    return core::run_testbed(cfg);
  }();
  return trace;
}

class PredictorPropertyTest : public ::testing::TestWithParam<Kind> {
 protected:
  PredictorPropertyTest()
      : index(shared_trace()), predictor(make(GetParam())) {
    predictor->attach(index, calendar);
  }

  trace::TraceIndex index;
  trace::TraceCalendar calendar;
  std::unique_ptr<AvailabilityPredictor> predictor;
};

TEST_P(PredictorPropertyTest, ProbabilitiesInUnitInterval) {
  for (int day = 14; day < 28; day += 3) {
    for (int hour = 0; hour < 24; hour += 5) {
      for (const auto len : {30_min, 2_h, 12_h}) {
        PredictionQuery q{0,
                          calendar.day_start(day) + SimDuration::hours(hour),
                          len};
        const double p = predictor->predict_availability(q);
        ASSERT_GE(p, 0.0) << predictor->name();
        ASSERT_LE(p, 1.0) << predictor->name();
        ASSERT_GE(predictor->predict_occurrences(q), 0.0)
            << predictor->name();
      }
    }
  }
}

TEST_P(PredictorPropertyTest, Deterministic) {
  PredictionQuery q{1, calendar.day_start(20) + 13_h, 2_h};
  EXPECT_DOUBLE_EQ(predictor->predict_availability(q),
                   predictor->predict_availability(q));
}

TEST_P(PredictorPropertyTest, FutureRecordsDoNotLeakIntoPredictions) {
  // A trace truncated right at the query instant must yield the same
  // prediction as the full trace: predictors may only read the past.
  // Pick an instant where the machine is up (an ongoing episode would be
  // clipped differently by the truncation, which is not a leak).
  SimTime query_time = calendar.day_start(21) + 11_h;
  for (bool inside = true; inside; query_time += 15_min) {
    index.last_end_before(0, query_time, &inside);
    if (!inside) break;
  }
  PredictionQuery q{0, query_time, 2_h};
  const double full = predictor->predict_availability(q);
  const double full_occ = predictor->predict_occurrences(q);

  const auto truncated =
      shared_trace().filter(shared_trace().horizon_start(), query_time);
  trace::TraceIndex truncated_index(truncated);
  auto fresh = make(GetParam());
  fresh->attach(truncated_index, calendar);
  EXPECT_DOUBLE_EQ(fresh->predict_availability(q), full)
      << predictor->name();
  EXPECT_DOUBLE_EQ(fresh->predict_occurrences(q), full_occ)
      << predictor->name();
}

INSTANTIATE_TEST_SUITE_P(AllPredictors, PredictorPropertyTest,
                         ::testing::Values(Kind::kHistory, Kind::kPooled,
                                           Kind::kRobust, Kind::kSemiMarkov,
                                           Kind::kRecentRate, Kind::kCounter,
                                           Kind::kAlways));

}  // namespace
}  // namespace fgcs::predict

// The deterministic-simulation harness itself: seed-driven generation is
// stable, full runs replay bit-identically, the invariant sweep stays
// green at scale, and a failure's printed replay line really reproduces
// the failing scenario.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "fgcs/testkit/invariants.hpp"
#include "fgcs/testkit/runner.hpp"
#include "fgcs/testkit/scenario.hpp"

namespace fgcs::testkit {
namespace {

bool same_record(const trace::UnavailabilityRecord& a,
                 const trace::UnavailabilityRecord& b) {
  return a.machine == b.machine && a.start == b.start && a.end == b.end &&
         a.cause == b.cause && a.host_cpu == b.host_cpu &&
         a.free_mem_mb == b.free_mem_mb;
}

TEST(TestkitScenario, GenerationIsDeterministic) {
  for (std::uint64_t seed : {1ULL, 42ULL, 0xDEADBEEFULL, 1ULL << 63}) {
    const Scenario a = generate_scenario(seed);
    const Scenario b = generate_scenario(seed);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_EQ(a.seed, seed);
    EXPECT_EQ(a.testbed.machines, b.testbed.machines);
    EXPECT_EQ(a.testbed.days, b.testbed.days);
    EXPECT_EQ(a.testbed.seed, b.testbed.seed);
    EXPECT_EQ(a.testbed.faults.size(), b.testbed.faults.size());
    EXPECT_EQ(a.run_lifecycle, b.run_lifecycle);
  }
}

TEST(TestkitScenario, DistinctSeedsGiveDistinctScenarios) {
  int distinct = 0;
  const Scenario base = generate_scenario(1000);
  for (std::uint64_t seed = 1001; seed < 1020; ++seed) {
    if (generate_scenario(seed).str() != base.str()) ++distinct;
  }
  EXPECT_GE(distinct, 18) << "seed barely perturbs generation";
}

TEST(TestkitScenario, RunIsBitIdenticalAcrossRepeats) {
  // Pick a seed whose scenario exercises faults AND the guest lifecycle,
  // so the replay covers every stage of the stack.
  std::uint64_t seed = 0;
  for (std::uint64_t candidate = 1; candidate < 4000; ++candidate) {
    const Scenario s = generate_scenario(candidate);
    if (s.run_lifecycle && !s.testbed.faults.empty() &&
        s.testbed.machines >= 2) {
      seed = candidate;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no seed with faults + lifecycle in range";

  const Scenario s = generate_scenario(seed);
  const ScenarioOutcome first = run_scenario(s);
  const ScenarioOutcome second = run_scenario(s);

  ASSERT_EQ(first.machines.size(), second.machines.size());
  for (std::size_t m = 0; m < first.machines.size(); ++m) {
    const auto& ra = first.machines[m].records;
    const auto& rb = second.machines[m].records;
    ASSERT_EQ(ra.size(), rb.size()) << "machine " << m;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_TRUE(same_record(ra[i], rb[i]))
          << "machine " << m << " record " << i;
    }
  }
  ASSERT_TRUE(first.lifecycle_ran);
  ASSERT_EQ(first.guests.jobs.size(), second.guests.jobs.size());
  EXPECT_EQ(first.guests.completed, second.guests.completed);
  EXPECT_EQ(first.guests.restarts, second.guests.restarts);
  EXPECT_EQ(first.guests.migrations, second.guests.migrations);
  EXPECT_EQ(first.guests.checkpoints, second.guests.checkpoints);
  EXPECT_EQ(first.guests.work_lost, second.guests.work_lost);
}

// The acceptance sweep: 200 randomized scenarios, every invariant holds,
// and every 10th scenario re-runs bit-identically.
TEST(TestkitRunner, SweepOf200ScenariosHoldsAllInvariants) {
  RunnerConfig config;
  config.seed = 20060806;
  config.scenarios = 200;
  config.replay_check_every = 10;
  ScenarioRunner runner(config);
  const RunnerReport report = runner.run();
  EXPECT_EQ(report.scenarios_run, 200);
  EXPECT_EQ(report.replay_checks, 20);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(TestkitRunner, SweepSeedsAreStableAndDistinct) {
  ScenarioRunner a, b;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.scenario_seed_at(i), b.scenario_seed_at(i));
    if (i > 0) {
      EXPECT_NE(a.scenario_seed_at(i), a.scenario_seed_at(i - 1));
    }
  }
}

TEST(TestkitRunner, PassingScenarioYieldsNoFailure) {
  ScenarioRunner runner;
  EXPECT_FALSE(runner.run_one(runner.scenario_seed_at(0)).has_value());
}

// Inject a synthetic invariant failure, then prove the printed replay
// line names a seed that reproduces the identical scenario and failure.
TEST(TestkitRunner, ReplayLineReproducesTheFailureBitIdentically) {
  RunnerConfig config;
  config.scenarios = 5;
  config.shrink_failures = false;
  std::ostringstream log;
  config.log = &log;

  auto synthetic = [](const Scenario& s) {
    std::vector<InvariantViolation> v;
    if (s.testbed.machines >= 1) {
      v.push_back({"synthetic", "always fails: " + s.str()});
    }
    return v;
  };

  ScenarioRunner runner(config);
  runner.set_check(synthetic);
  const RunnerReport report = runner.run();
  ASSERT_EQ(report.failures.size(), 5u);

  const ScenarioFailure& failure = report.failures.front();
  // The replay line embeds the seed as 0x<hex>ULL — parse it back out the
  // way a human pasting it would.
  const auto pos = failure.replay.find("0x");
  ASSERT_NE(pos, std::string::npos) << failure.replay;
  const std::uint64_t parsed =
      std::strtoull(failure.replay.c_str() + pos, nullptr, 16);
  EXPECT_EQ(parsed, failure.scenario_seed);

  // Replaying the parsed seed regenerates the identical scenario, and a
  // fresh runner reproduces the same failure from it.
  EXPECT_EQ(ScenarioRunner::replay(parsed).str(), failure.scenario.str());
  ScenarioRunner fresh(config);
  fresh.set_check(synthetic);
  const auto again = fresh.run_one(parsed);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->scenario.str(), failure.scenario.str());
  ASSERT_EQ(again->violations.size(), failure.violations.size());
  EXPECT_EQ(again->violations[0].detail, failure.violations[0].detail);

  // The narration stream carries the replay line too.
  EXPECT_NE(log.str().find(failure.replay), std::string::npos);
}

}  // namespace
}  // namespace fgcs::testkit

// Property tests for the simulated machine: accounting and scheduling
// invariants across a grid of workload mixes and scheduler profiles.
#include <gtest/gtest.h>

#include <tuple>

#include "fgcs/os/machine.hpp"
#include "fgcs/util/rng.hpp"
#include "fgcs/workload/synthetic.hpp"

namespace fgcs::os {
namespace {

using namespace sim::time_literals;

// (profile: 0 = linux, 1 = solaris; host count; total host usage;
//  guest nice)
using MachineParam = std::tuple<int, int, double, int>;

class MachinePropertyTest : public ::testing::TestWithParam<MachineParam> {
 protected:
  SchedulerParams scheduler() const {
    return std::get<0>(GetParam()) == 0 ? SchedulerParams::linux_2_4()
                                        : SchedulerParams::solaris_ts();
  }

  Machine make_loaded_machine(std::uint64_t seed,
                              std::vector<ProcessId>* host_pids = nullptr,
                              ProcessId* guest_pid = nullptr) const {
    const auto [profile, hosts, total_usage, guest_nice] = GetParam();
    (void)profile;
    Machine m(scheduler(), MemoryParams::linux_1gb(), seed);
    util::RngStream rng(seed, {77});
    const auto specs = workload::make_host_group(
        total_usage, static_cast<std::size_t>(hosts), rng);
    for (const auto& spec : specs) {
      const ProcessId pid = m.spawn(spec);
      if (host_pids) host_pids->push_back(pid);
    }
    const ProcessId g = m.spawn(workload::synthetic_guest(guest_nice));
    if (guest_pid) *guest_pid = g;
    return m;
  }
};

TEST_P(MachinePropertyTest, AccountingSumsToElapsedTime) {
  Machine m = make_loaded_machine(11);
  for (int step = 0; step < 10; ++step) {
    m.run_for(30_s);
    EXPECT_EQ(m.totals().total().as_micros(), m.now().as_micros());
  }
}

TEST_P(MachinePropertyTest, NoUsageExceedsCapacity) {
  Machine m = make_loaded_machine(12);
  const CpuTotals before = m.totals();
  m.run_for(120_s);
  const CpuTotals after = m.totals();
  const double host = CpuTotals::host_usage(before, after);
  const double guest = CpuTotals::guest_usage(before, after);
  EXPECT_GE(host, 0.0);
  EXPECT_GE(guest, 0.0);
  EXPECT_LE(host + guest, 1.0 + 1e-9);
}

TEST_P(MachinePropertyTest, GuestNeverStarvesCompletely) {
  // The CPU-bound guest always makes progress under time-sharing (no
  // strict starvation; the paper's Figure 1(b) depends on this).
  ProcessId guest{};
  Machine m = make_loaded_machine(13, nullptr, &guest);
  m.run_for(60_s);
  const sim::SimDuration before = m.process(guest).cpu_time();
  m.run_for(120_s);
  EXPECT_GT(m.process(guest).cpu_time(), before);
}

TEST_P(MachinePropertyTest, HostUsageNotIncreasedByGuest) {
  // Adding a guest can only reduce (or preserve) host CPU usage.
  const auto [profile, hosts, total_usage, guest_nice] = GetParam();
  (void)profile;
  (void)guest_nice;
  auto host_usage = [&](bool with_guest) {
    Machine m(scheduler(), MemoryParams::linux_1gb(), 14);
    util::RngStream rng(14, {77});
    const auto specs = workload::make_host_group(
        total_usage, static_cast<std::size_t>(hosts), rng);
    for (const auto& spec : specs) m.spawn(spec);
    if (with_guest) m.spawn(workload::synthetic_guest(0));
    m.run_for(40_s);
    const CpuTotals before = m.totals();
    m.run_for(240_s);
    return CpuTotals::host_usage(before, m.totals());
  };
  EXPECT_LE(host_usage(true), host_usage(false) + 0.01);
}

TEST_P(MachinePropertyTest, SuspendFreezesExactly) {
  ProcessId guest{};
  Machine m = make_loaded_machine(15, nullptr, &guest);
  m.run_for(30_s);
  m.suspend(guest);
  const auto frozen = m.process(guest).cpu_time();
  m.run_for(60_s);
  EXPECT_EQ(m.process(guest).cpu_time(), frozen);
  m.resume(guest);
  m.run_for(60_s);
  EXPECT_GT(m.process(guest).cpu_time(), frozen);
}

TEST_P(MachinePropertyTest, HostGroupUsageNearTargetWhenAlone) {
  const auto [profile, hosts, total_usage, guest_nice] = GetParam();
  (void)profile;
  (void)guest_nice;
  Machine m(scheduler(), MemoryParams::linux_1gb(), 16);
  util::RngStream rng(16, {77});
  for (const auto& spec : workload::make_host_group(
           total_usage, static_cast<std::size_t>(hosts), rng)) {
    m.spawn(spec);
  }
  m.run_for(40_s);
  const CpuTotals before = m.totals();
  m.run_for(300_s);
  // At high aggregate load, the group's own internal contention stretches
  // compute bursts and the achieved usage falls short of nominal (the
  // paper selected combinations by *measured* L_H; Fig1Result reports
  // lh_measured for the same reason).
  const double tolerance = total_usage > 0.6 ? 0.18 : 0.06;
  EXPECT_NEAR(CpuTotals::host_usage(before, m.totals()), total_usage,
              tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadGrid, MachinePropertyTest,
    ::testing::Values(MachineParam{0, 1, 0.2, 0},
                      MachineParam{0, 3, 0.5, 0},
                      MachineParam{0, 5, 0.9, 19},
                      MachineParam{0, 2, 0.7, 19},
                      MachineParam{1, 1, 0.3, 0},
                      MachineParam{1, 4, 0.8, 19},
                      MachineParam{1, 3, 0.22, 0}));

}  // namespace
}  // namespace fgcs::os

// Differential oracles: the eleven paired implementations must agree over
// a broad seeded sweep, and each oracle must itself be deterministic.
#include <gtest/gtest.h>

#include <sstream>

#include "fgcs/testkit/diff_oracle.hpp"

namespace fgcs::testkit {
namespace {

TEST(TestkitDiffOracle, RegistryHasTheElevenStandardOracles) {
  const auto& oracles = standard_oracles();
  ASSERT_EQ(oracles.size(), 11u);
  for (const char* name : {"scheduler-fastforward", "testbed-parallel",
                           "trace-roundtrip", "semi-markov-brute",
                           "fleet-sharded", "prediction-parallel",
                           "flight-recorder", "soa-machine-step",
                           "fleet-resume", "serve-incremental",
                           "query-pushdown"}) {
    const DiffOracle* oracle = find_oracle(name);
    ASSERT_NE(oracle, nullptr) << name;
    EXPECT_EQ(oracle->name, name);
    EXPECT_TRUE(static_cast<bool>(oracle->run)) << name;
  }
  EXPECT_EQ(find_oracle("no-such-oracle"), nullptr);
}

TEST(TestkitDiffOracle, EachOracleIsDeterministicInTheSeed) {
  for (const auto& oracle : standard_oracles()) {
    const DiffResult a = oracle.run(0xFACEu);
    const DiffResult b = oracle.run(0xFACEu);
    EXPECT_EQ(a.match, b.match) << oracle.name;
    EXPECT_EQ(a.detail, b.detail) << oracle.name;
  }
}

TEST(TestkitDiffOracle, EachOracleAgreesOnSmokeSeeds) {
  for (const auto& oracle : standard_oracles()) {
    for (std::uint64_t seed : {1ULL, 2ULL, 99ULL}) {
      const DiffResult r = oracle.run(seed);
      EXPECT_TRUE(r.match)
          << oracle.name << " seed " << seed << ": " << r.detail;
    }
  }
}

// The acceptance sweep: all eleven oracles, 200 derived seeds each — the
// sharded-fleet, parallel-prediction, flight-recorder, columnar-walk,
// checkpoint-resume, serve-incremental, and query-pushdown bit-identity
// guarantees ride the same sweep as the original four.
TEST(TestkitDiffOracle, AllOraclesAgreeOver200SeedsEach) {
  const auto failures = run_oracles(20060806, 200);
  std::ostringstream detail;
  for (const auto& f : failures) {
    detail << f.oracle << " seed 0x" << std::hex << f.seed << std::dec
           << ": " << f.detail << "\n";
  }
  EXPECT_TRUE(failures.empty()) << detail.str();
}

TEST(TestkitDiffOracle, SweepIsDeterministic) {
  // Same base seed, same (empty) failure set — and the derived seeds do
  // not depend on call order, so two sweeps are interchangeable.
  EXPECT_EQ(run_oracles(7, 3).size(), run_oracles(7, 3).size());
}

}  // namespace
}  // namespace fgcs::testkit

// Deterministic corpus-mutation fuzz driver (works on any toolchain).
//
// Replays each checked-in corpus entry verbatim, then feeds the target
// seeded structure-aware mutations of corpus entries for a bounded
// iteration count. Crashes (any exception escaping a target, or a
// sanitizer report) abort with a replay line naming the target, seed, and
// iteration, so the exact input can be regenerated.
//
//   fgcs_fuzz_driver --target all --corpus tests/fuzz/corpus
//                    --iterations 10000 --seed 1
//
// With Clang and -DFGCS_FUZZ=ON the same targets also build as libFuzzer
// binaries (see libfuzzer_entry.cpp); this driver is the portable
// regression mode that CI runs everywhere.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "fgcs/testkit/fuzz.hpp"

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--target <name>|all] [--corpus <dir>] "
               "[--iterations <n>] [--seed <n>]\n  targets:",
               prog);
  for (const auto& target : fgcs::testkit::fuzz_targets()) {
    std::fprintf(stderr, " %s", target.name);
  }
  std::fprintf(stderr, "\n");
  return 2;
}

int run_target(const fgcs::testkit::FuzzTargetInfo& target,
               const std::string& corpus_root, std::uint64_t seed,
               std::uint64_t iterations) {
  const std::string dir = corpus_root + "/" + target.corpus_subdir;
  std::vector<std::vector<std::uint8_t>> corpus;
  try {
    corpus = fgcs::testkit::load_corpus(dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fgcs_fuzz_driver: %s\n", e.what());
    return 2;
  }
  try {
    const auto stats = fgcs::testkit::run_fuzz_iterations(
        target, corpus, seed, iterations);
    std::printf(
        "%-12s OK  corpus=%llu iterations=%llu max_input=%llu bytes\n",
        target.name, static_cast<unsigned long long>(stats.corpus_entries),
        static_cast<unsigned long long>(stats.iterations),
        static_cast<unsigned long long>(stats.max_input_bytes));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "%s: CRASH: %s\n  replay: fgcs_fuzz_driver --target %s "
                 "--corpus %s --iterations %llu --seed %llu\n",
                 target.name, e.what(), target.name, corpus_root.c_str(),
                 static_cast<unsigned long long>(iterations),
                 static_cast<unsigned long long>(seed));
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string target_name = "all";
  std::string corpus_root = "tests/fuzz/corpus";
  std::uint64_t iterations = 10'000;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--target") {
      target_name = value();
    } else if (arg == "--corpus") {
      corpus_root = value();
    } else if (arg == "--iterations") {
      iterations = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else {
      return usage(argv[0]);
    }
  }

  int rc = 0;
  if (target_name == "all") {
    for (const auto& target : fgcs::testkit::fuzz_targets()) {
      rc |= run_target(target, corpus_root, seed, iterations);
    }
  } else {
    const auto* target = fgcs::testkit::find_fuzz_target(target_name);
    if (target == nullptr) {
      std::fprintf(stderr, "fgcs_fuzz_driver: unknown target '%s'\n",
                   target_name.c_str());
      return usage(argv[0]);
    }
    rc = run_target(*target, corpus_root, seed, iterations);
  }
  return rc;
}

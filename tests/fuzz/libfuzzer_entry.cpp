// libFuzzer entry point (built only with Clang and -DFGCS_FUZZ=ON).
//
// One binary per target: the target name is baked in at compile time via
// FGCS_FUZZ_TARGET so libFuzzer's fork/merge modes work unchanged.
//
//   clang++ ... -fsanitize=fuzzer,address,undefined \
//     -DFGCS_FUZZ_TARGET=\"trace-csv\" libfuzzer_entry.cpp ...
//   ./fgcs_fuzz_trace_csv tests/fuzz/corpus/trace_csv
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "fgcs/testkit/fuzz.hpp"

#ifndef FGCS_FUZZ_TARGET
#error "define FGCS_FUZZ_TARGET to one of the fgcs::testkit fuzz target names"
#endif

namespace {

const fgcs::testkit::FuzzTargetInfo& resolve_target() {
  static const fgcs::testkit::FuzzTargetInfo* target = [] {
    const auto* t = fgcs::testkit::find_fuzz_target(FGCS_FUZZ_TARGET);
    if (t == nullptr) {
      std::fprintf(stderr, "unknown fuzz target '%s'\n", FGCS_FUZZ_TARGET);
      std::abort();
    }
    return t;
  }();
  return *target;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Targets signal findings by throwing std::logic_error; let it escape so
  // libFuzzer records the crashing input.
  resolve_target().fn(data, size);
  return 0;
}

// Tests for the rolling evaluation harness.
#include <gtest/gtest.h>

#include "fgcs/predict/evaluation.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::predict {
namespace {

using namespace sim::time_literals;
using monitor::AvailabilityState;
using sim::SimDuration;
using sim::SimTime;

trace::TraceSet pattern_trace() {
  // Failures 10:00-11:00 every day on one machine, for 30 days.
  trace::TraceSet t(1, SimTime::epoch(),
                    SimTime::epoch() + SimDuration::days(30));
  for (int d = 0; d < 30; ++d) {
    trace::UnavailabilityRecord r;
    r.machine = 0;
    r.start = SimTime::epoch() + SimDuration::days(d) + 10_h;
    r.end = r.start + 1_h;
    r.cause = AvailabilityState::kS3CpuUnavailable;
    t.add(r);
  }
  return t;
}

/// A test predictor that knows the truth (oracle) or inverts it.
class OraclePredictor : public AvailabilityPredictor {
 public:
  explicit OraclePredictor(bool invert) : invert_(invert) {}
  std::string name() const override { return invert_ ? "anti" : "oracle"; }
  double predict_availability(const PredictionQuery& q) const override {
    const bool avail = !index().any_overlap(q.machine, q.start,
                                            q.start + q.length);
    return (avail != invert_) ? 1.0 : 0.0;
  }
  double predict_occurrences(const PredictionQuery& q) const override {
    return static_cast<double>(
        index().count_starts_in(q.machine, q.start, q.start + q.length));
  }

 private:
  bool invert_;
};

EvaluationConfig config_for(const trace::TraceSet& t) {
  EvaluationConfig cfg;
  cfg.begin = t.horizon_start() + SimDuration::days(5);
  cfg.end = t.horizon_end();
  cfg.window = 2_h;
  cfg.stride = 1_h;
  return cfg;
}

TEST(Evaluation, OracleScoresPerfectly) {
  const auto t = pattern_trace();
  const trace::TraceIndex index(t);
  const trace::TraceCalendar cal;
  OraclePredictor oracle(false);
  const auto r = evaluate_predictor(oracle, index, cal, config_for(t));
  EXPECT_GT(r.queries, 100u);
  EXPECT_DOUBLE_EQ(r.brier, 0.0);
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(r.true_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(r.false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(r.occurrence_mae, 0.0);
}

TEST(Evaluation, AntiOracleScoresWorst) {
  const auto t = pattern_trace();
  const trace::TraceIndex index(t);
  const trace::TraceCalendar cal;
  OraclePredictor anti(true);
  const auto r = evaluate_predictor(anti, index, cal, config_for(t));
  EXPECT_DOUBLE_EQ(r.brier, 1.0);
  EXPECT_DOUBLE_EQ(r.accuracy, 0.0);
}

TEST(Evaluation, SkipsQueriesInsideEpisodes) {
  const auto t = pattern_trace();
  const trace::TraceIndex index(t);
  const trace::TraceCalendar cal;
  OraclePredictor oracle(false);
  auto cfg = config_for(t);
  cfg.stride = 30_min;
  const auto r = evaluate_predictor(oracle, index, cal, cfg);
  // 25 days x 48 slots minus windows that start inside the daily episode
  // (10:00 boundary start is not "inside"; 10:30 is) minus the tail whose
  // window would cross the horizon.
  const std::size_t slots_per_day = 48;
  EXPECT_LT(r.queries, 25 * slots_per_day);
  EXPECT_GT(r.queries, 25 * (slots_per_day - 4));
}

TEST(Evaluation, BaseAvailabilityMatchesPattern) {
  const auto t = pattern_trace();
  const trace::TraceIndex index(t);
  const trace::TraceCalendar cal;
  OraclePredictor oracle(false);
  const auto r = evaluate_predictor(oracle, index, cal, config_for(t));
  // A 2h window fails iff it overlaps [10, 11). On the hourly stride the
  // only failing start is 09:00 (the 10:00 start is skipped as "inside"),
  // out of 23 usable slots per day.
  EXPECT_NEAR(r.base_availability, 1.0 - 1.0 / 23.0, 0.02);
}

TEST(Evaluation, OracleIsPerfectlyCalibrated) {
  const auto t = pattern_trace();
  const trace::TraceIndex index(t);
  const trace::TraceCalendar cal;
  OraclePredictor oracle(false);
  const auto r = evaluate_predictor(oracle, index, cal, config_for(t));
  EXPECT_DOUBLE_EQ(r.expected_calibration_error(), 0.0);
  // Oracle emits only 0.0 and 1.0: exactly two non-empty buckets.
  std::size_t non_empty = 0;
  for (const auto& bucket : r.reliability) {
    if (bucket.count > 0) ++non_empty;
  }
  EXPECT_EQ(non_empty, 2u);
  EXPECT_DOUBLE_EQ(r.reliability[9].observed_available, 1.0);
  EXPECT_DOUBLE_EQ(r.reliability[0].observed_available, 0.0);
}

TEST(Evaluation, ReliabilityCountsSumToQueries) {
  const auto t = pattern_trace();
  const trace::TraceIndex index(t);
  const trace::TraceCalendar cal;
  OraclePredictor oracle(false);
  const auto r = evaluate_predictor(oracle, index, cal, config_for(t));
  std::size_t total = 0;
  for (const auto& bucket : r.reliability) total += bucket.count;
  EXPECT_EQ(total, r.queries);
}

TEST(Evaluation, AntiOracleMaximallyMiscalibrated) {
  const auto t = pattern_trace();
  const trace::TraceIndex index(t);
  const trace::TraceCalendar cal;
  OraclePredictor anti(true);
  const auto r = evaluate_predictor(anti, index, cal, config_for(t));
  EXPECT_DOUBLE_EQ(r.expected_calibration_error(), 1.0);
}

TEST(Evaluation, ConfigValidation) {
  EvaluationConfig cfg;
  cfg.begin = SimTime::epoch();
  cfg.end = SimTime::epoch();  // empty
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg.end = cfg.begin + 1_h;
  cfg.stride = SimDuration::zero();
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = EvaluationConfig{};
  cfg.begin = SimTime::epoch();
  cfg.end = cfg.begin + 1_h;
  cfg.decision_threshold = 2.0;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(Evaluation, EmptyQuerySetReturnsZeroedResult) {
  // Horizon shorter than the window: no queries fit.
  trace::TraceSet t(1, SimTime::epoch(), SimTime::epoch() + 1_h);
  trace::UnavailabilityRecord r;
  r.machine = 0;
  r.start = SimTime::epoch() + 1_min;
  r.end = r.start + 1_min;
  r.cause = AvailabilityState::kS3CpuUnavailable;
  t.add(r);
  const trace::TraceIndex index(t);
  const trace::TraceCalendar cal;
  OraclePredictor oracle(false);
  EvaluationConfig cfg;
  cfg.begin = t.horizon_start();
  cfg.end = t.horizon_end();
  cfg.window = 4_h;
  cfg.stride = 1_h;
  const auto result = evaluate_predictor(oracle, index, cal, cfg);
  EXPECT_EQ(result.queries, 0u);
}

}  // namespace
}  // namespace fgcs::predict

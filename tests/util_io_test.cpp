// Durable-IO building blocks: CRC-32 vectors and streaming, SyncFile's
// running content hash, atomic whole-file replacement, and the
// FGCS_DURABILITY policy names.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "fgcs/util/error.hpp"
#include "fgcs/util/io.hpp"

namespace fgcs::util {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
}

TEST(UtilIo, Crc32MatchesTheIeeeCheckValue) {
  // The canonical CRC-32 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(UtilIo, Crc32StreamsInPieces) {
  const char* text = "availability is the steady state";
  const std::size_t n = 32;
  const std::uint32_t whole = crc32(text, n);
  for (std::size_t split = 0; split <= n; ++split) {
    const std::uint32_t part = crc32(text + split, n - split,
                                     crc32(text, split));
    EXPECT_EQ(part, whole) << "split=" << split;
  }
}

TEST(UtilIo, FileCrc32MatchesInMemoryCrc) {
  const std::string path = temp_path("util_io_crc.bin");
  const std::string bytes = "fine-grained cycle sharing";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  EXPECT_EQ(file_crc32(path), crc32(bytes.data(), bytes.size()));
  std::remove(path.c_str());
  EXPECT_THROW(file_crc32(path), IoError);
}

TEST(UtilIo, SyncFileTracksBytesAndContentCrc) {
  const std::string path = temp_path("util_io_syncfile.bin");
  {
    SyncFile out(path);
    out.write("hello ", 6);
    out.write("world", 5);
    EXPECT_EQ(out.bytes_written(), 11u);
    EXPECT_EQ(out.content_crc(), crc32("hello world", 11));
    out.sync(Durability::kCommit);
    out.close();
    out.close();  // idempotent
  }
  EXPECT_EQ(slurp(path), "hello world");
  EXPECT_EQ(file_crc32(path), crc32("hello world", 11));
  std::remove(path.c_str());
}

TEST(UtilIo, SyncFileTruncatesOnReopen) {
  // The retry path's contract: re-opening a segment path starts from a
  // clean slate, not an append.
  const std::string path = temp_path("util_io_trunc.bin");
  {
    SyncFile out(path);
    out.write("a much longer first attempt", 27);
  }
  {
    SyncFile out(path);
    out.write("short", 5);
  }
  EXPECT_EQ(slurp(path), "short");
  std::remove(path.c_str());
}

TEST(UtilIo, AtomicReplaceInstallsNewContentAndLeavesNoTemp) {
  const std::string path = temp_path("util_io_replace.bin");
  atomic_replace_file(path, "first", 5);
  EXPECT_EQ(slurp(path), "first");
  atomic_replace_file(path, "second", 6);
  EXPECT_EQ(slurp(path), "second");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(UtilIo, AtomicReplaceIntoMissingDirectoryThrows) {
  EXPECT_THROW(
      atomic_replace_file("/nonexistent-dir/util_io_replace.bin", "x", 1),
      IoError);
}

TEST(UtilIo, DurabilityNamesRoundTrip) {
  EXPECT_STREQ(durability_name(Durability::kNone), "none");
  EXPECT_STREQ(durability_name(Durability::kCommit), "commit");
  EXPECT_STREQ(durability_name(Durability::kBlock), "block");
  // The process-wide level is one of the three (parsed once; the
  // malformed-value warning path is covered by the Knobs suite).
  const Durability level = durability_level();
  EXPECT_TRUE(level == Durability::kNone || level == Durability::kCommit ||
              level == Durability::kBlock);
}

TEST(UtilIo, CrashpointsAreInertWhenUnarmed) {
  // With no FGCS_CRASH_AFTER_* set this must be a no-op (the hot paths
  // cross these constantly); the armed path is exercised by
  // tools/fgcs_crashtest via the crash_harness_smoke ctest.
  reset_crashpoints();
  for (int i = 0; i < 3; ++i) {
    crashpoint(CrashPoint::kBlockWrite);
    crashpoint(CrashPoint::kShardCommit);
    crashpoint(CrashPoint::kManifestWrite);
  }
  SUCCEED();
}

}  // namespace
}  // namespace fgcs::util

// Fast-forward equivalence: the scheduler's analytic tick jump
// (SchedulerParams::fast_forward) must leave the machine in a state
// bit-identical to forced per-tick execution — same CPU accounting to the
// microsecond, same process states, same phase boundaries, and the same
// monitor-visible StateTimeline. These tests run every scenario twice,
// once per mode, and compare at many intermediate checkpoints so a
// divergence is caught at the step where it first appears.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fgcs/monitor/detector.hpp"
#include "fgcs/monitor/machine_sampler.hpp"
#include "fgcs/monitor/policy.hpp"
#include "fgcs/monitor/state_timeline.hpp"
#include "fgcs/obs/observer.hpp"
#include "fgcs/os/machine.hpp"
#include "fgcs/workload/synthetic.hpp"

namespace fgcs::os {
namespace {

using namespace sim::time_literals;

SchedulerParams params_with(bool fast_forward) {
  SchedulerParams p = SchedulerParams::linux_2_4();
  p.fast_forward = fast_forward;
  return p;
}

/// Everything a library user can observe about a machine, in raw integer
/// microseconds so equality is exact.
struct Snapshot {
  std::int64_t now_us = 0;
  std::int64_t host_us = 0, guest_us = 0, system_us = 0, idle_us = 0;
  std::int64_t thrash_us = 0;
  struct Proc {
    ProcState state;
    std::int64_t cpu_us;
    std::int64_t exit_us;
    int nice;
    bool operator==(const Proc&) const = default;
  };
  std::vector<Proc> procs;

  bool operator==(const Snapshot&) const = default;
};

Snapshot snapshot(const Machine& m) {
  Snapshot s;
  s.now_us = m.now().as_micros();
  s.host_us = m.totals().host.as_micros();
  s.guest_us = m.totals().guest.as_micros();
  s.system_us = m.totals().system.as_micros();
  s.idle_us = m.totals().idle.as_micros();
  s.thrash_us = m.thrash_time().as_micros();
  for (std::size_t pid = 0; pid < m.process_count(); ++pid) {
    const Process& p = m.process(static_cast<ProcessId>(pid));
    s.procs.push_back({p.state(), p.cpu_time().as_micros(),
                       p.exit_time().as_micros(), p.nice()});
  }
  return s;
}

/// Runs `setup` on two machines (fast-forward on / off), advances both in
/// deliberately uneven steps, and asserts the snapshots match at every
/// checkpoint.
template <typename Setup>
void expect_equivalent(Setup&& setup, sim::SimDuration step, int steps,
                       std::uint64_t seed) {
  Machine fast(params_with(true), MemoryParams::linux_1gb(), seed);
  Machine slow(params_with(false), MemoryParams::linux_1gb(), seed);
  setup(fast);
  setup(slow);
  for (int i = 0; i < steps; ++i) {
    // Vary the step so checkpoint boundaries do not align with ticks.
    const sim::SimDuration d =
        step + sim::SimDuration::millis(7 * (i % 5)) +
        sim::SimDuration::micros(13 * (i % 3));
    fast.run_for(d);
    slow.run_for(d);
    ASSERT_EQ(snapshot(fast), snapshot(slow)) << "diverged at step " << i;
  }
}

TEST(FastForwardEquivalence, HostAloneDutyCycle) {
  for (const double u : {0.3, 0.7, 1.0}) {
    expect_equivalent(
        [u](Machine& m) { m.spawn(workload::synthetic_host(u)); },
        4700_ms, 40, 11);
  }
}

TEST(FastForwardEquivalence, HostPlusNice19Guest) {
  for (const double u : {0.3, 0.7, 0.9}) {
    expect_equivalent(
        [u](Machine& m) {
          m.spawn(workload::synthetic_host(u));
          m.spawn(workload::synthetic_guest(19));
        },
        4700_ms, 40, 321);
  }
}

TEST(FastForwardEquivalence, EqualPriorityContention) {
  expect_equivalent(
      [](Machine& m) {
        m.spawn(workload::synthetic_host(1.0));
        m.spawn(workload::synthetic_guest(0));
      },
      3100_ms, 50, 99);
}

TEST(FastForwardEquivalence, ThreeWayMixedPriorities) {
  expect_equivalent(
      [](Machine& m) {
        m.spawn(workload::synthetic_host(0.8));
        m.spawn(workload::synthetic_host(0.4, /*nice=*/5));
        m.spawn(workload::synthetic_guest(19));
      },
      2900_ms, 40, 77);
}

TEST(FastForwardEquivalence, FixedProgramSleepComputeExit) {
  // Deterministic phase list exercising phase completion mid-jump, sleep
  // wake-ups, and process exit.
  auto program = [] {
    return fixed_program({
        Phase::compute(1500_ms),
        Phase::sleep(730_ms),
        Phase::compute(40_ms),
        Phase::sleep(5_s),
        Phase::compute(12_s),
        Phase::exit(),
    });
  };
  expect_equivalent(
      [&](Machine& m) {
        ProcessSpec spec;
        spec.name = "fixed";
        spec.program = program();
        m.spawn(spec);
        m.spawn(workload::synthetic_guest(19));
      },
      900_ms, 60, 5);
}

TEST(FastForwardEquivalence, SuspendResumeRenice) {
  // Control-plane operations between checkpoints must land on identical
  // machine states in both modes.
  Machine fast(params_with(true), MemoryParams::linux_1gb(), 42);
  Machine slow(params_with(false), MemoryParams::linux_1gb(), 42);
  ProcessId fg = 0, fh = 0;
  for (Machine* m : {&fast, &slow}) {
    fh = m->spawn(workload::synthetic_host(0.6));
    fg = m->spawn(workload::synthetic_guest(0));
  }
  auto step = [&](sim::SimDuration d) {
    fast.run_for(d);
    slow.run_for(d);
    ASSERT_EQ(snapshot(fast), snapshot(slow));
  };
  step(33_s);
  fast.suspend(fg);
  slow.suspend(fg);
  step(21_s);
  fast.resume(fg);
  slow.resume(fg);
  step(17_s);
  fast.renice(fg, 19);
  slow.renice(fg, 19);
  step(45_s);
  fast.terminate(fg);
  slow.terminate(fg);
  step(10_s);
  (void)fh;
}

TEST(FastForwardEquivalence, DetectorTimelineIdentical) {
  // The acceptance bar: drive the monitor pipeline (sampler -> detector ->
  // StateTimeline) over both modes and require the reconstructed state
  // history to match interval by interval.
  const auto policy = monitor::ThresholdPolicy::linux_testbed();
  auto run = [&](bool ff) {
    Machine m(params_with(ff), MemoryParams::linux_1gb(), 2006);
    // Heavy-ish host whose bursts straddle the policy thresholds, plus a
    // guest so the scheduler path is the contended one.
    m.spawn(workload::synthetic_host(0.55));
    m.spawn(workload::synthetic_guest(19));
    monitor::MachineSampler sampler(m);
    monitor::UnavailabilityDetector detector(policy);
    const sim::SimTime end =
        sim::SimTime::epoch() + sim::SimDuration::minutes(30);
    sim::SimTime t = sim::SimTime::epoch();
    while (t < end) {
      t = t + policy.sample_period;
      m.run_until(t);
      monitor::HostSample sample = sampler.sample();
      sample.time = t;
      detector.observe(sample);
    }
    detector.finish(end);
    return monitor::StateTimeline::from_detector(detector,
                                                 sim::SimTime::epoch(), end);
  };
  const auto fast = run(true);
  const auto slow = run(false);
  ASSERT_EQ(fast.intervals().size(), slow.intervals().size());
  for (std::size_t i = 0; i < fast.intervals().size(); ++i) {
    const auto& a = fast.intervals()[i];
    const auto& b = slow.intervals()[i];
    EXPECT_EQ(a.state, b.state) << "interval " << i;
    EXPECT_EQ(a.start.as_micros(), b.start.as_micros())
        << "interval " << i;
    EXPECT_EQ(a.end.as_micros(), b.end.as_micros())
        << "interval " << i;
  }
}

TEST(FastForwardEquivalence, FastModeActuallySkipsTicks) {
  // Guard against the flag silently degrading to per-tick execution: a
  // host with long idle gaps and a nice-19 guest must let the jump cover
  // a large share of the ticks.
  obs::Observer obs;
  {
    obs::ScopedObserver guard(&obs);
    Machine m(params_with(true), MemoryParams::linux_1gb(), 7);
    ProcessSpec spec;
    spec.name = "burner";
    spec.program = cpu_bound_program();
    m.spawn(spec);
    m.run_for(sim::SimDuration::minutes(5));
  }
  const auto skipped =
      obs.metrics().counter("os.ticks_fast_forwarded").value();
  // 5 minutes at 10 ms/tick is 30000 ticks. An uncontended CPU-bound
  // process runs a full 10-tick timeslice per jump, so ~9 of every 10
  // ticks are skipped.
  EXPECT_GT(skipped, 20000u);
}

TEST(FastForwardEquivalence, ForcedTickModeReportsNoSkips) {
  obs::Observer obs;
  {
    obs::ScopedObserver guard(&obs);
    Machine m(params_with(false), MemoryParams::linux_1gb(), 7);
    m.spawn(workload::synthetic_host(0.3));
    m.spawn(workload::synthetic_guest(19));
    m.run_for(sim::SimDuration::minutes(1));
  }
  EXPECT_EQ(obs.metrics().counter("os.ticks_fast_forwarded").value(), 0u);
}

}  // namespace
}  // namespace fgcs::os

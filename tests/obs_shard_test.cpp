// Thread-local counter shards and the derived histogram count.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "fgcs/obs/observer.hpp"

namespace fgcs::obs {
namespace {

TEST(ObsShard, HooksBumpTheInstalledShardInsteadOfTheRegistry) {
  Observer observer;
  ScopedObserver guard(&observer);

  CounterShard shard;
  {
    ShardScope scope(&shard);
    ASSERT_EQ(current_shard(), &shard);
    observer.on_sim_event(4);
    observer.on_sim_event(9);
    observer.on_sim_schedule(true);
    observer.on_sim_schedule(false);
    observer.on_detector_sample(sim::SimTime::epoch());
    observer.on_machine_tick(true, 3);
    observer.on_machine_ticks_skipped(17);
    observer.on_fault_injected(1, sim::SimTime::epoch(),
                               sim::SimDuration::minutes(5));
    observer.on_detector_transition(sim::SimTime::epoch(), 1, 3);
  }
  EXPECT_EQ(current_shard(), nullptr);

  // Everything landed on the shard...
  EXPECT_EQ(shard.sim_events_executed, 2u);
  EXPECT_EQ(shard.sim_events_scheduled, 2u);
  EXPECT_EQ(shard.sim_callbacks_spilled, 1u);
  EXPECT_EQ(shard.detector_samples, 1u);
  EXPECT_EQ(shard.os_ticks, 1u);
  EXPECT_EQ(shard.os_context_switches, 1u);
  EXPECT_EQ(shard.os_ticks_fast_forwarded, 17u);
  EXPECT_EQ(shard.fault_injected[1], 1u);
  EXPECT_EQ(shard.detector_transitions[0][2], 1u);
  EXPECT_DOUBLE_EQ(shard.sim_max_queue_depth, 10.0);
  EXPECT_DOUBLE_EQ(shard.os_max_runnable, 3.0);

  // ...and nothing on the registry until the merge.
  EXPECT_EQ(observer.metrics().counter("sim.events_executed").value(), 0u);
  EXPECT_EQ(observer.metrics().counter("detector.samples").value(), 0u);

  observer.merge_shard(shard);
  EXPECT_EQ(observer.metrics().counter("sim.events_executed").value(), 2u);
  EXPECT_EQ(observer.metrics().counter("sim.callbacks_spilled").value(), 1u);
  EXPECT_EQ(observer.metrics().counter("detector.samples").value(), 1u);
  EXPECT_EQ(observer.metrics().counter("os.scheduler_ticks").value(), 1u);
  EXPECT_EQ(observer.metrics().counter("os.ticks_fast_forwarded").value(),
            17u);
  EXPECT_DOUBLE_EQ(observer.metrics().gauge("sim.max_queue_depth").value(),
                   10.0);
}

TEST(ObsShard, MergeAccumulatesAcrossShardsAndRaisesGauges) {
  Observer observer;
  CounterShard a;
  a.sim_events_executed = 5;
  a.sim_max_queue_depth = 12.0;
  CounterShard b;
  b.sim_events_executed = 7;
  b.sim_max_queue_depth = 8.0;

  observer.merge_shard(a);
  observer.merge_shard(b);
  EXPECT_EQ(observer.metrics().counter("sim.events_executed").value(), 12u);
  // Max gauge keeps the larger shard's peak, not the last merged one.
  EXPECT_DOUBLE_EQ(observer.metrics().gauge("sim.max_queue_depth").value(),
                   12.0);
}

TEST(ObsShard, ScopesNestAndRestore) {
  CounterShard outer;
  CounterShard inner;
  {
    ShardScope a(&outer);
    EXPECT_EQ(current_shard(), &outer);
    {
      ShardScope b(&inner);
      EXPECT_EQ(current_shard(), &inner);
    }
    EXPECT_EQ(current_shard(), &outer);
  }
  EXPECT_EQ(current_shard(), nullptr);
}

TEST(ObsShard, HooksAreSafeWithShardButNoObserver) {
  // Shard installed, no global observer: hooks called through an Observer
  // instance still write to the shard; free-standing sites check the
  // observer pointer first and skip entirely.
  Observer observer;
  CounterShard shard;
  ShardScope scope(&shard);
  observer.on_sim_event(1);
  EXPECT_EQ(shard.sim_events_executed, 1u);
}

TEST(HistogramDerivedCount, CountIsTheSumOfTheBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  EXPECT_EQ(h.count(), 0u);
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);  // overflow bucket
  h.observe(5.0);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 560.5);
  EXPECT_DOUBLE_EQ(h.mean(), 560.5 / 5.0);

  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(ObsShard, ConcurrentMergesFromWorkerThreadsAreExact) {
  // The fleet merges one shard per worker as shards complete, so merges
  // race with each other; totals must still be exact and max-gauges must
  // keep the global peak. Runs under TSan via check_build.sh --tsan.
  Observer observer;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kEventsPerShard = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&observer, t] {
      CounterShard shard;
      shard.sim_events_executed = kEventsPerShard;
      shard.detector_samples = kEventsPerShard / 2;
      shard.sim_max_queue_depth = static_cast<double>(t + 1);
      observer.merge_shard(shard);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(observer.metrics().counter("sim.events_executed").value(),
            kThreads * kEventsPerShard);
  EXPECT_EQ(observer.metrics().counter("detector.samples").value(),
            kThreads * kEventsPerShard / 2);
  EXPECT_DOUBLE_EQ(observer.metrics().gauge("sim.max_queue_depth").value(),
                   static_cast<double>(kThreads));
}

}  // namespace
}  // namespace fgcs::obs

// Tests for TraceSet: record management, interval derivation, the index.
#include <gtest/gtest.h>

#include "fgcs/trace/index.hpp"
#include "fgcs/trace/trace_set.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::trace {
namespace {

using namespace sim::time_literals;
using monitor::AvailabilityState;
using sim::SimDuration;
using sim::SimTime;

SimTime at(std::int64_t minutes) {
  return SimTime::epoch() + SimDuration::minutes(minutes);
}

UnavailabilityRecord rec(MachineId m, std::int64_t start_min,
                         std::int64_t end_min,
                         AvailabilityState cause =
                             AvailabilityState::kS3CpuUnavailable) {
  UnavailabilityRecord r;
  r.machine = m;
  r.start = at(start_min);
  r.end = at(end_min);
  r.cause = cause;
  return r;
}

TraceSet make_trace() {
  TraceSet t(2, SimTime::epoch(), SimTime::epoch() + SimDuration::days(1));
  t.add(rec(0, 100, 130));
  t.add(rec(0, 300, 310, AvailabilityState::kS4MemoryThrashing));
  t.add(rec(0, 10, 40));  // out of order on purpose
  t.add(rec(1, 50, 55, AvailabilityState::kS5MachineUnavailable));
  return t;
}

TEST(TraceSet, ValidatesConstruction) {
  EXPECT_THROW(TraceSet(0, SimTime::epoch(), at(1)), ConfigError);
  EXPECT_THROW(TraceSet(1, at(5), at(5)), ConfigError);
}

TEST(TraceSet, ValidatesRecords) {
  TraceSet t(1, SimTime::epoch(), at(100));
  EXPECT_THROW(t.add(rec(3, 0, 1)), ConfigError);   // machine out of range
  EXPECT_THROW(t.add(rec(0, 10, 5)), ConfigError);  // end before start
}

TEST(TraceSet, RecordsSortedByMachineThenStart) {
  const auto t = make_trace();
  const auto records = t.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].machine, 0u);
  EXPECT_EQ(records[0].start, at(10));
  EXPECT_EQ(records[1].start, at(100));
  EXPECT_EQ(records[2].start, at(300));
  EXPECT_EQ(records[3].machine, 1u);
}

TEST(TraceSet, MachineRecordsFilters) {
  const auto t = make_trace();
  EXPECT_EQ(t.machine_records(0).size(), 3u);
  EXPECT_EQ(t.machine_records(1).size(), 1u);
}

TEST(TraceSet, IntervalsBetweenEpisodes) {
  const auto t = make_trace();
  const auto intervals = t.availability_intervals();
  // Machine 0: gaps [40,100] and [130,300]; machine 1 has one episode, no
  // interior gap. Boundary intervals are censored.
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0].start, at(40));
  EXPECT_EQ(intervals[0].end, at(100));
  EXPECT_EQ(intervals[1].length(), SimDuration::minutes(170));
}

TEST(TraceSet, TouchingEpisodesYieldNoInterval) {
  TraceSet t(1, SimTime::epoch(), at(1000));
  t.add(rec(0, 10, 20));
  t.add(rec(0, 20, 30));
  t.add(rec(0, 50, 60));
  const auto intervals = t.availability_intervals();
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].start, at(30));
}

TEST(TraceSet, OverlappingEpisodesHandled) {
  TraceSet t(1, SimTime::epoch(), at(1000));
  t.add(rec(0, 10, 50));
  t.add(rec(0, 20, 30));  // nested
  t.add(rec(0, 70, 80));
  const auto intervals = t.availability_intervals();
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].start, at(50));
  EXPECT_EQ(intervals[0].end, at(70));
}

TEST(TraceSet, CanonicalAppendNeverTriggersASortPass) {
  TraceSet t(2, SimTime::epoch(), at(1440));
  t.reserve(4);  // bulk-insert pattern: reserve, then canonical appends
  t.add(rec(0, 10, 40));
  t.add(rec(0, 100, 130));
  t.add(rec(0, 300, 310, AvailabilityState::kS4MemoryThrashing));
  t.add(rec(1, 50, 55, AvailabilityState::kS5MachineUnavailable));
  ASSERT_EQ(t.records().size(), 4u);
  EXPECT_EQ(t.sort_passes(), 0u);
  (void)t.machine_records(0);
  (void)t.availability_intervals();
  EXPECT_EQ(t.sort_passes(), 0u);
}

TEST(TraceSet, OutOfOrderAppendSortsExactlyOnce) {
  auto t = make_trace();  // contains one deliberate out-of-order add
  (void)t.records();
  EXPECT_EQ(t.sort_passes(), 1u);
  (void)t.records();
  (void)t.records();
  EXPECT_EQ(t.sort_passes(), 1u);  // cached; no re-sort per call
}

TEST(TraceSet, CanonicalLessIsATotalOrderOverEveryField) {
  auto a = rec(0, 10, 20);
  auto b = a;
  EXPECT_FALSE(TraceSet::canonical_less(a, b));
  EXPECT_FALSE(TraceSet::canonical_less(b, a));
  b.free_mem_mb += 1.0;  // differs only in the last tie-break field
  EXPECT_TRUE(TraceSet::canonical_less(a, b) !=
              TraceSet::canonical_less(b, a));
  b = a;
  b.machine = 1;
  EXPECT_TRUE(TraceSet::canonical_less(a, b));
}

TEST(UnavailabilityRecord, RebootClassification) {
  auto r = rec(0, 10, 10, AvailabilityState::kS5MachineUnavailable);
  r.end = r.start + SimDuration::seconds(40);
  EXPECT_TRUE(r.is_reboot());
  r.end = r.start + SimDuration::minutes(5);
  EXPECT_FALSE(r.is_reboot());
  // Non-URR episodes are never reboots.
  auto s3 = rec(0, 10, 10);
  s3.end = s3.start + SimDuration::seconds(30);
  EXPECT_FALSE(s3.is_reboot());
}

TEST(TraceIndex, AnyOverlap) {
  const auto t = make_trace();
  const TraceIndex idx(t);
  EXPECT_TRUE(idx.any_overlap(0, at(20), at(25)));    // inside episode
  EXPECT_TRUE(idx.any_overlap(0, at(35), at(50)));    // straddles end
  EXPECT_TRUE(idx.any_overlap(0, at(5), at(200)));    // spans episodes
  EXPECT_FALSE(idx.any_overlap(0, at(40), at(100)));  // exactly the gap
  EXPECT_FALSE(idx.any_overlap(0, at(500), at(600)));
  EXPECT_FALSE(idx.any_overlap(1, at(100), at(200)));
}

TEST(TraceIndex, CountStartsIn) {
  const auto t = make_trace();
  const TraceIndex idx(t);
  EXPECT_EQ(idx.count_starts_in(0, at(0), at(1440)), 3u);
  EXPECT_EQ(idx.count_starts_in(0, at(50), at(150)), 1u);
  EXPECT_EQ(idx.count_starts_in(0, at(10), at(11)), 1u);  // inclusive start
  EXPECT_EQ(idx.count_starts_in(0, at(41), at(99)), 0u);
}

TEST(TraceIndex, LastEndBefore) {
  const auto t = make_trace();
  const TraceIndex idx(t);
  bool inside = false;
  EXPECT_EQ(idx.last_end_before(0, at(200), &inside), at(130));
  EXPECT_FALSE(inside);
  // Time inside an episode.
  EXPECT_EQ(idx.last_end_before(0, at(20), &inside), at(40));
  EXPECT_TRUE(inside);
  // Before any episode: horizon start.
  EXPECT_EQ(idx.last_end_before(0, at(5), &inside), SimTime::epoch());
  EXPECT_FALSE(inside);
}

TEST(TraceIndex, MachineOutOfRange) {
  const auto t = make_trace();
  const TraceIndex idx(t);
  EXPECT_THROW(idx.machine(5), ConfigError);
}

}  // namespace
}  // namespace fgcs::trace

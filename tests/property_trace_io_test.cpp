// Property tests: trace serialization round-trips exactly for randomly
// generated trace sets, in both formats, across seeds.
#include <gtest/gtest.h>

#include <sstream>

#include "fgcs/trace/io.hpp"
#include "fgcs/util/rng.hpp"

namespace fgcs::trace {
namespace {

using monitor::AvailabilityState;
using sim::SimDuration;
using sim::SimTime;

TraceSet random_trace(std::uint64_t seed) {
  util::RngStream rng(seed);
  const auto machines =
      static_cast<std::uint32_t>(rng.uniform_int(1, 12));
  const auto days = rng.uniform_int(1, 30);
  TraceSet t(machines, SimTime::epoch(),
             SimTime::epoch() + SimDuration::days(days));
  const std::int64_t horizon_us = SimDuration::days(days).as_micros();
  for (MachineId m = 0; m < machines; ++m) {
    // Sequential, non-overlapping episodes per machine.
    std::int64_t cursor = 0;
    while (true) {
      cursor += rng.uniform_int(1, horizon_us / 10);
      const std::int64_t dur = rng.uniform_int(1, horizon_us / 20);
      if (cursor + dur >= horizon_us) break;
      UnavailabilityRecord r;
      r.machine = m;
      r.start = SimTime::from_micros(cursor);
      r.end = SimTime::from_micros(cursor + dur);
      const double which = rng.uniform();
      r.cause = which < 0.7   ? AvailabilityState::kS3CpuUnavailable
                : which < 0.9 ? AvailabilityState::kS4MemoryThrashing
                              : AvailabilityState::kS5MachineUnavailable;
      r.host_cpu = rng.uniform();
      r.free_mem_mb = rng.uniform(0.0, 1024.0);
      t.add(r);
      cursor += dur;
    }
  }
  return t;
}

void expect_identical(const TraceSet& a, const TraceSet& b) {
  ASSERT_EQ(a.machine_count(), b.machine_count());
  ASSERT_EQ(a.horizon_start(), b.horizon_start());
  ASSERT_EQ(a.horizon_end(), b.horizon_end());
  const auto ra = a.records();
  const auto rb = b.records();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(ra[i].machine, rb[i].machine);
    ASSERT_EQ(ra[i].start, rb[i].start);
    ASSERT_EQ(ra[i].end, rb[i].end);
    ASSERT_EQ(ra[i].cause, rb[i].cause);
    ASSERT_DOUBLE_EQ(ra[i].host_cpu, rb[i].host_cpu);
    ASSERT_DOUBLE_EQ(ra[i].free_mem_mb, rb[i].free_mem_mb);
  }
}

class TraceIoPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceIoPropertyTest, CsvRoundTripExact) {
  const auto original = random_trace(GetParam());
  std::stringstream buffer;
  write_trace_csv(original, buffer);
  expect_identical(original, read_trace_csv(buffer));
}

TEST_P(TraceIoPropertyTest, BinaryRoundTripExact) {
  const auto original = random_trace(GetParam());
  std::stringstream buffer;
  write_trace_binary(original, buffer);
  expect_identical(original, read_trace_binary(buffer));
}

TEST_P(TraceIoPropertyTest, FormatsAgreeWithEachOther) {
  const auto original = random_trace(GetParam());
  std::stringstream csv_buf, bin_buf;
  write_trace_csv(original, csv_buf);
  write_trace_binary(original, bin_buf);
  expect_identical(read_trace_csv(csv_buf), read_trace_binary(bin_buf));
}

TEST_P(TraceIoPropertyTest, DerivedStatisticsSurviveRoundTrip) {
  const auto original = random_trace(GetParam());
  std::stringstream buffer;
  write_trace_binary(original, buffer);
  const auto loaded = read_trace_binary(buffer);
  const auto iv_a = original.availability_intervals();
  const auto iv_b = loaded.availability_intervals();
  ASSERT_EQ(iv_a.size(), iv_b.size());
  for (std::size_t i = 0; i < iv_a.size(); ++i) {
    ASSERT_EQ(iv_a[i].length().as_micros(), iv_b[i].length().as_micros());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIoPropertyTest,
                         ::testing::Values(1, 7, 42, 999, 31337, 20050815));

}  // namespace
}  // namespace fgcs::trace

// Observer: pre-registered metric series, install/restore semantics,
// track scoping, profiling scopes, and the disabled-path guarantees
// (zero allocations when no observer is installed).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "fgcs/monitor/detector.hpp"
#include "fgcs/obs/observer.hpp"
#include "fgcs/sim/time.hpp"

// TU-local global-allocation counter for the zero-allocation smoke test.
// Overriding operator new affects this whole test binary, which is fine:
// the counter only has to be *accurate*, the other tests ignore it.
namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fgcs::obs {
namespace {

using sim::SimDuration;
using sim::SimTime;

TEST(Observer, PreRegistersHotPathSeries) {
  Observer obs;
  const auto snapshot = obs.metrics().snapshot();

  int transition_series = 0;
  bool saw_events = false, saw_episodes = false, saw_ticks = false;
  for (const auto& sample : snapshot) {
    if (sample.name == "detector.transitions") ++transition_series;
    if (sample.series() == "sim.events_executed") saw_events = true;
    if (sample.series() == "detector.episodes_opened") saw_episodes = true;
    if (sample.series() == "os.scheduler_ticks") saw_ticks = true;
  }
  // All 25 S-state edges exist up front, so a snapshot always has the full
  // family even when an edge never fired.
  EXPECT_EQ(transition_series, kStateCount * kStateCount);
  EXPECT_TRUE(saw_events);
  EXPECT_TRUE(saw_episodes);
  EXPECT_TRUE(saw_ticks);
}

TEST(Observer, InstallAndRestore) {
  EXPECT_EQ(observer(), nullptr);
  Observer outer;
  {
    ScopedObserver outer_guard(&outer);
    EXPECT_EQ(observer(), &outer);
    Observer inner;
    {
      ScopedObserver inner_guard(&inner);
      EXPECT_EQ(observer(), &inner);
    }
    EXPECT_EQ(observer(), &outer);
  }
  EXPECT_EQ(observer(), nullptr);
}

TEST(Observer, TrackScopeNests) {
  EXPECT_EQ(current_track(), 0u);
  {
    TrackScope a(5);
    EXPECT_EQ(current_track(), 5u);
    {
      TrackScope b(7);
      EXPECT_EQ(current_track(), 7u);
    }
    EXPECT_EQ(current_track(), 5u);
  }
  EXPECT_EQ(current_track(), 0u);
}

TEST(Observer, SimHooksUpdateMetrics) {
  Observer obs;
  obs.on_sim_event(3);  // depth after pop: max depth was 4
  obs.on_sim_event(0);
  EXPECT_EQ(obs.metrics().counter("sim.events_executed").value(), 2u);
  EXPECT_DOUBLE_EQ(obs.metrics().gauge("sim.max_queue_depth").value(), 4.0);

  obs.on_sim_run("run_until", SimTime::epoch(),
                 SimTime::epoch() + SimDuration::seconds(10), 2);
  ASSERT_EQ(obs.trace().size(), 1u);
  EXPECT_EQ(obs.trace().events()[0].name, "run_until");
  EXPECT_EQ(obs.trace().events()[0].dur_us, 10'000'000);
}

TEST(Observer, DetectorTransitionHitsTheRightCell) {
  Observer obs;
  const SimTime at = SimTime::from_seconds(60.0);
  obs.on_detector_transition(at, 1, 3);
  obs.on_detector_transition(at, 1, 3);
  obs.on_detector_transition(at, 3, 1);

  auto& s1_s3 = obs.metrics().counter("detector.transitions",
                                      {{"from", "S1"}, {"to", "S3"}});
  auto& s3_s1 = obs.metrics().counter("detector.transitions",
                                      {{"from", "S3"}, {"to", "S1"}});
  auto& s1_s2 = obs.metrics().counter("detector.transitions",
                                      {{"from", "S1"}, {"to", "S2"}});
  EXPECT_EQ(s1_s3.value(), 2u);
  EXPECT_EQ(s3_s1.value(), 1u);
  EXPECT_EQ(s1_s2.value(), 0u);

  ASSERT_EQ(obs.trace().size(), 3u);
  EXPECT_EQ(obs.trace().events()[0].name, "S1->S3");
  EXPECT_EQ(obs.trace().events()[0].ts_us, 60'000'000);
  EXPECT_EQ(obs.trace().events()[2].name, "S3->S1");

  // Out-of-range states are tolerated (defensive; the detector never
  // produces them) and counted nowhere.
  obs.on_detector_transition(at, 0, 9);
  EXPECT_EQ(obs.trace().events()[3].name, "S?->S?");
}

TEST(Observer, EpisodeCloseEmitsInstantAndSpan) {
  Observer obs;
  const SimTime open_at = SimTime::from_seconds(100.0);
  obs.on_episode_opened(open_at, 3, 0.95, 800.0);
  obs.on_episode_closed(open_at + SimDuration::seconds(50), 3,
                        SimDuration::seconds(50));

  EXPECT_EQ(obs.metrics().counter("detector.episodes_opened").value(), 1u);
  EXPECT_EQ(obs.metrics().counter("detector.episodes_closed").value(), 1u);

  const auto events = obs.trace().events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "episode_open");
  EXPECT_EQ(events[1].name, "episode_close");
  // The span covers [open, close] and is named by the causing state.
  EXPECT_EQ(events[2].name, "S3");
  EXPECT_EQ(events[2].phase, TraceSink::Phase::kComplete);
  EXPECT_EQ(events[2].ts_us, 100'000'000);
  EXPECT_EQ(events[2].dur_us, 50'000'000);
}

TEST(Observer, TraceDisabledStillCountsMetrics) {
  Observer::Options options;
  options.enable_trace = false;
  Observer obs(options);
  obs.on_detector_transition(SimTime::epoch(), 1, 3);
  obs.on_episode_opened(SimTime::epoch(), 3, 0.9, 500.0);
  EXPECT_EQ(obs.trace().size(), 0u);
  EXPECT_EQ(obs.metrics()
                .counter("detector.transitions", {{"from", "S1"}, {"to", "S3"}})
                .value(),
            1u);
  EXPECT_EQ(obs.metrics().counter("detector.episodes_opened").value(), 1u);
}

TEST(Observer, ScopeMacroFeedsHistogram) {
  Observer obs;
  ScopedObserver guard(&obs);
  {
    FGCS_OBS_SCOPE("test/scope");
  }
  {
    FGCS_OBS_SCOPE("test/scope");
  }
  auto& h = obs.metrics().histogram("scope.seconds", {{"scope", "test/scope"}});
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.sum(), 0.0);
}

// The headline guarantee: with no observer installed, instrumented hot
// paths (observer() checks, FGCS_OBS_SCOPE, the detector's steady-state
// sample loop) perform zero heap allocations.
TEST(Observer, DisabledObserverAllocatesNothing) {
  ASSERT_EQ(observer(), nullptr);

  monitor::UnavailabilityDetector detector(
      monitor::ThresholdPolicy::linux_testbed());
  // Warm up outside the measured window (first sample flips bookkeeping).
  monitor::HostSample sample;
  sample.time = SimTime::epoch();
  sample.host_cpu = 0.05;
  sample.free_mem_mb = 900.0;
  detector.observe(sample);

  const std::uint64_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  for (int i = 1; i <= 1000; ++i) {
    if (observer() != nullptr) FAIL();
    FGCS_OBS_SCOPE("never/recorded");
    sample.time = SimTime::from_seconds(static_cast<double>(i));
    detector.observe(sample);  // steady S1: no transitions, no episodes
  }
  const std::uint64_t after =
      g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
}  // namespace fgcs::obs

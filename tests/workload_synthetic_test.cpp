// Tests for synthetic duty-cycle workloads and host-group composition.
#include <gtest/gtest.h>

#include <numeric>

#include "fgcs/util/error.hpp"
#include "fgcs/workload/synthetic.hpp"

namespace fgcs::workload {
namespace {

TEST(SyntheticCpuSpec, Validation) {
  SyntheticCpuSpec s;
  s.isolated_usage = 0.0;
  EXPECT_THROW(s.validate(), ConfigError);
  s = SyntheticCpuSpec{};
  s.isolated_usage = 1.5;
  EXPECT_THROW(s.validate(), ConfigError);
  s = SyntheticCpuSpec{};
  s.jitter = 1.0;
  EXPECT_THROW(s.validate(), ConfigError);
  s = SyntheticCpuSpec{};
  s.period = sim::SimDuration::zero();
  EXPECT_THROW(s.validate(), ConfigError);
  EXPECT_NO_THROW(SyntheticCpuSpec{}.validate());
}

TEST(DutyCycleProgram, AlternatesComputeAndSleep) {
  SyntheticCpuSpec s;
  s.isolated_usage = 0.25;
  s.jitter = 0.0;
  s.period = sim::SimDuration::seconds(2);
  auto prog = duty_cycle_program(s);
  util::RngStream rng(1);
  for (int cycle = 0; cycle < 5; ++cycle) {
    const os::Phase c = prog(rng);
    ASSERT_EQ(c.kind, os::Phase::Kind::kCompute);
    EXPECT_EQ(c.amount.as_micros(), 500'000);
    const os::Phase z = prog(rng);
    ASSERT_EQ(z.kind, os::Phase::Kind::kSleep);
    EXPECT_EQ(z.amount.as_micros(), 1'500'000);
  }
}

TEST(DutyCycleProgram, JitterVariesCyclePeriod) {
  SyntheticCpuSpec s;
  s.isolated_usage = 0.5;
  s.jitter = 0.4;
  auto prog = duty_cycle_program(s);
  util::RngStream rng(2);
  std::set<std::int64_t> compute_amounts;
  for (int cycle = 0; cycle < 10; ++cycle) {
    const os::Phase c = prog(rng);
    compute_amounts.insert(c.amount.as_micros());
    (void)prog(rng);  // sleep
  }
  EXPECT_GT(compute_amounts.size(), 5u);
}

TEST(DutyCycleProgram, JitterPreservesDutyRatio) {
  SyntheticCpuSpec s;
  s.isolated_usage = 0.3;
  s.jitter = 0.3;
  auto prog = duty_cycle_program(s);
  util::RngStream rng(3);
  for (int cycle = 0; cycle < 20; ++cycle) {
    const os::Phase c = prog(rng);
    const os::Phase z = prog(rng);
    const double ratio =
        c.amount.as_seconds() / (c.amount.as_seconds() + z.amount.as_seconds());
    EXPECT_NEAR(ratio, 0.3, 1e-5);  // microsecond rounding
  }
}

TEST(DutyCycleProgram, FullUsageIsCpuBound) {
  SyntheticCpuSpec s;
  s.isolated_usage = 1.0;
  auto prog = duty_cycle_program(s);
  util::RngStream rng(4);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(prog(rng).kind, os::Phase::Kind::kCompute);
  }
}

TEST(SyntheticSpecs, KindsAndNames) {
  const auto host = synthetic_host(0.42);
  EXPECT_EQ(host.kind, os::ProcessKind::kHost);
  EXPECT_EQ(host.nice, 0);
  EXPECT_LT(host.resident_mb, 10.0);  // "very small resident sets"

  const auto guest = synthetic_guest(19);
  EXPECT_EQ(guest.kind, os::ProcessKind::kGuest);
  EXPECT_EQ(guest.nice, 19);

  const auto partial = synthetic_guest_with_usage(0.7);
  EXPECT_EQ(partial.kind, os::ProcessKind::kGuest);
}

class HostGroupTest
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(HostGroupTest, SharesSumToTotalAndRespectBounds) {
  const auto [total, m] = GetParam();
  util::RngStream rng(99);
  for (int rep = 0; rep < 10; ++rep) {
    const auto group = make_host_group(total, m, rng);
    ASSERT_EQ(group.size(), m);
    // Group names must be unique (distinct processes).
    std::set<std::string> names;
    for (const auto& spec : group) names.insert(spec.name);
    EXPECT_EQ(names.size(), m);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HostGroupTest,
    ::testing::Values(std::make_tuple(0.1, std::size_t{1}),
                      std::make_tuple(0.2, std::size_t{3}),
                      std::make_tuple(0.5, std::size_t{5}),
                      std::make_tuple(1.0, std::size_t{5}),
                      std::make_tuple(1.0, std::size_t{8})));

TEST(HostGroup, Validation) {
  util::RngStream rng(1);
  EXPECT_THROW(make_host_group(0.0, 1, rng), ConfigError);
  EXPECT_THROW(make_host_group(1.5, 1, rng), ConfigError);
  EXPECT_THROW(make_host_group(0.5, 0, rng), ConfigError);
  // min_usage * m > total
  EXPECT_THROW(make_host_group(0.05, 5, rng, 0.02), ConfigError);
}

TEST(HostGroup, CompositionsVaryAcrossDraws) {
  util::RngStream rng(5);
  const auto g1 = make_host_group(0.8, 3, rng);
  const auto g2 = make_host_group(0.8, 3, rng);
  // Names encode the rounded usage; at least sometimes they differ.
  bool any_diff = false;
  for (std::size_t i = 0; i < 3; ++i) {
    if (g1[i].name != g2[i].name) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace fgcs::workload

// Tests for the history-window predictor (§5.3's proposal) on crafted
// traces with known daily patterns.
#include <gtest/gtest.h>

#include "fgcs/predict/history_window.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::predict {
namespace {

using namespace sim::time_literals;
using monitor::AvailabilityState;
using sim::SimDuration;
using sim::SimTime;

// A 6-week trace on 2 machines: machine 0 fails every *weekday* 10:00 to
// 11:00; machine 1 never fails (one far-future-free record is required per
// machine only if it has records; machine 1 simply has none).
trace::TraceSet weekday_pattern_trace(int days = 42) {
  trace::TraceSet t(2, SimTime::epoch(),
                    SimTime::epoch() + SimDuration::days(days));
  trace::TraceCalendar cal;
  for (int d = 0; d < days; ++d) {
    if (cal.is_weekend_day(d)) continue;
    trace::UnavailabilityRecord r;
    r.machine = 0;
    r.start = cal.day_start(d) + 10_h;
    r.end = cal.day_start(d) + 11_h;
    r.cause = AvailabilityState::kS3CpuUnavailable;
    t.add(r);
  }
  return t;
}

struct HistoryWindowFixture : ::testing::Test {
  HistoryWindowFixture()
      : trace(weekday_pattern_trace()), index(trace), calendar() {}

  void attach(HistoryWindowPredictor& p) { p.attach(index, calendar); }

  PredictionQuery query_at_day_hour(int day, int hour,
                                    SimDuration len = SimDuration::hours(1),
                                    trace::MachineId m = 0) const {
    return {m, calendar.day_start(day) + SimDuration::hours(hour), len};
  }

  trace::TraceSet trace;
  trace::TraceIndex index;
  trace::TraceCalendar calendar;
};

TEST_F(HistoryWindowFixture, PredictsFailureInPatternWindow) {
  HistoryWindowPredictor p;
  attach(p);
  // Day 35 is a Monday; the 10-11 window failed on the previous 8 weekdays.
  const double avail = p.predict_availability(query_at_day_hour(35, 10));
  EXPECT_LT(avail, 0.2);
}

TEST_F(HistoryWindowFixture, PredictsAvailabilityOutsidePattern) {
  HistoryWindowPredictor p;
  attach(p);
  const double avail = p.predict_availability(query_at_day_hour(35, 14));
  EXPECT_GT(avail, 0.8);
}

TEST_F(HistoryWindowFixture, WeekendQueriesUseWeekendHistory) {
  HistoryWindowPredictor p;
  attach(p);
  // Day 40 is a Saturday: weekends never fail, even at 10:00.
  const double avail = p.predict_availability(query_at_day_hour(40, 10));
  EXPECT_GT(avail, 0.8);
}

TEST_F(HistoryWindowFixture, OtherMachineUnaffected) {
  HistoryWindowPredictor p;
  attach(p);
  const double avail =
      p.predict_availability(query_at_day_hour(35, 10, 1_h, 1));
  EXPECT_GT(avail, 0.8);
}

TEST_F(HistoryWindowFixture, PooledVariantMixesMachines) {
  HistoryWindowConfig cfg;
  cfg.pool_machines = true;
  HistoryWindowPredictor p(cfg);
  attach(p);
  // Pooled over {failing machine 0, clean machine 1}: probability near 0.5.
  const double avail = p.predict_availability(query_at_day_hour(35, 10));
  EXPECT_GT(avail, 0.3);
  EXPECT_LT(avail, 0.7);
}

TEST_F(HistoryWindowFixture, OccurrenceEstimateMatchesPattern) {
  HistoryWindowPredictor p;
  attach(p);
  EXPECT_NEAR(p.predict_occurrences(query_at_day_hour(35, 10)), 1.0, 0.15);
  EXPECT_NEAR(p.predict_occurrences(query_at_day_hour(35, 15)), 0.0, 0.15);
}

TEST_F(HistoryWindowFixture, WindowOverlappingPatternEdge) {
  HistoryWindowPredictor p;
  attach(p);
  // 09:30-10:30 overlaps the failing window.
  PredictionQuery q{0, calendar.day_start(35) + 9_h + 30_min, 1_h};
  EXPECT_LT(p.predict_availability(q), 0.2);
}

TEST_F(HistoryWindowFixture, NoHistoryFallsBackToPrior) {
  HistoryWindowPredictor p;
  attach(p);
  // Day 0 has no previous same-class days at all: Laplace prior = 0.5.
  const double avail = p.predict_availability(query_at_day_hour(0, 10));
  EXPECT_DOUBLE_EQ(avail, 0.5);
}

TEST_F(HistoryWindowFixture, FewerHistoryDaysStillWorks) {
  HistoryWindowConfig cfg;
  cfg.history_days = 2;
  HistoryWindowPredictor p(cfg);
  attach(p);
  EXPECT_LT(p.predict_availability(query_at_day_hour(35, 10)), 0.35);
}

TEST_F(HistoryWindowFixture, LongWindowsExcludeOverlappingHistory) {
  HistoryWindowPredictor p;
  attach(p);
  // A 30-hour window cannot use yesterday (it would overlap the query);
  // the predictor must survive and produce a probability.
  PredictionQuery q{0, calendar.day_start(35) + 2_h, SimDuration::hours(30)};
  const double avail = p.predict_availability(q);
  EXPECT_GE(avail, 0.0);
  EXPECT_LE(avail, 1.0);
}

TEST(HistoryWindowPredictor, ConfigValidation) {
  HistoryWindowConfig cfg;
  cfg.history_days = 0;
  EXPECT_THROW(HistoryWindowPredictor{cfg}, ConfigError);
  cfg = HistoryWindowConfig{};
  cfg.laplace_alpha = -1.0;
  EXPECT_THROW(HistoryWindowPredictor{cfg}, ConfigError);
}

TEST(HistoryWindowPredictor, NameEncodesConfig) {
  HistoryWindowConfig cfg;
  cfg.history_days = 5;
  cfg.pool_machines = true;
  EXPECT_EQ(HistoryWindowPredictor(cfg).name(), "history-window(k=5,pooled)");
}

}  // namespace
}  // namespace fgcs::predict

// AvailabilityFeed: incremental ingestion, copy-on-write snapshots, the
// observer event seam, and the monotone-ingest contract.
#include <gtest/gtest.h>

#include "fgcs/obs/observer.hpp"
#include "fgcs/serve/feed.hpp"
#include "fgcs/serve/query.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::serve {
namespace {

using monitor::AvailabilityState;
using sim::SimDuration;
using sim::SimTime;

trace::UnavailabilityRecord rec(trace::MachineId m, double start_h,
                                double end_h,
                                AvailabilityState cause =
                                    AvailabilityState::kS3CpuUnavailable) {
  trace::UnavailabilityRecord r;
  r.machine = m;
  r.start = SimTime::epoch() + SimDuration::from_seconds(start_h * 3600.0);
  r.end = SimTime::epoch() + SimDuration::from_seconds(end_h * 3600.0);
  r.cause = cause;
  return r;
}

FeedConfig small_config(std::uint32_t machines = 4) {
  FeedConfig fc;
  fc.machines = machines;
  fc.horizon_start = SimTime::epoch();
  fc.publish_every = 0;  // explicit publish() only
  return fc;
}

TEST(ServeFeed, FreshFeedPublishesAnEmptyVersionZeroSnapshot) {
  AvailabilityFeed feed(small_config());
  const auto snap = feed.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, 0u);
  EXPECT_EQ(snap->events, 0u);
  ASSERT_EQ(snap->machines.size(), 4u);
  for (const auto& m : snap->machines) {
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->episodes, 0u);
    EXPECT_FALSE(m->open);
  }
  EXPECT_EQ(feed.watermark(2), SimTime::epoch());
}

TEST(ServeFeed, IngestFoldsEpisodesIntoIncrementalState) {
  AvailabilityFeed feed(small_config());
  feed.ingest(rec(1, 10.0, 10.5, AvailabilityState::kS5MachineUnavailable));
  feed.ingest(rec(1, 14.0, 14.25));
  feed.publish();

  const auto snap = feed.snapshot();
  EXPECT_EQ(snap->version, 1u);
  EXPECT_EQ(snap->events, 2u);
  const MachineState& m = *snap->machines[1];
  EXPECT_EQ(m.episodes, 2u);
  EXPECT_EQ(m.last_start, SimTime::epoch() + SimDuration::from_seconds(14.0 * 3600.0));
  EXPECT_EQ(m.last_end, SimTime::epoch() + SimDuration::from_seconds(14.25 * 3600.0));
  // One availability gap: 10.5h -> 14.0h, weekday class (epoch = Monday).
  ASSERT_EQ(m.gaps[0].sorted_h.size(), 1u);
  EXPECT_DOUBLE_EQ(m.gaps[0].sorted_h[0], 3.5);
  EXPECT_TRUE(m.gaps[1].sorted_h.empty());
  EXPECT_DOUBLE_EQ(m.down_sum_h, 0.75);
  EXPECT_EQ(m.cause_episodes[4], 1u);  // S5
  EXPECT_EQ(m.cause_episodes[2], 1u);  // S3
  // Durations: 30 min -> (15, 60] bucket; 15 min -> (5, 15] bucket.
  EXPECT_EQ(m.duration_buckets[3], 1u);
  EXPECT_EQ(m.duration_buckets[2], 1u);
  // Untouched machines share the pristine state.
  EXPECT_EQ(snap->machines[0]->episodes, 0u);
}

TEST(ServeFeed, IngestEnforcesTheMonotoneContract) {
  AvailabilityFeed feed(small_config());
  feed.ingest(rec(0, 5.0, 6.0));
  EXPECT_THROW(feed.ingest(rec(0, 4.0, 4.5)), ConfigError);     // regression
  EXPECT_THROW(feed.ingest(rec(9, 7.0, 8.0)), ConfigError);     // bad machine
  EXPECT_THROW(feed.ingest(rec(1, 3.0, 2.0)), ConfigError);     // end < start
  // A different machine's earlier episode is fine: monotone per machine.
  feed.ingest(rec(1, 1.0, 2.0));
  EXPECT_EQ(feed.events_ingested(), 2u);
}

TEST(ServeFeed, PinnedSnapshotsAreImmuneToLaterIngest) {
  AvailabilityFeed feed(small_config());
  feed.ingest(rec(0, 1.0, 2.0));
  feed.publish();
  const auto pinned = feed.snapshot();
  const std::uint64_t episodes_then = pinned->machines[0]->episodes;

  feed.ingest(rec(0, 3.0, 4.0));
  feed.ingest(rec(0, 5.0, 6.0));
  feed.publish();

  EXPECT_EQ(pinned->machines[0]->episodes, episodes_then);
  EXPECT_EQ(feed.snapshot()->machines[0]->episodes, 3u);
  EXPECT_GT(feed.snapshot()->version, pinned->version);
}

TEST(ServeFeed, AutoPublishesEveryNIngests) {
  FeedConfig fc = small_config();
  fc.publish_every = 2;
  AvailabilityFeed feed(fc);
  feed.ingest(rec(0, 1.0, 1.5));
  EXPECT_EQ(feed.snapshot()->version, 0u);  // not yet
  feed.ingest(rec(0, 2.0, 2.5));
  EXPECT_EQ(feed.snapshot()->version, 1u);  // swapped at N=2
  EXPECT_EQ(feed.snapshot()->events, 2u);
  feed.ingest(rec(0, 3.0, 3.5));
  feed.ingest(rec(0, 4.0, 4.5));
  EXPECT_EQ(feed.snapshot()->version, 2u);
  EXPECT_EQ(feed.snapshots_published(), 2u);
}

TEST(ServeFeed, OpenEpisodeMarksTheMachineDownUntilClosed) {
  AvailabilityFeed feed(small_config());
  feed.open_episode(0, SimTime::epoch() + SimDuration::from_seconds(10.0 * 3600.0));
  feed.publish();
  const QueryEngine engine(feed);
  const auto down = engine.query(*feed.snapshot(),
                                 {0, SimTime::epoch() + SimDuration::from_seconds(11.0 * 3600.0),
                                  SimDuration::from_seconds(1.0 * 3600.0)});
  EXPECT_EQ(down.p_available, 0.0);
  EXPECT_EQ(feed.watermark(0), SimTime::epoch() + SimDuration::from_seconds(10.0 * 3600.0));

  feed.ingest(rec(0, 10.0, 12.0));  // the matching close
  feed.publish();
  const auto after = engine.query(*feed.snapshot(),
                                  {0, SimTime::epoch() + SimDuration::from_seconds(13.0 * 3600.0),
                                   SimDuration::from_seconds(1.0 * 3600.0)});
  EXPECT_GT(after.p_available, 0.0);
}

TEST(ServeFeed, EventSinkReconstructsRecordsFromCloseEvents) {
  AvailabilityFeed by_events(small_config());
  AvailabilityFeed by_records(small_config());

  const SimTime open_at = SimTime::epoch() + SimDuration::from_seconds(8.0 * 3600.0);
  const SimTime close_at = SimTime::epoch() + SimDuration::from_seconds(9.5 * 3600.0);
  obs::FlightEvent opened;
  opened.at = open_at;
  opened.kind = obs::FlightEventKind::kEpisodeOpened;
  opened.machine = 2;
  opened.a = static_cast<std::int32_t>(AvailabilityState::kS4MemoryThrashing);
  obs::FlightEvent closed;
  closed.at = close_at;
  closed.kind = obs::FlightEventKind::kEpisodeClosed;
  closed.machine = 2;
  closed.a = static_cast<std::int32_t>(AvailabilityState::kS4MemoryThrashing);
  closed.dur = close_at - open_at;
  by_events.on_flight_event(opened);
  by_events.on_flight_event(closed);

  trace::UnavailabilityRecord r = rec(2, 8.0, 9.5);
  r.cause = AvailabilityState::kS4MemoryThrashing;
  by_records.open_episode(2, open_at);
  by_records.ingest(r);

  by_events.publish();
  by_records.publish();
  const MachineState& a = *by_events.snapshot()->machines[2];
  const MachineState& b = *by_records.snapshot()->machines[2];
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.last_start, b.last_start);
  EXPECT_EQ(a.last_end, b.last_end);
  EXPECT_EQ(a.open, b.open);
  EXPECT_DOUBLE_EQ(a.down_sum_h, b.down_sum_h);
  EXPECT_EQ(a.cause_episodes[3], 1u);
}

TEST(ServeFeed, ObserverSeamDeliversEpisodesAndCountsIngests) {
  AvailabilityFeed feed(small_config());
  obs::Observer observer;
  observer.set_event_sink(&feed);
  obs::ScopedObserver guard(&observer);
  obs::TrackScope track(3);

  observer.on_episode_opened(SimTime::epoch() + SimDuration::from_seconds(1.0 * 3600.0),
                             static_cast<int>(AvailabilityState::kS5MachineUnavailable),
                             0.9, 64.0);
  observer.on_episode_closed(SimTime::epoch() + SimDuration::from_seconds(1.5 * 3600.0),
                             static_cast<int>(AvailabilityState::kS5MachineUnavailable),
                             SimDuration::from_seconds(0.5 * 3600.0));

  EXPECT_EQ(feed.events_ingested(), 1u);
  feed.publish();
  const MachineState& m = *feed.snapshot()->machines[3];
  EXPECT_EQ(m.episodes, 1u);
  EXPECT_EQ(m.last_start, SimTime::epoch() + SimDuration::from_seconds(1.0 * 3600.0));
  EXPECT_EQ(m.last_end, SimTime::epoch() + SimDuration::from_seconds(1.5 * 3600.0));
  EXPECT_EQ(static_cast<double>(observer.metrics().counter("serve.ingest_events").value()), 1.0);
}

TEST(ServeFeed, ConfigValidation) {
  FeedConfig fc;
  fc.machines = 0;
  EXPECT_THROW(AvailabilityFeed feed(fc), ConfigError);
}

}  // namespace
}  // namespace fgcs::serve

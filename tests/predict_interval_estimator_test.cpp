// Tests for the §5.2 interval-length estimator (mean residual life).
#include <gtest/gtest.h>

#include "fgcs/predict/interval_estimator.hpp"
#include "fgcs/stats/ecdf.hpp"
#include "fgcs/util/rng.hpp"

namespace fgcs::predict {
namespace {

using namespace sim::time_literals;
using monitor::AvailabilityState;
using sim::SimDuration;
using sim::SimTime;

// Episodes every 4 hours, 30 minutes long: intervals all exactly 3.5 h.
trace::TraceSet regular_trace(int days = 30) {
  trace::TraceSet t(1, SimTime::epoch(),
                    SimTime::epoch() + SimDuration::days(days));
  for (int d = 0; d < days; ++d) {
    for (int h = 0; h < 24; h += 4) {
      trace::UnavailabilityRecord r;
      r.machine = 0;
      r.start = SimTime::epoch() + SimDuration::days(d) + SimDuration::hours(h);
      r.end = r.start + 30_min;
      r.cause = AvailabilityState::kS3CpuUnavailable;
      t.add(r);
    }
  }
  return t;
}

struct EstimatorFixture : ::testing::Test {
  EstimatorFixture()
      : trace(regular_trace()), index(trace), estimator(index, calendar) {}
  trace::TraceSet trace;
  trace::TraceIndex index;
  trace::TraceCalendar calendar;
  IntervalLengthEstimator estimator;
};

TEST_F(EstimatorFixture, UnconditionalMeanMatchesPattern) {
  EXPECT_NEAR(estimator.expected_interval_hours(
                  0, SimTime::epoch() + SimDuration::days(20)),
              3.5, 0.05);
}

TEST_F(EstimatorFixture, FreshIntervalExpectsFullLength) {
  // Just after an episode: age ~0, so MRL ~ full interval.
  const SimTime t = SimTime::epoch() + SimDuration::days(20) + 31_min;
  EXPECT_NEAR(estimator.expected_remaining_hours(0, t), 3.5, 0.1);
}

TEST_F(EstimatorFixture, AgedIntervalExpectsRemainder) {
  // Two hours into a 3.5-hour interval: ~1.5 hours left.
  const SimTime t = SimTime::epoch() + SimDuration::days(20) + 30_min + 2_h;
  EXPECT_NEAR(estimator.expected_remaining_hours(0, t), 1.5, 0.1);
}

TEST_F(EstimatorFixture, InsideEpisodeIsZero) {
  const SimTime t = SimTime::epoch() + SimDuration::days(20) + 10_min;
  EXPECT_DOUBLE_EQ(estimator.expected_remaining_hours(0, t), 0.0);
}

TEST_F(EstimatorFixture, AgeBeyondHistorySmallRemainder) {
  // Query long after the last recorded episode: age exceeds every sample.
  const SimTime t = SimTime::epoch() + SimDuration::days(40);
  EXPECT_LE(estimator.expected_remaining_hours(0, t), 0.5);
}

TEST(IntervalLengthEstimator, ThinHistoryFallsBack) {
  trace::TraceSet t(1, SimTime::epoch(),
                    SimTime::epoch() + SimDuration::days(10));
  trace::UnavailabilityRecord r;
  r.machine = 0;
  r.start = SimTime::epoch() + 1_h;
  r.end = r.start + 10_min;
  r.cause = AvailabilityState::kS3CpuUnavailable;
  t.add(r);
  const trace::TraceIndex index(t);
  const trace::TraceCalendar cal;
  IntervalLengthEstimator::Config cfg;
  cfg.fallback_hours = 7.5;
  const IntervalLengthEstimator est(index, cal, cfg);
  const SimTime q = SimTime::epoch() + SimDuration::days(5);
  EXPECT_DOUBLE_EQ(est.expected_interval_hours(0, q), 7.5);
  EXPECT_DOUBLE_EQ(est.expected_remaining_hours(0, q), 7.5);
}

TEST(KsPValue, SameDistributionHighP) {
  util::RngStream rng(1);
  std::vector<double> xs(800), ys(800);
  for (auto& x : xs) x = rng.normal();
  for (auto& y : ys) y = rng.normal();
  EXPECT_GT(stats::ks_p_value(stats::Ecdf{xs}, stats::Ecdf{ys}), 0.05);
}

TEST(KsPValue, DifferentDistributionsLowP) {
  util::RngStream rng(2);
  std::vector<double> xs(800), ys(800);
  for (auto& x : xs) x = rng.normal();
  for (auto& y : ys) y = rng.normal(0.4, 1.0);
  EXPECT_LT(stats::ks_p_value(stats::Ecdf{xs}, stats::Ecdf{ys}), 0.01);
}

TEST(KsPValue, IdenticalSamplesPOne) {
  stats::Ecdf a{std::vector<double>{1, 2, 3, 4, 5}};
  EXPECT_NEAR(stats::ks_p_value(a, a), 1.0, 1e-6);
}

TEST(KsPValue, EmptyIsVacuouslyOne) {
  stats::Ecdf a{std::vector<double>{1.0}};
  stats::Ecdf empty;
  EXPECT_DOUBLE_EQ(stats::ks_p_value(a, empty), 1.0);
}

}  // namespace
}  // namespace fgcs::predict

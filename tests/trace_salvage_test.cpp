// Tests for robust trace loading: strict readers with source/line/offset
// context in their errors, and salvage readers that recover every
// well-formed record from damaged input.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fgcs/trace/format_v2.hpp"
#include "fgcs/trace/io.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::trace {
namespace {

using sim::SimDuration;
using sim::SimTime;

// Binary layout constants (see io.hpp): 8-byte magic + 28-byte header,
// then 37 bytes per record with the cause byte at offset 20.
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8 + 8;
constexpr std::size_t kRecordBytes = 4 + 8 + 8 + 1 + 8 + 8;
constexpr std::size_t kCauseOffsetInRecord = 4 + 8 + 8;

TraceSet sample_trace(std::size_t per_machine = 4) {
  TraceSet trace(2, SimTime::epoch(), SimTime::epoch() + SimDuration::days(1));
  for (std::uint32_t m = 0; m < 2; ++m) {
    for (std::size_t i = 0; i < per_machine; ++i) {
      UnavailabilityRecord r;
      r.machine = m;
      r.start = SimTime::epoch() + SimDuration::hours(1 + 2 * i);
      r.end = r.start + SimDuration::minutes(30);
      r.cause = i % 2 == 0 ? monitor::AvailabilityState::kS3CpuUnavailable
                           : monitor::AvailabilityState::kS5MachineUnavailable;
      r.host_cpu = 0.25 + 0.125 * static_cast<double>(i);
      r.free_mem_mb = 256.0 + 64.0 * static_cast<double>(i);
      trace.add(r);
    }
  }
  return trace;
}

std::string to_binary(const TraceSet& trace) {
  std::ostringstream out(std::ios::binary);
  write_trace_binary(trace, out);
  return out.str();
}

std::string to_csv(const TraceSet& trace) {
  std::ostringstream out;
  write_trace_csv(trace, out);
  return out.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

void expect_same_records(const TraceSet& a, const TraceSet& b,
                         std::size_t count) {
  ASSERT_GE(a.size(), count);
  ASSERT_GE(b.size(), count);
  const auto ra = a.records();
  const auto rb = b.records();
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(ra[i].machine, rb[i].machine) << "record " << i;
    EXPECT_EQ(ra[i].start, rb[i].start) << "record " << i;
    EXPECT_EQ(ra[i].end, rb[i].end) << "record " << i;
    EXPECT_EQ(ra[i].cause, rb[i].cause) << "record " << i;
    EXPECT_DOUBLE_EQ(ra[i].host_cpu, rb[i].host_cpu) << "record " << i;
    EXPECT_DOUBLE_EQ(ra[i].free_mem_mb, rb[i].free_mem_mb) << "record " << i;
  }
}

TEST(TraceSalvageTest, CleanInputsSalvageToIdenticalTraces) {
  const auto trace = sample_trace();

  std::istringstream bin(to_binary(trace), std::ios::binary);
  const auto bin_report = read_trace_binary_salvage(bin);
  EXPECT_TRUE(bin_report.clean());
  EXPECT_EQ(bin_report.recovered, trace.size());
  expect_same_records(bin_report.trace, trace, trace.size());

  std::istringstream csv(to_csv(trace));
  const auto csv_report = read_trace_csv_salvage(csv);
  EXPECT_TRUE(csv_report.clean());
  EXPECT_EQ(csv_report.recovered, trace.size());
  expect_same_records(csv_report.trace, trace, trace.size());
}

TEST(TraceSalvageTest, StrictCsvErrorsNameSourceAndLine) {
  const auto trace = sample_trace();
  auto lines = split_lines(to_csv(trace));
  ASSERT_GE(lines.size(), 4u);
  lines[3] = "0,garbage,360000000,S3,0.5,128";  // line 4: bad start_us

  std::istringstream in(join_lines(lines));
  try {
    read_trace_csv(in, "lab.csv");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lab.csv:4"), std::string::npos) << what;
    EXPECT_NE(what.find("garbage"), std::string::npos) << what;
  }
}

TEST(TraceSalvageTest, StrictBinaryErrorsNameSourceAndOffset) {
  const auto trace = sample_trace();
  const std::string bytes = to_binary(trace);
  // Cut mid-way through the third record.
  const std::size_t keep = kHeaderBytes + 2 * kRecordBytes + 5;
  std::istringstream in(bytes.substr(0, keep), std::ios::binary);
  try {
    read_trace_binary(in, "lab.bin");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lab.bin"), std::string::npos) << what;
    EXPECT_NE(what.find("byte offset"), std::string::npos) << what;
  }
}

TEST(TraceSalvageTest, BinarySalvageRecoversEveryRecordBeforeTruncation) {
  const auto trace = sample_trace();
  const std::string bytes = to_binary(trace);
  for (std::size_t whole : {std::size_t{0}, std::size_t{3}, std::size_t{7}}) {
    const std::size_t keep = kHeaderBytes + whole * kRecordBytes +
                             (whole < trace.size() ? 9 : 0);
    std::istringstream in(bytes.substr(0, keep), std::ios::binary);
    const auto report = read_trace_binary_salvage(in, "cut.bin");
    EXPECT_TRUE(report.truncated) << "whole=" << whole;
    EXPECT_EQ(report.recovered, whole);
    EXPECT_EQ(report.skipped, 0u);
    expect_same_records(report.trace, trace, whole);
    ASSERT_FALSE(report.diagnostics.empty());
    EXPECT_NE(report.diagnostics[0].find("byte offset"), std::string::npos);
    // Declared metadata survives the cut, so nothing is inferred.
    EXPECT_FALSE(report.metadata_inferred);
    EXPECT_EQ(report.trace.machine_count(), trace.machine_count());
  }
}

TEST(TraceSalvageTest, BinarySalvageSkipsLocalizedCorruption) {
  const auto trace = sample_trace();
  std::string bytes = to_binary(trace);
  // Stomp the cause byte of record 2 with an impossible state.
  bytes[kHeaderBytes + 2 * kRecordBytes + kCauseOffsetInRecord] = 9;

  std::istringstream in(bytes, std::ios::binary);
  const auto report = read_trace_binary_salvage(in, "flip.bin");
  EXPECT_FALSE(report.truncated);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.recovered, trace.size() - 1);
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_NE(report.diagnostics[0].find("invalid cause"), std::string::npos);
}

TEST(TraceSalvageTest, BinarySalvageBadMagicRecoversNothing) {
  std::istringstream in(std::string("NOTATRACE_AT_ALL"), std::ios::binary);
  const auto report = read_trace_binary_salvage(in, "junk.bin");
  EXPECT_EQ(report.recovered, 0u);
  EXPECT_TRUE(report.truncated);
  EXPECT_TRUE(report.trace.empty());
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_NE(report.diagnostics[0].find("bad magic"), std::string::npos);
}

TEST(TraceSalvageTest, CsvSalvageSkipsCorruptLinesAndKeepsTheRest) {
  const auto trace = sample_trace();
  auto lines = split_lines(to_csv(trace));
  ASSERT_GE(lines.size(), 6u);
  lines[4] = "@@@@ binary splatter \x01\x02 @@@@";
  const std::size_t expected = trace.size() - 1;

  std::istringstream in(join_lines(lines));
  const auto report = read_trace_csv_salvage(in, "dirty.csv");
  EXPECT_EQ(report.recovered, expected);
  EXPECT_GE(report.skipped, 1u);
  EXPECT_FALSE(report.metadata_inferred);
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_NE(report.diagnostics[0].find("dirty.csv:5"), std::string::npos);
}

TEST(TraceSalvageTest, CsvSalvageInfersMetadataWhenHeaderIsDestroyed) {
  const auto trace = sample_trace();
  auto lines = split_lines(to_csv(trace));
  // Drop both the magic line and the column header: raw data only.
  lines.erase(lines.begin(), lines.begin() + 2);

  std::istringstream in(join_lines(lines));
  const auto report = read_trace_csv_salvage(in, "headless.csv");
  EXPECT_TRUE(report.metadata_inferred);
  EXPECT_EQ(report.recovered, trace.size());
  EXPECT_EQ(report.trace.machine_count(), trace.machine_count());
  expect_same_records(report.trace, trace, trace.size());
}

TEST(TraceSalvageTest, CsvSalvageRejectsSemanticallyInvalidRecords) {
  const auto trace = sample_trace();
  auto lines = split_lines(to_csv(trace));
  lines[3] = "0,7200000000,3600000000,S3,0.5,128";  // ends before it starts
  lines[4] = "1,3600000000,7200000000,S3,1.5,128";  // host_cpu > 1

  std::istringstream in(join_lines(lines));
  const auto report = read_trace_csv_salvage(in, "bad.csv");
  EXPECT_EQ(report.skipped, 2u);
  EXPECT_EQ(report.recovered, trace.size() - 2);
}

TEST(TraceSalvageTest, FilePathsFlowThroughLoadHelpers) {
  const auto trace = sample_trace();
  const std::string path = ::testing::TempDir() + "fgcs_salvage_test.bin";
  save_trace(trace, path);

  // Truncate the file on disk to half its size.
  const std::string bytes = to_binary(trace);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }

  try {
    load_trace(path);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }

  const auto report = load_trace_salvage(path);
  EXPECT_TRUE(report.truncated);
  EXPECT_GT(report.recovered, 0u);
  expect_same_records(report.trace, trace, report.recovered);
  std::remove(path.c_str());
}

// Regression: a zero-length input is an empty trace, not damage — both
// salvage readers must return a clean, empty LoadReport for it.
TEST(TraceSalvageTest, CsvSalvageOfEmptyInputIsCleanAndEmpty) {
  for (const char* text : {"", "\n", "\r\n\n", "   \n\n"}) {
    SCOPED_TRACE(std::string("input: ") + text);
    std::istringstream in(text);
    const LoadReport report = read_trace_csv_salvage(in, "<empty>");
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.recovered, 0u);
    EXPECT_EQ(report.skipped, 0u);
    EXPECT_FALSE(report.truncated);
    EXPECT_FALSE(report.metadata_inferred);
    EXPECT_TRUE(report.diagnostics.empty());
    EXPECT_EQ(report.trace.size(), 0u);
    EXPECT_GE(report.trace.machine_count(), 1u);
  }
}

TEST(TraceSalvageTest, BinarySalvageOfEmptyInputIsCleanAndEmpty) {
  std::istringstream in(std::string{});
  const LoadReport report = read_trace_binary_salvage(in, "<empty>");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.recovered, 0u);
  EXPECT_FALSE(report.truncated);
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_EQ(report.trace.size(), 0u);
  EXPECT_GE(report.trace.machine_count(), 1u);
}

TEST(TraceSalvageTest, CsvSalvageOfHeaderOnlyFileIsCleanAndEmpty) {
  // A well-formed trace with zero records: magic metadata line plus the
  // column header, nothing else. Exactly what write_trace_csv emits for
  // an empty trace.
  TraceSet empty(3, SimTime::from_micros(0), SimTime::from_micros(1000));
  std::ostringstream out;
  write_trace_csv(empty, out);
  std::istringstream in(out.str());
  const LoadReport report = read_trace_csv_salvage(in, "<header-only>");
  EXPECT_TRUE(report.clean())
      << (report.diagnostics.empty() ? "no diagnostics"
                                     : report.diagnostics.front());
  EXPECT_EQ(report.recovered, 0u);
  EXPECT_EQ(report.trace.machine_count(), 3u);
  EXPECT_EQ(report.trace.size(), 0u);
}

TEST(TraceSalvageTest, BinarySalvageOfHeaderOnlyFileIsCleanAndEmpty) {
  TraceSet empty(2, SimTime::from_micros(0), SimTime::from_micros(500));
  std::ostringstream out;
  write_trace_binary(empty, out);
  std::istringstream in(out.str());
  const LoadReport report = read_trace_binary_salvage(in, "<header-only>");
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.recovered, 0u);
  EXPECT_EQ(report.trace.machine_count(), 2u);
  EXPECT_EQ(report.trace.size(), 0u);
}

TEST(TraceSalvageTest, BinarySalvageOfPartialMagicIsStillTruncation) {
  // A few bytes that are not even a whole magic: damage, not emptiness.
  std::istringstream in(std::string("fgcs", 4));
  const LoadReport report = read_trace_binary_salvage(in, "<cut>");
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.recovered, 0u);
}

// --- v2 damage classification: crash signatures vs. media corruption ------
//
// Checksummed ("BLK3") v2 layout, for surgical cuts:
//   28-byte header, then per block: u32 magic + u32 count + 37*count
//   column bytes + u32 trailing CRC (the commit mark), then the footer.
constexpr std::size_t kV2HeaderBytes = 28;
constexpr std::size_t kV2BlockRecords = 2;
constexpr std::size_t kV2BlockBytes = 4 + 4 + 37 * kV2BlockRecords + 4;

std::string v2_temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// sample_trace() as a sealed v2 file (4 blocks of 2 records), returned
/// as bytes for surgical damage.
std::string sample_v2_bytes(const std::string& path) {
  const TraceSet trace = sample_trace();
  TraceWriterV2 writer(path, trace.machine_count(), trace.horizon_start(),
                       trace.horizon_end(), kV2BlockRecords);
  for (const auto& r : trace.records()) writer.append(r);
  writer.finish();
  std::ifstream in(path, std::ios::binary);
  return std::string{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(TraceSalvageTest, V2TornFinalBlockIsDiscardedWholesale) {
  const std::string path = v2_temp_path("salvage_v2_torn.trc2");
  const std::string full = sample_v2_bytes(path);
  ASSERT_GT(full.size(), kV2HeaderBytes + 3 * kV2BlockBytes);

  // A kill between a block's column bytes and its trailing CRC: the third
  // block's columns are complete on disk but the commit mark is missing.
  // The whole block must be dropped (an uncommitted transaction), not
  // half-recovered via the legacy last-column heuristic.
  const std::size_t cut = kV2HeaderBytes + 2 * kV2BlockBytes +
                          (kV2BlockBytes - 4 /* everything but the CRC */);
  write_bytes(path, full.substr(0, cut));
  const LoadReport report = load_trace_v2_salvage(path);
  EXPECT_TRUE(report.truncated);
  EXPECT_TRUE(report.torn_final_block);
  EXPECT_FALSE(report.truncated_footer);
  EXPECT_EQ(report.recovered, 2 * kV2BlockRecords);
  EXPECT_EQ(report.skipped, 0u);

  // A cut mid-columns classifies the same way.
  write_bytes(path, full.substr(0, kV2HeaderBytes + 2 * kV2BlockBytes + 20));
  const LoadReport partial = load_trace_v2_salvage(path);
  EXPECT_TRUE(partial.torn_final_block);
  EXPECT_FALSE(partial.truncated_footer);
  EXPECT_EQ(partial.recovered, 2 * kV2BlockRecords);
  std::remove(path.c_str());
}

TEST(TraceSalvageTest, V2CutAtBlockBoundaryIsTruncatedFooterNotTorn) {
  const std::string path = v2_temp_path("salvage_v2_boundary.trc2");
  const std::string full = sample_v2_bytes(path);

  // A kill after a block flush but before finish(): every block on disk
  // is committed, only the footer is missing. Distinct from a torn block —
  // nothing was lost mid-write.
  write_bytes(path, full.substr(0, kV2HeaderBytes + 3 * kV2BlockBytes));
  const LoadReport report = load_trace_v2_salvage(path);
  EXPECT_TRUE(report.truncated);
  EXPECT_TRUE(report.truncated_footer);
  EXPECT_FALSE(report.torn_final_block);
  EXPECT_EQ(report.recovered, 3 * kV2BlockRecords);
  EXPECT_EQ(report.skipped, 0u);
  std::remove(path.c_str());
}

TEST(TraceSalvageTest, V2MidFileCorruptionIsSkippedNotTruncation) {
  const std::string path = v2_temp_path("salvage_v2_corrupt.trc2");
  std::string bytes = sample_v2_bytes(path);

  // Flip a column byte inside the second block of an otherwise intact
  // file: media corruption, not a crash. The reader drops that block,
  // keeps walking the chain, and raises neither crash flag.
  bytes[kV2HeaderBytes + kV2BlockBytes + 8 + 5] ^= 0x20;
  write_bytes(path, bytes);
  const LoadReport report = load_trace_v2_salvage(path);
  EXPECT_FALSE(report.truncated);
  EXPECT_FALSE(report.torn_final_block);
  EXPECT_FALSE(report.truncated_footer);
  EXPECT_EQ(report.skipped, kV2BlockRecords);
  EXPECT_EQ(report.recovered, 3 * kV2BlockRecords);
  EXPECT_FALSE(report.clean());

  // The strict loader refuses the same file outright.
  EXPECT_THROW(load_trace_v2(path), IoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fgcs::trace

// Chaos property suite (robustness): the testbed under randomized fault
// plans must replay bit-identically, keep every StateTimeline invariant,
// and produce identical results with the scheduler fast-forward on or
// off while faults are active.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fgcs/core/testbed.hpp"
#include "fgcs/fault/injector.hpp"
#include "fgcs/monitor/guest_controller.hpp"
#include "fgcs/monitor/machine_sampler.hpp"
#include "fgcs/monitor/state_timeline.hpp"
#include "fgcs/os/machine.hpp"
#include "fgcs/sim/simulation.hpp"
#include "fgcs/util/rng.hpp"
#include "fgcs/workload/synthetic.hpp"

namespace fgcs {
namespace {

using sim::SimDuration;
using sim::SimTime;

// ---------------------------------------------------------------------------
// Randomized fault plans (deterministic per iteration seed).

fault::FaultPlan random_plan(std::uint64_t seed, std::uint32_t machines) {
  util::RngStream rng(seed, {0xC4A05u});
  fault::FaultPlan plan;
  const std::uint64_t specs = 1 + rng.uniform_index(3);
  for (std::uint64_t i = 0; i < specs; ++i) {
    fault::FaultSpec s;
    s.kind = static_cast<fault::FaultKind>(rng.uniform_index(4));
    if (rng.bernoulli(0.3)) {
      const std::uint64_t n = 1 + rng.uniform_index(3);
      for (std::uint64_t k = 0; k < n; ++k) {
        s.at_hours.push_back(rng.uniform(0.0, 72.0));
      }
    } else {
      s.rate_per_day = rng.uniform(0.5, 8.0);
    }
    s.mean_minutes = rng.uniform(1.0, 45.0);
    if (rng.bernoulli(0.4)) s.duration_minutes = rng.uniform(0.5, 20.0);
    if (s.kind == fault::FaultKind::kClockSkew) {
      s.skew_ms = rng.uniform(-800.0, 800.0);
    }
    if (rng.bernoulli(0.4)) {
      s.machine = static_cast<std::int64_t>(rng.uniform_index(machines));
    }
    plan.specs.push_back(s);
  }
  return plan;
}

core::TestbedConfig chaos_config(std::uint64_t seed) {
  core::TestbedConfig config;
  config.machines = 2;
  config.days = 3;
  config.seed = 5000 + seed;
  config.faults = random_plan(seed, config.machines);
  return config;
}

// ---------------------------------------------------------------------------
// StateTimeline invariants: sorted, non-overlapping, gap-free, and its
// occupancy accounting consistent with the horizon.

void expect_timeline_invariants(const monitor::StateTimeline& timeline) {
  const auto intervals = timeline.intervals();
  ASSERT_FALSE(intervals.empty());
  EXPECT_EQ(intervals.front().start, timeline.start());
  EXPECT_EQ(intervals.back().end, timeline.end());
  SimDuration total = SimDuration::zero();
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    EXPECT_LE(intervals[i].start, intervals[i].end) << "interval " << i;
    if (i > 0) {
      // Gap-free and non-overlapping: each interval starts exactly where
      // the previous one ended.
      EXPECT_EQ(intervals[i - 1].end, intervals[i].start) << "interval " << i;
    }
    total += intervals[i].duration();
  }
  EXPECT_EQ(total, timeline.end() - timeline.start());

  SimDuration in_states = SimDuration::zero();
  for (int s = 1; s <= 5; ++s) {
    in_states += timeline.time_in(static_cast<monitor::AvailabilityState>(s));
  }
  EXPECT_EQ(in_states, timeline.end() - timeline.start());
  EXPECT_GE(timeline.coverage(), 0.0);
  EXPECT_LE(timeline.coverage(), 1.0);
  EXPECT_GE(timeline.availability(), 0.0);
  EXPECT_LE(timeline.availability(), 1.0);
  EXPECT_LE(timeline.sensor_gap_time(), timeline.end() - timeline.start());
}

bool same_records(const std::vector<trace::UnavailabilityRecord>& a,
                  const std::vector<trace::UnavailabilityRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].machine != b[i].machine || a[i].start != b[i].start ||
        a[i].end != b[i].end || a[i].cause != b[i].cause ||
        a[i].host_cpu != b[i].host_cpu ||
        a[i].free_mem_mb != b[i].free_mem_mb) {
      return false;
    }
  }
  return true;
}

TEST(FaultChaosTest, RandomPlansReplayBitIdentically) {
  for (std::uint64_t iter = 1; iter <= 4; ++iter) {
    const auto config = chaos_config(iter);
    for (std::uint32_t m = 0; m < config.machines; ++m) {
      const auto a = core::run_testbed_machine_detailed(config, m);
      const auto b = core::run_testbed_machine_detailed(config, m);
      EXPECT_TRUE(same_records(a.records, b.records))
          << "iter " << iter << " machine " << m;
      const auto ia = a.timeline.intervals();
      const auto ib = b.timeline.intervals();
      ASSERT_EQ(ia.size(), ib.size()) << "iter " << iter;
      for (std::size_t i = 0; i < ia.size(); ++i) {
        EXPECT_EQ(ia[i].state, ib[i].state);
        EXPECT_EQ(ia[i].start, ib[i].start);
        EXPECT_EQ(ia[i].end, ib[i].end);
      }
      EXPECT_EQ(a.timeline.sensor_gap_time(), b.timeline.sensor_gap_time());
    }
  }
}

TEST(FaultChaosTest, TimelineInvariantsHoldUnderRandomPlans) {
  for (std::uint64_t iter = 1; iter <= 6; ++iter) {
    const auto config = chaos_config(iter);
    for (std::uint32_t m = 0; m < config.machines; ++m) {
      const auto detail = core::run_testbed_machine_detailed(config, m);
      expect_timeline_invariants(detail.timeline);
      // The trace records are the timeline's failure intervals: sorted
      // and non-overlapping too.
      for (std::size_t i = 1; i < detail.records.size(); ++i) {
        EXPECT_GE(detail.records[i].start, detail.records[i - 1].end);
      }
    }
  }
}

TEST(FaultChaosTest, ParallelTestbedMatchesSequentialMachines) {
  const auto config = chaos_config(3);
  const auto trace = core::run_testbed(config);
  std::vector<trace::UnavailabilityRecord> sequential;
  for (std::uint32_t m = 0; m < config.machines; ++m) {
    const auto records = core::run_testbed_machine(config, m);
    sequential.insert(sequential.end(), records.begin(), records.end());
  }
  const auto parallel = trace.records();
  ASSERT_EQ(parallel.size(), sequential.size());
  EXPECT_TRUE(same_records(
      std::vector<trace::UnavailabilityRecord>(parallel.begin(),
                                               parallel.end()),
      sequential));
}

// ---------------------------------------------------------------------------
// Fast-forward on/off equivalence with faults: a machine + sampler +
// detector + guest controller driven off one sim::Simulation, with a
// fault session injecting a dropout, a crash, and a guest kill. The
// scheduler fast-forward is a pure optimization — every observable
// (states, episodes, guest actions, CPU accounting) must be identical.

struct ChaosOutcome {
  std::vector<monitor::AvailabilityState> states;
  std::vector<monitor::GuestActionRecord> actions;
  std::vector<monitor::UnavailabilityEpisode> episodes;
  std::int64_t guest_cpu_us = 0;
  bool guest_killed = false;

  bool operator==(const ChaosOutcome& other) const {
    if (states != other.states || guest_cpu_us != other.guest_cpu_us ||
        guest_killed != other.guest_killed ||
        actions.size() != other.actions.size() ||
        episodes.size() != other.episodes.size()) {
      return false;
    }
    for (std::size_t i = 0; i < actions.size(); ++i) {
      if (actions[i].time != other.actions[i].time ||
          actions[i].action != other.actions[i].action ||
          actions[i].state != other.actions[i].state) {
        return false;
      }
    }
    for (std::size_t i = 0; i < episodes.size(); ++i) {
      if (episodes[i].start != other.episodes[i].start ||
          episodes[i].end != other.episodes[i].end ||
          episodes[i].cause != other.episodes[i].cause) {
        return false;
      }
    }
    return true;
  }
};

ChaosOutcome run_chaos_machine(bool fast_forward, std::uint64_t seed) {
  os::SchedulerParams sched = os::SchedulerParams::linux_2_4();
  sched.fast_forward = fast_forward;
  os::Machine machine(sched, os::MemoryParams::linux_1gb(), seed);
  util::RngStream rng(seed, {77});
  for (const auto& spec : workload::make_host_group(0.25, 2, rng)) {
    machine.spawn(spec);
  }
  const os::ProcessId guest = machine.spawn(workload::synthetic_guest(0));

  monitor::MachineSampler sampler(machine);
  const monitor::ThresholdPolicy policy =
      monitor::ThresholdPolicy::linux_testbed();
  monitor::UnavailabilityDetector detector(policy);
  monitor::CheckpointPolicy ckpt;
  ckpt.interval = SimDuration::minutes(10);
  ckpt.cost = SimDuration::seconds(5);
  monitor::GuestController controller(machine, guest, 0, ckpt);

  fault::FaultPlan plan;
  fault::FaultSpec dropout;
  dropout.kind = fault::FaultKind::kSensorDropout;
  dropout.at_hours = {0.1};
  dropout.duration_minutes = 3.0;
  plan.specs.push_back(dropout);
  fault::FaultSpec kill;
  kill.kind = fault::FaultKind::kGuestKill;
  kill.at_hours = {0.3};
  plan.specs.push_back(kill);
  fault::FaultSpec crash;
  crash.kind = fault::FaultKind::kCrash;
  crash.at_hours = {1.0};
  crash.duration_minutes = 5.0;
  plan.specs.push_back(crash);

  const SimTime begin = SimTime::epoch();
  const SimTime end = begin + SimDuration::hours(2);
  const fault::FaultInjector injector(plan, seed, 1, begin, end);
  fault::MachineFaultSession session(injector, 0);

  sim::Simulation simulation;
  session.schedule(simulation);

  ChaosOutcome out;
  struct Loop {
    os::Machine& machine;
    monitor::MachineSampler& sampler;
    monitor::UnavailabilityDetector& detector;
    monitor::GuestController& controller;
    fault::MachineFaultSession& session;
    sim::Simulation& simulation;
    ChaosOutcome& out;
    os::ProcessId guest;
    SimTime last_sample;
    bool dropped = false;
  } loop{machine,    sampler, detector, controller, session,
         simulation, out,     guest,    begin};

  for (const SimTime k : session.guest_kill_times()) {
    simulation.at(k, [&loop] {
      loop.machine.run_until(loop.simulation.now());
      if (loop.machine.process(loop.guest).state() !=
          os::ProcState::kExited) {
        loop.machine.terminate(loop.guest);
      }
    });
  }

  simulation.every(policy.sample_period, [&loop] {
    const SimTime now = loop.simulation.now();
    loop.machine.run_until(now);
    if (loop.session.dropout_active()) {
      loop.dropped = true;
      return;
    }
    monitor::HostSample sample = loop.sampler.sample();
    if (loop.dropped) {
      loop.detector.record_gap(loop.last_sample, now);
      loop.dropped = false;
    }
    if (loop.session.crash_active()) sample.service_alive = false;
    loop.last_sample = sample.time;
    loop.out.states.push_back(loop.detector.observe(sample));
    loop.controller.apply(loop.detector);
  });

  simulation.run_until(end);
  machine.run_until(end);
  detector.finish(end);

  out.actions = controller.actions();
  out.episodes.assign(detector.episodes().begin(), detector.episodes().end());
  out.guest_cpu_us = machine.process(guest).cpu_time().as_micros();
  out.guest_killed = machine.process(guest).killed();
  return out;
}

TEST(FaultChaosTest, FastForwardOnOffAreEquivalentUnderFaults) {
  for (const std::uint64_t seed : {21u, 22u}) {
    const ChaosOutcome ff = run_chaos_machine(true, seed);
    const ChaosOutcome plain = run_chaos_machine(false, seed);
    EXPECT_FALSE(ff.states.empty());
    EXPECT_TRUE(ff == plain) << "seed " << seed;
    // The harness must actually exercise the fault paths: the injected
    // kill happened and was observed by the controller.
    EXPECT_TRUE(ff.guest_killed) << "seed " << seed;
    const bool observed = std::any_of(
        ff.actions.begin(), ff.actions.end(), [](const auto& a) {
          return a.action == monitor::GuestAction::kObservedKilled;
        });
    EXPECT_TRUE(observed) << "seed " << seed;
  }
}

TEST(FaultChaosTest, ChaosHarnessReplaysBitIdentically) {
  const ChaosOutcome a = run_chaos_machine(true, 33);
  const ChaosOutcome b = run_chaos_machine(true, 33);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace fgcs

// Edge-case tests for the simulated machine: phase program corner cases,
// renice timing, idle fast-forward, memory accounting corners.
#include <gtest/gtest.h>

#include "fgcs/os/machine.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/workload/synthetic.hpp"

namespace fgcs::os {
namespace {

using namespace sim::time_literals;

Machine make_machine(std::uint64_t seed = 1) {
  return Machine(SchedulerParams::linux_2_4(), MemoryParams::linux_1gb(),
                 seed);
}

TEST(MachineEdge, ImmediateExitProgram) {
  Machine m = make_machine();
  ProcessSpec spec;
  spec.name = "noop";
  spec.program = fixed_program({});
  const ProcessId pid = m.spawn(spec);
  EXPECT_EQ(m.process(pid).state(), ProcState::kExited);
  EXPECT_EQ(m.live_count(), 0u);
  m.run_for(1_s);  // must not crash
}

TEST(MachineEdge, ZeroLengthPhasesAreSkipped) {
  Machine m = make_machine();
  ProcessSpec spec;
  spec.name = "zeros";
  spec.program = fixed_program({
      Phase::compute(sim::SimDuration::zero()),
      Phase::sleep(sim::SimDuration::zero()),
      Phase::compute(100_ms),
  });
  const ProcessId pid = m.spawn(spec);
  EXPECT_EQ(m.process(pid).state(), ProcState::kRunnable);
  m.run_for(1_s);
  EXPECT_EQ(m.process(pid).state(), ProcState::kExited);
  EXPECT_NEAR(m.process(pid).cpu_time().as_seconds(), 0.1, 0.02);
}

TEST(MachineEdge, SleepOnlyProcessNeverUsesCpu) {
  Machine m = make_machine();
  ProcessSpec spec;
  spec.name = "dormant";
  spec.program = fixed_program({Phase::sleep(10_s), Phase::sleep(10_s)});
  const ProcessId pid = m.spawn(spec);
  m.run_for(30_s);
  EXPECT_EQ(m.process(pid).cpu_time(), sim::SimDuration::zero());
  EXPECT_EQ(m.process(pid).state(), ProcState::kExited);
}

TEST(MachineEdge, IdleFastForwardPreservesWakeTimes) {
  Machine m = make_machine();
  ProcessSpec spec;
  spec.name = "long-sleeper";
  spec.program = fixed_program({Phase::sleep(1_h), Phase::compute(1_s)});
  const ProcessId pid = m.spawn(spec);
  m.run_for(2_h);  // crosses the 1h wake via the idle fast path
  EXPECT_EQ(m.process(pid).state(), ProcState::kExited);
  EXPECT_NEAR(m.process(pid).cpu_time().as_seconds(), 1.0, 0.05);
  EXPECT_NEAR(m.process(pid).exit_time().as_seconds(), 3601.0, 1.0);
}

TEST(MachineEdge, ClockAdvancesWithNoProcesses) {
  Machine m = make_machine();
  m.run_for(1_h);
  EXPECT_EQ(m.now().as_seconds(), 3600.0);
  EXPECT_EQ(m.totals().idle.as_seconds(), 3600.0);
}

TEST(MachineEdge, ReniceSuspendedProcess) {
  Machine m = make_machine();
  const ProcessId pid = m.spawn(workload::synthetic_guest(0));
  m.suspend(pid);
  m.renice(pid, 19);
  EXPECT_EQ(m.process(pid).nice(), 19);
  m.resume(pid);
  m.run_for(1_s);
  EXPECT_GT(m.process(pid).cpu_time(), sim::SimDuration::zero());
}

TEST(MachineEdge, TerminateSuspendedProcess) {
  Machine m = make_machine();
  const ProcessId pid = m.spawn(workload::synthetic_guest(0));
  m.suspend(pid);
  m.terminate(pid);
  EXPECT_EQ(m.process(pid).state(), ProcState::kExited);
  EXPECT_THROW(m.resume(pid), ConfigError);
}

TEST(MachineEdge, ManyProcessesStillScheduled) {
  Machine m = make_machine();
  std::vector<ProcessId> pids;
  for (int i = 0; i < 30; ++i) {
    pids.push_back(m.spawn(workload::synthetic_guest(0)));
  }
  m.run_for(60_s);
  for (const ProcessId pid : pids) {
    // Everyone got roughly an equal slice.
    EXPECT_NEAR(m.process(pid).cpu_time().as_seconds(), 2.0, 0.8);
  }
}

TEST(MachineEdge, MixedKindsAccounting) {
  Machine m = make_machine();
  auto host = workload::synthetic_host(0.3);
  auto sys = workload::synthetic_host(0.1);
  sys.kind = ProcessKind::kSystem;
  sys.name = "updatedb";
  m.spawn(host);
  m.spawn(sys);
  m.spawn(workload::synthetic_guest(19));
  m.run_for(120_s);
  const CpuTotals t = m.totals();
  EXPECT_GT(t.host, sim::SimDuration::zero());
  EXPECT_GT(t.system, sim::SimDuration::zero());
  EXPECT_GT(t.guest, sim::SimDuration::zero());
  // Monitor-style host usage includes system processes.
  EXPECT_NEAR(CpuTotals::host_usage(CpuTotals{}, t), 0.4, 0.05);
}

TEST(MachineEdge, SuspendAllProcessesIdlesMachine) {
  Machine m = make_machine();
  const ProcessId a = m.spawn(workload::synthetic_guest(0));
  const ProcessId b = m.spawn(workload::synthetic_guest(0));
  m.run_for(10_s);
  m.suspend(a);
  m.suspend(b);
  const auto idle_before = m.totals().idle;
  m.run_for(10_s);
  EXPECT_EQ((m.totals().idle - idle_before).as_seconds(), 10.0);
}

TEST(MachineEdge, ExitTimeOfNaturalCompletion) {
  Machine m = make_machine();
  ProcessSpec spec;
  spec.name = "timed";
  spec.program = fixed_program({Phase::compute(500_ms)});
  const ProcessId pid = m.spawn(spec);
  m.run_for(10_s);
  EXPECT_NEAR(m.process(pid).exit_time().as_seconds(), 0.5, 0.02);
}

TEST(MachineEdge, UsageSinceHandlesZeroWindow) {
  Machine m = make_machine();
  const ProcessId pid = m.spawn(workload::synthetic_guest(0));
  EXPECT_DOUBLE_EQ(
      m.process(pid).usage_since(sim::SimDuration::zero(),
                                 sim::SimDuration::zero()),
      0.0);
}

TEST(MachineEdge, ThrashTimeZeroWithoutOvercommit) {
  Machine m = make_machine();
  m.spawn(workload::synthetic_guest(0));
  m.run_for(60_s);
  EXPECT_EQ(m.thrash_time(), sim::SimDuration::zero());
}

}  // namespace
}  // namespace fgcs::os

// Counter/gauge/histogram semantics, labeled families, concurrent
// increments, and the CSV/JSON snapshot exports.
#include <gtest/gtest.h>

#include <sstream>

#include "fgcs/obs/metrics.hpp"
#include "fgcs/util/csv.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/parallel.hpp"
#include "json_mini.hpp"

namespace fgcs::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddMax) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set_max(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.set_max(3.0);  // lower: no change
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

TEST(HistogramMetric, BucketsAndQuantiles) {
  Histogram h({1.0, 2.0, 4.0});
  for (const double v : {0.5, 0.9, 1.5, 3.0, 100.0}) h.observe(v);

  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.9);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // three bounds + overflow
  EXPECT_EQ(counts[0], 2u);      // <= 1
  EXPECT_EQ(counts[1], 1u);      // <= 2
  EXPECT_EQ(counts[2], 1u);      // <= 4
  EXPECT_EQ(counts[3], 1u);      // overflow

  // The median observation lands in the second bucket (1, 2].
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  // Quantiles in the overflow bucket clamp to the top bound.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(Histogram({1.0}).quantile(0.5), 0.0);  // empty
}

TEST(HistogramMetric, ValueOnBoundGoesToLowerBucket) {
  Histogram h({1.0, 2.0});
  h.observe(1.0);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
}

TEST(HistogramMetric, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), fgcs::ConfigError);
  EXPECT_THROW(Histogram({2.0, 1.0}), fgcs::ConfigError);
  EXPECT_THROW(Histogram({1.0, 1.0}), fgcs::ConfigError);
}

TEST(MetricRegistry, SameSeriesSameObject) {
  MetricRegistry registry;
  Counter& a = registry.counter("x.count", {{"k", "v"}});
  Counter& b = registry.counter("x.count", {{"k", "v"}});
  EXPECT_EQ(&a, &b);

  // Label order does not matter; the key is canonicalized.
  Counter& c =
      registry.counter("y", {{"b", "2"}, {"a", "1"}});
  Counter& d =
      registry.counter("y", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&c, &d);

  // Different labels are different family members.
  EXPECT_NE(&a, &registry.counter("x.count", {{"k", "other"}}));
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricRegistry, KindMismatchThrows) {
  MetricRegistry registry;
  registry.counter("metric");
  EXPECT_THROW(registry.gauge("metric"), fgcs::ConfigError);
  EXPECT_THROW(registry.histogram("metric"), fgcs::ConfigError);
}

TEST(MetricRegistry, ConcurrentIncrementsAreLossless) {
  MetricRegistry registry;
  Counter& counter = registry.counter("parallel.count");
  Histogram& histogram = registry.histogram("parallel.hist", {}, {0.5, 1.5});
  constexpr std::size_t kThreads = 16;
  constexpr std::uint64_t kPerThread = 10000;

  util::parallel_for(kThreads, [&](std::size_t i) {
    for (std::uint64_t n = 0; n < kPerThread; ++n) {
      counter.inc();
      histogram.observe(i % 2 == 0 ? 1.0 : 2.0);
    }
  });

  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  const auto counts = histogram.bucket_counts();
  EXPECT_EQ(counts[1], kThreads / 2 * kPerThread);  // the 1.0 observations
  EXPECT_EQ(counts[2], kThreads / 2 * kPerThread);  // the 2.0 overflow
}

TEST(MetricRegistry, CsvSnapshotRoundTrips) {
  MetricRegistry registry;
  registry.counter("sim.events_executed").inc(123);
  registry.gauge("sim.max_queue_depth").set(7.0);
  registry.counter("detector.transitions", {{"from", "S1"}, {"to", "S3"}})
      .inc(4);
  registry.histogram("scope.seconds", {{"scope", "testbed/run"}})
      .observe(0.25);

  std::stringstream out;
  registry.write_csv(out);
  util::CsvReader reader(out);

  ASSERT_EQ(reader.header()[0], "metric");
  ASSERT_EQ(reader.rows().size(), 4u);

  bool saw_transition = false;
  for (const auto& row : reader.rows()) {
    if (row[reader.column("metric")] == "detector.transitions") {
      saw_transition = true;
      EXPECT_EQ(row[reader.column("labels")], "from=S1,to=S3");
      EXPECT_EQ(row[reader.column("type")], "counter");
      EXPECT_EQ(row[reader.column("value")], "4");
    }
  }
  EXPECT_TRUE(saw_transition);
}

TEST(MetricRegistry, JsonSnapshotParsesBack) {
  MetricRegistry registry;
  registry.counter("a.count").inc(5);
  registry.gauge("b.gauge").set(2.25);
  auto& h = registry.histogram("c.hist", {{"k", "v"}}, {1.0, 10.0});
  h.observe(0.5);
  h.observe(50.0);

  std::stringstream out;
  registry.write_json(out);
  const auto doc = testing::JsonParser::parse(out.str());

  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.array.size(), 3u);
  bool saw_hist = false;
  for (const auto& metric : doc.array) {
    if (metric.at("name").string != "c.hist") continue;
    saw_hist = true;
    EXPECT_EQ(metric.at("type").string, "histogram");
    EXPECT_EQ(metric.at("labels").at("k").string, "v");
    EXPECT_DOUBLE_EQ(metric.at("count").number, 2.0);
    EXPECT_DOUBLE_EQ(metric.at("sum").number, 50.5);
    ASSERT_EQ(metric.at("buckets").array.size(), 3u);
    EXPECT_DOUBLE_EQ(metric.at("buckets").array[0].number, 1.0);
    EXPECT_DOUBLE_EQ(metric.at("buckets").array[2].number, 1.0);
  }
  EXPECT_TRUE(saw_hist);
}

TEST(MetricSample, SeriesRendering) {
  MetricSample s;
  s.name = "detector.transitions";
  EXPECT_EQ(s.series(), "detector.transitions");
  s.labels = {{"from", "S1"}, {"to", "S3"}};
  EXPECT_EQ(s.series(), "detector.transitions{from=S1,to=S3}");
}

TEST(HistogramMetric, DefaultTimeBoundsAreAscending) {
  const auto bounds = Histogram::default_time_bounds();
  ASSERT_GT(bounds.size(), 10u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_DOUBLE_EQ(bounds.back(), 100.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

}  // namespace
}  // namespace fgcs::obs

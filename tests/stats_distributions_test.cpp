// Tests for the distribution samplers and fitters: moment checks across a
// parameter sweep, deterministic reproducibility.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fgcs/stats/distributions.hpp"

namespace fgcs::stats {
namespace {

class PoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonTest, MeanAndVarianceMatchLambda) {
  const double lambda = GetParam();
  util::RngStream rng(42);
  const int n = 40000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = sample_poisson(rng, lambda);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  const double tol = 4.0 * std::sqrt(lambda / n) + 0.01;
  EXPECT_NEAR(mean, lambda, tol);
  EXPECT_NEAR(var, lambda, 8.0 * lambda / std::sqrt(n) + 0.05);
}

INSTANTIATE_TEST_SUITE_P(LambdaSweep, PoissonTest,
                         ::testing::Values(0.05, 0.5, 2.0, 10.0, 55.0, 120.0));

TEST(Poisson, ZeroLambdaIsZero) {
  util::RngStream rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sample_poisson(rng, 0.0), 0u);
}

class LognormalTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LognormalTest, MeanParameterization) {
  const auto [target_mean, sigma] = GetParam();
  util::RngStream rng(7);
  const int n = 60000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = sample_lognormal_mean(rng, target_mean, sigma);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, target_mean, target_mean * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    MeanSigmaSweep, LognormalTest,
    ::testing::Values(std::make_tuple(1.0, 0.3), std::make_tuple(45.0, 0.5),
                      std::make_tuple(200.0, 0.35),
                      std::make_tuple(10.0, 1.0)));

TEST(Lognormal, MedianIsExpMu) {
  util::RngStream rng(9);
  const double mu = 1.5, sigma = 0.8;
  std::vector<double> xs(20001);
  for (auto& x : xs) x = sample_lognormal(rng, mu, sigma);
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(mu), std::exp(mu) * 0.06);
}

TEST(Weibull, ShapeOneIsExponential) {
  util::RngStream rng(11);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += sample_weibull(rng, 1.0, 3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Weibull, LargeShapeConcentratesAtScale) {
  util::RngStream rng(12);
  for (int i = 0; i < 1000; ++i) {
    const double x = sample_weibull(rng, 20.0, 5.0);
    EXPECT_GT(x, 3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(Pareto, RespectsMinimum) {
  util::RngStream rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(sample_pareto(rng, 2.0, 1.5), 2.0);
  }
}

TEST(Pareto, MeanForAlphaAboveOne) {
  util::RngStream rng(14);
  const double x_min = 1.0, alpha = 3.0;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += sample_pareto(rng, x_min, alpha);
  EXPECT_NEAR(sum / n, alpha * x_min / (alpha - 1.0), 0.03);
}

TEST(TruncatedNormal, StaysInBounds) {
  util::RngStream rng(15);
  for (int i = 0; i < 2000; ++i) {
    const double x = sample_truncated_normal(rng, 0.0, 1.0, -0.5, 0.5);
    EXPECT_GE(x, -0.5);
    EXPECT_LE(x, 0.5);
  }
}

TEST(TruncatedNormal, ZeroStddevClamps) {
  util::RngStream rng(16);
  EXPECT_DOUBLE_EQ(sample_truncated_normal(rng, 10.0, 0.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(sample_truncated_normal(rng, -10.0, 0.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(sample_truncated_normal(rng, 0.5, 0.0, 0.0, 1.0), 0.5);
}

TEST(TruncatedNormal, FarTailFallsBackToUniform) {
  util::RngStream rng(17);
  const double x = sample_truncated_normal(rng, 0.0, 0.001, 50.0, 51.0);
  EXPECT_GE(x, 50.0);
  EXPECT_LE(x, 51.0);
}

TEST(FitExponential, RecoversMean) {
  util::RngStream rng(18);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.exponential(4.0);
  const auto fit = fit_exponential(xs);
  EXPECT_NEAR(fit.mean, 4.0, 0.1);
  EXPECT_LT(fit.log_likelihood, 0.0);
}

TEST(FitExponential, EmptyInput) {
  const auto fit = fit_exponential(std::vector<double>{});
  EXPECT_DOUBLE_EQ(fit.mean, 0.0);
}

TEST(FitLognormal, RecoversParameters) {
  util::RngStream rng(19);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = sample_lognormal(rng, 2.0, 0.7);
  const auto fit = fit_lognormal(xs);
  EXPECT_NEAR(fit.mu, 2.0, 0.02);
  EXPECT_NEAR(fit.sigma, 0.7, 0.02);
  EXPECT_NEAR(fit.mean(), std::exp(2.0 + 0.7 * 0.7 / 2.0),
              fit.mean() * 0.03);
}

TEST(FitLognormal, HigherLikelihoodForTrueModel) {
  // Lognormal data: lognormal fit should beat exponential fit in
  // log-likelihood (model selection sanity).
  util::RngStream rng(20);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = sample_lognormal(rng, 1.0, 0.25);
  EXPECT_GT(fit_lognormal(xs).log_likelihood,
            fit_exponential(xs).log_likelihood);
}

TEST(Samplers, DeterministicGivenStream) {
  util::RngStream a(21), b(21);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(sample_poisson(a, 3.0), sample_poisson(b, 3.0));
    ASSERT_DOUBLE_EQ(sample_lognormal(a, 0.0, 1.0),
                     sample_lognormal(b, 0.0, 1.0));
  }
}

}  // namespace
}  // namespace fgcs::stats

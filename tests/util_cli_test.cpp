// Tests for the CLI argument parser.
#include <gtest/gtest.h>

#include "fgcs/util/cli.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::util {
namespace {

TEST(CliArgs, CommandAndPositional) {
  const auto args = CliArgs::parse({"analyze", "trace.trc", "extra"});
  EXPECT_EQ(args.command(), "analyze");
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "trace.trc");
}

TEST(CliArgs, Empty) {
  const auto args = CliArgs::parse({});
  EXPECT_TRUE(args.command().empty());
  EXPECT_TRUE(args.positional().empty());
}

TEST(CliArgs, OptionsWithValues) {
  const auto args =
      CliArgs::parse({"simulate", "--machines", "8", "--out", "x.trc"});
  EXPECT_EQ(args.get("machines", ""), "8");
  EXPECT_EQ(args.get_int("machines", 0), 8);
  EXPECT_EQ(args.get("out", ""), "x.trc");
  EXPECT_TRUE(args.has_option("out"));
  EXPECT_FALSE(args.has_option("seed"));
  EXPECT_EQ(args.get_int("seed", 42), 42);
}

TEST(CliArgs, BooleanFlags) {
  const auto args = CliArgs::parse({"figures", "--quick", "--out", "d"});
  EXPECT_TRUE(args.has_flag("quick"));
  EXPECT_TRUE(args.has_flag("out"));  // option presence counts as flag
  EXPECT_FALSE(args.has_flag("verbose"));
}

TEST(CliArgs, FlagFollowedByOption) {
  // "--quick --out d": quick must not swallow "--out".
  const auto args = CliArgs::parse({"cmd", "--quick", "--out", "d"});
  EXPECT_TRUE(args.has_flag("quick"));
  EXPECT_EQ(args.get("out", ""), "d");
}

TEST(CliArgs, TrailingFlag) {
  const auto args = CliArgs::parse({"cmd", "--verbose"});
  EXPECT_TRUE(args.has_flag("verbose"));
}

TEST(CliArgs, NegativeIntegerValue) {
  const auto args = CliArgs::parse({"cmd", "--offset", "-5"});
  EXPECT_EQ(args.get_int("offset", 0), -5);
}

TEST(CliArgs, MalformedIntegerThrows) {
  const auto args = CliArgs::parse({"cmd", "--n", "12abc"});
  EXPECT_THROW(args.get_int("n", 0), ConfigError);
  const auto args2 = CliArgs::parse({"cmd", "--n", "abc"});
  EXPECT_THROW(args2.get_int("n", 0), ConfigError);
}

TEST(CliArgs, EmptyOptionNameThrows) {
  EXPECT_THROW(CliArgs::parse({"cmd", "--", "x"}), ConfigError);
}

TEST(CliArgs, ArgcArgvEntry) {
  const char* argv[] = {"prog", "analyze", "--start-dow", "3", "t.csv"};
  const auto args = CliArgs::parse(5, argv);
  EXPECT_EQ(args.command(), "analyze");
  EXPECT_EQ(args.get_int("start-dow", 0), 3);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "t.csv");
}

TEST(CliArgs, NoCommandWhenFirstTokenIsOption) {
  const auto args = CliArgs::parse({"--help"});
  EXPECT_TRUE(args.command().empty());
  EXPECT_TRUE(args.has_flag("help"));
}

}  // namespace
}  // namespace fgcs::util

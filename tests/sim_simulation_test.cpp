// Tests for the simulation driver: clock semantics, periodic tasks.
#include <gtest/gtest.h>

#include <vector>

#include "fgcs/sim/simulation.hpp"

namespace fgcs::sim {
namespace {

using namespace time_literals;

TEST(Simulation, StartsAtEpoch) {
  Simulation s;
  EXPECT_EQ(s.now(), SimTime::epoch());
}

TEST(Simulation, AfterSchedulesRelative) {
  Simulation s;
  SimTime fired;
  s.after(5_s, [&] { fired = s.now(); });
  s.run_all();
  EXPECT_EQ(fired, SimTime::epoch() + 5_s);
}

TEST(Simulation, ClockIsEventTimeDuringCallback) {
  Simulation s;
  s.after(2_s, [&] { EXPECT_EQ(s.now().as_seconds(), 2.0); });
  s.after(7_s, [&] { EXPECT_EQ(s.now().as_seconds(), 7.0); });
  s.run_all();
}

TEST(Simulation, RunUntilStopsClockAtBound) {
  Simulation s;
  s.after(10_s, [] {});
  s.run_until(SimTime::epoch() + 4_s);
  EXPECT_EQ(s.now(), SimTime::epoch() + 4_s);
  EXPECT_EQ(s.events_executed(), 0u);
  s.run_until(SimTime::epoch() + 20_s);
  EXPECT_EQ(s.events_executed(), 1u);
  // No more events: clock still advances to the requested bound.
  EXPECT_EQ(s.now(), SimTime::epoch() + 20_s);
}

TEST(Simulation, EventExactlyAtBoundRuns) {
  Simulation s;
  bool fired = false;
  s.after(5_s, [&] { fired = true; });
  s.run_until(SimTime::epoch() + 5_s);
  EXPECT_TRUE(fired);
}

TEST(Simulation, RelativeSchedulingInsideCallback) {
  Simulation s;
  std::vector<double> times;
  s.after(1_s, [&] {
    times.push_back(s.now().as_seconds());
    s.after(1_s, [&] { times.push_back(s.now().as_seconds()); });
  });
  s.run_all();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(Simulation, EveryFiresPeriodically) {
  Simulation s;
  std::vector<double> times;
  auto handle = s.every(2_s, [&] { times.push_back(s.now().as_seconds()); });
  s.run_until(SimTime::epoch() + 7_s);
  EXPECT_EQ(times, (std::vector<double>{2.0, 4.0, 6.0}));
  handle.cancel();
  s.run_until(SimTime::epoch() + 20_s);
  EXPECT_EQ(times.size(), 3u);
}

TEST(Simulation, EveryCancelFromInsideTask) {
  Simulation s;
  int count = 0;
  EventHandle handle;
  handle = s.every(1_s, [&] {
    if (++count == 3) handle.cancel();
  });
  s.run_until(SimTime::epoch() + 10_s);
  EXPECT_EQ(count, 3);
}

TEST(Simulation, StopHaltsRun) {
  Simulation s;
  int count = 0;
  s.every(1_s, [&] {
    if (++count == 2) s.stop();
  });
  s.run_all();
  EXPECT_EQ(count, 2);
}

TEST(Simulation, CancelScheduledEvent) {
  Simulation s;
  bool fired = false;
  EventHandle h = s.after(1_s, [&] { fired = true; });
  h.cancel();
  s.run_all();
  EXPECT_FALSE(fired);
}

// Regression: a periodic task cancelled from *inside* its own callback
// must never fire again — not on the current run, not on a later run, and
// it must not leave a live event that keeps run_all() spinning.
TEST(Simulation, EveryCancelledInsideCallbackNeverRefires) {
  Simulation s;
  int count = 0;
  EventHandle handle;
  handle = s.every(1_s, [&] {
    ++count;
    handle.cancel();
  });
  s.run_all();  // would never terminate if the series kept rescheduling
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(handle.cancelled());

  // Later activity must not resurrect the series.
  s.after(10_s, [] {});
  s.run_all();
  s.run_until(s.now() + 60_s);
  EXPECT_EQ(count, 1);
}

// Regression: stop() from inside a periodic task halts run_all() after the
// current event, and a subsequent run resumes the series where it left off.
TEST(Simulation, StopDuringPeriodicTaskHaltsRunAll) {
  Simulation s;
  std::vector<double> times;
  s.every(2_s, [&] {
    times.push_back(s.now().as_seconds());
    s.stop();
  });
  s.run_all();
  EXPECT_EQ(times, (std::vector<double>{2.0}));
  EXPECT_EQ(s.now().as_seconds(), 2.0);

  // run_all() clears the stop request; the series is still scheduled.
  s.run_all();
  EXPECT_EQ(times, (std::vector<double>{2.0, 4.0}));
}

TEST(Simulation, EventsExecutedCounts) {
  Simulation s;
  for (int i = 1; i <= 5; ++i) {
    s.after(SimDuration::seconds(i), [] {});
  }
  s.run_all();
  EXPECT_EQ(s.events_executed(), 5u);
}

}  // namespace
}  // namespace fgcs::sim

// Minimal recursive-descent JSON parser — test-only helper used to verify
// that exported trace/metric JSON documents are well-formed and to read
// values back. Supports the full JSON grammar except \uXXXX surrogate
// pairs (escapes are decoded to '?' placeholders beyond the ASCII set,
// which is enough for structural round-trip checks).
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace fgcs::testing {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  static JsonValue parse(const std::string& text) {
    JsonParser p(text);
    JsonValue v = p.parse_value();
    p.skip_ws();
    if (p.pos_ != text.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  const std::string& text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error(std::string(what) + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string();
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        return parse_null();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      expect(':');
      v.object[key.string] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_string() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          v.string += esc;
          break;
        case 'n':
          v.string += '\n';
          break;
        case 'r':
          v.string += '\r';
          break;
        case 't':
          v.string += '\t';
          break;
        case 'b':
          v.string += '\b';
          break;
        case 'f':
          v.string += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + static_cast<std::size_t>(i)]))) {
              fail("bad \\u escape");
            }
          }
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          v.string += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }
};

}  // namespace fgcs::testing

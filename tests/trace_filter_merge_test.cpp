// Tests for TraceSet::filter and TraceSet::merge.
#include <gtest/gtest.h>

#include "fgcs/trace/trace_set.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::trace {
namespace {

using monitor::AvailabilityState;
using sim::SimDuration;
using sim::SimTime;

SimTime at(std::int64_t minutes) {
  return SimTime::epoch() + SimDuration::minutes(minutes);
}

UnavailabilityRecord rec(MachineId m, std::int64_t s, std::int64_t e) {
  UnavailabilityRecord r;
  r.machine = m;
  r.start = at(s);
  r.end = at(e);
  r.cause = AvailabilityState::kS3CpuUnavailable;
  return r;
}

TraceSet sample() {
  TraceSet t(3, SimTime::epoch(), at(1000));
  t.add(rec(0, 10, 20));
  t.add(rec(0, 100, 200));
  t.add(rec(1, 50, 60));
  t.add(rec(2, 500, 700));
  return t;
}

TEST(TraceFilter, TimeWindowClipsRecords) {
  const auto f = sample().filter(at(150), at(600));
  EXPECT_EQ(f.horizon_start(), at(150));
  EXPECT_EQ(f.horizon_end(), at(600));
  ASSERT_EQ(f.size(), 2u);
  // The machine-0 episode [100,200) is clipped to [150,200).
  EXPECT_EQ(f.records()[0].start, at(150));
  EXPECT_EQ(f.records()[0].end, at(200));
  // The machine-2 episode [500,700) is clipped to [500,600).
  EXPECT_EQ(f.records()[1].end, at(600));
}

TEST(TraceFilter, MachineSubset) {
  const std::vector<MachineId> keep{0};
  const auto f = sample().filter(SimTime::epoch(), at(1000), keep);
  EXPECT_EQ(f.size(), 2u);
  for (const auto& r : f.records()) EXPECT_EQ(r.machine, 0u);
  // Machine count preserved (ids are not renumbered).
  EXPECT_EQ(f.machine_count(), 3u);
}

TEST(TraceFilter, EmptyWindowThrows) {
  EXPECT_THROW(sample().filter(at(10), at(10)), ConfigError);
}

TEST(TraceFilter, NonOverlappingRecordsDropped) {
  const auto f = sample().filter(at(210), at(490));
  EXPECT_TRUE(f.empty());
}

TEST(TraceMerge, CombinesAndRemapsIds) {
  const auto a = sample();
  TraceSet b(2, SimTime::epoch(), at(1000));
  b.add(rec(0, 5, 6));
  b.add(rec(1, 7, 8));
  const auto merged = a.merge(b);
  EXPECT_EQ(merged.machine_count(), 5u);
  EXPECT_EQ(merged.size(), 6u);
  // b's machine 1 became machine 4.
  EXPECT_EQ(merged.machine_records(4).size(), 1u);
  EXPECT_EQ(merged.machine_records(4)[0].start, at(7));
  // a's records untouched.
  EXPECT_EQ(merged.machine_records(0).size(), 2u);
}

TEST(TraceMerge, RequiresMatchingHorizons) {
  const auto a = sample();
  TraceSet b(1, SimTime::epoch(), at(999));
  EXPECT_THROW(a.merge(b), ConfigError);
}

TEST(TraceFilter, AnalysisOnFilteredTraceWorks) {
  const auto f = sample().filter(at(0), at(1000));
  EXPECT_EQ(f.availability_intervals().size(),
            sample().availability_intervals().size());
}

}  // namespace
}  // namespace fgcs::trace

// Ingest/query concurrency: one ingester thread streams episodes while
// reader threads pin snapshots and query. Run under --tsan by
// check_build.sh (the Serve suite prefix is in the tsan regex); the
// assertions here catch semantic races — torn probabilities, version
// regressions, answers drifting from their pinned snapshot — while TSan
// catches the memory kind.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "fgcs/serve/feed.hpp"
#include "fgcs/serve/query.hpp"

namespace fgcs::serve {
namespace {

using sim::SimDuration;
using sim::SimTime;

constexpr std::uint32_t kMachines = 64;
constexpr int kEpisodesPerMachine = 40;
constexpr int kReaders = 3;

trace::UnavailabilityRecord episode(std::uint32_t machine, int k) {
  trace::UnavailabilityRecord r;
  r.machine = machine;
  // Per-machine phase shift so ingest interleaves machines.
  r.start = SimTime::epoch() +
            SimDuration::minutes(60 * k + static_cast<int>(machine % 7));
  r.end = r.start + SimDuration::minutes(5 + static_cast<int>(machine % 11));
  return r;
}

TEST(ServeConcurrent, ReadersSeeConsistentSnapshotsDuringIngest) {
  FeedConfig fc;
  fc.machines = kMachines;
  fc.horizon_start = SimTime::epoch();
  fc.publish_every = 16;
  AvailabilityFeed feed(fc);
  const QueryEngine engine(feed);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::thread ingester([&] {
    for (int k = 0; k < kEpisodesPerMachine; ++k) {
      for (std::uint32_t m = 0; m < kMachines; ++m) {
        feed.ingest(episode(m, k));
      }
    }
    feed.publish();
    done.store(true, std::memory_order_release);
  });

  struct Pinned {
    std::shared_ptr<const FleetSnapshot> snap;
    ServeQuery q;
    QueryAnswer a;
  };
  std::vector<std::vector<Pinned>> kept(kReaders);

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t last_version = 0;
      std::uint32_t machine = static_cast<std::uint32_t>(t);
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = engine.pin();
        // Versions can only march forward for any single reader.
        if (snap->version < last_version) {
          ++failures;
          return;
        }
        last_version = snap->version;
        ServeQuery q;
        q.machine = machine % kMachines;
        // Strictly past anything the ingester will ever write.
        q.at = SimTime::epoch() + SimDuration::days(30) +
               SimDuration::minutes(static_cast<int>(machine));
        q.window = SimDuration::hours(2);
        const QueryAnswer a = engine.query(*snap, q);
        if (!(a.p_available >= 0.0 && a.p_available <= 1.0) ||
            !(a.expected_occurrences >= 0.0)) {
          ++failures;  // a torn read would show up as garbage here
          return;
        }
        // Same pinned snapshot, same bits — no matter what ingest does.
        const QueryAnswer again = engine.query(*snap, q);
        if (again.p_available != a.p_available ||
            again.expected_occurrences != a.expected_occurrences) {
          ++failures;
          return;
        }
        if (kept[t].size() < 64) kept[t].push_back({snap, q, a});
        machine += 13;
      }
    });
  }

  ingester.join();
  for (auto& r : readers) r.join();
  ASSERT_EQ(failures.load(), 0);

  // Quiesced: every answer recorded live must reproduce bit-identically
  // against its pinned snapshot now that ingest has stopped.
  for (const auto& lane : kept) {
    for (const auto& p : lane) {
      const QueryAnswer now = engine.query(*p.snap, p.q);
      ASSERT_EQ(now.p_available, p.a.p_available);
      ASSERT_EQ(now.expected_occurrences, p.a.expected_occurrences);
    }
  }

  // And the final snapshot holds the whole stream.
  const auto final_snap = engine.pin();
  EXPECT_EQ(final_snap->events,
            static_cast<std::uint64_t>(kMachines) * kEpisodesPerMachine);
  EXPECT_EQ(feed.events_ingested(), final_snap->events);
  for (std::uint32_t m = 0; m < kMachines; ++m) {
    EXPECT_EQ(final_snap->machines[m]->episodes,
              static_cast<std::uint64_t>(kEpisodesPerMachine));
  }
}

TEST(ServeConcurrent, ConcurrentReadersShareOneSnapshotWithoutInterference) {
  FeedConfig fc;
  fc.machines = 8;
  fc.horizon_start = SimTime::epoch();
  fc.publish_every = 0;
  AvailabilityFeed feed(fc);
  for (int k = 0; k < 10; ++k) {
    for (std::uint32_t m = 0; m < 8; ++m) feed.ingest(episode(m, k));
  }
  feed.publish();
  const QueryEngine engine(feed);
  const auto snap = engine.pin();

  ServeQuery q;
  q.machine = 3;
  q.at = SimTime::epoch() + SimDuration::days(2);
  q.window = SimDuration::hours(4);
  const QueryAnswer expected = engine.query(*snap, q);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        const QueryAnswer a = engine.query(*snap, q);
        if (a.p_available != expected.p_available ||
            a.expected_occurrences != expected.expected_occurrences) {
          ++mismatches;
          return;
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace fgcs::serve

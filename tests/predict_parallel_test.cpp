// Parallel machine evaluation must be bit-identical to the sequential
// path — every metric, every reliability bucket, for every predictor in
// the panel, and through the prediction study on top.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fgcs/core/prediction_study.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/predict/baselines.hpp"
#include "fgcs/predict/history_window.hpp"
#include "fgcs/predict/robust_history.hpp"
#include "fgcs/predict/semi_markov.hpp"
#include "fgcs/trace/index.hpp"

namespace fgcs::predict {
namespace {

trace::TraceSet study_trace() {
  core::TestbedConfig config;
  config.machines = 6;
  config.days = 14;
  config.seed = 20060806;
  return core::run_testbed(config);
}

void expect_identical(const EvaluationResult& a, const EvaluationResult& b) {
  EXPECT_EQ(a.predictor, b.predictor);
  EXPECT_EQ(a.queries, b.queries);
  // Bit-exact, not approximate: the parallel path must merge per-machine
  // partial sums in the same order the sequential loop accumulates them.
  EXPECT_EQ(a.brier, b.brier);
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.true_positive_rate, b.true_positive_rate);
  EXPECT_EQ(a.false_positive_rate, b.false_positive_rate);
  EXPECT_EQ(a.occurrence_mae, b.occurrence_mae);
  EXPECT_EQ(a.base_availability, b.base_availability);
  for (std::size_t i = 0; i < a.reliability.size(); ++i) {
    EXPECT_EQ(a.reliability[i].count, b.reliability[i].count) << i;
    EXPECT_EQ(a.reliability[i].mean_predicted, b.reliability[i].mean_predicted)
        << i;
    EXPECT_EQ(a.reliability[i].observed_available,
              b.reliability[i].observed_available)
        << i;
  }
}

TEST(PredictParallel, EvaluationIsBitIdenticalForThePredictorPanel) {
  const auto trace = study_trace();
  const trace::TraceIndex index(trace);
  const trace::TraceCalendar calendar;

  EvaluationConfig config;
  config.begin = trace.horizon_start() + sim::SimDuration::days(7);
  config.end = trace.horizon_end();
  config.window = sim::SimDuration::hours(2);
  config.stride = sim::SimDuration::minutes(45);

  std::vector<std::unique_ptr<AvailabilityPredictor>> panel;
  panel.push_back(std::make_unique<HistoryWindowPredictor>());
  panel.push_back(std::make_unique<RobustHistoryPredictor>());
  panel.push_back(std::make_unique<SemiMarkovPredictor>());
  panel.push_back(std::make_unique<RecentRatePredictor>());
  panel.push_back(std::make_unique<AlwaysAvailablePredictor>());

  for (const auto& predictor : panel) {
    config.parallel = true;
    const auto parallel = evaluate_predictor(*predictor, index, calendar,
                                             config);
    config.parallel = false;
    const auto sequential = evaluate_predictor(*predictor, index, calendar,
                                               config);
    EXPECT_GT(parallel.queries, 0u) << parallel.predictor;
    expect_identical(parallel, sequential);
  }
}

TEST(PredictParallel, PredictionStudyIsBitIdenticalAcrossTheFlag) {
  const auto trace = study_trace();
  const trace::TraceCalendar calendar;

  core::PredictionStudyConfig study;
  study.train_days = 7;
  study.windows = {sim::SimDuration::hours(1), sim::SimDuration::hours(4)};
  study.stride = sim::SimDuration::hours(1);

  study.parallel = true;
  const auto parallel = core::run_prediction_study(trace, calendar, study);
  study.parallel = false;
  const auto sequential = core::run_prediction_study(trace, calendar, study);

  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i].window, sequential[i].window);
    expect_identical(parallel[i].result, sequential[i].result);
  }
}

}  // namespace
}  // namespace fgcs::predict

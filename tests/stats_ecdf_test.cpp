// Tests for the empirical CDF.
#include <gtest/gtest.h>

#include <vector>

#include "fgcs/stats/ecdf.hpp"
#include "fgcs/util/rng.hpp"

namespace fgcs::stats {
namespace {

TEST(Ecdf, EmptyBehaviour) {
  Ecdf e;
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e(1.0), 0.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.mean(), 0.0);
}

TEST(Ecdf, StepEvaluation) {
  Ecdf e{std::vector<double>{1, 2, 3, 4}};
  EXPECT_DOUBLE_EQ(e(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e(100.0), 1.0);
}

TEST(Ecdf, HandlesDuplicates) {
  Ecdf e{std::vector<double>{2, 2, 2, 5}};
  EXPECT_DOUBLE_EQ(e(2.0), 0.75);
  EXPECT_DOUBLE_EQ(e(1.9), 0.0);
}

TEST(Ecdf, Quantiles) {
  Ecdf e{std::vector<double>{10, 20, 30, 40, 50}};
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 50.0);
}

TEST(Ecdf, MassBetween) {
  Ecdf e{std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}};
  EXPECT_DOUBLE_EQ(e.mass_between(2.0, 4.0), 0.2);  // (2,4]: {3,4}
  EXPECT_DOUBLE_EQ(e.mass_between(0.0, 10.0), 1.0);
}

TEST(Ecdf, MinMaxMean) {
  Ecdf e{std::vector<double>{5, 1, 3}};
  EXPECT_DOUBLE_EQ(e.min(), 1.0);
  EXPECT_DOUBLE_EQ(e.max(), 5.0);
  EXPECT_DOUBLE_EQ(e.mean(), 3.0);
}

TEST(Ecdf, StepsSkipDuplicates) {
  Ecdf e{std::vector<double>{1, 1, 2}};
  const auto steps = e.steps();
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_DOUBLE_EQ(steps[0].x, 1.0);
  EXPECT_NEAR(steps[0].f, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(steps[1].f, 1.0);
}

TEST(Ecdf, GridEvaluation) {
  Ecdf e{std::vector<double>{0, 10}};
  const auto grid = e.grid(0.0, 10.0, 11);
  ASSERT_EQ(grid.size(), 11u);
  EXPECT_DOUBLE_EQ(grid[0].x, 0.0);
  EXPECT_DOUBLE_EQ(grid[0].f, 0.5);
  EXPECT_DOUBLE_EQ(grid[10].f, 1.0);
  EXPECT_DOUBLE_EQ(grid[5].x, 5.0);
}

TEST(Ecdf, MonotoneNondecreasing) {
  util::RngStream rng(1);
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.normal();
  Ecdf e{xs};
  double prev = 0.0;
  for (double q = -4.0; q <= 4.0; q += 0.05) {
    const double f = e(q);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(KsStatistic, IdenticalSamplesZero) {
  Ecdf a{std::vector<double>{1, 2, 3}};
  EXPECT_DOUBLE_EQ(ks_statistic(a, a), 0.0);
}

TEST(KsStatistic, DisjointSamplesOne) {
  Ecdf a{std::vector<double>{1, 2}};
  Ecdf b{std::vector<double>{10, 20}};
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 1.0);
}

TEST(KsStatistic, SameDistributionSmall) {
  util::RngStream rng(2);
  std::vector<double> xs(2000), ys(2000);
  for (auto& x : xs) x = rng.uniform();
  for (auto& y : ys) y = rng.uniform();
  EXPECT_LT(ks_statistic(Ecdf{xs}, Ecdf{ys}), 0.06);
}

TEST(KsStatistic, DifferentDistributionsLarge) {
  util::RngStream rng(3);
  std::vector<double> xs(1000), ys(1000);
  for (auto& x : xs) x = rng.uniform();
  for (auto& y : ys) y = rng.uniform() + 0.5;
  EXPECT_GT(ks_statistic(Ecdf{xs}, Ecdf{ys}), 0.4);
}

}  // namespace
}  // namespace fgcs::stats

// Tests for the resource samplers (machine polling and trajectory polling).
#include <gtest/gtest.h>

#include "fgcs/monitor/machine_sampler.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/workload/synthetic.hpp"

namespace fgcs::monitor {
namespace {

using namespace sim::time_literals;
using sim::SimDuration;
using sim::SimTime;

TEST(MachineSampler, MeasuresHostUsageOverWindow) {
  os::Machine m(os::SchedulerParams::linux_2_4(), os::MemoryParams::linux_1gb(),
                3);
  m.spawn(workload::synthetic_host(0.5));
  MachineSampler sampler(m);
  m.run_for(60_s);
  const HostSample s = sampler.sample();
  EXPECT_EQ(s.time, m.now());
  EXPECT_NEAR(s.host_cpu, 0.5, 0.08);
  EXPECT_TRUE(s.service_alive);
}

TEST(MachineSampler, WindowsAreDisjoint) {
  os::Machine m(os::SchedulerParams::linux_2_4(), os::MemoryParams::linux_1gb(),
                3);
  const auto pid = m.spawn(workload::synthetic_guest(0));
  MachineSampler sampler(m);
  m.run_for(30_s);
  (void)sampler.sample();
  m.terminate(pid);
  m.run_for(30_s);
  const HostSample s = sampler.sample();
  // Second window has no running process at all.
  EXPECT_NEAR(s.host_cpu, 0.0, 0.01);
}

TEST(MachineSampler, ReportsFreeMemory) {
  os::Machine m(os::SchedulerParams::linux_2_4(), os::MemoryParams::linux_1gb(),
                3);
  auto spec = workload::synthetic_host(0.2);
  spec.resident_mb = 300.0;
  m.spawn(spec);
  MachineSampler sampler(m);
  m.run_for(15_s);
  EXPECT_DOUBLE_EQ(sampler.sample().free_mem_mb, 1024.0 - 100.0 - 300.0);
}

workload::MachineLoadTrace make_trace() {
  workload::LoadOverlay ov;
  const SimTime t0 = SimTime::epoch();
  ov.add_cpu(t0, t0 + 1_h, 0.3);
  ov.add_cpu(t0 + 1_h, t0 + 2_h, 0.9);
  ov.add_mem(t0, t0 + 2_h, 800.0);
  workload::MachineLoadTrace trace;
  trace.load = ov.build(t0);
  trace.downtimes.push_back(
      {t0 + 30_min, SimDuration::seconds(40), true});
  return trace;
}

TEST(TrajectorySampler, ReadsLoadAndMemory) {
  const auto trace = make_trace();
  TrajectorySampler sampler(trace, 1024.0, 100.0);
  const HostSample s1 = sampler.sample(SimTime::epoch() + 10_min, 15_s);
  EXPECT_DOUBLE_EQ(s1.host_cpu, 0.3);
  EXPECT_DOUBLE_EQ(s1.free_mem_mb, 1024.0 - 100.0 - 800.0);
  const HostSample s2 = sampler.sample(SimTime::epoch() + 90_min, 15_s);
  EXPECT_DOUBLE_EQ(s2.host_cpu, 0.9);
}

TEST(TrajectorySampler, DowntimeClearsAlive) {
  const auto trace = make_trace();
  TrajectorySampler sampler(trace, 1024.0, 100.0);
  EXPECT_TRUE(sampler.sample(SimTime::epoch() + 29_min, 15_s).service_alive);
  EXPECT_FALSE(
      sampler.sample(SimTime::epoch() + 30_min + 20_s, 15_s).service_alive);
  EXPECT_TRUE(
      sampler.sample(SimTime::epoch() + 31_min, 15_s).service_alive);
}

TEST(TrajectorySampler, FreeMemoryFloorsAtZero) {
  workload::LoadOverlay ov;
  ov.add_mem(SimTime::epoch(), SimTime::epoch() + 1_h, 5000.0);
  workload::MachineLoadTrace trace;
  trace.load = ov.build(SimTime::epoch());
  TrajectorySampler sampler(trace, 1024.0, 100.0);
  EXPECT_DOUBLE_EQ(sampler.sample(SimTime::epoch() + 1_min, 15_s).free_mem_mb,
                   0.0);
}

TEST(TrajectorySampler, RejectsBadMemoryConfig) {
  const auto trace = make_trace();
  EXPECT_THROW(TrajectorySampler(trace, 100.0, 200.0), fgcs::ConfigError);
}

}  // namespace
}  // namespace fgcs::monitor

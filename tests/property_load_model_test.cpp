// Property tests for the lab load model across profiles and seeds:
// structural invariants of the generated trajectories and the calibrated
// statistics of the default profile.
#include <gtest/gtest.h>

#include "fgcs/core/analyzer.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/workload/load_model.hpp"

namespace fgcs::workload {
namespace {

using sim::SimDuration;
using sim::SimTime;

class LoadModelPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  LabProfile profile() const {
    return std::get<0>(GetParam()) == 0 ? LabProfile::purdue_lab()
                                        : LabProfile::enterprise_desktop();
  }
  std::uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(LoadModelPropertyTest, TrajectoryIsWellFormed) {
  const auto trace = generate_machine_load(profile(), seed(), 0, 21);
  const auto& pts = trace.load.points();
  ASSERT_FALSE(pts.empty());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    ASSERT_GE(pts[i].cpu, 0.0);
    ASSERT_LE(pts[i].cpu, 1.0);
    ASSERT_GE(pts[i].mem_mb, 0.0);
    if (i > 0) ASSERT_LT(pts[i - 1].t, pts[i].t);
  }
}

TEST_P(LoadModelPropertyTest, LoadReturnsToZeroEventually) {
  // The overlay's contributions all end; the final point is all-zero.
  const auto trace = generate_machine_load(profile(), seed(), 0, 7);
  const auto& last = trace.load.points().back();
  EXPECT_NEAR(last.cpu, 0.0, 1e-9);     // +=/-= pairs leave fp residue
  EXPECT_NEAR(last.mem_mb, 0.0, 1e-9);
}

TEST_P(LoadModelPropertyTest, DowntimesAreWellFormed) {
  auto p = profile();
  p.reboot_rate_per_day = 0.4;
  p.failure_rate_per_day = 0.1;
  const auto trace = generate_machine_load(p, seed(), 0, 90);
  for (std::size_t i = 0; i < trace.downtimes.size(); ++i) {
    const auto& d = trace.downtimes[i];
    EXPECT_GT(d.duration, SimDuration::zero());
    if (d.is_reboot) EXPECT_LT(d.duration, SimDuration::minutes(1));
    if (i > 0) {
      const auto& prev = trace.downtimes[i - 1];
      EXPECT_GE(d.start.as_micros(),
                (prev.start + prev.duration).as_micros());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProfileSeedGrid, LoadModelPropertyTest,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(1ULL, 42ULL, 20050815ULL)));

// The calibration contract: the default testbed reproduces the paper's
// Table 2 ranges. This is the regression test that guards the calibrated
// constants in LabProfile::purdue_lab().
TEST(Calibration, Table2RangesMatchPaper) {
  core::TestbedConfig config;  // 20 machines, 92 days, default seed
  const auto trace = core::run_testbed(config);
  const core::TraceAnalyzer analyzer(trace);
  const auto t2 = analyzer.table2();

  // Paper Table 2 ranges, with a small tolerance for the band edges.
  EXPECT_GE(t2.total.min, 380);
  EXPECT_LE(t2.total.max, 470);
  EXPECT_GE(t2.cpu_contention.min, 283 - 15);
  EXPECT_LE(t2.cpu_contention.max, 356 + 15);
  EXPECT_GE(t2.mem_contention.min, 83 - 10);
  EXPECT_LE(t2.mem_contention.max, 121 + 10);
  EXPECT_GE(t2.urr.min, 1);
  EXPECT_LE(t2.urr.max, 16);
  // Percentages: CPU dominates, as §5.1 concludes.
  EXPECT_GT(t2.cpu_pct_min, 0.65);
  EXPECT_LT(t2.mem_pct_max, 0.35);
  EXPECT_LT(t2.urr_pct_max, 0.05);
  // ~90% of URR are reboots.
  EXPECT_GT(t2.reboot_fraction_of_urr, 0.75);
}

TEST(Calibration, IntervalShapesMatchPaper) {
  core::TestbedConfig config;
  const auto trace = core::run_testbed(config);
  const core::TraceAnalyzer analyzer(trace);
  const auto iv = analyzer.intervals();

  // Weekday intervals shorter than weekend (Figure 6's headline).
  EXPECT_LT(iv.weekday.mean_hours, iv.weekend.mean_hours);
  EXPECT_GT(iv.weekday.mean_hours, 2.5);
  EXPECT_LT(iv.weekday.mean_hours, 4.5);
  EXPECT_GT(iv.weekend.mean_hours, 5.0);
  // ~5% of intervals are sub-5-minute gaps.
  EXPECT_GT(iv.weekday.frac_under_5min, 0.02);
  EXPECT_LT(iv.weekday.frac_under_5min, 0.10);
}

TEST(Calibration, HourlyPatternMatchesPaper) {
  core::TestbedConfig config;
  const auto trace = core::run_testbed(config);
  const core::TraceAnalyzer analyzer(trace);
  const auto hourly = analyzer.hourly();

  // The 4-5 AM updatedb spike equals the machine count on both classes.
  EXPECT_NEAR(hourly.weekday[4].mean, 20.0, 1.0);
  EXPECT_NEAR(hourly.weekend[4].mean, 20.0, 1.0);
  EXPECT_GE(hourly.weekday[4].min, 20.0);
  // Daytime counts rise after 10 AM and exceed weekend counts.
  EXPECT_GT(hourly.weekday[13].mean, hourly.weekday[8].mean + 5.0);
  EXPECT_GT(hourly.weekday[12].mean, hourly.weekend[12].mean);
  // Small across-day deviation (the predictability claim).
  EXPECT_LT(analyzer.hourly_relative_deviation(false), 0.5);
}

}  // namespace
}  // namespace fgcs::workload

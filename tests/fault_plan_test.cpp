// Tests for the declarative fault-plan format: parsing, serialization
// round trips, and validation.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "fgcs/fault/fault_plan.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::fault {
namespace {

TEST(FaultPlanTest, ParsesAllKindsAndOptions) {
  const auto plan = FaultPlan::parse_string(
      "# fgcs-fault-plan v1\n"
      "crash      rate_per_day=0.05 mean_minutes=30\n"
      "dropout    rate_per_day=0.2  mean_minutes=5  machine=3\n"
      "skew       rate_per_day=0.1  mean_minutes=10 skew_ms=400\n"
      "guest-kill at_hours=12.5,40  machine=0\n");
  ASSERT_EQ(plan.size(), 4u);

  EXPECT_EQ(plan.specs[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.specs[0].machine, kAllMachines);
  EXPECT_DOUBLE_EQ(plan.specs[0].rate_per_day, 0.05);
  EXPECT_DOUBLE_EQ(plan.specs[0].mean_minutes, 30.0);
  EXPECT_FALSE(plan.specs[0].scripted());

  EXPECT_EQ(plan.specs[1].kind, FaultKind::kSensorDropout);
  EXPECT_EQ(plan.specs[1].machine, 3);

  EXPECT_EQ(plan.specs[2].kind, FaultKind::kClockSkew);
  EXPECT_DOUBLE_EQ(plan.specs[2].skew_ms, 400.0);

  EXPECT_EQ(plan.specs[3].kind, FaultKind::kGuestKill);
  EXPECT_TRUE(plan.specs[3].scripted());
  ASSERT_EQ(plan.specs[3].at_hours.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.specs[3].at_hours[0], 12.5);
  EXPECT_DOUBLE_EQ(plan.specs[3].at_hours[1], 40.0);
  EXPECT_EQ(plan.specs[3].machine, 0);
}

TEST(FaultPlanTest, IgnoresCommentsBlankLinesAndCrlf) {
  const auto plan = FaultPlan::parse_string(
      "# fgcs-fault-plan v1\r\n"
      "\n"
      "# a comment\n"
      "crash rate_per_day=1 mean_minutes=2\r\n");
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.specs[0].kind, FaultKind::kCrash);
}

TEST(FaultPlanTest, RoundTripsThroughText) {
  FaultPlan plan;
  FaultSpec crash;
  crash.kind = FaultKind::kCrash;
  crash.rate_per_day = 0.25;
  crash.mean_minutes = 12.0;
  plan.specs.push_back(crash);
  FaultSpec kill;
  kill.kind = FaultKind::kGuestKill;
  kill.machine = 2;
  kill.at_hours = {1.0, 2.5, 100.0};
  kill.duration_minutes = 0.0;
  plan.specs.push_back(kill);

  const auto reparsed = FaultPlan::parse_string(plan.str());
  ASSERT_EQ(reparsed.size(), plan.size());
  EXPECT_EQ(reparsed.specs[0].kind, FaultKind::kCrash);
  EXPECT_DOUBLE_EQ(reparsed.specs[0].rate_per_day, 0.25);
  EXPECT_EQ(reparsed.specs[1].machine, 2);
  ASSERT_EQ(reparsed.specs[1].at_hours.size(), 3u);
  EXPECT_DOUBLE_EQ(reparsed.specs[1].at_hours[2], 100.0);
  // Stable: a second round trip produces identical text.
  EXPECT_EQ(reparsed.str(), plan.str());
}

TEST(FaultPlanTest, MissingMagicIsAnError) {
  EXPECT_THROW(FaultPlan::parse_string("crash rate_per_day=1\n"),
               ConfigError);
}

TEST(FaultPlanTest, ErrorsCarryLineNumbers) {
  try {
    FaultPlan::parse_string(
        "# fgcs-fault-plan v1\n"
        "crash rate_per_day=1 mean_minutes=5\n"
        "meteor rate_per_day=1\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(FaultPlanTest, RejectsUnknownKeysWithLineNumber) {
  try {
    FaultPlan::parse_string(
        "# fgcs-fault-plan v1\n"
        "crash rate_per_day=1 frequency=9\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(FaultPlanTest, ValidationRejectsUnplaceableSpec) {
  FaultPlan plan;
  FaultSpec s;  // neither rate-based nor scripted
  s.rate_per_day = 0.0;
  plan.specs.push_back(s);
  EXPECT_THROW(plan.validate(), ConfigError);
}

TEST(FaultPlanTest, ValidationRejectsNegativeRateAndDuration) {
  FaultSpec s;
  s.rate_per_day = -1.0;
  EXPECT_THROW(s.validate(), ConfigError);
  s.rate_per_day = 1.0;
  s.mean_minutes = -5.0;
  EXPECT_THROW(s.validate(), ConfigError);
}

TEST(FaultPlanTest, EmptyPlanIsValidAndEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.validate();  // no throw
}

TEST(FaultPlanTest, SaveLoadRoundTrip) {
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kSensorDropout;
  s.rate_per_day = 0.5;
  s.mean_minutes = 3.0;
  plan.specs.push_back(s);

  const std::string path = ::testing::TempDir() + "fgcs_fault_plan_test.txt";
  plan.save(path);
  const auto loaded = FaultPlan::load(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.specs[0].kind, FaultKind::kSensorDropout);
  EXPECT_DOUBLE_EQ(loaded.specs[0].rate_per_day, 0.5);
}

TEST(FaultPlanTest, KindNamesRoundTrip) {
  for (const auto kind :
       {FaultKind::kCrash, FaultKind::kSensorDropout, FaultKind::kClockSkew,
        FaultKind::kGuestKill}) {
    EXPECT_EQ(fault_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(fault_kind_from_string("comet"), ConfigError);
}

}  // namespace
}  // namespace fgcs::fault

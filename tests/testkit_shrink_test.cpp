// The delta-debugging shrinker: a synthetic failure planted in a large
// scenario must minimize to <= 2 machines and <= 2 fault specs while
// still failing, without ever losing the original replay seed.
#include <gtest/gtest.h>

#include "fgcs/fault/fault_plan.hpp"
#include "fgcs/testkit/runner.hpp"
#include "fgcs/testkit/scenario.hpp"

namespace fgcs::testkit {
namespace {

bool has_kind(const Scenario& s, fault::FaultKind kind) {
  for (const auto& spec : s.testbed.faults.specs) {
    if (spec.kind == kind) return true;
  }
  return false;
}

// A check that "fails" whenever the plan carries a sensor-dropout spec —
// a stand-in for a real bug triggered by one fault kind. Scenario-only,
// so shrink evaluations are cheap and the test is about search, not sim.
ScenarioRunner::Check dropout_bug() {
  return [](const Scenario& s) {
    std::vector<InvariantViolation> v;
    if (has_kind(s, fault::FaultKind::kSensorDropout)) {
      v.push_back({"synthetic-dropout-bug", s.str()});
    }
    return v;
  };
}

// A big scenario that trips the synthetic bug: >= 3 machines, >= 3 fault
// specs among them a dropout, lifecycle on if we can get it.
Scenario find_big_failing_scenario() {
  for (std::uint64_t seed = 1; seed < 20000; ++seed) {
    const Scenario s = generate_scenario(seed);
    if (s.testbed.machines >= 3 && s.testbed.faults.size() >= 3 &&
        has_kind(s, fault::FaultKind::kSensorDropout) && s.run_lifecycle) {
      return s;
    }
  }
  ADD_FAILURE() << "no qualifying scenario in seed range";
  return generate_scenario(1);
}

TEST(TestkitShrink, ReducesSyntheticFailureToMinimalReproduction) {
  const Scenario big = find_big_failing_scenario();
  ASSERT_GE(big.testbed.machines, 3u);
  ASSERT_GE(big.testbed.faults.size(), 3u);

  ScenarioRunner runner;
  auto check = dropout_bug();
  runner.set_check(check);
  const Scenario minimized = runner.shrink(big);

  // Still fails (a shrinker that "fixes" the bug is useless)...
  EXPECT_FALSE(check(minimized).empty());
  // ...and is structurally minimal per the acceptance bar.
  EXPECT_LE(minimized.testbed.machines, 2u);
  EXPECT_LE(minimized.testbed.faults.size(), 2u);
  EXPECT_FALSE(minimized.run_lifecycle);
  EXPECT_LE(minimized.testbed.days, big.testbed.days);
  // The surviving spec is the culprit kind.
  EXPECT_TRUE(has_kind(minimized, fault::FaultKind::kSensorDropout));
  // Provenance: the replay seed rides along unchanged.
  EXPECT_EQ(minimized.seed, big.seed);
}

TEST(TestkitShrink, TruncatesScriptedOccurrenceLists) {
  Scenario s = generate_scenario(77);
  s.testbed.faults.specs.clear();
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kCrash;
  spec.at_hours = {1.0, 5.0, 9.0};
  s.testbed.faults.specs.push_back(spec);

  ScenarioRunner runner;
  runner.set_check([](const Scenario& sc) {
    std::vector<InvariantViolation> v;
    if (!sc.testbed.faults.empty() &&
        !sc.testbed.faults.specs[0].at_hours.empty()) {
      v.push_back({"synthetic", "any scripted crash trips it"});
    }
    return v;
  });
  const Scenario minimized = runner.shrink(s);
  ASSERT_EQ(minimized.testbed.faults.size(), 1u);
  EXPECT_EQ(minimized.testbed.faults.specs[0].at_hours.size(), 1u);
}

TEST(TestkitShrink, ZeroEvalBudgetReturnsInputUnchanged) {
  RunnerConfig config;
  config.max_shrink_evals = 0;
  ScenarioRunner runner(config);
  runner.set_check(dropout_bug());
  const Scenario big = find_big_failing_scenario();
  const Scenario minimized = runner.shrink(big);
  EXPECT_EQ(minimized.str(), big.str());
}

TEST(TestkitShrink, RunOneAttachesMinimizedScenario) {
  RunnerConfig config;
  config.max_shrink_evals = 200;
  ScenarioRunner runner(config);
  runner.set_check(dropout_bug());

  // Find a sweep-visible seed that trips the bug, then check run_one's
  // failure report carries the shrunk form.
  const Scenario big = find_big_failing_scenario();
  const auto failure = runner.run_one(big.seed);
  ASSERT_TRUE(failure.has_value());
  EXPECT_LE(failure->minimized.testbed.machines, 2u);
  EXPECT_LE(failure->minimized.testbed.faults.size(), 2u);
  EXPECT_EQ(failure->minimized.seed, big.seed);
}

}  // namespace
}  // namespace fgcs::testkit

// QueryEngine + load-generation surface: mix/spec parsing diagnostics,
// str() fixpoints, generator determinism and mix shapes, and the batched
// fleet query path.
#include <gtest/gtest.h>

#include <string>

#include "fgcs/serve/load.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::serve {
namespace {

using sim::SimDuration;
using sim::SimTime;

std::string error_of(const char* text) {
  try {
    (void)LoadSpec::parse(text);
  } catch (const ConfigError& e) {
    return e.what();
  }
  return "";
}

TEST(ServeQuery, MixSpecParsesTheThreeArrivalMixes) {
  EXPECT_EQ(MixSpec::parse("uniform").kind, MixSpec::Kind::kUniform);
  const MixSpec zipf = MixSpec::parse("zipf:1.5");
  EXPECT_EQ(zipf.kind, MixSpec::Kind::kZipf);
  EXPECT_DOUBLE_EQ(zipf.zipf_skew, 1.5);
  const MixSpec sweep = MixSpec::parse("sweep:0.5-24");
  EXPECT_EQ(sweep.kind, MixSpec::Kind::kSweep);
  EXPECT_DOUBLE_EQ(sweep.sweep_lo_hours, 0.5);
  EXPECT_DOUBLE_EQ(sweep.sweep_hi_hours, 24.0);
}

TEST(ServeQuery, MixSpecDiagnosesTheOffendingField) {
  for (const char* bad : {"", "unknown", "zipf:", "zipf:0", "zipf:nan",
                          "sweep:1", "sweep:-1-4", "sweep:9-2", "sweep:a-b"}) {
    EXPECT_THROW((void)MixSpec::parse(bad), ConfigError) << bad;
  }
  try {
    (void)MixSpec::parse("zipf:oops");
    FAIL() << "accepted zipf:oops";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("skew"), std::string::npos);
  }
}

TEST(ServeQuery, MixSpecStrIsAParseFixpoint) {
  for (const char* text : {"uniform", "zipf:1.1", "zipf:0.25",
                           "sweep:1-24", "sweep:0.125-0.5"}) {
    const MixSpec mix = MixSpec::parse(text);
    const MixSpec again = MixSpec::parse(mix.str());
    EXPECT_EQ(again.str(), mix.str()) << text;
  }
}

TEST(ServeQuery, LoadSpecRoundTripsThroughItsTextForm) {
  LoadSpec spec;
  spec.machines = 3000;
  spec.queries = 2'000'000;
  spec.mix = MixSpec::parse("zipf:1.25");
  spec.at_hours = 500.5;
  spec.horizon_hours = 8.0;
  spec.seed = 42;
  const LoadSpec reparsed = LoadSpec::parse(spec.str());
  EXPECT_EQ(reparsed.str(), spec.str());
  EXPECT_EQ(reparsed.machines, spec.machines);
  EXPECT_EQ(reparsed.queries, spec.queries);
  EXPECT_EQ(reparsed.seed, spec.seed);
}

TEST(ServeQuery, LoadSpecDiagnosesLineAndField) {
  // Wrong header on line 1.
  EXPECT_NE(error_of("machines=4\n").find("line 1"), std::string::npos);
  // A bad value names its 1-based line.
  const std::string e =
      error_of("# fgcs-serve-load v1\nmachines=4\nqueries=x\n");
  EXPECT_NE(e.find("line 3"), std::string::npos);
  EXPECT_NE(e.find("queries"), std::string::npos);
  // Unknown keys are rejected, not ignored.
  EXPECT_NE(error_of("# fgcs-serve-load v1\nbogus=1\n").find("line 2"),
            std::string::npos);
  // Out-of-range values fail validation even when well-formed.
  EXPECT_NE(error_of("# fgcs-serve-load v1\nmachines=0\n"), "");
  EXPECT_NE(error_of("# fgcs-serve-load v1\nhorizon_hours=0\n"), "");
}

TEST(ServeQuery, LoadGeneratorIsRandomAccessDeterministic) {
  LoadSpec spec;
  spec.machines = 50;
  spec.queries = 1000;
  const LoadGenerator gen(spec);
  const LoadGenerator twin(spec);
  for (std::uint64_t i : {0ULL, 1ULL, 17ULL, 999ULL}) {
    const ServeQuery a = gen.query(i);
    const ServeQuery b = twin.query(i);
    EXPECT_EQ(a.machine, b.machine);
    EXPECT_EQ(a.at, b.at);
    EXPECT_EQ(a.window, b.window);
    EXPECT_LT(a.machine, spec.machines);
    // Fixed-window mixes pin the window to the spec.
    EXPECT_EQ(a.window,
              SimDuration::from_seconds(spec.horizon_hours * 3600.0));
  }
  // Order independence: reading backwards reproduces the same queries.
  EXPECT_EQ(gen.query(999).at, twin.query(999).at);
}

TEST(ServeQuery, ZipfMixSkewsTowardLowRanks) {
  LoadSpec spec;
  spec.machines = 100;
  spec.queries = 20'000;
  spec.mix = MixSpec::parse("zipf:1.5");
  const LoadGenerator gen(spec);
  std::uint64_t low = 0, high = 0;
  for (std::uint64_t i = 0; i < spec.queries; ++i) {
    const auto q = gen.query(i);
    ASSERT_LT(q.machine, spec.machines);
    (q.machine < 10 ? low : high) += 1;
  }
  // Ranks 0-9 must dominate ranks 10-99 under skew 1.5.
  EXPECT_GT(low, high);
}

TEST(ServeQuery, SweepMixDrawsWindowsInsideTheBand) {
  LoadSpec spec;
  spec.machines = 10;
  spec.queries = 5000;
  spec.mix = MixSpec::parse("sweep:2-6");
  const LoadGenerator gen(spec);
  for (std::uint64_t i = 0; i < spec.queries; ++i) {
    const auto q = gen.query(i);
    const double h = q.window.as_hours();
    EXPECT_GE(h, 2.0);
    EXPECT_LE(h, 6.0);
  }
}

TEST(ServeQuery, EngineValidatesAndBatchesFleetQueries) {
  FeedConfig fc;
  fc.machines = 3;
  fc.horizon_start = SimTime::epoch();
  fc.publish_every = 0;
  AvailabilityFeed feed(fc);
  trace::UnavailabilityRecord r;
  r.machine = 1;
  r.start = SimTime::epoch() + SimDuration::hours(2);
  r.end = SimTime::epoch() + SimDuration::hours(3);
  feed.ingest(r);
  feed.publish();

  const QueryEngine engine(feed);
  const auto snap = engine.pin();
  const SimTime at = SimTime::epoch() + SimDuration::hours(10);
  const SimDuration window = SimDuration::hours(4);
  EXPECT_THROW((void)engine.query(*snap, {99, at, window}), ConfigError);
  EXPECT_THROW((void)engine.query(*snap, {0, at, SimDuration{}}), ConfigError);

  const auto fleet = engine.p_available_fleet(*snap, at, window);
  ASSERT_EQ(fleet.size(), 3u);
  for (std::uint32_t m = 0; m < 3; ++m) {
    const auto point = engine.query(*snap, {m, at, window});
    EXPECT_EQ(fleet[m], point.p_available) << m;
    EXPECT_GE(point.p_available, 0.0);
    EXPECT_LE(point.p_available, 1.0);
  }
  // No history -> the configured prior; some history -> still a probability.
  EXPECT_EQ(fleet[0], fc.model.prior_availability);
}

TEST(ServeQuery, EvaluateClampsHostileTimes) {
  FeedConfig fc;
  fc.machines = 1;
  fc.horizon_start = SimTime::epoch() + SimDuration::hours(100);
  AvailabilityFeed feed(fc);
  feed.publish();
  const QueryEngine engine(feed);
  // A query before the horizon start (unreachable through the CLI, easy
  // through the fuzzer) must still yield a probability, not UB.
  const auto a = engine.query(*feed.snapshot(),
                              {0, SimTime::epoch(), SimDuration::hours(1)});
  EXPECT_GE(a.p_available, 0.0);
  EXPECT_LE(a.p_available, 1.0);
  EXPECT_GE(a.expected_occurrences, 0.0);
}

TEST(ServeQuery, RunLoadAccumulatesDeterministicChecksums) {
  FeedConfig fc;
  fc.machines = 8;
  fc.horizon_start = SimTime::epoch();
  fc.publish_every = 0;
  AvailabilityFeed feed(fc);
  for (int i = 0; i < 8; ++i) {
    trace::UnavailabilityRecord r;
    r.machine = static_cast<trace::MachineId>(i);
    r.start = SimTime::epoch() + SimDuration::hours(1 + i);
    r.end = SimTime::epoch() + SimDuration::hours(2 + i);
    feed.ingest(r);
  }
  feed.publish();
  const QueryEngine engine(feed);

  LoadSpec spec;
  spec.machines = 8;
  spec.queries = 4000;
  spec.at_hours = 100.0;
  const LoadGenerator gen(spec);
  const LoadStats all = run_load(engine, gen, 0, spec.queries);
  EXPECT_EQ(all.queries, spec.queries);
  EXPECT_GT(all.prob_sum, 0.0);
  EXPECT_LE(all.prob_sum, static_cast<double>(spec.queries));

  // Chunked runs sum to the same checksums (random-access generation).
  const LoadStats head = run_load(engine, gen, 0, 1000);
  const LoadStats tail = run_load(engine, gen, 1000, spec.queries);
  EXPECT_NEAR(head.prob_sum + tail.prob_sum, all.prob_sum,
              1e-9 * all.prob_sum);
  EXPECT_EQ(head.queries + tail.queries, all.queries);
}

}  // namespace
}  // namespace fgcs::serve

// Tests for the guest controller: renice / suspend / resume / terminate
// policy (§3.2) driven by detector states on a simulated machine.
#include <gtest/gtest.h>

#include "fgcs/monitor/guest_controller.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/workload/synthetic.hpp"

namespace fgcs::monitor {
namespace {

using namespace sim::time_literals;

struct ControllerFixture : ::testing::Test {
  ControllerFixture()
      : machine(os::SchedulerParams::linux_2_4(), os::MemoryParams::linux_1gb(),
                5),
        guest(machine.spawn(workload::synthetic_guest(0))),
        detector(ThresholdPolicy::linux_testbed()),
        controller(machine, guest, 0) {}

  void feed(double cpu, double free_mem = 900.0, bool alive = true) {
    machine.run_for(15_s);
    detector.observe({machine.now(), cpu, free_mem, alive});
    controller.apply(detector);
  }

  os::Machine machine;
  os::ProcessId guest;
  UnavailabilityDetector detector;
  GuestController controller;
};

TEST_F(ControllerFixture, S1KeepsDefaultPriority) {
  feed(0.1);
  EXPECT_EQ(machine.process(guest).nice(), 0);
  EXPECT_FALSE(controller.suspended());
  EXPECT_FALSE(controller.terminated());
}

TEST_F(ControllerFixture, S2RenicesTo19) {
  feed(0.4);
  EXPECT_EQ(machine.process(guest).nice(), 19);
  ASSERT_FALSE(controller.actions().empty());
  EXPECT_EQ(controller.actions().back().action,
            GuestAction::kSetLowestPriority);
}

TEST_F(ControllerFixture, ReturnToS1RestoresPriority) {
  feed(0.4);
  feed(0.1);
  EXPECT_EQ(machine.process(guest).nice(), 0);
  EXPECT_EQ(controller.actions().back().action,
            GuestAction::kSetDefaultPriority);
}

TEST_F(ControllerFixture, TransientSpikeSuspendsThenResumes) {
  feed(0.3);
  feed(0.9);  // transient: suspend
  EXPECT_TRUE(controller.suspended());
  EXPECT_EQ(machine.process(guest).state(), os::ProcState::kSuspended);
  feed(0.3);  // spike over: resume
  EXPECT_FALSE(controller.suspended());
  EXPECT_NE(machine.process(guest).state(), os::ProcState::kSuspended);
}

TEST_F(ControllerFixture, SustainedOverloadTerminates) {
  feed(0.3);
  for (int i = 0; i < 8; ++i) feed(0.9);
  EXPECT_TRUE(controller.terminated());
  EXPECT_EQ(machine.process(guest).state(), os::ProcState::kExited);
  EXPECT_EQ(controller.actions().back().action, GuestAction::kTerminate);
  EXPECT_EQ(controller.actions().back().state,
            AvailabilityState::kS3CpuUnavailable);
}

TEST_F(ControllerFixture, MemoryExhaustionTerminatesImmediately) {
  feed(0.3);
  feed(0.3, 100.0);
  EXPECT_TRUE(controller.terminated());
  EXPECT_EQ(controller.actions().back().state,
            AvailabilityState::kS4MemoryThrashing);
}

TEST_F(ControllerFixture, ApplyAfterTerminationIsNoOp) {
  feed(0.3, 100.0);
  ASSERT_TRUE(controller.terminated());
  const auto action_count = controller.actions().size();
  feed(0.1);
  EXPECT_EQ(controller.actions().size(), action_count);
}

TEST_F(ControllerFixture, SuspendedGuestConsumesNoCpu) {
  feed(0.3);
  feed(0.9);  // suspend
  const auto cpu_before = machine.process(guest).cpu_time();
  feed(0.9);  // still transient (30s < 1 min)
  EXPECT_EQ(machine.process(guest).cpu_time(), cpu_before);
}

TEST_F(ControllerFixture, ActionsCarryTimestamps) {
  feed(0.4);
  ASSERT_FALSE(controller.actions().empty());
  EXPECT_EQ(controller.actions().back().time, machine.now());
}

TEST(GuestController, RejectsBadDefaultNice) {
  os::Machine m(os::SchedulerParams::linux_2_4(), os::MemoryParams::linux_1gb(),
                1);
  const auto pid = m.spawn(workload::synthetic_guest(0));
  EXPECT_THROW(GuestController(m, pid, 20), ConfigError);
}

TEST(GuestAction, Names) {
  EXPECT_STREQ(to_string(GuestAction::kTerminate), "terminate");
  EXPECT_STREQ(to_string(GuestAction::kSuspend), "suspend");
  EXPECT_STREQ(to_string(GuestAction::kResume), "resume");
}

}  // namespace
}  // namespace fgcs::monitor

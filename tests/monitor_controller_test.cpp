// Tests for the guest controller: renice / suspend / resume / terminate
// policy (§3.2) driven by detector states on a simulated machine.
#include <gtest/gtest.h>

#include "fgcs/monitor/guest_controller.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/workload/synthetic.hpp"

namespace fgcs::monitor {
namespace {

using namespace sim::time_literals;

struct ControllerFixture : ::testing::Test {
  ControllerFixture()
      : machine(os::SchedulerParams::linux_2_4(), os::MemoryParams::linux_1gb(),
                5),
        guest(machine.spawn(workload::synthetic_guest(0))),
        detector(ThresholdPolicy::linux_testbed()),
        controller(machine, guest, 0) {}

  void feed(double cpu, double free_mem = 900.0, bool alive = true) {
    machine.run_for(15_s);
    detector.observe({machine.now(), cpu, free_mem, alive});
    controller.apply(detector);
  }

  os::Machine machine;
  os::ProcessId guest;
  UnavailabilityDetector detector;
  GuestController controller;
};

TEST_F(ControllerFixture, S1KeepsDefaultPriority) {
  feed(0.1);
  EXPECT_EQ(machine.process(guest).nice(), 0);
  EXPECT_FALSE(controller.suspended());
  EXPECT_FALSE(controller.terminated());
}

TEST_F(ControllerFixture, S2RenicesTo19) {
  feed(0.4);
  EXPECT_EQ(machine.process(guest).nice(), 19);
  ASSERT_FALSE(controller.actions().empty());
  EXPECT_EQ(controller.actions().back().action,
            GuestAction::kSetLowestPriority);
}

TEST_F(ControllerFixture, ReturnToS1RestoresPriority) {
  feed(0.4);
  feed(0.1);
  EXPECT_EQ(machine.process(guest).nice(), 0);
  EXPECT_EQ(controller.actions().back().action,
            GuestAction::kSetDefaultPriority);
}

TEST_F(ControllerFixture, TransientSpikeSuspendsThenResumes) {
  feed(0.3);
  feed(0.9);  // transient: suspend
  EXPECT_TRUE(controller.suspended());
  EXPECT_EQ(machine.process(guest).state(), os::ProcState::kSuspended);
  feed(0.3);  // spike over: resume
  EXPECT_FALSE(controller.suspended());
  EXPECT_NE(machine.process(guest).state(), os::ProcState::kSuspended);
}

TEST_F(ControllerFixture, SustainedOverloadTerminates) {
  feed(0.3);
  for (int i = 0; i < 8; ++i) feed(0.9);
  EXPECT_TRUE(controller.terminated());
  EXPECT_EQ(machine.process(guest).state(), os::ProcState::kExited);
  EXPECT_EQ(controller.actions().back().action, GuestAction::kTerminate);
  EXPECT_EQ(controller.actions().back().state,
            AvailabilityState::kS3CpuUnavailable);
}

TEST_F(ControllerFixture, MemoryExhaustionTerminatesImmediately) {
  feed(0.3);
  feed(0.3, 100.0);
  EXPECT_TRUE(controller.terminated());
  EXPECT_EQ(controller.actions().back().state,
            AvailabilityState::kS4MemoryThrashing);
}

TEST_F(ControllerFixture, ApplyAfterTerminationIsNoOp) {
  feed(0.3, 100.0);
  ASSERT_TRUE(controller.terminated());
  const auto action_count = controller.actions().size();
  feed(0.1);
  EXPECT_EQ(controller.actions().size(), action_count);
}

TEST_F(ControllerFixture, SuspendedGuestConsumesNoCpu) {
  feed(0.3);
  feed(0.9);  // suspend
  const auto cpu_before = machine.process(guest).cpu_time();
  feed(0.9);  // still transient (30s < 1 min)
  EXPECT_EQ(machine.process(guest).cpu_time(), cpu_before);
}

TEST_F(ControllerFixture, ActionsCarryTimestamps) {
  feed(0.4);
  ASSERT_FALSE(controller.actions().empty());
  EXPECT_EQ(controller.actions().back().time, machine.now());
}

TEST(GuestController, RejectsBadDefaultNice) {
  os::Machine m(os::SchedulerParams::linux_2_4(), os::MemoryParams::linux_1gb(),
                1);
  const auto pid = m.spawn(workload::synthetic_guest(0));
  EXPECT_THROW(GuestController(m, pid, 20), ConfigError);
}

TEST(GuestAction, Names) {
  EXPECT_STREQ(to_string(GuestAction::kTerminate), "terminate");
  EXPECT_STREQ(to_string(GuestAction::kSuspend), "suspend");
  EXPECT_STREQ(to_string(GuestAction::kResume), "resume");
  EXPECT_STREQ(to_string(GuestAction::kCheckpoint), "checkpoint");
  EXPECT_STREQ(to_string(GuestAction::kObservedKilled), "observed-killed");
}

TEST_F(ControllerFixture, ExternalKillIsObservedAndTerminal) {
  feed(0.1);
  machine.run_for(15_s);
  machine.terminate(guest);  // injected kill, outside the controller
  detector.observe({machine.now(), 0.1, 900.0, true});
  controller.apply(detector);  // must not touch the dead pid
  EXPECT_TRUE(controller.terminated());
  ASSERT_FALSE(controller.actions().empty());
  EXPECT_EQ(controller.actions().back().action, GuestAction::kObservedKilled);
  // With no checkpointing, everything the guest computed is lost.
  EXPECT_EQ(controller.unsaved_progress(), machine.process(guest).cpu_time());

  const auto count = controller.actions().size();
  feed(0.1);  // further applies are no-ops on the dead guest
  EXPECT_EQ(controller.actions().size(), count);
}

TEST(GuestControllerKill, NaturalExitIsNotReportedAsKill) {
  os::Machine m(os::SchedulerParams::linux_2_4(), os::MemoryParams::linux_1gb(),
                6);
  os::ProcessSpec spec;
  spec.name = "short-guest";
  spec.kind = os::ProcessKind::kGuest;
  spec.program = os::fixed_program({os::Phase::compute(1_s)});
  const auto pid = m.spawn(spec);
  GuestController controller(m, pid, 0);
  UnavailabilityDetector det(ThresholdPolicy::linux_testbed());

  m.run_for(60_s);  // the guest finishes its 1s of work and exits
  ASSERT_EQ(m.process(pid).state(), os::ProcState::kExited);
  EXPECT_FALSE(m.process(pid).killed());

  det.observe({m.now(), 0.1, 900.0, true});
  controller.apply(det);
  EXPECT_TRUE(controller.terminated());
  for (const auto& a : controller.actions()) {
    EXPECT_NE(a.action, GuestAction::kObservedKilled);
  }
  EXPECT_EQ(controller.unsaved_progress(), sim::SimDuration::zero());
}

TEST(GuestControllerCheckpoint, PeriodicCheckpointsBoundLostWork) {
  os::Machine m(os::SchedulerParams::linux_2_4(), os::MemoryParams::linux_1gb(),
                7);
  const auto pid = m.spawn(workload::synthetic_guest(0));
  CheckpointPolicy ckpt;
  ckpt.interval = sim::SimDuration::minutes(1);
  ckpt.cost = sim::SimDuration::seconds(5);
  GuestController controller(m, pid, 0, ckpt);
  UnavailabilityDetector det(ThresholdPolicy::linux_testbed());

  for (int i = 0; i < 20; ++i) {
    m.run_for(15_s);
    det.observe({m.now(), 0.1, 900.0, true});
    controller.apply(det);
  }
  EXPECT_GT(controller.checkpoint_count(), 0u);
  EXPECT_GT(controller.checkpointed_progress(), sim::SimDuration::zero());
  EXPECT_EQ(controller.unsaved_progress(),
            m.process(pid).cpu_time() - controller.checkpointed_progress());
  std::size_t checkpoint_actions = 0;
  for (const auto& a : controller.actions()) {
    if (a.action == GuestAction::kCheckpoint) ++checkpoint_actions;
  }
  EXPECT_EQ(checkpoint_actions, controller.checkpoint_count());

  // Kill the guest: the recorded loss is exactly the unsaved progress.
  const auto unsaved = controller.unsaved_progress();
  m.terminate(pid);
  det.observe({m.now(), 0.1, 900.0, true});
  controller.apply(det);
  EXPECT_EQ(controller.actions().back().action, GuestAction::kObservedKilled);
  EXPECT_EQ(controller.unsaved_progress(), unsaved);
}

TEST(CheckpointPolicyTest, RejectsCostNotBelowInterval) {
  os::Machine m(os::SchedulerParams::linux_2_4(), os::MemoryParams::linux_1gb(),
                8);
  const auto pid = m.spawn(workload::synthetic_guest(0));
  CheckpointPolicy bad;
  bad.interval = sim::SimDuration::seconds(30);
  bad.cost = sim::SimDuration::seconds(30);
  EXPECT_THROW(GuestController(m, pid, 0, bad), ConfigError);
  bad.interval = sim::SimDuration::zero();
  bad.cost = sim::SimDuration::seconds(-1);
  EXPECT_THROW(GuestController(m, pid, 0, bad), ConfigError);
}

}  // namespace
}  // namespace fgcs::monitor

// Tests for the simulated machine: accounting invariants, duty-cycle
// fidelity, priority behaviour, process control, thrashing, determinism.
#include <gtest/gtest.h>

#include "fgcs/os/machine.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/workload/synthetic.hpp"

namespace fgcs::os {
namespace {

using namespace sim::time_literals;
using workload::synthetic_guest;
using workload::synthetic_host;

Machine make_machine(std::uint64_t seed = 42) {
  return Machine(SchedulerParams::linux_2_4(), MemoryParams::linux_1gb(),
                 seed);
}

double measure_usage(Machine& m, ProcessId pid, sim::SimDuration warmup,
                     sim::SimDuration window) {
  m.run_for(warmup);
  const sim::SimDuration before = m.process(pid).cpu_time();
  m.run_for(window);
  return m.process(pid).usage_since(before, window);
}

TEST(Machine, AccountingInvariantHoldsAlways) {
  Machine m = make_machine();
  m.spawn(synthetic_host(0.4));
  m.spawn(synthetic_guest(19));
  for (int i = 0; i < 20; ++i) {
    m.run_for(7_s);
    const CpuTotals t = m.totals();
    EXPECT_EQ(t.total().as_micros(), m.now().as_micros());
  }
}

TEST(Machine, IdleMachineAccumulatesOnlyIdle) {
  Machine m = make_machine();
  m.run_for(60_s);
  EXPECT_EQ(m.totals().idle, 60_s);
  EXPECT_EQ(m.totals().host, sim::SimDuration::zero());
}

TEST(Machine, CpuBoundProcessUsesFullCpu) {
  Machine m = make_machine();
  const ProcessId pid = m.spawn(synthetic_guest(0));
  const double usage = measure_usage(m, pid, 10_s, 60_s);
  EXPECT_NEAR(usage, 1.0, 0.01);
}

// The paper's synthetic programs hit their target isolated usages; verify
// across the whole L_H grid of Figure 1.
class DutyCycleTest : public ::testing::TestWithParam<double> {};

TEST_P(DutyCycleTest, IsolatedUsageMatchesTarget) {
  const double target = GetParam();
  Machine m = make_machine(123);
  const ProcessId pid = m.spawn(synthetic_host(target));
  const double usage = measure_usage(m, pid, 20_s, 300_s);
  EXPECT_NEAR(usage, target, 0.02) << "target " << target;
}

INSTANTIATE_TEST_SUITE_P(LhGrid, DutyCycleTest,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7,
                                           0.8, 0.9, 1.0));

TEST(Machine, EqualPriorityCpuHogsShareEvenly) {
  Machine m = make_machine();
  const ProcessId a = m.spawn(synthetic_guest(0));
  const ProcessId b = m.spawn(synthetic_guest(0));
  m.run_for(60_s);
  const double ua = m.process(a).cpu_time().as_seconds();
  const double ub = m.process(b).cpu_time().as_seconds();
  EXPECT_NEAR(ua / (ua + ub), 0.5, 0.02);
  EXPECT_NEAR(ua + ub, 60.0, 0.5);
}

TEST(Machine, Nice19GetsSmallButNonzeroShare) {
  Machine m = make_machine();
  const ProcessId hog = m.spawn(synthetic_guest(0));
  const ProcessId nice19 = m.spawn(synthetic_guest(19));
  m.run_for(120_s);
  const double share =
      m.process(nice19).cpu_time() /
      (m.process(hog).cpu_time() + m.process(nice19).cpu_time());
  // refill(0)=8, refill(19)=1 -> roughly 1/9.
  EXPECT_GT(share, 0.05);
  EXPECT_LT(share, 0.18);
}

TEST(Machine, SleeperPreemptsCpuHog) {
  // A light host process should be nearly unaffected by a guest hog
  // (the sleeper-credit mechanism; Figure 1(a) below Th1).
  Machine m = make_machine(7);
  const ProcessId host = m.spawn(synthetic_host(0.1));
  m.spawn(synthetic_guest(0));
  const double usage = measure_usage(m, host, 30_s, 300_s);
  EXPECT_GT(usage, 0.09);
}

TEST(Machine, RenicedGuestStealsLess) {
  auto run_with_nice = [](int nice) {
    Machine m = make_machine(9);
    const ProcessId host = m.spawn(synthetic_host(0.8));
    m.spawn(synthetic_guest(nice));
    m.run_for(30_s);
    const sim::SimDuration before = m.process(host).cpu_time();
    m.run_for(240_s);
    return m.process(host).usage_since(before, 240_s);
  };
  EXPECT_GT(run_with_nice(19), run_with_nice(0) + 0.1);
}

TEST(Machine, ReniceTakesEffectMidRun) {
  Machine m = make_machine();
  const ProcessId host = m.spawn(synthetic_host(0.9));
  const ProcessId guest = m.spawn(synthetic_guest(0));
  m.run_for(60_s);
  const sim::SimDuration g0 = m.process(guest).cpu_time();
  m.renice(guest, 19);
  EXPECT_EQ(m.process(guest).nice(), 19);
  m.run_for(60_s);
  const double guest_rate_after =
      (m.process(guest).cpu_time() - g0) / 60_s;
  EXPECT_LT(guest_rate_after, 0.25);
  (void)host;
}

TEST(Machine, ReniceValidation) {
  Machine m = make_machine();
  const ProcessId pid = m.spawn(synthetic_guest(0));
  EXPECT_THROW(m.renice(pid, 20), ConfigError);
  EXPECT_THROW(m.renice(pid, -1), ConfigError);
  EXPECT_THROW(m.renice(99, 5), ConfigError);
}

TEST(Machine, SuspendStopsExecution) {
  Machine m = make_machine();
  const ProcessId guest = m.spawn(synthetic_guest(0));
  m.run_for(10_s);
  m.suspend(guest);
  const sim::SimDuration before = m.process(guest).cpu_time();
  m.run_for(30_s);
  EXPECT_EQ(m.process(guest).cpu_time(), before);
  EXPECT_EQ(m.process(guest).state(), ProcState::kSuspended);
}

TEST(Machine, ResumeContinuesExecution) {
  Machine m = make_machine();
  const ProcessId guest = m.spawn(synthetic_guest(0));
  m.run_for(10_s);
  m.suspend(guest);
  m.run_for(10_s);
  m.resume(guest);
  const sim::SimDuration before = m.process(guest).cpu_time();
  m.run_for(10_s);
  EXPECT_GT(m.process(guest).cpu_time(), before);
}

TEST(Machine, SuspendResumeIdempotent) {
  Machine m = make_machine();
  const ProcessId pid = m.spawn(synthetic_guest(0));
  m.suspend(pid);
  m.suspend(pid);
  m.resume(pid);
  m.resume(pid);
  EXPECT_EQ(m.process(pid).state(), ProcState::kRunnable);
}

TEST(Machine, SuspendedSleeperResumesAndWakes) {
  Machine m = make_machine();
  const ProcessId pid = m.spawn(synthetic_host(0.2));
  // Run until the process sleeps, then suspend through its wake time.
  while (m.process(pid).state() != ProcState::kSleeping) m.run_for(10_ms);
  m.suspend(pid);
  m.run_for(30_s);
  m.resume(pid);
  m.run_for(5_s);
  EXPECT_NE(m.process(pid).state(), ProcState::kSuspended);
  EXPECT_NE(m.process(pid).state(), ProcState::kExited);
}

TEST(Machine, TerminateEndsProcess) {
  Machine m = make_machine();
  const ProcessId pid = m.spawn(synthetic_guest(0));
  m.run_for(5_s);
  m.terminate(pid);
  EXPECT_EQ(m.process(pid).state(), ProcState::kExited);
  EXPECT_EQ(m.process(pid).exit_time(), m.now());
  EXPECT_THROW(m.terminate(pid), ConfigError);
  EXPECT_EQ(m.live_count(), 0u);
}

TEST(Machine, FixedProgramExits) {
  Machine m = make_machine();
  ProcessSpec spec;
  spec.name = "oneshot";
  spec.program = fixed_program({Phase::compute(2_s), Phase::sleep(1_s),
                                Phase::compute(1_s)});
  const ProcessId pid = m.spawn(spec);
  m.run_for(60_s);
  EXPECT_EQ(m.process(pid).state(), ProcState::kExited);
  EXPECT_NEAR(m.process(pid).cpu_time().as_seconds(), 3.0, 0.05);
}

TEST(Machine, FreeMemoryTracksResidentSets) {
  Machine m = make_machine();
  const double base = m.free_memory_mb();
  ProcessSpec spec = synthetic_guest(0);
  spec.resident_mb = 150.0;
  const ProcessId pid = m.spawn(spec);
  EXPECT_DOUBLE_EQ(m.free_memory_mb(), base - 150.0);
  m.suspend(pid);
  EXPECT_DOUBLE_EQ(m.free_memory_mb(), base);  // pages evictable
  m.resume(pid);
  m.terminate(pid);
  EXPECT_DOUBLE_EQ(m.free_memory_mb(), base);
}

TEST(Machine, ThrashingSlowsProgress) {
  Machine m(SchedulerParams::solaris_ts(), MemoryParams::solaris_384mb(), 1);
  ProcessSpec big = synthetic_guest(0);
  big.resident_mb = 200.0;
  big.working_set_mb = 200.0;
  const ProcessId a = m.spawn(big);
  big.name = "big2";
  m.spawn(big);
  EXPECT_TRUE(m.is_thrashing());
  EXPECT_LT(m.current_efficiency(), 1.0);
  m.run_for(60_s);
  // Two CPU-bound processes on one CPU for 60s would get ~60s total;
  // thrashing must cut that substantially.
  const double total = (m.totals().guest).as_seconds();
  EXPECT_LT(total, 45.0);
  EXPECT_GT(m.thrash_time(), 50_s);
  (void)a;
}

TEST(Machine, SuspensionRelievesThrashing) {
  Machine m(SchedulerParams::solaris_ts(), MemoryParams::solaris_384mb(), 1);
  ProcessSpec big = synthetic_guest(0);
  big.resident_mb = 200.0;
  big.working_set_mb = 200.0;
  const ProcessId a = m.spawn(big);
  big.name = "big2";
  m.spawn(big);
  ASSERT_TRUE(m.is_thrashing());
  m.suspend(a);
  EXPECT_FALSE(m.is_thrashing());
  EXPECT_DOUBLE_EQ(m.current_efficiency(), 1.0);
}

TEST(Machine, DeterministicAcrossRuns) {
  auto run = [] {
    Machine m = make_machine(777);
    m.spawn(synthetic_host(0.3));
    m.spawn(synthetic_host(0.5));
    m.spawn(synthetic_guest(19));
    m.run_for(120_s);
    return std::make_pair(m.totals().host.as_micros(),
                          m.totals().guest.as_micros());
  };
  EXPECT_EQ(run(), run());
}

TEST(Machine, DifferentSeedsDifferentJitter) {
  auto host_cpu = [](std::uint64_t seed) {
    Machine m = make_machine(seed);
    m.spawn(synthetic_host(0.5));
    m.spawn(synthetic_guest(0));
    m.run_for(120_s);
    return m.totals().host.as_micros();
  };
  EXPECT_NE(host_cpu(1), host_cpu(2));
}

TEST(Machine, ProcessSpecValidation) {
  Machine m = make_machine();
  ProcessSpec bad;
  bad.name = "noprog";  // no program
  EXPECT_THROW(m.spawn(bad), ConfigError);

  ProcessSpec bad_nice = synthetic_guest(0);
  bad_nice.nice = 25;
  EXPECT_THROW(m.spawn(bad_nice), ConfigError);
}

TEST(Machine, WorkingSetDefaultsToResident) {
  Machine m = make_machine();
  ProcessSpec spec = synthetic_guest(0);
  spec.resident_mb = 64.0;
  spec.working_set_mb = -1.0;
  const ProcessId pid = m.spawn(spec);
  EXPECT_DOUBLE_EQ(m.process(pid).working_set_mb(), 64.0);
}

TEST(Machine, RunUntilPastRequiresForwardTime) {
  Machine m = make_machine();
  m.run_for(1_s);
  EXPECT_NO_THROW(m.run_until(m.now()));
}

TEST(CpuTotals, HostUsageIncludesSystemProcesses) {
  CpuTotals a{}, b{};
  b.host = 10_s;
  b.system = 5_s;
  b.idle = 85_s;
  EXPECT_DOUBLE_EQ(CpuTotals::host_usage(a, b), 0.15);
}

TEST(CpuTotals, ZeroWallReturnsZero) {
  CpuTotals a{};
  EXPECT_DOUBLE_EQ(CpuTotals::host_usage(a, a), 0.0);
  EXPECT_DOUBLE_EQ(CpuTotals::guest_usage(a, a), 0.0);
}

}  // namespace
}  // namespace fgcs::os

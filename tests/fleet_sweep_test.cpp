// The sharded fleet sweep engine: bit-identity with run_testbed, spill
// segments, deterministic partitioning, and obs shard merging.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "fgcs/fleet/fleet.hpp"
#include "fgcs/obs/observer.hpp"
#include "fgcs/trace/format_v2.hpp"
#include "fgcs/trace/index.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::fleet {
namespace {

namespace fs = std::filesystem;

class FleetSweep : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fgcs_fleet_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

core::TestbedConfig small_testbed() {
  core::TestbedConfig config;
  config.machines = 10;
  config.days = 10;
  config.seed = 20060806;
  return config;
}

void expect_equal_records(const trace::TraceSet& a, const trace::TraceSet& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.machine_count(), b.machine_count());
  const auto ra = a.records();
  const auto rb = b.records();
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].machine, rb[i].machine) << i;
    EXPECT_EQ(ra[i].start, rb[i].start) << i;
    EXPECT_EQ(ra[i].end, rb[i].end) << i;
    EXPECT_EQ(ra[i].cause, rb[i].cause) << i;
    EXPECT_EQ(ra[i].host_cpu, rb[i].host_cpu) << i;
    EXPECT_EQ(ra[i].free_mem_mb, rb[i].free_mem_mb) << i;
  }
}

TEST(FleetConfig, Validation) {
  FleetConfig config;
  config.testbed = small_testbed();
  config.testbed.machines = 0;
  EXPECT_THROW(run_fleet(config), ConfigError);
}

TEST(FleetConfig, ShardPartitionIsCappedAndConfigDriven) {
  FleetConfig config;
  config.testbed = small_testbed();
  config.testbed.machines = 2000;
  // Default: capped shard count, never a function of the thread count.
  const auto auto_size = config.effective_shard_machines();
  EXPECT_GE(auto_size, 2000u / 64u);
  config.threads = 7;
  EXPECT_EQ(config.effective_shard_machines(), auto_size);
  config.shard_machines = 3;
  EXPECT_EQ(config.effective_shard_machines(), 3u);
}

TEST_F(FleetSweep, InMemoryRunIsBitIdenticalToTestbed) {
  const auto reference = core::run_testbed(small_testbed());

  FleetConfig config;
  config.testbed = small_testbed();
  config.shard_machines = 3;  // 4 shards, uneven tail
  config.threads = 2;
  const auto result = run_fleet(config);

  EXPECT_FALSE(result.spilled);
  EXPECT_EQ(result.machines, 10u);
  EXPECT_EQ(result.machine_days(), 100u);
  EXPECT_EQ(result.total_records, reference.size());
  ASSERT_EQ(result.shards.size(), 4u);
  EXPECT_EQ(result.shards.back().machine_count, 1u);

  ASSERT_TRUE(result.trace.has_value());
  expect_equal_records(*result.trace, reference);
  // Shard-major merge order is the canonical order: no re-sort happened.
  EXPECT_EQ(result.trace->sort_passes(), 0u);
  expect_equal_records(result.load_trace(), reference);
}

TEST_F(FleetSweep, SpilledRunStreamsValidSegments) {
  const auto reference = core::run_testbed(small_testbed());

  FleetConfig config;
  config.testbed = small_testbed();
  config.shard_machines = 4;  // shards of 4, 4, 2 machines
  config.threads = 2;
  config.spill_dir = dir_.string();
  const auto result = run_fleet(config);

  EXPECT_TRUE(result.spilled);
  EXPECT_FALSE(result.trace.has_value());
  EXPECT_EQ(result.total_records, reference.size());
  ASSERT_EQ(result.shards.size(), 3u);

  // Each segment is a valid v2 file covering exactly its shard's machines.
  std::uint64_t sum = 0;
  for (const auto& shard : result.shards) {
    ASSERT_TRUE(fs::exists(shard.segment_path)) << shard.segment_path;
    const trace::TraceView view(shard.segment_path);
    EXPECT_EQ(view.size(), shard.records);
    view.for_each([&](const trace::UnavailabilityRecord& r) {
      EXPECT_GE(r.machine, shard.first_machine);
      EXPECT_LT(r.machine, shard.first_machine + shard.machine_count);
    });
    sum += shard.records;
  }
  EXPECT_EQ(sum, result.total_records);

  // Merging the segments reproduces the reference bit-for-bit, without a
  // sort pass (segments stream back in canonical order).
  const auto merged = result.load_trace();
  EXPECT_EQ(merged.sort_passes(), 0u);
  expect_equal_records(merged, reference);

  // The analyzer stack can index a segment directly, zero-copy.
  const trace::TraceView view(result.shards.front().segment_path);
  const trace::TraceIndex index(view);
  const trace::TraceIndex whole(reference);
  const auto t0 = reference.horizon_start() + sim::SimDuration::hours(30);
  const auto t1 = t0 + sim::SimDuration::hours(4);
  for (trace::MachineId m = 0; m < result.shards.front().machine_count; ++m) {
    EXPECT_EQ(index.any_overlap(m, t0, t1), whole.any_overlap(m, t0, t1));
    EXPECT_EQ(index.count_starts_in(m, t0, t1),
              whole.count_starts_in(m, t0, t1));
  }
}

TEST_F(FleetSweep, SegmentBytesDoNotDependOnThreadCount) {
  auto read_all = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };

  FleetConfig config;
  config.testbed = small_testbed();
  config.shard_machines = 3;

  config.spill_dir = (dir_ / "t1").string();
  config.threads = 1;
  const auto one = run_fleet(config);

  config.spill_dir = (dir_ / "t4").string();
  config.threads = 4;
  const auto four = run_fleet(config);

  ASSERT_EQ(one.shards.size(), four.shards.size());
  for (std::size_t s = 0; s < one.shards.size(); ++s) {
    EXPECT_EQ(one.shards[s].first_machine, four.shards[s].first_machine);
    EXPECT_EQ(one.shards[s].records, four.shards[s].records);
    EXPECT_EQ(read_all(one.shards[s].segment_path),
              read_all(four.shards[s].segment_path))
        << "segment " << s;
  }
}

TEST_F(FleetSweep, ShardCountersFoldIntoTheObserver) {
  FleetConfig config;
  config.testbed = small_testbed();
  config.shard_machines = 5;
  config.threads = 2;

  obs::Observer observer;
  {
    obs::ScopedObserver guard(&observer);
    const auto result = run_fleet(config);

    // Per-shard counters captured real work...
    std::uint64_t shard_samples = 0;
    for (const auto& shard : result.shards) {
      EXPECT_GT(shard.counters.detector_samples, 0u);
      EXPECT_GT(shard.counters.detector_episodes_opened, 0u);
      EXPECT_EQ(shard.counters.testbed_machines, shard.machine_count);
      shard_samples += shard.counters.detector_samples;
    }
    // ...and the merged registry totals equal the per-shard sums.
    EXPECT_EQ(observer.metrics().counter("detector.samples").value(),
              shard_samples);
    EXPECT_EQ(observer.metrics().counter("testbed.machines_simulated").value(),
              10u);
  }

  // A plain testbed run on a fresh observer produces the same totals: the
  // shard path loses nothing relative to the atomic path.
  obs::Observer direct;
  {
    obs::ScopedObserver guard(&direct);
    core::run_testbed(small_testbed());
  }
  EXPECT_EQ(direct.metrics().counter("detector.samples").value(),
            observer.metrics().counter("detector.samples").value());
  EXPECT_EQ(direct.metrics().counter("detector.episodes_opened").value(),
            observer.metrics().counter("detector.episodes_opened").value());
  EXPECT_EQ(direct.metrics().counter("sim.events_executed").value(),
            observer.metrics().counter("sim.events_executed").value());
}

TEST_F(FleetSweep, SpillDirectoryIsCreated) {
  FleetConfig config;
  config.testbed = small_testbed();
  config.testbed.machines = 2;
  config.testbed.days = 3;
  config.spill_dir = (dir_ / "nested").string();
  const auto result = run_fleet(config);
  EXPECT_TRUE(fs::is_directory(dir_ / "nested"));
  EXPECT_EQ(result.segment_paths().size(), result.shards.size());
}

}  // namespace
}  // namespace fgcs::fleet

// End-to-end integration tests across modules:
//   testbed -> trace I/O -> analyzer -> predictors
//   machine + sampler + detector + guest controller closed loop
#include <gtest/gtest.h>

#include <sstream>

#include "fgcs/core/analyzer.hpp"
#include "fgcs/core/prediction_study.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/monitor/guest_controller.hpp"
#include "fgcs/monitor/machine_sampler.hpp"
#include "fgcs/predict/history_window.hpp"
#include "fgcs/trace/io.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/workload/synthetic.hpp"

namespace fgcs {
namespace {

using namespace sim::time_literals;

TEST(Integration, TestbedTraceSurvivesSerializationAndAnalysis) {
  core::TestbedConfig cfg;
  cfg.machines = 5;
  cfg.days = 21;
  const auto trace = core::run_testbed(cfg);

  // Round-trip through the binary format.
  std::stringstream buffer;
  trace::write_trace_binary(trace, buffer);
  const auto loaded = trace::read_trace_binary(buffer);

  // Analysis results must be identical on the loaded trace.
  const core::TraceAnalyzer a1(trace), a2(loaded);
  const auto t1 = a1.table2();
  const auto t2 = a2.table2();
  EXPECT_EQ(t1.total.min, t2.total.min);
  EXPECT_EQ(t1.total.max, t2.total.max);
  EXPECT_DOUBLE_EQ(a1.intervals().weekday.mean_hours,
                   a2.intervals().weekday.mean_hours);
}

TEST(Integration, PredictionStudyRanksHistoryWindowAboveOblivious) {
  core::TestbedConfig cfg;
  cfg.machines = 6;
  cfg.days = 35;
  const auto trace = core::run_testbed(cfg);

  core::PredictionStudyConfig study;
  study.train_days = 21;
  study.windows = {2_h};
  study.stride = 2_h;
  const auto rows =
      core::run_prediction_study(trace, trace::TraceCalendar{}, study);

  double history_brier = -1.0, oblivious_brier = -1.0;
  for (const auto& row : rows) {
    if (row.result.predictor == "history-window(k=8)") {
      history_brier = row.result.brier;
    }
    if (row.result.predictor == "always-available") {
      oblivious_brier = row.result.brier;
    }
  }
  ASSERT_GE(history_brier, 0.0);
  ASSERT_GE(oblivious_brier, 0.0);
  EXPECT_LT(history_brier, oblivious_brier);
}

TEST(Integration, PredictionStudyValidation) {
  core::TestbedConfig cfg;
  cfg.machines = 1;
  cfg.days = 7;
  const auto trace = core::run_testbed(cfg);
  core::PredictionStudyConfig study;
  study.train_days = 10;  // longer than the trace
  EXPECT_THROW(
      core::run_prediction_study(trace, trace::TraceCalendar{}, study),
      ConfigError);
}

// Closed loop: the monitor samples a live machine, the detector classifies,
// the controller acts on the guest — the full §3/§4 pipeline.
TEST(Integration, MonitorControlsGuestOnLiveMachine) {
  os::Machine machine(os::SchedulerParams::linux_2_4(),
                      os::MemoryParams::linux_1gb(), 2026);
  // Host: a staged workload — idle, then moderate, then overload.
  os::ProcessSpec host;
  host.name = "staged-host";
  host.kind = os::ProcessKind::kHost;
  std::vector<os::Phase> phases;
  phases.push_back(os::Phase::sleep(2_min));  // stage 1: idle (S1)
  for (int i = 0; i < 16; ++i) {
    // stage 2: ~40% duty in short cycles -> sustained S2-level load.
    phases.push_back(os::Phase::compute(6_s));
    phases.push_back(os::Phase::sleep(9_s));
  }
  // stage 3: overload -> S3.
  phases.push_back(os::Phase::compute(sim::SimDuration::minutes(20)));
  host.program = os::fixed_program(std::move(phases));
  machine.spawn(host);
  const os::ProcessId guest = machine.spawn(workload::synthetic_guest(0));

  monitor::UnavailabilityDetector detector(
      monitor::ThresholdPolicy::linux_testbed());
  monitor::MachineSampler sampler(machine);
  monitor::GuestController controller(machine, guest);

  bool saw_s2 = false;
  for (int step = 0; step < 60 && !controller.terminated(); ++step) {
    machine.run_for(15_s);
    detector.observe(sampler.sample());
    controller.apply(detector);
    if (detector.state() == monitor::AvailabilityState::kS2LowestPriority) {
      saw_s2 = true;
    }
  }

  EXPECT_TRUE(saw_s2);  // the moderate stage reniced the guest
  EXPECT_TRUE(controller.terminated());  // the overload stage killed it
  EXPECT_EQ(machine.process(guest).state(), os::ProcState::kExited);
  ASSERT_FALSE(detector.episodes().empty());
  EXPECT_EQ(detector.episodes().back().cause,
            monitor::AvailabilityState::kS3CpuUnavailable);
}

TEST(Integration, DetectorEpisodesMatchTraceRecords) {
  // run_testbed_machine must faithfully copy the detector's episodes.
  core::TestbedConfig cfg;
  cfg.machines = 1;
  cfg.days = 7;
  const auto records = core::run_testbed_machine(cfg, 0);
  ASSERT_FALSE(records.empty());
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].start, records[i - 1].end)
        << "episodes must not overlap";
  }
}

}  // namespace
}  // namespace fgcs

// Tests for the baseline predictors.
#include <gtest/gtest.h>

#include "fgcs/predict/baselines.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::predict {
namespace {

using namespace sim::time_literals;
using monitor::AvailabilityState;
using sim::SimDuration;
using sim::SimTime;

trace::TraceSet trace_with_burst() {
  // Machine 0: three failures packed into the hour before t=10d.
  trace::TraceSet t(1, SimTime::epoch(),
                    SimTime::epoch() + SimDuration::days(20));
  const SimTime anchor = SimTime::epoch() + SimDuration::days(10);
  for (int i = 1; i <= 3; ++i) {
    trace::UnavailabilityRecord r;
    r.machine = 0;
    r.start = anchor - SimDuration::minutes(15 * i);
    r.end = r.start + 5_min;
    r.cause = AvailabilityState::kS3CpuUnavailable;
    t.add(r);
  }
  return t;
}

TEST(AlwaysAvailable, ConstantProbability) {
  AlwaysAvailablePredictor p(0.9);
  PredictionQuery q{0, SimTime::epoch(), 1_h};
  EXPECT_DOUBLE_EQ(p.predict_availability(q), 0.9);
  EXPECT_DOUBLE_EQ(p.predict_occurrences(q), 0.0);
  EXPECT_THROW(AlwaysAvailablePredictor(1.5), ConfigError);
}

TEST(RecentRate, HighRateAfterBurst) {
  const auto t = trace_with_burst();
  const trace::TraceIndex index(t);
  const trace::TraceCalendar cal;
  RecentRatePredictor p(SimDuration::hours(24));
  p.attach(index, cal);
  const SimTime anchor = SimTime::epoch() + SimDuration::days(10);
  // Rate = 3 per 24h = 0.125/h -> P(avail 2h) = exp(-0.25) ~ 0.78.
  PredictionQuery q{0, anchor, 2_h};
  EXPECT_NEAR(p.predict_availability(q), std::exp(-0.25), 1e-9);
  EXPECT_NEAR(p.predict_occurrences(q), 0.25, 1e-9);
}

TEST(RecentRate, CleanHistoryPredictsAvailable) {
  const auto t = trace_with_burst();
  const trace::TraceIndex index(t);
  const trace::TraceCalendar cal;
  RecentRatePredictor p(SimDuration::hours(24));
  p.attach(index, cal);
  // Two days later, the burst is outside the lookback.
  PredictionQuery q{0, SimTime::epoch() + SimDuration::days(12), 2_h};
  EXPECT_DOUBLE_EQ(p.predict_availability(q), 1.0);
}

TEST(RecentRate, LookbackValidation) {
  EXPECT_THROW(RecentRatePredictor(SimDuration::zero()), ConfigError);
}

TEST(SaturatingCounter, LearnsStableFailurePattern) {
  // Machine fails every weekday 10-11 for six weeks (cf. §5.3's pattern).
  trace::TraceSet t(1, SimTime::epoch(),
                    SimTime::epoch() + SimDuration::days(42));
  trace::TraceCalendar cal;
  for (int d = 0; d < 42; ++d) {
    if (cal.is_weekend_day(d)) continue;
    trace::UnavailabilityRecord r;
    r.machine = 0;
    r.start = cal.day_start(d) + 10_h;
    r.end = r.start + 1_h;
    r.cause = AvailabilityState::kS3CpuUnavailable;
    t.add(r);
  }
  const trace::TraceIndex index(t);
  SaturatingCounterPredictor p;
  p.attach(index, cal);
  // Day 35 (Monday) 10:00: the last weekday windows all failed.
  PredictionQuery bad{0, cal.day_start(35) + 10_h, 1_h};
  EXPECT_DOUBLE_EQ(p.predict_availability(bad), 0.0);
  EXPECT_DOUBLE_EQ(p.predict_occurrences(bad), 1.0);
  // 14:00 windows were always clean.
  PredictionQuery good{0, cal.day_start(35) + 14_h, 1_h};
  EXPECT_DOUBLE_EQ(p.predict_availability(good), 1.0);
  EXPECT_DOUBLE_EQ(p.predict_occurrences(good), 0.0);
}

TEST(SaturatingCounter, NoHistoryDefaultsAvailable) {
  trace::TraceSet t(1, SimTime::epoch(),
                    SimTime::epoch() + SimDuration::days(5));
  trace::UnavailabilityRecord r;
  r.machine = 0;
  r.start = SimTime::epoch() + 1_h;
  r.end = r.start + 1_min;
  r.cause = AvailabilityState::kS5MachineUnavailable;
  t.add(r);
  const trace::TraceIndex index(t);
  const trace::TraceCalendar cal;
  SaturatingCounterPredictor p;
  p.attach(index, cal);
  PredictionQuery q{0, cal.day_start(0) + 12_h, 1_h};
  EXPECT_DOUBLE_EQ(p.predict_availability(q), 1.0);
}

}  // namespace
}  // namespace fgcs::predict

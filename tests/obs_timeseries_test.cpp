// Sim-time-aligned telemetry: TimeSeriesShard binning (including the
// bin-cache and pending-count fast paths), the FGCSMET1 writer/view
// roundtrip with block skipping, shard merge, and byte-determinism of
// the segment format.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fgcs/obs/metrics.hpp"
#include "fgcs/obs/timeseries.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::obs {
namespace {

using sim::SimDuration;
using sim::SimTime;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(ObsTimeSeries, WriterViewRoundtrip) {
  const std::string path = temp_path("obs_ts_roundtrip.met1");
  const SimTime start = SimTime::epoch();
  const SimTime end = start + SimDuration::hours(4);

  {
    MetricsWriterV1 writer(path, start, end, SimDuration::hours(1));
    const std::uint32_t a = writer.series_id("alpha", SeriesKind::kCounter);
    const std::uint32_t b = writer.series_id("beta", SeriesKind::kGauge);
    EXPECT_EQ(writer.series_id("alpha", SeriesKind::kCounter), a);
    writer.append(a, start + SimDuration::hours(1), 10.0);
    writer.append(a, start + SimDuration::hours(2), 25.0);
    writer.append(b, start + SimDuration::hours(2), -1.5);
    writer.finish();
    EXPECT_EQ(writer.samples_written(), 3u);
  }

  MetricsView view(path);
  EXPECT_EQ(view.horizon_start(), start);
  EXPECT_EQ(view.horizon_end(), end);
  EXPECT_EQ(view.resolution(), SimDuration::hours(1));
  EXPECT_EQ(view.size(), 3u);
  ASSERT_EQ(view.series().size(), 2u);
  EXPECT_EQ(view.series()[0].name, "alpha");
  EXPECT_EQ(view.series()[1].kind, SeriesKind::kGauge);
  ASSERT_TRUE(view.find_series("beta").has_value());
  EXPECT_FALSE(view.find_series("gamma").has_value());

  std::vector<MetricPoint> points;
  view.for_each([&](const MetricPoint& p) { points.push_back(p); });
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].at, start + SimDuration::hours(1));
  EXPECT_DOUBLE_EQ(points[1].value, 25.0);
  EXPECT_DOUBLE_EQ(points[2].value, -1.5);
  std::remove(path.c_str());
}

TEST(ObsTimeSeries, MultiBlockSegmentFiltersBySeriesAndTime) {
  const std::string path = temp_path("obs_ts_blocks.met1");
  const SimTime start = SimTime::epoch();
  const SimTime end = start + SimDuration::hours(100);

  {
    // Tiny blocks force several of them so for_each_of exercises the
    // block-skip path on both the series and the time axis.
    MetricsWriterV1 writer(path, start, end, SimDuration::hours(1), 8);
    const std::uint32_t a = writer.series_id("alpha", SeriesKind::kCounter);
    const std::uint32_t b = writer.series_id("beta", SeriesKind::kCounter);
    for (int i = 0; i < 50; ++i) {
      writer.append(a, start + SimDuration::hours(i), i);
      writer.append(b, start + SimDuration::hours(i), 100 + i);
    }
    writer.finish();
  }

  MetricsView view(path);
  EXPECT_GE(view.block_count(), 2u);
  EXPECT_EQ(view.size(), 100u);

  const auto b = view.find_series("beta");
  ASSERT_TRUE(b.has_value());
  std::vector<double> values;
  view.for_each_of(*b, start + SimDuration::hours(10),
                   start + SimDuration::hours(12),
                   [&](const MetricPoint& p) { values.push_back(p.value); });
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 110.0);
  EXPECT_DOUBLE_EQ(values[2], 112.0);
  std::remove(path.c_str());
}

TEST(ObsTimeSeries, ShardBinsSamplesIncludingEdgeAndCachePaths) {
  const SimTime start = SimTime::epoch();
  const SimTime end = start + SimDuration::hours(3);
  TimeSeriesShard shard(start, end, SimDuration::hours(1));
  EXPECT_EQ(shard.bin_count(), 3u);

  // Repeated hits in one bin ride the pending-count fast path; the total
  // must settle regardless of when it is read.
  for (int i = 0; i < 100; ++i) {
    shard.on_sample(start + SimDuration::minutes(30) + SimDuration::seconds(i));
  }
  EXPECT_EQ(shard.total_samples(), 100u);
  shard.on_sample(start + SimDuration::minutes(90));   // second bin
  shard.on_sample(start + SimDuration::minutes(30));   // back to the first
  // Out-of-horizon samples are absorbed by the edge bins, not dropped.
  shard.on_sample(start - SimDuration::hours(5));
  shard.on_sample(end + SimDuration::hours(5));
  EXPECT_EQ(shard.total_samples(), 104u);
}

TEST(ObsTimeSeries, AddFoldsShardsWithMatchingGeometry) {
  const SimTime start = SimTime::epoch();
  const SimTime end = start + SimDuration::hours(2);
  TimeSeriesShard a(start, end, SimDuration::hours(1));
  TimeSeriesShard b(start, end, SimDuration::hours(1));
  a.on_sample(start + SimDuration::minutes(10));
  b.on_sample(start + SimDuration::minutes(20));
  b.on_sample(start + SimDuration::minutes(70));
  b.on_transition(start + SimDuration::minutes(70), 3);
  a.add(b);
  EXPECT_EQ(a.total_samples(), 3u);
  EXPECT_EQ(b.total_samples(), 2u);  // add() must not disturb the source
}

TEST(ObsTimeSeries, SegmentBytesAreDeterministic) {
  const SimTime start = SimTime::epoch();
  const SimTime end = start + SimDuration::hours(6);
  const auto write_one = [&](const std::string& path) {
    TimeSeriesShard shard(start, end, SimDuration::hours(1));
    for (int i = 0; i < 500; ++i) {
      shard.on_sample(start + SimDuration::minutes(i));
    }
    shard.on_episode_opened(start + SimDuration::hours(1));
    shard.on_episode_closed(start + SimDuration::hours(2),
                            SimDuration::minutes(45));
    MetricsWriterV1 writer(path, start, end, SimDuration::hours(1));
    shard.write_series(writer, {{"shard", "0001"}});
    writer.finish();
  };
  const std::string p1 = temp_path("obs_ts_det_a.met1");
  const std::string p2 = temp_path("obs_ts_det_b.met1");
  write_one(p1);
  write_one(p2);
  const std::string b1 = slurp(p1);
  const std::string b2 = slurp(p2);
  EXPECT_FALSE(b1.empty());
  EXPECT_EQ(b1, b2);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(ObsTimeSeries, TruncatedSegmentIsAnIoError) {
  const std::string path = temp_path("obs_ts_trunc.met1");
  const SimTime start = SimTime::epoch();
  {
    MetricsWriterV1 writer(path, start, start + SimDuration::hours(1),
                           SimDuration::hours(1));
    const std::uint32_t a = writer.series_id("alpha", SeriesKind::kCounter);
    writer.append(a, start, 1.0);
    writer.finish();
  }
  const std::string whole = slurp(path);
  ASSERT_GT(whole.size(), 16u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(whole.data(), static_cast<std::streamsize>(whole.size() - 9));
  }
  EXPECT_THROW(MetricsView{path}, IoError);
  std::remove(path.c_str());
}

TEST(ObsTimeSeries, QuantileFromBucketsInterpolates) {
  // 10 observations <=1, 80 in (1,2], 10 in (2,+inf).
  const std::vector<double> bounds = {1.0, 2.0};
  const std::vector<std::uint64_t> counts = {10, 80, 10};
  // Target 5 of 100 lands mid-way through the first bucket [0, 1].
  EXPECT_DOUBLE_EQ(quantile_from_buckets(bounds, counts, 0.05), 0.5);
  // Target 50 is 40 observations into the 80 of bucket (1, 2].
  EXPECT_DOUBLE_EQ(quantile_from_buckets(bounds, counts, 0.50), 1.5);
  // Mass in the unbounded tail clamps to the last finite bound.
  EXPECT_DOUBLE_EQ(quantile_from_buckets(bounds, counts, 0.99), 2.0);
}

}  // namespace
}  // namespace fgcs::obs

// Tests for the P2P publication/discovery overlay.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "fgcs/ishare/discovery.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::ishare {
namespace {

ResourceDescriptor desc(const std::string& name, double ghz = 1.7,
                        monitor::AvailabilityState state =
                            monitor::AvailabilityState::kS1FullAvailability) {
  ResourceDescriptor d;
  d.name = name;
  d.owner = "prov-" + name;
  d.cpu_ghz = ghz;
  d.state = state;
  return d;
}

struct OverlayFixture : ::testing::Test {
  OverlayFixture() {
    for (int i = 0; i < 16; ++i) {
      peers.push_back(overlay.join("peer-" + std::to_string(i)));
    }
  }
  DiscoveryOverlay overlay;
  std::vector<PeerId> peers;
};

TEST_F(OverlayFixture, PublishThenLookupFromAnyPeer) {
  overlay.publish(peers[0], desc("lab-pc-07"));
  for (const PeerId via : peers) {
    const auto found = overlay.lookup(via, "lab-pc-07");
    ASSERT_TRUE(found.has_value()) << via;
    EXPECT_EQ(found->name, "lab-pc-07");
    EXPECT_EQ(found->owner, "prov-lab-pc-07");
  }
}

TEST_F(OverlayFixture, LookupMissingReturnsNothing) {
  EXPECT_FALSE(overlay.lookup(peers[3], "ghost").has_value());
}

TEST_F(OverlayFixture, RepublishOverwrites) {
  overlay.publish(peers[0], desc("m", 1.0));
  auto updated = desc("m", 2.4);
  updated.state = monitor::AvailabilityState::kS2LowestPriority;
  overlay.publish(peers[5], updated);
  const auto found = overlay.lookup(peers[9], "m");
  ASSERT_TRUE(found.has_value());
  EXPECT_DOUBLE_EQ(found->cpu_ghz, 2.4);
  EXPECT_EQ(found->state, monitor::AvailabilityState::kS2LowestPriority);
  EXPECT_EQ(overlay.descriptor_count(), 1u);
}

TEST_F(OverlayFixture, Unpublish) {
  overlay.publish(peers[0], desc("m"));
  EXPECT_TRUE(overlay.unpublish(peers[7], "m"));
  EXPECT_FALSE(overlay.lookup(peers[2], "m").has_value());
  EXPECT_FALSE(overlay.unpublish(peers[7], "m"));
}

TEST_F(OverlayFixture, RoutingHopsAreLogarithmic) {
  // Publish many resources; the mean lookup hop count stays well under
  // the ring size (Chord: O(log n)).
  for (int i = 0; i < 64; ++i) {
    overlay.publish(peers[0], desc("res-" + std::to_string(i)));
  }
  double total_hops = 0;
  int lookups = 0;
  for (const PeerId via : peers) {
    for (int i = 0; i < 64; i += 7) {
      RouteStats stats;
      ASSERT_TRUE(
          overlay.lookup(via, "res-" + std::to_string(i), &stats).has_value());
      total_hops += stats.hops;
      ++lookups;
    }
  }
  const double mean_hops = total_hops / lookups;
  EXPECT_LE(mean_hops, 2.0 * std::log2(16.0));
  EXPECT_GE(mean_hops, 0.0);
}

TEST_F(OverlayFixture, LatencyScalesWithHops) {
  overlay.publish(peers[0], desc("m"));
  RouteStats stats;
  overlay.lookup(peers[8], "m", &stats);
  EXPECT_EQ(stats.latency.as_micros(), stats.hops * 20'000);
}

TEST_F(OverlayFixture, LeaveHandsKeysToSuccessor) {
  for (int i = 0; i < 40; ++i) {
    overlay.publish(peers[0], desc("res-" + std::to_string(i)));
  }
  ASSERT_EQ(overlay.descriptor_count(), 40u);
  // Half the peers leave; every descriptor must remain reachable.
  for (int i = 0; i < 8; ++i) {
    overlay.leave(peers[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(overlay.peer_count(), 8u);
  EXPECT_EQ(overlay.descriptor_count(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(
        overlay.lookup(peers[12], "res-" + std::to_string(i)).has_value())
        << i;
  }
}

TEST_F(OverlayFixture, JoinTakesOverKeys) {
  for (int i = 0; i < 40; ++i) {
    overlay.publish(peers[0], desc("res-" + std::to_string(i)));
  }
  // New peers join; all descriptors stay reachable from everywhere.
  for (int i = 100; i < 110; ++i) {
    overlay.join("peer-" + std::to_string(i));
  }
  EXPECT_EQ(overlay.descriptor_count(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(
        overlay.lookup(peers[3], "res-" + std::to_string(i)).has_value())
        << i;
  }
}

TEST_F(OverlayFixture, FindAvailableFiltersStateAndCpu) {
  overlay.publish(peers[0], desc("fast-free", 3.0));
  overlay.publish(peers[0], desc("slow-free", 0.5));
  overlay.publish(peers[0],
                  desc("fast-busy", 3.0,
                       monitor::AvailabilityState::kS3CpuUnavailable));
  overlay.publish(peers[0],
                  desc("fast-renice", 3.0,
                       monitor::AvailabilityState::kS2LowestPriority));
  const auto found = overlay.find_available(peers[4], 1.0, 10);
  std::set<std::string> names;
  for (const auto& d : found) names.insert(d.name);
  EXPECT_TRUE(names.count("fast-free"));
  EXPECT_TRUE(names.count("fast-renice"));  // S2 is usable
  EXPECT_FALSE(names.count("slow-free"));   // too slow
  EXPECT_FALSE(names.count("fast-busy"));   // S3 not usable
}

TEST_F(OverlayFixture, FindAvailableHonorsMaxResults) {
  for (int i = 0; i < 30; ++i) {
    overlay.publish(peers[0], desc("r" + std::to_string(i), 2.0));
  }
  EXPECT_EQ(overlay.find_available(peers[0], 1.0, 5).size(), 5u);
}

TEST(DiscoveryOverlay, SinglePeerOwnsEverything) {
  DiscoveryOverlay overlay;
  const PeerId solo = overlay.join("solo");
  RouteStats stats;
  overlay.publish(solo, desc("m"));
  const auto found = overlay.lookup(solo, "m", &stats);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(stats.hops, 0);
}

TEST(DiscoveryOverlay, Validation) {
  DiscoveryOverlay overlay;
  EXPECT_THROW(overlay.publish(1, desc("m")), ConfigError);  // no peers
  const PeerId p = overlay.join("a");
  EXPECT_THROW(overlay.join("a"), ConfigError);  // duplicate
  ResourceDescriptor unnamed;
  EXPECT_THROW(overlay.publish(p, unnamed), ConfigError);
  EXPECT_THROW(overlay.leave(p + 1), ConfigError);
}

TEST(DiscoveryOverlay, KeyOfIsStable) {
  EXPECT_EQ(DiscoveryOverlay::key_of("x"), DiscoveryOverlay::key_of("x"));
  EXPECT_NE(DiscoveryOverlay::key_of("x"), DiscoveryOverlay::key_of("y"));
}

}  // namespace
}  // namespace fgcs::ishare

// Tests for deterministic fault expansion (FaultInjector) and the
// per-machine live session (MachineFaultSession).
#include <gtest/gtest.h>

#include <vector>

#include "fgcs/fault/injector.hpp"
#include "fgcs/obs/observer.hpp"
#include "fgcs/sim/simulation.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::fault {
namespace {

using sim::SimDuration;
using sim::SimTime;

FaultPlan rate_plan(double per_day, double mean_minutes) {
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kCrash;
  s.rate_per_day = per_day;
  s.mean_minutes = mean_minutes;
  plan.specs.push_back(s);
  return plan;
}

bool same_events(std::span<const FaultEvent> a, std::span<const FaultEvent> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].machine != b[i].machine ||
        a[i].start != b[i].start || a[i].duration != b[i].duration ||
        a[i].skew != b[i].skew) {
      return false;
    }
  }
  return true;
}

TEST(FaultInjectorTest, ExpansionIsDeterministic) {
  const auto plan = rate_plan(4.0, 20.0);
  const FaultInjector a(plan, 42, 3, SimTime::epoch(),
                        SimTime::epoch() + SimDuration::days(14));
  const FaultInjector b(plan, 42, 3, SimTime::epoch(),
                        SimTime::epoch() + SimDuration::days(14));
  EXPECT_FALSE(a.events().empty());
  EXPECT_TRUE(same_events(a.events(), b.events()));
}

TEST(FaultInjectorTest, DifferentSeedsDiffer) {
  const auto plan = rate_plan(4.0, 20.0);
  const FaultInjector a(plan, 1, 2, SimTime::epoch(),
                        SimTime::epoch() + SimDuration::days(14));
  const FaultInjector b(plan, 2, 2, SimTime::epoch(),
                        SimTime::epoch() + SimDuration::days(14));
  EXPECT_FALSE(same_events(a.events(), b.events()));
}

TEST(FaultInjectorTest, MachinesDrawIndependentStreams) {
  const auto plan = rate_plan(4.0, 20.0);
  const FaultInjector inj(plan, 7, 2, SimTime::epoch(),
                          SimTime::epoch() + SimDuration::days(30));
  const auto m0 = inj.events_for(0);
  const auto m1 = inj.events_for(1);
  ASSERT_FALSE(m0.empty());
  ASSERT_FALSE(m1.empty());
  // Same spec, different machines: the occurrence times must not be a
  // shared sequence.
  bool identical = m0.size() == m1.size();
  if (identical) {
    for (std::size_t i = 0; i < m0.size(); ++i) {
      if (m0[i].start != m1[i].start) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical);
}

TEST(FaultInjectorTest, ScriptedTimesAreExact) {
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kSensorDropout;
  s.at_hours = {2.0, 10.5};
  s.duration_minutes = 15.0;
  s.machine = 0;
  plan.specs.push_back(s);

  const SimTime begin = SimTime::from_micros(500);
  const FaultInjector inj(plan, 9, 1, begin, begin + SimDuration::days(1));
  const auto events = inj.events_for(0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].start, begin + SimDuration::hours(2));
  EXPECT_EQ(events[0].duration, SimDuration::minutes(15));
  EXPECT_EQ(events[1].start,
            begin + SimDuration::from_seconds(10.5 * 3600.0));
}

TEST(FaultInjectorTest, MachineTargetingRestrictsEvents) {
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kCrash;
  s.at_hours = {1.0};
  s.machine = 1;
  plan.specs.push_back(s);

  const FaultInjector inj(plan, 3, 4, SimTime::epoch(),
                          SimTime::epoch() + SimDuration::hours(4));
  EXPECT_TRUE(inj.events_for(0).empty());
  ASSERT_EQ(inj.events_for(1).size(), 1u);
  EXPECT_TRUE(inj.events_for(2).empty());
  EXPECT_TRUE(inj.events_for(3).empty());
  for (const auto& ev : inj.events()) EXPECT_EQ(ev.machine, 1u);
}

TEST(FaultInjectorTest, HorizonClipsAndDrops) {
  FaultPlan plan;
  FaultSpec s;
  s.kind = FaultKind::kCrash;
  s.at_hours = {3.5, 6.0};     // 6h is outside a 4h horizon -> dropped
  s.duration_minutes = 120.0;  // 3.5h + 2h would overrun -> clipped
  plan.specs.push_back(s);

  const SimTime begin = SimTime::epoch();
  const SimTime end = begin + SimDuration::hours(4);
  const FaultInjector inj(plan, 5, 1, begin, end);
  const auto events = inj.events_for(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start, begin + SimDuration::from_seconds(3.5 * 3600.0));
  EXPECT_EQ(events[0].start + events[0].duration, end);
}

TEST(FaultInjectorTest, EventsAreSortedAndPartitioned) {
  FaultPlan plan;
  auto crash = rate_plan(6.0, 10.0);
  plan.specs.push_back(crash.specs[0]);
  FaultSpec drop;
  drop.kind = FaultKind::kSensorDropout;
  drop.rate_per_day = 6.0;
  drop.mean_minutes = 4.0;
  plan.specs.push_back(drop);

  const FaultInjector inj(plan, 11, 3, SimTime::epoch(),
                          SimTime::epoch() + SimDuration::days(7));
  const auto all = inj.events();
  ASSERT_FALSE(all.empty());
  for (std::size_t i = 1; i < all.size(); ++i) {
    const bool ordered =
        all[i - 1].machine < all[i].machine ||
        (all[i - 1].machine == all[i].machine &&
         all[i - 1].start <= all[i].start);
    EXPECT_TRUE(ordered) << "events out of order at index " << i;
  }
  std::size_t total = 0;
  for (std::uint32_t m = 0; m < 3; ++m) {
    for (const auto& ev : inj.events_for(m)) {
      EXPECT_EQ(ev.machine, m);
      ++total;
    }
  }
  EXPECT_EQ(total, all.size());
}

TEST(FaultInjectorTest, RejectsEmptyHorizonAndBadMachine) {
  const auto plan = rate_plan(1.0, 5.0);
  EXPECT_THROW(
      FaultInjector(plan, 1, 0, SimTime::epoch(),
                    SimTime::epoch() + SimDuration::hours(1)),
      ConfigError);
  EXPECT_THROW(FaultInjector(plan, 1, 1, SimTime::epoch(), SimTime::epoch()),
               ConfigError);
  const FaultInjector inj(plan, 1, 2, SimTime::epoch(),
                          SimTime::epoch() + SimDuration::hours(1));
  EXPECT_THROW(inj.events_for(2), ConfigError);
}

TEST(MachineFaultSessionTest, WindowFaultsActivateAndDeactivate) {
  FaultPlan plan;
  FaultSpec crash;
  crash.kind = FaultKind::kCrash;
  crash.at_hours = {1.0};
  crash.duration_minutes = 30.0;
  plan.specs.push_back(crash);
  FaultSpec skew;
  skew.kind = FaultKind::kClockSkew;
  skew.at_hours = {0.5};
  skew.duration_minutes = 90.0;
  skew.skew_ms = 250.0;
  plan.specs.push_back(skew);

  const FaultInjector inj(plan, 2, 1, SimTime::epoch(),
                          SimTime::epoch() + SimDuration::hours(4));
  MachineFaultSession session(inj, 0);
  sim::Simulation simulation;
  session.schedule(simulation);

  struct Probe {
    SimDuration at;
    bool crash;
    double skew_s;
  };
  const std::vector<Probe> probes = {
      {SimDuration::minutes(10), false, 0.0},
      {SimDuration::minutes(45), false, 0.25},   // skew blip only
      {SimDuration::minutes(75), true, 0.25},    // crash + skew overlap
      {SimDuration::minutes(100), false, 0.25},  // crash ended at 1h30
      {SimDuration::minutes(150), false, 0.0},   // skew ended at 2h
  };
  for (const auto& probe : probes) {
    simulation.at(SimTime::epoch() + probe.at, [&session, &probe] {
      EXPECT_EQ(session.crash_active(), probe.crash)
          << "at minute " << probe.at.as_minutes();
      EXPECT_DOUBLE_EQ(session.skew().as_seconds(), probe.skew_s)
          << "at minute " << probe.at.as_minutes();
    });
  }
  simulation.run_all();
  EXPECT_FALSE(session.crash_active());
  EXPECT_EQ(session.skew(), SimDuration::zero());
}

TEST(MachineFaultSessionTest, GuestKillsAreListedNotScheduled) {
  FaultPlan plan;
  FaultSpec kill;
  kill.kind = FaultKind::kGuestKill;
  kill.at_hours = {5.0, 1.0, 3.0};
  plan.specs.push_back(kill);

  const FaultInjector inj(plan, 4, 1, SimTime::epoch(),
                          SimTime::epoch() + SimDuration::hours(8));
  MachineFaultSession session(inj, 0);
  const auto kills = session.guest_kill_times();
  ASSERT_EQ(kills.size(), 3u);
  EXPECT_EQ(kills[0], SimTime::epoch() + SimDuration::hours(1));
  EXPECT_EQ(kills[1], SimTime::epoch() + SimDuration::hours(3));
  EXPECT_EQ(kills[2], SimTime::epoch() + SimDuration::hours(5));

  sim::Simulation simulation;
  session.schedule(simulation);
  simulation.run_all();
  // Kills never toggle the window-fault flags.
  EXPECT_FALSE(session.crash_active());
  EXPECT_FALSE(session.dropout_active());
  EXPECT_EQ(simulation.events_executed(), 0u);
}

TEST(MachineFaultSessionTest, OverlappingDropoutsNest) {
  FaultPlan plan;
  FaultSpec drop;
  drop.kind = FaultKind::kSensorDropout;
  drop.at_hours = {1.0, 1.25};  // second starts inside the first
  drop.duration_minutes = 30.0;
  plan.specs.push_back(drop);

  const FaultInjector inj(plan, 6, 1, SimTime::epoch(),
                          SimTime::epoch() + SimDuration::hours(3));
  MachineFaultSession session(inj, 0);
  sim::Simulation simulation;
  session.schedule(simulation);

  // First window ends at 1h30, second at 1h45; the flag must stay up
  // through the overlap seam.
  simulation.at(SimTime::epoch() + SimDuration::minutes(95),
                [&session] { EXPECT_TRUE(session.dropout_active()); });
  simulation.at(SimTime::epoch() + SimDuration::minutes(110),
                [&session] { EXPECT_FALSE(session.dropout_active()); });
  simulation.run_all();
}

// The obs layer's fault.injected{kind} counters must equal the expanded
// plan exactly: one bump per scheduled window-fault activation, none for
// guest-kills (those never enter the event loop — the lifecycle study
// consumes them from the kill list instead).
TEST(MachineFaultSessionTest, ObsCountersMatchExpandedPlan) {
  FaultPlan plan;
  FaultSpec crash;
  crash.kind = FaultKind::kCrash;
  crash.rate_per_day = 3.0;
  crash.mean_minutes = 10.0;
  plan.specs.push_back(crash);
  FaultSpec drop;
  drop.kind = FaultKind::kSensorDropout;
  drop.at_hours = {2.0, 30.0, 50.0};
  drop.duration_minutes = 5.0;
  plan.specs.push_back(drop);
  FaultSpec skew;
  skew.kind = FaultKind::kClockSkew;
  skew.rate_per_day = 1.0;
  skew.mean_minutes = 8.0;
  skew.skew_ms = 300.0;
  plan.specs.push_back(skew);
  FaultSpec kill;
  kill.kind = FaultKind::kGuestKill;
  kill.at_hours = {5.0, 20.0};
  plan.specs.push_back(kill);

  const std::uint32_t machines = 3;
  const SimTime begin = SimTime::epoch();
  const SimTime end = begin + SimDuration::days(4);
  const FaultInjector injector(plan, 11, machines, begin, end);

  // Ground truth: per-kind totals of the deterministic expansion.
  std::size_t expected[kFaultKindCount] = {};
  for (const auto& ev : injector.events()) {
    ++expected[static_cast<int>(ev.kind)];
  }
  ASSERT_GT(expected[static_cast<int>(FaultKind::kCrash)], 0u);
  ASSERT_EQ(expected[static_cast<int>(FaultKind::kSensorDropout)],
            3u * machines);
  ASSERT_GT(expected[static_cast<int>(FaultKind::kClockSkew)], 0u);
  ASSERT_EQ(expected[static_cast<int>(FaultKind::kGuestKill)], 2u * machines);

  obs::Observer observer;
  {
    obs::ScopedObserver guard(&observer);
    for (std::uint32_t m = 0; m < machines; ++m) {
      MachineFaultSession session(injector, m);
      sim::Simulation simulation;
      session.schedule(simulation);
      simulation.run_until(end + SimDuration::hours(2));
    }
  }

  auto count = [&](const char* kind) {
    return observer.metrics()
        .counter("fault.injected", {{"kind", kind}})
        .value();
  };
  EXPECT_EQ(count("crash"), expected[static_cast<int>(FaultKind::kCrash)]);
  EXPECT_EQ(count("dropout"),
            expected[static_cast<int>(FaultKind::kSensorDropout)]);
  EXPECT_EQ(count("skew"), expected[static_cast<int>(FaultKind::kClockSkew)]);
  EXPECT_EQ(count("guest-kill"), 0u)
      << "guest kills are not scheduled through the event loop";
}

// Running the same sessions twice under two observers yields identical
// counter totals — injection accounting is as replayable as the events.
TEST(MachineFaultSessionTest, ObsCountersAreDeterministicAcrossRuns) {
  FaultPlan plan = rate_plan(5.0, 15.0);
  const FaultInjector injector(plan, 99, 2, SimTime::epoch(),
                               SimTime::epoch() + SimDuration::days(3));
  auto run_once = [&]() {
    obs::Observer observer;
    {
      obs::ScopedObserver guard(&observer);
      for (std::uint32_t m = 0; m < 2; ++m) {
        MachineFaultSession session(injector, m);
        sim::Simulation simulation;
        session.schedule(simulation);
        simulation.run_all();
      }
    }
    return observer.metrics()
        .counter("fault.injected", {{"kind", "crash"}})
        .value();
  };
  const auto first = run_once();
  EXPECT_GT(first, 0u);
  EXPECT_EQ(first, run_once());
}

}  // namespace
}  // namespace fgcs::fault

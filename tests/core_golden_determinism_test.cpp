// Golden determinism for the testbed and contention pipelines.
//
// Two properties the perf work must not erode:
//   1. run_testbed's trace records are identical whether machines are
//      simulated on the global pool (N workers) or strictly sequentially
//      (the 0-worker path, via per-machine calls on this thread).
//   2. Scheduler fast-forward (SchedulerParams::fast_forward) changes
//      wall-clock cost only: contention measurements are bit-identical
//      with the jump enabled and with forced per-tick execution.
#include <gtest/gtest.h>

#include <vector>

#include "fgcs/core/contention.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/trace/records.hpp"
#include "fgcs/util/parallel.hpp"

namespace fgcs::core {
namespace {

TestbedConfig small_config() {
  TestbedConfig config;
  config.machines = 6;
  config.days = 3;
  config.seed = 20050815;
  return config;
}

void expect_identical(const trace::UnavailabilityRecord& a,
                      const trace::UnavailabilityRecord& b) {
  EXPECT_EQ(a.machine, b.machine);
  EXPECT_EQ(a.start.as_micros(), b.start.as_micros());
  EXPECT_EQ(a.end.as_micros(), b.end.as_micros());
  EXPECT_EQ(a.cause, b.cause);
  // Doubles compared bitwise-exactly on purpose: both runs execute the
  // same arithmetic, so any difference is a determinism bug.
  EXPECT_EQ(a.host_cpu, b.host_cpu);
  EXPECT_EQ(a.free_mem_mb, b.free_mem_mb);
}

TEST(TestbedGolden, ParallelMatchesSequential) {
  const TestbedConfig config = small_config();

  // Parallel path: run_testbed fans machines out over the global pool.
  const trace::TraceSet parallel = run_testbed(config);

  // Sequential path: the same machines, one at a time on this thread.
  std::vector<trace::UnavailabilityRecord> sequential;
  for (trace::MachineId m = 0; m < config.machines; ++m) {
    const auto records = run_testbed_machine(config, m);
    sequential.insert(sequential.end(), records.begin(), records.end());
  }

  ASSERT_EQ(parallel.size(), sequential.size());
  ASSERT_GT(parallel.size(), 0u) << "config produced no episodes; the "
                                    "golden comparison would be vacuous";
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(parallel.records()[i], sequential[i]);
  }
}

TEST(TestbedGolden, RepeatedRunsIdentical) {
  const TestbedConfig config = small_config();
  const trace::TraceSet first = run_testbed(config);
  const trace::TraceSet second = run_testbed(config);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(first.records()[i], second.records()[i]);
  }
}

TEST(TestbedGolden, ExplicitZeroWorkerPoolMatches) {
  // parallel_for with a 0-worker pool runs inline; the global-pool result
  // must match it for the same body. Exercised through the capacity
  // profile (same walk_machine pipeline, aggregated output).
  const TestbedConfig config = small_config();
  const CapacityProfile reference = run_capacity_profile(config);
  const CapacityProfile repeat = run_capacity_profile(config);
  EXPECT_EQ(reference.overall_cpu, repeat.overall_cpu);
  EXPECT_EQ(reference.overall_usable, repeat.overall_usable);
  for (int h = 0; h < 24; ++h) {
    EXPECT_EQ(reference.weekday_cpu[h], repeat.weekday_cpu[h]) << h;
    EXPECT_EQ(reference.weekend_cpu[h], repeat.weekend_cpu[h]) << h;
  }
}

TEST(ContentionGolden, FastForwardOnOffBitIdentical) {
  auto measure = [](bool fast_forward) {
    ContentionConfig config;
    config.scheduler.fast_forward = fast_forward;
    config.measure = sim::SimDuration::minutes(2);
    config.warmup = sim::SimDuration::seconds(20);
    const std::vector<os::ProcessSpec> hosts = {
        workload::synthetic_host(0.6)};
    return measure_contention(config, hosts, workload::synthetic_guest(19),
                              /*run_seed=*/17);
  };
  const ContentionMeasurement fast = measure(true);
  const ContentionMeasurement slow = measure(false);
  EXPECT_EQ(fast.host_usage_alone, slow.host_usage_alone);
  EXPECT_EQ(fast.host_usage_together, slow.host_usage_together);
  EXPECT_EQ(fast.guest_usage, slow.guest_usage);
  EXPECT_EQ(fast.thrashing, slow.thrashing);
}

}  // namespace
}  // namespace fgcs::core

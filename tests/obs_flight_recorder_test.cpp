// Flight recorder: ring wrap-around, sim-time-ordered dumps, dump-on-fault
// plumbing, and concurrent recording (this suite also runs under
// ThreadSanitizer via check_build.sh --tsan).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fgcs/obs/flight_recorder.hpp"

namespace fgcs::obs {
namespace {

using sim::SimDuration;
using sim::SimTime;

FlightEvent transition_at(std::int64_t micros, std::uint32_t machine,
                          int from, int to) {
  FlightEvent e;
  e.at = SimTime::from_micros(micros);
  e.kind = FlightEventKind::kStateTransition;
  e.machine = machine;
  e.a = from;
  e.b = to;
  return e;
}

TEST(ObsFlightRecorder, RingWrapsKeepingTheMostRecent) {
  FlightRecorder::Options options;
  options.capacity = 4;
  FlightRecorder recorder(options);
  for (int i = 0; i < 10; ++i) {
    recorder.record(transition_at(i * 1000, 0, 1, 2));
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  // Survivors are the four most recent, oldest-first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].at.as_micros(),
              static_cast<std::int64_t>((6 + i) * 1000));
  }
}

TEST(ObsFlightRecorder, SimTimeOrderedSortsStably) {
  std::vector<FlightEvent> events;
  events.push_back(transition_at(3000, 1, 1, 3));
  events.push_back(transition_at(1000, 2, 1, 2));
  events.push_back(transition_at(3000, 0, 2, 1));  // same time, lower machine
  const auto sorted = sim_time_ordered(events);
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].at.as_micros(), 1000);
  EXPECT_EQ(sorted[1].at.as_micros(), 3000);
  EXPECT_EQ(sorted[1].machine, 0u);  // equal-time tie broken by fields
  EXPECT_EQ(sorted[2].machine, 1u);
  EXPECT_TRUE(flight_event_before(sorted[0], sorted[1]));
  EXPECT_FALSE(flight_event_before(sorted[1], sorted[0]));
}

TEST(ObsFlightRecorder, DumpWritesSimTimeOrderedPostMortem) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "obs_flight_dump.txt")
          .string();
  FlightRecorder::Options options;
  options.capacity = 16;
  options.dump_path = path;
  FlightRecorder recorder(options);
  recorder.record(transition_at(2'000'000, 3, 1, 5));
  recorder.record(transition_at(1'000'000, 7, 1, 2));
  ASSERT_TRUE(recorder.dump("test fault"));

  std::ifstream in(path);
  const std::string dump{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  EXPECT_NE(dump.find("test fault"), std::string::npos);
  // Events appear in sim-time order even though recorded out of order.
  const auto first = dump.find("m0007");
  const auto second = dump.find("m0003");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  std::remove(path.c_str());
}

TEST(ObsFlightRecorder, QuarantineLatchesTheAutomaticDump) {
  // The supervisor giving up on a machine is as much a "capture the
  // context" moment as the first injected fault: a kMachineQuarantined
  // event must trip the dump-on-fault latch.
  const std::string path =
      (std::filesystem::temp_directory_path() / "obs_flight_quarantine.txt")
          .string();
  std::remove(path.c_str());
  FlightRecorder::Options options;
  options.capacity = 16;
  options.dump_path = path;
  options.dump_on_fault = true;
  FlightRecorder recorder(options);
  recorder.record(transition_at(1'000'000, 4, 1, 2));

  FlightEvent q;
  q.at = SimTime::from_micros(2'000'000);
  q.kind = FlightEventKind::kMachineQuarantined;
  q.machine = 4;
  q.a = 2;  // failures
  recorder.record(q);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "quarantine did not latch a dump";
  const std::string dump{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  EXPECT_NE(dump.find("machine-quarantined"), std::string::npos) << dump;
  EXPECT_NE(dump.find("machine_quarantined failures=2"), std::string::npos)
      << dump;
  std::remove(path.c_str());
}

TEST(ObsFlightRecorder, ShardRetryRecordsButDoesNotLatch) {
  // Retries are routine supervision, not a post-mortem moment: the event
  // lands in the ring (with its shard-scoped format) but trips no dump.
  const std::string path =
      (std::filesystem::temp_directory_path() / "obs_flight_retry.txt")
          .string();
  std::remove(path.c_str());
  FlightRecorder::Options options;
  options.capacity = 16;
  options.dump_path = path;
  options.dump_on_fault = true;
  FlightRecorder recorder(options);

  FlightEvent r;
  r.at = SimTime::from_micros(3'000'000);
  r.kind = FlightEventKind::kShardRetry;
  r.machine = 1;  // shard index in the shard-scoped events
  r.a = 2;        // attempt
  r.b = 4;        // failed machine
  recorder.record(r);

  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_EQ(recorder.recorded(), 1u);
  EXPECT_NE(format_flight_event(recorder.events()[0])
                .find("shard_retry attempt=2 failed_machine=4"),
            std::string::npos);
}

TEST(ObsFlightRecorder, FormatIsHumanReadable) {
  const std::string line = format_flight_event(transition_at(0, 2, 1, 3));
  EXPECT_NE(line.find("m0002"), std::string::npos);
  EXPECT_NE(line.find("S1"), std::string::npos);
  EXPECT_NE(line.find("S3"), std::string::npos);
}

TEST(ObsFlightRecorder, ConcurrentRecordersCountEveryEvent) {
  FlightRecorder::Options options;
  options.capacity = 64;
  FlightRecorder recorder(options);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.record(
            transition_at(i * 100, static_cast<std::uint32_t>(t), 1, 2));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(recorder.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(recorder.events().size(), 64u);
  EXPECT_EQ(recorder.dropped(), recorder.recorded() - 64u);
}

}  // namespace
}  // namespace fgcs::obs

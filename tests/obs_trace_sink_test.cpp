// Trace sink: event recording, ring-buffer eviction, and Chrome-JSON
// well-formedness (parsed back by the test-only JSON parser).
#include <gtest/gtest.h>

#include <sstream>

#include "fgcs/obs/trace_sink.hpp"
#include "json_mini.hpp"

namespace fgcs::obs {
namespace {

using sim::SimDuration;
using sim::SimTime;

TEST(TraceSink, RecordsEventsInOrder) {
  TraceSink sink;
  sink.instant("cat", "first", SimTime::from_micros(10), 1);
  sink.complete("cat", "second", SimTime::from_micros(20),
                SimDuration::micros(5), 2, "\"k\":1");
  sink.counter("cat", "depth", SimTime::from_micros(30), 3, 7.0);

  const auto events = sink.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "first");
  EXPECT_EQ(events[0].phase, TraceSink::Phase::kInstant);
  EXPECT_EQ(events[0].ts_us, 10);
  EXPECT_EQ(events[1].phase, TraceSink::Phase::kComplete);
  EXPECT_EQ(events[1].dur_us, 5);
  EXPECT_EQ(events[1].track, 2u);
  EXPECT_EQ(events[2].phase, TraceSink::Phase::kCounter);
  EXPECT_EQ(sink.total_recorded(), 3u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, RingBufferEvictsOldest) {
  TraceSink sink(4);
  for (int i = 0; i < 10; ++i) {
    std::string name = "e";
    name += std::to_string(i);
    sink.instant("cat", name, SimTime::from_micros(i), 0);
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.total_recorded(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);

  // The survivors are the four most recent, still oldest-first.
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    std::string expected = "e";
    expected += std::to_string(6 + i);
    EXPECT_EQ(events[static_cast<std::size_t>(i)].name, expected);
  }
}

TEST(TraceSink, UnboundedKeepsEverything) {
  TraceSink sink(0);
  for (int i = 0; i < 1000; ++i) {
    sink.instant("cat", "e", SimTime::from_micros(i), 0);
  }
  EXPECT_EQ(sink.size(), 1000u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, ClearResets) {
  TraceSink sink(2);
  sink.instant("cat", "e", SimTime::epoch(), 0);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.total_recorded(), 0u);
}

TEST(TraceSink, ChromeJsonParsesBack) {
  TraceSink sink;
  sink.name_track(0, "machine-0");
  sink.instant("detector", "S1->S3", SimTime::from_seconds(3600.0), 0);
  sink.complete("testbed", "simulate_machine", SimTime::epoch(),
                SimDuration::days(1), 0, "\"episodes\":3,\"samples\":5760");
  sink.counter("sim", "queue_depth", SimTime::from_micros(42), 0, 2.0);

  std::stringstream out;
  sink.write_chrome_json(out);
  const auto doc = testing::JsonParser::parse(out.str());

  ASSERT_TRUE(doc.is_object());
  const auto& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.array.size(), 4u);  // metadata + 3 events

  const auto& meta = events.array[0];
  EXPECT_EQ(meta.at("ph").string, "M");
  EXPECT_EQ(meta.at("args").at("name").string, "machine-0");

  const auto& instant = events.array[1];
  EXPECT_EQ(instant.at("name").string, "S1->S3");
  EXPECT_EQ(instant.at("cat").string, "detector");
  EXPECT_EQ(instant.at("ph").string, "i");
  EXPECT_DOUBLE_EQ(instant.at("ts").number, 3600e6);

  const auto& span = events.array[2];
  EXPECT_EQ(span.at("ph").string, "X");
  EXPECT_DOUBLE_EQ(span.at("dur").number, 86400e6);
  EXPECT_DOUBLE_EQ(span.at("args").at("episodes").number, 3.0);

  const auto& counter = events.array[3];
  EXPECT_EQ(counter.at("ph").string, "C");
  EXPECT_DOUBLE_EQ(counter.at("args").at("value").number, 2.0);
}

TEST(TraceSink, JsonEscapesAwkwardNames) {
  TraceSink sink;
  sink.instant("cat\"egory", "name with \\ and \"quotes\"\n", SimTime::epoch(),
               0);
  std::stringstream out;
  sink.write_chrome_json(out);
  const auto doc = testing::JsonParser::parse(out.str());
  const auto& event = doc.at("traceEvents").array[0];
  EXPECT_EQ(event.at("name").string, "name with \\ and \"quotes\"\n");
  EXPECT_EQ(event.at("cat").string, "cat\"egory");
}

TEST(JsonEscape, ControlCharacters) {
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\x01z"), "a\\u0001z");
  EXPECT_EQ(json_escape("plain"), "plain");
}

}  // namespace
}  // namespace fgcs::obs

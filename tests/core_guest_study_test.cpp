// Tests for the resilient guest lifecycle study: checkpointing, restart
// backoff, migration, determinism, and obs accounting.
#include <gtest/gtest.h>

#include <vector>

#include "fgcs/core/guest_study.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/obs/observer.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::core {
namespace {

using sim::SimDuration;

TestbedConfig small_testbed() {
  TestbedConfig config;
  config.machines = 3;
  config.days = 7;
  config.seed = 1234;
  return config;
}

TestbedConfig killing_testbed() {
  TestbedConfig config = small_testbed();
  fault::FaultSpec kill;
  kill.kind = fault::FaultKind::kGuestKill;
  kill.rate_per_day = 4.0;
  kill.mean_minutes = 1.0;
  config.faults.specs.push_back(kill);
  return config;
}

GuestLifecycleConfig short_jobs() {
  GuestLifecycleConfig lifecycle;
  lifecycle.job_length = SimDuration::hours(6);
  lifecycle.submit_spacing = SimDuration::hours(8);
  return lifecycle;
}

bool same_outcomes(const GuestStudyResult& a, const GuestStudyResult& b) {
  if (a.jobs.size() != b.jobs.size()) return false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const auto& x = a.jobs[i];
    const auto& y = b.jobs[i];
    if (x.submit != y.submit || x.first_machine != y.first_machine ||
        x.final_machine != y.final_machine || x.completed != y.completed ||
        x.response != y.response || x.restarts != y.restarts ||
        x.migrations != y.migrations || x.checkpoints != y.checkpoints ||
        x.work_lost != y.work_lost) {
      return false;
    }
  }
  return true;
}

TEST(GuestStudyTest, ReplaysBitIdentically) {
  const auto testbed = killing_testbed();
  const auto trace = run_testbed(testbed);
  auto lifecycle = short_jobs();
  lifecycle.checkpoint_interval = SimDuration::hours(1);
  lifecycle.migrate_on_revocation = true;

  const auto a = run_guest_study(testbed, trace, lifecycle);
  const auto b = run_guest_study(testbed, trace, lifecycle);
  ASSERT_FALSE(a.jobs.empty());
  EXPECT_TRUE(same_outcomes(a, b));
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.work_lost, b.work_lost);
}

TEST(GuestStudyTest, CheckpointingBoundsLostWork) {
  const auto testbed = killing_testbed();
  const auto trace = run_testbed(testbed);

  auto no_ckpt = short_jobs();
  auto with_ckpt = short_jobs();
  with_ckpt.checkpoint_interval = SimDuration::minutes(30);
  with_ckpt.checkpoint_cost = SimDuration::minutes(1);

  const auto bare = run_guest_study(testbed, trace, no_ckpt);
  const auto saved = run_guest_study(testbed, trace, with_ckpt);
  ASSERT_FALSE(bare.jobs.empty());
  EXPECT_GT(bare.restarts, 0u);
  EXPECT_EQ(bare.checkpoints, 0u);
  EXPECT_GT(saved.checkpoints, 0u);
  // With checkpoints every 30 min, at most interval+cost of work is ever
  // at risk per kill; without them the whole attempt is lost.
  EXPECT_LT(saved.work_lost, bare.work_lost);
  EXPECT_GE(saved.completed, bare.completed);
}

TEST(GuestStudyTest, MigrationMovesJobsOffRevokedMachines) {
  const auto testbed = small_testbed();
  const auto trace = run_testbed(testbed);

  auto stay = short_jobs();
  auto move = short_jobs();
  move.migrate_on_revocation = true;

  const auto pinned = run_guest_study(testbed, trace, stay);
  const auto mobile = run_guest_study(testbed, trace, move);
  EXPECT_EQ(pinned.migrations, 0u);
  for (const auto& job : pinned.jobs) {
    EXPECT_EQ(job.first_machine, job.final_machine);
  }
  // The organic testbed trace has unavailability episodes, so revocations
  // occur and migrating jobs change machines.
  EXPECT_GT(mobile.migrations, 0u);
  bool moved = false;
  for (const auto& job : mobile.jobs) {
    if (job.first_machine != job.final_machine) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(GuestStudyTest, AggregatesMatchPerJobTotals) {
  const auto testbed = killing_testbed();
  auto lifecycle = short_jobs();
  lifecycle.checkpoint_interval = SimDuration::hours(1);
  const auto result = run_guest_study(testbed, lifecycle);

  std::uint32_t completed = 0, restarts = 0, migrations = 0, checkpoints = 0;
  SimDuration lost = SimDuration::zero();
  for (const auto& job : result.jobs) {
    completed += job.completed ? 1 : 0;
    restarts += job.restarts;
    migrations += job.migrations;
    checkpoints += job.checkpoints;
    lost += job.work_lost;
  }
  EXPECT_EQ(result.completed, completed);
  EXPECT_EQ(result.restarts, restarts);
  EXPECT_EQ(result.migrations, migrations);
  EXPECT_EQ(result.checkpoints, checkpoints);
  EXPECT_EQ(result.work_lost, lost);
  EXPECT_FALSE(result.summary_table().empty());
}

TEST(GuestStudyTest, ObsCountersTrackTheRun) {
  const auto testbed = killing_testbed();
  const auto trace = run_testbed(testbed);
  auto lifecycle = short_jobs();
  lifecycle.checkpoint_interval = SimDuration::hours(1);
  lifecycle.migrate_on_revocation = true;

  obs::Observer observer;
  GuestStudyResult result;
  {
    obs::ScopedObserver guard(&observer);
    result = run_guest_study(testbed, trace, lifecycle);
  }
  auto& metrics = observer.metrics();
  EXPECT_EQ(metrics.counter("guest.restarts").value(), result.restarts);
  EXPECT_EQ(metrics.counter("guest.migrations").value(), result.migrations);
  EXPECT_EQ(metrics.counter("guest.checkpoints").value(), result.checkpoints);
  EXPECT_EQ(metrics.counter("guest.completions").value(), result.completed);
  EXPECT_EQ(metrics.counter("guest.work_lost_us").value(),
            static_cast<std::uint64_t>(result.work_lost.as_micros()));
}

TEST(GuestStudyTest, ValidationRejectsBadPolicies) {
  const auto testbed = small_testbed();
  const auto trace = run_testbed(testbed);

  GuestLifecycleConfig bad = short_jobs();
  bad.job_length = SimDuration::zero();
  EXPECT_THROW(run_guest_study(testbed, trace, bad), ConfigError);

  bad = short_jobs();
  bad.backoff_factor = 0.5;
  EXPECT_THROW(run_guest_study(testbed, trace, bad), ConfigError);

  bad = short_jobs();
  bad.backoff_jitter = 1.0;
  EXPECT_THROW(run_guest_study(testbed, trace, bad), ConfigError);

  bad = short_jobs();
  bad.backoff_cap = SimDuration::seconds(1);  // < backoff_initial
  EXPECT_THROW(run_guest_study(testbed, trace, bad), ConfigError);
}

TEST(GuestStudyTest, InjectedKillsForceRestarts) {
  // Same trace, with vs without guest-kill faults: the kills must add
  // restarts even though the availability trace is unchanged.
  auto quiet = small_testbed();
  auto noisy = killing_testbed();
  const auto trace = run_testbed(quiet);  // workload streams are identical

  const auto lifecycle = short_jobs();
  const auto baseline = run_guest_study(quiet, trace, lifecycle);
  const auto chaotic = run_guest_study(noisy, trace, lifecycle);
  EXPECT_GT(chaotic.restarts, baseline.restarts);
}

}  // namespace
}  // namespace fgcs::core

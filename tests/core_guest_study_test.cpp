// Tests for the resilient guest lifecycle study: checkpointing, restart
// backoff, migration, determinism, and obs accounting.
#include <gtest/gtest.h>

#include <vector>

#include "fgcs/core/guest_study.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/monitor/availability.hpp"
#include "fgcs/obs/observer.hpp"
#include "fgcs/trace/records.hpp"
#include "fgcs/trace/trace_set.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::core {
namespace {

using sim::SimDuration;

TestbedConfig small_testbed() {
  TestbedConfig config;
  config.machines = 3;
  config.days = 7;
  config.seed = 1234;
  return config;
}

TestbedConfig killing_testbed() {
  TestbedConfig config = small_testbed();
  fault::FaultSpec kill;
  kill.kind = fault::FaultKind::kGuestKill;
  kill.rate_per_day = 4.0;
  kill.mean_minutes = 1.0;
  config.faults.specs.push_back(kill);
  return config;
}

GuestLifecycleConfig short_jobs() {
  GuestLifecycleConfig lifecycle;
  lifecycle.job_length = SimDuration::hours(6);
  lifecycle.submit_spacing = SimDuration::hours(8);
  return lifecycle;
}

bool same_outcomes(const GuestStudyResult& a, const GuestStudyResult& b) {
  if (a.jobs.size() != b.jobs.size()) return false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const auto& x = a.jobs[i];
    const auto& y = b.jobs[i];
    if (x.submit != y.submit || x.first_machine != y.first_machine ||
        x.final_machine != y.final_machine || x.completed != y.completed ||
        x.response != y.response || x.restarts != y.restarts ||
        x.migrations != y.migrations || x.checkpoints != y.checkpoints ||
        x.work_lost != y.work_lost) {
      return false;
    }
  }
  return true;
}

TEST(GuestStudyTest, ReplaysBitIdentically) {
  const auto testbed = killing_testbed();
  const auto trace = run_testbed(testbed);
  auto lifecycle = short_jobs();
  lifecycle.checkpoint_interval = SimDuration::hours(1);
  lifecycle.migrate_on_revocation = true;

  const auto a = run_guest_study(testbed, trace, lifecycle);
  const auto b = run_guest_study(testbed, trace, lifecycle);
  ASSERT_FALSE(a.jobs.empty());
  EXPECT_TRUE(same_outcomes(a, b));
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.work_lost, b.work_lost);
}

TEST(GuestStudyTest, CheckpointingBoundsLostWork) {
  const auto testbed = killing_testbed();
  const auto trace = run_testbed(testbed);

  auto no_ckpt = short_jobs();
  auto with_ckpt = short_jobs();
  with_ckpt.checkpoint_interval = SimDuration::minutes(30);
  with_ckpt.checkpoint_cost = SimDuration::minutes(1);

  const auto bare = run_guest_study(testbed, trace, no_ckpt);
  const auto saved = run_guest_study(testbed, trace, with_ckpt);
  ASSERT_FALSE(bare.jobs.empty());
  EXPECT_GT(bare.restarts, 0u);
  EXPECT_EQ(bare.checkpoints, 0u);
  EXPECT_GT(saved.checkpoints, 0u);
  // With checkpoints every 30 min, at most interval+cost of work is ever
  // at risk per kill; without them the whole attempt is lost.
  EXPECT_LT(saved.work_lost, bare.work_lost);
  EXPECT_GE(saved.completed, bare.completed);
}

TEST(GuestStudyTest, MigrationMovesJobsOffRevokedMachines) {
  const auto testbed = small_testbed();
  const auto trace = run_testbed(testbed);

  auto stay = short_jobs();
  auto move = short_jobs();
  move.migrate_on_revocation = true;

  const auto pinned = run_guest_study(testbed, trace, stay);
  const auto mobile = run_guest_study(testbed, trace, move);
  EXPECT_EQ(pinned.migrations, 0u);
  for (const auto& job : pinned.jobs) {
    EXPECT_EQ(job.first_machine, job.final_machine);
  }
  // The organic testbed trace has unavailability episodes, so revocations
  // occur and migrating jobs change machines.
  EXPECT_GT(mobile.migrations, 0u);
  bool moved = false;
  for (const auto& job : mobile.jobs) {
    if (job.first_machine != job.final_machine) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(GuestStudyTest, AggregatesMatchPerJobTotals) {
  const auto testbed = killing_testbed();
  auto lifecycle = short_jobs();
  lifecycle.checkpoint_interval = SimDuration::hours(1);
  const auto result = run_guest_study(testbed, lifecycle);

  std::uint32_t completed = 0, restarts = 0, migrations = 0, checkpoints = 0;
  SimDuration lost = SimDuration::zero();
  for (const auto& job : result.jobs) {
    completed += job.completed ? 1 : 0;
    restarts += job.restarts;
    migrations += job.migrations;
    checkpoints += job.checkpoints;
    lost += job.work_lost;
  }
  EXPECT_EQ(result.completed, completed);
  EXPECT_EQ(result.restarts, restarts);
  EXPECT_EQ(result.migrations, migrations);
  EXPECT_EQ(result.checkpoints, checkpoints);
  EXPECT_EQ(result.work_lost, lost);
  EXPECT_FALSE(result.summary_table().empty());
}

TEST(GuestStudyTest, ObsCountersTrackTheRun) {
  const auto testbed = killing_testbed();
  const auto trace = run_testbed(testbed);
  auto lifecycle = short_jobs();
  lifecycle.checkpoint_interval = SimDuration::hours(1);
  lifecycle.migrate_on_revocation = true;

  obs::Observer observer;
  GuestStudyResult result;
  {
    obs::ScopedObserver guard(&observer);
    result = run_guest_study(testbed, trace, lifecycle);
  }
  auto& metrics = observer.metrics();
  EXPECT_EQ(metrics.counter("guest.restarts").value(), result.restarts);
  EXPECT_EQ(metrics.counter("guest.migrations").value(), result.migrations);
  EXPECT_EQ(metrics.counter("guest.checkpoints").value(), result.checkpoints);
  EXPECT_EQ(metrics.counter("guest.completions").value(), result.completed);
  EXPECT_EQ(metrics.counter("guest.work_lost_us").value(),
            static_cast<std::uint64_t>(result.work_lost.as_micros()));
}

TEST(GuestStudyTest, ValidationRejectsBadPolicies) {
  const auto testbed = small_testbed();
  const auto trace = run_testbed(testbed);

  GuestLifecycleConfig bad = short_jobs();
  bad.job_length = SimDuration::zero();
  EXPECT_THROW(run_guest_study(testbed, trace, bad), ConfigError);

  bad = short_jobs();
  bad.backoff_factor = 0.5;
  EXPECT_THROW(run_guest_study(testbed, trace, bad), ConfigError);

  bad = short_jobs();
  bad.backoff_jitter = 1.0;
  EXPECT_THROW(run_guest_study(testbed, trace, bad), ConfigError);

  bad = short_jobs();
  bad.backoff_cap = SimDuration::seconds(1);  // < backoff_initial
  EXPECT_THROW(run_guest_study(testbed, trace, bad), ConfigError);
}

TEST(GuestStudyTest, InjectedKillsForceRestarts) {
  // Same trace, with vs without guest-kill faults: the kills must add
  // restarts even though the availability trace is unchanged.
  auto quiet = small_testbed();
  auto noisy = killing_testbed();
  const auto trace = run_testbed(quiet);  // workload streams are identical

  const auto lifecycle = short_jobs();
  const auto baseline = run_guest_study(quiet, trace, lifecycle);
  const auto chaotic = run_guest_study(noisy, trace, lifecycle);
  EXPECT_GT(chaotic.restarts, baseline.restarts);
}

// --- Analytic edge cases: hand-computable traces, exact expectations. ---

/// A trace with zero unavailability episodes over `days` on one machine.
trace::TraceSet quiet_trace(std::uint32_t machines, int days) {
  return trace::TraceSet(machines, sim::SimTime::epoch(),
                         sim::SimTime::epoch() + SimDuration::days(days));
}

/// A testbed whose fault plan kills the guest at exact hour offsets.
TestbedConfig scripted_kill_testbed(std::uint32_t machines, int days,
                                    std::vector<double> kill_hours) {
  TestbedConfig config;
  config.machines = machines;
  config.days = days;
  config.seed = 1;
  fault::FaultSpec kill;
  kill.kind = fault::FaultKind::kGuestKill;
  kill.at_hours = std::move(kill_hours);
  config.faults.specs.push_back(kill);
  return config;
}

TEST(GuestStudyTest, BackoffCapBoundsRestartDelaysExactly) {
  // One job, no organic failures, kills at hours 1..5, no checkpoints, no
  // jitter: every delay is min(cap, initial * factor^k) and the response
  // time is fully hand-computable.
  const auto testbed = scripted_kill_testbed(1, 2, {1, 2, 3, 4, 5});
  const auto trace = quiet_trace(1, 2);

  GuestLifecycleConfig lifecycle;
  lifecycle.job_length = SimDuration::hours(10);
  lifecycle.submit_spacing = SimDuration::hours(1000);  // single job
  lifecycle.checkpoint_interval = SimDuration::zero();
  lifecycle.backoff_initial = SimDuration::minutes(30);
  lifecycle.backoff_factor = 2.0;
  lifecycle.backoff_jitter = 0.0;

  // Cap binds from the third restart: delays 30m, 60m, 60m, 60m, 60m.
  // Kills at 1h (ran 1h) and 2h (ran 30m) hit mid-attempt; the restarts
  // at 3h, 4h, 5h die instantly on the scripted kills. The final attempt
  // starts at 6h and runs the full 10h: response 16h.
  lifecycle.backoff_cap = SimDuration::hours(1);
  const auto capped = run_guest_study(testbed, trace, lifecycle);
  ASSERT_EQ(capped.jobs.size(), 1u);
  EXPECT_TRUE(capped.jobs[0].completed);
  EXPECT_EQ(capped.jobs[0].response, SimDuration::hours(16));
  EXPECT_EQ(capped.jobs[0].restarts, 5u);
  EXPECT_EQ(capped.jobs[0].work_lost,
            SimDuration::hours(1) + SimDuration::minutes(30));
  EXPECT_EQ(capped.jobs[0].checkpoints, 0u);

  // With a cap that never binds, the doubling walks the job past the 4h
  // kill entirely: delays 30m, 1h, 2h, 4h, restart at 9h, response 19h.
  lifecycle.backoff_cap = SimDuration::hours(10);
  const auto uncapped = run_guest_study(testbed, trace, lifecycle);
  ASSERT_EQ(uncapped.jobs.size(), 1u);
  EXPECT_TRUE(uncapped.jobs[0].completed);
  EXPECT_EQ(uncapped.jobs[0].response, SimDuration::hours(19));
  EXPECT_EQ(uncapped.jobs[0].restarts, 4u);
  EXPECT_EQ(uncapped.jobs[0].work_lost,
            SimDuration::hours(1) + SimDuration::minutes(30));
}

TEST(GuestStudyTest, SingleMachineFleetNeverMigrates) {
  // Round-robin migration has nowhere to go on a one-machine fleet: the
  // flag must be a no-op and outcomes must match the pinned run exactly.
  TestbedConfig testbed = small_testbed();
  testbed.machines = 1;
  const auto trace = run_testbed(testbed);

  auto pinned = short_jobs();
  auto mobile = short_jobs();
  mobile.migrate_on_revocation = true;

  const auto a = run_guest_study(testbed, trace, pinned);
  const auto b = run_guest_study(testbed, trace, mobile);
  ASSERT_FALSE(b.jobs.empty());
  EXPECT_EQ(b.migrations, 0u);
  for (const auto& job : b.jobs) {
    EXPECT_EQ(job.first_machine, 0u);
    EXPECT_EQ(job.final_machine, 0u);
  }
  EXPECT_GT(b.restarts + static_cast<std::uint32_t>(b.jobs.size()), 0u);
  EXPECT_TRUE(same_outcomes(a, b))
      << "migrate_on_revocation changed a single-machine run";
}

TEST(GuestStudyTest, MigrationRoundRobinWrapsAroundTheFleet) {
  // Three machines with staggered episodes chase one job all the way
  // around the ring and back to machine 0.
  trace::TraceSet trace = quiet_trace(3, 2);
  auto episode = [](trace::MachineId m, double start_h, double end_h) {
    trace::UnavailabilityRecord r;
    r.machine = m;
    r.start = sim::SimTime::epoch() + SimDuration::minutes(
                                          static_cast<std::int64_t>(start_h * 60));
    r.end = sim::SimTime::epoch() + SimDuration::minutes(
                                        static_cast<std::int64_t>(end_h * 60));
    r.cause = monitor::AvailabilityState::kS5MachineUnavailable;
    r.host_cpu = 1.0;
    r.free_mem_mb = 100.0;
    return r;
  };
  trace.add(episode(0, 1.0, 1.5));
  trace.add(episode(1, 2.0, 2.5));
  trace.add(episode(2, 3.5, 4.0));

  TestbedConfig testbed;
  testbed.machines = 3;
  testbed.days = 2;
  testbed.seed = 1;

  GuestLifecycleConfig lifecycle;
  lifecycle.job_length = SimDuration::hours(4);
  lifecycle.submit_spacing = SimDuration::hours(1000);  // single job
  lifecycle.checkpoint_interval = SimDuration::zero();
  lifecycle.backoff_initial = SimDuration::minutes(30);
  lifecycle.backoff_factor = 2.0;
  lifecycle.backoff_cap = SimDuration::hours(30);
  lifecycle.backoff_jitter = 0.0;
  lifecycle.migrate_on_revocation = true;

  // Walk: die at 1h on m0 -> m1 at 1.5h; die at 2h -> m2 at 3h; die at
  // 3.5h -> m0 (wrap) at 5.5h; m0 is clear, finish at 9.5h.
  const auto result = run_guest_study(testbed, trace, lifecycle);
  ASSERT_EQ(result.jobs.size(), 1u);
  const auto& job = result.jobs[0];
  EXPECT_TRUE(job.completed);
  EXPECT_EQ(job.first_machine, 0u);
  EXPECT_EQ(job.final_machine, 0u) << "round-robin must wrap 2 -> 0";
  EXPECT_EQ(job.migrations, 3u);
  EXPECT_EQ(job.restarts, 3u);
  EXPECT_EQ(job.response, SimDuration::minutes(570));  // 9.5 h
  EXPECT_EQ(job.work_lost, SimDuration::hours(2));
}

TEST(GuestStudyTest, ZeroCostCheckpointsGiveExactAccounting) {
  // checkpoint_cost == 0: wall time equals remaining work, checkpoints
  // land every interval of runtime, and a kill loses only the progress
  // since the last checkpoint boundary.
  const auto testbed = scripted_kill_testbed(1, 2, {3});
  const auto trace = quiet_trace(1, 2);

  GuestLifecycleConfig lifecycle;
  lifecycle.job_length = SimDuration::hours(4);
  lifecycle.submit_spacing = SimDuration::hours(1000);  // single job
  lifecycle.checkpoint_interval = SimDuration::hours(1);
  lifecycle.checkpoint_cost = SimDuration::zero();
  lifecycle.backoff_initial = SimDuration::minutes(30);
  lifecycle.backoff_factor = 2.0;
  lifecycle.backoff_cap = SimDuration::hours(1);
  lifecycle.backoff_jitter = 0.0;

  // Kill at 3h: exactly 3 zero-cost checkpoints, zero work lost, restart
  // at 3.5h with 1h left, done at 4.5h.
  const auto result = run_guest_study(testbed, trace, lifecycle);
  ASSERT_EQ(result.jobs.size(), 1u);
  const auto& job = result.jobs[0];
  EXPECT_TRUE(job.completed);
  EXPECT_EQ(job.checkpoints, 3u);
  EXPECT_EQ(job.restarts, 1u);
  EXPECT_EQ(job.work_lost, SimDuration::zero());
  EXPECT_EQ(job.response,
            SimDuration::hours(4) + SimDuration::minutes(30));
}

}  // namespace
}  // namespace fgcs::core

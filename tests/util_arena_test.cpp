// Tests for the bump arena and its std-allocator adapter: alignment,
// reset-and-reuse (the zero-steady-state-allocation contract), growth
// past the initial chunk, move semantics, and the env knobs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <utility>

#include "fgcs/util/arena.hpp"
#include "fgcs/util/knobs.hpp"

namespace fgcs::util {
namespace {

TEST(Arena, RespectsAlignment) {
  Arena arena(256);
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    void* p = arena.allocate(3, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
}

TEST(Arena, BumpsWithinOneChunk) {
  Arena arena(1024);
  auto* a = static_cast<char*>(arena.allocate(16, 8));
  auto* b = static_cast<char*>(arena.allocate(16, 8));
  EXPECT_EQ(b, a + 16);
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_GE(arena.bytes_used(), 32u);
}

TEST(Arena, GrowsPastInitialChunk) {
  Arena arena(64);
  // Demand far more than the first chunk; every allocation must succeed
  // and the reserve must grow to cover it.
  std::size_t total = 0;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.allocate(100, 8);
    ASSERT_NE(p, nullptr);
    total += 100;
  }
  EXPECT_GT(arena.chunk_count(), 1u);
  EXPECT_GE(arena.bytes_reserved(), total);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena arena(64);
  void* p = arena.allocate(10'000, 16);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 10'000u);
  // The oversized chunk is still bump-usable afterwards.
  void* q = arena.allocate(8, 8);
  ASSERT_NE(q, nullptr);
}

TEST(Arena, ResetRetainsChunksAndReusesThem) {
  Arena arena(128);
  for (int i = 0; i < 50; ++i) arena.allocate(64, 8);
  const std::size_t chunks = arena.chunk_count();
  const std::size_t reserved = arena.bytes_reserved();

  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.chunk_count(), chunks);

  // Re-running the identical pattern must not reserve anything new:
  // this is the steady-state zero-allocation contract the fleet engine
  // relies on.
  for (int i = 0; i < 50; ++i) arena.allocate(64, 8);
  EXPECT_EQ(arena.chunk_count(), chunks);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, ZeroByteAllocationIsValid) {
  Arena arena(64);
  void* p = arena.allocate(0, 1);
  EXPECT_NE(p, nullptr);
}

TEST(ArenaAllocator, VectorDrawsFromArena) {
  Arena arena(4096);
  ArenaVector<int> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v[99], 99);
  EXPECT_GT(arena.bytes_used(), 0u);
  // The live buffer lives inside the arena's reserve.
  const auto* p = reinterpret_cast<const std::byte*>(v.data());
  (void)p;
}

TEST(ArenaAllocator, NullArenaFallsBackToHeap) {
  ArenaVector<int> v;  // default allocator: no arena
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.front(), 0);
}

TEST(ArenaAllocator, MoveStealsBuffer) {
  Arena arena(4096);
  ArenaVector<int> a{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 16; ++i) a.push_back(i);
  const int* buf = a.data();
  ArenaVector<int> b = std::move(a);
  EXPECT_EQ(b.data(), buf);  // allocator propagated, no reallocation
  EXPECT_EQ(b.size(), 16u);
}

TEST(ArenaAllocator, ComparesByArena) {
  Arena x(64), y(64);
  EXPECT_TRUE(ArenaAllocator<int>(&x) == ArenaAllocator<int>(&x));
  EXPECT_TRUE(ArenaAllocator<int>(&x) != ArenaAllocator<int>(&y));
  EXPECT_TRUE(ArenaAllocator<int>() == ArenaAllocator<char>());
}

TEST(Knobs, EnvOrParsesAndFallsBack) {
  ::setenv("FGCS_TEST_KNOB", "1234", 1);
  EXPECT_EQ(env_or("FGCS_TEST_KNOB", 7), 1234u);
  ::setenv("FGCS_TEST_KNOB", "not-a-number", 1);
  EXPECT_EQ(env_or("FGCS_TEST_KNOB", 7), 7u);
  ::unsetenv("FGCS_TEST_KNOB");
  EXPECT_EQ(env_or("FGCS_TEST_KNOB", 7), 7u);
}

TEST(Knobs, MalformedKnobWarnsExactlyOnce) {
  // A malformed knob must not be silently treated as unset — but hot
  // callers re-read knobs freely, so the warning fires once per variable.
  // (The warned-set persists for the process; use a name no other test
  // touches.)
  ::setenv("FGCS_TEST_WARN_KNOB", "12cores", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env_or("FGCS_TEST_WARN_KNOB", 3), 3u);
  const std::string first = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(first.find("ignoring malformed"), std::string::npos) << first;
  EXPECT_NE(first.find("FGCS_TEST_WARN_KNOB"), std::string::npos) << first;
  EXPECT_NE(first.find("12cores"), std::string::npos) << first;

  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env_or("FGCS_TEST_WARN_KNOB", 3), 3u);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
  ::unsetenv("FGCS_TEST_WARN_KNOB");
}

TEST(Knobs, NegativeValueWarnsAndFallsBack) {
  // strtoull would happily wrap "-4" to a huge unsigned; a leading '-'
  // is malformed, not a 2^64 thread count.
  ::setenv("FGCS_TEST_NEG_KNOB", "-4", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env_or("FGCS_TEST_NEG_KNOB", 9), 9u);
  const std::string warning = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(warning.find("ignoring malformed"), std::string::npos) << warning;
  ::unsetenv("FGCS_TEST_NEG_KNOB");
}

TEST(Knobs, WellFormedAndUnsetKnobsStaySilent) {
  ::setenv("FGCS_TEST_QUIET_KNOB", "42", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env_or("FGCS_TEST_QUIET_KNOB", 7), 42u);
  ::unsetenv("FGCS_TEST_QUIET_KNOB");
  EXPECT_EQ(env_or("FGCS_TEST_QUIET_KNOB", 7), 7u);
  ::setenv("FGCS_TEST_QUIET_KNOB", "", 1);
  EXPECT_EQ(env_or("FGCS_TEST_QUIET_KNOB", 7), 7u);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
  ::unsetenv("FGCS_TEST_QUIET_KNOB");
}

TEST(Knobs, EnvFlagSemantics) {
  ::unsetenv("FGCS_TEST_FLAG");
  EXPECT_FALSE(env_flag("FGCS_TEST_FLAG"));
  ::setenv("FGCS_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("FGCS_TEST_FLAG"));
  ::setenv("FGCS_TEST_FLAG", "", 1);
  EXPECT_FALSE(env_flag("FGCS_TEST_FLAG"));
  ::setenv("FGCS_TEST_FLAG", "1", 1);
  EXPECT_TRUE(env_flag("FGCS_TEST_FLAG"));
  ::unsetenv("FGCS_TEST_FLAG");
}

}  // namespace
}  // namespace fgcs::util

// Crash-tolerant fleet sweeps: durable checkpoints, resume bit-identity,
// shard supervision (retries), and poison-machine quarantine.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "fgcs/fleet/fleet.hpp"
#include "fgcs/obs/observer.hpp"
#include "fgcs/recover/manifest.hpp"
#include "fgcs/recover/shard_state.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::fleet {
namespace {

namespace fs = std::filesystem;

class FleetResume : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fgcs_resume_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string read_file(const fs::path& p) const {
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.good()) << p;
    return std::string{std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>()};
  }

  fs::path dir_;
};

core::TestbedConfig small_testbed() {
  core::TestbedConfig config;
  config.machines = 8;
  config.days = 4;
  config.seed = 20060807;
  return config;
}

FleetConfig spill_config(const fs::path& dir) {
  FleetConfig config;
  config.testbed = small_testbed();
  config.shard_machines = 3;  // shards of 3, 3, 2 machines
  config.threads = 2;
  config.spill_dir = dir.string();
  config.metrics_path = (dir / "metrics.met1").string();
  config.metrics_resolution = sim::SimDuration::hours(6);
  return config;
}

TEST_F(FleetResume, CheckpointedRunLeavesAValidatedManifest) {
  const auto result = run_fleet(spill_config(dir_));
  EXPECT_EQ(result.resumed_shards, 0u);
  EXPECT_EQ(result.total_retries, 0u);
  EXPECT_TRUE(result.quarantined.empty());

  // MANIFEST parses, matches this config's fingerprint, and every claimed
  // file validates (plan_resume drops nothing).
  const std::string text = read_file(dir_ / "MANIFEST");
  const recover::Manifest m = recover::Manifest::parse(text, "MANIFEST");
  EXPECT_EQ(m.shard_count, 3u);
  ASSERT_EQ(m.shards.size(), 3u);
  const auto plan = recover::plan_resume(dir_.string(), m.fingerprint, 3,
                                         small_testbed().seed);
  EXPECT_EQ(plan.valid.size(), 3u);
  EXPECT_TRUE(plan.dropped.empty());
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_TRUE(fs::exists(dir_ / recover::shard_state_name(s))) << s;
  }
}

TEST_F(FleetResume, NoCheckpointModeWritesNoManifestOrStateBlobs) {
  FleetConfig config = spill_config(dir_);
  config.checkpoint = false;
  run_fleet(config);
  EXPECT_FALSE(fs::exists(dir_ / "MANIFEST"));
  EXPECT_FALSE(fs::exists(dir_ / recover::shard_state_name(0)));
}

TEST_F(FleetResume, ResumeRequiresASpillDir) {
  FleetConfig config;
  config.testbed = small_testbed();
  config.resume = true;
  EXPECT_THROW(run_fleet(config), ConfigError);
  config.max_shard_retries = 0;
  config.resume = false;
  config.spill_dir = dir_.string();
  EXPECT_THROW(run_fleet(config), ConfigError);
}

TEST_F(FleetResume, ResumingACompleteSweepSimulatesNothing) {
  const auto clean = run_fleet(spill_config(dir_));
  std::vector<std::string> before;
  for (const auto& seg : clean.segment_paths()) before.push_back(read_file(seg));
  const std::string metrics_before = read_file(dir_ / "metrics.met1");
  const std::string manifest_before = read_file(dir_ / "MANIFEST");

  FleetConfig config = spill_config(dir_);
  config.resume = true;
  std::atomic<int> simulated{0};
  config.machine_hook = [&](trace::MachineId, int) { ++simulated; };
  const auto resumed = run_fleet(config);

  EXPECT_EQ(resumed.resumed_shards, 3u);
  EXPECT_EQ(simulated.load(), 0);
  EXPECT_TRUE(resumed.resume_dropped.empty());
  EXPECT_EQ(resumed.total_records, clean.total_records);
  for (const auto& shard : resumed.shards) EXPECT_TRUE(shard.resumed);

  // Byte-identity: segments untouched, metrics and manifest rewritten
  // identically from the restored state.
  const auto after = resumed.segment_paths();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(read_file(after[i]), before[i]) << i;
  }
  EXPECT_EQ(read_file(dir_ / "metrics.met1"), metrics_before);
  EXPECT_EQ(read_file(dir_ / "MANIFEST"), manifest_before);
}

TEST_F(FleetResume, DamagedSegmentReRunsOnlyThatShard) {
  const auto clean = run_fleet(spill_config(dir_));
  std::vector<std::string> before;
  for (const auto& seg : clean.segment_paths()) before.push_back(read_file(seg));

  fs::remove(clean.segment_paths()[1]);

  FleetConfig config = spill_config(dir_);
  config.resume = true;
  std::atomic<int> simulated{0};
  config.machine_hook = [&](trace::MachineId, int) { ++simulated; };
  const auto resumed = run_fleet(config);

  EXPECT_EQ(resumed.resumed_shards, 2u);
  EXPECT_EQ(simulated.load(), 3);  // shard 1's machines only
  ASSERT_EQ(resumed.resume_dropped.size(), 1u);
  EXPECT_NE(resumed.resume_dropped[0].find("segment missing"),
            std::string::npos)
      << resumed.resume_dropped[0];
  EXPECT_TRUE(resumed.shards[0].resumed);
  EXPECT_FALSE(resumed.shards[1].resumed);
  EXPECT_TRUE(resumed.shards[2].resumed);

  // The re-run shard reproduced its segment bit-identically.
  const auto after = resumed.segment_paths();
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(read_file(after[i]), before[i]) << i;
  }
}

TEST_F(FleetResume, ResumingADifferentConfigsDirectoryIsLoud) {
  run_fleet(spill_config(dir_));
  FleetConfig config = spill_config(dir_);
  config.testbed.seed ^= 1;
  config.resume = true;
  EXPECT_THROW(run_fleet(config), IoError);
}

TEST_F(FleetResume, TransientFailureIsRetriedAndInvisibleInTheResult) {
  const auto clean = run_fleet(spill_config(dir_));
  std::vector<std::string> before;
  for (const auto& seg : clean.segment_paths()) before.push_back(read_file(seg));
  fs::remove_all(dir_);
  fs::create_directories(dir_);

  obs::Observer observer;
  FleetConfig config = spill_config(dir_);
  // Machine 4 (in shard 1) fails its first attempt, succeeds on retry.
  std::atomic<int> failures{0};
  config.machine_hook = [&](trace::MachineId m, int attempt) {
    if (m == 4 && attempt == 1) {
      ++failures;
      throw std::runtime_error("transient sensor wedge");
    }
  };
  FleetResult result;
  {
    obs::ScopedObserver guard(&observer);
    result = run_fleet(config);
  }

  EXPECT_EQ(failures.load(), 1);
  EXPECT_EQ(result.total_retries, 1u);
  EXPECT_EQ(result.shards[1].retries, 1u);
  EXPECT_TRUE(result.quarantined.empty());
  EXPECT_EQ(
      observer.metrics().counter("fleet.shard_retries").value(), 1u);
  EXPECT_EQ(
      observer.metrics().counter("fleet.machines_quarantined").value(), 0u);

  // The discarded attempt left no trace: every segment is bit-identical
  // to the failure-free sweep.
  const auto after = result.segment_paths();
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(read_file(after[i]), before[i]) << i;
  }
}

TEST_F(FleetResume, PoisonMachineIsQuarantinedNotFatal) {
  obs::Observer observer;
  FleetConfig config = spill_config(dir_);
  config.max_shard_retries = 2;
  config.machine_hook = [](trace::MachineId m, int) {
    if (m == 4) throw std::runtime_error("poison machine");
  };
  FleetResult result;
  {
    obs::ScopedObserver guard(&observer);
    result = run_fleet(config);
  }

  ASSERT_EQ(result.quarantined.size(), 1u);
  EXPECT_EQ(result.quarantined[0], 4u);
  EXPECT_EQ(result.shards[1].quarantined, result.quarantined);
  EXPECT_GE(result.shards[1].retries, 2u);
  EXPECT_EQ(
      observer.metrics().counter("fleet.machines_quarantined").value(), 1u);

  // The quarantined machine's records are absent; everyone else's match
  // a sweep that never had machine 4.
  const auto trace = result.load_trace();
  for (const auto& r : trace.records()) EXPECT_NE(r.machine, 4u);
  EXPECT_EQ(result.total_records, trace.size());

  // A sweep whose budget is exhausted fleet-wide still completes, and the
  // checkpointed result resumes cleanly.
  FleetConfig again = spill_config(dir_);
  again.resume = true;
  const auto resumed = run_fleet(again);
  EXPECT_EQ(resumed.resumed_shards, 3u);
  EXPECT_EQ(resumed.total_records, result.total_records);
}

TEST_F(FleetResume, FullyPoisonedShardDegradesToEmptyNotFatal) {
  // Every machine of shard 0 fails every attempt: the supervisor
  // quarantines them one by one and the shard completes empty — one bad
  // rack degrades the sweep, it doesn't sink it.
  FleetConfig config = spill_config(dir_);
  config.max_shard_retries = 1;
  config.machine_hook = [](trace::MachineId m, int) {
    if (m < 3) throw std::runtime_error("rack on fire");
  };
  const auto result = run_fleet(config);
  EXPECT_EQ(result.quarantined,
            (std::vector<trace::MachineId>{0, 1, 2}));
  EXPECT_EQ(result.shards[0].records, 0u);
  EXPECT_EQ(result.shards[0].retries, 3u);
  EXPECT_GT(result.shards[1].records, 0u);
  const auto trace = result.load_trace();
  for (const auto& r : trace.records()) EXPECT_GE(r.machine, 3u);
}

}  // namespace
}  // namespace fgcs::fleet

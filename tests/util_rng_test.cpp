// Tests for the deterministic RNG layer: reproducibility, keyed substream
// independence, and sampler statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "fgcs/util/rng.hpp"

namespace fgcs::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, ReferenceDeterminism) {
  Xoshiro256 g1(123), g2(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(g1.next(), g2.next());
  }
}

TEST(Xoshiro256, JumpChangesSequence) {
  Xoshiro256 a(7), b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngStream, SameKeysSameSequence) {
  RngStream a(99, {1, 2, 3});
  RngStream b(99, {1, 2, 3});
  for (int i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngStream, DifferentKeysIndependent) {
  RngStream a(99, {1, 2, 3});
  RngStream b(99, {1, 2, 4});
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngStream, KeyOrderMatters) {
  EXPECT_NE(RngStream::derive(5, {1, 2}), RngStream::derive(5, {2, 1}));
}

TEST(RngStream, ChildStreamsDiffer) {
  RngStream parent(1);
  RngStream c1 = parent.child(0);
  RngStream c2 = parent.child(0);  // same key, different parent position
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(RngStream, UniformInUnitInterval) {
  RngStream rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngStream, UniformMeanAndVariance) {
  RngStream rng(4);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(RngStream, UniformRangeRespectsBounds) {
  RngStream rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(RngStream, UniformIndexCoversRange) {
  RngStream rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngStream, UniformIndexOneAlwaysZero) {
  RngStream rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_index(1), 0u);
  }
}

TEST(RngStream, UniformIntInclusiveBounds) {
  RngStream rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngStream, NormalMoments) {
  RngStream rng(9);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngStream, NormalScaled) {
  RngStream rng(10);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngStream, ExponentialMean) {
  RngStream rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(3.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngStream, BernoulliFrequency) {
  RngStream rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

// Property: derive() is a pure function of (seed, keys).
TEST(RngStream, DeriveIsPure) {
  for (std::uint64_t seed : {0ULL, 1ULL, 0xFFFFFFFFFFFFFFFFULL}) {
    EXPECT_EQ(RngStream::derive(seed, {9, 9}), RngStream::derive(seed, {9, 9}));
  }
}

}  // namespace
}  // namespace fgcs::util

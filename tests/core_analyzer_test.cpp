// Tests for the trace analyzer on hand-built traces with known answers.
#include <gtest/gtest.h>

#include "fgcs/core/analyzer.hpp"
#include "fgcs/trace/trace_set.hpp"

namespace fgcs::core {
namespace {

using namespace sim::time_literals;
using monitor::AvailabilityState;
using sim::SimDuration;
using sim::SimTime;

trace::UnavailabilityRecord rec(trace::MachineId m, SimTime start,
                                SimDuration dur, AvailabilityState cause) {
  trace::UnavailabilityRecord r;
  r.machine = m;
  r.start = start;
  r.end = start + dur;
  r.cause = cause;
  return r;
}

TEST(Analyzer, Table2CountsByCause) {
  trace::TraceSet t(2, SimTime::epoch(),
                    SimTime::epoch() + SimDuration::days(7));
  const SimTime d0 = SimTime::epoch();
  // Machine 0: 2x S3, 1x S4, 1x S5 (reboot).
  t.add(rec(0, d0 + 10_h, 1_h, AvailabilityState::kS3CpuUnavailable));
  t.add(rec(0, d0 + 30_h, 1_h, AvailabilityState::kS3CpuUnavailable));
  t.add(rec(0, d0 + 50_h, 30_min, AvailabilityState::kS4MemoryThrashing));
  t.add(rec(0, d0 + 70_h, SimDuration::seconds(30),
            AvailabilityState::kS5MachineUnavailable));
  // Machine 1: 1x S3, 1x S5 (long failure).
  t.add(rec(1, d0 + 20_h, 2_h, AvailabilityState::kS3CpuUnavailable));
  t.add(rec(1, d0 + 60_h, 3_h, AvailabilityState::kS5MachineUnavailable));

  const TraceAnalyzer analyzer(t);
  const auto t2 = analyzer.table2();
  EXPECT_EQ(t2.machines, 2u);
  EXPECT_EQ(t2.total.min, 2);
  EXPECT_EQ(t2.total.max, 4);
  EXPECT_DOUBLE_EQ(t2.total.mean, 3.0);
  EXPECT_EQ(t2.cpu_contention.min, 1);
  EXPECT_EQ(t2.cpu_contention.max, 2);
  EXPECT_EQ(t2.mem_contention.max, 1);
  EXPECT_EQ(t2.urr.min, 1);
  EXPECT_EQ(t2.urr.max, 1);
  // Machine 0: cpu 50%; machine 1: cpu 50%.
  EXPECT_DOUBLE_EQ(t2.cpu_pct_min, 0.5);
  EXPECT_DOUBLE_EQ(t2.cpu_pct_max, 0.5);
  // One of two URR episodes is a sub-minute reboot.
  EXPECT_DOUBLE_EQ(t2.reboot_fraction_of_urr, 0.5);
}

TEST(Analyzer, IntervalStatsByDayClass) {
  // Day 0 (Monday) and day 5 (Saturday) each contain two episodes 3h apart
  // on machine 0.
  trace::TraceSet t(1, SimTime::epoch(),
                    SimTime::epoch() + SimDuration::days(7));
  for (int day : {0, 5}) {
    const SimTime base = SimTime::epoch() + SimDuration::days(day);
    t.add(rec(0, base + 8_h, 1_h, AvailabilityState::kS3CpuUnavailable));
    t.add(rec(0, base + 12_h, 1_h, AvailabilityState::kS3CpuUnavailable));
  }
  const TraceAnalyzer analyzer(t);
  const auto iv = analyzer.intervals();
  // Weekday intervals: [Mon 9h, Mon 12h] (3h) and the long gap
  // [Mon 13h, Sat 8h] which starts on a weekday.
  EXPECT_EQ(iv.weekday.count, 2u);
  EXPECT_EQ(iv.weekend.count, 1u);
  EXPECT_DOUBLE_EQ(iv.weekend.ecdf_hours.min(), 3.0);
  EXPECT_DOUBLE_EQ(iv.weekday.ecdf_hours.min(), 3.0);
  // [Mon 13:00, Sat 08:00] = 4 days 19 hours.
  EXPECT_DOUBLE_EQ(iv.weekday.ecdf_hours.max(), 4.0 * 24.0 + 19.0);
  EXPECT_DOUBLE_EQ(iv.weekend.frac_2h_to_4h, 1.0);
}

TEST(Analyzer, HourlyPatternCountsSpanningEpisodes) {
  trace::TraceSet t(1, SimTime::epoch(),
                    SimTime::epoch() + SimDuration::days(7));
  // A 2.5-hour episode from 10:15 on day 0 overlaps hours 10, 11, 12.
  t.add(rec(0, SimTime::epoch() + 10_h + 15_min, 2_h + 30_min,
            AvailabilityState::kS3CpuUnavailable));
  const TraceAnalyzer analyzer(t);
  const auto pattern = analyzer.hourly();
  EXPECT_EQ(pattern.weekday_days, 5);
  EXPECT_EQ(pattern.weekend_days, 2);
  // Day 0 contributes 1 to hours 10-12; the other 4 weekdays contribute 0.
  EXPECT_DOUBLE_EQ(pattern.weekday[10].max, 1.0);
  EXPECT_DOUBLE_EQ(pattern.weekday[11].max, 1.0);
  EXPECT_DOUBLE_EQ(pattern.weekday[12].max, 1.0);
  EXPECT_DOUBLE_EQ(pattern.weekday[13].max, 0.0);
  EXPECT_DOUBLE_EQ(pattern.weekday[9].max, 0.0);
  EXPECT_DOUBLE_EQ(pattern.weekday[10].mean, 0.2);
  EXPECT_DOUBLE_EQ(pattern.weekend[10].max, 0.0);
}

TEST(Analyzer, HourlyCountsAggregateMachines) {
  trace::TraceSet t(3, SimTime::epoch(),
                    SimTime::epoch() + SimDuration::days(1));
  for (trace::MachineId m = 0; m < 3; ++m) {
    t.add(rec(m, SimTime::epoch() + 4_h, 30_min,
              AvailabilityState::kS3CpuUnavailable));
  }
  const TraceAnalyzer analyzer(t);
  const auto pattern = analyzer.hourly();
  // All three machines fail in hour 4-5 (the updatedb effect).
  EXPECT_DOUBLE_EQ(pattern.weekday[4].mean, 3.0);
}

TEST(Analyzer, RelativeDeviationZeroForPerfectlyRegularTrace) {
  trace::TraceSet t(1, SimTime::epoch(),
                    SimTime::epoch() + SimDuration::days(14));
  for (int d = 0; d < 14; ++d) {
    t.add(rec(0, SimTime::epoch() + SimDuration::days(d) + 4_h, 30_min,
              AvailabilityState::kS3CpuUnavailable));
  }
  const TraceAnalyzer analyzer(t);
  EXPECT_DOUBLE_EQ(analyzer.hourly_relative_deviation(false), 0.0);
  EXPECT_DOUBLE_EQ(analyzer.hourly_relative_deviation(true), 0.0);
}

TEST(Analyzer, EmptyTraceYieldsZeroedStats) {
  trace::TraceSet t(2, SimTime::epoch(),
                    SimTime::epoch() + SimDuration::days(1));
  const TraceAnalyzer analyzer(t);
  const auto t2 = analyzer.table2();
  EXPECT_EQ(t2.total.max, 0);
  EXPECT_DOUBLE_EQ(t2.reboot_fraction_of_urr, 0.0);
  const auto iv = analyzer.intervals();
  EXPECT_EQ(iv.weekday.count, 0u);
}

}  // namespace
}  // namespace fgcs::core

// Tests for descriptive statistics.
#include <gtest/gtest.h>

#include <vector>

#include "fgcs/stats/descriptive.hpp"

namespace fgcs::stats {
namespace {

TEST(Mean, BasicAndEmpty) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{-5}), -5.0);
}

TEST(Variance, KnownValues) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{2, 4, 4, 4, 5, 5, 7, 9}),
                   32.0 / 7.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{}), 0.0);
}

TEST(QuantileSorted, Interpolates) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.125), 1.5);
}

TEST(QuantileSorted, Degenerate) {
  EXPECT_DOUBLE_EQ(quantile_sorted(std::vector<double>{}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(std::vector<double>{7}, 0.9), 7.0);
}

TEST(Quantile, SortsInput) {
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{5, 1, 3, 2, 4}, 0.5), 3.0);
}

TEST(Summary, AllFields) {
  const std::vector<double> xs{4, 1, 3, 2, 5};
  const Summary s = Summary::of(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q25, 2.0);
  EXPECT_DOUBLE_EQ(s.q75, 4.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(Summary, Empty) {
  const Summary s = Summary::of(std::vector<double>{});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Pearson, DegenerateIsZero) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
  EXPECT_DOUBLE_EQ(pearson(std::vector<double>{1}, std::vector<double>{1}),
                   0.0);
}

TEST(Autocorrelation, PeriodicSignal) {
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(autocorrelation(xs, 2), 0.9);
  EXPECT_LT(autocorrelation(xs, 1), -0.9);
}

TEST(Autocorrelation, Degenerate) {
  EXPECT_DOUBLE_EQ(autocorrelation(std::vector<double>{1, 2}, 5), 0.0);
  EXPECT_DOUBLE_EQ(autocorrelation(std::vector<double>{3, 3, 3, 3}, 1), 0.0);
}

}  // namespace
}  // namespace fgcs::stats

// Tests for text-table rendering and number formatting.
#include <gtest/gtest.h>

#include "fgcs/util/error.hpp"
#include "fgcs/util/table.hpp"

namespace fgcs::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"a", "bb"});
  t.add("1", "2");
  const std::string s = t.str();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"x", "y"});
  t.add("long-cell", "1");
  t.add("s", "2");
  const std::string s = t.str();
  // Both data rows start their second column at the same offset.
  const auto line_at = [&](int n) {
    std::size_t pos = 0;
    for (int i = 0; i < n; ++i) pos = s.find('\n', pos) + 1;
    return s.substr(pos, s.find('\n', pos) - pos);
  };
  EXPECT_EQ(line_at(2).find('1'), line_at(3).find('2'));
}

TEST(TextTable, ArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add("only-one"), ConfigError);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable t({}), ConfigError);
}

TEST(TextTable, MixedCellTypes) {
  TextTable t({"s", "i", "d"});
  t.add("x", 42, 2.5);
  EXPECT_NE(t.str().find("42"), std::string::npos);
  EXPECT_NE(t.str().find("2.500"), std::string::npos);
}

TEST(FormatDouble, Decimals) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(3.0, 0), "3");
}

TEST(FormatPercent, Basic) {
  EXPECT_EQ(format_percent(0.0526, 1), "5.3%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
  EXPECT_EQ(format_percent(0.0, 2), "0.00%");
}

TEST(FormatDuration, Ranges) {
  EXPECT_EQ(format_duration_s(3.2), "3.2s");
  EXPECT_EQ(format_duration_s(125.0), "2m 05s");
  EXPECT_EQ(format_duration_s(7380.0), "2h 03m");
}

}  // namespace
}  // namespace fgcs::util

// Tests for trace serialization (CSV and binary round trips).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fgcs/trace/io.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::trace {
namespace {

using monitor::AvailabilityState;
using sim::SimDuration;
using sim::SimTime;

TraceSet sample_trace() {
  TraceSet t(3, SimTime::epoch(), SimTime::epoch() + SimDuration::days(2));
  UnavailabilityRecord r;
  r.machine = 0;
  r.start = SimTime::from_micros(1'000'000);
  r.end = SimTime::from_micros(61'000'000);
  r.cause = AvailabilityState::kS3CpuUnavailable;
  r.host_cpu = 0.875;
  r.free_mem_mb = 512.25;
  t.add(r);
  r.machine = 2;
  r.start = SimTime::from_micros(100'000'123);
  r.end = SimTime::from_micros(100'040'123);
  r.cause = AvailabilityState::kS5MachineUnavailable;
  r.host_cpu = 0.0;
  r.free_mem_mb = 0.0;
  t.add(r);
  r.machine = 1;
  r.start = SimTime::from_micros(7);
  r.end = SimTime::from_micros(11);
  r.cause = AvailabilityState::kS4MemoryThrashing;
  r.host_cpu = 0.3;
  r.free_mem_mb = 150.0;
  t.add(r);
  return t;
}

void expect_equal(const TraceSet& a, const TraceSet& b) {
  EXPECT_EQ(a.machine_count(), b.machine_count());
  EXPECT_EQ(a.horizon_start(), b.horizon_start());
  EXPECT_EQ(a.horizon_end(), b.horizon_end());
  const auto ra = a.records();
  const auto rb = b.records();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].machine, rb[i].machine);
    EXPECT_EQ(ra[i].start, rb[i].start);
    EXPECT_EQ(ra[i].end, rb[i].end);
    EXPECT_EQ(ra[i].cause, rb[i].cause);
    EXPECT_DOUBLE_EQ(ra[i].host_cpu, rb[i].host_cpu);
    EXPECT_DOUBLE_EQ(ra[i].free_mem_mb, rb[i].free_mem_mb);
  }
}

TEST(TraceIo, CsvRoundTrip) {
  const auto original = sample_trace();
  std::stringstream buffer;
  write_trace_csv(original, buffer);
  const auto loaded = read_trace_csv(buffer);
  expect_equal(original, loaded);
}

TEST(TraceIo, BinaryRoundTrip) {
  const auto original = sample_trace();
  std::stringstream buffer;
  write_trace_binary(original, buffer);
  const auto loaded = read_trace_binary(buffer);
  expect_equal(original, loaded);
}

TEST(TraceIo, CsvHasHumanReadableHeader) {
  std::stringstream buffer;
  write_trace_csv(sample_trace(), buffer);
  const std::string s = buffer.str();
  EXPECT_NE(s.find("# fgcs-trace v1"), std::string::npos);
  EXPECT_NE(s.find("machine,start_us,end_us,cause,host_cpu,free_mem_mb"),
            std::string::npos);
  EXPECT_NE(s.find("S5"), std::string::npos);
}

TEST(TraceIo, CsvMissingHeaderThrows) {
  std::stringstream buffer("machine,start_us\n");
  EXPECT_THROW(read_trace_csv(buffer), IoError);
}

TEST(TraceIo, CsvBadMetadataThrows) {
  std::stringstream buffer("# fgcs-trace v1 machines=0 start_us=0 end_us=5\n");
  EXPECT_THROW(read_trace_csv(buffer), IoError);
}

TEST(TraceIo, BinaryBadMagicThrows) {
  std::stringstream buffer("NOTATRACEFILE");
  EXPECT_THROW(read_trace_binary(buffer), IoError);
}

TEST(TraceIo, BinaryTruncatedThrows) {
  const auto original = sample_trace();
  std::stringstream buffer;
  write_trace_binary(original, buffer);
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream half(data);
  EXPECT_THROW(read_trace_binary(half), IoError);
}

TEST(TraceIo, BinaryRejectsInvalidCause) {
  const auto original = sample_trace();
  std::stringstream buffer;
  write_trace_binary(original, buffer);
  std::string data = buffer.str();
  // The first record's cause byte sits after magic(8) + u32 + i64*2 + u64
  // + (u32 + i64 + i64) = 8+4+16+8+20 = 56.
  data[56] = 9;
  std::stringstream bad(data);
  EXPECT_THROW(read_trace_binary(bad), IoError);
}

TEST(TraceIo, SaveLoadByExtension) {
  const auto original = sample_trace();
  const std::string csv_path = "/tmp/fgcs_io_test.csv";
  const std::string bin_path = "/tmp/fgcs_io_test.trc";
  save_trace(original, csv_path);
  save_trace(original, bin_path);
  expect_equal(original, load_trace(csv_path));
  expect_equal(original, load_trace(bin_path));
  // Binary is the compact format.
  std::ifstream csv_in(csv_path, std::ios::ate);
  std::ifstream bin_in(bin_path, std::ios::ate | std::ios::binary);
  EXPECT_GT(csv_in.tellg(), 0);
  EXPECT_GT(bin_in.tellg(), 0);
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace("/tmp/fgcs_does_not_exist.trc"), IoError);
}

}  // namespace
}  // namespace fgcs::trace

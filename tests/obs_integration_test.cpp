// End-to-end observability: run a real testbed machine under an installed
// Observer and cross-check the recorded metrics and trace events against
// the ground truth the testbed itself returns (records + StateTimeline).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fgcs/core/testbed.hpp"
#include "fgcs/monitor/availability.hpp"
#include "fgcs/obs/observer.hpp"

namespace fgcs::obs {
namespace {

using monitor::AvailabilityState;

core::TestbedConfig small_config() {
  core::TestbedConfig config;
  config.machines = 1;
  config.days = 7;
  config.seed = 20050815;
  return config;
}

TEST(ObsIntegration, TestbedMachineMetricsMatchGroundTruth) {
  const auto config = small_config();

  Observer obs;
  core::TestbedMachineDetail detail;
  {
    ScopedObserver guard(&obs);
    detail = core::run_testbed_machine_detailed(config, 0);
  }

  // Every monitor sample is one simulation event: one periodic task firing
  // every sample_period over `days` days.
  const auto expected_samples = static_cast<std::uint64_t>(
      config.days * 86400 /
      static_cast<std::int64_t>(config.policy.sample_period.as_seconds()));
  EXPECT_EQ(obs.metrics().counter("sim.events_executed").value(),
            expected_samples);
  EXPECT_EQ(obs.metrics().counter("detector.samples").value(),
            expected_samples);

  // Episode accounting matches the returned trace records exactly.
  EXPECT_EQ(obs.metrics().counter("detector.episodes_opened").value(),
            detail.records.size());
  EXPECT_EQ(obs.metrics().counter("testbed.machines_simulated").value(), 1u);

  // The labeled transition counters agree with the StateTimeline built
  // from the detector's own transition log — for every S-state edge.
  const char* const names[kStateCount] = {"S1", "S2", "S3", "S4", "S5"};
  std::uint64_t total = 0;
  for (int f = 1; f <= kStateCount; ++f) {
    for (int t = 1; t <= kStateCount; ++t) {
      const auto counted =
          obs.metrics()
              .counter("detector.transitions",
                       {{"from", names[f - 1]}, {"to", names[t - 1]}})
              .value();
      EXPECT_EQ(counted,
                detail.timeline.transition_count(
                    static_cast<AvailabilityState>(f),
                    static_cast<AvailabilityState>(t)))
          << "edge S" << f << "->S" << t;
      total += counted;
    }
  }
  EXPECT_GT(total, 0u) << "a week of lab load should produce transitions";
}

TEST(ObsIntegration, TransitionsAppearAsTraceInstantsWithSimTimestamps) {
  const auto config = small_config();

  Observer obs;
  core::TestbedMachineDetail detail;
  {
    ScopedObserver guard(&obs);
    detail = core::run_testbed_machine_detailed(config, 0);
  }

  // Ground truth: S1->S3 transition instants are the starts of S3
  // intervals whose predecessor interval is S1.
  std::vector<std::int64_t> expected_ts_us;
  const auto intervals = detail.timeline.intervals();
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i - 1].state == AvailabilityState::kS1FullAvailability &&
        intervals[i].state == AvailabilityState::kS3CpuUnavailable) {
      expected_ts_us.push_back(intervals[i].start.as_micros());
    }
  }
  ASSERT_EQ(expected_ts_us.size(),
            detail.timeline.transition_count(
                AvailabilityState::kS1FullAvailability,
                AvailabilityState::kS3CpuUnavailable));

  std::vector<std::int64_t> traced_ts_us;
  for (const auto& event : obs.trace().events()) {
    if (event.phase == TraceSink::Phase::kInstant && event.name == "S1->S3") {
      EXPECT_EQ(event.category, "detector");
      EXPECT_EQ(event.track, 0u);  // machine 0's track
      traced_ts_us.push_back(event.ts_us);
    }
  }

  ASSERT_FALSE(expected_ts_us.empty())
      << "a week of lab load should hit S3 from S1 at least once";
  EXPECT_EQ(traced_ts_us, expected_ts_us);
}

TEST(ObsIntegration, RingBufferModeDropsButKeepsCounting) {
  const auto config = small_config();

  Observer::Options options;
  options.trace_capacity = 16;
  Observer obs(options);
  {
    ScopedObserver guard(&obs);
    (void)core::run_testbed_machine_detailed(config, 0);
  }

  EXPECT_LE(obs.trace().size(), 16u);
  EXPECT_GT(obs.trace().total_recorded(), 16u);
  EXPECT_EQ(obs.trace().dropped(), obs.trace().total_recorded() - 16u);
  // Metrics are unaffected by trace eviction.
  EXPECT_GT(obs.metrics().counter("sim.events_executed").value(), 0u);
}

}  // namespace
}  // namespace fgcs::obs

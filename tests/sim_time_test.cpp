// Tests for the strong time types.
#include <gtest/gtest.h>

#include "fgcs/sim/time.hpp"

namespace fgcs::sim {
namespace {

using namespace time_literals;

TEST(SimDuration, Constructors) {
  EXPECT_EQ(SimDuration::seconds(2).as_micros(), 2'000'000);
  EXPECT_EQ(SimDuration::millis(3).as_micros(), 3'000);
  EXPECT_EQ(SimDuration::minutes(1).as_micros(), 60'000'000);
  EXPECT_EQ(SimDuration::hours(1).as_seconds(), 3600.0);
  EXPECT_EQ(SimDuration::days(2).as_hours(), 48.0);
}

TEST(SimDuration, FromSecondsRounds) {
  EXPECT_EQ(SimDuration::from_seconds(1.0000004).as_micros(), 1'000'000);
  EXPECT_EQ(SimDuration::from_seconds(1.0000006).as_micros(), 1'000'001);
  EXPECT_EQ(SimDuration::from_seconds(-0.5).as_micros(), -500'000);
}

TEST(SimDuration, Arithmetic) {
  const SimDuration a = 5_s, b = 3_s;
  EXPECT_EQ((a + b).as_seconds(), 8.0);
  EXPECT_EQ((a - b).as_seconds(), 2.0);
  EXPECT_EQ((-a).as_seconds(), -5.0);
  EXPECT_EQ((a * std::int64_t{2}).as_seconds(), 10.0);
  EXPECT_EQ((a / std::int64_t{5}).as_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(a / b, 5.0 / 3.0);
}

TEST(SimDuration, ScalarDoubleMultiply) {
  EXPECT_EQ((10_s * 0.5).as_seconds(), 5.0);
  EXPECT_EQ((1_s * 0.1).as_micros(), 100'000);
}

TEST(SimDuration, Comparisons) {
  EXPECT_LT(1_s, 2_s);
  EXPECT_EQ(1000_ms, 1_s);
  EXPECT_GT(1_min, 59_s);
  EXPECT_LE(1_h, 60_min);
}

TEST(SimDuration, CompoundAssignment) {
  SimDuration d = 1_s;
  d += 500_ms;
  EXPECT_EQ(d.as_micros(), 1'500'000);
  d -= 1_s;
  EXPECT_EQ(d, 500_ms);
}

TEST(SimDuration, Literals) {
  EXPECT_EQ((5_us).as_micros(), 5);
  EXPECT_EQ((2_h).as_hours(), 2.0);
}

TEST(SimDuration, Str) {
  EXPECT_EQ((90_min).str(), "1h 30m");
  EXPECT_EQ((65_s).str(), "1m 05s");
  EXPECT_EQ((1500_ms).str(), "1.500s");
  EXPECT_EQ((250_ms).str(), "250.000ms");
}

TEST(SimTime, EpochAndArithmetic) {
  const SimTime t0 = SimTime::epoch();
  const SimTime t1 = t0 + 5_s;
  EXPECT_EQ((t1 - t0), 5_s);
  EXPECT_EQ((t1 - 2_s).as_seconds(), 3.0);
  EXPECT_LT(t0, t1);
}

TEST(SimTime, FromSecondsAndMicros) {
  EXPECT_EQ(SimTime::from_seconds(1.5).as_micros(), 1'500'000);
  EXPECT_EQ(SimTime::from_micros(42).as_micros(), 42);
}

TEST(SimTime, CompoundAdd) {
  SimTime t = SimTime::epoch();
  t += 1_h;
  EXPECT_EQ(t.as_hours(), 1.0);
}

TEST(SimTime, StrRendersDayAndClock) {
  const SimTime t = SimTime::epoch() + SimDuration::days(2) + 3_h + 4_min;
  EXPECT_EQ(t.str(), "2d 03:04:00.000");
}

TEST(SimTime, MaxIsLargerThanAnyPracticalTime) {
  EXPECT_GT(SimTime::max(), SimTime::epoch() + SimDuration::days(100000));
}

}  // namespace
}  // namespace fgcs::sim

// Tests for CSV reading/writing.
#include <gtest/gtest.h>

#include <sstream>

#include "fgcs/util/csv.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::util {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write("a", "b", "c");
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesCommasAndQuotes) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write(std::string("a,b"), std::string("say \"hi\""));
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, NumericFormatting) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write(1, -5, 2.5, true, false);
  EXPECT_EQ(out.str(), "1,-5,2.5,1,0\n");
}

TEST(CsvWriter, DoubleRoundTripsExactly) {
  std::ostringstream out;
  CsvWriter w(out);
  const double v = 0.1234567890123456789;
  w.write(v);
  std::istringstream in("h\n" + out.str());
  CsvReader r(in);
  EXPECT_EQ(std::stod(r.rows()[0][0]), v);
}

TEST(ParseCsvLine, SimpleFields) {
  const auto fields = parse_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(ParseCsvLine, EmptyFields) {
  const auto fields = parse_csv_line(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(ParseCsvLine, QuotedComma) {
  const auto fields = parse_csv_line("\"a,b\",c");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
}

TEST(ParseCsvLine, EscapedQuote) {
  const auto fields = parse_csv_line("\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(ParseCsvLine, ToleratesCarriageReturn) {
  const auto fields = parse_csv_line("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(ParseCsvLine, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv_line("\"abc"), IoError);
}

TEST(CsvReader, HeaderAndRows) {
  std::istringstream in("x,y\n1,2\n3,4\n");
  CsvReader r(in);
  EXPECT_EQ(r.header().size(), 2u);
  EXPECT_EQ(r.rows().size(), 2u);
  EXPECT_EQ(r.rows()[1][1], "4");
}

TEST(CsvReader, ColumnLookup) {
  std::istringstream in("x,y,z\n1,2,3\n");
  CsvReader r(in);
  EXPECT_EQ(r.column("y"), 1u);
  EXPECT_THROW(r.column("nope"), IoError);
}

TEST(CsvReader, ArityMismatchThrows) {
  std::istringstream in("x,y\n1\n");
  EXPECT_THROW(CsvReader r(in), IoError);
}

TEST(CsvReader, EmptyInputThrows) {
  std::istringstream in("");
  EXPECT_THROW(CsvReader r(in), IoError);
}

TEST(CsvRoundTrip, WriterToReader) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write("name", "value");
  w.write(std::string("weird,\"name\""), 3.25);
  std::istringstream in(out.str());
  CsvReader r(in);
  EXPECT_EQ(r.rows()[0][0], "weird,\"name\"");
  EXPECT_EQ(r.rows()[0][1], "3.25");
}

}  // namespace
}  // namespace fgcs::util

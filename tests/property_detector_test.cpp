// Property tests for the detector: invariants that must hold for every
// threshold policy and any sample stream.
#include <gtest/gtest.h>

#include <tuple>

#include "fgcs/monitor/detector.hpp"
#include "fgcs/util/rng.hpp"

namespace fgcs::monitor {
namespace {

using namespace sim::time_literals;
using sim::SimDuration;
using sim::SimTime;

// (th1, th2, sustain_seconds, guest_ws_mb)
using PolicyParam = std::tuple<double, double, int, double>;

class DetectorPropertyTest : public ::testing::TestWithParam<PolicyParam> {
 protected:
  ThresholdPolicy policy() const {
    const auto [th1, th2, sustain_s, ws] = GetParam();
    ThresholdPolicy p;
    p.th1 = th1;
    p.th2 = th2;
    p.sustain_window = SimDuration::seconds(sustain_s);
    p.guest_working_set_mb = ws;
    return p;
  }

  /// Feeds `n` random samples; returns the detector for inspection.
  UnavailabilityDetector run_random_stream(std::uint64_t seed, int n) {
    UnavailabilityDetector detector(policy());
    util::RngStream rng(seed);
    SimTime t = SimTime::epoch();
    int i = 0;
    while (i < n) {
      // Bursty regimes: calm, busy, overloaded, low-memory, downtime —
      // each held for a random stretch (realistic load persists).
      const double regime = rng.uniform();
      const auto hold = static_cast<int>(rng.uniform_int(3, 60));
      for (int k = 0; k < hold && i < n; ++k, ++i) {
        t += 15_s;
        HostSample s;
        s.time = t;
        if (regime < 0.45) {
          s.host_cpu = rng.uniform(0.0, 0.55);
          s.free_mem_mb = rng.uniform(300.0, 900.0);
        } else if (regime < 0.8) {
          s.host_cpu = rng.uniform(0.65, 1.0);
          s.free_mem_mb = rng.uniform(300.0, 900.0);
        } else if (regime < 0.95) {
          s.host_cpu = rng.uniform(0.0, 1.0);
          s.free_mem_mb = rng.uniform(0.0, 400.0);
        } else {
          s.service_alive = false;
        }
        detector.observe(s);
      }
    }
    detector.finish(t);
    return detector;
  }
};

TEST_P(DetectorPropertyTest, EpisodesAreClosedOrderedAndDisjoint) {
  const auto detector = run_random_stream(1, 4000);
  const auto eps = detector.episodes();
  for (std::size_t i = 0; i < eps.size(); ++i) {
    EXPECT_FALSE(eps[i].open);
    EXPECT_LE(eps[i].start, eps[i].end);
    if (i > 0) {
      EXPECT_GE(eps[i].start, eps[i - 1].end)
          << "episodes must not overlap";
    }
  }
}

TEST_P(DetectorPropertyTest, TransitionsFormAChain) {
  const auto detector = run_random_stream(2, 4000);
  AvailabilityState current = AvailabilityState::kS1FullAvailability;
  SimTime last = SimTime::epoch();
  for (const auto& tr : detector.transitions()) {
    EXPECT_EQ(tr.from, current);
    EXPECT_NE(tr.from, tr.to);
    EXPECT_GE(tr.time, last);
    current = tr.to;
    last = tr.time;
  }
  EXPECT_EQ(current, detector.state());
}

TEST_P(DetectorPropertyTest, EpisodeCountMatchesFailureEntries) {
  const auto detector = run_random_stream(3, 4000);
  std::size_t failure_entries = 0;
  for (const auto& tr : detector.transitions()) {
    if (is_failure(tr.to)) ++failure_entries;
  }
  EXPECT_EQ(detector.episodes().size(), failure_entries);
}

TEST_P(DetectorPropertyTest, EpisodeCausesAreFailureStates) {
  const auto detector = run_random_stream(4, 4000);
  for (const auto& ep : detector.episodes()) {
    EXPECT_TRUE(is_failure(ep.cause));
  }
}

TEST_P(DetectorPropertyTest, DeterministicGivenStream) {
  const auto a = run_random_stream(5, 2000);
  const auto b = run_random_stream(5, 2000);
  ASSERT_EQ(a.episodes().size(), b.episodes().size());
  for (std::size_t i = 0; i < a.episodes().size(); ++i) {
    EXPECT_EQ(a.episodes()[i].start, b.episodes()[i].start);
    EXPECT_EQ(a.episodes()[i].cause, b.episodes()[i].cause);
  }
}

TEST_P(DetectorPropertyTest, SustainWindowBoundsS3Latency) {
  // Every S3 entry must be preceded by at least `sustain` of continuous
  // above-Th2 samples — verified indirectly: the S3 episode's recorded
  // start predates its confirming transition by >= sustain (minus one
  // sample period of quantization).
  const auto detector = run_random_stream(6, 4000);
  const auto policy_ = policy();
  const auto eps = detector.episodes();
  std::size_t checked = 0;
  for (const auto& tr : detector.transitions()) {
    if (tr.to != AvailabilityState::kS3CpuUnavailable) continue;
    if (is_failure(tr.from)) continue;  // chained failures enter directly
    for (std::size_t i = 0; i < eps.size(); ++i) {
      const auto& ep = eps[i];
      if (ep.cause != AvailabilityState::kS3CpuUnavailable ||
          ep.start > tr.time || tr.time > ep.end) {
        continue;
      }
      // The retroactive start is clamped when the excursion began before
      // an adjacent earlier episode; the latency bound applies only to
      // unclamped (free-standing) episodes.
      const bool clamped = i > 0 && eps[i - 1].end == ep.start;
      if (!clamped) {
        EXPECT_GE((tr.time - ep.start) + 15_s, policy_.sustain_window);
        ++checked;
      }
      break;
    }
  }
  // S3 is guaranteed to occur for moderate thresholds; extreme policies
  // (th2 near 1.0) may validly never confirm an S3 on this stream.
  if (policy_.th2 <= 0.9 && policy_.sustain_window <= 120_s) {
    EXPECT_GT(checked, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyGrid, DetectorPropertyTest,
    ::testing::Values(PolicyParam{0.20, 0.60, 60, 200.0},
                      PolicyParam{0.10, 0.30, 60, 200.0},
                      PolicyParam{0.20, 0.60, 0, 200.0},
                      PolicyParam{0.20, 0.60, 300, 200.0},
                      PolicyParam{0.30, 0.90, 30, 50.0},
                      PolicyParam{0.05, 0.95, 120, 500.0}));

TEST(DetectorRobustness, ClampsOutOfRangeInputs) {
  UnavailabilityDetector detector{ThresholdPolicy::linux_testbed()};
  // CPU beyond 1.0 and negative memory must not break the state machine.
  detector.observe({SimTime::epoch() + 15_s, 1.7, -50.0, true});
  EXPECT_EQ(detector.state(), AvailabilityState::kS4MemoryThrashing);
  detector.observe({SimTime::epoch() + 30_s, -0.3, 900.0, true});
  EXPECT_EQ(detector.state(), AvailabilityState::kS1FullAvailability);
}

TEST(DetectorRobustness, EpisodeObservationsAreClamped) {
  UnavailabilityDetector detector{ThresholdPolicy::linux_testbed()};
  detector.observe({SimTime::epoch() + 15_s, 2.0, 10.0, true});
  ASSERT_EQ(detector.episodes().size(), 1u);
  EXPECT_LE(detector.episodes()[0].host_cpu_at_start, 1.0);
  EXPECT_GE(detector.episodes()[0].free_mem_at_start, 0.0);
}

}  // namespace
}  // namespace fgcs::monitor

// Tests for histograms and the hour-of-day binner.
#include <gtest/gtest.h>

#include "fgcs/stats/histogram.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::stats {
namespace {

TEST(Histogram, BasicBinning) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.9);
  h.add(2.0);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeDroppedByDefault) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  h.add(15.0);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, ClampMode) {
  Histogram h(0.0, 10.0, 5, /*clamp=*/true);
  h.add(-1.0);
  h.add(99.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinEdgesAndCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 5.0);
}

TEST(Histogram, Fractions) {
  Histogram h(0.0, 4.0, 4);
  h.add_all(std::vector<double>{0.5, 1.5, 1.6, 3.0});
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.0);
}

TEST(Histogram, FractionOfEmptyIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ConfigError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
}

TEST(HourOfDayBinner, MeanMinMax) {
  HourOfDayBinner binner;
  std::array<double, 24> d1{}, d2{}, d3{};
  d1[4] = 20.0;
  d2[4] = 18.0;
  d3[4] = 22.0;
  d1[10] = 5.0;
  d2[10] = 5.0;
  d3[10] = 5.0;
  binner.add_day(d1);
  binner.add_day(d2);
  binner.add_day(d3);
  EXPECT_EQ(binner.days(), 3u);

  const auto h4 = binner.hour(4);
  EXPECT_DOUBLE_EQ(h4.mean, 20.0);
  EXPECT_DOUBLE_EQ(h4.min, 18.0);
  EXPECT_DOUBLE_EQ(h4.max, 22.0);
  EXPECT_DOUBLE_EQ(h4.stddev, 2.0);

  const auto h10 = binner.hour(10);
  EXPECT_DOUBLE_EQ(h10.mean, 5.0);
  EXPECT_DOUBLE_EQ(h10.stddev, 0.0);

  const auto h0 = binner.hour(0);
  EXPECT_DOUBLE_EQ(h0.mean, 0.0);
}

TEST(HourOfDayBinner, EmptyReturnsZeros) {
  HourOfDayBinner binner;
  const auto h = binner.hour(12);
  EXPECT_DOUBLE_EQ(h.mean, 0.0);
  EXPECT_DOUBLE_EQ(h.max, 0.0);
}

TEST(HourOfDayBinner, SingleDayStddevZero) {
  HourOfDayBinner binner;
  std::array<double, 24> d{};
  d[7] = 3.0;
  binner.add_day(d);
  EXPECT_DOUBLE_EQ(binner.hour(7).stddev, 0.0);
}

}  // namespace
}  // namespace fgcs::stats

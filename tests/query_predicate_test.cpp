// Query predicate text format: parse/str fixpoint, canonical rendering,
// malformed-input diagnostics, and the record/zone match semantics the
// pushdown scan relies on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fgcs/query/predicate.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::query {
namespace {

TEST(QueryPredicate, AllParsesToTheEmptyPredicate) {
  const Predicate p = Predicate::parse("all");
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.str(), "all");
  EXPECT_TRUE(p.matches(0, 0, 1, 3));
  EXPECT_TRUE(p.matches(4'000'000'000u, -5, 5, 5));
}

TEST(QueryPredicate, ClausesParseInAnyOrderAndRenderCanonically) {
  const std::string canonical = "machine=[10,20) cause=S5 time=[0,3600000000)";
  const std::vector<std::string> variants = {
      canonical, "cause=S5 time=[0,3600000000) machine=[10,20)",
      "time=[0,3600000000) machine=[10,20) cause=S5",
      "  machine=[10,20)   cause=S5  time=[0,3600000000)  "};
  for (const std::string& text : variants) {
    const Predicate p = Predicate::parse(text);
    EXPECT_EQ(p.str(), canonical) << text;
    EXPECT_TRUE(p.has_machine);
    EXPECT_TRUE(p.has_cause);
    EXPECT_TRUE(p.has_time);
    EXPECT_EQ(p.machine_lo, 10u);
    EXPECT_EQ(p.machine_hi, 20u);
    EXPECT_EQ(p.cause, 5);
    EXPECT_EQ(p.time_lo_us, 0);
    EXPECT_EQ(p.time_hi_us, 3'600'000'000);
  }
}

TEST(QueryPredicate, ParseStrIsAFixpoint) {
  for (const std::string text :
       {"all", "machine=[0,1)", "machine=[7,7)", "cause=S3", "cause=S4",
        "time=[-100,100)", "machine=[0,4294967295) cause=S5",
        "cause=S3 time=[86400000000,172800000000)",
        "machine=[1,2) cause=S4 time=[0,1)"}) {
    const Predicate p = Predicate::parse(text);
    EXPECT_EQ(Predicate::parse(p.str()).str(), p.str()) << text;
  }
}

TEST(QueryPredicate, MalformedInputsThrowConfigError) {
  for (const std::string text :
       {"", "   ", "all cause=S3", "bogus", "machine=", "machine=[0,1]",
        "machine=(0,1)", "machine=[0;1)", "machine=[a,b)", "machine=[+1,2)",
        "machine=[0x1,2)", "machine=[ 0,1)", "cause=S2", "cause=S6",
        "cause=s3", "time=[0)", "time=[0,1) time=[2,3)",
        "machine=[0,1) machine=[1,2)", "cause=S3 cause=S3", "machine[0,1)",
        "time=[1,2"}) {
    EXPECT_THROW(Predicate::parse(text), ConfigError) << "\"" << text << "\"";
  }
}

TEST(QueryPredicate, MachineMatchIsHalfOpen) {
  const Predicate p = Predicate::parse("machine=[10,20)");
  EXPECT_FALSE(p.matches(9, 0, 1, 3));
  EXPECT_TRUE(p.matches(10, 0, 1, 3));
  EXPECT_TRUE(p.matches(19, 0, 1, 3));
  EXPECT_FALSE(p.matches(20, 0, 1, 3));
  // Empty range matches nothing.
  const Predicate empty = Predicate::parse("machine=[10,10)");
  EXPECT_FALSE(empty.matches(10, 0, 1, 3));
}

TEST(QueryPredicate, TimeMatchIsEpisodeOverlap) {
  const Predicate p = Predicate::parse("time=[100,200)");
  EXPECT_TRUE(p.matches(0, 150, 160, 3));   // inside
  EXPECT_TRUE(p.matches(0, 50, 101, 3));    // overlaps the left edge
  EXPECT_TRUE(p.matches(0, 199, 300, 3));   // overlaps the right edge
  EXPECT_TRUE(p.matches(0, 0, 1000, 3));    // spans the range
  EXPECT_FALSE(p.matches(0, 0, 100, 3));    // ends exactly at lo
  EXPECT_FALSE(p.matches(0, 200, 300, 3));  // starts exactly at hi
}

TEST(QueryPredicate, CauseMatchIsEquality) {
  const Predicate p = Predicate::parse("cause=S4");
  EXPECT_FALSE(p.matches(0, 0, 1, 3));
  EXPECT_TRUE(p.matches(0, 0, 1, 4));
  EXPECT_FALSE(p.matches(0, 0, 1, 5));
}

TEST(QueryPredicate, MachinePruningAgainstFooterRanges) {
  const Predicate p = Predicate::parse("machine=[10,20)");
  EXPECT_FALSE(p.may_match_machines(0, 9));
  EXPECT_TRUE(p.may_match_machines(0, 10));
  EXPECT_TRUE(p.may_match_machines(19, 50));
  EXPECT_FALSE(p.may_match_machines(20, 50));
  EXPECT_TRUE(Predicate::parse("all").may_match_machines(0, 0));
}

TEST(QueryPredicate, ZonePruningAgainstCauseMaskAndTimeBounds) {
  trace::TraceView::BlockZone zone;
  zone.min_start_us = 100;
  zone.max_start_us = 500;
  zone.min_end_us = 150;
  zone.max_end_us = 600;
  zone.cause_mask = 0b001 | 0b100;  // S3 and S5 present, no S4

  EXPECT_TRUE(Predicate::parse("cause=S3").may_match_zone(zone));
  EXPECT_FALSE(Predicate::parse("cause=S4").may_match_zone(zone));
  EXPECT_TRUE(Predicate::parse("cause=S5").may_match_zone(zone));

  EXPECT_TRUE(Predicate::parse("time=[0,101)").may_match_zone(zone));
  EXPECT_FALSE(Predicate::parse("time=[0,100)").may_match_zone(zone));
  EXPECT_TRUE(Predicate::parse("time=[599,1000)").may_match_zone(zone));
  EXPECT_FALSE(Predicate::parse("time=[600,1000)").may_match_zone(zone));

  // Pruning must never contradict a per-record match: any record the
  // zone summarizes that matches implies may_match_zone is true (spot
  // check at the boundaries).
  const Predicate edge = Predicate::parse("time=[600,1000)");
  EXPECT_FALSE(edge.matches(0, 500, 600, 3));  // max_end record: no match
}

}  // namespace
}  // namespace fgcs::query

// Tests for the state timeline (the measured Figure 5 view).
#include <gtest/gtest.h>

#include "fgcs/monitor/state_timeline.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::monitor {
namespace {

using namespace sim::time_literals;
using sim::SimDuration;
using sim::SimTime;

constexpr auto S1 = AvailabilityState::kS1FullAvailability;
constexpr auto S2 = AvailabilityState::kS2LowestPriority;
constexpr auto S3 = AvailabilityState::kS3CpuUnavailable;

SimTime at(std::int64_t minutes) {
  return SimTime::epoch() + SimDuration::minutes(minutes);
}

TEST(StateTimeline, NoTransitionsSingleInterval) {
  const auto tl =
      StateTimeline::from_transitions(S1, at(0), at(100), {});
  ASSERT_EQ(tl.intervals().size(), 1u);
  EXPECT_EQ(tl.intervals()[0].state, S1);
  EXPECT_DOUBLE_EQ(tl.fraction_in(S1), 1.0);
  EXPECT_DOUBLE_EQ(tl.availability(), 1.0);
  EXPECT_EQ(tl.transitions_from(S1), 0u);
}

TEST(StateTimeline, OccupancyAndTransitions) {
  const std::vector<Transition> trans = {
      {at(10), S1, S2},
      {at(30), S2, S3},
      {at(40), S3, S1},
  };
  const auto tl = StateTimeline::from_transitions(S1, at(0), at(100), trans);
  ASSERT_EQ(tl.intervals().size(), 4u);
  EXPECT_EQ(tl.time_in(S1), SimDuration::minutes(70));  // 10 + 60
  EXPECT_EQ(tl.time_in(S2), SimDuration::minutes(20));
  EXPECT_EQ(tl.time_in(S3), SimDuration::minutes(10));
  EXPECT_DOUBLE_EQ(tl.fraction_in(S2), 0.2);
  EXPECT_DOUBLE_EQ(tl.availability(), 0.9);
  EXPECT_EQ(tl.transition_count(S1, S2), 1u);
  EXPECT_EQ(tl.transition_count(S2, S3), 1u);
  EXPECT_EQ(tl.transition_count(S2, S1), 0u);
  EXPECT_EQ(tl.transitions_from(S2), 1u);
}

TEST(StateTimeline, SojournDurations) {
  const std::vector<Transition> trans = {
      {at(10), S1, S2},
      {at(40), S2, S1},
      {at(60), S1, S2},
      {at(70), S2, S1},
  };
  const auto tl = StateTimeline::from_transitions(S1, at(0), at(100), trans);
  const auto s2_sojourns = tl.sojourn_hours(S2);
  ASSERT_EQ(s2_sojourns.size(), 2u);
  EXPECT_NEAR(s2_sojourns[0], 0.5, 1e-9);
  EXPECT_NEAR(s2_sojourns[1], 1.0 / 6.0, 1e-9);
  EXPECT_EQ(tl.sojourn_hours(S1).size(), 3u);
  EXPECT_TRUE(tl.sojourn_hours(S3).empty());
}

TEST(StateTimeline, RejectsBrokenChains) {
  const std::vector<Transition> wrong_from = {{at(10), S2, S3}};
  EXPECT_THROW(
      StateTimeline::from_transitions(S1, at(0), at(100), wrong_from),
      ConfigError);
  const std::vector<Transition> unordered = {{at(50), S1, S2},
                                             {at(40), S2, S1}};
  EXPECT_THROW(
      StateTimeline::from_transitions(S1, at(0), at(100), unordered),
      ConfigError);
  EXPECT_THROW(StateTimeline::from_transitions(S1, at(10), at(10), {}),
               ConfigError);
}

TEST(StateTimeline, FromDetectorMatchesObservations) {
  UnavailabilityDetector detector{ThresholdPolicy::linux_testbed()};
  SimTime t = SimTime::epoch();
  auto feed = [&](double cpu, int samples) {
    for (int i = 0; i < samples; ++i) {
      t += 15_s;
      detector.observe({t, cpu, 900.0, true});
    }
  };
  feed(0.1, 40);   // 10 min S1
  feed(0.4, 40);   // 10 min S2
  feed(0.9, 40);   // sustained high: S3 after 1 min
  feed(0.1, 40);   // recovered
  detector.finish(t);
  const auto tl = StateTimeline::from_detector(detector, SimTime::epoch(), t);
  EXPECT_GT(tl.fraction_in(S3), 0.15);
  EXPECT_GT(tl.fraction_in(S1), 0.4);
  EXPECT_EQ(tl.transition_count(S2, S3), 1u);
  EXPECT_DOUBLE_EQ(tl.availability(), 1.0 - tl.fraction_in(S3));
}

TEST(StateTimeline, AccumulateSumsMachines) {
  const std::vector<Transition> ta = {{at(30), S1, S2}};
  const std::vector<Transition> tb = {{at(45), S1, S2}};
  const auto a = StateTimeline::from_transitions(S1, at(0), at(60), ta);
  const auto b = StateTimeline::from_transitions(S1, at(0), at(60), tb);
  StateTimeline total = a;
  total.accumulate(b);
  EXPECT_EQ(total.time_in(S1), SimDuration::minutes(75));
  EXPECT_EQ(total.time_in(S2), SimDuration::minutes(45));
  EXPECT_EQ(total.transition_count(S1, S2), 2u);
  EXPECT_DOUBLE_EQ(total.fraction_in(S1), 75.0 / 120.0);
  EXPECT_EQ(total.sojourn_hours(S1).size(), 2u);
}

}  // namespace
}  // namespace fgcs::monitor

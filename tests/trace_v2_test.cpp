// Columnar trace format v2: round trips, zero-copy views, salvage.
//
// The format is write-once/read-many for the fleet sweep engine: a
// TraceWriterV2 streams SoA blocks to disk, TraceView mmaps them back
// without materializing a TraceSet, and the strict/salvage loaders accept
// v2 files wherever a row-format binary trace is accepted (auto-detected
// by magic).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fgcs/core/testbed.hpp"
#include "fgcs/trace/format_v2.hpp"
#include "fgcs/trace/index.hpp"
#include "fgcs/trace/io.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::trace {
namespace {

using sim::SimDuration;
using sim::SimTime;

namespace fs = std::filesystem;

class TraceV2 : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fgcs_trace_v2_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TraceSet small_testbed_trace() {
  core::TestbedConfig config;
  config.machines = 4;
  config.days = 10;
  config.seed = 20060806;
  return core::run_testbed(config);
}

void expect_equal_records(const TraceSet& a, const TraceSet& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.machine_count(), b.machine_count());
  EXPECT_EQ(a.horizon_start(), b.horizon_start());
  EXPECT_EQ(a.horizon_end(), b.horizon_end());
  const auto ra = a.records();
  const auto rb = b.records();
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].machine, rb[i].machine) << i;
    EXPECT_EQ(ra[i].start, rb[i].start) << i;
    EXPECT_EQ(ra[i].end, rb[i].end) << i;
    EXPECT_EQ(ra[i].cause, rb[i].cause) << i;
    EXPECT_EQ(ra[i].host_cpu, rb[i].host_cpu) << i;
    EXPECT_EQ(ra[i].free_mem_mb, rb[i].free_mem_mb) << i;
  }
}

TEST_F(TraceV2, RoundTripMatchesRowFormat) {
  const auto trace = small_testbed_trace();
  ASSERT_GT(trace.size(), 0u);

  const auto v2 = path("trace.trc2");
  const auto v1 = path("trace.trc");
  write_trace_v2(trace, v2);
  save_trace(trace, v1);

  const TraceView view(v2);
  EXPECT_EQ(view.size(), trace.size());
  EXPECT_EQ(view.machine_count(), trace.machine_count());
  EXPECT_EQ(view.horizon_start(), trace.horizon_start());
  EXPECT_EQ(view.horizon_end(), trace.horizon_end());

  expect_equal_records(view.to_trace_set(), trace);
  expect_equal_records(view.to_trace_set(), load_trace(v1));
}

TEST_F(TraceV2, ViewIsMemoryMappedAndRandomlyAccessible) {
  const auto trace = small_testbed_trace();
  const auto v2 = path("trace.trc2");
  write_trace_v2(trace, v2);

  const TraceView view(v2);
  EXPECT_TRUE(view.memory_mapped());

  // for_each order is the canonical record order; record(block, i) agrees.
  const auto records = trace.records();
  std::size_t i = 0;
  view.for_each([&](const UnavailabilityRecord& r) {
    ASSERT_LT(i, records.size());
    EXPECT_EQ(r.machine, records[i].machine);
    EXPECT_EQ(r.start, records[i].start);
    ++i;
  });
  EXPECT_EQ(i, records.size());

  std::size_t flat = 0;
  for (std::size_t b = 0; b < view.block_count(); ++b) {
    for (std::size_t k = 0; k < view.block_size(b); ++k, ++flat) {
      const auto r = view.record(b, k);
      EXPECT_EQ(r.end, records[flat].end);
      EXPECT_GE(r.machine, view.block_min_machine(b));
      EXPECT_LE(r.machine, view.block_max_machine(b));
    }
  }
  EXPECT_EQ(flat, view.size());
}

TEST_F(TraceV2, StreamingWriterSplitsBlocks) {
  const auto trace = small_testbed_trace();
  const auto v2 = path("blocks.trc2");
  {
    TraceWriterV2 writer(v2, trace.machine_count(), trace.horizon_start(),
                         trace.horizon_end(), /*block_records=*/16);
    for (const auto& r : trace.records()) writer.append(r);
    writer.finish();
    EXPECT_EQ(writer.records_written(), trace.size());
  }
  const TraceView view(v2);
  EXPECT_GT(view.block_count(), 1u);
  expect_equal_records(view.to_trace_set(), trace);
}

TEST_F(TraceV2, AutoDetectedByTheStrictAndSalvageLoaders) {
  const auto trace = small_testbed_trace();
  const auto v2 = path("auto.trc2");
  write_trace_v2(trace, v2);
  EXPECT_TRUE(is_trace_v2(v2));

  expect_equal_records(load_trace(v2), trace);

  const auto report = load_trace_salvage(v2);
  EXPECT_FALSE(report.truncated);
  EXPECT_EQ(report.skipped, 0u);
  expect_equal_records(report.trace, trace);
}

TEST_F(TraceV2, TraceIndexAnswersFromAView) {
  const auto trace = small_testbed_trace();
  const auto v2 = path("index.trc2");
  write_trace_v2(trace, v2);

  const TraceView view(v2);
  const TraceIndex from_view(view);
  const TraceIndex from_set(trace);

  const auto begin = trace.horizon_start();
  for (MachineId m = 0; m < trace.machine_count(); ++m) {
    for (int h = 0; h < 24 * 10; h += 7) {
      const auto t0 = begin + SimDuration::hours(h);
      const auto t1 = t0 + SimDuration::hours(2);
      EXPECT_EQ(from_view.any_overlap(m, t0, t1),
                from_set.any_overlap(m, t0, t1))
          << "machine " << m << " hour " << h;
      EXPECT_EQ(from_view.count_starts_in(m, t0, t1),
                from_set.count_starts_in(m, t0, t1));
    }
  }
}

TEST_F(TraceV2, EmptyTraceRoundTrips) {
  TraceSet empty(3, SimTime::epoch(), SimTime::epoch() + SimDuration::days(1));
  const auto v2 = path("empty.trc2");
  write_trace_v2(empty, v2);
  const TraceView view(v2);
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.machine_count(), 3u);
  expect_equal_records(view.to_trace_set(), empty);
}

TEST_F(TraceV2, StrictLoaderRejectsTruncation) {
  const auto trace = small_testbed_trace();
  const auto v2 = path("full.trc2");
  write_trace_v2(trace, v2);
  const auto full = fs::file_size(v2);

  const auto cut = path("cut.trc2");
  for (const std::size_t keep :
       {full - 1, full / 2, std::size_t{64}, std::size_t{10}}) {
    std::ifstream in(v2, std::ios::binary);
    std::vector<char> bytes(keep);
    in.read(bytes.data(), static_cast<std::streamsize>(keep));
    std::ofstream out(cut, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_THROW(TraceView{cut}, IoError) << "keep=" << keep;
    EXPECT_THROW(load_trace(cut), IoError) << "keep=" << keep;
  }
}

TEST_F(TraceV2, SalvageRecoversThePrefixOfATruncatedFile) {
  const auto trace = small_testbed_trace();
  const auto v2 = path("full.trc2");
  {
    TraceWriterV2 writer(v2, trace.machine_count(), trace.horizon_start(),
                         trace.horizon_end(), /*block_records=*/32);
    for (const auto& r : trace.records()) writer.append(r);
  }
  const auto full = fs::file_size(v2);

  // Cut in the middle of the data region: the salvage loader must recover
  // every complete prior block plus the complete-column prefix of the
  // partial one, and flag the truncation.
  const auto cut = path("cut.trc2");
  std::size_t previous_recovered = 0;
  for (const double frac : {0.35, 0.6, 0.85}) {
    const auto keep = static_cast<std::size_t>(full * frac);
    std::ifstream in(v2, std::ios::binary);
    std::vector<char> bytes(keep);
    in.read(bytes.data(), static_cast<std::streamsize>(keep));
    std::ofstream out(cut, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();

    const auto report = load_trace_v2_salvage(cut);
    EXPECT_TRUE(report.truncated) << frac;
    EXPECT_EQ(report.skipped, 0u) << frac;
    EXPECT_GE(report.recovered, previous_recovered) << frac;
    EXPECT_LT(report.recovered, trace.size()) << frac;
    previous_recovered = report.recovered;

    // Whatever was recovered is a byte-exact prefix of the original.
    const auto got = report.trace.records();
    const auto want = trace.records();
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].machine, want[i].machine);
      EXPECT_EQ(got[i].start, want[i].start);
      EXPECT_EQ(got[i].end, want[i].end);
      EXPECT_EQ(got[i].cause, want[i].cause);
    }

    // The generic salvage entry point auto-detects v2 the same way.
    const auto generic = load_trace_salvage(cut);
    EXPECT_EQ(generic.recovered, report.recovered) << frac;
    EXPECT_TRUE(generic.truncated) << frac;
  }
  EXPECT_GT(previous_recovered, 0u);
}

TEST_F(TraceV2, SalvageOfACleanFileIsLossless) {
  const auto trace = small_testbed_trace();
  const auto v2 = path("clean.trc2");
  write_trace_v2(trace, v2);
  const auto report = load_trace_v2_salvage(v2);
  EXPECT_FALSE(report.truncated);
  EXPECT_FALSE(report.metadata_inferred);
  EXPECT_EQ(report.recovered, trace.size());
  expect_equal_records(report.trace, trace);
}

}  // namespace
}  // namespace fgcs::trace

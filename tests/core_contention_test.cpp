// Tests for the contention-experiment drivers (reduced-size versions of
// Figures 1-4 / Table 1; the full reproductions live in bench/).
#include <gtest/gtest.h>

#include "fgcs/core/contention.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::core {
namespace {

using namespace sim::time_literals;

ContentionConfig fast_config() {
  ContentionConfig cfg;
  cfg.measure = 3_min;
  cfg.warmup = 30_s;
  cfg.combinations = 2;
  return cfg;
}

TEST(ContentionConfig, Validation) {
  ContentionConfig cfg = fast_config();
  cfg.measure = sim::SimDuration::zero();
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = fast_config();
  cfg.combinations = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(MeasureContention, AloneUsageMatchesTarget) {
  const auto cfg = fast_config();
  const std::vector<os::ProcessSpec> hosts{workload::synthetic_host(0.5)};
  const auto m = measure_contention(cfg, hosts, workload::synthetic_guest(0),
                                    1234);
  EXPECT_NEAR(m.host_usage_alone, 0.5, 0.04);
  EXPECT_FALSE(m.thrashing);
}

TEST(MeasureContention, GuestReducesHostUsage) {
  const auto cfg = fast_config();
  const std::vector<os::ProcessSpec> hosts{workload::synthetic_host(0.9)};
  const auto m =
      measure_contention(cfg, hosts, workload::synthetic_guest(0), 99);
  EXPECT_GT(m.reduction_rate(), 0.2);
  EXPECT_GT(m.guest_usage, 0.2);
}

TEST(MeasureContention, Nice19GuestBarelyHurtsLightHost) {
  const auto cfg = fast_config();
  const std::vector<os::ProcessSpec> hosts{workload::synthetic_host(0.3)};
  const auto m =
      measure_contention(cfg, hosts, workload::synthetic_guest(19), 7);
  EXPECT_LT(m.reduction_rate(), 0.05);
}

TEST(MeasureContention, RequiresHosts) {
  EXPECT_THROW(measure_contention(fast_config(), {},
                                  workload::synthetic_guest(0), 1),
               ConfigError);
}

TEST(MeasureIsolatedUsage, CpuBoundIsFull) {
  EXPECT_NEAR(
      measure_isolated_usage(fast_config(), workload::synthetic_guest(0), 3),
      1.0, 0.01);
}

TEST(Fig1, SmallGridHasPaperShape) {
  Fig1Config cfg;
  cfg.base = fast_config();
  cfg.lh_grid = {0.1, 0.5, 1.0};
  cfg.max_group_size = 2;
  const auto result = run_fig1(cfg);
  ASSERT_EQ(result.points.size(), 3u * 2u * 2u);

  // Equal priority: reduction grows with L_H.
  EXPECT_LT(result.at(0.1, 1, 0).reduction, result.at(0.5, 1, 0).reduction);
  EXPECT_LT(result.at(0.5, 1, 0).reduction, result.at(1.0, 1, 0).reduction);
  // Bigger host groups suffer less.
  EXPECT_GT(result.at(1.0, 1, 0).reduction, result.at(1.0, 2, 0).reduction);
  // Nice 19 always hurts less than equal priority.
  EXPECT_LT(result.at(1.0, 1, 19).reduction, result.at(1.0, 1, 0).reduction);
  // 50% fair share at full load, single host process.
  EXPECT_NEAR(result.at(1.0, 1, 0).reduction, 0.5, 0.03);
}

TEST(Fig1, MeasuredLhTracksNominal) {
  Fig1Config cfg;
  cfg.base = fast_config();
  cfg.lh_grid = {0.4};
  cfg.max_group_size = 3;
  const auto result = run_fig1(cfg);
  for (const auto& p : result.points) {
    EXPECT_NEAR(p.lh_measured, 0.4, 0.06);
  }
}

TEST(Fig1, AtThrowsForUnknownPoint) {
  Fig1Config cfg;
  cfg.base = fast_config();
  cfg.lh_grid = {0.5};
  cfg.max_group_size = 1;
  const auto result = run_fig1(cfg);
  EXPECT_THROW(result.at(0.9, 1, 0), ConfigError);
}

TEST(Fig2, OnlyNice19Helps) {
  const auto points = run_fig2(fast_config(), {0.8}, {0, 10, 19});
  ASSERT_EQ(points.size(), 3u);
  const double r0 = points[0].reduction;
  const double r10 = points[1].reduction;
  const double r19 = points[2].reduction;
  // Mid priority buys much less than nice 19 does (Figure 2's message).
  EXPECT_GT(r10, r19 + 0.1);
  EXPECT_GT(r0, r19 + 0.2);
}

TEST(Fig3, EqualPriorityGuestGetsMoreCpu) {
  auto cfg = fast_config();
  cfg.combinations = 2;
  const auto points = run_fig3(cfg);
  ASSERT_EQ(points.size(), 8u);
  double delta_sum = 0.0;
  for (const auto& p : points) {
    EXPECT_GT(p.guest_usage_equal, 0.3);
    delta_sum += p.guest_usage_equal - p.guest_usage_lowest;
  }
  // "about 2% higher on average" (§3.2.2); loose band for the small config.
  EXPECT_GT(delta_sum / 8.0, 0.003);
  EXPECT_LT(delta_sum / 8.0, 0.05);
}

TEST(Fig4, ThrashCellsMatchPaper) {
  Fig4Config cfg;
  cfg.base.measure = 3_min;
  cfg.base.warmup = 30_s;
  const auto cells = run_fig4(cfg);
  ASSERT_EQ(cells.size(), 6u * 4u * 2u);
  for (const auto& cell : cells) {
    const bool expect_thrash =
        (cell.host_workload == "H2" || cell.host_workload == "H5") &&
        cell.guest_app != "galgel";
    EXPECT_EQ(cell.thrashing, expect_thrash)
        << cell.host_workload << "+" << cell.guest_app << " nice "
        << cell.guest_nice;
  }
}

TEST(Table1, MeasuredUsagesNearPaper) {
  ContentionConfig cfg;
  cfg.scheduler = os::SchedulerParams::solaris_ts();
  cfg.memory = os::MemoryParams::solaris_384mb();
  cfg.measure = 4_min;
  cfg.warmup = 30_s;
  const auto rows = run_table1(cfg);
  ASSERT_EQ(rows.size(), 10u);
  for (const auto& row : rows) {
    if (row.name == "apsi") EXPECT_NEAR(row.cpu_usage, 0.98, 0.02);
    if (row.name == "H5") EXPECT_NEAR(row.cpu_usage, 0.57, 0.06);
    if (row.name == "H1") EXPECT_NEAR(row.cpu_usage, 0.086, 0.04);
  }
}

}  // namespace
}  // namespace fgcs::core

// Tests for the testbed simulation (reduced scale; the full 20x92 run
// lives in bench/).
#include <gtest/gtest.h>

#include "fgcs/core/testbed.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::core {
namespace {

using monitor::AvailabilityState;

TestbedConfig small_config() {
  TestbedConfig cfg;
  cfg.machines = 4;
  cfg.days = 14;
  return cfg;
}

TEST(TestbedConfig, Validation) {
  TestbedConfig cfg = small_config();
  cfg.machines = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = small_config();
  cfg.days = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = small_config();
  cfg.kernel_mb = cfg.ram_mb + 1;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(Testbed, ProducesRecordsForEveryMachine) {
  const auto trace = run_testbed(small_config());
  EXPECT_EQ(trace.machine_count(), 4u);
  for (trace::MachineId m = 0; m < 4; ++m) {
    EXPECT_GT(trace.machine_records(m).size(), 20u) << "machine " << m;
  }
}

TEST(Testbed, DeterministicAcrossRuns) {
  const auto a = run_testbed(small_config());
  const auto b = run_testbed(small_config());
  ASSERT_EQ(a.size(), b.size());
  const auto ra = a.records();
  const auto rb = b.records();
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(ra[i].machine, rb[i].machine);
    ASSERT_EQ(ra[i].start, rb[i].start);
    ASSERT_EQ(ra[i].cause, rb[i].cause);
  }
}

TEST(Testbed, SeedChangesTrace) {
  auto cfg = small_config();
  const auto a = run_testbed(cfg);
  cfg.seed += 1;
  const auto b = run_testbed(cfg);
  // Counts may coincide (they are tightly calibrated); the record *times*
  // must differ.
  bool any_diff = a.size() != b.size();
  for (std::size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = a.records()[i].start != b.records()[i].start;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Testbed, SingleMachineMatchesFullRun) {
  const auto cfg = small_config();
  const auto full = run_testbed(cfg);
  const auto solo = run_testbed_machine(cfg, 2);
  const auto from_full = full.machine_records(2);
  ASSERT_EQ(solo.size(), from_full.size());
  for (std::size_t i = 0; i < solo.size(); ++i) {
    EXPECT_EQ(solo[i].start, from_full[i].start);
    EXPECT_EQ(solo[i].end, from_full[i].end);
    EXPECT_EQ(solo[i].cause, from_full[i].cause);
  }
}

TEST(Testbed, RecordsWithinHorizon) {
  const auto trace = run_testbed(small_config());
  for (const auto& r : trace.records()) {
    EXPECT_GE(r.start, trace.horizon_start());
    EXPECT_LE(r.end, trace.horizon_end());
    EXPECT_LT(r.start, r.end);
  }
}

TEST(Testbed, EveryDayHasUpdatedbEpisode) {
  auto cfg = small_config();
  cfg.machines = 1;
  const auto records = run_testbed_machine(cfg, 0);
  // For each day, there must be an S3 episode overlapping 04:00-05:00.
  for (int d = 0; d < cfg.days; ++d) {
    const auto lo = sim::SimTime::epoch() + sim::SimDuration::days(d) +
                    sim::SimDuration::hours(4);
    const auto hi = lo + sim::SimDuration::hours(1);
    bool found = false;
    for (const auto& r : records) {
      if (r.cause == AvailabilityState::kS3CpuUnavailable && r.start < hi &&
          r.end > lo) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "day " << d;
  }
}

TEST(Testbed, CausesAreAllFailureStates) {
  const auto trace = run_testbed(small_config());
  std::size_t s3 = 0, s4 = 0, s5 = 0;
  for (const auto& r : trace.records()) {
    switch (r.cause) {
      case AvailabilityState::kS3CpuUnavailable:
        ++s3;
        break;
      case AvailabilityState::kS4MemoryThrashing:
        ++s4;
        break;
      case AvailabilityState::kS5MachineUnavailable:
        ++s5;
        break;
      default:
        FAIL() << "non-failure cause in trace";
    }
  }
  // CPU contention dominates; memory contention present (§5.1).
  EXPECT_GT(s3, s4);
  EXPECT_GT(s4, 0u);
}

TEST(Testbed, HigherTh2ReducesUnavailableTime) {
  // Counts are NOT monotone in Th2 (episodes fragment near the boundary,
  // see the threshold-sensitivity ablation); total S3 *time* is.
  auto cfg = small_config();
  auto s3_time = [](const trace::TraceSet& t) {
    sim::SimDuration total = sim::SimDuration::zero();
    for (const auto& r : t.records()) {
      if (r.cause == AvailabilityState::kS3CpuUnavailable) {
        total += r.duration();
      }
    }
    return total;
  };
  const auto base = s3_time(run_testbed(cfg));
  cfg.policy.th2 = 0.95;
  const auto relaxed = s3_time(run_testbed(cfg));
  EXPECT_LT(relaxed, base);
}

TEST(Testbed, SmallerGuestFootprintFewerS4) {
  auto cfg = small_config();
  auto count_s4 = [](const trace::TraceSet& t) {
    std::size_t n = 0;
    for (const auto& r : t.records()) {
      if (r.cause == AvailabilityState::kS4MemoryThrashing) ++n;
    }
    return n;
  };
  const auto base_s4 = count_s4(run_testbed(cfg));
  cfg.policy.guest_working_set_mb = 20.0;
  const auto small_s4 = count_s4(run_testbed(cfg));
  EXPECT_LT(small_s4, base_s4);
}

TEST(Testbed, MachineIdOutOfRangeThrows) {
  EXPECT_THROW(run_testbed_machine(small_config(), 99), ConfigError);
}

}  // namespace
}  // namespace fgcs::core

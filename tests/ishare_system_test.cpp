// Tests for the iShare-like FGCS middleware.
#include <gtest/gtest.h>

#include "fgcs/ishare/system.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/workload/synthetic.hpp"

namespace fgcs::ishare {
namespace {

using namespace sim::time_literals;
using sim::SimDuration;
using sim::SimTime;

NodeConfig idle_node() {
  NodeConfig cfg;
  cfg.host_processes = {workload::synthetic_host(0.05)};
  return cfg;
}

NodeConfig busy_node(double usage) {
  NodeConfig cfg;
  cfg.host_processes = {workload::synthetic_host(usage)};
  return cfg;
}

TEST(FgcsSystem, JobCompletesOnIdleNode) {
  FgcsSystem system;
  system.add_node(idle_node());
  GuestJob job;
  job.work = 10_min;
  const JobId id = system.submit(job);
  system.run_for(1_h);
  const JobRecord& record = system.job(id);
  EXPECT_EQ(record.status, JobStatus::kCompleted);
  EXPECT_EQ(record.restarts, 0);
  // Near-idle host: the job runs at almost full speed (plus the first
  // dispatch happening at the first sampling sweep).
  EXPECT_LT(record.response(), 13_min);
  EXPECT_GE(record.response(), 10_min);
}

TEST(FgcsSystem, StatsTrackLifecycle) {
  FgcsSystem system;
  system.add_node(idle_node());
  GuestJob job;
  job.work = 5_min;
  system.submit(job);
  system.submit(job);
  system.submit(job);
  EXPECT_EQ(system.stats().submitted, 3u);
  EXPECT_EQ(system.stats().queued, 3u);
  system.run_for(1_h);
  const auto stats = system.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_GT(stats.mean_response_hours, 0.0);
}

TEST(FgcsSystem, OneGuestPerMachine) {
  FgcsSystem system;
  system.add_node(idle_node());
  GuestJob job;
  job.work = 30_min;
  system.submit(job);
  system.submit(job);
  system.run_for(5_min);
  EXPECT_EQ(system.running_count(), 1u);
  EXPECT_EQ(system.queued_count(), 1u);
}

TEST(FgcsSystem, JobsSpreadAcrossNodes) {
  FgcsSystem system;
  system.add_node(idle_node());
  system.add_node(idle_node());
  system.add_node(idle_node());
  GuestJob job;
  job.work = 30_min;
  for (int i = 0; i < 3; ++i) system.submit(job);
  system.run_for(2_min);
  EXPECT_EQ(system.running_count(), 3u);
}

TEST(FgcsSystem, BusyNodeRenicesGuest) {
  FgcsSystem system;
  const NodeId node = system.add_node(busy_node(0.4));  // S2-level load
  GuestJob job;
  job.work = 10_min;
  const JobId id = system.submit(job);
  system.run_for(3_min);
  EXPECT_EQ(system.node_state(node),
            monitor::AvailabilityState::kS2LowestPriority);
  EXPECT_EQ(system.job(id).status, JobStatus::kRunning);
  system.run_for(2_h);
  EXPECT_EQ(system.job(id).status, JobStatus::kCompleted);
  // Reniced but unharmed: work completes, just possibly slower.
  EXPECT_GE(system.job(id).response(), 10_min);
}

TEST(FgcsSystem, OverloadKillsAndRequeues) {
  FgcsSystem system;
  // A node whose host load ramps to overload after 5 minutes and stays
  // there for an hour, then goes idle.
  NodeConfig cfg;
  os::ProcessSpec host;
  host.name = "staged";
  host.kind = os::ProcessKind::kHost;
  host.program = os::fixed_program({
      os::Phase::sleep(5_min),
      os::Phase::compute(sim::SimDuration::hours(1)),
      os::Phase::sleep(sim::SimDuration::hours(12)),
  });
  cfg.host_processes = {host};
  const NodeId node = system.add_node(cfg);
  (void)node;

  GuestJob job;
  job.work = 30_min;
  const JobId id = system.submit(job);
  system.run_for(3_h);

  const JobRecord& record = system.job(id);
  EXPECT_GE(record.restarts, 1);
  EXPECT_EQ(record.status, JobStatus::kCompleted);
  // Response covers the kill + the overload hour + the rerun.
  EXPECT_GT(record.response(), 1_h);
}

TEST(FgcsSystem, MemoryExhaustionTriggersS4Kill) {
  FgcsSystem system;
  NodeConfig cfg;
  // Host grabs 900 MB after 5 minutes for half an hour.
  os::ProcessSpec hog;
  hog.name = "mem-hog";
  hog.kind = os::ProcessKind::kHost;
  hog.resident_mb = 900.0;
  hog.working_set_mb = 1.0;  // no thrash; the *free memory* check fires
  hog.program = os::fixed_program({os::Phase::sleep(35_min)});
  cfg.host_processes = {hog};
  // Delay the hog: spawn it sleeping 5 min first? Simpler: the hog is
  // resident from t=0, so the node starts S4 and accepts no job at all.
  const NodeId node = system.add_node(cfg);
  GuestJob job;
  job.work = 10_min;
  const JobId id = system.submit(job);
  system.run_for(20_min);
  EXPECT_EQ(system.node_state(node),
            monitor::AvailabilityState::kS4MemoryThrashing);
  EXPECT_EQ(system.job(id).status, JobStatus::kQueued);
  // After the hog exits, the job runs and completes.
  system.run_for(1_h);
  EXPECT_EQ(system.job(id).status, JobStatus::kCompleted);
}

TEST(FgcsSystem, DispatchAvoidsUnavailableNodes) {
  FgcsSystem system;
  const NodeId overloaded = system.add_node(busy_node(0.95));
  const NodeId idle = system.add_node(idle_node());
  GuestJob job;
  job.work = 10_min;
  const JobId id = system.submit(job);
  system.run_for(30_min);
  EXPECT_EQ(system.job(id).last_node, idle);
  EXPECT_EQ(system.job(id).status, JobStatus::kCompleted);
  EXPECT_EQ(system.node_state(overloaded),
            monitor::AvailabilityState::kS3CpuUnavailable);
}

TEST(FgcsSystem, NodeEpisodesRecorded) {
  FgcsSystem system;
  const NodeId node = system.add_node(busy_node(0.95));
  system.run_for(30_min);
  EXPECT_FALSE(system.node_episodes(node).empty());
}

TEST(FgcsSystem, Validation) {
  FgcsSystem system;
  GuestJob bad;
  bad.work = SimDuration::zero();
  EXPECT_THROW(system.submit(bad), ConfigError);
  EXPECT_THROW(system.run_for(1_min), ConfigError);  // no nodes yet
  EXPECT_THROW(system.job(99), ConfigError);

  FgcsSystem::Config cfg;
  cfg.sample_period = SimDuration::zero();
  EXPECT_THROW(FgcsSystem{cfg}, ConfigError);
}

TEST(FgcsSystem, DeterministicAcrossRuns) {
  auto run = [] {
    FgcsSystem system;
    system.add_node(busy_node(0.5));
    system.add_node(busy_node(0.3));
    GuestJob job;
    job.work = 20_min;
    for (int i = 0; i < 4; ++i) system.submit(job);
    system.run_for(4_h);
    return std::make_tuple(system.stats().completed,
                           system.stats().total_restarts,
                           system.job(0).response().as_micros());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace fgcs::ishare

// Tests for the thread pool and parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "fgcs/util/parallel.hpp"

namespace fgcs::util {
namespace {

TEST(ThreadPool, InlineExecutionWithZeroWorkers) {
  ThreadPool pool(0);
  int value = 0;
  pool.submit([&] { value = 42; });  // runs inline
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); }, pool);
  for (const auto& h : hits) {
    ASSERT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, ZeroIterations) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; }, pool);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleIterationRunsInline) {
  ThreadPool pool(4);
  int value = 0;
  parallel_for(1, [&](std::size_t i) { value = static_cast<int>(i) + 7; },
               pool);
  EXPECT_EQ(value, 7);
}

TEST(ParallelFor, ResultIndependentOfWorkerCount) {
  auto run = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<double> out(500);
    parallel_for(500, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    }, pool);
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(ParallelFor, LargeNSmallPool) {
  ThreadPool pool(2);
  std::atomic<std::int64_t> sum{0};
  parallel_for(10000, [&](std::size_t i) {
    sum.fetch_add(static_cast<std::int64_t>(i));
  }, pool);
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

TEST(ParallelFor, GlobalPoolWorks) {
  std::atomic<int> counter{0};
  parallel_for(64, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

}  // namespace
}  // namespace fgcs::util

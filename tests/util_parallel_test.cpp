// Tests for the thread pool and parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

#include "fgcs/util/parallel.hpp"

namespace fgcs::util {
namespace {

TEST(ThreadPool, InlineExecutionWithZeroWorkers) {
  ThreadPool pool(0);
  int value = 0;
  pool.submit([&] { value = 42; });  // runs inline
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); }, pool);
  for (const auto& h : hits) {
    ASSERT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, ZeroIterations) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; }, pool);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleIterationRunsInline) {
  ThreadPool pool(4);
  int value = 0;
  parallel_for(1, [&](std::size_t i) { value = static_cast<int>(i) + 7; },
               pool);
  EXPECT_EQ(value, 7);
}

TEST(ParallelFor, ResultIndependentOfWorkerCount) {
  auto run = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<double> out(500);
    parallel_for(500, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    }, pool);
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(ParallelFor, LargeNSmallPool) {
  ThreadPool pool(2);
  std::atomic<std::int64_t> sum{0};
  parallel_for(10000, [&](std::size_t i) {
    sum.fetch_add(static_cast<std::int64_t>(i));
  }, pool);
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

TEST(ParallelFor, GlobalPoolWorks) {
  std::atomic<int> counter{0};
  parallel_for(64, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelFor, MakesProgressOnBusyPool) {
  // The calling thread participates in chunk draining, so parallel_for
  // completes even while the pool's only worker is held up elsewhere.
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.submit([&] {
    while (!release.load()) std::this_thread::yield();
  });
  std::atomic<int> counter{0};
  parallel_for(256, [&](std::size_t) { counter.fetch_add(1); }, pool);
  EXPECT_EQ(counter.load(), 256);
  release.store(true);
  pool.wait_idle();
}

TEST(ParseThreadCount, AcceptsPlainIntegers) {
  EXPECT_EQ(parse_thread_count("0", 7), 0u);
  EXPECT_EQ(parse_thread_count("1", 7), 1u);
  EXPECT_EQ(parse_thread_count("16", 7), 16u);
}

TEST(ParseThreadCount, FallsBackOnMalformedInput) {
  EXPECT_EQ(parse_thread_count(nullptr, 7), 7u);
  EXPECT_EQ(parse_thread_count("", 7), 7u);
  EXPECT_EQ(parse_thread_count("-2", 7), 7u);
  EXPECT_EQ(parse_thread_count("abc", 7), 7u);
  EXPECT_EQ(parse_thread_count("4x", 7), 7u);
  EXPECT_EQ(parse_thread_count("3.5", 7), 7u);
}

TEST(ParseThreadCount, CapsAbsurdValues) {
  EXPECT_EQ(parse_thread_count("100000", 7), 1024u);
}

TEST(ConfiguredThreadCount, HonorsEnvironmentOverride) {
  // configured_thread_count() re-reads FGCS_THREADS on every call (only
  // ThreadPool::global() latches it), so it is testable here.
  ::setenv("FGCS_THREADS", "3", 1);
  EXPECT_EQ(configured_thread_count(), 3u);
  ::setenv("FGCS_THREADS", "0", 1);
  EXPECT_EQ(configured_thread_count(), 0u);
  ::setenv("FGCS_THREADS", "nope", 1);
  EXPECT_GE(configured_thread_count(), 1u);  // falls back to hardware
  ::unsetenv("FGCS_THREADS");
  EXPECT_GE(configured_thread_count(), 1u);
}

TEST(ParallelFor, ZeroWorkerPoolMatchesParallelResult) {
  auto run = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<std::uint64_t> out(2000);
    parallel_for(2000, [&](std::size_t i) {
      // Mildly index-dependent work, like a per-machine substream.
      std::uint64_t h = i * 0x9e3779b97f4a7c15ull;
      h ^= h >> 31;
      out[i] = h;
    }, pool);
    return out;
  };
  const auto inline_result = run(0);
  EXPECT_EQ(inline_result, run(3));
  EXPECT_EQ(inline_result, run(13));
}

}  // namespace
}  // namespace fgcs::util

// Tests for bootstrap confidence intervals.
#include <gtest/gtest.h>

#include <vector>

#include "fgcs/stats/bootstrap.hpp"
#include "fgcs/stats/descriptive.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::stats {
namespace {

const auto kMean = [](std::span<const double> xs) { return mean(xs); };

TEST(Bootstrap, PointEstimateIsStatistic) {
  util::RngStream rng(1);
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const auto r = bootstrap_ci(xs, kMean, rng, 500);
  EXPECT_DOUBLE_EQ(r.point, 3.0);
}

TEST(Bootstrap, IntervalContainsPointForSymmetricData) {
  util::RngStream rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(10.0, 2.0));
  const auto r = bootstrap_ci(xs, kMean, rng, 1000);
  EXPECT_LE(r.lo, r.point);
  EXPECT_GE(r.hi, r.point);
  EXPECT_NEAR(r.point, 10.0, 0.6);
  // CI width for n=200, sigma=2: roughly 4 * 2/sqrt(200) ~ 0.57.
  EXPECT_LT(r.hi - r.lo, 1.2);
  EXPECT_GT(r.hi - r.lo, 0.2);
}

TEST(Bootstrap, WiderConfidenceWiderInterval) {
  util::RngStream rng1(3), rng2(3);
  std::vector<double> xs;
  util::RngStream data(4);
  for (int i = 0; i < 100; ++i) xs.push_back(data.uniform());
  const auto r90 = bootstrap_ci(xs, kMean, rng1, 2000, 0.90);
  const auto r99 = bootstrap_ci(xs, kMean, rng2, 2000, 0.99);
  EXPECT_GT(r99.hi - r99.lo, r90.hi - r90.lo);
}

TEST(Bootstrap, EmptyInput) {
  util::RngStream rng(5);
  const auto r = bootstrap_ci(std::vector<double>{}, kMean, rng);
  EXPECT_DOUBLE_EQ(r.point, 0.0);
  EXPECT_DOUBLE_EQ(r.lo, 0.0);
}

TEST(Bootstrap, SingleSampleDegenerate) {
  util::RngStream rng(6);
  const auto r = bootstrap_ci(std::vector<double>{7.0}, kMean, rng);
  EXPECT_DOUBLE_EQ(r.point, 7.0);
  EXPECT_DOUBLE_EQ(r.lo, 7.0);
  EXPECT_DOUBLE_EQ(r.hi, 7.0);
}

TEST(Bootstrap, InvalidConfidenceThrows) {
  util::RngStream rng(7);
  const std::vector<double> xs{1, 2};
  EXPECT_THROW(bootstrap_ci(xs, kMean, rng, 100, 0.0), ConfigError);
  EXPECT_THROW(bootstrap_ci(xs, kMean, rng, 100, 1.0), ConfigError);
}

TEST(Bootstrap, DeterministicGivenStream) {
  const std::vector<double> xs{3, 1, 4, 1, 5, 9, 2, 6};
  util::RngStream a(8), b(8);
  const auto ra = bootstrap_ci(xs, kMean, a, 300);
  const auto rb = bootstrap_ci(xs, kMean, b, 300);
  EXPECT_DOUBLE_EQ(ra.lo, rb.lo);
  EXPECT_DOUBLE_EQ(ra.hi, rb.hi);
}

}  // namespace
}  // namespace fgcs::stats

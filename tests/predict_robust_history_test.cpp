// Tests for the robust ("aggressive", §5.3) history predictor.
#include <gtest/gtest.h>

#include "fgcs/predict/robust_history.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::predict {
namespace {

using namespace sim::time_literals;
using monitor::AvailabilityState;
using sim::SimDuration;
using sim::SimTime;

void add_failure(trace::TraceSet& t, const trace::TraceCalendar& cal, int day,
                 int hour, SimDuration dur = SimDuration::hours(1)) {
  trace::UnavailabilityRecord r;
  r.machine = 0;
  r.start = cal.day_start(day) + SimDuration::hours(hour);
  r.end = r.start + dur;
  r.cause = AvailabilityState::kS3CpuUnavailable;
  t.add(r);
}

// Weekday 10-11 failures for 6 weeks, except one "irregular" holiday
// (day 21, a Monday) with no failure, plus one irregular triple-failure
// day (day 22) packing extra occurrences.
struct RobustFixture : ::testing::Test {
  RobustFixture()
      : trace(1, SimTime::epoch(), SimTime::epoch() + SimDuration::days(42)) {
    for (int d = 0; d < 42; ++d) {
      if (cal.is_weekend_day(d)) continue;
      if (d == 21) continue;  // holiday: lab closed, no failure
      add_failure(trace, cal, d, 10);
      if (d == 22) {  // irregular burst day
        add_failure(trace, cal, d, 12, 10_min);
        add_failure(trace, cal, d, 13, 10_min);
        add_failure(trace, cal, d, 14, 10_min);
      }
    }
    index.emplace(trace);
    predictor.attach(*index, cal);
  }

  trace::TraceCalendar cal;
  trace::TraceSet trace;
  std::optional<trace::TraceIndex> index;
  RobustHistoryPredictor predictor;
};

TEST_F(RobustFixture, PatternWindowPredictedUnavailable) {
  PredictionQuery q{0, cal.day_start(35) + 10_h, 1_h};
  EXPECT_LT(predictor.predict_availability(q), 0.25);
}

TEST_F(RobustFixture, CleanWindowPredictedAvailable) {
  PredictionQuery q{0, cal.day_start(35) + 16_h, 1_h};
  EXPECT_GT(predictor.predict_availability(q), 0.8);
}

TEST_F(RobustFixture, HolidayDoesNotFlipThePattern) {
  // Day 24 (Thursday) right after the irregular days: predictions for the
  // 10-11 window must still say unavailable despite the day-21 holiday.
  PredictionQuery q{0, cal.day_start(24) + 10_h, 1_h};
  EXPECT_LT(predictor.predict_availability(q), 0.35);
}

TEST_F(RobustFixture, TrimmedOccurrencesIgnoreBurstDay) {
  // The plain mean over 12 windows of the 12:00-15:00 window counts the
  // day-22 burst; the trimmed estimate must stay near zero.
  PredictionQuery q{0, cal.day_start(35) + 12_h, SimDuration::hours(3)};
  EXPECT_LT(predictor.predict_occurrences(q), 0.15);
}

TEST_F(RobustFixture, NoHistoryYieldsPrior) {
  PredictionQuery q{0, cal.day_start(0) + 10_h, 1_h};
  EXPECT_DOUBLE_EQ(predictor.predict_availability(q), 0.5);
  EXPECT_DOUBLE_EQ(predictor.predict_occurrences(q), 0.0);
}

TEST_F(RobustFixture, RecencyWeightingAdaptsFasterThanPlain) {
  // Build a schedule shift: failures stop entirely after day 28.
  trace::TraceSet shifted(1, SimTime::epoch(),
                          SimTime::epoch() + SimDuration::days(70));
  for (int d = 0; d < 28; ++d) {
    if (!cal.is_weekend_day(d)) add_failure(shifted, cal, d, 10);
  }
  const trace::TraceIndex idx(shifted);
  RobustHistoryConfig fast;
  fast.discount = 0.5;
  RobustHistoryPredictor adaptive(fast);
  adaptive.attach(idx, cal);
  RobustHistoryConfig slow;
  slow.discount = 1.0;
  RobustHistoryPredictor uniform(slow);
  uniform.attach(idx, cal);

  // One week after the shift, the recent windows are clean but the
  // 12-day history still contains the old failing regime: the discounted
  // predictor must trust the recent (clean) windows more.
  PredictionQuery q{0, cal.day_start(35) + 10_h, 1_h};
  EXPECT_GT(adaptive.predict_availability(q),
            uniform.predict_availability(q));
}

TEST(RobustHistoryPredictor, ConfigValidation) {
  RobustHistoryConfig cfg;
  cfg.discount = 0.0;
  EXPECT_THROW(RobustHistoryPredictor{cfg}, ConfigError);
  cfg = RobustHistoryConfig{};
  cfg.discount = 1.5;
  EXPECT_THROW(RobustHistoryPredictor{cfg}, ConfigError);
  cfg = RobustHistoryConfig{};
  cfg.history_days = 0;
  EXPECT_THROW(RobustHistoryPredictor{cfg}, ConfigError);
}

TEST(RobustHistoryPredictor, NameMentionsParameters) {
  EXPECT_EQ(RobustHistoryPredictor().name(), "robust-history(k=12,d=0.85)");
}

}  // namespace
}  // namespace fgcs::predict

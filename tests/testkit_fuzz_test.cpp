// The fuzz subsystem's own machinery: target registry, deterministic
// mutator, corpus loading, and the in-process iteration driver (with
// synthetic corpora, so no disk layout is assumed).
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "fgcs/testkit/fuzz.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::testkit {
namespace {

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(TestkitFuzz, TargetRegistryIsComplete) {
  const auto targets = fuzz_targets();
  ASSERT_EQ(targets.size(), 6u);
  for (const char* name : {"trace-csv", "trace-binary", "fault-plan",
                           "cli-args", "serve-query", "query-pred"}) {
    const FuzzTargetInfo* t = find_fuzz_target(name);
    ASSERT_NE(t, nullptr) << name;
    EXPECT_STREQ(t->name, name);
    EXPECT_NE(t->fn, nullptr);
    EXPECT_NE(std::string(t->corpus_subdir), "");
  }
  EXPECT_EQ(find_fuzz_target("bogus"), nullptr);
}

TEST(TestkitFuzz, MutatorIsDeterministicAndVaried) {
  const auto base = bytes("machine,start_us,end_us,cause,cpu,mem\n0,1,2,S5,0.5,100\n");
  const auto other = bytes("# fgcs-fault-plan v1\ncrash rate_per_day=1\n");
  int changed = 0;
  for (std::uint64_t i = 0; i < 32; ++i) {
    const auto a = mutate_input(base, other, 99, i);
    const auto b = mutate_input(base, other, 99, i);
    EXPECT_EQ(a, b) << "iteration " << i;
    if (a != base) ++changed;
  }
  EXPECT_GE(changed, 24) << "mutator is mostly a no-op";
  // Different seed, different stream.
  EXPECT_NE(mutate_input(base, other, 99, 0),
            mutate_input(base, other, 100, 0));
}

TEST(TestkitFuzz, LoadCorpusRejectsMissingAndEmptyDirs) {
  EXPECT_THROW(load_corpus("/nonexistent/fgcs-corpus"), fgcs::IoError);
  const auto empty =
      std::filesystem::temp_directory_path() / "fgcs_empty_corpus";
  std::filesystem::create_directories(empty);
  EXPECT_THROW(load_corpus(empty.string()), fgcs::IoError);
  std::filesystem::remove_all(empty);
}

TEST(TestkitFuzz, TargetsAreTotalOverSyntheticCorpora) {
  // Each target digests valid input, garbage, and empty input without
  // letting an expected parse error escape.
  const std::vector<std::vector<std::uint8_t>> inputs = {
      bytes(""),
      bytes("garbage \xff\xfe bytes"),
      bytes("# fgcs-fault-plan v1\ncrash rate_per_day=2 mean_minutes=10\n"),
      bytes("--seed 7 --days 2 --migrate"),
      bytes("# fgcs-serve-load v1\nmachines=8\nqueries=100\nmix=zipf:2\n"),
      bytes("# fgcs-serve-load v1\nmix=sweep:1--4\nmachines=99999999999\n"),
      bytes("machine=[0,100) cause=S5 time=[0,86400000000)"),
      bytes("machine=[9,3) cause=S9 time=[5,)"),
  };
  for (const auto& target : fuzz_targets()) {
    for (const auto& input : inputs) {
      EXPECT_NO_THROW(target.fn(input.data(), input.size()))
          << target.name;
    }
  }
}

TEST(TestkitFuzz, RunIterationsReplaysCorpusThenMutates) {
  const FuzzTargetInfo* target = find_fuzz_target("fault-plan");
  ASSERT_NE(target, nullptr);
  const std::vector<std::vector<std::uint8_t>> corpus = {
      bytes("# fgcs-fault-plan v1\ncrash rate_per_day=1 mean_minutes=5\n"),
      bytes("# fgcs-fault-plan v1\nguest-kill at_hours=1,2 machine=0\n"),
  };
  const FuzzRunStats stats = run_fuzz_iterations(*target, corpus, 1, 200);
  EXPECT_EQ(stats.corpus_entries, 2u);
  EXPECT_EQ(stats.iterations, 200u);
  EXPECT_GT(stats.max_input_bytes, 0u);
}

TEST(TestkitFuzz, EscapingFindingPropagatesToTheDriver) {
  static const FuzzTargetInfo kBomb{
      "bomb",
      +[](const std::uint8_t*, std::size_t size) {
        if (size > 0) throw std::logic_error("fuzz finding: planted");
      },
      "none"};
  const std::vector<std::vector<std::uint8_t>> corpus = {bytes("x")};
  EXPECT_THROW(run_fuzz_iterations(kBomb, corpus, 1, 10), std::logic_error);
}

}  // namespace
}  // namespace fgcs::testkit

// Streaming segment analytics: bit-identity with the materializing
// analyzer/predictor, zone-map pushdown boundary behaviour, parallel-scan
// determinism, and salvage fallback on truncated segments.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fgcs/core/analyzer.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/predict/semi_markov.hpp"
#include "fgcs/query/engine.hpp"
#include "fgcs/trace/format_v2.hpp"
#include "fgcs/trace/index.hpp"
#include "fgcs/trace/io.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/parallel.hpp"

namespace fgcs::query {
namespace {

using sim::SimDuration;
using sim::SimTime;

namespace fs = std::filesystem;

// v2 layout facts the truncation tests rely on (format_v2.cpp): 28-byte
// header, then per block 8 bytes of marker+count, 37 bytes per record,
// and a 4-byte CRC.
constexpr std::size_t kHeaderBytes = 28;
std::size_t block_bytes(std::size_t records) { return 8 + 37 * records + 4; }

class QueryEngine : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fgcs_query_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

trace::TraceSet testbed_trace(std::uint32_t machines = 6, int days = 10) {
  core::TestbedConfig config;
  config.machines = machines;
  config.days = days;
  config.seed = 20060806;
  return core::run_testbed(config);
}

// Splits a trace into `shards` machine-contiguous segments, all sharing
// the full-fleet header — the layout fleet spill mode produces.
std::vector<std::string> write_segments(const trace::TraceSet& trace,
                                        const fs::path& dir,
                                        std::size_t shards,
                                        std::size_t block_records) {
  std::vector<std::string> paths;
  const std::uint32_t n = trace.machine_count();
  const auto per =
      static_cast<std::uint32_t>((n + shards - 1) / shards);
  const auto records = trace.records();
  for (std::size_t s = 0; s < shards; ++s) {
    const auto lo = static_cast<std::uint32_t>(s) * per;
    const std::uint32_t hi = std::min(n, lo + per);
    char name[32];
    std::snprintf(name, sizeof name, "shard-%04zu.trc2", s);
    const std::string p = (dir / name).string();
    trace::TraceWriterV2 writer(p, n, trace.horizon_start(),
                                trace.horizon_end(), block_records);
    for (const auto& r : records) {
      if (r.machine >= lo && r.machine < hi) writer.append(r);
    }
    writer.finish();
    paths.push_back(p);
  }
  return paths;
}

// The materializing baseline the engine must match bit-for-bit: the
// analyzer's aggregations plus the per-machine semi-Markov fold at the
// engine's default training query (horizon end, 1-hour window).
struct Reference {
  core::Table2Stats table2;
  core::IntervalStats intervals;
  core::HourlyPattern hourly;
  double deviation_weekday = 0.0;
  double deviation_weekend = 0.0;
  double availability_sum = 0.0;
  double occurrences_sum = 0.0;
};

Reference materialized_reference(const trace::TraceSet& t) {
  Reference ref;
  const trace::TraceCalendar calendar;
  const core::TraceAnalyzer analyzer(t, calendar);
  ref.table2 = analyzer.table2();
  ref.intervals = analyzer.intervals();
  ref.hourly = analyzer.hourly();
  ref.deviation_weekday = analyzer.hourly_relative_deviation(false);
  ref.deviation_weekend = analyzer.hourly_relative_deviation(true);
  const trace::TraceIndex index(t);
  predict::SemiMarkovPredictor predictor;
  predictor.attach(index, calendar);
  for (std::uint32_t m = 0; m < t.machine_count(); ++m) {
    const predict::PredictionQuery q{m, t.horizon_end(),
                                     SimDuration::hours(1)};
    ref.availability_sum += predictor.predict_availability(q);
    ref.occurrences_sum += predictor.predict_occurrences(q);
  }
  return ref;
}

// Every comparison below is ==, never near: the streaming path's whole
// contract is bit-identity with the materializing arithmetic.
void expect_matches_reference(const QueryResult& got, const Reference& ref) {
  EXPECT_EQ(got.table2.machines, ref.table2.machines);
  const auto expect_range = [](const core::Table2Stats::Range& a,
                               const core::Table2Stats::Range& b,
                               const char* what) {
    EXPECT_EQ(a.min, b.min) << what;
    EXPECT_EQ(a.max, b.max) << what;
    EXPECT_EQ(a.mean, b.mean) << what;
  };
  expect_range(got.table2.total, ref.table2.total, "total");
  expect_range(got.table2.cpu_contention, ref.table2.cpu_contention, "cpu");
  expect_range(got.table2.mem_contention, ref.table2.mem_contention, "mem");
  expect_range(got.table2.urr, ref.table2.urr, "urr");
  EXPECT_EQ(got.table2.cpu_pct_min, ref.table2.cpu_pct_min);
  EXPECT_EQ(got.table2.cpu_pct_max, ref.table2.cpu_pct_max);
  EXPECT_EQ(got.table2.mem_pct_min, ref.table2.mem_pct_min);
  EXPECT_EQ(got.table2.mem_pct_max, ref.table2.mem_pct_max);
  EXPECT_EQ(got.table2.urr_pct_min, ref.table2.urr_pct_min);
  EXPECT_EQ(got.table2.urr_pct_max, ref.table2.urr_pct_max);
  EXPECT_EQ(got.table2.reboot_fraction_of_urr,
            ref.table2.reboot_fraction_of_urr);

  const auto expect_class = [](const IntervalClassSummary& a,
                               const core::IntervalClassStats& b,
                               const char* what) {
    EXPECT_EQ(a.count, b.count) << what;
    EXPECT_EQ(a.mean_hours, b.mean_hours) << what;
    EXPECT_EQ(a.frac_under_5min, b.frac_under_5min) << what;
    EXPECT_EQ(a.frac_5min_to_2h, b.frac_5min_to_2h) << what;
    EXPECT_EQ(a.frac_2h_to_4h, b.frac_2h_to_4h) << what;
    EXPECT_EQ(a.frac_4h_to_6h, b.frac_4h_to_6h) << what;
  };
  expect_class(got.intervals.weekday, ref.intervals.weekday, "weekday");
  expect_class(got.intervals.weekend, ref.intervals.weekend, "weekend");

  EXPECT_EQ(got.hourly.weekday_days, ref.hourly.weekday_days);
  EXPECT_EQ(got.hourly.weekend_days, ref.hourly.weekend_days);
  for (std::size_t h = 0; h < 24; ++h) {
    EXPECT_EQ(got.hourly.weekday[h].mean, ref.hourly.weekday[h].mean) << h;
    EXPECT_EQ(got.hourly.weekday[h].min, ref.hourly.weekday[h].min) << h;
    EXPECT_EQ(got.hourly.weekday[h].max, ref.hourly.weekday[h].max) << h;
    EXPECT_EQ(got.hourly.weekday[h].stddev, ref.hourly.weekday[h].stddev)
        << h;
    EXPECT_EQ(got.hourly.weekend[h].mean, ref.hourly.weekend[h].mean) << h;
    EXPECT_EQ(got.hourly.weekend[h].min, ref.hourly.weekend[h].min) << h;
    EXPECT_EQ(got.hourly.weekend[h].max, ref.hourly.weekend[h].max) << h;
    EXPECT_EQ(got.hourly.weekend[h].stddev, ref.hourly.weekend[h].stddev)
        << h;
  }
  EXPECT_EQ(got.relative_deviation_weekday, ref.deviation_weekday);
  EXPECT_EQ(got.relative_deviation_weekend, ref.deviation_weekend);
  EXPECT_EQ(got.training.availability_sum, ref.availability_sum);
  EXPECT_EQ(got.training.occurrences_sum, ref.occurrences_sum);
}

void expect_same_result(const QueryResult& a, const QueryResult& b) {
  EXPECT_EQ(a.table2.total.mean, b.table2.total.mean);
  EXPECT_EQ(a.table2.cpu_pct_min, b.table2.cpu_pct_min);
  EXPECT_EQ(a.table2.reboot_fraction_of_urr, b.table2.reboot_fraction_of_urr);
  EXPECT_EQ(a.intervals.weekday.count, b.intervals.weekday.count);
  EXPECT_EQ(a.intervals.weekday.mean_hours, b.intervals.weekday.mean_hours);
  EXPECT_EQ(a.intervals.weekend.mean_hours, b.intervals.weekend.mean_hours);
  EXPECT_EQ(a.intervals.weekend.frac_4h_to_6h,
            b.intervals.weekend.frac_4h_to_6h);
  for (std::size_t h = 0; h < 24; ++h) {
    EXPECT_EQ(a.hourly.weekday[h].mean, b.hourly.weekday[h].mean) << h;
    EXPECT_EQ(a.hourly.weekend[h].stddev, b.hourly.weekend[h].stddev) << h;
  }
  EXPECT_EQ(a.relative_deviation_weekday, b.relative_deviation_weekday);
  EXPECT_EQ(a.relative_deviation_weekend, b.relative_deviation_weekend);
  EXPECT_EQ(a.training.machines, b.training.machines);
  EXPECT_EQ(a.training.machines_with_history, b.training.machines_with_history);
  EXPECT_EQ(a.training.gap_samples, b.training.gap_samples);
  EXPECT_EQ(a.training.availability_sum, b.training.availability_sum);
  EXPECT_EQ(a.training.occurrences_sum, b.training.occurrences_sum);
  EXPECT_EQ(a.stats.records_matched, b.stats.records_matched);
}

TEST_F(QueryEngine, StreamingMatchesMaterializingAnalyzerBitForBit) {
  const auto trace = testbed_trace();
  ASSERT_GT(trace.size(), 0u);
  const auto paths = write_segments(trace, dir_, 3, 32);
  const SegmentQuery query(paths);
  EXPECT_EQ(query.machine_count(), trace.machine_count());
  EXPECT_EQ(query.horizon_start(), trace.horizon_start());
  EXPECT_EQ(query.horizon_end(), trace.horizon_end());

  const QueryResult got = query.run();
  EXPECT_EQ(got.stats.records_scanned, trace.size());
  EXPECT_EQ(got.stats.records_matched, trace.size());
  EXPECT_EQ(got.stats.segments, 3u);
  EXPECT_EQ(got.stats.blocks_unindexed, 0u);
  EXPECT_EQ(got.training.machines, trace.machine_count());
  expect_matches_reference(got, materialized_reference(trace));
}

TEST_F(QueryEngine, PredicateFilteredScanMatchesFilteredMaterializer) {
  const auto trace = testbed_trace();
  const auto paths = write_segments(trace, dir_, 3, 32);
  const SegmentQuery query(paths);

  QueryOptions opts;
  opts.predicate = Predicate::parse("machine=[1,4) cause=S3");
  const QueryResult got = query.run(opts);

  trace::TraceSet filtered(trace.machine_count(), trace.horizon_start(),
                           trace.horizon_end());
  for (const auto& r : trace.records()) {
    if (opts.predicate.matches(r.machine, r.start.as_micros(),
                               r.end.as_micros(),
                               static_cast<std::uint8_t>(r.cause))) {
      filtered.add(r);
    }
  }
  EXPECT_EQ(got.stats.records_matched, filtered.size());
  expect_matches_reference(got, materialized_reference(filtered));
}

// A hand-built trace with four blocks in disjoint time windows: block 0
// and 1 hold machine 0 (days 0 and 2), block 2 and 3 hold machine 1
// (days 4 and 6); only block 3 contains S5 episodes.
trace::TraceSet zoned_trace() {
  trace::TraceSet t(2, SimTime::epoch(),
                    SimTime::epoch() + SimDuration::days(8));
  const auto add = [&](std::uint32_t m, int base_hour,
                       monitor::AvailabilityState cause) {
    for (int i = 0; i < 4; ++i) {
      trace::UnavailabilityRecord r;
      r.machine = m;
      r.start = SimTime::epoch() + SimDuration::hours(base_hour + i);
      r.end = r.start + SimDuration::minutes(30);
      r.cause = cause;
      r.host_cpu = 0.5;
      r.free_mem_mb = 128.0;
      t.add(r);
    }
  };
  add(0, 1, monitor::AvailabilityState::kS3CpuUnavailable);
  add(0, 49, monitor::AvailabilityState::kS3CpuUnavailable);
  add(1, 97, monitor::AvailabilityState::kS4MemoryThrashing);
  add(1, 145, monitor::AvailabilityState::kS5MachineUnavailable);
  return t;
}

TEST_F(QueryEngine, ZoneMapsPruneAtBlockBoundaries) {
  const auto trace = zoned_trace();
  const auto paths = write_segments(trace, dir_, 1, 4);
  const SegmentQuery query(paths);
  ASSERT_EQ(query.segment(0).block_count(), 4u);
  EXPECT_TRUE(query.segment(0).has_zone_maps());
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_TRUE(query.segment(0).block_indexed(b)) << b;
  }

  const auto run_pred = [&](const std::string& text) {
    QueryOptions opts;
    opts.predicate = Predicate::parse(text);
    return query.run(opts);
  };
  const auto brute = [&](const std::string& text) {
    QueryOptions opts;
    opts.predicate = Predicate::parse(text);
    opts.disable_pruning = true;
    return query.run(opts);
  };

  // Empty result: a time window past every zone skips all four blocks.
  {
    const std::string pred = "time=[576000000000,579600000000)";  // h160..161
    const QueryResult got = run_pred(pred);
    EXPECT_EQ(got.stats.blocks_skipped, 4u);
    EXPECT_EQ(got.stats.blocks_scanned, 0u);
    EXPECT_EQ(got.stats.records_matched, 0u);
    EXPECT_EQ(got.table2.total.max, 0);
    expect_same_result(got, brute(pred));
  }
  // Single-block hit: day 0 touches only block 0.
  {
    const std::string pred = "time=[0,86400000000)";
    const QueryResult got = run_pred(pred);
    EXPECT_EQ(got.stats.blocks_scanned, 1u);
    EXPECT_EQ(got.stats.blocks_skipped, 3u);
    EXPECT_EQ(got.stats.records_matched, 4u);
    expect_same_result(got, brute(pred));
  }
  // All-blocks hit: the empty predicate scans everything.
  {
    const QueryResult got = run_pred("all");
    EXPECT_EQ(got.stats.blocks_scanned, 4u);
    EXPECT_EQ(got.stats.blocks_skipped, 0u);
    EXPECT_EQ(got.stats.records_matched, 16u);
    expect_same_result(got, brute("all"));
  }
  // Cause-mask pruning: only block 3 holds S5.
  {
    const QueryResult got = run_pred("cause=S5");
    EXPECT_EQ(got.stats.blocks_scanned, 1u);
    EXPECT_EQ(got.stats.blocks_skipped, 3u);
    EXPECT_EQ(got.stats.records_matched, 4u);
    expect_same_result(got, brute("cause=S5"));
  }
  // Footer machine-range pruning: machine 0 lives in blocks 0 and 1.
  {
    const QueryResult got = run_pred("machine=[0,1)");
    EXPECT_EQ(got.stats.blocks_scanned, 2u);
    EXPECT_EQ(got.stats.blocks_skipped, 2u);
    EXPECT_EQ(got.stats.records_matched, 8u);
    expect_same_result(got, brute("machine=[0,1)"));
  }
}

TEST_F(QueryEngine, ParallelScanIsDeterministicAcrossWorkerCounts) {
  const auto trace = testbed_trace(8, 10);
  const auto paths = write_segments(trace, dir_, 8, 16);
  const SegmentQuery query(paths);

  util::ThreadPool inline_pool(0);
  util::ThreadPool workers(3);
  QueryOptions opts;
  opts.predicate = Predicate::parse("cause=S3");
  opts.pool = &inline_pool;
  const QueryResult sequential = query.run(opts);
  opts.pool = &workers;
  const QueryResult parallel1 = query.run(opts);
  const QueryResult parallel2 = query.run(opts);
  expect_same_result(sequential, parallel1);
  expect_same_result(sequential, parallel2);
}

TEST_F(QueryEngine, TruncatedSegmentFallsBackToSalvageScan) {
  const auto trace = testbed_trace();
  const std::size_t kBlockRecords = 8;
  const auto paths = write_segments(trace, dir_, 3, kBlockRecords);

  // Tear shard 1 mid-way through its third block — the crashtest-style
  // damage a SIGKILL during spill leaves behind.
  const std::size_t cut = kHeaderBytes + 2 * block_bytes(kBlockRecords) + 150;
  ASSERT_LT(cut, fs::file_size(paths[1]));
  fs::resize_file(paths[1], cut);
  EXPECT_THROW(trace::TraceView{paths[1]}, IoError);

  const SegmentQuery query(paths);
  EXPECT_EQ(query.salvaged_count(), 1u);
  EXPECT_TRUE(query.segment(1).salvaged());
  EXPECT_EQ(query.segment(1).block_count(), 2u);

  const QueryResult got = query.run();
  EXPECT_EQ(got.stats.segments_salvaged, 1u);
  // The salvaged segment's two surviving blocks full-scan (no index).
  EXPECT_EQ(got.stats.blocks_unindexed, 2u);

  // Expected: shard 0 and 2 in full plus shard 1's first 16 records.
  const auto per = trace.machine_count() / 3;
  trace::TraceSet expected(trace.machine_count(), trace.horizon_start(),
                           trace.horizon_end());
  std::size_t shard1_kept = 0;
  for (const auto& r : trace.records()) {
    const bool in_shard1 = r.machine >= per && r.machine < 2 * per;
    if (in_shard1 && shard1_kept >= 2 * kBlockRecords) continue;
    shard1_kept += in_shard1 ? 1 : 0;
    expected.add(r);
  }
  EXPECT_EQ(got.stats.records_matched, expected.size());
  expect_matches_reference(got, materialized_reference(expected));

  // Pushdown still applies to the intact shards: a selective machine
  // predicate must skip at least shard 2's blocks.
  QueryOptions opts;
  opts.predicate = Predicate::parse("machine=[0,1)");
  const QueryResult pruned = query.run(opts);
  EXPECT_GT(pruned.stats.blocks_skipped, 0u);
  QueryOptions brute = opts;
  brute.disable_pruning = true;
  expect_same_result(pruned, query.run(brute));
}

TEST_F(QueryEngine, TornTrailerSalvagesEveryCommittedBlock) {
  const auto trace = testbed_trace(4, 6);
  const auto paths = write_segments(trace, dir_, 1, 16);
  const QueryResult clean = SegmentQuery(paths).run();

  fs::resize_file(paths[0], fs::file_size(paths[0]) - 20);
  EXPECT_THROW(trace::TraceView{paths[0]}, IoError);

  const SegmentQuery query(paths);
  EXPECT_EQ(query.salvaged_count(), 1u);
  const QueryResult got = query.run();
  // Every block was committed before the tail tear: identical results,
  // just without index metadata.
  EXPECT_EQ(got.stats.blocks_unindexed, got.stats.blocks_total);
  EXPECT_EQ(got.stats.records_matched, clean.stats.records_matched);
  expect_same_result(got, clean);
}

TEST_F(QueryEngine, SalvageLoaderReadsZoneMappedSegmentsCleanly) {
  // Forward/backward compatibility: the zone section rides between the
  // last block and the classic footer, so the block-chain salvage walk
  // (the v2 reader that predates zone maps) must read a zone-mapped
  // segment without reporting damage.
  const auto trace = testbed_trace(4, 6);
  const auto paths = write_segments(trace, dir_, 1, 16);
  const trace::LoadReport report = trace::load_trace_v2_salvage(paths[0]);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.recovered, trace.size());
  EXPECT_EQ(trace::load_trace_v2(paths[0]).size(), trace.size());
}

TEST_F(QueryEngine, HeaderDisagreementThrows) {
  const auto a = testbed_trace(4, 6);
  const auto b = testbed_trace(6, 6);
  const auto pa = path("a.trc2");
  const auto pb = path("b.trc2");
  trace::write_trace_v2(a, pa);
  trace::write_trace_v2(b, pb);
  EXPECT_THROW(SegmentQuery({pa, pb}), ConfigError);
}

TEST_F(QueryEngine, ListSegmentsSortsAndRejectsEmptyDirs) {
  const auto trace = testbed_trace(2, 3);
  trace::write_trace_v2(trace, path("shard-0001.trc2"));
  trace::write_trace_v2(trace, path("shard-0000.trc2"));
  std::ofstream(path("notes.txt")) << "not a segment";
  const auto paths = SegmentQuery::list_segments(dir_.string());
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_NE(paths[0].find("shard-0000"), std::string::npos);
  EXPECT_NE(paths[1].find("shard-0001"), std::string::npos);

  const auto empty = (dir_ / "empty").string();
  fs::create_directories(empty);
  EXPECT_THROW(SegmentQuery::list_segments(empty), IoError);
  EXPECT_THROW(SegmentQuery::list_segments(path("missing")), IoError);
}

}  // namespace
}  // namespace fgcs::query

// Tests for the memory/thrashing model.
#include <gtest/gtest.h>

#include "fgcs/os/memory.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::os {
namespace {

TEST(MemoryParams, AvailableExcludesKernel) {
  const auto p = MemoryParams::solaris_384mb();
  EXPECT_DOUBLE_EQ(p.available_mb(), 284.0);
}

TEST(MemoryParams, NoThrashWithinCapacity) {
  const auto p = MemoryParams::solaris_384mb();
  EXPECT_FALSE(p.thrashes(283.0));
  EXPECT_DOUBLE_EQ(p.efficiency(100.0), 1.0);
  EXPECT_DOUBLE_EQ(p.efficiency(284.0), 1.0);
}

TEST(MemoryParams, ThrashBeyondCapacity) {
  const auto p = MemoryParams::solaris_384mb();
  EXPECT_TRUE(p.thrashes(285.0));
  EXPECT_LT(p.efficiency(300.0), 1.0);
}

TEST(MemoryParams, EfficiencyMonotoneInOvercommit) {
  const auto p = MemoryParams::solaris_384mb();
  double prev = 1.0;
  for (double ws = 290; ws <= 600; ws += 20) {
    const double e = p.efficiency(ws);
    EXPECT_LE(e, prev);
    prev = e;
  }
}

TEST(MemoryParams, EfficiencyHasFloor) {
  const auto p = MemoryParams::solaris_384mb();
  EXPECT_DOUBLE_EQ(p.efficiency(1e9), p.efficiency_floor);
}

TEST(MemoryParams, PaperThrashCases) {
  // Table 1 footprints on the 384 MB Solaris machine: H2/H5 with
  // apsi/bzip2/mcf exceed capacity, galgel never does (§3.2.3).
  const auto p = MemoryParams::solaris_384mb();
  const double h2 = 213.0, h5 = 210.0;
  const double apsi = 193.0, galgel = 29.0, bzip2 = 180.0, mcf = 96.0;
  for (double host : {h2, h5}) {
    EXPECT_TRUE(p.thrashes(host + apsi));
    EXPECT_TRUE(p.thrashes(host + bzip2));
    EXPECT_TRUE(p.thrashes(host + mcf));
    EXPECT_FALSE(p.thrashes(host + galgel));
  }
  const double h1 = 71.0, h3 = 53.0, h4 = 68.0, h6 = 84.0;
  for (double host : {h1, h3, h4, h6}) {
    for (double guest : {apsi, galgel, bzip2, mcf}) {
      EXPECT_FALSE(p.thrashes(host + guest));
    }
  }
}

TEST(MemoryParams, LinuxProfileLargerRam) {
  EXPECT_GT(MemoryParams::linux_1gb().ram_mb,
            MemoryParams::solaris_384mb().ram_mb);
}

TEST(MemoryParams, ValidationRejectsBadValues) {
  MemoryParams p;
  p.ram_mb = 0;
  EXPECT_THROW(p.validate(), ConfigError);

  p = MemoryParams{};
  p.kernel_mb = p.ram_mb + 1;
  EXPECT_THROW(p.validate(), ConfigError);

  p = MemoryParams{};
  p.efficiency_floor = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);

  p = MemoryParams{};
  p.thrash_severity = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

}  // namespace
}  // namespace fgcs::os

// Tests for scheduler parameters: refill curve, goodness, profiles.
#include <gtest/gtest.h>

#include "fgcs/os/scheduler.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::os {
namespace {

TEST(SchedulerParams, RefillEndpoints) {
  const auto p = SchedulerParams::linux_2_4();
  EXPECT_DOUBLE_EQ(p.refill_ticks(0), p.base_refill_ticks);
  EXPECT_DOUBLE_EQ(p.refill_ticks(19), p.min_refill_ticks);
}

TEST(SchedulerParams, RefillMonotoneDecreasing) {
  const auto p = SchedulerParams::linux_2_4();
  for (int nice = 1; nice <= 19; ++nice) {
    EXPECT_LE(p.refill_ticks(nice), p.refill_ticks(nice - 1))
        << "nice " << nice;
  }
}

TEST(SchedulerParams, ConvexCurveKeepsMidPrioritiesHigh) {
  // The Figure 2 property: mid-range priorities stay close to nice 0.
  const auto p = SchedulerParams::linux_2_4();
  const double mid = p.refill_ticks(10);
  const double linear =
      p.base_refill_ticks +
      (p.min_refill_ticks - p.base_refill_ticks) * 10.0 / 19.0;
  EXPECT_GT(mid, linear);
}

TEST(SchedulerParams, GoodnessZeroWithoutCredit) {
  const auto p = SchedulerParams::linux_2_4();
  EXPECT_EQ(p.goodness(0.0, 0), 0.0);
  EXPECT_EQ(p.goodness(-1.0, 0), 0.0);
}

TEST(SchedulerParams, GoodnessOrdering) {
  const auto p = SchedulerParams::linux_2_4();
  // More credit wins at equal nice.
  EXPECT_GT(p.goodness(10, 0), p.goodness(5, 0));
  // Lower nice wins at equal credit.
  EXPECT_GT(p.goodness(5, 0), p.goodness(5, 19));
  // A nice-0 process with any credit outranks a nice-19 one with slightly
  // more: static weight dominates small credit differences.
  EXPECT_GT(p.goodness(5, 0), p.goodness(6, 19));
}

TEST(SchedulerParams, ProfilesDiffer) {
  const auto linux = SchedulerParams::linux_2_4();
  const auto solaris = SchedulerParams::solaris_ts();
  EXPECT_NE(linux.name, solaris.name);
  EXPECT_NE(linux.base_refill_ticks, solaris.base_refill_ticks);
  EXPECT_NE(linux.sleep_credit_multiplier, solaris.sleep_credit_multiplier);
}

TEST(SchedulerParams, ProfilesValidate) {
  EXPECT_NO_THROW(SchedulerParams::linux_2_4().validate());
  EXPECT_NO_THROW(SchedulerParams::solaris_ts().validate());
}

TEST(SchedulerParams, ValidationRejectsBadValues) {
  auto p = SchedulerParams::linux_2_4();
  p.tick = sim::SimDuration::zero();
  EXPECT_THROW(p.validate(), ConfigError);

  p = SchedulerParams::linux_2_4();
  p.min_refill_ticks = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);

  p = SchedulerParams::linux_2_4();
  p.base_refill_ticks = 0.5;  // below min_refill_ticks
  EXPECT_THROW(p.validate(), ConfigError);

  p = SchedulerParams::linux_2_4();
  p.sleep_credit_multiplier = 0.5;
  EXPECT_THROW(p.validate(), ConfigError);
}

// Refill stays within [min, base] across the whole nice range for a sweep
// of gamma shapes.
class RefillGammaTest : public ::testing::TestWithParam<double> {};

TEST_P(RefillGammaTest, StaysInBounds) {
  auto p = SchedulerParams::linux_2_4();
  p.refill_curve_gamma = GetParam();
  for (int nice = 0; nice <= 19; ++nice) {
    const double r = p.refill_ticks(nice);
    EXPECT_GE(r, p.min_refill_ticks);
    EXPECT_LE(r, p.base_refill_ticks);
  }
}

INSTANTIATE_TEST_SUITE_P(GammaSweep, RefillGammaTest,
                         ::testing::Values(0.1, 0.35, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace fgcs::os

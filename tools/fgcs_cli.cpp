// fgcs — command-line front end for the library.
//
//   fgcs simulate  --out trace.trc [--machines N] [--days D] [--seed S]
//                  [--profile purdue|enterprise] [--fault-plan plan.txt]
//   fgcs fleet     --machines N [--days D] [--seed S] [--threads T]
//                  [--spill-dir DIR] [--shard-machines M] [--out trace]
//   fgcs analyze   <trace> [--start-dow 0..6] [--salvage]
//   fgcs predict   <trace> [--train-days D] [--window-hours H] [--salvage]
//   fgcs guests    [<trace>] [--checkpoint-interval MIN] [--migrate] ...
//   fgcs calibrate [--profile linux|solaris]
//
// `simulate` runs the testbed (optionally under an injected fault plan)
// and writes a trace; `fleet` runs the sharded sweep engine for
// N-thousand-machine studies, spilling per-shard columnar (format v2)
// segments instead of materializing the fleet in memory; `analyze`
// reproduces the paper's Table 2 / Figure 6
// / Figure 7 statistics from any saved trace; `predict` runs the
// predictor panel; `guests` runs the resilient guest-job lifecycle
// (checkpoint/restart/backoff/migration); `calibrate` derives Th1/Th2 for
// a scheduler profile via the offline contention sweep. `--salvage`
// recovers what it can from damaged traces instead of failing.
//
// Every command also accepts the observability flags:
//   --metrics-out=<csv>   write a metrics snapshot when the command ends
//   --trace-out=<json>    write a Chrome/Perfetto trace (simulated time)
//   --trace-limit=<n>     trace ring-buffer capacity (default 1000000)
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fgcs/core/analyzer.hpp"
#include "fgcs/core/contention.hpp"
#include "fgcs/core/guest_study.hpp"
#include "fgcs/core/prediction_study.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/fault/fault_plan.hpp"
#include "fgcs/fleet/fleet.hpp"
#include "fgcs/obs/observer.hpp"
#include "fgcs/trace/io.hpp"
#include "fgcs/util/cli.hpp"
#include "fgcs/util/csv.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

namespace {

using Args = util::CliArgs;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  fgcs simulate  --out <path> [--machines N] [--days D] [--seed S]\n"
      "                 [--profile purdue|enterprise] [--fault-plan <file>]\n"
      "  fgcs fleet     --machines N [--days D] [--seed S] [--threads T]\n"
      "                 [--spill-dir <dir>] [--shard-machines M]\n"
      "                 [--out <path>] [--profile purdue|enterprise]\n"
      "                 [--fault-plan <file>]\n"
      "  fgcs analyze   <trace> [--start-dow 0..6] [--salvage]\n"
      "  fgcs predict   <trace> [--train-days D] [--window-hours H]\n"
      "                 [--salvage]\n"
      "  fgcs guests    [<trace>] [--machines N] [--days D] [--seed S]\n"
      "                 [--fault-plan <file>] [--job-hours H]\n"
      "                 [--checkpoint-interval MIN] [--checkpoint-cost MIN]\n"
      "                 [--migrate] [--salvage]\n"
      "  fgcs calibrate [--profile linux|solaris]\n"
      "  fgcs figures   --out <dir> [--quick]\n"
      "\ntrace format chosen by extension: .csv is textual, anything else\n"
      "is the compact binary format. `figures` writes one plottable CSV\n"
      "per paper figure/table into <dir>.\n"
      "\nfleet (sharded sweep engine):\n"
      "  --spill-dir=<dir>    stream per-shard columnar trace segments\n"
      "                       (format v2, shard-NNNN.trc2) to <dir> instead\n"
      "                       of holding the fleet trace in memory; readers\n"
      "                       (`analyze --salvage`, `predict`, ...) open\n"
      "                       segments directly via the format-v2 loader\n"
      "  --shard-machines=M   machines per shard (0 = derive automatically)\n"
      "  --threads=T          worker threads (0 = FGCS_THREADS / hardware)\n"
      "  --out=<path>         also write the merged fleet trace\n"
      "\nrobustness:\n"
      "  --fault-plan=<file>  inject faults from a declarative plan (see\n"
      "                       docs/robustness.md for the format): machine\n"
      "                       crashes, sensor dropouts, clock-skew blips,\n"
      "                       guest kills. Deterministic in (plan, seed).\n"
      "  --salvage            recover well-formed records from a damaged\n"
      "                       trace instead of failing on the first defect\n"
      "  `guests` runs the resilient guest-job lifecycle on a trace (or a\n"
      "  fresh simulation): periodic checkpointing (--checkpoint-interval,\n"
      "  --checkpoint-cost, minutes; 0 disables), restart with capped\n"
      "  exponential backoff + jitter, optional migration (--migrate).\n"
      "\nobservability (any command):\n"
      "  --metrics-out=<csv>  metrics snapshot (counters/gauges/histograms)\n"
      "  --trace-out=<json>   Chrome/Perfetto trace keyed on simulated time\n"
      "  --trace-limit=<n>    trace ring-buffer capacity (default 1000000)\n"
      "\nenvironment:\n"
      "  FGCS_THREADS=<n>     worker threads for parallel phases (testbed\n"
      "                       machines, figure sweeps); 0 runs everything\n"
      "                       inline on the calling thread. Default: one\n"
      "                       worker per hardware thread.\n");
  return 2;
}

// Installs the global observer for the duration of one CLI command when
// --metrics-out / --trace-out is given, and writes the outputs afterwards.
class ObsSession {
 public:
  explicit ObsSession(const Args& args)
      : metrics_path_(args.get("metrics-out", "")),
        trace_path_(args.get("trace-out", "")) {
    if (metrics_path_.empty() && trace_path_.empty()) return;
    obs::Observer::Options options;
    options.trace_capacity =
        static_cast<std::size_t>(args.get_int("trace-limit", 1'000'000));
    options.enable_trace = !trace_path_.empty();
    observer_ = std::make_unique<obs::Observer>(options);
    obs::set_observer(observer_.get());
  }

  ~ObsSession() { obs::set_observer(nullptr); }

  /// Writes the requested outputs; called after the command succeeds.
  void flush() {
    if (observer_ == nullptr) return;
    if (!metrics_path_.empty()) {
      std::ofstream out(metrics_path_);
      if (!out) throw IoError("cannot write " + metrics_path_);
      observer_->metrics().write_csv(out);
      std::printf("wrote metrics snapshot to %s\n", metrics_path_.c_str());
    }
    if (!trace_path_.empty()) {
      std::ofstream out(trace_path_);
      if (!out) throw IoError("cannot write " + trace_path_);
      observer_->trace().write_chrome_json(out);
      std::printf(
          "wrote %zu trace events to %s (%llu dropped by ring buffer); "
          "open in https://ui.perfetto.dev\n",
          observer_->trace().size(), trace_path_.c_str(),
          static_cast<unsigned long long>(observer_->trace().dropped()));
    }
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::unique_ptr<obs::Observer> observer_;
};

core::TestbedConfig testbed_config_from(const Args& args) {
  core::TestbedConfig config;
  config.machines = static_cast<std::uint32_t>(args.get_int("machines", 20));
  config.days = static_cast<int>(args.get_int("days", 92));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 20050815));
  const std::string profile = args.get("profile", "purdue");
  if (profile == "purdue") {
    config.profile = workload::LabProfile::purdue_lab();
  } else if (profile == "enterprise") {
    config.profile = workload::LabProfile::enterprise_desktop();
  } else {
    throw fgcs::ConfigError("unknown profile: " + profile);
  }
  if (args.has_option("fault-plan")) {
    config.faults = fault::FaultPlan::load(args.get("fault-plan", ""));
  }
  return config;
}

/// Loads a trace path, honoring --salvage (report damage, keep going).
trace::TraceSet load_trace_cli(const Args& args, const std::string& path) {
  if (!args.has_flag("salvage")) return trace::load_trace(path);
  auto report = trace::load_trace_salvage(path);
  std::printf("salvage: recovered %zu record(s), skipped %zu%s%s\n",
              report.recovered, report.skipped,
              report.truncated ? ", input truncated" : "",
              report.metadata_inferred ? ", metadata inferred" : "");
  for (const auto& d : report.diagnostics) {
    std::printf("  %s\n", d.c_str());
  }
  return std::move(report.trace);
}

int cmd_simulate(const Args& args) {
  if (!args.has_option("out")) return usage();
  const auto config = testbed_config_from(args);
  std::printf("simulating %u machines for %d days (seed %llu%s)...\n",
              config.machines, config.days,
              static_cast<unsigned long long>(config.seed),
              config.faults.empty() ? "" : ", fault plan loaded");
  const auto trace = core::run_testbed(config);
  const std::string path = args.get("out", "trace.trc");
  trace::save_trace(trace, path);
  std::printf("wrote %zu unavailability records to %s\n", trace.size(),
              path.c_str());
  return 0;
}

int cmd_fleet(const Args& args) {
  fleet::FleetConfig config;
  config.testbed = testbed_config_from(args);
  config.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  config.spill_dir = args.get("spill-dir", "");
  config.shard_machines =
      static_cast<std::uint32_t>(args.get_int("shard-machines", 0));

  std::printf("fleet: %u machines x %d days (seed %llu, %u machines/shard%s)"
              "...\n",
              config.testbed.machines, config.testbed.days,
              static_cast<unsigned long long>(config.testbed.seed),
              config.effective_shard_machines(),
              config.spill_dir.empty() ? ", in-memory" : ", spilling");
  const auto result = fleet::run_fleet(config);

  std::printf("fleet: %llu machine-days, %llu unavailability records across "
              "%zu shard(s)\n",
              static_cast<unsigned long long>(result.machine_days()),
              static_cast<unsigned long long>(result.total_records),
              result.shards.size());
  if (result.spilled) {
    std::printf("fleet: segments in %s (%s .. %s)\n", config.spill_dir.c_str(),
                result.shards.front().segment_path.c_str(),
                result.shards.back().segment_path.c_str());
  }
  if (args.has_option("out")) {
    const std::string path = args.get("out", "fleet.trc");
    trace::save_trace(result.load_trace(), path);
    std::printf("wrote merged fleet trace to %s\n", path.c_str());
  }
  return 0;
}

int cmd_analyze(const Args& args) {
  if (args.positional().empty()) return usage();
  const auto trace = load_trace_cli(args, args.positional()[0]);
  const auto dow = static_cast<trace::DayOfWeek>(args.get_int("start-dow", 0));
  const core::TraceAnalyzer analyzer(trace, trace::TraceCalendar(dow));

  std::printf("trace: %u machines, %s, %zu records\n\n", trace.machine_count(),
              util::format_duration_s(trace.horizon().as_seconds()).c_str(),
              trace.size());

  const auto t2 = analyzer.table2();
  util::TextTable causes({"Cause", "Per-machine", "Share"});
  auto range = [](const core::Table2Stats::Range& r) {
    return std::to_string(r.min) + "-" + std::to_string(r.max);
  };
  auto share = [&](double lo, double hi) {
    return util::format_percent(lo, 0) + "-" + util::format_percent(hi, 0);
  };
  causes.add("total", range(t2.total), "100%");
  causes.add("UEC: CPU (S3)", range(t2.cpu_contention),
             share(t2.cpu_pct_min, t2.cpu_pct_max));
  causes.add("UEC: memory (S4)", range(t2.mem_contention),
             share(t2.mem_pct_min, t2.mem_pct_max));
  causes.add("URR (S5)", range(t2.urr), share(t2.urr_pct_min, t2.urr_pct_max));
  std::printf("%s", causes.str().c_str());
  std::printf("reboot share of URR: %s\n\n",
              util::format_percent(t2.reboot_fraction_of_urr, 0).c_str());

  const auto iv = analyzer.intervals();
  std::printf("availability intervals: weekday n=%zu mean=%s | "
              "weekend n=%zu mean=%s\n\n",
              iv.weekday.count,
              util::format_duration_s(iv.weekday.mean_hours * 3600).c_str(),
              iv.weekend.count,
              util::format_duration_s(iv.weekend.mean_hours * 3600).c_str());

  const auto hourly = analyzer.hourly();
  util::TextTable pattern({"Hour", "Weekday mean", "Weekday range",
                           "Weekend mean", "Weekend range"});
  for (int h = 0; h < 24; ++h) {
    const auto hh = static_cast<std::size_t>(h);
    pattern.add(std::to_string(h),
                util::format_double(hourly.weekday[hh].mean, 1),
                util::format_double(hourly.weekday[hh].min, 0) + "-" +
                    util::format_double(hourly.weekday[hh].max, 0),
                util::format_double(hourly.weekend[hh].mean, 1),
                util::format_double(hourly.weekend[hh].min, 0) + "-" +
                    util::format_double(hourly.weekend[hh].max, 0));
  }
  std::printf("%s", pattern.str().c_str());
  return 0;
}

int cmd_predict(const Args& args) {
  if (args.positional().empty()) return usage();
  const auto trace = load_trace_cli(args, args.positional()[0]);
  core::PredictionStudyConfig study;
  study.train_days = static_cast<int>(args.get_int("train-days", 56));
  study.windows = {
      sim::SimDuration::hours(args.get_int("window-hours", 2))};
  const auto rows =
      core::run_prediction_study(trace, trace::TraceCalendar{}, study);

  util::TextTable table({"Predictor", "Queries", "Brier", "Accuracy", "FPR"});
  for (const auto& row : rows) {
    table.add(row.result.predictor, row.result.queries,
              util::format_double(row.result.brier, 4),
              util::format_percent(row.result.accuracy, 1),
              util::format_percent(row.result.false_positive_rate, 1));
  }
  std::printf("%s", table.str().c_str());
  return 0;
}

int cmd_guests(const Args& args) {
  auto config = testbed_config_from(args);
  core::GuestLifecycleConfig lifecycle;
  lifecycle.job_length = sim::SimDuration::hours(args.get_int("job-hours", 8));
  lifecycle.checkpoint_interval =
      sim::SimDuration::minutes(args.get_int("checkpoint-interval", 0));
  lifecycle.checkpoint_cost =
      sim::SimDuration::minutes(args.get_int("checkpoint-cost", 2));
  lifecycle.migrate_on_revocation = args.has_flag("migrate");
  lifecycle.seed = config.seed;

  core::GuestStudyResult result;
  if (!args.positional().empty()) {
    const auto trace = load_trace_cli(args, args.positional()[0]);
    config.machines = trace.machine_count();
    result = core::run_guest_study(config, trace, lifecycle);
  } else {
    std::printf("simulating %u machines for %d days (seed %llu%s)...\n",
                config.machines, config.days,
                static_cast<unsigned long long>(config.seed),
                config.faults.empty() ? "" : ", fault plan loaded");
    result = core::run_guest_study(config, lifecycle);
  }
  std::printf(
      "guest lifecycle: %s jobs of %s, checkpoint %s, migration %s\n",
      std::to_string(result.jobs.size()).c_str(),
      util::format_duration_s(lifecycle.job_length.as_seconds()).c_str(),
      lifecycle.checkpoint_interval == sim::SimDuration::zero()
          ? "off"
          : util::format_duration_s(
                lifecycle.checkpoint_interval.as_seconds())
                .c_str(),
      lifecycle.migrate_on_revocation ? "on" : "off");
  std::printf("%s", result.summary_table().c_str());
  return 0;
}

int cmd_calibrate(const Args& args) {
  core::Fig1Config sweep;
  const std::string profile = args.get("profile", "linux");
  if (profile == "linux") {
    sweep.base.scheduler = os::SchedulerParams::linux_2_4();
    sweep.base.memory = os::MemoryParams::linux_1gb();
  } else if (profile == "solaris") {
    sweep.base.scheduler = os::SchedulerParams::solaris_ts();
    sweep.base.memory = os::MemoryParams::solaris_384mb();
  } else {
    throw fgcs::ConfigError("unknown profile: " + profile);
  }
  sweep.max_group_size = 3;
  std::printf("running the offline contention sweep on '%s'...\n",
              sweep.base.scheduler.name.c_str());
  const auto result = core::run_fig1(sweep);
  std::printf("Th1 = %.2f, Th2 = %.2f\n", result.th1, result.th2);
  return 0;
}

int cmd_figures(const Args& args) {
  if (!args.has_option("out")) return usage();
  const std::filesystem::path dir = args.get("out", "figures");
  std::filesystem::create_directories(dir);
  const bool quick = args.has_flag("quick");

  auto open_csv = [&](const char* name) {
    std::ofstream out(dir / name);
    if (!out) throw IoError("cannot write " + (dir / name).string());
    return out;
  };

  // Figures 1 and 2: contention sweeps.
  {
    core::Fig1Config cfg;
    if (quick) {
      cfg.base.measure = sim::SimDuration::minutes(3);
      cfg.base.combinations = 2;
      cfg.max_group_size = 3;
    }
    std::printf("fig1 (contention sweep)...\n");
    const auto result = core::run_fig1(cfg);
    auto out = open_csv("fig1.csv");
    util::CsvWriter csv(out);
    csv.write("panel", "lh", "group_size", "reduction", "lh_measured");
    for (const auto& p : result.points) {
      csv.write(p.guest_nice == 0 ? "a" : "b", p.lh_nominal, p.group_size,
                p.reduction, p.lh_measured);
    }
    std::printf("  Th1=%.2f Th2=%.2f\n", result.th1, result.th2);
  }
  {
    std::printf("fig2 (priority sweep)...\n");
    core::ContentionConfig cfg;
    if (quick) {
      cfg.measure = sim::SimDuration::minutes(3);
      cfg.combinations = 2;
    }
    const auto points = core::run_fig2(
        cfg, {0.2, 0.4, 0.6, 0.8, 1.0}, {0, 5, 10, 15, 18, 19});
    auto out = open_csv("fig2.csv");
    util::CsvWriter csv(out);
    csv.write("lh", "guest_nice", "reduction");
    for (const auto& p : points) csv.write(p.lh_nominal, p.guest_nice, p.reduction);
  }
  {
    std::printf("fig3 (guest usage)...\n");
    core::ContentionConfig cfg;
    if (quick) {
      cfg.measure = sim::SimDuration::minutes(3);
      cfg.combinations = 2;
    }
    auto out = open_csv("fig3.csv");
    util::CsvWriter csv(out);
    csv.write("host_usage", "guest_demand", "guest_equal", "guest_nice19");
    for (const auto& p : core::run_fig3(cfg)) {
      csv.write(p.host_usage, p.guest_demand, p.guest_usage_equal,
                p.guest_usage_lowest);
    }
  }
  {
    std::printf("fig4 + table1 (Solaris mixed contention)...\n");
    core::Fig4Config cfg;
    if (quick) {
      cfg.base.measure = sim::SimDuration::minutes(3);
    }
    auto out = open_csv("fig4.csv");
    util::CsvWriter csv(out);
    csv.write("host", "guest", "guest_nice", "reduction", "thrashing");
    for (const auto& c : core::run_fig4(cfg)) {
      csv.write(c.host_workload, c.guest_app, c.guest_nice, c.reduction,
                c.thrashing);
    }
    core::ContentionConfig t1cfg = cfg.base;
    auto out1 = open_csv("table1.csv");
    util::CsvWriter csv1(out1);
    csv1.write("workload", "cpu_usage", "resident_mb", "virtual_mb");
    for (const auto& row : core::run_table1(t1cfg)) {
      csv1.write(row.name, row.cpu_usage, row.resident_mb, row.virtual_mb);
    }
  }

  // Testbed figures.
  std::printf("testbed (table2, fig6, fig7, capacity)...\n");
  core::TestbedConfig testbed;
  if (quick) {
    testbed.machines = 8;
    testbed.days = 28;
  }
  const auto trace = core::run_testbed(testbed);
  const core::TraceAnalyzer analyzer(trace);
  {
    const auto t2 = analyzer.table2();
    auto out = open_csv("table2.csv");
    util::CsvWriter csv(out);
    csv.write("category", "min", "max", "mean");
    csv.write("total", t2.total.min, t2.total.max, t2.total.mean);
    csv.write("cpu", t2.cpu_contention.min, t2.cpu_contention.max,
              t2.cpu_contention.mean);
    csv.write("memory", t2.mem_contention.min, t2.mem_contention.max,
              t2.mem_contention.mean);
    csv.write("urr", t2.urr.min, t2.urr.max, t2.urr.mean);
  }
  {
    const auto iv = analyzer.intervals();
    auto out = open_csv("fig6.csv");
    util::CsvWriter csv(out);
    csv.write("hours", "weekday_cdf", "weekend_cdf");
    for (double h = 0.0; h <= 14.0; h += 0.1) {
      csv.write(h, iv.weekday.ecdf_hours(h), iv.weekend.ecdf_hours(h));
    }
  }
  {
    const auto hourly = analyzer.hourly();
    auto out = open_csv("fig7.csv");
    util::CsvWriter csv(out);
    csv.write("hour", "day_class", "mean", "min", "max", "stddev");
    for (std::size_t h = 0; h < 24; ++h) {
      csv.write(h, "weekday", hourly.weekday[h].mean, hourly.weekday[h].min,
                hourly.weekday[h].max, hourly.weekday[h].stddev);
      csv.write(h, "weekend", hourly.weekend[h].mean, hourly.weekend[h].min,
                hourly.weekend[h].max, hourly.weekend[h].stddev);
    }
  }
  {
    const auto capacity = core::run_capacity_profile(testbed);
    auto out = open_csv("capacity.csv");
    util::CsvWriter csv(out);
    csv.write("hour", "weekday_cpu", "weekend_cpu", "weekday_free_mem",
              "weekend_free_mem", "weekday_host_load", "weekend_host_load");
    for (std::size_t h = 0; h < 24; ++h) {
      csv.write(h, capacity.weekday_cpu[h], capacity.weekend_cpu[h],
                capacity.weekday_free_mem[h], capacity.weekend_free_mem[h],
                capacity.weekday_host_load[h], capacity.weekend_host_load[h]);
    }
  }
  std::printf("wrote CSV series into %s\n", dir.string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  try {
    ObsSession obs_session(args);
    int rc = 2;
    if (args.command() == "simulate") {
      rc = cmd_simulate(args);
    } else if (args.command() == "fleet") {
      rc = cmd_fleet(args);
    } else if (args.command() == "analyze") {
      rc = cmd_analyze(args);
    } else if (args.command() == "predict") {
      rc = cmd_predict(args);
    } else if (args.command() == "guests") {
      rc = cmd_guests(args);
    } else if (args.command() == "calibrate") {
      rc = cmd_calibrate(args);
    } else if (args.command() == "figures") {
      rc = cmd_figures(args);
    } else {
      return usage();
    }
    if (rc == 0) obs_session.flush();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fgcs: %s\n", e.what());
    return 1;
  }
}

// fgcs — command-line front end for the library.
//
//   fgcs simulate  --out trace.trc [--machines N] [--days D] [--seed S]
//                  [--profile purdue|enterprise] [--fault-plan plan.txt]
//   fgcs fleet     --machines N [--days D] [--seed S] [--threads T]
//                  [--spill-dir DIR] [--shard-machines M] [--out trace]
//   fgcs analyze   <trace> [--start-dow 0..6] [--salvage]
//   fgcs predict   <trace> [--train-days D] [--window-hours H] [--salvage]
//   fgcs guests    [<trace>] [--checkpoint-interval MIN] [--migrate] ...
//   fgcs calibrate [--profile linux|solaris]
//   fgcs stats     <segment.met1> [--series NAME] [--op ...] [--q Q] ...
//   fgcs query     <spill-dir | segment.trc2...> [--pred P] [--no-pushdown]
//                  [--threads T] [--start-dow 0..6] [--window-hours H]
//   fgcs serve     [--machines N] [--days D] [--queries Q] [--mix M]
//                  [--window-hours H] [--seed S] [--out report.json]
//
// `simulate` runs the testbed (optionally under an injected fault plan)
// and writes a trace; `fleet` runs the sharded sweep engine for
// N-thousand-machine studies, spilling per-shard columnar (format v2)
// segments instead of materializing the fleet in memory; `analyze`
// reproduces the paper's Table 2 / Figure 6
// / Figure 7 statistics from any saved trace; `predict` runs the
// predictor panel; `guests` runs the resilient guest-job lifecycle
// (checkpoint/restart/backoff/migration); `calibrate` derives Th1/Th2 for
// a scheduler profile via the offline contention sweep; `stats` queries a
// sim-time-aligned FGCSMET1 metrics segment (windowed value / delta /
// rate / quantile, per-shard or per-machine-range) without materializing
// it; `query` runs the analyzer + training-scan aggregations directly on
// spilled v2 segments (zone-map pushdown, no TraceSet materialization —
// see docs/analytics.md). `--salvage` recovers what it can from damaged
// traces instead of failing.
//
// Every command also accepts the observability flags:
//   --metrics-out=<csv>   write a metrics snapshot when the command ends
//   --trace-out=<json>    write a Chrome/Perfetto trace (simulated time)
//   --trace-limit=<n>     trace ring-buffer capacity (default 1000000)
//   --metrics-ts-out=<f>  FGCSMET1 time-series segment (see `fgcs stats`)
//   --flight-out=<txt>    flight-recorder post-mortem (first fault,
//                         SIGUSR1, or end of run)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fgcs/core/analyzer.hpp"
#include "fgcs/core/contention.hpp"
#include "fgcs/core/guest_study.hpp"
#include "fgcs/core/prediction_study.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/fault/fault_plan.hpp"
#include "fgcs/fleet/fleet.hpp"
#include "fgcs/obs/flight_recorder.hpp"
#include "fgcs/obs/observer.hpp"
#include "fgcs/obs/timeseries.hpp"
#include "fgcs/query/engine.hpp"
#include "fgcs/serve/load.hpp"
#include "fgcs/trace/io.hpp"
#include "fgcs/util/cli.hpp"
#include "fgcs/util/csv.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

namespace {

using Args = util::CliArgs;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  fgcs simulate  --out <path> [--machines N] [--days D] [--seed S]\n"
      "                 [--profile purdue|enterprise] [--fault-plan <file>]\n"
      "  fgcs fleet     --machines N [--days D] [--seed S] [--threads T]\n"
      "                 [--spill-dir <dir>] [--shard-machines M]\n"
      "                 [--out <path>] [--profile purdue|enterprise]\n"
      "                 [--fault-plan <file>] [--resume] [--no-checkpoint]\n"
      "                 [--max-shard-retries N]\n"
      "  fgcs analyze   <trace> [--start-dow 0..6] [--salvage]\n"
      "  fgcs predict   <trace> [--train-days D] [--window-hours H]\n"
      "                 [--salvage]\n"
      "  fgcs guests    [<trace>] [--machines N] [--days D] [--seed S]\n"
      "                 [--fault-plan <file>] [--job-hours H]\n"
      "                 [--checkpoint-interval MIN] [--checkpoint-cost MIN]\n"
      "                 [--migrate] [--salvage]\n"
      "  fgcs calibrate [--profile linux|solaris]\n"
      "  fgcs figures   --out <dir> [--quick]\n"
      "  fgcs stats     <segment.met1> [--series NAME]\n"
      "                 [--op value|delta|rate|quantile] [--q Q]\n"
      "                 [--window-hours W | --from-hours F --to-hours T]\n"
      "                 [--shard K | --machines A-B]\n"
      "  fgcs query     <spill-dir | segment.trc2...> [--pred <predicate>]\n"
      "                 [--no-pushdown] [--threads T] [--start-dow 0..6]\n"
      "                 [--window-hours H]\n"
      "  fgcs serve     [--machines N] [--days D] [--queries Q]\n"
      "                 [--mix uniform|zipf:<skew>|sweep:<lo>-<hi>]\n"
      "                 [--window-hours H] [--publish-every N] [--seed S]\n"
      "                 [--out report.json]\n"
      "\ntrace format chosen by extension: .csv is textual, anything else\n"
      "is the compact binary format. `figures` writes one plottable CSV\n"
      "per paper figure/table into <dir>.\n"
      "\nfleet (sharded sweep engine):\n"
      "  --spill-dir=<dir>    stream per-shard columnar trace segments\n"
      "                       (format v2, shard-NNNN.trc2) to <dir> instead\n"
      "                       of holding the fleet trace in memory; readers\n"
      "                       (`analyze --salvage`, `predict`, ...) open\n"
      "                       segments directly via the format-v2 loader\n"
      "  --shard-machines=M   machines per shard (0 = derive automatically)\n"
      "  --threads=T          worker threads (0 = FGCS_THREADS / hardware)\n"
      "  --out=<path>         also write the merged fleet trace\n"
      "  --metrics-ts-out=<f> write a sim-time-binned FGCSMET1 metrics\n"
      "                       segment (fleet totals + per-shard series);\n"
      "                       query with `fgcs stats`\n"
      "  --ts-resolution-hours=<h>  bin width of that segment (default 1)\n"
      "  --progress           live progress to stderr: machines/shards\n"
      "                       done, machine-days/sec, ETA, stall watchdog\n"
      "  --stall-days=<d>     watchdog: flag a started shard once the rest\n"
      "                       of the fleet advances d machine-days without\n"
      "                       it moving (default 30)\n"
      "  --resume             validate --spill-dir's checkpoint (MANIFEST +\n"
      "                       per-shard CRCs) and skip every shard that\n"
      "                       proves complete; the merged trace and metrics\n"
      "                       are byte-identical to an uninterrupted run\n"
      "  --no-checkpoint      skip the per-shard durable checkpoint commit\n"
      "                       (state blob + MANIFEST line) in spill mode\n"
      "  --max-shard-retries=<n>  per-machine failure budget before the\n"
      "                       supervisor quarantines a machine (default 2)\n"
      "\nrobustness:\n"
      "  --fault-plan=<file>  inject faults from a declarative plan (see\n"
      "                       docs/robustness.md for the format): machine\n"
      "                       crashes, sensor dropouts, clock-skew blips,\n"
      "                       guest kills. Deterministic in (plan, seed).\n"
      "  --salvage            recover well-formed records from a damaged\n"
      "                       trace instead of failing on the first defect\n"
      "  `guests` runs the resilient guest-job lifecycle on a trace (or a\n"
      "  fresh simulation): periodic checkpointing (--checkpoint-interval,\n"
      "  --checkpoint-cost, minutes; 0 disables), restart with capped\n"
      "  exponential backoff + jitter, optional migration (--migrate).\n"
      "\nobservability (any command):\n"
      "  --metrics-out=<csv>  metrics snapshot (counters/gauges/histograms)\n"
      "  --trace-out=<json>   Chrome/Perfetto trace keyed on simulated time\n"
      "  --trace-limit=<n>    trace ring-buffer capacity (default 1000000)\n"
      "  --metrics-ts-out=<f> FGCSMET1 time-series segment: fleet bins the\n"
      "                       sweep over sim time; other commands write a\n"
      "                       final whole-registry snapshot\n"
      "  --flight-out=<txt>   flight recorder: ring of recent structured\n"
      "                       events, dumped sim-time-ordered on the first\n"
      "                       injected fault, on SIGUSR1, or at exit\n"
      "  --flight-capacity=<n> flight-recorder ring capacity (default 4096)\n"
      "\nstats (FGCSMET1 segments, e.g. fleet --metrics-ts-out):\n"
      "  no --series          segment summary: horizon, resolution, every\n"
      "                       series with its sample count and final value\n"
      "  --op value           cumulative value at the window end (default)\n"
      "  --op delta           increase across the window\n"
      "  --op rate            delta per hour\n"
      "  --op quantile --q Q  quantile from a histogram family's buckets\n"
      "                       (--series names the family, e.g.\n"
      "                       detector.episode_minutes)\n"
      "  --window-hours=W     last W hours of the horizon\n"
      "  --from-hours/--to-hours  explicit window (hours from start)\n"
      "  --shard=K            one shard's series instead of fleet totals\n"
      "  --machines=A-B       sum over shards covering machines A..B\n"
      "\nquery (streaming analytics over spilled v2 segments):\n"
      "  runs the analyze aggregations (Table 2, Figures 6/7) plus the\n"
      "  semi-Markov training scan directly on shard-NNNN.trc2 segments\n"
      "  (e.g. fleet --spill-dir output) without materializing a TraceSet;\n"
      "  per-block zone maps skip blocks the predicate cannot match\n"
      "  (see docs/analytics.md)\n"
      "  --pred=<p>           predicate: \"all\" (default) or clauses like\n"
      "                       \"machine=[0,100) cause=S5 time=[0,86400000000)\"\n"
      "  --no-pushdown        disable block pruning (brute-force full scan)\n"
      "  --threads=T          scan worker threads (0 = FGCS_THREADS / hw)\n"
      "  --window-hours=H     training-scan prediction window (default 1)\n"
      "\nserve (online availability service):\n"
      "  simulates the fleet with a live AvailabilityFeed subscribed to\n"
      "  the observer's episode events (ingest-as-you-go, the trace is\n"
      "  never rescanned), then drives the configured query load against\n"
      "  the published snapshot and reports qps + p50/p99 query latency\n"
      "  (see docs/serving.md)\n"
      "  --mix=uniform        every machine equally likely\n"
      "  --mix=zipf:<skew>    hot-machine skew (default zipf:1.1)\n"
      "  --mix=sweep:<lo>-<hi>  window swept over [lo, hi] hours\n"
      "  --publish-every=<n>  ingests per snapshot swap (default 1024)\n"
      "  --out=<json>         machine-readable report\n"
      "\nenvironment:\n"
      "  FGCS_THREADS=<n>     worker threads for parallel phases (testbed\n"
      "                       machines, figure sweeps); 0 runs everything\n"
      "                       inline on the calling thread. Default: one\n"
      "                       worker per hardware thread.\n"
      "  FGCS_PIN_THREADS=1   pin pool workers to cores (worker i -> core\n"
      "                       i+1); reduces migration jitter on dedicated\n"
      "                       multi-core hosts. Default: off.\n"
      "  FGCS_HUGE_PAGES=1    back arena chunks >= 2 MiB with huge-page\n"
      "                       hinted mappings; falls back to the heap if\n"
      "                       unavailable. Default: off.\n"
      "  FGCS_DURABILITY=<l>  fsync policy for spilled segments/checkpoints:\n"
      "                       none (no fsync), commit (fsync at seal/rename,\n"
      "                       the default), block (also fsync every sealed\n"
      "                       block — slow, max crash safety).\n");
  return 2;
}

// SIGUSR1 asks a running command for a live flight-recorder post-mortem.
// The handler only sets a flag; a watcher thread inside ObsSession does
// the actual dump (writing files from a signal handler isn't safe).
volatile std::sig_atomic_t g_flight_dump_requested = 0;
void handle_sigusr1(int) { g_flight_dump_requested = 1; }

// Installs the global observer for the duration of one CLI command when
// --metrics-out / --trace-out / --flight-out / --metrics-ts-out is
// given, and writes the outputs afterwards. `fleet` consumes
// --metrics-ts-out itself (it bins the sweep over sim time); every other
// command gets a final whole-registry snapshot segment here.
class ObsSession {
 public:
  explicit ObsSession(const Args& args)
      : metrics_path_(args.get("metrics-out", "")),
        trace_path_(args.get("trace-out", "")),
        flight_path_(args.get("flight-out", "")),
        ts_path_(args.command() == "fleet" ? ""
                                           : args.get("metrics-ts-out", "")) {
    if (metrics_path_.empty() && trace_path_.empty() &&
        flight_path_.empty() && ts_path_.empty()) {
      return;
    }
    obs::Observer::Options options;
    options.trace_capacity =
        static_cast<std::size_t>(args.get_int("trace-limit", 1'000'000));
    options.enable_trace = !trace_path_.empty();
    observer_ = std::make_unique<obs::Observer>(options);
    if (!flight_path_.empty()) {
      obs::FlightRecorder::Options fopts;
      fopts.capacity =
          static_cast<std::size_t>(args.get_int("flight-capacity", 4096));
      fopts.dump_path = flight_path_;
      flight_ = std::make_unique<obs::FlightRecorder>(fopts);
      // Attach before installing the observer: hooks read the pointer
      // unsynchronized.
      observer_->set_flight_recorder(flight_.get());
      std::signal(SIGUSR1, handle_sigusr1);
      sig_watcher_ = std::thread([this] {
        while (!stop_watcher_.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
          if (g_flight_dump_requested != 0) {
            g_flight_dump_requested = 0;
            if (flight_->dump("signal SIGUSR1")) {
              std::fprintf(stderr,
                           "fgcs: wrote flight-recorder dump to %s "
                           "(SIGUSR1)\n",
                           flight_path_.c_str());
            }
          }
        }
      });
    }
    obs::set_observer(observer_.get());
  }

  ~ObsSession() {
    obs::set_observer(nullptr);
    if (sig_watcher_.joinable()) {
      stop_watcher_.store(true, std::memory_order_relaxed);
      sig_watcher_.join();
    }
  }

  /// Writes the requested outputs; called after the command succeeds.
  void flush() {
    if (observer_ == nullptr) return;
    if (!metrics_path_.empty()) {
      std::ofstream out(metrics_path_);
      if (!out) throw IoError("cannot write " + metrics_path_);
      observer_->metrics().write_csv(out);
      std::printf("wrote metrics snapshot to %s\n", metrics_path_.c_str());
    }
    if (!trace_path_.empty()) {
      std::ofstream out(trace_path_);
      if (!out) throw IoError("cannot write " + trace_path_);
      observer_->trace().write_chrome_json(out);
      std::printf(
          "wrote %zu trace events to %s (%llu dropped by ring buffer); "
          "open in https://ui.perfetto.dev\n",
          observer_->trace().size(), trace_path_.c_str(),
          static_cast<unsigned long long>(observer_->trace().dropped()));
    }
    if (flight_ != nullptr) {
      if (flight_->dumped()) {
        // A fault (or SIGUSR1) already wrote the interesting post-mortem;
        // leave it in place.
        std::printf("flight recorder: post-mortem already dumped to %s\n",
                    flight_path_.c_str());
      } else if (flight_->dump("run-complete")) {
        std::printf(
            "wrote flight-recorder timeline (%llu events, %llu dropped) "
            "to %s\n",
            static_cast<unsigned long long>(flight_->recorded()),
            static_cast<unsigned long long>(flight_->dropped()),
            flight_path_.c_str());
      }
    }
    if (!ts_path_.empty()) {
      // Single final snapshot of every registered series, stamped at the
      // sim epoch: enough for `fgcs stats --op value` over any command's
      // end-state. The fleet command writes real binned series instead.
      obs::TimeSeriesRecorder recorder(observer_->metrics(), ts_path_,
                                       sim::SimTime::epoch(),
                                       sim::SimTime::epoch(),
                                       sim::SimDuration::hours(1));
      recorder.sample(sim::SimTime::epoch());
      recorder.finish();
      std::printf("wrote metrics time-series snapshot to %s\n",
                  ts_path_.c_str());
    }
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::string flight_path_;
  std::string ts_path_;
  std::unique_ptr<obs::Observer> observer_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::atomic<bool> stop_watcher_{false};
  std::thread sig_watcher_;
};

core::TestbedConfig testbed_config_from(const Args& args) {
  core::TestbedConfig config;
  config.machines = static_cast<std::uint32_t>(args.get_int("machines", 20));
  config.days = static_cast<int>(args.get_int("days", 92));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 20050815));
  const std::string profile = args.get("profile", "purdue");
  if (profile == "purdue") {
    config.profile = workload::LabProfile::purdue_lab();
  } else if (profile == "enterprise") {
    config.profile = workload::LabProfile::enterprise_desktop();
  } else {
    throw fgcs::ConfigError("unknown profile: " + profile);
  }
  if (args.has_option("fault-plan")) {
    config.faults = fault::FaultPlan::load(args.get("fault-plan", ""));
  }
  return config;
}

/// Loads a trace path, honoring --salvage (report damage, keep going).
trace::TraceSet load_trace_cli(const Args& args, const std::string& path) {
  if (!args.has_flag("salvage")) return trace::load_trace(path);
  auto report = trace::load_trace_salvage(path);
  std::printf("salvage: recovered %zu record(s), skipped %zu%s%s\n",
              report.recovered, report.skipped,
              report.truncated ? ", input truncated" : "",
              report.metadata_inferred ? ", metadata inferred" : "");
  for (const auto& d : report.diagnostics) {
    std::printf("  %s\n", d.c_str());
  }
  return std::move(report.trace);
}

int cmd_simulate(const Args& args) {
  if (!args.has_option("out")) return usage();
  const auto config = testbed_config_from(args);
  std::printf("simulating %u machines for %d days (seed %llu%s)...\n",
              config.machines, config.days,
              static_cast<unsigned long long>(config.seed),
              config.faults.empty() ? "" : ", fault plan loaded");
  const auto trace = core::run_testbed(config);
  const std::string path = args.get("out", "trace.trc");
  trace::save_trace(trace, path);
  std::printf("wrote %zu unavailability records to %s\n", trace.size(),
              path.c_str());
  return 0;
}

int cmd_fleet(const Args& args) {
  fleet::FleetConfig config;
  config.testbed = testbed_config_from(args);
  config.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  config.spill_dir = args.get("spill-dir", "");
  config.shard_machines =
      static_cast<std::uint32_t>(args.get_int("shard-machines", 0));
  config.metrics_path = args.get("metrics-ts-out", "");
  config.metrics_resolution =
      sim::SimDuration::hours(args.get_int("ts-resolution-hours", 1));
  config.checkpoint = !args.has_flag("no-checkpoint");
  config.resume = args.has_flag("resume");
  config.max_shard_retries =
      static_cast<int>(args.get_int("max-shard-retries", 2));

  std::printf("fleet: %u machines x %d days (seed %llu, %u machines/shard%s%s)"
              "...\n",
              config.testbed.machines, config.testbed.days,
              static_cast<unsigned long long>(config.testbed.seed),
              config.effective_shard_machines(),
              config.spill_dir.empty() ? ", in-memory" : ", spilling",
              config.resume ? ", resuming" : "");

  // Live introspection (wall-clock, so it lives here and not in the
  // deterministic fleet library): a monitor thread polls the progress
  // counters, prints throughput + ETA, and flags stalled shards.
  std::optional<fleet::FleetProgress> progress;
  std::atomic<bool> fleet_done{false};
  std::thread monitor;
  if (args.has_flag("progress")) {
    progress.emplace(config.shard_count());
    config.progress = &*progress;
    const std::uint64_t total_machines = config.testbed.machines;
    const std::uint32_t per_shard = config.effective_shard_machines();
    const double day_span = static_cast<double>(config.testbed.days);
    const double stall_md =
        static_cast<double>(args.get_int("stall-days", 30));
    monitor = std::thread([&progress, &fleet_done, total_machines, per_shard,
                           day_span, stall_md] {
      const auto t0 = std::chrono::steady_clock::now();
      const std::size_t shards = progress->shard_machines_done.size();
      std::vector<std::uint64_t> last(shards, 0);
      std::vector<double> md_at_change(shards, 0.0);
      std::vector<bool> flagged(shards, false);
      while (!fleet_done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
        const double elapsed = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
        const std::uint64_t done =
            progress->machines_done.load(std::memory_order_relaxed);
        const double md = static_cast<double>(done) * day_span;
        const double rate = elapsed > 0.0 ? md / elapsed : 0.0;
        const double remaining =
            static_cast<double>(total_machines - done) * day_span;
        std::fprintf(
            stderr,
            "fleet: %llu/%llu machines, %llu/%zu shards, "
            "%.1f machine-days/s, ETA %.0fs\n",
            static_cast<unsigned long long>(done),
            static_cast<unsigned long long>(total_machines),
            static_cast<unsigned long long>(
                progress->shards_completed.load(std::memory_order_relaxed)),
            shards, rate, rate > 0.0 ? remaining / rate : 0.0);
        // Stall watchdog: a shard that has started but not advanced while
        // the rest of the fleet covered `stall_md` machine-days.
        for (std::size_t s = 0; s < shards; ++s) {
          const std::uint64_t c =
              progress->shard_machines_done[s].load(std::memory_order_relaxed);
          const std::uint64_t expect = std::min<std::uint64_t>(
              per_shard, total_machines - s * per_shard);
          if (c != last[s]) {
            last[s] = c;
            md_at_change[s] = md;
            flagged[s] = false;
          } else if (!flagged[s] && c > 0 && c < expect &&
                     md - md_at_change[s] > stall_md) {
            flagged[s] = true;
            std::fprintf(stderr,
                         "fleet: WARNING shard %04zu stalled at %llu/%llu "
                         "machines (no progress in the last %.0f fleet "
                         "machine-days)\n",
                         s, static_cast<unsigned long long>(c),
                         static_cast<unsigned long long>(expect),
                         md - md_at_change[s]);
          }
        }
      }
    });
  }

  fleet::FleetResult result;
  try {
    result = fleet::run_fleet(config);
  } catch (...) {
    fleet_done.store(true, std::memory_order_relaxed);
    if (monitor.joinable()) monitor.join();
    throw;
  }
  fleet_done.store(true, std::memory_order_relaxed);
  if (monitor.joinable()) monitor.join();

  std::printf("fleet: %llu machine-days, %llu unavailability records across "
              "%zu shard(s)\n",
              static_cast<unsigned long long>(result.machine_days()),
              static_cast<unsigned long long>(result.total_records),
              result.shards.size());
  if (result.resumed_shards > 0 || !result.resume_dropped.empty()) {
    std::printf("fleet: resumed %zu shard(s) from checkpoint, re-ran %zu\n",
                result.resumed_shards,
                result.shards.size() - result.resumed_shards);
    for (const auto& reason : result.resume_dropped) {
      std::printf("fleet: re-ran %s\n", reason.c_str());
    }
  }
  if (result.total_retries > 0) {
    std::printf("fleet: %llu shard attempt(s) retried\n",
                static_cast<unsigned long long>(result.total_retries));
  }
  for (const auto m : result.quarantined) {
    std::printf("fleet: WARNING machine %u quarantined — its records are "
                "absent from the sweep\n",
                static_cast<unsigned>(m));
  }
  if (!result.metrics_path.empty()) {
    std::printf("wrote metrics time series to %s\n",
                result.metrics_path.c_str());
  }
  if (result.spilled) {
    std::printf("fleet: segments in %s (%s .. %s)\n", config.spill_dir.c_str(),
                result.shards.front().segment_path.c_str(),
                result.shards.back().segment_path.c_str());
  }
  if (args.has_option("out")) {
    const std::string path = args.get("out", "fleet.trc");
    trace::save_trace(result.load_trace(), path);
    std::printf("wrote merged fleet trace to %s\n", path.c_str());
  }
  return 0;
}

int cmd_analyze(const Args& args) {
  if (args.positional().empty()) return usage();
  const auto trace = load_trace_cli(args, args.positional()[0]);
  const auto dow = static_cast<trace::DayOfWeek>(args.get_int("start-dow", 0));
  const core::TraceAnalyzer analyzer(trace, trace::TraceCalendar(dow));

  std::printf("trace: %u machines, %s, %zu records\n\n", trace.machine_count(),
              util::format_duration_s(trace.horizon().as_seconds()).c_str(),
              trace.size());

  const auto t2 = analyzer.table2();
  util::TextTable causes({"Cause", "Per-machine", "Share"});
  auto range = [](const core::Table2Stats::Range& r) {
    return std::to_string(r.min) + "-" + std::to_string(r.max);
  };
  auto share = [&](double lo, double hi) {
    return util::format_percent(lo, 0) + "-" + util::format_percent(hi, 0);
  };
  causes.add("total", range(t2.total), "100%");
  causes.add("UEC: CPU (S3)", range(t2.cpu_contention),
             share(t2.cpu_pct_min, t2.cpu_pct_max));
  causes.add("UEC: memory (S4)", range(t2.mem_contention),
             share(t2.mem_pct_min, t2.mem_pct_max));
  causes.add("URR (S5)", range(t2.urr), share(t2.urr_pct_min, t2.urr_pct_max));
  std::printf("%s", causes.str().c_str());
  std::printf("reboot share of URR: %s\n\n",
              util::format_percent(t2.reboot_fraction_of_urr, 0).c_str());

  const auto iv = analyzer.intervals();
  std::printf("availability intervals: weekday n=%zu mean=%s | "
              "weekend n=%zu mean=%s\n\n",
              iv.weekday.count,
              util::format_duration_s(iv.weekday.mean_hours * 3600).c_str(),
              iv.weekend.count,
              util::format_duration_s(iv.weekend.mean_hours * 3600).c_str());

  const auto hourly = analyzer.hourly();
  util::TextTable pattern({"Hour", "Weekday mean", "Weekday range",
                           "Weekend mean", "Weekend range"});
  for (int h = 0; h < 24; ++h) {
    const auto hh = static_cast<std::size_t>(h);
    pattern.add(std::to_string(h),
                util::format_double(hourly.weekday[hh].mean, 1),
                util::format_double(hourly.weekday[hh].min, 0) + "-" +
                    util::format_double(hourly.weekday[hh].max, 0),
                util::format_double(hourly.weekend[hh].mean, 1),
                util::format_double(hourly.weekend[hh].min, 0) + "-" +
                    util::format_double(hourly.weekend[hh].max, 0));
  }
  std::printf("%s", pattern.str().c_str());
  return 0;
}

int cmd_query(const Args& args) {
  if (args.positional().empty()) return usage();

  // One positional directory → every *.trc2 inside it (fleet spill
  // layout); otherwise the positionals are explicit segment paths.
  std::vector<std::string> paths;
  if (args.positional().size() == 1 &&
      std::filesystem::is_directory(args.positional()[0])) {
    paths = query::SegmentQuery::list_segments(args.positional()[0]);
  } else {
    paths.assign(args.positional().begin(), args.positional().end());
  }

  const query::SegmentQuery segments(paths);

  query::QueryOptions options;
  options.predicate = query::Predicate::parse(args.get("pred", "all"));
  const auto dow = static_cast<trace::DayOfWeek>(args.get_int("start-dow", 0));
  options.calendar = trace::TraceCalendar(dow);
  options.training_window =
      sim::SimDuration::hours(args.get_int("window-hours", 1));
  options.disable_pruning = args.has_flag("no-pushdown");
  std::unique_ptr<util::ThreadPool> pool;
  if (args.has_option("threads")) {
    pool = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(args.get_int("threads", 0)));
    options.pool = pool.get();
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto result = segments.run(options);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("segments: %zu (%zu salvaged), %u machines, horizon %s\n",
              segments.segment_count(), segments.salvaged_count(),
              segments.machine_count(),
              util::format_duration_s(
                  (segments.horizon_end() - segments.horizon_start())
                      .as_seconds())
                  .c_str());
  std::printf("predicate: %s%s\n\n", options.predicate.str().c_str(),
              options.disable_pruning ? " (pushdown disabled)" : "");

  const auto& t2 = result.table2;
  util::TextTable causes({"Cause", "Per-machine", "Share"});
  auto range = [](const core::Table2Stats::Range& r) {
    return std::to_string(r.min) + "-" + std::to_string(r.max);
  };
  auto share = [&](double lo, double hi) {
    return util::format_percent(lo, 0) + "-" + util::format_percent(hi, 0);
  };
  causes.add("total", range(t2.total), "100%");
  causes.add("UEC: CPU (S3)", range(t2.cpu_contention),
             share(t2.cpu_pct_min, t2.cpu_pct_max));
  causes.add("UEC: memory (S4)", range(t2.mem_contention),
             share(t2.mem_pct_min, t2.mem_pct_max));
  causes.add("URR (S5)", range(t2.urr), share(t2.urr_pct_min, t2.urr_pct_max));
  std::printf("%s", causes.str().c_str());
  std::printf("reboot share of URR: %s\n\n",
              util::format_percent(t2.reboot_fraction_of_urr, 0).c_str());

  const auto& iv = result.intervals;
  std::printf("availability intervals: weekday n=%zu mean=%s | "
              "weekend n=%zu mean=%s\n",
              iv.weekday.count,
              util::format_duration_s(iv.weekday.mean_hours * 3600).c_str(),
              iv.weekend.count,
              util::format_duration_s(iv.weekend.mean_hours * 3600).c_str());
  std::printf("hourly relative deviation: weekday=%s weekend=%s\n\n",
              util::format_double(result.relative_deviation_weekday, 3).c_str(),
              util::format_double(result.relative_deviation_weekend, 3).c_str());

  const auto& tr = result.training;
  const double m = tr.machines ? static_cast<double>(tr.machines) : 1.0;
  std::printf("training scan: %llu machines (%llu with history, %llu gap "
              "samples)\n",
              static_cast<unsigned long long>(tr.machines),
              static_cast<unsigned long long>(tr.machines_with_history),
              static_cast<unsigned long long>(tr.gap_samples));
  std::printf("  mean availability=%s mean occurrences=%s (window %s)\n\n",
              util::format_double(tr.availability_sum / m, 4).c_str(),
              util::format_double(tr.occurrences_sum / m, 4).c_str(),
              util::format_duration_s(options.training_window.as_seconds())
                  .c_str());

  const auto& st = result.stats;
  std::printf("scan: blocks %zu total = %zu scanned + %zu skipped "
              "(%zu unindexed)\n",
              st.blocks_total, st.blocks_scanned, st.blocks_skipped,
              st.blocks_unindexed);
  const double rate =
      wall_s > 0.0 ? static_cast<double>(st.records_scanned) / wall_s : 0.0;
  std::printf("      records %llu scanned, %llu matched in %s "
              "(%.0f records/s)\n",
              static_cast<unsigned long long>(st.records_scanned),
              static_cast<unsigned long long>(st.records_matched),
              util::format_duration_s(wall_s).c_str(), rate);
  return 0;
}

int cmd_predict(const Args& args) {
  if (args.positional().empty()) return usage();
  const auto trace = load_trace_cli(args, args.positional()[0]);
  core::PredictionStudyConfig study;
  study.train_days = static_cast<int>(args.get_int("train-days", 56));
  study.windows = {
      sim::SimDuration::hours(args.get_int("window-hours", 2))};
  const auto rows =
      core::run_prediction_study(trace, trace::TraceCalendar{}, study);

  util::TextTable table({"Predictor", "Queries", "Brier", "Accuracy", "FPR"});
  for (const auto& row : rows) {
    table.add(row.result.predictor, row.result.queries,
              util::format_double(row.result.brier, 4),
              util::format_percent(row.result.accuracy, 1),
              util::format_percent(row.result.false_positive_rate, 1));
  }
  std::printf("%s", table.str().c_str());
  return 0;
}

int cmd_guests(const Args& args) {
  auto config = testbed_config_from(args);
  core::GuestLifecycleConfig lifecycle;
  lifecycle.job_length = sim::SimDuration::hours(args.get_int("job-hours", 8));
  lifecycle.checkpoint_interval =
      sim::SimDuration::minutes(args.get_int("checkpoint-interval", 0));
  lifecycle.checkpoint_cost =
      sim::SimDuration::minutes(args.get_int("checkpoint-cost", 2));
  lifecycle.migrate_on_revocation = args.has_flag("migrate");
  lifecycle.seed = config.seed;

  core::GuestStudyResult result;
  if (!args.positional().empty()) {
    const auto trace = load_trace_cli(args, args.positional()[0]);
    config.machines = trace.machine_count();
    result = core::run_guest_study(config, trace, lifecycle);
  } else {
    std::printf("simulating %u machines for %d days (seed %llu%s)...\n",
                config.machines, config.days,
                static_cast<unsigned long long>(config.seed),
                config.faults.empty() ? "" : ", fault plan loaded");
    result = core::run_guest_study(config, lifecycle);
  }
  std::printf(
      "guest lifecycle: %s jobs of %s, checkpoint %s, migration %s\n",
      std::to_string(result.jobs.size()).c_str(),
      util::format_duration_s(lifecycle.job_length.as_seconds()).c_str(),
      lifecycle.checkpoint_interval == sim::SimDuration::zero()
          ? "off"
          : util::format_duration_s(
                lifecycle.checkpoint_interval.as_seconds())
                .c_str(),
      lifecycle.migrate_on_revocation ? "on" : "off");
  std::printf("%s", result.summary_table().c_str());
  return 0;
}

int cmd_calibrate(const Args& args) {
  core::Fig1Config sweep;
  const std::string profile = args.get("profile", "linux");
  if (profile == "linux") {
    sweep.base.scheduler = os::SchedulerParams::linux_2_4();
    sweep.base.memory = os::MemoryParams::linux_1gb();
  } else if (profile == "solaris") {
    sweep.base.scheduler = os::SchedulerParams::solaris_ts();
    sweep.base.memory = os::MemoryParams::solaris_384mb();
  } else {
    throw fgcs::ConfigError("unknown profile: " + profile);
  }
  sweep.max_group_size = 3;
  std::printf("running the offline contention sweep on '%s'...\n",
              sweep.base.scheduler.name.c_str());
  const auto result = core::run_fig1(sweep);
  std::printf("Th1 = %.2f, Th2 = %.2f\n", result.th1, result.th2);
  return 0;
}

// -- fgcs stats --------------------------------------------------------------

// A series string split into base name + sorted labels, so queries can
// inject a {shard=NNNN} label into any series the segment spells with
// other labels (label order is canonical: sorted by key).
struct SeriesName {
  std::string base;
  std::map<std::string, std::string> labels;
};

SeriesName parse_series_name(const std::string& s) {
  SeriesName out;
  const auto brace = s.find('{');
  if (brace == std::string::npos || s.back() != '}') {
    out.base = s;
    return out;
  }
  out.base = s.substr(0, brace);
  const std::string body = s.substr(brace + 1, s.size() - brace - 2);
  std::size_t pos = 0;
  while (pos <= body.size()) {
    auto comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::string kv = body.substr(pos, comma - pos);
    const auto eq = kv.find('=');
    if (eq != std::string::npos) {
      out.labels[kv.substr(0, eq)] = kv.substr(eq + 1);
    }
    pos = comma + 1;
  }
  return out;
}

std::string render_series_name(const SeriesName& n) {
  std::string out = n.base;
  if (n.labels.empty()) return out;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : n.labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += '=';
    out += v;
  }
  out += '}';
  return out;
}

/// Step-function value of a cumulative series at `t` (last sample <= t;
/// 0 before the first sample). Visits only blocks that can match.
double value_at(const obs::MetricsView& view, std::uint32_t series,
                sim::SimTime t) {
  double value = 0.0;
  view.for_each_of(series, sim::SimTime::from_micros(INT64_MIN), t,
                   [&](const obs::MetricPoint& p) { value = p.value; });
  return value;
}

double delta_over(const obs::MetricsView& view, std::uint32_t series,
                  sim::SimTime t0, sim::SimTime t1) {
  const sim::SimTime before =
      sim::SimTime::from_micros(t0.as_micros() - 1);
  return value_at(view, series, t1) - value_at(view, series, before);
}

/// The shard labels whose machine ranges intersect [lo, hi], read from
/// the fleet.shard_first_machine / fleet.shard_machines meta gauges the
/// fleet sweep writes into the segment.
std::vector<std::string> shards_for_machines(const obs::MetricsView& view,
                                             std::uint32_t lo,
                                             std::uint32_t hi) {
  constexpr std::string_view kPrefix = "fleet.shard_first_machine{shard=";
  std::vector<std::string> out;
  for (const auto& info : view.series()) {
    if (info.name.rfind(kPrefix, 0) != 0) continue;
    std::string label = info.name.substr(kPrefix.size());
    label.pop_back();  // trailing '}'
    const auto first_id = view.find_series(info.name);
    const auto count_id =
        view.find_series("fleet.shard_machines{shard=" + label + "}");
    if (!first_id || !count_id) continue;
    const auto first = static_cast<std::uint32_t>(
        value_at(view, *first_id, view.horizon_end()));
    const auto count = static_cast<std::uint32_t>(
        value_at(view, *count_id, view.horizon_end()));
    if (count == 0) continue;
    if (first <= hi && lo <= first + count - 1) out.push_back(label);
  }
  return out;
}

/// Quantile of the histogram family `family` over [t0, t1]: per-bucket
/// deltas are summed across the selected shard labels ("" = fleet
/// totals) and fed to the shared bucket-interpolation.
double quantile_over(const obs::MetricsView& view, const std::string& family,
                     const std::vector<std::string>& shard_labels,
                     sim::SimTime t0, sim::SimTime t1, double q) {
  const SeriesName fam = parse_series_name(family);
  std::map<double, double> by_bound;
  double overflow = 0.0;
  bool any = false;
  for (const auto& info : view.series()) {
    if (info.kind != obs::SeriesKind::kHistBucket) continue;
    SeriesName n = parse_series_name(info.name);
    if (n.base != fam.base + ".bucket") continue;
    const auto le = n.labels.find("le");
    if (le == n.labels.end()) continue;
    const std::string bound = le->second;
    n.labels.erase("le");
    std::string shard;
    if (auto it = n.labels.find("shard"); it != n.labels.end()) {
      shard = it->second;
      n.labels.erase(it);
    }
    if (std::find(shard_labels.begin(), shard_labels.end(), shard) ==
        shard_labels.end()) {
      continue;
    }
    if (n.labels != fam.labels) continue;
    const auto id = view.find_series(info.name);
    if (!id) continue;
    const double d = delta_over(view, *id, t0, t1);
    any = true;
    if (bound == "+inf") {
      overflow += d;
    } else {
      by_bound[std::strtod(bound.c_str(), nullptr)] += d;
    }
  }
  fgcs::require(any, "no bucket series for histogram family: " + family);
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  for (const auto& [b, c] : by_bound) {
    bounds.push_back(b);
    counts.push_back(static_cast<std::uint64_t>(std::llround(c)));
  }
  counts.push_back(static_cast<std::uint64_t>(std::llround(overflow)));
  return obs::quantile_from_buckets(bounds, counts, q);
}

int cmd_stats(const Args& args) {
  if (args.positional().empty()) return usage();
  const std::string path = args.positional()[0];
  fgcs::require(obs::is_metrics_v1(path),
                path + " is not an FGCSMET1 metrics segment");
  const obs::MetricsView view(path);

  // The query window, in hours from the horizon start.
  sim::SimTime t0 = view.horizon_start();
  sim::SimTime t1 = view.horizon_end();
  if (args.has_option("window-hours")) {
    t0 = t1 - sim::SimDuration::hours(args.get_int("window-hours", 0));
    if (t0 < view.horizon_start()) t0 = view.horizon_start();
  }
  if (args.has_option("from-hours")) {
    t0 = view.horizon_start() +
         sim::SimDuration::hours(args.get_int("from-hours", 0));
  }
  if (args.has_option("to-hours")) {
    t1 = view.horizon_start() +
         sim::SimDuration::hours(args.get_int("to-hours", 0));
  }
  fgcs::require(t1 >= t0, "stats window is empty (to < from)");
  const double from_h =
      static_cast<double>(t0.as_micros() - view.horizon_start().as_micros()) /
      3.6e9;
  const double to_h =
      static_cast<double>(t1.as_micros() - view.horizon_start().as_micros()) /
      3.6e9;

  if (!args.has_option("series")) {
    // Segment summary: one streaming pass, nothing materialized.
    const double horizon_h =
        static_cast<double>(view.horizon_end().as_micros() -
                            view.horizon_start().as_micros()) /
        3.6e9;
    std::printf("segment: %s\n", path.c_str());
    std::printf("horizon: %.6g h, resolution %.6g h, %llu samples in %zu "
                "block(s), %zu series\n",
                horizon_h,
                static_cast<double>(view.resolution().as_micros()) / 3.6e9,
                static_cast<unsigned long long>(view.size()),
                view.block_count(), view.series().size());
    std::vector<std::uint64_t> samples(view.series().size(), 0);
    std::vector<double> last(view.series().size(), 0.0);
    view.for_each([&](const obs::MetricPoint& p) {
      ++samples[p.series];
      last[p.series] = p.value;
    });
    util::TextTable table({"Series", "Kind", "Samples", "Last"});
    for (std::size_t i = 0; i < view.series().size(); ++i) {
      const auto& info = view.series()[i];
      char value[32];
      std::snprintf(value, sizeof value, "%.6g", last[i]);
      table.add(info.name, std::string(series_kind_name(info.kind)),
                std::to_string(samples[i]), value);
    }
    std::printf("%s", table.str().c_str());
    return 0;
  }

  const std::string name = args.get("series", "");
  const std::string op = args.get("op", "value");

  // Shard selection: fleet totals by default, one shard with --shard,
  // every overlapping shard with --machines A-B.
  std::vector<std::string> shard_labels{""};
  if (args.has_option("shard")) {
    char label[16];
    std::snprintf(label, sizeof label, "%04lld",
                  static_cast<long long>(args.get_int("shard", 0)));
    shard_labels = {label};
  } else if (args.has_option("machines")) {
    const std::string range = args.get("machines", "");
    const auto dash = range.find('-');
    fgcs::require(dash != std::string::npos && dash > 0,
                  "--machines wants A-B (e.g. 0-127)");
    const auto lo =
        static_cast<std::uint32_t>(std::strtoul(range.c_str(), nullptr, 10));
    const auto hi = static_cast<std::uint32_t>(
        std::strtoul(range.c_str() + dash + 1, nullptr, 10));
    fgcs::require(lo <= hi, "--machines wants A <= B");
    shard_labels = shards_for_machines(view, lo, hi);
    fgcs::require(!shard_labels.empty(),
                  "no shards in the segment cover machines " + range);
  }

  double result = 0.0;
  if (op == "quantile") {
    const double q = std::strtod(args.get("q", "0.5").c_str(), nullptr);
    fgcs::require(q >= 0.0 && q <= 1.0, "--q must be in [0, 1]");
    result = quantile_over(view, name, shard_labels, t0, t1, q);
  } else {
    fgcs::require(op == "value" || op == "delta" || op == "rate",
                  "unknown --op: " + op + " (value|delta|rate|quantile)");
    for (const auto& shard : shard_labels) {
      SeriesName n = parse_series_name(name);
      if (!shard.empty()) n.labels["shard"] = shard;
      const std::string full = render_series_name(n);
      const auto id = view.find_series(full);
      fgcs::require(id.has_value(), "no such series in segment: " + full);
      result += op == "value" ? value_at(view, *id, t1)
                              : delta_over(view, *id, t0, t1);
    }
    if (op == "rate") {
      const double hours =
          static_cast<double>(t1.as_micros() - t0.as_micros()) / 3.6e9;
      fgcs::require(hours > 0.0, "rate needs a non-empty window");
      result /= hours;
    }
  }
  std::printf("%s %s [%.6gh, %.6gh] = %.6g\n", name.c_str(), op.c_str(),
              from_h, to_h, result);
  return 0;
}

// `serve` — the online availability service: the testbed runs with a
// live AvailabilityFeed subscribed to the observer's episode events, so
// predictor state is folded in as each episode closes (the trace is
// never rescanned); then the configured query load runs against the
// published snapshot. Wall-clock timing is deliberate here — tools/ is
// outside the determinism lint, and throughput is the point.
int cmd_serve(const Args& args) {
  serve::LoadSpec spec;
  spec.machines = static_cast<std::uint32_t>(args.get_int("machines", 2000));
  const int days = static_cast<int>(args.get_int("days", 28));
  spec.queries = static_cast<std::uint64_t>(
      args.get_int("queries", 1'000'000));
  spec.mix = serve::MixSpec::parse(args.get("mix", "zipf:1.1"));
  spec.horizon_hours =
      static_cast<double>(args.get_int("window-hours", 4));
  spec.at_hours = 24.0 * days + 1.0;  // strictly past every episode
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 20060806));
  spec.validate();
  fgcs::require(days >= 1, "serve: --days must be >= 1");

  serve::FeedConfig fc;
  fc.machines = spec.machines;
  fc.horizon_start = sim::SimTime::epoch();
  fc.publish_every =
      static_cast<std::uint64_t>(args.get_int("publish-every", 1024));
  serve::AvailabilityFeed feed(fc);

  // Subscribe the feed to episode events. ObsSession may already have
  // installed an observer (obs flags); otherwise install a local one for
  // the duration of the run. Either way the sink is detached before the
  // feed goes out of scope.
  std::unique_ptr<obs::Observer> local;
  obs::Observer* observer = obs::observer();
  std::optional<obs::ScopedObserver> guard;
  if (observer == nullptr) {
    local = std::make_unique<obs::Observer>();
    observer = local.get();
    observer->set_event_sink(&feed);  // attach before install
    guard.emplace(observer);
  } else {
    observer->set_event_sink(&feed);
  }
  struct SinkDetach {
    obs::Observer* obs;
    ~SinkDetach() { obs->set_event_sink(nullptr); }
  } detach{observer};

  core::TestbedConfig tb;
  tb.machines = spec.machines;
  tb.days = days;
  tb.seed = spec.seed;
  std::printf("serve: ingesting %u machines x %d days live...\n",
              spec.machines, days);
  const auto ingest_t0 = std::chrono::steady_clock::now();
  const auto trace = core::run_testbed(tb);
  feed.publish();
  const double ingest_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ingest_t0)
          .count();
  const std::uint64_t ingested = feed.events_ingested();
  fgcs::require(ingested == trace.size(),
                "serve: event seam dropped episodes");
  std::printf(
      "serve: ingested %llu episodes in %.2fs (%.0f events/s), "
      "%llu snapshot swaps\n",
      static_cast<unsigned long long>(ingested), ingest_s,
      ingest_s > 0 ? static_cast<double>(ingested) / ingest_s : 0.0,
      static_cast<unsigned long long>(feed.snapshots_published()));

  const serve::QueryEngine engine(feed);
  const serve::LoadGenerator gen(spec);

  // Latency pass: time a bounded sample of point queries individually.
  const std::uint64_t sample =
      std::min<std::uint64_t>(spec.queries, 100'000);
  std::vector<double> lat_us;
  lat_us.reserve(static_cast<std::size_t>(sample));
  {
    const auto snap = engine.pin();
    for (std::uint64_t i = 0; i < sample; ++i) {
      const serve::ServeQuery q = gen.query(i);
      const auto t0 = std::chrono::steady_clock::now();
      volatile double p = engine.query(*snap, q).p_available;
      (void)p;
      lat_us.push_back(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
    }
  }
  std::sort(lat_us.begin(), lat_us.end());
  const double p50 = lat_us[lat_us.size() / 2];
  const double p99 = lat_us[lat_us.size() * 99 / 100];

  // Throughput pass: the full load through the batched path.
  const auto load_t0 = std::chrono::steady_clock::now();
  const serve::LoadStats stats = serve::run_load(engine, gen, 0,
                                                 spec.queries);
  const double load_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    load_t0)
          .count();
  const double qps =
      load_s > 0 ? static_cast<double>(stats.queries) / load_s : 0.0;
  std::printf(
      "serve: %llu queries (%s) in %.2fs -> %.0f queries/s, "
      "latency p50 %.3fus p99 %.3fus, mean p_available %.4f\n",
      static_cast<unsigned long long>(stats.queries), spec.mix.str().c_str(),
      load_s, qps, p50, p99,
      stats.prob_sum / static_cast<double>(stats.queries));

  if (args.has_option("out")) {
    const std::string path = args.get("out", "");
    std::ofstream out(path);
    if (!out) throw IoError("cannot write " + path);
    out << "{\n"
        << "  \"machines\": " << spec.machines << ",\n"
        << "  \"days\": " << days << ",\n"
        << "  \"ingest_events\": " << ingested << ",\n"
        << "  \"ingest_events_per_sec\": "
        << (ingest_s > 0 ? static_cast<double>(ingested) / ingest_s : 0.0)
        << ",\n"
        << "  \"snapshot_swaps\": " << feed.snapshots_published() << ",\n"
        << "  \"mix\": \"" << spec.mix.str() << "\",\n"
        << "  \"queries\": " << stats.queries << ",\n"
        << "  \"queries_per_sec\": " << qps << ",\n"
        << "  \"latency_p50_us\": " << p50 << ",\n"
        << "  \"latency_p99_us\": " << p99 << ",\n"
        << "  \"prob_checksum\": " << stats.prob_sum << "\n"
        << "}\n";
    std::printf("wrote serve report to %s\n", path.c_str());
  }
  return 0;
}

int cmd_figures(const Args& args) {
  if (!args.has_option("out")) return usage();
  const std::filesystem::path dir = args.get("out", "figures");
  std::filesystem::create_directories(dir);
  const bool quick = args.has_flag("quick");

  auto open_csv = [&](const char* name) {
    std::ofstream out(dir / name);
    if (!out) throw IoError("cannot write " + (dir / name).string());
    return out;
  };

  // Figures 1 and 2: contention sweeps.
  {
    core::Fig1Config cfg;
    if (quick) {
      cfg.base.measure = sim::SimDuration::minutes(3);
      cfg.base.combinations = 2;
      cfg.max_group_size = 3;
    }
    std::printf("fig1 (contention sweep)...\n");
    const auto result = core::run_fig1(cfg);
    auto out = open_csv("fig1.csv");
    util::CsvWriter csv(out);
    csv.write("panel", "lh", "group_size", "reduction", "lh_measured");
    for (const auto& p : result.points) {
      csv.write(p.guest_nice == 0 ? "a" : "b", p.lh_nominal, p.group_size,
                p.reduction, p.lh_measured);
    }
    std::printf("  Th1=%.2f Th2=%.2f\n", result.th1, result.th2);
  }
  {
    std::printf("fig2 (priority sweep)...\n");
    core::ContentionConfig cfg;
    if (quick) {
      cfg.measure = sim::SimDuration::minutes(3);
      cfg.combinations = 2;
    }
    const auto points = core::run_fig2(
        cfg, {0.2, 0.4, 0.6, 0.8, 1.0}, {0, 5, 10, 15, 18, 19});
    auto out = open_csv("fig2.csv");
    util::CsvWriter csv(out);
    csv.write("lh", "guest_nice", "reduction");
    for (const auto& p : points) csv.write(p.lh_nominal, p.guest_nice, p.reduction);
  }
  {
    std::printf("fig3 (guest usage)...\n");
    core::ContentionConfig cfg;
    if (quick) {
      cfg.measure = sim::SimDuration::minutes(3);
      cfg.combinations = 2;
    }
    auto out = open_csv("fig3.csv");
    util::CsvWriter csv(out);
    csv.write("host_usage", "guest_demand", "guest_equal", "guest_nice19");
    for (const auto& p : core::run_fig3(cfg)) {
      csv.write(p.host_usage, p.guest_demand, p.guest_usage_equal,
                p.guest_usage_lowest);
    }
  }
  {
    std::printf("fig4 + table1 (Solaris mixed contention)...\n");
    core::Fig4Config cfg;
    if (quick) {
      cfg.base.measure = sim::SimDuration::minutes(3);
    }
    auto out = open_csv("fig4.csv");
    util::CsvWriter csv(out);
    csv.write("host", "guest", "guest_nice", "reduction", "thrashing");
    for (const auto& c : core::run_fig4(cfg)) {
      csv.write(c.host_workload, c.guest_app, c.guest_nice, c.reduction,
                c.thrashing);
    }
    core::ContentionConfig t1cfg = cfg.base;
    auto out1 = open_csv("table1.csv");
    util::CsvWriter csv1(out1);
    csv1.write("workload", "cpu_usage", "resident_mb", "virtual_mb");
    for (const auto& row : core::run_table1(t1cfg)) {
      csv1.write(row.name, row.cpu_usage, row.resident_mb, row.virtual_mb);
    }
  }

  // Testbed figures.
  std::printf("testbed (table2, fig6, fig7, capacity)...\n");
  core::TestbedConfig testbed;
  if (quick) {
    testbed.machines = 8;
    testbed.days = 28;
  }
  const auto trace = core::run_testbed(testbed);
  const core::TraceAnalyzer analyzer(trace);
  {
    const auto t2 = analyzer.table2();
    auto out = open_csv("table2.csv");
    util::CsvWriter csv(out);
    csv.write("category", "min", "max", "mean");
    csv.write("total", t2.total.min, t2.total.max, t2.total.mean);
    csv.write("cpu", t2.cpu_contention.min, t2.cpu_contention.max,
              t2.cpu_contention.mean);
    csv.write("memory", t2.mem_contention.min, t2.mem_contention.max,
              t2.mem_contention.mean);
    csv.write("urr", t2.urr.min, t2.urr.max, t2.urr.mean);
  }
  {
    const auto iv = analyzer.intervals();
    auto out = open_csv("fig6.csv");
    util::CsvWriter csv(out);
    csv.write("hours", "weekday_cdf", "weekend_cdf");
    for (double h = 0.0; h <= 14.0; h += 0.1) {
      csv.write(h, iv.weekday.ecdf_hours(h), iv.weekend.ecdf_hours(h));
    }
  }
  {
    const auto hourly = analyzer.hourly();
    auto out = open_csv("fig7.csv");
    util::CsvWriter csv(out);
    csv.write("hour", "day_class", "mean", "min", "max", "stddev");
    for (std::size_t h = 0; h < 24; ++h) {
      csv.write(h, "weekday", hourly.weekday[h].mean, hourly.weekday[h].min,
                hourly.weekday[h].max, hourly.weekday[h].stddev);
      csv.write(h, "weekend", hourly.weekend[h].mean, hourly.weekend[h].min,
                hourly.weekend[h].max, hourly.weekend[h].stddev);
    }
  }
  {
    const auto capacity = core::run_capacity_profile(testbed);
    auto out = open_csv("capacity.csv");
    util::CsvWriter csv(out);
    csv.write("hour", "weekday_cpu", "weekend_cpu", "weekday_free_mem",
              "weekend_free_mem", "weekday_host_load", "weekend_host_load");
    for (std::size_t h = 0; h < 24; ++h) {
      csv.write(h, capacity.weekday_cpu[h], capacity.weekend_cpu[h],
                capacity.weekday_free_mem[h], capacity.weekend_free_mem[h],
                capacity.weekday_host_load[h], capacity.weekend_host_load[h]);
    }
  }
  std::printf("wrote CSV series into %s\n", dir.string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  try {
    ObsSession obs_session(args);
    int rc = 2;
    if (args.command() == "simulate") {
      rc = cmd_simulate(args);
    } else if (args.command() == "fleet") {
      rc = cmd_fleet(args);
    } else if (args.command() == "analyze") {
      rc = cmd_analyze(args);
    } else if (args.command() == "predict") {
      rc = cmd_predict(args);
    } else if (args.command() == "guests") {
      rc = cmd_guests(args);
    } else if (args.command() == "calibrate") {
      rc = cmd_calibrate(args);
    } else if (args.command() == "query") {
      rc = cmd_query(args);
    } else if (args.command() == "stats") {
      rc = cmd_stats(args);
    } else if (args.command() == "figures") {
      rc = cmd_figures(args);
    } else if (args.command() == "serve") {
      rc = cmd_serve(args);
    } else {
      return usage();
    }
    if (rc == 0) obs_session.flush();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fgcs: %s\n", e.what());
    return 1;
  }
}

// Crash-injection harness for the fleet checkpoint/resume path.
//
//   fgcs_crashtest [--points N] [--machines M] [--days D] [--seed S]
//                  [--dir BASE]
//
// Protocol, per kill point:
//
//   1. The parent runs one clean, checkpointed, metrics-collecting sweep
//      into BASE/ref — the byte-level ground truth.
//   2. It forks a child that arms exactly one FGCS_CRASH_AFTER_* knob
//      (point and crossing count drawn from a seeded SplitMix64 stream —
//      no wall clock, so a failing point number reproduces exactly) and
//      runs the same sweep into a fresh directory. The knob SIGKILLs the
//      child mid-block, between a segment seal and its manifest record,
//      or right after a manifest rename; a count past the sweep's total
//      crossings lets the child finish clean, which is also a valid
//      outcome (resume then validates a complete checkpoint).
//   3. The parent reaps the child (anything but SIGKILL or exit 0 fails
//      the harness), resumes the sweep in-process with the knobs unset,
//      and byte-compares every shard segment, the metrics segment, and
//      the MANIFEST against BASE/ref.
//
// Any divergence — a torn block the salvage path missed, a resumed shard
// whose restored counters drift, a manifest that lies — fails the run
// with a per-file diagnosis. Exit 0 means every kill point recovered to
// a bit-identical sweep.
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <string>
#include <vector>

#include "fgcs/fleet/fleet.hpp"
#include "fgcs/util/cli.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/io.hpp"

namespace {

using fgcs::util::CliArgs;

constexpr const char* kKnobs[] = {
    "FGCS_CRASH_AFTER_BLOCK_WRITES",
    "FGCS_CRASH_AFTER_SHARD_COMMITS",
    "FGCS_CRASH_AFTER_MANIFEST_WRITES",
};
constexpr const char* kKnobShort[] = {"block-write", "shard-commit",
                                      "manifest-write"};

std::uint64_t splitmix(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::string join(const std::string& dir, const std::string& name) {
  return dir + "/" + name;
}

void ensure_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return;
  std::fprintf(stderr, "crashtest: cannot create %s: %s\n", dir.c_str(),
               std::strerror(errno));
  std::exit(2);
}

/// Removes `dir`'s regular files and the directory itself (the harness
/// only ever creates flat directories).
void remove_flat_dir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    ::unlink(join(dir, name).c_str());
  }
  ::closedir(d);
  ::rmdir(dir.c_str());
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

fgcs::fleet::FleetConfig sweep_config(const CliArgs& args,
                                      const std::string& dir) {
  fgcs::fleet::FleetConfig config;
  config.testbed.machines =
      static_cast<std::uint32_t>(args.get_int("machines", 24));
  config.testbed.days = static_cast<int>(args.get_int("days", 5));
  config.testbed.seed =
      static_cast<std::uint64_t>(args.get_int("seed", 20050815));
  config.spill_dir = dir;
  config.metrics_path = join(dir, "metrics.met1");
  config.checkpoint = true;
  return config;
}

/// Byte-compares one file between the crash directory and the reference.
bool compare_file(const std::string& crash_dir, const std::string& ref_dir,
                  const std::string& name, int point) {
  std::string got;
  std::string want;
  if (!read_file(join(ref_dir, name), want)) {
    std::fprintf(stderr, "crashtest: point %d: reference %s unreadable\n",
                 point, name.c_str());
    return false;
  }
  if (!read_file(join(crash_dir, name), got)) {
    std::fprintf(stderr, "crashtest: point %d: %s missing after resume\n",
                 point, name.c_str());
    return false;
  }
  if (got != want) {
    std::fprintf(stderr,
                 "crashtest: point %d: %s diverges from the reference "
                 "(%zu vs %zu bytes)\n",
                 point, name.c_str(), got.size(), want.size());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  const int points = static_cast<int>(args.get_int("points", 20));
  const std::string base = args.get("dir", "fgcs-crashtest.tmp");
  std::uint64_t rng =
      static_cast<std::uint64_t>(args.get_int("seed", 20050815)) ^
      0xC7A5B7E57ULL;

  // The knobs must be unarmed in this process: the reference sweep and
  // every resume run here.
  for (const char* knob : kKnobs) ::unsetenv(knob);

  ensure_dir(base);
  const std::string ref_dir = join(base, "ref");
  remove_flat_dir(ref_dir);
  ensure_dir(ref_dir);

  const fgcs::fleet::FleetConfig ref_config = sweep_config(args, ref_dir);
  const std::size_t shard_count = ref_config.shard_count();
  std::printf("crashtest: reference sweep (%u machines x %d days, %zu "
              "shards, durability=%s)\n",
              ref_config.testbed.machines, ref_config.testbed.days,
              shard_count,
              fgcs::util::durability_name(fgcs::util::durability_level()));
  const auto ref = fgcs::fleet::run_fleet(ref_config);

  std::vector<std::string> names;
  for (std::size_t s = 0; s < shard_count; ++s) {
    char name[32];
    std::snprintf(name, sizeof name, "shard-%04zu.trc2", s);
    names.emplace_back(name);
  }
  names.emplace_back("metrics.met1");
  names.emplace_back("MANIFEST");

  int failures = 0;
  for (int point = 0; point < points; ++point) {
    const int knob = static_cast<int>(splitmix(rng) % 3);
    // Counts reach past the sweep's crossing totals on purpose: the tail
    // exercises "armed but never fired" (clean child, complete
    // checkpoint, no-op resume).
    const int count =
        1 + static_cast<int>(splitmix(rng) %
                             (knob == 0 ? shard_count + 8 : shard_count + 2));
    const std::string crash_dir = join(base, "pt-" + std::to_string(point));
    remove_flat_dir(crash_dir);
    ensure_dir(crash_dir);

    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "crashtest: fork failed: %s\n",
                   std::strerror(errno));
      return 2;
    }
    if (pid == 0) {
      // Child: arm exactly one knob, zero the crossing counters inherited
      // from the parent's reference sweep, run until the kill (or clean).
      char value[16];
      std::snprintf(value, sizeof value, "%d", count);
      ::setenv(kKnobs[knob], value, 1);
      fgcs::util::reset_crashpoints();
      try {
        fgcs::fleet::run_fleet(sweep_config(args, crash_dir));
      } catch (...) {
        ::_exit(3);
      }
      ::_exit(0);
    }

    int status = 0;
    ::waitpid(pid, &status, 0);
    const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!killed && !clean) {
      std::fprintf(stderr,
                   "crashtest: point %d: child neither SIGKILLed nor clean "
                   "(status 0x%x)\n",
                   point, status);
      ++failures;
      continue;
    }

    fgcs::util::reset_crashpoints();
    fgcs::fleet::FleetConfig resume_config = sweep_config(args, crash_dir);
    resume_config.resume = true;
    std::size_t resumed = 0;
    try {
      const auto result = fgcs::fleet::run_fleet(resume_config);
      resumed = result.resumed_shards;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "crashtest: point %d: resume threw: %s\n", point,
                   e.what());
      ++failures;
      continue;
    }

    bool ok = true;
    for (const auto& name : names) {
      ok = compare_file(crash_dir, ref_dir, name, point) && ok;
    }
    std::printf("crashtest: point %2d: %s after %2d %-14s -> resumed "
                "%2zu/%zu shards, %s\n",
                point, killed ? "killed" : "clean ", count, kKnobShort[knob],
                resumed, shard_count, ok ? "bit-identical" : "DIVERGED");
    if (!ok) {
      ++failures;
      continue;
    }
    remove_flat_dir(crash_dir);
  }

  if (failures != 0) {
    std::fprintf(stderr, "crashtest: %d/%d kill points FAILED\n", failures,
                 points);
    return 1;
  }
  std::printf("crashtest: all %d kill points recovered bit-identically\n",
              points);
  remove_flat_dir(ref_dir);
  ::rmdir(base.c_str());
  return 0;
}

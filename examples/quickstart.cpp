// Quickstart: the FGCS pipeline on one simulated machine.
//
// Spawns a host workload and a guest job, runs the resource monitor, and
// shows the five-state availability model driving the guest controller
// (renice -> suspend -> terminate), exactly as §3/§4 describe.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "fgcs/monitor/guest_controller.hpp"
#include "fgcs/monitor/machine_sampler.hpp"
#include "fgcs/workload/synthetic.hpp"

using namespace fgcs;
using namespace fgcs::sim::time_literals;

int main() {
  std::printf("fgcs quickstart: one machine, one guest, one monitor\n\n");

  // A simulated RedHat-Linux-like machine (Th1=20%%, Th2=60%% profile).
  os::Machine machine(os::SchedulerParams::linux_2_4(),
                      os::MemoryParams::linux_1gb(), /*seed=*/1);

  // The host user's workload ramps up over time: idle, then moderate
  // editing/compiling, then a heavy sustained build.
  std::vector<os::Phase> phases;
  phases.push_back(os::Phase::sleep(3_min));
  for (int i = 0; i < 20; ++i) {
    phases.push_back(os::Phase::compute(5_s));  // ~33% duty
    phases.push_back(os::Phase::sleep(10_s));
  }
  phases.push_back(os::Phase::compute(30_min));  // sustained overload
  os::ProcessSpec host;
  host.name = "host-user";
  host.kind = os::ProcessKind::kHost;
  host.program = os::fixed_program(std::move(phases));
  machine.spawn(host);

  // The guest: a CPU-bound batch job submitted through the FGCS system.
  const os::ProcessId guest = machine.spawn(workload::synthetic_guest(0));

  // The monitor: periodic sampling, threshold detection, guest control.
  const monitor::ThresholdPolicy policy = monitor::ThresholdPolicy::linux_testbed();
  monitor::MachineSampler sampler(machine);
  monitor::UnavailabilityDetector detector(policy);
  monitor::GuestController controller(machine, guest);

  std::printf("%-10s %-9s %-6s %s\n", "time", "host-cpu", "state",
              "guest");
  monitor::AvailabilityState last = detector.state();
  while (!controller.terminated() && machine.now() < sim::SimTime::epoch() + 1_h) {
    machine.run_for(policy.sample_period);
    const monitor::HostSample sample = sampler.sample();
    const monitor::AvailabilityState state = detector.observe(sample);
    controller.apply(detector);

    if (state != last || detector.transient_high()) {
      const char* guest_status =
          controller.terminated()
              ? "terminated"
              : (controller.suspended()
                     ? "suspended"
                     : (machine.process(guest).nice() == 19 ? "nice 19"
                                                            : "nice 0"));
      std::printf("%-10s %-9.2f %-6s %s\n", machine.now().str().c_str(),
                  sample.host_cpu, monitor::to_string(state), guest_status);
      last = state;
    }
  }

  std::printf("\nguest lifetime summary:\n");
  for (const auto& action : controller.actions()) {
    std::printf("  %-10s %-22s (model state %s)\n", action.time.str().c_str(),
                monitor::to_string(action.action),
                monitor::to_string(action.state));
  }
  std::printf("\nguest CPU time accumulated before termination: %s\n",
              machine.process(guest).cpu_time().str().c_str());
  std::printf("episodes recorded by the detector: %zu\n",
              detector.episodes().size());
  return 0;
}

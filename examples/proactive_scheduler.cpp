// Proactive guest-job scheduling — the paper's end goal.
//
// "The ultimate goal of this work is to develop availability prediction
//  algorithms used for proactive job management." (§6)  The paper's intro
// argues proactive approaches "achieve significantly improved job response
// time compared to the methods which are oblivious to future
// unavailability".
//
// This example quantifies that on a simulated testbed trace: a stream of
// compute-bound guest jobs (no checkpointing — a killed job restarts from
// scratch, §1) is placed on machines either obliviously (random available
// machine) or proactively (history-window prediction, §5.3). Response
// time is the metric, as the paper prescribes for batch guest jobs.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "fgcs/core/testbed.hpp"
#include "fgcs/predict/history_window.hpp"
#include "fgcs/stats/descriptive.hpp"
#include "fgcs/trace/index.hpp"
#include "fgcs/util/rng.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;
using namespace fgcs::sim::time_literals;
using sim::SimDuration;
using sim::SimTime;

namespace {

struct JobOutcome {
  SimDuration response;
  SimDuration wasted;  // CPU time of runs that were killed mid-flight
  int kills = 0;
};

/// Runs one job of length `len` on machine `m` starting no earlier than
/// `submit`: waits out downtime, restarts from scratch on every failure.
JobOutcome run_job_on(const trace::TraceIndex& index, trace::MachineId m,
                      SimTime submit, SimDuration len, SimTime horizon) {
  JobOutcome out;
  SimTime t = submit;
  const SimDuration harvest_delay = 5_min;  // §5.2's recommendation
  // A killed guest job is not free to restart: the middleware must detect
  // the failure, re-stage input files (guest I/O happens at job start,
  // §3.2), and requeue.
  const SimDuration resubmit_overhead = 30_min;
  for (;;) {
    if (t + len > horizon) {
      // Censored: charge the remaining horizon (pessimistic floor).
      out.response = horizon - submit;
      return out;
    }
    const auto* ep = index.first_overlap(m, t, t + len);
    if (ep == nullptr) {
      out.response = (t + len) - submit;
      return out;
    }
    if (ep->start > t) {
      ++out.kills;  // started, then killed mid-run
      out.wasted += ep->start - t;
    }
    t = ep->end + harvest_delay + resubmit_overhead;
  }
}

}  // namespace

int main() {
  std::printf("fgcs proactive vs oblivious guest-job scheduling\n\n");

  core::TestbedConfig config;
  config.machines = 12;
  config.days = 63;
  std::printf("simulating %u machines for %d days...\n\n", config.machines,
              config.days);
  const auto trace = core::run_testbed(config);
  const trace::TraceIndex index(trace);
  const trace::TraceCalendar calendar;
  const SimTime horizon = trace.horizon_end();

  predict::HistoryWindowPredictor predictor;
  predictor.attach(index, calendar);

  // Job stream: one job every 3 hours after a 28-day history warm-up.
  const SimTime first_submit = trace.horizon_start() + SimDuration::days(28);
  util::RngStream rng(2006);

  util::TextTable table({"Job length", "Policy", "Jobs", "Mean response",
                         "P90 response", "Mean stretch", "Kills/job",
                         "Wasted CPU-h/job"});

  for (const SimDuration len : {2_h, 4_h, 8_h}) {
    struct Agg {
      std::vector<double> responses;
      std::vector<double> stretches;
      double wasted_h = 0.0;
      int kills = 0;
      int jobs = 0;
    } oblivious, proactive;

    for (SimTime submit = first_submit;
         submit + SimDuration::hours(36) < horizon; submit += 3_h) {
      // Machines that are up right now (a scheduler can observe that).
      std::vector<trace::MachineId> candidates;
      for (trace::MachineId m = 0; m < config.machines; ++m) {
        bool inside = false;
        index.last_end_before(m, submit, &inside);
        if (!inside) candidates.push_back(m);
      }
      if (candidates.empty()) continue;

      // Oblivious: any currently-available machine.
      const trace::MachineId random_pick =
          candidates[rng.uniform_index(candidates.size())];

      // Proactive: pick both *where* and *when* by minimizing the
      // expected completion time — wait + len / P(survive) approximates
      // restart-from-scratch retries as geometric. Machines in the lab
      // are nearly statistically identical (the paper's tight Table 2
      // ranges), so most of the win comes from scheduling around busy
      // daytime windows rather than machine choice.
      trace::MachineId best_pick = candidates.front();
      SimTime best_start = submit;
      {
        double best_cost = 1e300;
        for (int slot = 0; slot <= 24; ++slot) {
          const SimTime start = submit + SimDuration::hours(slot);
          for (const trace::MachineId m : candidates) {
            const double p = std::clamp(
                predictor.predict_availability({m, start, len}), 0.05, 1.0);
            // Expected response: wait + run + expected retries, each retry
            // costing roughly half a run (lost work) plus the typical
            // episode-and-resubmit latency (~3h on this testbed).
            const double cost = static_cast<double>(slot) + len.as_hours() +
                                (1.0 / p - 1.0) *
                                    (0.5 * len.as_hours() + 3.0);
            if (cost < best_cost) {
              best_cost = cost;
              best_pick = m;
              best_start = start;
            }
          }
        }
      }

      for (auto* agg : {&oblivious, &proactive}) {
        const bool is_proactive = agg == &proactive;
        const trace::MachineId m = is_proactive ? best_pick : random_pick;
        const SimTime start = is_proactive ? best_start : submit;
        JobOutcome outcome = run_job_on(index, m, start, len, horizon);
        // Response time is measured from submission, including any
        // deliberate deferral.
        outcome.response += start - submit;
        agg->responses.push_back(outcome.response.as_hours());
        agg->stretches.push_back(outcome.response / len);
        agg->wasted_h += outcome.wasted.as_hours();
        agg->kills += outcome.kills;
        agg->jobs += 1;
      }
    }

    for (const auto* agg : {&oblivious, &proactive}) {
      const char* policy = agg == &oblivious ? "oblivious" : "proactive";
      const double mean_resp = stats::mean(agg->responses);
      const double p90 = stats::quantile(agg->responses, 0.9);
      table.add(util::format_duration_s(len.as_seconds()), policy, agg->jobs,
                util::format_duration_s(mean_resp * 3600),
                util::format_duration_s(p90 * 3600),
                util::format_double(stats::mean(agg->stretches), 2),
                util::format_double(
                    static_cast<double>(agg->kills) / agg->jobs, 2),
                util::format_double(agg->wasted_h / agg->jobs, 2));
    }
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "stretch = response time / job length (1.00 is perfect).\n"
      "The proactive policy picks machine and start slot via the paper's\n"
      "history-window prediction (§5.3); the oblivious policy starts\n"
      "immediately on a random up machine. On this testbed the machines\n"
      "are statistically near-identical (Table 2's tight ranges), so\n"
      "prediction cannot beat blind placement on response time — its win\n"
      "is eliminating a large share of mid-run kills and the wasted CPU\n"
      "they burn, at essentially unchanged response time.\n");
  return 0;
}

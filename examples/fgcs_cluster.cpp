// A small FGCS cluster end to end: the iShare-like middleware runs guest
// jobs across machines with different host users, the monitors enforce
// the five-state policy, and killed jobs are requeued automatically.
#include <cstdio>

#include "fgcs/ishare/discovery.hpp"
#include "fgcs/ishare/system.hpp"
#include "fgcs/util/rng.hpp"
#include "fgcs/util/table.hpp"
#include "fgcs/workload/synthetic.hpp"

using namespace fgcs;
using namespace fgcs::sim::time_literals;

int main() {
  std::printf("fgcs cluster: middleware + monitors + guest job stream\n\n");

  ishare::FgcsSystem system;

  // Six published machines with different owners: two nearly idle, two
  // moderately busy (S2 territory), one bursty, one heavily used.
  auto add = [&](const char* who, double usage) {
    ishare::NodeConfig cfg;
    auto host = workload::synthetic_host(usage);
    host.name = who;
    cfg.host_processes = {host};
    return system.add_node(cfg);
  };
  add("idle-desk-1", 0.05);
  add("idle-desk-2", 0.10);
  add("writer", 0.30);
  add("coder", 0.45);
  add("data-cruncher", 0.70);
  add("renderer", 0.95);

  // A stream of guest jobs arriving over the first two hours.
  util::RngStream rng(42);
  int submitted = 0;
  for (sim::SimDuration at = 1_min; at < 2_h;
       at += sim::SimDuration::minutes(rng.uniform_int(4, 15))) {
    system.run_until(sim::SimTime::epoch() + at);
    ishare::GuestJob job;
    job.name = "mc-sim";
    job.work = sim::SimDuration::minutes(rng.uniform_int(10, 45));
    job.resident_mb = rng.uniform(30.0, 120.0);
    system.submit(job);
    ++submitted;
  }
  system.run_for(6_h);  // drain

  const auto stats = system.stats();
  std::printf("submitted %d jobs; completed %zu, still running %zu, "
              "queued %zu\n",
              submitted, stats.completed, stats.running, stats.queued);
  std::printf("policy kills (restarts): %d, mean response %s\n\n",
              stats.total_restarts,
              util::format_duration_s(stats.mean_response_hours * 3600)
                  .c_str());

  util::TextTable nodes({"Node", "Model state", "Episodes recorded"});
  const char* names[] = {"idle-desk-1", "idle-desk-2", "writer",
                         "coder",       "data-cruncher", "renderer"};
  for (ishare::NodeId n = 0; n < system.node_count(); ++n) {
    nodes.add(names[n], monitor::to_string(system.node_state(n)),
              system.node_episodes(n).size());
  }
  std::printf("%s\n", nodes.str().c_str());

  // Publication & discovery: every provider publishes its machine's
  // descriptor (with the monitor's current model state) into the P2P
  // overlay; a consumer then discovers usable machines from any peer.
  ishare::DiscoveryOverlay overlay;
  std::vector<ishare::PeerId> providers;
  for (ishare::NodeId n = 0; n < system.node_count(); ++n) {
    providers.push_back(overlay.join(std::string("provider-") + names[n]));
  }
  const ishare::PeerId consumer = overlay.join("guest-user");
  for (ishare::NodeId n = 0; n < system.node_count(); ++n) {
    ishare::ResourceDescriptor d;
    d.name = names[n];
    d.owner = std::string("provider-") + names[n];
    d.cpu_ghz = 1.7;  // the paper's lab machines
    d.state = system.node_state(n);
    d.published_at = system.now();
    overlay.publish(providers[n], d);
  }
  ishare::RouteStats route_stats;
  const auto usable = overlay.find_available(consumer, 1.0, 10, &route_stats);
  std::printf("P2P discovery from '%s': %zu usable machines "
              "(ring walk: %d hops, %s):\n",
              "guest-user", usable.size(), route_stats.hops,
              route_stats.latency.str().c_str());
  for (const auto& d : usable) {
    std::printf("  %-14s state %s (published by %s)\n", d.name.c_str(),
                monitor::to_string(d.state), d.owner.c_str());
  }

  std::printf(
      "\nexpected: the idle desks and the writer absorb most jobs; the\n"
      "renderer sits in S3 (its owner uses it) and both the middleware\n"
      "and the discovery layer route around it, exactly the behaviour\n"
      "the paper's model prescribes.\n");
  return 0;
}

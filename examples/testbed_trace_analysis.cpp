// Testbed tracing and offline analysis.
//
// Runs a (reduced) version of the paper's three-month availability trace,
// saves it in both CSV and binary formats, reloads it, and reproduces the
// §5 analyses: cause breakdown, interval statistics, and hourly patterns.
#include <cstdio>

#include "fgcs/core/analyzer.hpp"
#include "fgcs/core/testbed.hpp"
#include "fgcs/trace/io.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

int main() {
  std::printf("fgcs testbed trace collection and analysis\n\n");

  // A month on 8 machines (the paper: 3 months on 20).
  core::TestbedConfig config;
  config.machines = 8;
  config.days = 30;
  std::printf("simulating %u machines for %d days...\n", config.machines,
              config.days);
  const trace::TraceSet collected = core::run_testbed(config);
  std::printf("collected %zu unavailability records\n\n", collected.size());

  // Persist and reload (CSV for humans/pandas, binary for speed).
  const std::string csv_path = "/tmp/fgcs_example_trace.csv";
  const std::string bin_path = "/tmp/fgcs_example_trace.trc";
  trace::save_trace(collected, csv_path);
  trace::save_trace(collected, bin_path);
  std::printf("saved trace to %s and %s\n", csv_path.c_str(),
              bin_path.c_str());
  const trace::TraceSet trace = trace::load_trace(bin_path);

  const core::TraceAnalyzer analyzer(trace);

  const auto t2 = analyzer.table2();
  util::TextTable causes({"Cause", "Per-machine range", "Share"});
  causes.add("UEC: CPU contention (S3)",
             std::to_string(t2.cpu_contention.min) + "-" +
                 std::to_string(t2.cpu_contention.max),
             util::format_percent(
                 t2.cpu_contention.mean / t2.total.mean, 0));
  causes.add("UEC: memory (S4)",
             std::to_string(t2.mem_contention.min) + "-" +
                 std::to_string(t2.mem_contention.max),
             util::format_percent(t2.mem_contention.mean / t2.total.mean, 0));
  causes.add("URR (S5)",
             std::to_string(t2.urr.min) + "-" + std::to_string(t2.urr.max),
             util::format_percent(t2.urr.mean / t2.total.mean, 0));
  std::printf("\n%s", causes.str().c_str());
  std::printf("reboot share of URR: %s\n\n",
              util::format_percent(t2.reboot_fraction_of_urr, 0).c_str());

  const auto iv = analyzer.intervals();
  std::printf("availability intervals:\n");
  std::printf("  weekday: n=%zu mean=%s median=%s\n", iv.weekday.count,
              util::format_duration_s(iv.weekday.mean_hours * 3600).c_str(),
              util::format_duration_s(
                  iv.weekday.ecdf_hours.quantile(0.5) * 3600)
                  .c_str());
  std::printf("  weekend: n=%zu mean=%s median=%s\n\n", iv.weekend.count,
              util::format_duration_s(iv.weekend.mean_hours * 3600).c_str(),
              util::format_duration_s(
                  iv.weekend.ecdf_hours.quantile(0.5) * 3600)
                  .c_str());

  const auto hourly = analyzer.hourly();
  std::printf("weekday hourly occurrence profile (testbed-wide mean):\n  ");
  for (int h = 0; h < 24; ++h) {
    std::printf("%s%.0f", h ? " " : "", hourly.weekday[h].mean);
  }
  std::printf("\n  (hour 4-5 = %0.f: the updatedb cron on all %u machines)\n",
              hourly.weekday[4].mean, config.machines);
  return 0;
}

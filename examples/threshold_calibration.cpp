// Threshold calibration: porting the detector to a new system.
//
// "The exact thresholds for what constitutes UEC may vary on systems with
//  different OS scheduling and resource management methods. We use offline
//  experiments to obtain these thresholds on specific systems." (§3.1)
//
// This example runs the paper's offline contention experiment (the
// Figure 1 sweep) against a *hypothetical* scheduler profile — one with
// longer timeslices than the stock profiles — and derives that system's
// Th1/Th2, producing a ready-to-use ThresholdPolicy.
#include <cstdio>

#include "fgcs/core/contention.hpp"
#include "fgcs/monitor/policy.hpp"
#include "fgcs/util/table.hpp"

using namespace fgcs;

int main() {
  std::printf("fgcs threshold calibration for a custom scheduler profile\n\n");

  // The "new system": a time-sharing scheduler with longer slices and a
  // weaker sleeper boost than RedHat 7's.
  os::SchedulerParams custom = os::SchedulerParams::linux_2_4();
  custom.base_refill_ticks = 14.0;
  custom.sleep_credit_multiplier = 1.5;
  custom.name = "custom-ts";

  core::Fig1Config sweep;
  sweep.base.scheduler = custom;
  sweep.base.measure = sim::SimDuration::minutes(5);
  sweep.base.combinations = 3;
  sweep.max_group_size = 3;

  std::printf("running the offline contention sweep on '%s'...\n\n",
              custom.name.c_str());
  const core::Fig1Result result = core::run_fig1(sweep);

  util::TextTable table({"L_H", "equal prio (M=1)", "nice 19 (M=1)"});
  for (double lh : sweep.lh_grid) {
    table.add(util::format_double(lh, 1),
              util::format_percent(result.at(lh, 1, 0).reduction, 1),
              util::format_percent(result.at(lh, 1, 19).reduction, 1));
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("calibrated thresholds: Th1 = %.2f, Th2 = %.2f\n", result.th1,
              result.th2);
  std::printf("(stock linux-2.4 profile calibrates to Th1=0.20, Th2=0.60,\n"
              " matching the paper's testbed)\n\n");

  // Package them as a deployable monitor policy.
  monitor::ThresholdPolicy policy;
  policy.th1 = result.th1;
  policy.th2 = result.th2;
  policy.validate();
  std::printf("deployable ThresholdPolicy: th1=%.2f th2=%.2f sustain=%s "
              "sample=%s\n",
              policy.th1, policy.th2, policy.sustain_window.str().c_str(),
              policy.sample_period.str().c_str());
  return 0;
}

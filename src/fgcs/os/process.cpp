#include "fgcs/os/process.hpp"

#include <memory>

#include "fgcs/util/error.hpp"

namespace fgcs::os {

const char* to_string(ProcessKind kind) {
  switch (kind) {
    case ProcessKind::kHost:
      return "host";
    case ProcessKind::kGuest:
      return "guest";
    case ProcessKind::kSystem:
      return "system";
  }
  return "?";
}

const char* to_string(ProcState state) {
  switch (state) {
    case ProcState::kRunnable:
      return "runnable";
    case ProcState::kSleeping:
      return "sleeping";
    case ProcState::kSuspended:
      return "suspended";
    case ProcState::kExited:
      return "exited";
  }
  return "?";
}

PhaseProgram fixed_program(std::vector<Phase> phases) {
  auto index = std::make_shared<std::size_t>(0);
  auto list = std::make_shared<std::vector<Phase>>(std::move(phases));
  return [index, list](util::RngStream&) -> Phase {
    if (*index >= list->size()) return Phase::exit();
    return (*list)[(*index)++];
  };
}

PhaseProgram cpu_bound_program() {
  return [](util::RngStream&) {
    // Renewed in large chunks; the scheduler preempts per tick anyway.
    return Phase::compute(sim::SimDuration::hours(1));
  };
}

Process::Process(ProcessId pid, ProcessSpec spec, sim::SimTime start,
                 util::RngStream rng)
    : pid_(pid),
      spec_(std::move(spec)),
      working_set_mb_(spec_.working_set_mb > 0 ? spec_.working_set_mb
                                               : spec_.resident_mb),
      nice_(spec_.nice),
      start_(start),
      rng_(rng) {
  fgcs::require(nice_ >= 0 && nice_ <= 19,
                "process nice must be in [0, 19], got " +
                    std::to_string(nice_));
  fgcs::require(spec_.resident_mb >= 0 && spec_.virtual_mb >= 0,
                "process memory sizes must be non-negative");
  fgcs::require(static_cast<bool>(spec_.program),
                "process '" + spec_.name + "' has no phase program");
}

double Process::usage_since(sim::SimDuration cpu_at_since,
                            sim::SimDuration wall_elapsed) const {
  if (wall_elapsed <= sim::SimDuration::zero()) return 0.0;
  return (cpu_time_ - cpu_at_since) / wall_elapsed;
}

}  // namespace fgcs::os

// Physical memory and thrashing model.
//
// The paper's §3.2.3 observation: when the combined working sets of guest
// and host processes (plus ~100 MB kernel usage) exceed physical memory,
// every process thrashes and host CPU usage collapses regardless of CPU
// priorities. We model this with a machine-wide *efficiency* factor applied
// to compute progress: 1.0 when working sets fit, dropping smoothly with
// the overcommit ratio when they do not. Suspended processes do not
// contribute working set (their pages may be evicted without faulting).
#pragma once

#include <string>

namespace fgcs::os {

struct MemoryParams {
  /// Physical RAM. The paper's machines: 384 MB (Solaris), >1 GB (Linux lab).
  double ram_mb = 1024.0;

  /// Kernel/baseline memory usage (paper assumes ~100 MB).
  double kernel_mb = 100.0;

  /// Slope of the efficiency loss past 100% working-set occupancy.
  /// efficiency = max(floor, 1 / (1 + severity * (overcommit - 1))).
  double thrash_severity = 12.0;

  /// Lower bound on efficiency (the system never fully stops).
  double efficiency_floor = 0.10;

  /// Profile of the paper's 300 MHz, 384 MB Solaris machine.
  static MemoryParams solaris_384mb();

  /// Profile of the paper's lab Linux machines (>1 GB RAM, §5.1).
  static MemoryParams linux_1gb();

  void validate() const;

  /// Memory available to processes (RAM minus kernel).
  double available_mb() const { return ram_mb - kernel_mb; }

  /// Efficiency factor for the given total active working set.
  double efficiency(double active_working_set_mb) const;

  /// True when the given working set total causes thrashing.
  bool thrashes(double active_working_set_mb) const {
    return active_working_set_mb > available_mb();
  }
};

}  // namespace fgcs::os

#include "fgcs/os/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "fgcs/util/error.hpp"

namespace fgcs::os {

double SchedulerParams::refill_ticks(int nice) const {
  const double t = static_cast<double>(nice) / 19.0;
  const double shape = std::pow(1.0 - t, refill_curve_gamma);
  return std::max(min_refill_ticks,
                  min_refill_ticks +
                      (base_refill_ticks - min_refill_ticks) * shape);
}

double SchedulerParams::goodness(double counter_ticks, int nice) const {
  if (counter_ticks <= 0.0) return 0.0;
  return counter_ticks + goodness_nice_weight - static_cast<double>(nice);
}

SchedulerParams SchedulerParams::linux_2_4() {
  SchedulerParams p;
  p.tick = sim::SimDuration::millis(10);
  p.base_refill_ticks = 8.0;
  p.min_refill_ticks = 1.0;
  p.goodness_nice_weight = 20.0;
  p.name = "linux-2.4";
  return p;
}

SchedulerParams SchedulerParams::solaris_ts() {
  SchedulerParams p;
  p.tick = sim::SimDuration::millis(10);
  p.base_refill_ticks = 6.0;
  p.min_refill_ticks = 1.0;
  p.goodness_nice_weight = 20.0;
  p.sleep_credit_multiplier = 4.5;
  p.name = "solaris-ts";
  return p;
}

void SchedulerParams::validate() const {
  fgcs::require(tick > sim::SimDuration::zero(), "scheduler tick must be > 0");
  fgcs::require(min_refill_ticks >= 1.0, "min_refill_ticks must be >= 1");
  fgcs::require(base_refill_ticks >= min_refill_ticks,
                "base_refill_ticks must be >= min_refill_ticks");
  fgcs::require(goodness_nice_weight > 0, "goodness_nice_weight must be > 0");
  fgcs::require(sleep_credit_multiplier >= 1.0,
                "sleep_credit_multiplier must be >= 1");
}

}  // namespace fgcs::os

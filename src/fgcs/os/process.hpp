// Process model for the simulated Unix machine.
//
// A process executes a *phase program*: a generator producing Compute,
// Sleep, or Exit phases. Compute amounts are CPU-seconds of work at full
// speed (they stretch under contention or thrashing); Sleep amounts are
// wall-clock (blocked, also covers I/O waits). Memory footprints are
// static per process, matching how the paper characterizes workloads
// (Table 1: CPU usage, resident size, virtual size).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "fgcs/sim/time.hpp"
#include "fgcs/util/rng.hpp"

namespace fgcs::os {

/// Distinguishes guest processes (cycle-stealing jobs) from host processes
/// (the machine owner's workload) and system daemons (counted as host by
/// the paper's monitor, see §5.3 on updatedb).
enum class ProcessKind : std::uint8_t { kHost, kGuest, kSystem };

const char* to_string(ProcessKind kind);

/// One step of a process's behavior.
struct Phase {
  enum class Kind : std::uint8_t { kCompute, kSleep, kExit };
  Kind kind = Kind::kExit;
  /// CPU-seconds for kCompute, wall time for kSleep, ignored for kExit.
  sim::SimDuration amount = sim::SimDuration::zero();

  static Phase compute(sim::SimDuration work) {
    return Phase{Kind::kCompute, work};
  }
  static Phase sleep(sim::SimDuration wall) {
    return Phase{Kind::kSleep, wall};
  }
  static Phase exit() { return Phase{Kind::kExit, sim::SimDuration::zero()}; }
};

/// Generates the next phase each time the previous one completes. The
/// RngStream is the process's private stream (deterministic per process).
using PhaseProgram = std::function<Phase(util::RngStream&)>;

/// A program that replays a fixed list of phases, then exits.
PhaseProgram fixed_program(std::vector<Phase> phases);

/// A fully CPU-bound program (one unbounded compute phase, renewed forever).
PhaseProgram cpu_bound_program();

/// Static description of a process to spawn.
struct ProcessSpec {
  std::string name;
  ProcessKind kind = ProcessKind::kHost;
  /// Unix nice value, 0 (default) .. 19 (lowest priority).
  int nice = 0;
  /// Memory footprint (Table 1 columns).
  double resident_mb = 1.0;
  double virtual_mb = 2.0;
  /// Pages the process actively touches; drives the thrashing model.
  /// Defaults to resident_mb when <= 0.
  double working_set_mb = -1.0;
  PhaseProgram program;
};

/// Scheduling state of a process.
enum class ProcState : std::uint8_t {
  kRunnable,
  kSleeping,
  kSuspended,  // SIGSTOP'd (guest suspension per §3.2)
  kExited,
};

const char* to_string(ProcState state);

using ProcessId = std::uint32_t;

/// Runtime process record. Owned and mutated by Machine; read-only to
/// library users (accessors only).
class Process {
 public:
  Process(ProcessId pid, ProcessSpec spec, sim::SimTime start,
          util::RngStream rng);

  ProcessId pid() const { return pid_; }
  const std::string& name() const { return spec_.name; }
  ProcessKind kind() const { return spec_.kind; }
  int nice() const { return nice_; }
  ProcState state() const { return state_; }
  double resident_mb() const { return spec_.resident_mb; }
  double virtual_mb() const { return spec_.virtual_mb; }
  double working_set_mb() const { return working_set_mb_; }

  /// Cumulative CPU time consumed (getrusage ru_utime equivalent). Under
  /// thrashing this advances at the degraded efficiency — consistent with
  /// the host monitor seeing host CPU usage collapse (§3.2.3).
  sim::SimDuration cpu_time() const { return cpu_time_; }

  sim::SimTime start_time() const { return start_; }
  sim::SimTime exit_time() const { return exit_time_; }

  /// True when the process was terminated with SIGKILL (Machine::terminate)
  /// rather than running to completion. Lets a monitor distinguish an
  /// externally-killed guest from one that finished its work.
  bool killed() const { return killed_; }

  /// CPU usage over [since, now): delta cpu_time / delta wall.
  /// Caller supplies the snapshot taken at `since`.
  double usage_since(sim::SimDuration cpu_at_since,
                     sim::SimDuration wall_elapsed) const;

 private:
  friend class Machine;

  ProcessId pid_;
  ProcessSpec spec_;
  double working_set_mb_;
  int nice_;
  ProcState state_ = ProcState::kRunnable;
  bool killed_ = false;
  sim::SimTime start_;
  sim::SimTime exit_time_ = sim::SimTime::max();
  util::RngStream rng_;

  // Scheduler fields (Linux-2.4-style counter; see scheduler.hpp).
  double counter_ticks_ = 0.0;
  std::uint64_t last_run_seq_ = 0;  // for round-robin tie-breaking

  // Current phase execution state.
  Phase current_phase_{};
  sim::SimDuration phase_done_ = sim::SimDuration::zero();  // progress
  sim::SimTime sleep_until_ = sim::SimTime::epoch();
  bool was_runnable_before_suspend_ = false;

  sim::SimDuration cpu_time_ = sim::SimDuration::zero();
};

}  // namespace fgcs::os

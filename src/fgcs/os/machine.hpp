// The simulated Unix machine.
//
// Combines the goodness scheduler (scheduler.hpp), the memory/thrashing
// model (memory.hpp), and a process table. Time advances in scheduler
// ticks inside run_until/run_for; the machine is deterministic given its
// seed. This is the fine-grained substrate for the paper's contention
// experiments (Figures 1-4, Table 1); the coarse testbed simulation in
// fgcs::core drives the same monitor code from a load-process abstraction
// instead.
//
// Typical use:
//   Machine m(SchedulerParams::linux_2_4(), MemoryParams::linux_1gb(), seed);
//   auto host = m.spawn(host_spec);
//   auto guest = m.spawn(guest_spec);
//   m.run_for(SimDuration::minutes(5));
//   double lh = ...; // from m.totals() snapshots
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fgcs/os/memory.hpp"
#include "fgcs/os/process.hpp"
#include "fgcs/os/scheduler.hpp"
#include "fgcs/sim/time.hpp"
#include "fgcs/util/rng.hpp"

namespace fgcs::os {

/// Cumulative CPU-time accounting by process kind. Invariant:
/// host + guest + system + idle == elapsed simulated time.
struct CpuTotals {
  sim::SimDuration host;
  sim::SimDuration guest;
  sim::SimDuration system;
  sim::SimDuration idle;

  sim::SimDuration total() const { return host + guest + system + idle; }

  /// Host-side CPU usage as the paper's monitor computes it: host plus
  /// system daemons (updatedb et al. are "also viewed as host processes").
  static double host_usage(const CpuTotals& earlier, const CpuTotals& later);
  /// Guest CPU usage between two snapshots.
  static double guest_usage(const CpuTotals& earlier, const CpuTotals& later);
};

class Machine {
 public:
  Machine(SchedulerParams sched, MemoryParams mem, std::uint64_t seed);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  Machine(Machine&&) = default;
  Machine& operator=(Machine&&) = default;

  // -- process control (the FGCS guest controller uses these) --------------

  /// Spawns a process; it becomes runnable at the current instant.
  ProcessId spawn(ProcessSpec spec);

  /// Changes a live process's nice value (renice; §3.2's control knob).
  void renice(ProcessId pid, int nice);

  /// SIGSTOP: removes the process from scheduling and from the active
  /// working set (its pages may be evicted without faulting).
  void suspend(ProcessId pid);

  /// SIGCONT: the process resumes where it was.
  void resume(ProcessId pid);

  /// SIGKILL: the process exits immediately.
  void terminate(ProcessId pid);

  // -- time ----------------------------------------------------------------

  sim::SimTime now() const { return now_; }

  /// Advances the machine to `until` in scheduler ticks.
  void run_until(sim::SimTime until);

  /// Advances the machine by `d`.
  void run_for(sim::SimDuration d) { run_until(now_ + d); }

  // -- observation (what a monitor can see) ---------------------------------

  const Process& process(ProcessId pid) const;
  std::size_t process_count() const { return procs_.size(); }

  /// Cumulative CPU accounting snapshot.
  const CpuTotals& totals() const { return totals_; }

  /// Free physical memory right now: RAM - kernel - resident sets of all
  /// live, non-suspended processes (floored at 0; under overcommit the
  /// residents spill to swap).
  double free_memory_mb() const;

  /// Total active working set (live, non-suspended processes).
  double active_working_set_mb() const;

  /// True if the machine is currently thrashing.
  bool is_thrashing() const {
    return mem_.thrashes(active_working_set_mb());
  }

  /// Current compute-efficiency factor (1.0 unless thrashing).
  double current_efficiency() const {
    return mem_.efficiency(active_working_set_mb());
  }

  /// Cumulative time the machine spent thrashing (efficiency < 1 while a
  /// process was running).
  sim::SimDuration thrash_time() const { return thrash_time_; }

  const SchedulerParams& scheduler_params() const { return sched_; }
  const MemoryParams& memory_params() const { return mem_; }

  /// Number of live (not exited) processes.
  std::size_t live_count() const;

 private:
  Process& live_process(ProcessId pid, const char* op);
  void advance_phase(Process& p);
  void recalc_counters();
  /// Applies k epoch recalculations to a sleeping process's counter in
  /// closed form: counter -> min(cap, counter + k * refill).
  static double converge_counter(double counter, double cap, double refill,
                                 std::int64_t k);
  void step_tick(sim::SimTime until);
  /// Outcome of planning one fast-forward jump.
  struct RunPlan {
    std::int64_t ticks = 1;       // ticks the runner executes in this jump
    std::int64_t recalcs = 0;     // epoch recalculations crossed (sole mode)
    double counter_after = 0.0;   // runner counter after the replay
  };
  /// Ticks the selected runner can execute as one analytic jump without
  /// any scheduling decision changing (always >= 1). `per_tick_progress`
  /// is the work one tick contributes at the current memory efficiency.
  /// With `sole_runnable` set (the runner is the only runnable process)
  /// the jump may cross epoch recalculations, since no contender can be
  /// selected before a wake-up/phase/horizon bound ends the window.
  RunPlan plan_run_ticks(std::size_t runner, sim::SimTime until,
                         sim::SimDuration per_tick_progress,
                         bool sole_runnable) const;
  /// Copies the hot columns back into the pid's Process record so the
  /// read-only view observers get is current.
  void sync_mirror(ProcessId pid) const;

  SchedulerParams sched_;
  MemoryParams mem_;
  util::RngStream rng_;
  sim::SimTime now_ = sim::SimTime::epoch();

  // Process table, split columnar. The col_* vectors are the
  // *authoritative* copy of the scheduler-hot fields: every per-tick loop
  // (wake sweep, goodness selection, counter recalculation, idle
  // fast-forward, memory accounting) is a contiguous column scan in
  // ascending pid order — the same visitation order and arithmetic as the
  // old per-object loops, so results are bit-identical. `procs_` keeps
  // the cold majority (spec, phase program, RNG, CPU accounting) and
  // doubles as the observation mirror: process() syncs the columns back
  // into the record before handing it out — hence mutable, the sync
  // happens under a const accessor.
  mutable std::vector<Process> procs_;
  std::vector<ProcState> col_state_;
  std::vector<double> col_counter_;
  std::vector<int> col_nice_;
  std::vector<std::uint64_t> col_last_seq_;
  std::vector<sim::SimTime> col_sleep_until_;
  std::vector<double> col_resident_mb_;
  std::vector<double> col_working_set_mb_;

  CpuTotals totals_{};
  sim::SimDuration thrash_time_ = sim::SimDuration::zero();
  std::uint64_t run_seq_ = 0;
  /// Pid that held the CPU on the previous tick (-1 = idle); feeds the
  /// observability layer's context-switch counter.
  std::int64_t last_runner_ = -1;
};

}  // namespace fgcs::os

#include "fgcs/os/machine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fgcs/obs/observer.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::os {

double CpuTotals::host_usage(const CpuTotals& earlier, const CpuTotals& later) {
  const sim::SimDuration wall = later.total() - earlier.total();
  if (wall <= sim::SimDuration::zero()) return 0.0;
  const sim::SimDuration host_cpu =
      (later.host - earlier.host) + (later.system - earlier.system);
  return host_cpu / wall;
}

double CpuTotals::guest_usage(const CpuTotals& earlier,
                              const CpuTotals& later) {
  const sim::SimDuration wall = later.total() - earlier.total();
  if (wall <= sim::SimDuration::zero()) return 0.0;
  return (later.guest - earlier.guest) / wall;
}

Machine::Machine(SchedulerParams sched, MemoryParams mem, std::uint64_t seed)
    : sched_(std::move(sched)), mem_(mem), rng_(seed, {0x4d41'4348u}) {
  sched_.validate();
  mem_.validate();
}

ProcessId Machine::spawn(ProcessSpec spec) {
  const auto pid = static_cast<ProcessId>(procs_.size());
  Process p(pid, std::move(spec), now_, rng_.child(pid));
  // New processes start with a fresh timeslice, runnable, in their first
  // phase.
  p.counter_ticks_ = sched_.refill_ticks(p.nice_);
  col_state_.push_back(p.state_);
  col_counter_.push_back(p.counter_ticks_);
  col_nice_.push_back(p.nice_);
  col_last_seq_.push_back(p.last_run_seq_);
  col_sleep_until_.push_back(p.sleep_until_);
  col_resident_mb_.push_back(p.resident_mb());
  col_working_set_mb_.push_back(p.working_set_mb());
  procs_.push_back(std::move(p));
  advance_phase(procs_.back());  // pull the first phase from the program
  return pid;
}

Process& Machine::live_process(ProcessId pid, const char* op) {
  fgcs::require(pid < procs_.size(),
                std::string(op) + ": no such pid " + std::to_string(pid));
  fgcs::require(col_state_[pid] != ProcState::kExited,
                std::string(op) + ": process already exited");
  return procs_[pid];
}

void Machine::renice(ProcessId pid, int nice) {
  fgcs::require(nice >= 0 && nice <= 19, "renice: nice must be in [0, 19]");
  live_process(pid, "renice");
  col_nice_[pid] = nice;
  // Credit above the new cap is clipped (renicing down sheds privilege).
  col_counter_[pid] = std::min(
      col_counter_[pid],
      sched_.sleep_credit_multiplier * sched_.refill_ticks(nice));
}

void Machine::suspend(ProcessId pid) {
  Process& p = live_process(pid, "suspend");
  if (col_state_[pid] == ProcState::kSuspended) return;
  p.was_runnable_before_suspend_ = (col_state_[pid] == ProcState::kRunnable);
  col_state_[pid] = ProcState::kSuspended;
}

void Machine::resume(ProcessId pid) {
  Process& p = live_process(pid, "resume");
  if (col_state_[pid] != ProcState::kSuspended) return;
  // If the sleep deadline passed while suspended, the wake sweep at the
  // next tick advances the phase.
  col_state_[pid] = p.was_runnable_before_suspend_ ? ProcState::kRunnable
                                                   : ProcState::kSleeping;
}

void Machine::terminate(ProcessId pid) {
  Process& p = live_process(pid, "terminate");
  col_state_[pid] = ProcState::kExited;
  p.killed_ = true;
  p.exit_time_ = now_;
}

const Process& Machine::process(ProcessId pid) const {
  fgcs::require(pid < procs_.size(),
                "process(): no such pid " + std::to_string(pid));
  sync_mirror(pid);
  return procs_[pid];
}

void Machine::sync_mirror(ProcessId pid) const {
  Process& p = procs_[pid];
  p.state_ = col_state_[pid];
  p.counter_ticks_ = col_counter_[pid];
  p.nice_ = col_nice_[pid];
  p.last_run_seq_ = col_last_seq_[pid];
  p.sleep_until_ = col_sleep_until_[pid];
}

std::size_t Machine::live_count() const {
  std::size_t n = 0;
  for (const ProcState s : col_state_) {
    if (s != ProcState::kExited) ++n;
  }
  return n;
}

double Machine::free_memory_mb() const {
  double resident = 0.0;
  for (std::size_t i = 0; i < col_state_.size(); ++i) {
    if (col_state_[i] != ProcState::kExited &&
        col_state_[i] != ProcState::kSuspended) {
      resident += col_resident_mb_[i];
    }
  }
  return std::max(0.0, mem_.ram_mb - mem_.kernel_mb - resident);
}

double Machine::active_working_set_mb() const {
  double ws = 0.0;
  for (std::size_t i = 0; i < col_state_.size(); ++i) {
    if (col_state_[i] != ProcState::kExited &&
        col_state_[i] != ProcState::kSuspended) {
      ws += col_working_set_mb_[i];
    }
  }
  return ws;
}

void Machine::advance_phase(Process& p) {
  const ProcessId pid = p.pid_;
  // Pull phases until we land on one with work to do (or the process
  // exits). A guard bounds pathological programs that emit endless
  // zero-length phases.
  for (int guard = 0; guard < 1000; ++guard) {
    const Phase phase = p.spec_.program(p.rng_);
    p.current_phase_ = phase;
    p.phase_done_ = sim::SimDuration::zero();
    switch (phase.kind) {
      case Phase::Kind::kExit:
        col_state_[pid] = ProcState::kExited;
        p.exit_time_ = now_;
        return;
      case Phase::Kind::kCompute:
        if (phase.amount > sim::SimDuration::zero()) {
          col_state_[pid] = ProcState::kRunnable;
          return;
        }
        break;  // zero work: pull the next phase
      case Phase::Kind::kSleep:
        if (phase.amount > sim::SimDuration::zero()) {
          col_state_[pid] = ProcState::kSleeping;
          col_sleep_until_[pid] = now_ + phase.amount;
          return;
        }
        break;
    }
  }
  FGCS_ASSERT(!"phase program emitted 1000 empty phases");
}

void Machine::recalc_counters() {
  for (std::size_t i = 0; i < col_state_.size(); ++i) {
    if (col_state_[i] == ProcState::kExited) continue;
    const double refill = sched_.refill_ticks(col_nice_[i]);
    if (col_state_[i] == ProcState::kRunnable) {
      // Linux-2.4 style: runnable credit halves and refills (bounded by
      // 2x refill through the recursion itself).
      col_counter_[i] = col_counter_[i] / 2.0 + refill;
    } else {
      // Sleepers accumulate linearly up to the sleeper-credit cap — the
      // interactivity boost that protects light host processes.
      col_counter_[i] = std::min(col_counter_[i] + refill,
                                 sched_.sleep_credit_multiplier * refill);
    }
  }
}

double Machine::converge_counter(double counter, double cap, double refill,
                                 std::int64_t k) {
  if (k <= 0) return counter;
  return std::min(cap, counter + refill * static_cast<double>(k));
}

void Machine::run_until(sim::SimTime until) {
  FGCS_ASSERT(until >= now_);
  while (now_ < until) {
    step_tick(until);
  }
}

void Machine::step_tick(sim::SimTime until) {
  const sim::SimDuration tick = sched_.tick;
  const std::size_t n = col_state_.size();
  constexpr std::size_t kNoRunner = std::numeric_limits<std::size_t>::max();

  // 1. Wake sleepers whose deadline has passed: the sleep phase is over,
  // so pull the next phase from the program.
  for (std::size_t i = 0; i < n; ++i) {
    if (col_state_[i] == ProcState::kSleeping && col_sleep_until_[i] <= now_) {
      advance_phase(procs_[i]);
    }
  }

  // 2. Select the runnable process with the highest goodness.
  std::size_t runner = kNoRunner;
  bool any_runnable = false;
  std::size_t runnable_count = 0;
  for (int attempt = 0; attempt < 2 && runner == kNoRunner; ++attempt) {
    double best = 0.0;
    any_runnable = false;
    runnable_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (col_state_[i] != ProcState::kRunnable) continue;
      any_runnable = true;
      ++runnable_count;
      const double g = sched_.goodness(col_counter_[i], col_nice_[i]);
      if (g <= 0.0) continue;
      // Round-robin tie-break: older last_run_seq wins on equal goodness.
      if (runner == kNoRunner || g > best ||
          (g == best && col_last_seq_[i] < col_last_seq_[runner])) {
        best = g;
        runner = i;
      }
    }
    if (runner == kNoRunner && any_runnable) {
      // Epoch boundary: all runnable credit exhausted.
      recalc_counters();
    } else {
      break;
    }
  }

  if (runner == kNoRunner) {
    // CPU idle. Fast-forward to the next wake-up (or `until`), crediting
    // sleepers with the epoch recalculations they would have received.
    sim::SimTime next_wake = until;
    for (std::size_t i = 0; i < n; ++i) {
      if (col_state_[i] == ProcState::kSleeping) {
        next_wake = std::min(next_wake, col_sleep_until_[i]);
      }
    }
    // Advance at least one tick, in whole ticks.
    sim::SimDuration gap = next_wake - now_;
    if (gap < tick) gap = tick;
    const std::int64_t k = gap.as_micros() / tick.as_micros();
    const sim::SimDuration skipped = tick * k;
    for (std::size_t i = 0; i < n; ++i) {
      if (col_state_[i] == ProcState::kExited) continue;
      const double refill = sched_.refill_ticks(col_nice_[i]);
      col_counter_[i] = converge_counter(
          col_counter_[i], sched_.sleep_credit_multiplier * refill, refill,
          k);
    }
    totals_.idle += skipped;
    now_ += skipped;
    if (auto* o = obs::observer()) {
      o->on_machine_tick(last_runner_ != -1, 0);
      if (k > 1) o->on_machine_ticks_skipped(static_cast<std::uint64_t>(k - 1));
    }
    last_runner_ = -1;
    return;
  }

  // 3. Run the winner at the current memory efficiency — for one tick, or,
  // with fast_forward on, for as many ticks as the scheduling decision
  // provably cannot change (no wake-up, no timeslice/phase expiry, no
  // contender overtaking the winner). The jump replays the exact per-tick
  // arithmetic, so the machine state after k fast-forwarded ticks is
  // bit-identical to k forced single ticks.
  Process& rp = procs_[runner];
  const double eff = current_efficiency();
  const sim::SimDuration progress = tick * eff;  // one tick's work
  RunPlan plan;
  if (sched_.fast_forward) {
    plan = plan_run_ticks(runner, until, progress,
                          /*sole_runnable=*/runnable_count == 1);
  } else {
    plan.ticks = 1;
    plan.counter_after = std::max(0.0, col_counter_[runner] - 1.0);
  }
  const std::int64_t k = plan.ticks;

  if (eff < 1.0) thrash_time_ += tick * k;
  rp.phase_done_ += progress * k;
  rp.cpu_time_ += progress * k;
  col_counter_[runner] = plan.counter_after;
  // A sole-runnable jump may cross epoch boundaries; every other live
  // process receives the same number of recalculations it would have
  // seen per-tick. Their branch of recalc_counters() is the capped
  // linear refill, which reaches a float fixed point — stop replaying
  // once it does.
  if (plan.recalcs > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (i == runner || col_state_[i] == ProcState::kExited) continue;
      const double refill = sched_.refill_ticks(col_nice_[i]);
      const double cap = sched_.sleep_credit_multiplier * refill;
      double c = col_counter_[i];
      for (std::int64_t r = 0; r < plan.recalcs; ++r) {
        const double next = std::min(c + refill, cap);
        if (next == c) break;
        c = next;
      }
      col_counter_[i] = c;
    }
  }
  run_seq_ += static_cast<std::uint64_t>(k);
  col_last_seq_[runner] = run_seq_;

  switch (rp.kind()) {
    case ProcessKind::kHost:
      totals_.host += progress * k;
      break;
    case ProcessKind::kGuest:
      totals_.guest += progress * k;
      break;
    case ProcessKind::kSystem:
      totals_.system += progress * k;
      break;
  }
  // Time lost to page faults shows up as non-CPU (I/O wait -> idle).
  totals_.idle += (tick - progress) * k;

  if (auto* o = obs::observer()) {
    o->on_machine_tick(static_cast<std::int64_t>(rp.pid()) != last_runner_,
                       runnable_count);
    if (k > 1) o->on_machine_ticks_skipped(static_cast<std::uint64_t>(k - 1));
  }
  last_runner_ = static_cast<std::int64_t>(rp.pid());

  // A completing phase is stamped with the *start* of its final tick,
  // exactly as per-tick execution would: advance the clock to that tick
  // first, finish the phase, then consume the tick itself.
  now_ += tick * (k - 1);
  if (rp.phase_done_ >= rp.current_phase_.amount) {
    advance_phase(rp);
  }

  now_ += tick;
}

Machine::RunPlan Machine::plan_run_ticks(
    std::size_t runner, sim::SimTime until,
    sim::SimDuration per_tick_progress, bool sole_runnable) const {
  const std::int64_t tick_us = sched_.tick.as_micros();
  const auto ceil_ticks = [tick_us](sim::SimDuration d) {
    return (d.as_micros() + tick_us - 1) / tick_us;
  };
  const std::size_t n = col_state_.size();

  // Exact (integer-time) bounds: the run_until horizon, the next sleeper
  // wake-up, and the runner's phase completion.
  std::int64_t bound = std::max<std::int64_t>(1, ceil_ticks(until - now_));
  for (std::size_t i = 0; i < n; ++i) {
    if (col_state_[i] == ProcState::kSleeping) {
      // The wake sweep already woke deadlines <= now_, so this is > 0.
      bound = std::min(bound, ceil_ticks(col_sleep_until_[i] - now_));
    }
  }
  const Process& rp = procs_[runner];
  if (per_tick_progress > sim::SimDuration::zero()) {
    const sim::SimDuration remaining =
        rp.current_phase_.amount - rp.phase_done_;
    bound = std::min(
        bound, (remaining.as_micros() + per_tick_progress.as_micros() - 1) /
                   per_tick_progress.as_micros());
  }
  bound = std::max<std::int64_t>(1, bound);

  // Timeslice decay and contender overtake are float decisions; replay
  // them tick-by-tick on a scratch counter so the predicted switch point
  // lands on exactly the tick the forced per-tick scheduler would pick.
  double best_other = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == runner || col_state_[i] != ProcState::kRunnable) continue;
    best_other =
        std::max(best_other, sched_.goodness(col_counter_[i], col_nice_[i]));
  }

  const double refill = sched_.refill_ticks(col_nice_[runner]);
  RunPlan plan;
  double counter = col_counter_[runner];
  std::int64_t t = 0;
  for (;;) {
    ++t;
    counter = std::max(0.0, counter - 1.0);
    if (t == bound) break;
    const double g = sched_.goodness(counter, col_nice_[runner]);
    if (sole_runnable) {
      // No contender can be selected before the bound, so the jump may
      // cross epoch boundaries: when the runner's credit is exhausted,
      // the next selection recalculates and picks it again (its
      // post-refill goodness is positive). Replay that recalculation
      // here; the matching sleeper updates are applied at commit.
      if (g <= 0.0) {
        counter = counter / 2.0 + refill;
        ++plan.recalcs;
      }
    } else {
      // g == best_other also stops the run: the tie-break prefers the
      // process that ran least recently, and the runner just ran.
      if (g <= 0.0 || g <= best_other) break;
    }
  }
  plan.ticks = t;
  plan.counter_after = counter;
  return plan;
}

}  // namespace fgcs::os

#include "fgcs/os/machine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fgcs/obs/observer.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::os {

double CpuTotals::host_usage(const CpuTotals& earlier, const CpuTotals& later) {
  const sim::SimDuration wall = later.total() - earlier.total();
  if (wall <= sim::SimDuration::zero()) return 0.0;
  const sim::SimDuration host_cpu =
      (later.host - earlier.host) + (later.system - earlier.system);
  return host_cpu / wall;
}

double CpuTotals::guest_usage(const CpuTotals& earlier,
                              const CpuTotals& later) {
  const sim::SimDuration wall = later.total() - earlier.total();
  if (wall <= sim::SimDuration::zero()) return 0.0;
  return (later.guest - earlier.guest) / wall;
}

Machine::Machine(SchedulerParams sched, MemoryParams mem, std::uint64_t seed)
    : sched_(std::move(sched)), mem_(mem), rng_(seed, {0x4d41'4348u}) {
  sched_.validate();
  mem_.validate();
}

ProcessId Machine::spawn(ProcessSpec spec) {
  const auto pid = static_cast<ProcessId>(procs_.size());
  Process p(pid, std::move(spec), now_, rng_.child(pid));
  // New processes start with a fresh timeslice, runnable, in their first
  // phase.
  p.counter_ticks_ = sched_.refill_ticks(p.nice_);
  procs_.push_back(std::move(p));
  advance_phase(procs_.back());  // pull the first phase from the program
  return pid;
}

Process& Machine::live_process(ProcessId pid, const char* op) {
  fgcs::require(pid < procs_.size(),
                std::string(op) + ": no such pid " + std::to_string(pid));
  Process& p = procs_[pid];
  fgcs::require(p.state_ != ProcState::kExited,
                std::string(op) + ": process already exited");
  return p;
}

void Machine::renice(ProcessId pid, int nice) {
  fgcs::require(nice >= 0 && nice <= 19, "renice: nice must be in [0, 19]");
  Process& p = live_process(pid, "renice");
  p.nice_ = nice;
  // Credit above the new cap is clipped (renicing down sheds privilege).
  p.counter_ticks_ = std::min(
      p.counter_ticks_,
      sched_.sleep_credit_multiplier * sched_.refill_ticks(nice));
}

void Machine::suspend(ProcessId pid) {
  Process& p = live_process(pid, "suspend");
  if (p.state_ == ProcState::kSuspended) return;
  p.was_runnable_before_suspend_ = (p.state_ == ProcState::kRunnable);
  p.state_ = ProcState::kSuspended;
}

void Machine::resume(ProcessId pid) {
  Process& p = live_process(pid, "resume");
  if (p.state_ != ProcState::kSuspended) return;
  // If the sleep deadline passed while suspended, the wake sweep at the
  // next tick advances the phase.
  p.state_ = p.was_runnable_before_suspend_ ? ProcState::kRunnable
                                            : ProcState::kSleeping;
}

void Machine::terminate(ProcessId pid) {
  Process& p = live_process(pid, "terminate");
  p.state_ = ProcState::kExited;
  p.exit_time_ = now_;
}

const Process& Machine::process(ProcessId pid) const {
  fgcs::require(pid < procs_.size(),
                "process(): no such pid " + std::to_string(pid));
  return procs_[pid];
}

std::size_t Machine::live_count() const {
  std::size_t n = 0;
  for (const auto& p : procs_) {
    if (p.state_ != ProcState::kExited) ++n;
  }
  return n;
}

double Machine::free_memory_mb() const {
  double resident = 0.0;
  for (const auto& p : procs_) {
    if (p.state_ != ProcState::kExited && p.state_ != ProcState::kSuspended) {
      resident += p.resident_mb();
    }
  }
  return std::max(0.0, mem_.ram_mb - mem_.kernel_mb - resident);
}

double Machine::active_working_set_mb() const {
  double ws = 0.0;
  for (const auto& p : procs_) {
    if (p.state_ != ProcState::kExited && p.state_ != ProcState::kSuspended) {
      ws += p.working_set_mb();
    }
  }
  return ws;
}

void Machine::advance_phase(Process& p) {
  // Pull phases until we land on one with work to do (or the process
  // exits). A guard bounds pathological programs that emit endless
  // zero-length phases.
  for (int guard = 0; guard < 1000; ++guard) {
    const Phase phase = p.spec_.program(p.rng_);
    p.current_phase_ = phase;
    p.phase_done_ = sim::SimDuration::zero();
    switch (phase.kind) {
      case Phase::Kind::kExit:
        p.state_ = ProcState::kExited;
        p.exit_time_ = now_;
        return;
      case Phase::Kind::kCompute:
        if (phase.amount > sim::SimDuration::zero()) {
          p.state_ = ProcState::kRunnable;
          return;
        }
        break;  // zero work: pull the next phase
      case Phase::Kind::kSleep:
        if (phase.amount > sim::SimDuration::zero()) {
          p.state_ = ProcState::kSleeping;
          p.sleep_until_ = now_ + phase.amount;
          return;
        }
        break;
    }
  }
  FGCS_ASSERT(!"phase program emitted 1000 empty phases");
}

void Machine::recalc_counters() {
  for (auto& p : procs_) {
    if (p.state_ == ProcState::kExited) continue;
    const double refill = sched_.refill_ticks(p.nice_);
    if (p.state_ == ProcState::kRunnable) {
      // Linux-2.4 style: runnable credit halves and refills (bounded by
      // 2x refill through the recursion itself).
      p.counter_ticks_ = p.counter_ticks_ / 2.0 + refill;
    } else {
      // Sleepers accumulate linearly up to the sleeper-credit cap — the
      // interactivity boost that protects light host processes.
      p.counter_ticks_ = std::min(p.counter_ticks_ + refill,
                                  sched_.sleep_credit_multiplier * refill);
    }
  }
}

double Machine::converge_counter(double counter, double cap, double refill,
                                 std::int64_t k) {
  if (k <= 0) return counter;
  return std::min(cap, counter + refill * static_cast<double>(k));
}

void Machine::run_until(sim::SimTime until) {
  FGCS_ASSERT(until >= now_);
  while (now_ < until) {
    step_tick(until);
  }
}

void Machine::step_tick(sim::SimTime until) {
  const sim::SimDuration tick = sched_.tick;

  // 1. Wake sleepers whose deadline has passed: the sleep phase is over,
  // so pull the next phase from the program.
  for (auto& p : procs_) {
    if (p.state_ == ProcState::kSleeping && p.sleep_until_ <= now_) {
      advance_phase(p);
    }
  }

  // 2. Select the runnable process with the highest goodness.
  Process* runner = nullptr;
  bool any_runnable = false;
  std::size_t runnable_count = 0;
  for (int attempt = 0; attempt < 2 && runner == nullptr; ++attempt) {
    double best = 0.0;
    any_runnable = false;
    runnable_count = 0;
    for (auto& p : procs_) {
      if (p.state_ != ProcState::kRunnable) continue;
      any_runnable = true;
      ++runnable_count;
      const double g = sched_.goodness(p.counter_ticks_, p.nice_);
      if (g <= 0.0) continue;
      // Round-robin tie-break: older last_run_seq wins on equal goodness.
      if (runner == nullptr || g > best ||
          (g == best && p.last_run_seq_ < runner->last_run_seq_)) {
        best = g;
        runner = &p;
      }
    }
    if (runner == nullptr && any_runnable) {
      // Epoch boundary: all runnable credit exhausted.
      recalc_counters();
    } else {
      break;
    }
  }

  if (runner == nullptr) {
    // CPU idle. Fast-forward to the next wake-up (or `until`), crediting
    // sleepers with the epoch recalculations they would have received.
    sim::SimTime next_wake = until;
    for (const auto& p : procs_) {
      if (p.state_ == ProcState::kSleeping) {
        next_wake = std::min(next_wake, p.sleep_until_);
      }
    }
    // Advance at least one tick, in whole ticks.
    sim::SimDuration gap = next_wake - now_;
    if (gap < tick) gap = tick;
    const std::int64_t k = gap.as_micros() / tick.as_micros();
    const sim::SimDuration skipped = tick * k;
    for (auto& p : procs_) {
      if (p.state_ == ProcState::kExited) continue;
      const double refill = sched_.refill_ticks(p.nice_);
      p.counter_ticks_ = converge_counter(
          p.counter_ticks_, sched_.sleep_credit_multiplier * refill, refill,
          k);
    }
    totals_.idle += skipped;
    now_ += skipped;
    if (auto* o = obs::observer()) {
      o->on_machine_tick(last_runner_ != -1, 0);
    }
    last_runner_ = -1;
    return;
  }

  // 3. Run the winner for one tick at the current memory efficiency.
  const double eff = current_efficiency();
  if (eff < 1.0) thrash_time_ += tick;
  const sim::SimDuration progress = tick * eff;
  runner->phase_done_ += progress;
  runner->cpu_time_ += progress;
  runner->counter_ticks_ = std::max(0.0, runner->counter_ticks_ - 1.0);
  runner->last_run_seq_ = ++run_seq_;

  switch (runner->kind()) {
    case ProcessKind::kHost:
      totals_.host += progress;
      break;
    case ProcessKind::kGuest:
      totals_.guest += progress;
      break;
    case ProcessKind::kSystem:
      totals_.system += progress;
      break;
  }
  // Time lost to page faults shows up as non-CPU (I/O wait -> idle).
  totals_.idle += tick - progress;

  if (auto* o = obs::observer()) {
    o->on_machine_tick(static_cast<std::int64_t>(runner->pid()) !=
                           last_runner_,
                       runnable_count);
  }
  last_runner_ = static_cast<std::int64_t>(runner->pid());

  if (runner->phase_done_ >= runner->current_phase_.amount) {
    advance_phase(*runner);
  }

  now_ += tick;
}

}  // namespace fgcs::os

#include "fgcs/os/memory.hpp"

#include <algorithm>

#include "fgcs/util/error.hpp"

namespace fgcs::os {

MemoryParams MemoryParams::solaris_384mb() {
  MemoryParams p;
  p.ram_mb = 384.0;
  p.kernel_mb = 100.0;
  return p;
}

MemoryParams MemoryParams::linux_1gb() {
  MemoryParams p;
  p.ram_mb = 1024.0;
  p.kernel_mb = 100.0;
  return p;
}

void MemoryParams::validate() const {
  fgcs::require(ram_mb > 0, "ram_mb must be > 0");
  fgcs::require(kernel_mb >= 0 && kernel_mb < ram_mb,
                "kernel_mb must be in [0, ram_mb)");
  fgcs::require(thrash_severity >= 0, "thrash_severity must be >= 0");
  fgcs::require(efficiency_floor > 0 && efficiency_floor <= 1.0,
                "efficiency_floor must be in (0, 1]");
}

double MemoryParams::efficiency(double active_working_set_mb) const {
  const double avail = available_mb();
  if (active_working_set_mb <= avail) return 1.0;
  const double overcommit = active_working_set_mb / avail;
  const double eff = 1.0 / (1.0 + thrash_severity * (overcommit - 1.0));
  return std::max(efficiency_floor, eff);
}

}  // namespace fgcs::os

// Time-sharing scheduler parameters.
//
// The machine scheduler follows the classic Unix/Linux-2.4 "goodness"
// design, which the paper's experiments ran on:
//
//   * each process holds a tick counter (its remaining timeslice credit);
//   * the runnable process with the highest goodness runs next, where
//       goodness(p) = counter(p) > 0 ? counter(p) + nice_weight - nice(p) : 0
//   * the running process burns one counter tick per scheduler tick;
//   * when no runnable process has credit left, an epoch recalculation
//     refills every live process: counter = counter/2 + refill(nice).
//     Sleepers therefore accumulate credit up to 2 * refill(nice), which is
//     exactly the mechanism that protects interactive (mostly-sleeping)
//     host processes from a CPU-bound guest — and why host slowdown stays
//     under 5% below Th1 yet grows with host load (Figure 1).
//
// refill(nice) decreases with nice down to a single tick, so a nice-19
// guest receives ~1 tick per epoch: a small but non-zero share. That share
// is what pushes host slowdown back above 5% once host load exceeds Th2
// (Figure 1(b)), and why "always lowest priority" costs the guest ~2%
// CPU compared to default priority under light host load (Figure 3).
#pragma once

#include <string>

#include "fgcs/sim/time.hpp"

namespace fgcs::os {

struct SchedulerParams {
  /// Scheduler tick (timer interrupt period). Linux 2.4 HZ=100 -> 10 ms.
  sim::SimDuration tick = sim::SimDuration::millis(10);

  /// Timeslice refill in ticks for nice 0. refill(nice) interpolates
  /// linearly down to min_refill_ticks at nice 19.
  double base_refill_ticks = 10.0;

  /// Refill floor (every process gets at least this much per epoch).
  double min_refill_ticks = 1.0;

  /// Shape of the nice -> refill interpolation:
  ///   refill(nice) = min + (base - min) * (1 - nice/19)^gamma.
  /// gamma < 1 keeps mid-range priorities close to nice 0, reproducing the
  /// paper's Figure 2 finding that gradually lowering guest priority buys
  /// almost nothing — only nice 19 meaningfully limits the guest.
  double refill_curve_gamma = 0.35;

  /// The static-priority weight in the goodness formula.
  double goodness_nice_weight = 20.0;

  /// Sleeping processes accumulate credit up to
  /// sleep_credit_multiplier * refill(nice). Linux 2.4's recalculation
  /// (counter = counter/2 + refill) converges to 2x; Solaris TS boosts
  /// sleepers more aggressively relative to its shorter timeslices.
  double sleep_credit_multiplier = 2.0;

  /// Analytic fast-forward: while the scheduling decision cannot change
  /// (same winner, no wake-ups, no timeslice/phase expiry), the machine
  /// jumps over the intervening 10 ms ticks in one step instead of
  /// executing each. The jump replays the per-tick counter arithmetic, so
  /// machine state is bit-identical to forced per-tick execution — set
  /// false to force one tick per step (the equivalence tests compare the
  /// two modes). The idle-CPU jump predates this flag and is part of both
  /// modes' semantics.
  bool fast_forward = true;

  /// Human-readable profile name (for reports).
  std::string name = "generic";

  /// Timeslice refill for a given nice level, in ticks.
  double refill_ticks(int nice) const;

  /// Goodness of a process with the given credit and nice level.
  double goodness(double counter_ticks, int nice) const;

  /// Profile matching the paper's 1.7 GHz RedHat Linux testbed machines
  /// (thresholds Th1 = 20%, Th2 = 60%; §4).
  static SchedulerParams linux_2_4();

  /// Profile matching the paper's 300 MHz Solaris machine (§3.2.3:
  /// Th1 ~ 20%, Th2 between 22% and 57%).
  static SchedulerParams solaris_ts();

  /// Throws ConfigError if any field is out of range.
  void validate() const;
};

}  // namespace fgcs::os

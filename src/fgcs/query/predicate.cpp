#include "fgcs/query/predicate.hpp"

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <string_view>
#include <vector>

#include "fgcs/util/error.hpp"

namespace fgcs::query {

namespace {

[[noreturn]] void bad(const std::string& text, const std::string& why) {
  throw ConfigError("bad query predicate \"" + text + "\": " + why);
}

// Strict integer parse: the token must be consumed entirely, with no
// leading '+', whitespace, or base prefixes — whatever parses must
// re-render to the same token, or the parse→str fixpoint breaks.
template <typename T>
bool parse_int(std::string_view token, T& out) {
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

// Parses "[lo,hi)" into two integers.
template <typename T>
void parse_range(const std::string& text, std::string_view body, T& lo,
                 T& hi, const char* what) {
  if (body.size() < 4 || body.front() != '[' || body.back() != ')') {
    bad(text, std::string(what) + " range must look like [lo,hi)");
  }
  body.remove_prefix(1);
  body.remove_suffix(1);
  const std::size_t comma = body.find(',');
  if (comma == std::string_view::npos) {
    bad(text, std::string(what) + " range is missing its comma");
  }
  if (!parse_int(body.substr(0, comma), lo) ||
      !parse_int(body.substr(comma + 1), hi)) {
    bad(text, std::string(what) + " range bounds are not valid integers");
  }
}

}  // namespace

Predicate Predicate::parse(const std::string& text) {
  // Tokenize on runs of spaces; canonical output uses single spaces.
  std::vector<std::string_view> tokens;
  const std::string_view sv(text);
  std::size_t pos = 0;
  while (pos < sv.size()) {
    const std::size_t start = sv.find_first_not_of(' ', pos);
    if (start == std::string_view::npos) break;
    std::size_t stop = sv.find(' ', start);
    if (stop == std::string_view::npos) stop = sv.size();
    tokens.push_back(sv.substr(start, stop - start));
    pos = stop;
  }
  if (tokens.empty()) bad(text, "empty predicate (use \"all\")");

  Predicate p;
  if (tokens.size() == 1 && tokens[0] == "all") return p;
  for (const std::string_view token : tokens) {
    if (token == "all") {
      bad(text, "\"all\" cannot be combined with other clauses");
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      bad(text, "clause \"" + std::string(token) + "\" is missing '='");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "machine") {
      if (p.has_machine) bad(text, "duplicate machine clause");
      parse_range(text, value, p.machine_lo, p.machine_hi, "machine");
      p.has_machine = true;
    } else if (key == "cause") {
      if (p.has_cause) bad(text, "duplicate cause clause");
      if (value == "S3") {
        p.cause = 3;
      } else if (value == "S4") {
        p.cause = 4;
      } else if (value == "S5") {
        p.cause = 5;
      } else {
        bad(text, "cause must be S3, S4, or S5");
      }
      p.has_cause = true;
    } else if (key == "time") {
      if (p.has_time) bad(text, "duplicate time clause");
      parse_range(text, value, p.time_lo_us, p.time_hi_us, "time");
      p.has_time = true;
    } else {
      bad(text, "unknown clause \"" + std::string(key) + "\"");
    }
  }
  return p;
}

std::string Predicate::str() const {
  if (empty()) return "all";
  char buf[96];
  std::string out;
  if (has_machine) {
    std::snprintf(buf, sizeof buf, "machine=[%" PRIu32 ",%" PRIu32 ")",
                  machine_lo, machine_hi);
    out += buf;
  }
  if (has_cause) {
    if (!out.empty()) out += ' ';
    std::snprintf(buf, sizeof buf, "cause=S%d", static_cast<int>(cause));
    out += buf;
  }
  if (has_time) {
    if (!out.empty()) out += ' ';
    std::snprintf(buf, sizeof buf, "time=[%" PRId64 ",%" PRId64 ")",
                  time_lo_us, time_hi_us);
    out += buf;
  }
  return out;
}

}  // namespace fgcs::query

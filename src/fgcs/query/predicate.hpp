// Query predicates: the text format users type, the per-record match, and
// the zone-map pruning tests the scan engine uses to skip whole blocks.
//
// Grammar (clauses joined by single spaces; parse accepts any clause
// order, str() renders the canonical machine→cause→time order):
//
//   pred   := "all" | clause (" " clause)*
//   clause := "machine=[" u32 "," u32 ")"     half-open machine id range
//           | "cause=" ("S3" | "S4" | "S5")   single-cause equality
//           | "time=[" i64 "," i64 ")"        microseconds; a record
//                                             matches when its episode
//                                             overlaps the range
//
// parse(str(p)) is a fixpoint for every valid predicate — the
// query-pred fuzz target hammers exactly that property. Empty ranges
// ([a,a) or [b,a)) are valid and match nothing; at most one clause of
// each kind may appear.
#pragma once

#include <cstdint>
#include <string>

#include "fgcs/trace/format_v2.hpp"

namespace fgcs::query {

struct Predicate {
  bool has_machine = false;
  std::uint32_t machine_lo = 0;
  std::uint32_t machine_hi = 0;  // half-open
  bool has_cause = false;
  std::uint8_t cause = 3;  // 3 (S3), 4 (S4), or 5 (S5)
  bool has_time = false;
  std::int64_t time_lo_us = 0;
  std::int64_t time_hi_us = 0;  // half-open; records match by overlap

  /// Parses the text format above. Throws ConfigError on malformed
  /// input, duplicate clauses, or unknown clause names.
  static Predicate parse(const std::string& text);

  /// Canonical text rendering; "all" for the empty predicate.
  std::string str() const;

  bool empty() const { return !has_machine && !has_cause && !has_time; }

  /// Record-level match on the raw column values.
  bool matches(std::uint32_t machine, std::int64_t start_us,
               std::int64_t end_us, std::uint8_t cause_byte) const {
    if (has_machine && (machine < machine_lo || machine >= machine_hi)) {
      return false;
    }
    if (has_cause && cause_byte != cause) return false;
    if (has_time && !(start_us < time_hi_us && end_us > time_lo_us)) {
      return false;
    }
    return true;
  }

  /// Block-level machine pruning against a footer index entry: false
  /// means no record in [min_machine, max_machine] can match.
  bool may_match_machines(std::uint32_t min_machine,
                          std::uint32_t max_machine) const {
    if (!has_machine) return true;
    return min_machine < machine_hi && max_machine >= machine_lo;
  }

  /// Block-level time/cause pruning against a zone map: false means no
  /// record summarized by `zone` can match.
  bool may_match_zone(const trace::TraceView::BlockZone& zone) const {
    if (has_cause &&
        (zone.cause_mask & static_cast<std::uint8_t>(1u << (cause - 3))) ==
            0) {
      return false;
    }
    if (has_time && !(zone.min_start_us < time_hi_us &&
                      zone.max_end_us > time_lo_us)) {
      return false;
    }
    return true;
  }
};

}  // namespace fgcs::query

#include "fgcs/query/engine.hpp"

#include <dirent.h>

#include <algorithm>
#include <array>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "fgcs/trace/trace_set.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::query {

namespace {

using monitor::AvailabilityState;
using trace::TraceView;
using trace::UnavailabilityRecord;

// One machine's semi-Markov evaluation, deferred so the merge can fold
// availability/occurrence sums in global machine order (float addition
// is order-sensitive; the analyzer-side baseline folds machine 0..n-1).
struct TrainEntry {
  std::uint32_t machine = 0;
  double availability = 0.0;
  double occurrences = 0.0;
  std::uint64_t samples = 0;
};

// Everything one segment scan produces. Interval lengths and training
// entries are kept as values (O(shard)) rather than folded sums so the
// sequential merge can replay the materializing code's exact left-to-
// right addition order.
struct SegmentPartial {
  ScanStats stats;
  bool any = false;  // any matched record
  std::uint32_t first_machine = 0;
  std::uint32_t last_machine = 0;
  std::uint64_t machines_with_records = 0;
  // Table 2 folds over this segment's machines: total, cpu, mem, urr.
  bool t2_any = false;
  std::array<int, 4> t2_min{};
  std::array<int, 4> t2_max{};
  std::array<std::int64_t, 4> t2_sum{};
  std::uint64_t urr_total = 0;
  std::uint64_t urr_reboots = 0;
  bool pct_any = false;
  std::array<double, 3> pct_min{};  // cpu, mem, urr
  std::array<double, 3> pct_max{};
  // Figure 6 interval lengths in emission (canonical) order.
  std::vector<double> weekday_hours;
  std::vector<double> weekend_hours;
  // Figure 7 per-day hour-of-day counts (order-independent 1.0 adds).
  std::vector<std::array<double, 24>> day_counts;
  // Training-scan entries in ascending machine order.
  std::vector<TrainEntry> train;
  std::exception_ptr error;
};

// Per-segment scratch reused across machine groups: steady-state scans
// allocate only when a machine outgrows every previous one.
struct MachineScratch {
  std::vector<UnavailabilityRecord> records;
  std::vector<double> gaps;
  std::vector<double> sorted_gaps;
};

struct ScanContext {
  const QueryOptions* opt = nullptr;
  sim::SimTime horizon_start;
  sim::SimTime horizon_end;
  int days = 0;
};

constexpr double kFiveMinHours = 5.0 / 60.0;

bool valid_cause_byte(std::uint8_t cause) { return cause >= 3 && cause <= 5; }

// Mirrors load_trace_v2_salvage's per-record semantic validation: a
// salvaged block is committed bytes, but its records still get the same
// scrutiny the salvage loader applies before trusting them.
bool salvage_record_ok(const UnavailabilityRecord& r) {
  if (r.end < r.start) return false;
  if (!(r.host_cpu >= 0.0 && r.host_cpu <= 1.0)) return false;  // non-finite fails
  if (!(r.free_mem_mb >= 0.0)) return false;
  return true;
}

// Folds one finished machine group into the segment partial, replicating
// core::TraceAnalyzer's per-machine arithmetic and the semi-Markov
// predictor's per-machine evaluation exactly.
void finalize_machine(SegmentPartial& part, MachineScratch& scratch,
                      const ScanContext& ctx) {
  auto& recs = scratch.records;
  if (recs.empty()) return;
  // Normalize to canonical order the way TraceSet / TraceIndex do — a
  // no-op for spill segments, whose per-machine records already arrive
  // time-sorted.
  if (!std::is_sorted(recs.begin(), recs.end(),
                      trace::TraceSet::canonical_less)) {
    std::sort(recs.begin(), recs.end(), trace::TraceSet::canonical_less);
  }
  const std::uint32_t m = recs.front().machine;
  if (!part.any) {
    part.first_machine = m;
    part.any = true;
  }
  part.last_machine = m;
  ++part.machines_with_records;

  // --- Table 2 (TraceAnalyzer::table2's per-machine Counts) ----------
  int total = 0, cpu = 0, mem = 0, urr = 0;
  for (const auto& r : recs) {
    ++total;
    switch (r.cause) {
      case AvailabilityState::kS3CpuUnavailable:
        ++cpu;
        break;
      case AvailabilityState::kS4MemoryThrashing:
        ++mem;
        break;
      case AvailabilityState::kS5MachineUnavailable:
        ++urr;
        ++part.urr_total;
        if (r.is_reboot()) ++part.urr_reboots;
        break;
      default:
        break;  // the scan layer already rejected invalid cause bytes
    }
  }
  const std::array<int, 4> counts{total, cpu, mem, urr};
  if (!part.t2_any) {
    part.t2_min = counts;
    part.t2_max = counts;
    part.t2_any = true;
  } else {
    for (std::size_t k = 0; k < 4; ++k) {
      part.t2_min[k] = std::min(part.t2_min[k], counts[k]);
      part.t2_max[k] = std::max(part.t2_max[k], counts[k]);
    }
  }
  for (std::size_t k = 0; k < 4; ++k) part.t2_sum[k] += counts[k];
  if (total > 0) {
    const double t = total;
    const std::array<double, 3> pcts{cpu / t, mem / t, urr / t};
    if (!part.pct_any) {
      part.pct_min = pcts;
      part.pct_max = pcts;
      part.pct_any = true;
    } else {
      for (std::size_t k = 0; k < 3; ++k) {
        part.pct_min[k] = std::min(part.pct_min[k], pcts[k]);
        part.pct_max[k] = std::max(part.pct_max[k], pcts[k]);
      }
    }
  }

  // --- Figure 6 (TraceSet::availability_intervals' merged gap walk) --
  sim::SimTime prev_end = recs.front().end;
  for (std::size_t i = 1; i < recs.size(); ++i) {
    const auto& r = recs[i];
    if (r.start > prev_end) {
      const double h = (r.start - prev_end).as_hours();
      if (ctx.opt->calendar.is_weekend(prev_end)) {
        part.weekend_hours.push_back(h);
      } else {
        part.weekday_hours.push_back(h);
      }
    }
    prev_end = std::max(prev_end, r.end);
  }

  // --- Training scan (SemiMarkovPredictor::predict_* replicated) -----
  const sim::SimTime q_start =
      ctx.opt->training_start.value_or(ctx.horizon_end);
  const bool want_weekend = ctx.opt->calendar.is_weekend(q_start);
  auto& gaps = scratch.gaps;
  gaps.clear();
  for (std::size_t i = 1; i < recs.size(); ++i) {
    if (recs[i].start >= q_start) break;  // history only
    const sim::SimTime gap_start = recs[i - 1].end;
    const sim::SimTime gap_end = recs[i].start;
    if (gap_end <= gap_start) continue;
    if (ctx.opt->calendar.is_weekend(gap_start) != want_weekend) continue;
    gaps.push_back((gap_end - gap_start).as_hours());
  }
  // TraceIndex::last_end_before(m, q_start): the latest episode starting
  // at or before q_start; horizon_start when none exists.
  bool inside = false;
  sim::SimTime last_end = ctx.horizon_start;
  auto it = std::lower_bound(
      recs.begin(), recs.end(), q_start,
      [](const UnavailabilityRecord& r, sim::SimTime t) {
        return r.start <= t;
      });
  if (it != recs.begin()) {
    --it;
    last_end = it->end;
    if (it->end > q_start) inside = true;
  }
  TrainEntry entry;
  entry.machine = m;
  entry.samples = gaps.size();
  const double window_h = ctx.opt->training_window.as_hours();
  if (inside) {
    entry.availability = 0.0;  // the machine is down right now
  } else {
    scratch.sorted_gaps.assign(gaps.begin(), gaps.end());
    std::sort(scratch.sorted_gaps.begin(), scratch.sorted_gaps.end());
    const double age_h = (q_start - last_end).as_hours();
    entry.availability = predict::conditional_availability(
        scratch.sorted_gaps, age_h, window_h, ctx.opt->semi_markov);
  }
  double gap_sum = 0.0;
  for (const double g : gaps) gap_sum += g;
  entry.occurrences =
      predict::renewal_occurrences(gap_sum, gaps.size(), window_h);
  part.train.push_back(entry);

  recs.clear();
}

SegmentPartial scan_segment(const TraceView& view, const ScanContext& ctx) {
  SegmentPartial part;
  part.day_counts.assign(static_cast<std::size_t>(ctx.days), {});
  const Predicate& pred = ctx.opt->predicate;
  MachineScratch scratch;
  bool have_current = false;
  std::uint32_t current = 0;
  const std::int64_t hour_us = sim::SimDuration::hours(1).as_micros();
  part.stats.blocks_total = view.block_count();
  for (std::size_t b = 0; b < view.block_count(); ++b) {
    const bool indexed = view.block_indexed(b);
    if (!ctx.opt->disable_pruning) {
      // Machine ranges come from the classic footer (absent only on
      // salvaged opens); time/cause zones need the zone section.
      if (!view.salvaged() &&
          !pred.may_match_machines(view.block_min_machine(b),
                                   view.block_max_machine(b))) {
        ++part.stats.blocks_skipped;
        continue;
      }
      if (indexed && !pred.may_match_zone(view.block_zone(b))) {
        ++part.stats.blocks_skipped;
        continue;
      }
    }
    ++part.stats.blocks_scanned;
    if (!indexed) ++part.stats.blocks_unindexed;
    const TraceView::ColumnSpans cols = view.columns(b);
    part.stats.records_scanned += cols.count;
    for (std::uint64_t i = 0; i < cols.count; ++i) {
      const std::uint32_t machine = cols.machine_at(i);
      const std::int64_t start_us = cols.start_at(i);
      const std::int64_t end_us = cols.end_at(i);
      const std::uint8_t cause = cols.cause_at(i);
      if (!valid_cause_byte(cause)) {
        if (view.salvaged()) continue;  // the salvage loader drops these
        throw IoError("v2 segment block " + std::to_string(b) + " record " +
                      std::to_string(i) + ": invalid cause byte");
      }
      if (!pred.matches(machine, start_us, end_us, cause)) continue;
      UnavailabilityRecord r;
      r.machine = machine;
      r.start = sim::SimTime::from_micros(start_us);
      r.end = sim::SimTime::from_micros(end_us);
      r.cause = static_cast<AvailabilityState>(cause);
      r.host_cpu = cols.host_cpu_at(i);
      r.free_mem_mb = cols.free_mem_at(i);
      if (view.salvaged() && !salvage_record_ok(r)) continue;
      ++part.stats.records_matched;
      if (!have_current || machine != current) {
        if (have_current) {
          if (machine < current) {
            throw ConfigError(
                "segment records are not machine-grouped in ascending "
                "order (machine " +
                std::to_string(machine) + " after " +
                std::to_string(current) +
                "); materialize with load_trace() instead");
          }
          finalize_machine(part, scratch, ctx);
        }
        current = machine;
        have_current = true;
      }
      scratch.records.push_back(r);
      // --- Figure 7 counts (TraceAnalyzer::hourly, order-independent) -
      const sim::SimTime start = std::max(r.start, ctx.horizon_start);
      const sim::SimTime end =
          std::min(std::max(r.end, start + sim::SimDuration::micros(1)),
                   ctx.horizon_end);
      const std::int64_t first_hour = start.as_micros() / hour_us;
      const std::int64_t last_hour = (end.as_micros() - 1) / hour_us;
      for (std::int64_t hh = first_hour; hh <= last_hour; ++hh) {
        const auto day = static_cast<std::size_t>(hh / 24);
        if (day >= part.day_counts.size()) break;
        part.day_counts[day][static_cast<std::size_t>(hh % 24)] += 1.0;
      }
    }
  }
  if (have_current) finalize_machine(part, scratch, ctx);
  if (ctx.opt->release_pages) view.release_pages();
  return part;
}

// Sequential in-segment-order fold of partials into the final result —
// the single place the deterministic merge order lives.
class Merger {
 public:
  Merger(const ScanContext& ctx, std::uint32_t machines)
      : ctx_(ctx), machines_(machines) {
    day_counts_.assign(static_cast<std::size_t>(ctx.days), {});
    // A machine with no (matched) records evaluates to the same
    // prediction everywhere: no gap samples, age measured from the
    // horizon start, never inside an episode.
    const sim::SimTime q_start =
        ctx_.opt->training_start.value_or(ctx_.horizon_end);
    const double age_h = (q_start - ctx_.horizon_start).as_hours();
    default_availability_ = predict::conditional_availability(
        {}, age_h, ctx_.opt->training_window.as_hours(),
        ctx_.opt->semi_markov);
  }

  void fold(const SegmentPartial& p) {
    if (p.any) {
      if (seg_any_ && p.first_machine <= last_machine_) {
        throw ConfigError(
            "segments overlap or are out of order in machine ranges "
            "(machine " +
            std::to_string(p.first_machine) + " after " +
            std::to_string(last_machine_) + ")");
      }
      seg_any_ = true;
      last_machine_ = p.last_machine;
    }
    stats_.blocks_total += p.stats.blocks_total;
    stats_.blocks_scanned += p.stats.blocks_scanned;
    stats_.blocks_skipped += p.stats.blocks_skipped;
    stats_.blocks_unindexed += p.stats.blocks_unindexed;
    stats_.records_scanned += p.stats.records_scanned;
    stats_.records_matched += p.stats.records_matched;

    if (p.t2_any) {
      if (!t2_any_) {
        t2_min_ = p.t2_min;
        t2_max_ = p.t2_max;
        t2_any_ = true;
      } else {
        for (std::size_t k = 0; k < 4; ++k) {
          t2_min_[k] = std::min(t2_min_[k], p.t2_min[k]);
          t2_max_[k] = std::max(t2_max_[k], p.t2_max[k]);
        }
      }
      for (std::size_t k = 0; k < 4; ++k) t2_sum_[k] += p.t2_sum[k];
    }
    urr_total_ += p.urr_total;
    urr_reboots_ += p.urr_reboots;
    machines_with_records_ += p.machines_with_records;
    if (p.pct_any) {
      if (!pct_any_) {
        pct_min_ = p.pct_min;
        pct_max_ = p.pct_max;
        pct_any_ = true;
      } else {
        for (std::size_t k = 0; k < 3; ++k) {
          pct_min_[k] = std::min(pct_min_[k], p.pct_min[k]);
          pct_max_[k] = std::max(pct_max_[k], p.pct_max[k]);
        }
      }
    }

    for (const double h : p.weekday_hours) fold_interval(weekday_, h);
    for (const double h : p.weekend_hours) fold_interval(weekend_, h);

    for (std::size_t d = 0; d < day_counts_.size(); ++d) {
      for (std::size_t h = 0; h < 24; ++h) {
        day_counts_[d][h] += p.day_counts[d][h];
      }
    }

    for (const TrainEntry& e : p.train) {
      while (next_machine_ < e.machine) fold_default_machine();
      ++training_.machines;
      training_.availability_sum += e.availability;
      training_.occurrences_sum += e.occurrences;
      training_.gap_samples += e.samples;
      if (e.samples >= ctx_.opt->semi_markov.min_samples) {
        ++training_.machines_with_history;
      }
      next_machine_ = e.machine + 1;
    }
  }

  QueryResult finish() {
    while (next_machine_ < machines_) fold_default_machine();

    QueryResult out;
    out.stats = stats_;

    // Table 2: TraceAnalyzer::table2's fold over machines 0..n-1 — the
    // min/max over {group counts} ∪ {0 for each recordless machine},
    // and mean = (exact integer sum) / n.
    out.table2.machines = machines_;
    const bool zeros = machines_with_records_ < machines_;
    auto range = [&](std::size_t k) {
      core::Table2Stats::Range r;
      if (!t2_any_) return r;  // every machine empty: 0/0/0.0
      r.min = zeros ? std::min(t2_min_[k], 0) : t2_min_[k];
      r.max = zeros ? std::max(t2_max_[k], 0) : t2_max_[k];
      r.mean = static_cast<double>(t2_sum_[k]) / static_cast<double>(machines_);
      return r;
    };
    out.table2.total = range(0);
    out.table2.cpu_contention = range(1);
    out.table2.mem_contention = range(2);
    out.table2.urr = range(3);
    if (pct_any_) {
      out.table2.cpu_pct_min = pct_min_[0];
      out.table2.cpu_pct_max = pct_max_[0];
      out.table2.mem_pct_min = pct_min_[1];
      out.table2.mem_pct_max = pct_max_[1];
      out.table2.urr_pct_min = pct_min_[2];
      out.table2.urr_pct_max = pct_max_[2];
    }
    if (urr_total_ > 0) {
      out.table2.reboot_fraction_of_urr = static_cast<double>(urr_reboots_) /
                                          static_cast<double>(urr_total_);
    }

    out.intervals.weekday = summarize(weekday_);
    out.intervals.weekend = summarize(weekend_);

    // Figure 7: identical day-count matrix, identical binner.
    stats::HourOfDayBinner weekday_binner, weekend_binner;
    int wd = 0, we = 0;
    for (int d = 0; d < ctx_.days; ++d) {
      if (ctx_.opt->calendar.is_weekend_day(d)) {
        weekend_binner.add_day(day_counts_[static_cast<std::size_t>(d)]);
        ++we;
      } else {
        weekday_binner.add_day(day_counts_[static_cast<std::size_t>(d)]);
        ++wd;
      }
    }
    out.hourly.weekday_days = wd;
    out.hourly.weekend_days = we;
    for (std::size_t h = 0; h < 24; ++h) {
      const auto w = weekday_binner.hour(h);
      out.hourly.weekday[h] = {w.mean, w.min, w.max, w.stddev};
      const auto e = weekend_binner.hour(h);
      out.hourly.weekend[h] = {e.mean, e.min, e.max, e.stddev};
    }
    out.relative_deviation_weekday = relative_deviation(out.hourly.weekday);
    out.relative_deviation_weekend = relative_deviation(out.hourly.weekend);

    out.training = training_;
    return out;
  }

 private:
  // Running Figure 6 accumulator: integer threshold counts (exact) plus
  // the emission-order sum (replayed left-to-right, matching the
  // analyzer's canonical-order sum).
  struct ClassAcc {
    std::uint64_t n = 0;
    std::uint64_t le_5min = 0;
    std::uint64_t le_2h = 0;
    std::uint64_t le_4h = 0;
    std::uint64_t le_6h = 0;
    double sum = 0.0;
  };

  static void fold_interval(ClassAcc& acc, double h) {
    ++acc.n;
    if (h <= kFiveMinHours) ++acc.le_5min;
    if (h <= 2.0) ++acc.le_2h;
    if (h <= 4.0) ++acc.le_4h;
    if (h <= 6.0) ++acc.le_6h;
    acc.sum += h;
  }

  static IntervalClassSummary summarize(const ClassAcc& acc) {
    IntervalClassSummary s;
    s.count = acc.n;
    if (acc.n == 0) return s;
    const auto n = static_cast<double>(acc.n);
    // stats::ecdf_at is count/size; mass_between is F(hi) - F(lo). The
    // same divisions and subtractions on the same integer counts are
    // bit-identical to evaluating the materialized ECDF.
    const double f5 = static_cast<double>(acc.le_5min) / n;
    const double f2 = static_cast<double>(acc.le_2h) / n;
    const double f4 = static_cast<double>(acc.le_4h) / n;
    const double f6 = static_cast<double>(acc.le_6h) / n;
    s.mean_hours = acc.sum / n;
    s.frac_under_5min = f5;
    s.frac_5min_to_2h = f2 - f5;
    s.frac_2h_to_4h = f4 - f2;
    s.frac_4h_to_6h = f6 - f4;
    return s;
  }

  static double relative_deviation(
      const std::array<core::HourlyPattern::HourRow, 24>& rows) {
    double sum = 0.0;
    int n = 0;
    for (const auto& row : rows) {
      if (row.mean < 0.5) continue;  // skip near-empty hours
      sum += row.stddev / row.mean;
      ++n;
    }
    return n == 0 ? 0.0 : sum / n;
  }

  void fold_default_machine() {
    ++training_.machines;
    training_.availability_sum += default_availability_;
    ++next_machine_;
  }

  const ScanContext& ctx_;
  std::uint32_t machines_;
  double default_availability_ = 0.0;

  ScanStats stats_;
  bool seg_any_ = false;
  std::uint32_t last_machine_ = 0;

  bool t2_any_ = false;
  std::array<int, 4> t2_min_{};
  std::array<int, 4> t2_max_{};
  std::array<std::int64_t, 4> t2_sum_{};
  std::uint64_t urr_total_ = 0;
  std::uint64_t urr_reboots_ = 0;
  std::uint64_t machines_with_records_ = 0;
  bool pct_any_ = false;
  std::array<double, 3> pct_min_{};
  std::array<double, 3> pct_max_{};

  ClassAcc weekday_;
  ClassAcc weekend_;
  std::vector<std::array<double, 24>> day_counts_;

  TrainingScan training_;
  std::uint32_t next_machine_ = 0;
};

}  // namespace

SegmentQuery::SegmentQuery(const std::vector<std::string>& paths) {
  fgcs::require(!paths.empty(), "SegmentQuery needs at least one segment");
  views_.reserve(paths.size());
  for (const auto& path : paths) {
    bool salvage = false;
    try {
      views_.emplace_back(path);
    } catch (const IoError&) {
      // Damaged (torn / footerless) segment: fall back to the chain
      // rescan. A path that cannot be opened at all rethrows from here.
      views_.push_back(trace::TraceView::open_salvaged(path));
      salvage = true;
    }
    if (salvage) ++salvaged_;
    const auto& a = views_.front();
    const auto& b = views_.back();
    if (b.machine_count() != a.machine_count() ||
        b.horizon_start() != a.horizon_start() ||
        b.horizon_end() != a.horizon_end()) {
      throw ConfigError("segment header disagrees with the first segment: " +
                        path);
    }
  }
}

std::vector<std::string> SegmentQuery::list_segments(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) throw IoError("cannot open directory: " + dir);
  std::vector<std::string> names;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    constexpr const char* kSuffix = ".trc2";
    if (name.size() > 5 && name.compare(name.size() - 5, 5, kSuffix) == 0) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  if (names.empty()) throw IoError("no *.trc2 segments in: " + dir);
  std::sort(names.begin(), names.end());
  std::vector<std::string> paths;
  paths.reserve(names.size());
  for (const auto& name : names) paths.push_back(dir + "/" + name);
  return paths;
}

QueryResult SegmentQuery::run(const QueryOptions& options) const {
  ScanContext ctx;
  ctx.opt = &options;
  ctx.horizon_start = horizon_start();
  ctx.horizon_end = horizon_end();
  ctx.days = std::max(
      1, options.calendar.day_index(ctx.horizon_end -
                                    sim::SimDuration::micros(1)) +
             1);

  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::ThreadPool::global();
  Merger merger(ctx, machine_count());

  // Segments scan in parallel but merge sequentially in segment order.
  // Waves bound how many partials (each O(shard)) are alive at once, so
  // peak memory tracks the worker count, not the segment count.
  const std::size_t wave =
      std::max<std::size_t>(2, 2 * std::max<std::size_t>(
                                       pool.worker_count(), 1));
  for (std::size_t base = 0; base < views_.size(); base += wave) {
    const std::size_t count = std::min(wave, views_.size() - base);
    std::vector<SegmentPartial> partials(count);
    util::parallel_for(
        count,
        [&](std::size_t i) {
          try {
            partials[i] = scan_segment(views_[base + i], ctx);
          } catch (...) {
            partials[i].error = std::current_exception();
          }
        },
        pool);
    for (const auto& partial : partials) {
      if (partial.error) std::rethrow_exception(partial.error);
      merger.fold(partial);
    }
  }

  QueryResult out = merger.finish();
  out.stats.segments = views_.size();
  out.stats.segments_salvaged = salvaged_;
  return out;
}

}  // namespace fgcs::query

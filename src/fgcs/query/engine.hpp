// Streaming analytics over spilled v2 segments — the analyzer and the
// semi-Markov training scan without ever materializing a TraceSet.
//
// The engine scans segments block by block through TraceView's typed
// column spans, skips blocks the predicate cannot match (footer machine
// ranges + zone maps), and folds four aggregations in one pass:
//
//   * Table 2   per-machine unavailability counts by cause
//   * Figure 6  availability-interval lengths by day class
//   * Figure 7  hour-of-day occurrence pattern (+ relative deviation)
//   * training  every machine's semi-Markov predictor evaluated at one
//               query, folded in machine order
//
// Bit-identity with core::TraceAnalyzer / predict::SemiMarkovPredictor
// is a hard contract (the query-pushdown diff oracle sweeps it over
// hundreds of seeds). Float addition is order-sensitive, so the engine
// reproduces the materializing code's exact fold orders: segments are
// scanned in parallel (util::parallel_for) but their partial aggregates
// are merged sequentially in segment order, and each partial carries its
// per-interval / per-machine values so the merge can replay the global
// machine-ascending left-to-right sums the analyzer performs.
//
// Memory stays O(shard + block): one machine's episode buffer plus one
// wave of per-segment partials; scanned segments drop their mapped pages
// (TraceView::release_pages) so a million-machine sweep's RSS is bounded
// by the largest shard, not the fleet.
//
// Segments must partition the machine space: records machine-grouped in
// ascending order within a segment, segment machine ranges disjoint and
// ascending in path order (exactly what fleet spill mode produces, and
// what write_trace_v2's canonical order produces for a single segment).
// The engine throws ConfigError when a scan disproves this.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fgcs/core/analyzer.hpp"
#include "fgcs/predict/semi_markov.hpp"
#include "fgcs/query/predicate.hpp"
#include "fgcs/trace/calendar.hpp"
#include "fgcs/trace/format_v2.hpp"
#include "fgcs/util/parallel.hpp"

namespace fgcs::query {

/// Scan accounting: how much work pushdown actually skipped.
struct ScanStats {
  std::size_t segments = 0;
  std::size_t segments_salvaged = 0;
  std::size_t blocks_total = 0;
  std::size_t blocks_scanned = 0;
  std::size_t blocks_skipped = 0;    // pruned whole via index metadata
  std::size_t blocks_unindexed = 0;  // scanned without index metadata
                                     // (salvaged or pre-zone segments)
  std::uint64_t records_scanned = 0;
  std::uint64_t records_matched = 0;
};

/// Figure 6 for one day class: core::IntervalClassStats' scalar fields,
/// without the O(intervals) ECDF the streaming path never builds.
struct IntervalClassSummary {
  std::size_t count = 0;
  double mean_hours = 0.0;
  double frac_under_5min = 0.0;
  double frac_5min_to_2h = 0.0;
  double frac_2h_to_4h = 0.0;
  double frac_4h_to_6h = 0.0;
};

struct IntervalSummary {
  IntervalClassSummary weekday;
  IntervalClassSummary weekend;
};

/// Semi-Markov training scan: predict_availability / predict_occurrences
/// for every machine at one fixed query, folded in machine order —
/// bit-identical to running predict::SemiMarkovPredictor per machine on
/// the materialized trace.
struct TrainingScan {
  std::uint64_t machines = 0;
  std::uint64_t machines_with_history = 0;  // >= min_samples gap samples
  std::uint64_t gap_samples = 0;
  double availability_sum = 0.0;
  double occurrences_sum = 0.0;
};

struct QueryOptions {
  Predicate predicate;  // default: all
  trace::TraceCalendar calendar{};
  predict::SemiMarkovConfig semi_markov{};
  /// Training-scan query window; the query start defaults to the horizon
  /// end (train on the full trace).
  sim::SimDuration training_window = sim::SimDuration::hours(1);
  std::optional<sim::SimTime> training_start;
  /// Disables block pruning — the brute-force full scan the
  /// query-pushdown diff oracle compares against.
  bool disable_pruning = false;
  /// Releases each segment's mapped pages after scanning it, keeping
  /// peak RSS O(shard) instead of O(fleet data).
  bool release_pages = true;
  /// Worker pool for the segment-parallel scan; nullptr uses the
  /// process-wide pool.
  util::ThreadPool* pool = nullptr;
};

struct QueryResult {
  core::Table2Stats table2;
  IntervalSummary intervals;
  core::HourlyPattern hourly;
  double relative_deviation_weekday = 0.0;
  double relative_deviation_weekend = 0.0;
  TrainingScan training;
  ScanStats stats;
};

/// A set of v2 segments opened for querying. Strict opens first; a
/// damaged segment falls back to TraceView::open_salvaged so a torn or
/// footerless spill stays queryable (its blocks full-scan, surfaced via
/// ScanStats::blocks_unindexed).
class SegmentQuery {
 public:
  /// Opens every path. Throws IoError when a path cannot be opened at
  /// all, ConfigError when segment headers disagree.
  explicit SegmentQuery(const std::vector<std::string>& paths);

  /// The *.trc2 files directly inside `dir`, sorted by name (fleet spill
  /// segments sort into ascending shard — and machine — order). Throws
  /// IoError when the directory cannot be read or holds no segments.
  static std::vector<std::string> list_segments(const std::string& dir);

  std::size_t segment_count() const { return views_.size(); }
  const trace::TraceView& segment(std::size_t i) const {
    return views_.at(i);
  }
  std::size_t salvaged_count() const { return salvaged_; }

  std::uint32_t machine_count() const { return views_.front().machine_count(); }
  sim::SimTime horizon_start() const { return views_.front().horizon_start(); }
  sim::SimTime horizon_end() const { return views_.front().horizon_end(); }

  /// One parallel pass over every segment: scan, prune, fold, merge.
  QueryResult run(const QueryOptions& options = {}) const;

 private:
  std::vector<trace::TraceView> views_;
  std::size_t salvaged_ = 0;
};

}  // namespace fgcs::query

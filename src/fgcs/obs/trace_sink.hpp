// Structured trace-event sink keyed on *simulated* time.
//
// Events follow the Chrome trace-event model (load the JSON output in
// chrome://tracing or https://ui.perfetto.dev): complete spans ("X"),
// instant events ("i"), and counter series ("C"), each with a category,
// a microsecond timestamp, and a track id. Timestamps are sim::SimTime
// microseconds, so the rendered timeline is the *simulation's* timeline —
// a 92-day testbed run shows up as 92 days, whatever wall clock it took.
//
// Tracks map to Perfetto threads (pid 1, tid = track); the testbed assigns
// one track per machine. A bounded sink keeps the most recent `capacity`
// events in a ring buffer so million-event runs stay at a fixed memory
// footprint; `dropped()` reports the evicted count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "fgcs/sim/time.hpp"

namespace fgcs::obs {

class TraceSink {
 public:
  enum class Phase : char {
    kComplete = 'X',
    kInstant = 'i',
    kCounter = 'C',
  };

  struct Event {
    Phase phase = Phase::kInstant;
    std::string name;
    std::string category;
    std::int64_t ts_us = 0;
    std::int64_t dur_us = 0;  // complete events only
    std::uint32_t track = 0;
    /// Pre-rendered JSON object *body* ("\"k\":1"), empty for no args.
    std::string args;
  };

  /// `capacity` 0 keeps every event; otherwise the sink is a ring buffer
  /// holding the most recent `capacity` events.
  explicit TraceSink(std::size_t capacity = 0) : capacity_(capacity) {}

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// A span covering [start, start + duration] of simulated time.
  void complete(std::string_view category, std::string_view name,
                sim::SimTime start, sim::SimDuration duration,
                std::uint32_t track, std::string args = {});

  /// A zero-duration marker.
  void instant(std::string_view category, std::string_view name,
               sim::SimTime at, std::uint32_t track, std::string args = {});

  /// One point of a numeric counter series (rendered as a chart row).
  void counter(std::string_view category, std::string_view name,
               sim::SimTime at, std::uint32_t track, double value);

  /// Names a track in the rendered UI (Perfetto thread name).
  void name_track(std::uint32_t track, std::string_view name);

  /// Events currently retained, oldest first.
  std::vector<Event> events() const;

  /// Retained event count (<= capacity when bounded).
  std::size_t size() const;

  /// Total events ever recorded, including evicted ones.
  std::uint64_t total_recorded() const;

  /// Events evicted by the ring buffer.
  std::uint64_t dropped() const;

  std::size_t capacity() const { return capacity_; }

  void clear();

  /// Writes the Chrome trace-event JSON document.
  void write_chrome_json(std::ostream& out) const;

 private:
  void push(Event&& event);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::vector<std::pair<std::uint32_t, std::string>> track_names_;
  std::size_t head_ = 0;  // ring start when bounded and full
  std::uint64_t recorded_ = 0;
};

/// Escapes a string for embedding inside a JSON string literal.
std::string json_escape(std::string_view s);

}  // namespace fgcs::obs

// Sim-time-aligned metrics time series: columnar on-disk format + binned
// per-shard collection + periodic registry snapshots.
//
// The registry (metrics.hpp) answers "how many, in total"; this file
// answers "how many, *when*". Three pieces:
//
//  * FGCSMET1, a columnar SoA segment format for (series, sim-time, value)
//    samples, reusing the trace-v2 block/footer/magic idiom (util/binio):
//
//      header   magic "FGCSMET1", i64 start_us, i64 end_us,
//               i64 resolution_us
//      blocks   repeated: u32 block magic "MBK2", u32 count n, then SoA
//               columns u32 series[n], i64 ts_us[n], f64 value[n], then a
//               u32 CRC-32 of (count || columns) written last — the
//               block's commit mark, same idiom as trace "BLK3" blocks
//               (legacy "MBK1" blocks without the CRC still read fine)
//      footer   u64 series_count, per series {u32 name_len, u8 kind,
//               name bytes}, u64 block_count, per block {u64 offset,
//               u64 count, u32 min_series, u32 max_series, i64 min_ts_us,
//               i64 max_ts_us}, u64 total_samples, u64 footer_offset,
//               trailing magic "FGCSEND1"
//
//    Counter-kind series store *cumulative* values as right-continuous
//    step functions: a sample (t, v) means "the total reached v at t and
//    stays there until the next sample". Bins with no change emit
//    nothing, so quiet series cost bytes proportional to activity.
//    MetricsView mmap()s a segment and skips non-matching blocks via the
//    per-block series/time ranges — `fgcs stats` never materializes the
//    whole segment.
//
//  * TimeSeriesShard: fixed sim-time bins of plain uint64 counters, one
//    per fleet shard, installed thread-locally with TimeSeriesScope next
//    to the CounterShard. Hot hooks cost one index computation and one
//    non-atomic increment — no allocation, no contention — and the bins
//    are additive, so per-shard series and fleet totals fold exactly.
//
//  * TimeSeriesRecorder: periodically snapshots every counter / gauge /
//    histogram in a MetricRegistry into a segment (histograms decompose
//    into .count / .sum / .bucket{le=...} sub-series), suppressing
//    unchanged values. For single-clock runs (one Simulation) this is the
//    generic "sample everything every N sim-hours" recorder.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fgcs/obs/metrics.hpp"
#include "fgcs/sim/time.hpp"
#include "fgcs/util/binio.hpp"
#include "fgcs/util/io.hpp"

namespace fgcs::obs {

/// What a series' samples mean (one byte in the segment's series table).
enum class SeriesKind : std::uint8_t {
  kCounter = 0,     // cumulative, non-decreasing
  kGauge = 1,       // last-write-wins level
  kHistCount = 2,   // cumulative histogram observation count
  kHistSum = 3,     // cumulative histogram observation sum
  kHistBucket = 4,  // cumulative per-bucket count (le=<bound> label)
};

/// Returns the canonical short name ("counter", "gauge", ...).
std::string_view series_kind_name(SeriesKind kind);

/// One decoded sample.
struct MetricPoint {
  std::uint32_t series = 0;
  sim::SimTime at;
  double value = 0.0;
};

/// Series-table entry of an FGCSMET1 segment.
struct SeriesInfo {
  std::string name;  // full series string, e.g. "fault.injected{kind=crash}"
  SeriesKind kind = SeriesKind::kCounter;
};

/// Streaming FGCSMET1 writer: samples are buffered into fixed-capacity
/// blocks and spilled as each fills; memory is O(block + series table).
/// finish() (or destruction) seals the segment with the footer index.
class MetricsWriterV1 {
 public:
  static constexpr std::size_t kDefaultBlockSamples = 4096;

  MetricsWriterV1(const std::string& path, sim::SimTime start,
                  sim::SimTime end, sim::SimDuration resolution,
                  std::size_t block_samples = kDefaultBlockSamples);
  ~MetricsWriterV1();

  MetricsWriterV1(const MetricsWriterV1&) = delete;
  MetricsWriterV1& operator=(const MetricsWriterV1&) = delete;

  /// Find-or-add a series id. Throws ConfigError when the name was
  /// already registered with a different kind.
  std::uint32_t series_id(std::string_view name, SeriesKind kind);

  void append(std::uint32_t series, sim::SimTime at, double value);

  /// Flushes the pending block and writes the series table + footer.
  /// Idempotent; the destructor calls it too (and swallows errors — call
  /// finish() explicitly to see them).
  void finish();

  std::uint64_t samples_written() const { return total_; }
  const std::string& path() const { return path_; }

  /// CRC-32 of every byte written so far; after finish() this is the
  /// content hash of the whole segment.
  std::uint32_t content_crc() const;

 private:
  struct BlockMeta {
    std::uint64_t offset = 0;
    std::uint64_t count = 0;
    std::uint32_t min_series = 0;
    std::uint32_t max_series = 0;
    std::int64_t min_ts = 0;
    std::int64_t max_ts = 0;
  };

  void flush_block();

  std::string path_;
  std::unique_ptr<util::SyncFile> out_;
  std::size_t block_samples_;
  std::vector<MetricPoint> pending_;
  std::vector<SeriesInfo> series_;
  std::map<std::string, std::uint32_t, std::less<>> index_;
  std::vector<BlockMeta> blocks_;
  std::uint64_t offset_ = 0;
  std::uint64_t total_ = 0;
  bool finished_ = false;
};

/// Zero-copy FGCSMET1 reader (mmap with buffered fallback). Opening costs
/// the footer parse; queries visit only blocks whose series/time ranges
/// overlap. Throws IoError on malformed input.
class MetricsView {
 public:
  explicit MetricsView(const std::string& path);

  MetricsView(MetricsView&&) noexcept = default;
  MetricsView& operator=(MetricsView&&) noexcept = default;
  MetricsView(const MetricsView&) = delete;
  MetricsView& operator=(const MetricsView&) = delete;

  sim::SimTime horizon_start() const { return start_; }
  sim::SimTime horizon_end() const { return end_; }
  sim::SimDuration resolution() const { return resolution_; }

  const std::vector<SeriesInfo>& series() const { return series_; }
  std::optional<std::uint32_t> find_series(std::string_view name) const;

  std::uint64_t size() const { return total_; }
  bool empty() const { return total_ == 0; }
  std::size_t block_count() const { return blocks_.size(); }
  std::uint64_t block_size(std::size_t block) const;

  /// Sample `i` of `block`, materialized from the columns.
  MetricPoint point(std::size_t block, std::size_t i) const;

  /// Visits every sample in stored order.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      const std::uint64_t n = blocks_[b].count;
      for (std::uint64_t i = 0; i < n; ++i) f(point(b, i));
    }
  }

  /// Visits the samples of one series with timestamps in [t0, t1], in
  /// stored order, skipping blocks whose series or time range cannot
  /// match.
  template <typename F>
  void for_each_of(std::uint32_t series, sim::SimTime t0, sim::SimTime t1,
                   F&& f) const {
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      const Block& blk = blocks_[b];
      if (series < blk.min_series || series > blk.max_series) continue;
      if (t1.as_micros() < blk.min_ts || t0.as_micros() > blk.max_ts) continue;
      for (std::uint64_t i = 0; i < blk.count; ++i) {
        const MetricPoint p = point(b, i);
        if (p.series == series && p.at >= t0 && p.at <= t1) f(p);
      }
    }
  }

 private:
  struct Block {
    std::uint64_t offset = 0;  // file offset of the block's column data
    std::uint64_t count = 0;
    std::uint32_t min_series = 0;
    std::uint32_t max_series = 0;
    std::int64_t min_ts = 0;
    std::int64_t max_ts = 0;
  };

  util::MappedFile file_;
  sim::SimTime start_;
  sim::SimTime end_;
  sim::SimDuration resolution_;
  std::uint64_t total_ = 0;
  std::vector<SeriesInfo> series_;
  std::vector<Block> blocks_;
};

/// True when `path` starts with the FGCSMET1 magic.
bool is_metrics_v1(const std::string& path);

/// Fixed sim-time bins of the detector/fault activity counters a fleet
/// shard produces — the time-resolved companion of CounterShard. All
/// cells are plain uint64: install one per worker with TimeSeriesScope
/// and fold/write after the parallel section.
class TimeSeriesShard {
 public:
  TimeSeriesShard(sim::SimTime start, sim::SimTime end,
                  sim::SimDuration resolution);

  // Hot hooks (called from Observer when a scope is installed). States
  // and fault kinds use the observer's conventions: 1-based S-states,
  // 0-based fault::FaultKind.
  /// The hottest hook by far (one per detector sample). Consecutive
  /// samples nearly always land in the cached bin, so they accumulate in
  /// a pending counter on the same cache line as the bin cache; the
  /// count folds into samples_ when the cache moves or a reader needs
  /// consistent bins (flush_pending).
  void on_sample(sim::SimTime at) {
    const std::int64_t t = at.as_micros();
    if (t >= cached_lo_ && t < cached_hi_) {
      ++pending_samples_;
      return;
    }
    ++samples_[bin_slow(t)];  // bin_slow flushes the pending count first
  }
  /// Batched equivalent of `count` on_sample calls at at, at+stride,
  /// ..., at+stride*(count-1): bins advance run-at-a-time, so a
  /// machine-day of samples costs O(bins touched), not O(samples).
  /// Final bin contents are identical to the per-sample calls.
  void on_samples(sim::SimTime at, sim::SimDuration stride,
                  std::uint64_t count);
  void on_transition(sim::SimTime at, int to);
  void on_episode_opened(sim::SimTime at) { ++episodes_opened_[bin(at)]; }
  void on_episode_closed(sim::SimTime at, sim::SimDuration length);
  void on_sensor_gap(sim::SimTime at, sim::SimDuration gap);
  void on_fault(sim::SimTime at, int kind);
  void on_serve_ingest(sim::SimTime at) { ++serve_ingests_[bin(at)]; }
  void on_serve_queries(sim::SimTime at, std::uint64_t n) {
    serve_queries_[bin(at)] += n;
  }

  sim::SimTime start() const { return start_; }
  sim::SimTime end() const { return end_; }
  sim::SimDuration resolution() const { return resolution_; }
  std::size_t bin_count() const { return samples_.size(); }

  /// Total detector samples across all bins. The binned detector-sample
  /// fast path defers the shard/registry total to this sum (see
  /// Observer::on_detector_sample).
  std::uint64_t total_samples() const {
    flush_pending();
    std::uint64_t total = 0;
    for (const std::uint64_t v : samples_) total += v;
    return total;
  }

  /// Sim time of the right edge of bin `i` (clamped to the horizon end);
  /// the timestamp its cumulative samples are emitted at.
  sim::SimTime bin_end(std::size_t i) const;

  /// Adds another shard's bins into this one (geometries must match) —
  /// how fleet totals are built from per-shard series.
  void add(const TimeSeriesShard& other);

  /// Emits every non-empty series into `w` as cumulative step samples,
  /// with `extra` labels (e.g. {{"shard","0003"}}) merged into each
  /// series name. Deterministic: integer-derived values, fixed order.
  void write_series(MetricsWriterV1& w, const Labels& extra) const;

  /// Upper bounds (minutes) of the episode-length histogram family
  /// "detector.episode_minutes" that shards collect per bin.
  static const std::vector<double>& episode_minute_bounds();

  /// Serializes every bin family (geometry header + raw u64 bins) onto
  /// `out` — the checkpointable image of this shard's metrics state. A
  /// resumed fleet run load_bins()es completed shards so the merged
  /// FGCSMET1 segment is byte-identical to an uninterrupted run's.
  void save_bins(std::vector<unsigned char>& out) const;

  /// Restores bins saved by save_bins() into this shard (which must have
  /// been constructed with the same horizon/resolution). Throws IoError
  /// on a size/geometry mismatch — a checkpoint from a different config
  /// must not silently merge.
  void load_bins(const unsigned char* data, std::size_t size);

 private:
  // Hot hooks arrive in near-monotone sim time, so consecutive calls
  // almost always land in the bin of the previous one: remember that
  // bin's time span and pay the division only on a miss.
  std::size_t bin(sim::SimTime at) const {
    const std::int64_t t = at.as_micros();
    if (t >= cached_lo_ && t < cached_hi_) return cached_bin_;
    return bin_slow(t);
  }

  std::size_t bin_slow(std::int64_t t) const;

  /// Folds pending_samples_ into samples_[cached_bin_]. Const because
  /// readers (write_series, total_samples, add) must be able to settle
  /// the books; the underlying shard is never actually const-qualified —
  /// pending counts only exist after non-const hook calls.
  void flush_pending() const;

  sim::SimTime start_;
  sim::SimTime end_;
  sim::SimDuration resolution_;

  // bin() fast-path cache: the edge bins absorb everything outside the
  // horizon, so their spans extend to the int64 limits.
  mutable std::int64_t cached_lo_ = 1;
  mutable std::int64_t cached_hi_ = 0;  // empty span until the first miss
  mutable std::size_t cached_bin_ = 0;
  /// Samples counted for cached_bin_ but not yet in samples_.
  mutable std::uint64_t pending_samples_ = 0;

  // One vector<u64> per series, each bin_count() long.
  std::vector<std::uint64_t> samples_;
  std::vector<std::uint64_t> transitions_;
  std::vector<std::vector<std::uint64_t>> state_entered_;  // [state-1]
  std::vector<std::uint64_t> episodes_opened_;
  std::vector<std::uint64_t> episodes_closed_;
  std::vector<std::uint64_t> episode_us_;  // closed-episode length sum
  std::vector<std::vector<std::uint64_t>> episode_buckets_;  // [bucket]
  std::vector<std::uint64_t> sensor_gaps_;
  std::vector<std::uint64_t> sensor_gap_us_;
  std::vector<std::vector<std::uint64_t>> faults_;  // [kind]
  std::vector<std::uint64_t> serve_ingests_;
  std::vector<std::uint64_t> serve_queries_;
};

namespace detail {
extern constinit thread_local TimeSeriesShard* t_ts_shard;
}  // namespace detail

/// The calling thread's installed time-series shard, or nullptr.
inline TimeSeriesShard* current_ts_shard() { return detail::t_ts_shard; }

/// RAII thread-local install/restore, mirroring ShardScope. The caller
/// owns the shard and writes it out after the scope ends.
class TimeSeriesScope {
 public:
  explicit TimeSeriesScope(TimeSeriesShard* shard);
  ~TimeSeriesScope();
  TimeSeriesScope(const TimeSeriesScope&) = delete;
  TimeSeriesScope& operator=(const TimeSeriesScope&) = delete;

 private:
  TimeSeriesShard* previous_;
};

/// Periodic whole-registry snapshotter. Call sample(now) on a fixed
/// sim-time cadence (e.g. from Simulation::every); each call appends the
/// current value of every registered series that changed since the last
/// call. finish() seals the segment.
class TimeSeriesRecorder {
 public:
  TimeSeriesRecorder(const MetricRegistry& registry, const std::string& path,
                     sim::SimTime start, sim::SimTime end,
                     sim::SimDuration resolution);
  ~TimeSeriesRecorder();

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  void sample(sim::SimTime now);
  void finish() { writer_.finish(); }

  MetricsWriterV1& writer() { return writer_; }

 private:
  void emit(std::string_view name, SeriesKind kind, sim::SimTime now,
            double value);

  const MetricRegistry* registry_;
  MetricsWriterV1 writer_;
  std::map<std::string, double, std::less<>> last_;  // change suppression
};

}  // namespace fgcs::obs

#include "fgcs/obs/timeseries.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

#include "fgcs/util/error.hpp"

namespace fgcs::obs {

namespace {

using util::load;
using util::store;

constexpr char kMagic[8] = {'F', 'G', 'C', 'S', 'M', 'E', 'T', '1'};
constexpr char kEndMagic[8] = {'F', 'G', 'C', 'S', 'E', 'N', 'D', '1'};
constexpr std::uint32_t kBlockMagic = 0x314B424D;    // "MBK1" little-endian
constexpr std::uint32_t kBlockMagicV2 = 0x324B424D;  // "MBK2": trailing CRC
constexpr std::size_t kHeaderBytes = 32;
// u64 total_samples + u64 footer_offset + trailing magic.
constexpr std::size_t kTrailerBytes = 24;
constexpr std::size_t kBlockEntryBytes = 40;
// Per-sample bytes across the three columns (4 + 8 + 8).
constexpr std::uint64_t kSampleBytes = 20;
// Corruption guards: no writer produces tables this large.
constexpr std::uint64_t kMaxPlausibleSeries = std::uint64_t{1} << 24;
constexpr std::uint64_t kMaxPlausibleName = std::uint64_t{1} << 16;

std::string format_bound(double bound) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", bound);
  return buf;
}

// Full series string for `base` + merged sorted labels, via the same
// renderer the registry uses.
std::string series_string(std::string_view base, Labels labels) {
  std::sort(labels.begin(), labels.end());
  MetricSample s;
  s.name = std::string(base);
  s.labels = std::move(labels);
  return s.series();
}

Labels merge_labels(const Labels& a, const Labels& b) {
  Labels out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

std::string_view series_kind_name(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kCounter:
      return "counter";
    case SeriesKind::kGauge:
      return "gauge";
    case SeriesKind::kHistCount:
      return "hist_count";
    case SeriesKind::kHistSum:
      return "hist_sum";
    case SeriesKind::kHistBucket:
      return "hist_bucket";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// MetricsWriterV1

MetricsWriterV1::MetricsWriterV1(const std::string& path, sim::SimTime start,
                                 sim::SimTime end, sim::SimDuration resolution,
                                 std::size_t block_samples)
    : path_(path), block_samples_(block_samples) {
  fgcs::require(end > start, "MetricsWriterV1 horizon must be non-empty");
  fgcs::require(resolution > sim::SimDuration::zero(),
                "MetricsWriterV1 resolution must be positive");
  fgcs::require(block_samples_ > 0,
                "MetricsWriterV1 block size must be positive");
  out_ = std::make_unique<util::SyncFile>(path);
  pending_.reserve(block_samples_);
  std::vector<unsigned char> head;
  head.insert(head.end(), kMagic, kMagic + sizeof kMagic);
  store<std::int64_t>(head, start.as_micros());
  store<std::int64_t>(head, end.as_micros());
  store<std::int64_t>(head, resolution.as_micros());
  out_->write(head.data(), head.size());
  offset_ = kHeaderBytes;
}

MetricsWriterV1::~MetricsWriterV1() {
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; callers wanting the error call finish().
  }
}

std::uint32_t MetricsWriterV1::series_id(std::string_view name,
                                         SeriesKind kind) {
  fgcs::require(!finished_, "MetricsWriterV1 already finished");
  const auto it = index_.find(name);
  if (it != index_.end()) {
    fgcs::require(series_[it->second].kind == kind,
                  "metrics series '" + std::string(name) +
                      "' already registered with another kind");
    return it->second;
  }
  fgcs::require(!name.empty() && name.size() < kMaxPlausibleName,
                "metrics series name length out of range");
  fgcs::require(series_.size() < kMaxPlausibleSeries,
                "too many metrics series");
  const auto id = static_cast<std::uint32_t>(series_.size());
  series_.push_back({std::string(name), kind});
  index_.emplace(std::string(name), id);
  return id;
}

void MetricsWriterV1::append(std::uint32_t series, sim::SimTime at,
                             double value) {
  fgcs::require(!finished_, "MetricsWriterV1 already finished");
  fgcs::require(series < series_.size(),
                "metrics sample references an unregistered series");
  pending_.push_back({series, at, value});
  ++total_;
  if (pending_.size() >= block_samples_) flush_block();
}

void MetricsWriterV1::flush_block() {
  if (pending_.empty()) return;
  const std::size_t n = pending_.size();
  std::vector<unsigned char> buf;
  buf.reserve(8 + kSampleBytes * n);
  store<std::uint32_t>(buf, kBlockMagicV2);
  store<std::uint32_t>(buf, static_cast<std::uint32_t>(n));

  BlockMeta meta;
  meta.offset = offset_ + 8;  // column data starts after magic + count
  meta.count = n;
  meta.min_series = std::numeric_limits<std::uint32_t>::max();
  meta.max_series = 0;
  meta.min_ts = std::numeric_limits<std::int64_t>::max();
  meta.max_ts = std::numeric_limits<std::int64_t>::min();
  for (const auto& p : pending_) {
    meta.min_series = std::min(meta.min_series, p.series);
    meta.max_series = std::max(meta.max_series, p.series);
    meta.min_ts = std::min(meta.min_ts, p.at.as_micros());
    meta.max_ts = std::max(meta.max_ts, p.at.as_micros());
  }
  for (const auto& p : pending_) store<std::uint32_t>(buf, p.series);
  for (const auto& p : pending_) store<std::int64_t>(buf, p.at.as_micros());
  for (const auto& p : pending_) store<double>(buf, p.value);

  out_->write(buf.data(), buf.size());
  // Commit mark: the CRC over (count || columns) lands after the data it
  // covers, so a crash mid-flush leaves a detectably torn block.
  util::crashpoint(util::CrashPoint::kBlockWrite);
  const std::uint32_t crc = util::crc32(buf.data() + 4, buf.size() - 4);
  std::vector<unsigned char> tail;
  store<std::uint32_t>(tail, crc);
  out_->write(tail.data(), tail.size());
  out_->sync(util::Durability::kBlock);
  offset_ += buf.size() + tail.size();
  blocks_.push_back(meta);
  pending_.clear();
}

void MetricsWriterV1::finish() {
  if (finished_) return;
  flush_block();
  const std::uint64_t footer_offset = offset_;
  std::vector<unsigned char> buf;
  store<std::uint64_t>(buf, series_.size());
  for (const auto& s : series_) {
    store<std::uint32_t>(buf, static_cast<std::uint32_t>(s.name.size()));
    store<std::uint8_t>(buf, static_cast<std::uint8_t>(s.kind));
    const auto* p = reinterpret_cast<const unsigned char*>(s.name.data());
    buf.insert(buf.end(), p, p + s.name.size());
  }
  store<std::uint64_t>(buf, blocks_.size());
  for (const auto& b : blocks_) {
    store<std::uint64_t>(buf, b.offset);
    store<std::uint64_t>(buf, b.count);
    store<std::uint32_t>(buf, b.min_series);
    store<std::uint32_t>(buf, b.max_series);
    store<std::int64_t>(buf, b.min_ts);
    store<std::int64_t>(buf, b.max_ts);
  }
  store<std::uint64_t>(buf, total_);
  store<std::uint64_t>(buf, footer_offset);
  buf.insert(buf.end(), kEndMagic, kEndMagic + sizeof kEndMagic);
  out_->write(buf.data(), buf.size());
  // Segment seal — durable before any manifest claims the file exists.
  out_->sync(util::Durability::kCommit);
  out_->close();
  finished_ = true;
}

std::uint32_t MetricsWriterV1::content_crc() const {
  return out_ ? out_->content_crc() : 0;
}

// ---------------------------------------------------------------------------
// MetricsView

MetricsView::MetricsView(const std::string& path) : file_(path) {
  const unsigned char* data = file_.data();
  const std::size_t bytes = file_.size();
  // Smallest sealed segment: header + empty series/block tables + trailer.
  if (bytes < kHeaderBytes + 16 + kTrailerBytes ||
      std::memcmp(data, kMagic, sizeof kMagic) != 0) {
    throw IoError(path + ": not an fgcs metrics segment (bad magic)");
  }
  if (std::memcmp(data + bytes - 8, kEndMagic, sizeof kEndMagic) != 0) {
    throw IoError(path + ": metrics segment missing end magic (truncated?)");
  }
  start_ = sim::SimTime::from_micros(load<std::int64_t>(data + 8));
  end_ = sim::SimTime::from_micros(load<std::int64_t>(data + 16));
  const std::int64_t res_us = load<std::int64_t>(data + 24);
  if (end_ <= start_ || res_us <= 0) {
    throw IoError(path + ": invalid metrics segment metadata");
  }
  resolution_ = sim::SimDuration::micros(res_us);
  total_ = load<std::uint64_t>(data + bytes - 24);
  const std::uint64_t footer_offset = load<std::uint64_t>(data + bytes - 16);
  if (footer_offset < kHeaderBytes ||
      footer_offset + 16 + kTrailerBytes > bytes) {
    throw IoError(path + ": metrics footer offset out of range");
  }

  // Cursor-parse the variable-length footer; it must land exactly at the
  // trailer.
  const std::uint64_t footer_end = bytes - kTrailerBytes;
  std::uint64_t cur = footer_offset;
  const auto need = [&](std::uint64_t n) {
    if (cur + n > footer_end) {
      throw IoError(path + ": metrics footer truncated");
    }
  };
  need(8);
  const std::uint64_t series_count = load<std::uint64_t>(data + cur);
  cur += 8;
  if (series_count > kMaxPlausibleSeries) {
    throw IoError(path + ": implausible metrics series count");
  }
  series_.reserve(series_count);
  for (std::uint64_t s = 0; s < series_count; ++s) {
    need(5);
    const std::uint32_t len = load<std::uint32_t>(data + cur);
    const std::uint8_t kind = data[cur + 4];
    cur += 5;
    if (len == 0 || len > kMaxPlausibleName || kind > 4) {
      throw IoError(path + ": metrics series table entry out of range");
    }
    need(len);
    series_.push_back({std::string(reinterpret_cast<const char*>(data + cur),
                                   len),
                       static_cast<SeriesKind>(kind)});
    cur += len;
  }
  need(8);
  const std::uint64_t block_count = load<std::uint64_t>(data + cur);
  cur += 8;
  if (cur + block_count * kBlockEntryBytes != footer_end) {
    throw IoError(path + ": metrics footer size mismatch");
  }
  blocks_.reserve(block_count);
  std::uint64_t sum = 0;
  for (std::uint64_t b = 0; b < block_count; ++b, cur += kBlockEntryBytes) {
    const unsigned char* entry = data + cur;
    Block blk;
    blk.offset = load<std::uint64_t>(entry);
    blk.count = load<std::uint64_t>(entry + 8);
    blk.min_series = load<std::uint32_t>(entry + 16);
    blk.max_series = load<std::uint32_t>(entry + 20);
    blk.min_ts = load<std::int64_t>(entry + 24);
    blk.max_ts = load<std::int64_t>(entry + 32);
    if (blk.count == 0 || blk.offset < kHeaderBytes + 8 ||
        blk.offset > footer_offset ||
        blk.offset + kSampleBytes * blk.count > footer_offset ||
        blk.max_series >= series_.size() ||
        blk.min_series > blk.max_series) {
      throw IoError(path + ": metrics block " + std::to_string(b) +
                    " index entry out of range");
    }
    const std::uint32_t block_magic = load<std::uint32_t>(data + blk.offset - 8);
    if (block_magic == kBlockMagicV2) {
      // Checksummed blocks carry 4 trailing CRC bytes after the columns;
      // verify eagerly — metrics segments are small next to traces, and a
      // reader of aggregates must not average corrupted samples.
      if (blk.offset + kSampleBytes * blk.count + 4 > footer_offset) {
        throw IoError(path + ": metrics block " + std::to_string(b) +
                      " checksum out of range");
      }
      const std::uint64_t payload = kSampleBytes * blk.count;
      const std::uint32_t computed = util::crc32(
          data + blk.offset - 4, static_cast<std::size_t>(payload + 4));
      if (computed != load<std::uint32_t>(data + blk.offset + payload)) {
        throw IoError(path + ": metrics block " + std::to_string(b) +
                      " checksum mismatch");
      }
    } else if (block_magic != kBlockMagic) {
      throw IoError(path + ": metrics block " + std::to_string(b) +
                    " missing block magic");
    }
    sum += blk.count;
    blocks_.push_back(blk);
  }
  if (sum != total_) {
    throw IoError(path + ": metrics sample total disagrees with block index");
  }
}

std::optional<std::uint32_t> MetricsView::find_series(
    std::string_view name) const {
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series_[i].name == name) return static_cast<std::uint32_t>(i);
  }
  return std::nullopt;
}

std::uint64_t MetricsView::block_size(std::size_t block) const {
  return blocks_.at(block).count;
}

MetricPoint MetricsView::point(std::size_t block, std::size_t i) const {
  const Block& blk = blocks_[block];
  const unsigned char* base = file_.at(blk.offset);
  const std::uint64_t n = blk.count;
  MetricPoint p;
  p.series = load<std::uint32_t>(base + 4 * i);
  p.at = sim::SimTime::from_micros(load<std::int64_t>(base + 4 * n + 8 * i));
  p.value = load<double>(base + 12 * n + 8 * i);
  return p;
}

bool is_metrics_v1(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in) return false;
  char magic[sizeof kMagic];
  in.read(magic, sizeof magic);
  return in && std::memcmp(magic, kMagic, sizeof kMagic) == 0;
}

// ---------------------------------------------------------------------------
// TimeSeriesShard

TimeSeriesShard::TimeSeriesShard(sim::SimTime start, sim::SimTime end,
                                 sim::SimDuration resolution)
    : start_(start), end_(end), resolution_(resolution) {
  fgcs::require(end > start, "TimeSeriesShard horizon must be non-empty");
  fgcs::require(resolution > sim::SimDuration::zero(),
                "TimeSeriesShard resolution must be positive");
  const std::int64_t span = end.as_micros() - start.as_micros();
  const std::int64_t res = resolution.as_micros();
  const auto bins = static_cast<std::size_t>((span + res - 1) / res);
  const std::size_t n = bins == 0 ? 1 : bins;
  samples_.assign(n, 0);
  transitions_.assign(n, 0);
  state_entered_.assign(5, std::vector<std::uint64_t>(n, 0));
  episodes_opened_.assign(n, 0);
  episodes_closed_.assign(n, 0);
  episode_us_.assign(n, 0);
  episode_buckets_.assign(episode_minute_bounds().size() + 1,
                          std::vector<std::uint64_t>(n, 0));
  sensor_gaps_.assign(n, 0);
  sensor_gap_us_.assign(n, 0);
  faults_.assign(4, std::vector<std::uint64_t>(n, 0));
  serve_ingests_.assign(n, 0);
  serve_queries_.assign(n, 0);
}

void TimeSeriesShard::flush_pending() const {
  if (pending_samples_ == 0) return;
  // Writing through const: legitimate because a pending count can only
  // exist after non-const hook calls, so *this is never a const object.
  const_cast<TimeSeriesShard*>(this)->samples_[cached_bin_] +=
      pending_samples_;
  pending_samples_ = 0;
}

std::size_t TimeSeriesShard::bin_slow(std::int64_t t) const {
  flush_pending();  // the pending count belongs to the outgoing bin
  const std::int64_t res = resolution_.as_micros();
  const std::int64_t rel = t - start_.as_micros();
  std::size_t b = 0;
  if (rel > 0) {
    b = static_cast<std::size_t>(rel / res);
    if (b >= samples_.size()) b = samples_.size() - 1;
  }
  // Bin 0 also absorbs pre-horizon timestamps and the last bin everything
  // past the horizon, so the cached spans of the edge bins are unbounded
  // on the outside.
  cached_bin_ = b;
  cached_lo_ = b == 0 ? std::numeric_limits<std::int64_t>::min()
                      : start_.as_micros() +
                            static_cast<std::int64_t>(b) * res;
  cached_hi_ = b + 1 >= samples_.size()
                   ? std::numeric_limits<std::int64_t>::max()
                   : start_.as_micros() +
                         static_cast<std::int64_t>(b + 1) * res;
  return b;
}

void TimeSeriesShard::on_samples(sim::SimTime at, sim::SimDuration stride,
                                 std::uint64_t count) {
  std::int64_t t = at.as_micros();
  const std::int64_t step = stride.as_micros();
  while (count > 0) {
    if (t >= cached_lo_ && t < cached_hi_) {
      // How many of the remaining samples land in the cached bin.
      std::uint64_t n = count;
      if (step > 0 &&
          cached_hi_ != std::numeric_limits<std::int64_t>::max()) {
        const auto fit =
            static_cast<std::uint64_t>((cached_hi_ - t + step - 1) / step);
        if (fit < n) n = fit;
      }
      pending_samples_ += n;
      count -= n;
      t += step * static_cast<std::int64_t>(n);
      continue;
    }
    ++samples_[bin_slow(t)];  // refreshes the bin cache for the run
    --count;
    t += step;
  }
}

void TimeSeriesShard::on_transition(sim::SimTime at, int to) {
  const std::size_t b = bin(at);
  ++transitions_[b];
  if (to >= 1 && to <= static_cast<int>(state_entered_.size())) {
    ++state_entered_[static_cast<std::size_t>(to - 1)][b];
  }
}

void TimeSeriesShard::on_episode_closed(sim::SimTime at,
                                        sim::SimDuration length) {
  const std::size_t b = bin(at);
  ++episodes_closed_[b];
  episode_us_[b] += static_cast<std::uint64_t>(length.as_micros());
  const double minutes = length.as_minutes();
  const auto& bounds = episode_minute_bounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), minutes);
  ++episode_buckets_[static_cast<std::size_t>(it - bounds.begin())][b];
}

void TimeSeriesShard::on_sensor_gap(sim::SimTime at, sim::SimDuration gap) {
  const std::size_t b = bin(at);
  ++sensor_gaps_[b];
  sensor_gap_us_[b] += static_cast<std::uint64_t>(gap.as_micros());
}

void TimeSeriesShard::on_fault(sim::SimTime at, int kind) {
  if (kind < 0 || kind >= static_cast<int>(faults_.size())) return;
  ++faults_[static_cast<std::size_t>(kind)][bin(at)];
}

sim::SimTime TimeSeriesShard::bin_end(std::size_t i) const {
  const std::int64_t edge =
      start_.as_micros() +
      static_cast<std::int64_t>(i + 1) * resolution_.as_micros();
  return edge > end_.as_micros() ? end_ : sim::SimTime::from_micros(edge);
}

void TimeSeriesShard::add(const TimeSeriesShard& other) {
  fgcs::require(start_ == other.start_ && end_ == other.end_ &&
                    resolution_ == other.resolution_,
                "TimeSeriesShard::add needs matching bin geometry");
  flush_pending();
  other.flush_pending();
  const auto fold = [](std::vector<std::uint64_t>& dst,
                       const std::vector<std::uint64_t>& src) {
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
  };
  fold(samples_, other.samples_);
  fold(transitions_, other.transitions_);
  for (std::size_t s = 0; s < state_entered_.size(); ++s) {
    fold(state_entered_[s], other.state_entered_[s]);
  }
  fold(episodes_opened_, other.episodes_opened_);
  fold(episodes_closed_, other.episodes_closed_);
  fold(episode_us_, other.episode_us_);
  for (std::size_t k = 0; k < episode_buckets_.size(); ++k) {
    fold(episode_buckets_[k], other.episode_buckets_[k]);
  }
  fold(sensor_gaps_, other.sensor_gaps_);
  fold(sensor_gap_us_, other.sensor_gap_us_);
  for (std::size_t k = 0; k < faults_.size(); ++k) {
    fold(faults_[k], other.faults_[k]);
  }
  fold(serve_ingests_, other.serve_ingests_);
  fold(serve_queries_, other.serve_queries_);
}

const std::vector<double>& TimeSeriesShard::episode_minute_bounds() {
  static const std::vector<double> kBounds = {1,   2,   5,   10,  20,   30,  60,
                                              120, 240, 480, 960, 1440, 2880};
  return kBounds;
}

void TimeSeriesShard::save_bins(std::vector<unsigned char>& out) const {
  flush_pending();
  // Geometry header first, so a resume against a different config fails
  // loudly in load_bins instead of folding misaligned bins.
  store<std::int64_t>(out, start_.as_micros());
  store<std::int64_t>(out, end_.as_micros());
  store<std::int64_t>(out, resolution_.as_micros());
  store<std::uint64_t>(out, samples_.size());
  const auto put = [&](const std::vector<std::uint64_t>& bins) {
    for (const std::uint64_t v : bins) store<std::uint64_t>(out, v);
  };
  const auto put_family = [&](const std::vector<std::vector<std::uint64_t>>& f) {
    store<std::uint64_t>(out, f.size());
    for (const auto& bins : f) put(bins);
  };
  put(samples_);
  put(transitions_);
  put_family(state_entered_);
  put(episodes_opened_);
  put(episodes_closed_);
  put(episode_us_);
  put_family(episode_buckets_);
  put(sensor_gaps_);
  put(sensor_gap_us_);
  put_family(faults_);
  // Serve families go last so pre-serve checkpoints fail the size check
  // (load_bins rejects short blobs) instead of silently misaligning.
  put(serve_ingests_);
  put(serve_queries_);
}

void TimeSeriesShard::load_bins(const unsigned char* data, std::size_t size) {
  std::size_t cur = 0;
  const auto need = [&](std::size_t n) {
    if (cur + n > size) {
      throw IoError("time-series checkpoint blob truncated");
    }
  };
  const auto get_u64 = [&]() {
    need(8);
    const std::uint64_t v = load<std::uint64_t>(data + cur);
    cur += 8;
    return v;
  };
  const auto get_i64 = [&]() {
    need(8);
    const std::int64_t v = load<std::int64_t>(data + cur);
    cur += 8;
    return v;
  };
  if (get_i64() != start_.as_micros() || get_i64() != end_.as_micros() ||
      get_i64() != resolution_.as_micros() || get_u64() != samples_.size()) {
    throw IoError(
        "time-series checkpoint geometry does not match this run's "
        "horizon/resolution");
  }
  const auto take = [&](std::vector<std::uint64_t>& bins) {
    for (std::uint64_t& v : bins) v = get_u64();
  };
  const auto take_family = [&](std::vector<std::vector<std::uint64_t>>& f) {
    if (get_u64() != f.size()) {
      throw IoError("time-series checkpoint family count mismatch");
    }
    for (auto& bins : f) take(bins);
  };
  take(samples_);
  take(transitions_);
  take_family(state_entered_);
  take(episodes_opened_);
  take(episodes_closed_);
  take(episode_us_);
  take_family(episode_buckets_);
  take(sensor_gaps_);
  take(sensor_gap_us_);
  take_family(faults_);
  take(serve_ingests_);
  take(serve_queries_);
  if (cur != size) {
    throw IoError("time-series checkpoint blob has trailing bytes");
  }
  // The bin cache describes pre-load state; invalidate it.
  pending_samples_ = 0;
  cached_lo_ = 1;
  cached_hi_ = 0;
}

void TimeSeriesShard::write_series(MetricsWriterV1& w,
                                   const Labels& extra) const {
  flush_pending();
  // Emits one cumulative step sample per bin with activity; `scale`
  // converts the integer accumulator into the stored value (e.g. us ->
  // minutes). All-zero series are omitted entirely.
  const auto emit = [&](std::string_view base, const Labels& own,
                        SeriesKind kind,
                        const std::vector<std::uint64_t>& bins, double scale) {
    bool any = false;
    for (const std::uint64_t v : bins) {
      if (v != 0) {
        any = true;
        break;
      }
    }
    if (!any) return;
    const std::uint32_t id =
        w.series_id(series_string(base, merge_labels(own, extra)), kind);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
      if (bins[i] == 0) continue;
      cum += bins[i];
      w.append(id, bin_end(i), static_cast<double>(cum) * scale);
    }
  };

  static const char* const kStateNames[] = {"S1", "S2", "S3", "S4", "S5"};
  static const char* const kFaultNames[] = {"crash", "dropout", "skew",
                                            "guest-kill"};

  emit("detector.samples", {}, SeriesKind::kCounter, samples_, 1.0);
  emit("detector.transitions", {}, SeriesKind::kCounter, transitions_, 1.0);
  for (std::size_t s = 0; s < state_entered_.size(); ++s) {
    emit("detector.state_entered", {{"state", kStateNames[s]}},
         SeriesKind::kCounter, state_entered_[s], 1.0);
  }
  emit("detector.episodes_opened", {}, SeriesKind::kCounter, episodes_opened_,
       1.0);
  emit("detector.episodes_closed", {}, SeriesKind::kCounter, episodes_closed_,
       1.0);
  emit("detector.sensor_gaps", {}, SeriesKind::kCounter, sensor_gaps_, 1.0);
  emit("detector.sensor_gap_us", {}, SeriesKind::kCounter, sensor_gap_us_,
       1.0);
  for (std::size_t k = 0; k < faults_.size(); ++k) {
    emit("fault.injected", {{"kind", kFaultNames[k]}}, SeriesKind::kCounter,
         faults_[k], 1.0);
  }
  emit("serve.ingest_events", {}, SeriesKind::kCounter, serve_ingests_, 1.0);
  emit("serve.queries", {}, SeriesKind::kCounter, serve_queries_, 1.0);
  emit("detector.episode_minutes.count", {}, SeriesKind::kHistCount,
       episodes_closed_, 1.0);
  emit("detector.episode_minutes.sum", {}, SeriesKind::kHistSum, episode_us_,
       1.0 / 60e6);
  const auto& bounds = episode_minute_bounds();
  for (std::size_t k = 0; k < episode_buckets_.size(); ++k) {
    const std::string le =
        k < bounds.size() ? format_bound(bounds[k]) : std::string("+inf");
    emit("detector.episode_minutes.bucket", {{"le", le}},
         SeriesKind::kHistBucket, episode_buckets_[k], 1.0);
  }
}

namespace detail {
constinit thread_local TimeSeriesShard* t_ts_shard = nullptr;
}  // namespace detail

TimeSeriesScope::TimeSeriesScope(TimeSeriesShard* shard)
    : previous_(detail::t_ts_shard) {
  detail::t_ts_shard = shard;
}

TimeSeriesScope::~TimeSeriesScope() { detail::t_ts_shard = previous_; }

// ---------------------------------------------------------------------------
// TimeSeriesRecorder

TimeSeriesRecorder::TimeSeriesRecorder(const MetricRegistry& registry,
                                       const std::string& path,
                                       sim::SimTime start, sim::SimTime end,
                                       sim::SimDuration resolution)
    : registry_(&registry), writer_(path, start, end, resolution) {}

TimeSeriesRecorder::~TimeSeriesRecorder() {
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; callers wanting the error call finish().
  }
}

void TimeSeriesRecorder::emit(std::string_view name, SeriesKind kind,
                              sim::SimTime now, double value) {
  const auto it = last_.find(name);
  if (it != last_.end() && it->second == value) return;
  writer_.append(writer_.series_id(name, kind), now, value);
  if (it != last_.end()) {
    it->second = value;
  } else {
    last_.emplace(std::string(name), value);
  }
}

void TimeSeriesRecorder::sample(sim::SimTime now) {
  for (const auto& s : registry_->snapshot()) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        emit(s.series(), SeriesKind::kCounter, now, s.value);
        break;
      case MetricSample::Kind::kGauge:
        emit(s.series(), SeriesKind::kGauge, now, s.value);
        break;
      case MetricSample::Kind::kHistogram: {
        emit(series_string(s.name + ".count", s.labels),
             SeriesKind::kHistCount, now, static_cast<double>(s.count));
        emit(series_string(s.name + ".sum", s.labels), SeriesKind::kHistSum,
             now, s.sum);
        for (std::size_t k = 0; k < s.buckets.size(); ++k) {
          const std::string le = k < s.bounds.size()
                                     ? format_bound(s.bounds[k])
                                     : std::string("+inf");
          const std::string name = series_string(
              s.name + ".bucket", merge_labels(s.labels, {{"le", le}}));
          // Never-touched buckets stay out of the segment entirely.
          if (s.buckets[k] == 0 && last_.find(name) == last_.end()) continue;
          emit(name, SeriesKind::kHistBucket, now,
               static_cast<double>(s.buckets[k]));
        }
        break;
      }
    }
  }
}

}  // namespace fgcs::obs

#include "fgcs/obs/observer.hpp"

#include <cstdio>

namespace fgcs::obs {

namespace {

// "S1".."S5" and the 25 "Sa->Sb" edge names, so the transition hot path
// never formats strings.
const char* state_name(int s) {
  static const char* const kNames[kStateCount] = {"S1", "S2", "S3", "S4",
                                                  "S5"};
  return (s >= 1 && s <= kStateCount) ? kNames[s - 1] : "S?";
}

const char* transition_name(int from, int to) {
  static char names[kStateCount][kStateCount][8];
  static const bool initialized = [] {
    for (int f = 0; f < kStateCount; ++f) {
      for (int t = 0; t < kStateCount; ++t) {
        std::snprintf(names[f][t], sizeof names[f][t], "S%d->S%d", f + 1,
                      t + 1);
      }
    }
    return true;
  }();
  (void)initialized;
  if (from < 1 || from > kStateCount || to < 1 || to > kStateCount) {
    return "S?->S?";
  }
  return names[from - 1][to - 1];
}

}  // namespace

Observer::Observer(const Options& options)
    : trace_(options.trace_capacity), trace_enabled_(options.enable_trace) {
  sim_events_executed_ = &metrics_.counter("sim.events_executed");
  sim_events_scheduled_ = &metrics_.counter("sim.events_scheduled");
  sim_events_cancelled_ = &metrics_.counter("sim.events_cancelled");
  sim_events_compacted_ = &metrics_.counter("sim.events_compacted");
  sim_compactions_ = &metrics_.counter("sim.queue_compactions");
  sim_callbacks_spilled_ = &metrics_.counter("sim.callbacks_spilled");
  sim_max_queue_depth_ = &metrics_.gauge("sim.max_queue_depth");
  static const char* const kFaultKindNames[kFaultKindCount] = {
      "crash", "dropout", "skew", "guest-kill"};
  for (int k = 0; k < kFaultKindCount; ++k) {
    fault_injected_[k] =
        &metrics_.counter("fault.injected", {{"kind", kFaultKindNames[k]}});
  }
  guest_restarts_ = &metrics_.counter("guest.restarts");
  guest_migrations_ = &metrics_.counter("guest.migrations");
  guest_checkpoints_ = &metrics_.counter("guest.checkpoints");
  guest_completions_ = &metrics_.counter("guest.completions");
  guest_work_lost_us_ = &metrics_.counter("guest.work_lost_us");
  detector_samples_ = &metrics_.counter("detector.samples");
  detector_sensor_gaps_ = &metrics_.counter("detector.sensor_gaps");
  detector_sensor_gap_us_ = &metrics_.counter("detector.sensor_gap_us");
  for (int f = 1; f <= kStateCount; ++f) {
    for (int t = 1; t <= kStateCount; ++t) {
      detector_transitions_[f - 1][t - 1] = &metrics_.counter(
          "detector.transitions",
          {{"from", state_name(f)}, {"to", state_name(t)}});
    }
  }
  detector_episodes_opened_ = &metrics_.counter("detector.episodes_opened");
  detector_episodes_closed_ = &metrics_.counter("detector.episodes_closed");
  os_ticks_ = &metrics_.counter("os.scheduler_ticks");
  os_ticks_fast_forwarded_ = &metrics_.counter("os.ticks_fast_forwarded");
  os_context_switches_ = &metrics_.counter("os.context_switches");
  os_max_runnable_ = &metrics_.gauge("os.max_runnable");
  testbed_machines_ = &metrics_.counter("testbed.machines_simulated");
  fleet_machines_done_ = &metrics_.counter("fleet.machines_done");
  fleet_shards_done_ = &metrics_.counter("fleet.shards_completed");
  fleet_shard_retries_ = &metrics_.counter("fleet.shard_retries");
  fleet_machines_quarantined_ =
      &metrics_.counter("fleet.machines_quarantined");
  serve_ingest_events_ = &metrics_.counter("serve.ingest_events");
  serve_queries_ = &metrics_.counter("serve.queries");
  serve_snapshot_swaps_ = &metrics_.counter("serve.snapshot_swaps");
}

void Observer::on_sim_run(const char* what, sim::SimTime begin,
                          sim::SimTime end, std::uint64_t events) {
  if (!trace_enabled_) return;
  char args[48];
  std::snprintf(args, sizeof args, "\"events\":%llu",
                static_cast<unsigned long long>(events));
  trace_.complete("sim", what, begin, end - begin, current_track(), args);
}

void Observer::on_sim_batch(std::uint64_t executed, double max_depth,
                            std::uint64_t scheduled, std::uint64_t spilled,
                            std::uint64_t cancelled, std::uint64_t compactions,
                            std::uint64_t compacted) {
  if (CounterShard* s = current_shard()) {
    s->sim_events_executed += executed;
    s->sim_events_scheduled += scheduled;
    s->sim_callbacks_spilled += spilled;
    s->sim_events_cancelled += cancelled;
    s->sim_compactions += compactions;
    s->sim_events_compacted += compacted;
    if (max_depth > s->sim_max_queue_depth) s->sim_max_queue_depth = max_depth;
    return;
  }
  if (executed > 0) sim_events_executed_->inc(executed);
  if (max_depth > 0) sim_max_queue_depth_->set_max(max_depth);
  if (scheduled > 0) sim_events_scheduled_->inc(scheduled);
  if (spilled > 0) sim_callbacks_spilled_->inc(spilled);
  if (cancelled > 0) sim_events_cancelled_->inc(cancelled);
  if (compactions > 0) {
    sim_compactions_->inc(compactions);
    sim_events_compacted_->inc(compacted);
  }
}

void Observer::on_fault_injected(int kind, sim::SimTime at,
                                 sim::SimDuration duration) {
  static const char* const kFaultKindNames[kFaultKindCount] = {
      "crash", "dropout", "skew", "guest-kill"};
  if (kind < 0 || kind >= kFaultKindCount) return;
  if (TimeSeriesShard* ts = current_ts_shard()) ts->on_fault(at, kind);
  if (CounterShard* s = current_shard()) {
    ++s->fault_injected[kind];
  } else {
    fault_injected_[kind]->inc();
  }
  if (flight_ != nullptr) {
    flight_->record({at, FlightEventKind::kFaultInjected, current_track(),
                     kind, 0, duration});
  }
  if (trace_enabled_) {
    trace_.complete("fault", kFaultKindNames[kind], at, duration,
                    current_track());
  }
}

void Observer::on_sensor_gap(sim::SimTime start, sim::SimDuration duration) {
  if (TimeSeriesShard* ts = current_ts_shard()) {
    ts->on_sensor_gap(start, duration);
  }
  if (flight_ != nullptr) {
    flight_->record({start, FlightEventKind::kSensorGap, current_track(), 0,
                     0, duration});
  }
  if (CounterShard* s = current_shard()) {
    ++s->detector_sensor_gaps;
    s->detector_sensor_gap_us +=
        static_cast<std::uint64_t>(duration.as_micros());
  } else {
    detector_sensor_gaps_->inc();
    detector_sensor_gap_us_->inc(
        static_cast<std::uint64_t>(duration.as_micros()));
  }
  if (trace_enabled_) {
    trace_.complete("detector", "sensor_gap", start, duration,
                    current_track());
  }
}

void Observer::on_detector_transition(sim::SimTime at, int from, int to) {
  if (from >= 1 && from <= kStateCount && to >= 1 && to <= kStateCount) {
    if (TimeSeriesShard* ts = current_ts_shard()) ts->on_transition(at, to);
    if (CounterShard* s = current_shard()) {
      ++s->detector_transitions[from - 1][to - 1];
    } else {
      detector_transitions_[from - 1][to - 1]->inc();
    }
    if (flight_ != nullptr) {
      flight_->record({at, FlightEventKind::kStateTransition, current_track(),
                       from, to, {}});
    }
  }
  if (trace_enabled_) {
    trace_.instant("detector", transition_name(from, to), at,
                   current_track());
  }
}

void Observer::on_episode_opened(sim::SimTime at, int cause, double host_cpu,
                                 double free_mem_mb) {
  if (TimeSeriesShard* ts = current_ts_shard()) ts->on_episode_opened(at);
  if (CounterShard* s = current_shard()) {
    ++s->detector_episodes_opened;
  } else {
    detector_episodes_opened_->inc();
  }
  if (flight_ != nullptr) {
    flight_->record({at, FlightEventKind::kEpisodeOpened, current_track(),
                     cause, 0, {}});
  }
  if (sink_ != nullptr) {
    sink_->on_flight_event({at, FlightEventKind::kEpisodeOpened,
                            current_track(), cause, 0, {}});
  }
  if (!trace_enabled_) return;
  char args[96];
  std::snprintf(args, sizeof args, "\"cause\":\"%s\",\"host_cpu\":%.4f,"
                                   "\"free_mem_mb\":%.1f",
                state_name(cause), host_cpu, free_mem_mb);
  trace_.instant("detector", "episode_open", at, current_track(), args);
}

void Observer::on_episode_closed(sim::SimTime at, int cause,
                                 sim::SimDuration duration) {
  if (TimeSeriesShard* ts = current_ts_shard()) {
    ts->on_episode_closed(at, duration);
  }
  if (CounterShard* s = current_shard()) {
    ++s->detector_episodes_closed;
  } else {
    detector_episodes_closed_->inc();
  }
  if (flight_ != nullptr) {
    flight_->record({at, FlightEventKind::kEpisodeClosed, current_track(),
                     cause, 0, duration});
  }
  if (sink_ != nullptr) {
    sink_->on_flight_event({at, FlightEventKind::kEpisodeClosed,
                            current_track(), cause, 0, duration});
  }
  if (!trace_enabled_) return;
  char args[96];
  std::snprintf(args, sizeof args, "\"cause\":\"%s\",\"duration_s\":%.1f",
                state_name(cause), duration.as_seconds());
  trace_.instant("detector", "episode_close", at, current_track(), args);
  // Render the episode itself as a span so unavailability shows up as
  // solid blocks on the machine's track.
  trace_.complete("detector", state_name(cause), at - duration, duration,
                  current_track());
}

void Observer::on_testbed_machine(std::uint32_t machine, sim::SimTime begin,
                                  sim::SimTime end, std::size_t episodes,
                                  std::uint64_t samples) {
  if (CounterShard* s = current_shard()) {
    ++s->testbed_machines;
  } else {
    testbed_machines_->inc();
  }
  if (flight_ != nullptr) {
    flight_->record({end, FlightEventKind::kMachineDone, machine,
                     static_cast<std::int32_t>(episodes),
                     static_cast<std::int32_t>(samples), end - begin});
  }
  if (!trace_enabled_) return;
  char name[32];
  std::snprintf(name, sizeof name, "machine-%u", machine);
  trace_.name_track(machine, name);
  char args[96];
  std::snprintf(args, sizeof args, "\"episodes\":%llu,\"samples\":%llu",
                static_cast<unsigned long long>(episodes),
                static_cast<unsigned long long>(samples));
  trace_.complete("testbed", "simulate_machine", begin, end - begin, machine,
                  args);
}

void Observer::on_guest_restart(sim::SimTime at) {
  guest_restarts_->inc();
  if (flight_ != nullptr) {
    flight_->record(
        {at, FlightEventKind::kGuestRestart, current_track(), 0, 0, {}});
  }
}

void Observer::on_guest_migration(sim::SimTime at) {
  guest_migrations_->inc();
  if (flight_ != nullptr) {
    flight_->record(
        {at, FlightEventKind::kGuestMigration, current_track(), 0, 0, {}});
  }
}

void Observer::on_guest_checkpoint(sim::SimTime at) {
  guest_checkpoints_->inc();
  if (flight_ != nullptr) {
    flight_->record(
        {at, FlightEventKind::kGuestCheckpoint, current_track(), 0, 0, {}});
  }
}

void Observer::on_guest_completed(sim::SimTime at) {
  guest_completions_->inc();
  if (flight_ != nullptr) {
    flight_->record(
        {at, FlightEventKind::kGuestCompleted, current_track(), 0, 0, {}});
  }
}

void Observer::on_guest_work_lost(sim::SimTime at, sim::SimDuration lost) {
  if (lost <= sim::SimDuration::zero()) return;
  guest_work_lost_us_->inc(static_cast<std::uint64_t>(lost.as_micros()));
  if (flight_ != nullptr) {
    flight_->record(
        {at, FlightEventKind::kGuestWorkLost, current_track(), 0, 0, lost});
  }
}

void Observer::on_fleet_shard_done(std::size_t shard,
                                   std::uint32_t first_machine,
                                   std::size_t machine_count,
                                   sim::SimTime at) {
  fleet_shards_done_->inc();
  if (flight_ != nullptr) {
    flight_->record({at, FlightEventKind::kShardDone,
                     static_cast<std::uint32_t>(shard),
                     static_cast<std::int32_t>(first_machine),
                     static_cast<std::int32_t>(machine_count), {}});
  }
}

void Observer::on_fleet_shard_retry(std::size_t shard, std::uint32_t failed,
                                    int attempt, sim::SimTime at) {
  fleet_shard_retries_->inc();
  if (flight_ != nullptr) {
    flight_->record({at, FlightEventKind::kShardRetry,
                     static_cast<std::uint32_t>(shard), attempt,
                     static_cast<std::int32_t>(failed), {}});
  }
}

void Observer::on_fleet_machine_quarantined(std::uint32_t machine,
                                            int failures, sim::SimTime at) {
  fleet_machines_quarantined_->inc();
  if (flight_ != nullptr) {
    flight_->record(
        {at, FlightEventKind::kMachineQuarantined, machine, failures, 0, {}});
  }
}

void Observer::on_serve_ingest(sim::SimTime at) {
  if (TimeSeriesShard* ts = current_ts_shard()) {
    ts->on_serve_ingest(at);
    // Fall through: unlike detector samples, serve totals are not
    // reconstructed from bins, so the counter path always runs.
  }
  if (CounterShard* s = current_shard()) {
    ++s->serve_ingest_events;
    return;
  }
  serve_ingest_events_->inc();
}

void Observer::on_serve_queries(sim::SimTime at, std::uint64_t n) {
  if (n == 0) return;
  if (TimeSeriesShard* ts = current_ts_shard()) ts->on_serve_queries(at, n);
  if (CounterShard* s = current_shard()) {
    s->serve_queries += n;
    return;
  }
  serve_queries_->inc(n);
}

void Observer::on_serve_snapshot_swap() {
  if (CounterShard* s = current_shard()) {
    ++s->serve_snapshot_swaps;
    return;
  }
  serve_snapshot_swaps_->inc();
}

void Observer::record_scope(std::string_view name, double seconds) {
  metrics_
      .histogram("scope.seconds", {{"scope", std::string(name)}})
      .observe(seconds);
}

void Observer::merge_shard(const CounterShard& shard) {
  sim_events_executed_->inc(shard.sim_events_executed);
  sim_events_scheduled_->inc(shard.sim_events_scheduled);
  sim_events_cancelled_->inc(shard.sim_events_cancelled);
  sim_events_compacted_->inc(shard.sim_events_compacted);
  sim_compactions_->inc(shard.sim_compactions);
  sim_callbacks_spilled_->inc(shard.sim_callbacks_spilled);
  sim_max_queue_depth_->set_max(shard.sim_max_queue_depth);
  for (int k = 0; k < kFaultKindCount; ++k) {
    if (shard.fault_injected[k] > 0) {
      fault_injected_[k]->inc(shard.fault_injected[k]);
    }
  }
  detector_samples_->inc(shard.detector_samples);
  detector_sensor_gaps_->inc(shard.detector_sensor_gaps);
  detector_sensor_gap_us_->inc(shard.detector_sensor_gap_us);
  for (int f = 0; f < kStateCount; ++f) {
    for (int t = 0; t < kStateCount; ++t) {
      if (shard.detector_transitions[f][t] > 0) {
        detector_transitions_[f][t]->inc(shard.detector_transitions[f][t]);
      }
    }
  }
  detector_episodes_opened_->inc(shard.detector_episodes_opened);
  detector_episodes_closed_->inc(shard.detector_episodes_closed);
  os_ticks_->inc(shard.os_ticks);
  os_ticks_fast_forwarded_->inc(shard.os_ticks_fast_forwarded);
  os_context_switches_->inc(shard.os_context_switches);
  os_max_runnable_->set_max(shard.os_max_runnable);
  testbed_machines_->inc(shard.testbed_machines);
  serve_ingest_events_->inc(shard.serve_ingest_events);
  serve_queries_->inc(shard.serve_queries);
  serve_snapshot_swaps_->inc(shard.serve_snapshot_swaps);
}

namespace detail {
std::atomic<Observer*> g_observer{nullptr};
}  // namespace detail

void set_observer(Observer* observer) {
  detail::g_observer.store(observer, std::memory_order_release);
}

namespace detail {
constinit thread_local CounterShard* t_shard = nullptr;
}  // namespace detail

ShardScope::ShardScope(CounterShard* shard) : previous_(detail::t_shard) {
  detail::t_shard = shard;
}

ShardScope::~ShardScope() { detail::t_shard = previous_; }

namespace {
constinit thread_local std::uint32_t t_current_track = 0;
}  // namespace

std::uint32_t current_track() { return t_current_track; }

TrackScope::TrackScope(std::uint32_t track) : previous_(t_current_track) {
  t_current_track = track;
}

TrackScope::~TrackScope() { t_current_track = previous_; }

}  // namespace fgcs::obs

#include "fgcs/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "fgcs/obs/trace_sink.hpp"  // json_escape
#include "fgcs/util/csv.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/table.hpp"

namespace fgcs::obs {

namespace {

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream out;
  out.precision(15);
  out << v;
  return out.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  fgcs::require(!bounds_.empty(), "histogram needs at least one bound");
  fgcs::require(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                    std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                        bounds_.end(),
                "histogram bounds must be strictly ascending");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::quantile(double q) const {
  return quantile_from_buckets(bounds_, bucket_counts(), q);
}

double quantile_from_buckets(const std::vector<double>& bounds,
                             const std::vector<std::uint64_t>& counts,
                             double q) {
  if (bounds.empty() || counts.size() != bounds.size() + 1) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;

  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto c = static_cast<double>(counts[i]);
    if (cumulative + c < target) {
      cumulative += c;
      continue;
    }
    // The q-th observation falls in bucket i; interpolate linearly.
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = i < bounds.size() ? bounds[i] : bounds.back();
    if (c <= 0.0) return hi;
    const double frac = (target - cumulative) / c;
    return lo + (hi - lo) * frac;
  }
  return bounds.back();
}

std::vector<double> Histogram::default_time_bounds() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 1e3; decade *= 10.0) {
    for (const double m : {1.0, 2.0, 5.0}) {
      if (decade * m > 100.0) break;
      bounds.push_back(decade * m);
    }
  }
  return bounds;
}

std::string format_labels(const Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

std::string MetricSample::series() const {
  if (labels.empty()) return name;
  return name + "{" + format_labels(labels) + "}";
}

MetricRegistry::Entry& MetricRegistry::find_or_create(
    std::string_view name, Labels&& labels, MetricSample::Kind kind,
    std::vector<double>&& bounds) {
  std::sort(labels.begin(), labels.end());
  MetricSample key_sample;
  key_sample.name = std::string(name);
  key_sample.labels = labels;
  const std::string key = key_sample.series();

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    fgcs::require(it->second.kind == kind,
                  "metric '" + key + "' already registered with another kind");
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.name = std::string(name);
  entry.labels = std::move(labels);
  switch (kind) {
    case MetricSample::Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricSample::Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricSample::Kind::kHistogram:
      if (bounds.empty()) bounds = Histogram::default_time_bounds();
      entry.histogram = std::make_unique<Histogram>(std::move(bounds));
      break;
  }
  return entries_.emplace(key, std::move(entry)).first->second;
}

Counter& MetricRegistry::counter(std::string_view name, Labels labels) {
  return *find_or_create(name, std::move(labels), MetricSample::Kind::kCounter,
                         {})
              .counter;
}

Gauge& MetricRegistry::gauge(std::string_view name, Labels labels) {
  return *find_or_create(name, std::move(labels), MetricSample::Kind::kGauge,
                         {})
              .gauge;
}

Histogram& MetricRegistry::histogram(std::string_view name, Labels labels,
                                     std::vector<double> bounds) {
  return *find_or_create(name, std::move(labels),
                         MetricSample::Kind::kHistogram, std::move(bounds))
              .histogram;
}

std::size_t MetricRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<MetricSample> MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> samples;
  samples.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSample s;
    s.name = entry.name;
    s.labels = entry.labels;
    s.kind = entry.kind;
    switch (entry.kind) {
      case MetricSample::Kind::kCounter:
        s.value = static_cast<double>(entry.counter->value());
        break;
      case MetricSample::Kind::kGauge:
        s.value = entry.gauge->value();
        break;
      case MetricSample::Kind::kHistogram:
        s.count = entry.histogram->count();
        s.sum = entry.histogram->sum();
        s.bounds = entry.histogram->bounds();
        s.buckets = entry.histogram->bucket_counts();
        s.p50 = entry.histogram->quantile(0.50);
        s.p90 = entry.histogram->quantile(0.90);
        s.p99 = entry.histogram->quantile(0.99);
        break;
    }
    samples.push_back(std::move(s));
  }
  return samples;
}

void MetricRegistry::write_csv(std::ostream& out) const {
  util::CsvWriter csv(out);
  csv.write("metric", "labels", "type", "value", "count", "sum", "p50", "p90",
            "p99");
  for (const auto& s : snapshot()) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        csv.write(s.name, format_labels(s.labels), "counter",
                  static_cast<std::uint64_t>(s.value), "", "", "", "", "");
        break;
      case MetricSample::Kind::kGauge:
        csv.write(s.name, format_labels(s.labels), "gauge", s.value, "", "",
                  "", "", "");
        break;
      case MetricSample::Kind::kHistogram:
        csv.write(s.name, format_labels(s.labels), "histogram", "", s.count,
                  s.sum, s.p50, s.p90, s.p99);
        break;
    }
  }
}

void MetricRegistry::write_json(std::ostream& out) const {
  const auto samples = snapshot();
  out << "[";
  bool first = true;
  for (const auto& s : samples) {
    if (!first) out << ",";
    first = false;
    // Names and labels are user-influenced (scope names, fault-plan
    // strings): escape them, and rely on snapshot()'s sorted series
    // order plus registration-sorted label keys for deterministic output.
    out << "\n  {\"name\":\"" << json_escape(s.name) << "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : s.labels) {
      if (!first_label) out << ",";
      first_label = false;
      out << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
    }
    out << "},";
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out << "\"type\":\"counter\",\"value\":"
            << static_cast<std::uint64_t>(s.value) << "}";
        break;
      case MetricSample::Kind::kGauge:
        out << "\"type\":\"gauge\",\"value\":" << json_number(s.value) << "}";
        break;
      case MetricSample::Kind::kHistogram: {
        out << "\"type\":\"histogram\",\"count\":" << s.count
            << ",\"sum\":" << json_number(s.sum) << ",\"bounds\":[";
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          if (i) out << ",";
          out << json_number(s.bounds[i]);
        }
        out << "],\"buckets\":[";
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          if (i) out << ",";
          out << s.buckets[i];
        }
        out << "]}";
        break;
      }
    }
  }
  out << "\n]\n";
}

}  // namespace fgcs::obs

// The global observability hook.
//
// An Observer bundles a MetricRegistry with an optional TraceSink and
// pre-registers the hot-path metric series so instrumented code touches
// only atomics — no lookups, no allocation. Installation is a single
// global atomic pointer:
//
//   fgcs::obs::Observer observer;
//   fgcs::obs::ScopedObserver guard(&observer);   // or set_observer()
//   ... run a testbed / simulation ...
//   observer.metrics().write_csv(out);
//   observer.trace().write_chrome_json(out);
//
// When no observer is installed (the default), every instrumentation site
// costs one relaxed-ish atomic load and a predictable branch, and performs
// zero allocations — cheap enough to leave compiled into the event loop
// and the scheduler tick unconditionally.
//
// Tracks: trace events are attributed to the calling thread's *current
// track* (a plain integer; the testbed uses the machine id). TrackScope
// sets it RAII-style and is itself thread-local, so parallel per-machine
// simulation attributes events correctly.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "fgcs/obs/flight_recorder.hpp"
#include "fgcs/obs/metrics.hpp"
#include "fgcs/obs/timeseries.hpp"
#include "fgcs/obs/trace_sink.hpp"
#include "fgcs/sim/time.hpp"

namespace fgcs::obs {

/// Number of availability-model states (S1..S5) — mirrors
/// monitor::AvailabilityState without depending on the monitor layer.
inline constexpr int kStateCount = 5;

/// Number of injectable fault kinds — mirrors fault::FaultKind without
/// depending on the fault layer (which links against obs).
inline constexpr int kFaultKindCount = 4;

/// Plain (non-atomic) mirror of the Observer's hot counters.
///
/// A sweep worker installs one with ShardScope; every hook then bumps a
/// thread-local uint64_t instead of a shared atomic — no cross-core
/// cache-line ping-pong on `fault.injected`/`os.ticks_fast_forwarded`
/// while thousands of machines simulate in parallel. The shard is folded
/// into the global registry once, at shard completion, via
/// Observer::merge_shard().
struct CounterShard {
  std::uint64_t sim_events_executed = 0;
  std::uint64_t sim_events_scheduled = 0;
  std::uint64_t sim_events_cancelled = 0;
  std::uint64_t sim_events_compacted = 0;
  std::uint64_t sim_compactions = 0;
  std::uint64_t sim_callbacks_spilled = 0;
  double sim_max_queue_depth = 0.0;
  std::uint64_t fault_injected[kFaultKindCount] = {};
  std::uint64_t detector_samples = 0;
  std::uint64_t detector_sensor_gaps = 0;
  std::uint64_t detector_sensor_gap_us = 0;
  std::uint64_t detector_transitions[kStateCount][kStateCount] = {};
  std::uint64_t detector_episodes_opened = 0;
  std::uint64_t detector_episodes_closed = 0;
  std::uint64_t os_ticks = 0;
  std::uint64_t os_ticks_fast_forwarded = 0;
  std::uint64_t os_context_switches = 0;
  double os_max_runnable = 0.0;
  std::uint64_t testbed_machines = 0;
  std::uint64_t serve_ingest_events = 0;
  std::uint64_t serve_queries = 0;
  std::uint64_t serve_snapshot_swaps = 0;
};

namespace detail {
extern constinit thread_local CounterShard* t_shard;
}  // namespace detail

/// The calling thread's installed counter shard (nullptr when hooks write
/// straight to the global registry).
inline CounterShard* current_shard() { return detail::t_shard; }

/// RAII thread-local shard install/restore. The caller owns the shard and
/// is responsible for merge_shard() after the scope ends.
class ShardScope {
 public:
  explicit ShardScope(CounterShard* shard);
  ~ShardScope();
  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

 private:
  CounterShard* previous_;
};

/// Receives a copy of every timestamped flight event the Observer sees,
/// synchronously on the emitting thread. This is the seam the online
/// serving layer (fgcs::serve) subscribes through: episode open/close
/// events carry everything AvailabilityFeed needs to maintain incremental
/// predictor state without rescanning the trace. Like the flight
/// recorder, a sink must be attached *before* the observer is installed —
/// the pointer is read unsynchronized from hook paths.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_flight_event(const FlightEvent& event) = 0;
};

class Observer {
 public:
  struct Options {
    /// Trace ring-buffer capacity; 0 retains every event.
    std::size_t trace_capacity = 0;
    /// Set false to run metrics-only (trace calls become no-ops).
    bool enable_trace = true;
  };

  Observer() : Observer(Options{}) {}
  explicit Observer(const Options& options);

  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }
  TraceSink& trace() { return trace_; }
  const TraceSink& trace() const { return trace_; }
  bool trace_enabled() const { return trace_enabled_; }

  /// Attaches (or, with nullptr, detaches) a flight recorder; timestamped
  /// hooks then mirror their events into its ring. The caller owns the
  /// recorder and must attach it *before* installing the observer — the
  /// pointer is read unsynchronized from hook paths.
  void set_flight_recorder(FlightRecorder* recorder) { flight_ = recorder; }
  FlightRecorder* flight_recorder() const { return flight_; }

  /// Attaches (or, with nullptr, detaches) an event sink; episode
  /// open/close hooks then forward their events to it synchronously.
  /// Same ownership and attach-before-install rules as the recorder.
  void set_event_sink(EventSink* sink) { sink_ = sink; }
  EventSink* event_sink() const { return sink_; }

  // -- sim hooks -------------------------------------------------------------

  /// One event popped and executed; `live_depth` is the number of *live*
  /// (uncancelled) events remaining — cancelled-but-unswept heap entries
  /// are excluded so the queue-depth gauge reports real backlog.
  void on_sim_event(std::size_t live_depth) {
    const double depth = static_cast<double>(live_depth) + 1.0;
    if (CounterShard* s = current_shard()) {
      ++s->sim_events_executed;
      if (depth > s->sim_max_queue_depth) s->sim_max_queue_depth = depth;
      return;
    }
    sim_events_executed_->inc();
    sim_max_queue_depth_->set_max(depth);
  }

  /// One event scheduled; `inlined` says the callback's captures fit the
  /// inline buffer (no allocation).
  void on_sim_schedule(bool inlined) {
    if (CounterShard* s = current_shard()) {
      ++s->sim_events_scheduled;
      if (!inlined) ++s->sim_callbacks_spilled;
      return;
    }
    sim_events_scheduled_->inc();
    if (!inlined) sim_callbacks_spilled_->inc();
  }

  /// One live event cancelled through its handle.
  void on_sim_cancel() {
    if (CounterShard* s = current_shard()) {
      ++s->sim_events_cancelled;
      return;
    }
    sim_events_cancelled_->inc();
  }

  /// A heap compaction pass removed `removed` cancelled entries.
  void on_sim_compaction(std::size_t removed) {
    if (CounterShard* s = current_shard()) {
      ++s->sim_compactions;
      s->sim_events_compacted += removed;
      return;
    }
    sim_compactions_->inc();
    sim_events_compacted_->inc(removed);
  }

  /// A completed run_until/run_all, as a sim-time span.
  void on_sim_run(const char* what, sim::SimTime begin, sim::SimTime end,
                  std::uint64_t events);

  /// One run's worth of event-loop activity, flushed by the Simulation at
  /// the end of run_until/run_all from the queue's plain counters — the
  /// per-event hooks above remain for direct instrumentation, but the
  /// event loop itself reports through this batch, so enabling the
  /// observer adds no per-event work at all. `max_depth` is the queue's
  /// peak pending-event count over the batch (the executing event is not
  /// counted, unlike on_sim_event); 0 leaves the gauge untouched.
  void on_sim_batch(std::uint64_t executed, double max_depth,
                    std::uint64_t scheduled, std::uint64_t spilled,
                    std::uint64_t cancelled, std::uint64_t compactions,
                    std::uint64_t compacted);

  // -- fault hooks -----------------------------------------------------------

  /// An injected fault activated. `kind` indexes fault::FaultKind
  /// (0 crash, 1 dropout, 2 skew, 3 guest-kill).
  void on_fault_injected(int kind, sim::SimTime at, sim::SimDuration duration);

  // -- guest lifecycle hooks -------------------------------------------------

  // All take the sim time of the action so the flight recorder can place
  // them on the run's timeline.
  void on_guest_restart(sim::SimTime at);
  void on_guest_migration(sim::SimTime at);
  void on_guest_checkpoint(sim::SimTime at);
  void on_guest_completed(sim::SimTime at);

  /// Guest CPU work discarded because it was never checkpointed.
  void on_guest_work_lost(sim::SimTime at, sim::SimDuration lost);

  // -- monitor hooks ---------------------------------------------------------

  /// Hottest hook in a telemetry-enabled sweep: one per detector sample
  /// (one per simulated sample period per machine). With a time-series
  /// scope installed the whole hook is one thread-local load and one bin
  /// bump — the bins are then authoritative for the sample count, and
  /// the scope's owner folds TimeSeriesShard::total_samples() back into
  /// its CounterShard (or the registry) when the shard retires, as the
  /// fleet sweep does at the end of each shard.
  void on_detector_sample(sim::SimTime at) {
    if (TimeSeriesShard* ts = current_ts_shard()) {
      ts->on_sample(at);
      return;
    }
    if (CounterShard* s = current_shard()) {
      ++s->detector_samples;
      return;
    }
    detector_samples_->inc();
  }

  /// Batched equivalent of `count` on_detector_sample calls at at,
  /// at+stride, ... — the columnar testbed walk reports a whole run of
  /// constant-input samples at once. Totals and bins end up identical
  /// to the per-sample hook.
  void on_detector_samples(sim::SimTime at, sim::SimDuration stride,
                           std::uint64_t count) {
    if (count == 0) return;
    if (TimeSeriesShard* ts = current_ts_shard()) {
      ts->on_samples(at, stride, count);
      return;
    }
    if (CounterShard* s = current_shard()) {
      s->detector_samples += count;
      return;
    }
    detector_samples_->inc(count);
  }

  /// A sensor gap (dropped samples) was bridged by hold-last-state.
  void on_sensor_gap(sim::SimTime start, sim::SimDuration duration);

  /// State-machine edge; `from`/`to` are 1-based S-state numbers.
  void on_detector_transition(sim::SimTime at, int from, int to);

  void on_episode_opened(sim::SimTime at, int cause, double host_cpu,
                         double free_mem_mb);
  void on_episode_closed(sim::SimTime at, int cause,
                         sim::SimDuration duration);

  // -- os hooks --------------------------------------------------------------

  /// One scheduler tick; `switched` means a different process (or idle)
  /// got the CPU than on the previous tick.
  void on_machine_tick(bool switched, std::size_t runnable) {
    if (CounterShard* s = current_shard()) {
      ++s->os_ticks;
      if (switched) ++s->os_context_switches;
      if (static_cast<double>(runnable) > s->os_max_runnable) {
        s->os_max_runnable = static_cast<double>(runnable);
      }
      return;
    }
    os_ticks_->inc();
    if (switched) os_context_switches_->inc();
    os_max_runnable_->set_max(static_cast<double>(runnable));
  }

  /// The scheduler fast-forward jumped over `skipped` ticks that a forced
  /// per-tick run would have executed individually.
  void on_machine_ticks_skipped(std::uint64_t skipped) {
    if (CounterShard* s = current_shard()) {
      s->os_ticks_fast_forwarded += skipped;
      return;
    }
    os_ticks_fast_forwarded_->inc(skipped);
  }

  // -- core hooks ------------------------------------------------------------

  /// A finished per-machine testbed simulation, as a sim-time span on the
  /// machine's track.
  void on_testbed_machine(std::uint32_t machine, sim::SimTime begin,
                          sim::SimTime end, std::size_t episodes,
                          std::uint64_t samples);

  // -- fleet hooks -----------------------------------------------------------

  /// One fleet machine finished simulating (live progress counter; bumps
  /// the registry directly so monitors see it move mid-run).
  void on_fleet_machine_done() { fleet_machines_done_->inc(); }

  /// One fleet shard finished (all its machines simulated); recorded on
  /// the flight-recorder timeline at the horizon end.
  void on_fleet_shard_done(std::size_t shard, std::uint32_t first_machine,
                           std::size_t machine_count, sim::SimTime at);

  /// A shard attempt failed (machine `failed` threw) and the supervisor
  /// is retrying it; `attempt` is the attempt that failed (1-based).
  /// Bumps the registry directly, like on_fleet_machine_done.
  void on_fleet_shard_retry(std::size_t shard, std::uint32_t failed,
                            int attempt, sim::SimTime at);

  /// The supervisor gave up on `machine` after `failures` failed shard
  /// attempts and excluded it from the sweep. Latches a flight-recorder
  /// dump (via the recorder's first-fault mechanism).
  void on_fleet_machine_quarantined(std::uint32_t machine, int failures,
                                    sim::SimTime at);

  // -- serve hooks -----------------------------------------------------------

  /// One availability record ingested by the online serving feed, at the
  /// record's end time.
  void on_serve_ingest(sim::SimTime at);

  /// A batch of `n` predictor queries answered, attributed to sim time
  /// `at` (the queries' nominal arrival time).
  void on_serve_queries(sim::SimTime at, std::uint64_t n);

  /// The serving feed published a fresh fleet snapshot.
  void on_serve_snapshot_swap();

  // -- profiling scopes ------------------------------------------------------

  /// Feeds the "scope.seconds{scope=...}" histogram family (wall-clock).
  void record_scope(std::string_view name, double seconds);

  /// Folds a completed worker shard into the global registry: counters
  /// are added, max-gauges raised. Called once per shard, off the hot
  /// path; safe to call concurrently from multiple finishing workers.
  void merge_shard(const CounterShard& shard);

 private:
  MetricRegistry metrics_;
  TraceSink trace_;
  bool trace_enabled_;
  FlightRecorder* flight_ = nullptr;
  EventSink* sink_ = nullptr;

  // Hot-path series, registered once at construction.
  Counter* sim_events_executed_;
  Counter* sim_events_scheduled_;
  Counter* sim_events_cancelled_;
  Counter* sim_events_compacted_;
  Counter* sim_compactions_;
  Counter* sim_callbacks_spilled_;
  Gauge* sim_max_queue_depth_;
  Counter* fault_injected_[kFaultKindCount];
  Counter* guest_restarts_;
  Counter* guest_migrations_;
  Counter* guest_checkpoints_;
  Counter* guest_completions_;
  Counter* guest_work_lost_us_;
  Counter* detector_samples_;
  Counter* detector_sensor_gaps_;
  Counter* detector_sensor_gap_us_;
  Counter* detector_transitions_[kStateCount][kStateCount];
  Counter* detector_episodes_opened_;
  Counter* detector_episodes_closed_;
  Counter* os_ticks_;
  Counter* os_ticks_fast_forwarded_;
  Counter* os_context_switches_;
  Gauge* os_max_runnable_;
  Counter* testbed_machines_;
  Counter* fleet_machines_done_;
  Counter* fleet_shards_done_;
  Counter* fleet_shard_retries_;
  Counter* fleet_machines_quarantined_;
  Counter* serve_ingest_events_;
  Counter* serve_queries_;
  Counter* serve_snapshot_swaps_;
};

namespace detail {
extern std::atomic<Observer*> g_observer;
}  // namespace detail

/// The installed observer, or nullptr when observability is disabled.
inline Observer* observer() {
  return detail::g_observer.load(std::memory_order_acquire);
}

/// Installs (or, with nullptr, disables) the global observer. The caller
/// keeps ownership and must keep it alive while installed.
void set_observer(Observer* observer);

/// RAII install/restore, for tools and tests.
class ScopedObserver {
 public:
  explicit ScopedObserver(Observer* obs) : previous_(observer()) {
    set_observer(obs);
  }
  ~ScopedObserver() { set_observer(previous_); }
  ScopedObserver(const ScopedObserver&) = delete;
  ScopedObserver& operator=(const ScopedObserver&) = delete;

 private:
  Observer* previous_;
};

/// The calling thread's trace track id (0 until set).
std::uint32_t current_track();

/// RAII thread-local track assignment.
class TrackScope {
 public:
  explicit TrackScope(std::uint32_t track);
  ~TrackScope();
  TrackScope(const TrackScope&) = delete;
  TrackScope& operator=(const TrackScope&) = delete;

 private:
  std::uint32_t previous_;
};

/// Wall-clock RAII timer feeding record_scope(); use via FGCS_OBS_SCOPE.
/// `name` must outlive the scope (a string literal in practice).
class ScopeTimer {
 public:
  explicit ScopeTimer(const char* name)
      : observer_(obs::observer()), name_(name) {
    if (observer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopeTimer() {
    if (observer_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    observer_->record_scope(
        name_, std::chrono::duration<double>(elapsed).count());
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  Observer* observer_;
  const char* name_;
  std::chrono::steady_clock::time_point start_{};
};

#define FGCS_OBS_CONCAT_IMPL(a, b) a##b
#define FGCS_OBS_CONCAT(a, b) FGCS_OBS_CONCAT_IMPL(a, b)

/// Times the enclosing scope on the wall clock and feeds the
/// "scope.seconds{scope=<name>}" histogram. Zero-cost when disabled.
#define FGCS_OBS_SCOPE(name) \
  ::fgcs::obs::ScopeTimer FGCS_OBS_CONCAT(fgcs_obs_scope_, __LINE__)(name)

}  // namespace fgcs::obs

// Flight recorder: a fixed-size ring of recent structured events that can
// dump a sim-time-ordered post-mortem when something goes wrong.
//
// The trace sink (trace_sink.hpp) answers "show me everything, for a
// human with a trace viewer"; the flight recorder answers "what were the
// last N things that happened before the incident". It keeps plain POD
// events — state transitions, fault injections, guest lifecycle actions,
// shard progress — in a mutex-protected ring (the recorded events are
// rare: per-transition and per-episode, never per-tick or per-sample),
// and writes a text post-mortem to disk when
//
//   * a fault fires (the first injected fault latches an automatic dump
//     when Options::dump_on_fault is set),
//   * a testkit invariant check fails (the testkit hooks call dump()), or
//   * a signal arrives (the CLI forwards SIGUSR1 to dump()).
//
// The dump is sorted by sim time (ties broken by a total order over the
// event fields), so two runs of the same seed produce byte-identical
// post-mortems — the property the "flight-recorder" differential oracle
// checks.
//
// Install next to the Observer: construct one, then
// Observer::set_flight_recorder(&rec) before installing the observer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "fgcs/sim/time.hpp"

namespace fgcs::obs {

enum class FlightEventKind : std::uint8_t {
  kStateTransition = 0,
  kFaultInjected = 1,
  kEpisodeOpened = 2,
  kEpisodeClosed = 3,
  kSensorGap = 4,
  kGuestCheckpoint = 5,
  kGuestRestart = 6,
  kGuestMigration = 7,
  kGuestCompleted = 8,
  kGuestWorkLost = 9,
  kMachineDone = 10,
  kShardDone = 11,
  /// A machine failed its shard attempt enough times that the supervisor
  /// quarantined it (latches an automatic dump like the first injected
  /// fault — a quarantine is the supervisor declaring a post-mortem).
  kMachineQuarantined = 12,
  /// A shard attempt failed and is being retried (`machine` is the shard
  /// id, a = attempt number, b = the machine that failed it).
  kShardRetry = 13,
};

/// One recorded event. `machine` is the thread's current track (the
/// machine id in testbed runs; the shard id for kShardDone). `a`/`b` are
/// kind-specific small integers (from/to states, cause, fault kind, first
/// machine / machine count), `dur` the associated sim-duration (episode
/// or gap length, fault duration, work lost).
struct FlightEvent {
  sim::SimTime at;
  FlightEventKind kind = FlightEventKind::kStateTransition;
  std::uint32_t machine = 0;
  std::int32_t a = 0;
  std::int32_t b = 0;
  sim::SimDuration dur;
};

/// Stable sim-time order: (at, kind, machine, a, b, dur). Total over all
/// fields so equal-time events sort deterministically.
bool flight_event_before(const FlightEvent& x, const FlightEvent& y);

/// Copy of `events` sorted with flight_event_before.
std::vector<FlightEvent> sim_time_ordered(std::vector<FlightEvent> events);

/// One post-mortem line (no trailing newline), e.g.
/// "[10d 03:25:15.000000] m0002 transition S1->S3".
std::string format_flight_event(const FlightEvent& e);

class FlightRecorder {
 public:
  struct Options {
    /// Ring capacity; oldest events are dropped past it.
    std::size_t capacity = 4096;
    /// Post-mortem destination; "" disables automatic and dump() writes.
    std::string dump_path;
    /// Write the post-mortem when the first fault event is recorded.
    bool dump_on_fault = true;
  };

  FlightRecorder() : FlightRecorder(Options{}) {}
  explicit FlightRecorder(const Options& options);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends an event (thread-safe); may trigger the first-fault dump.
  void record(const FlightEvent& e);

  /// Ring contents, oldest recorded first (insertion order).
  std::vector<FlightEvent> events() const;

  std::uint64_t recorded() const;
  std::uint64_t dropped() const;
  std::size_t capacity() const { return options_.capacity; }
  const std::string& dump_path() const { return options_.dump_path; }

  /// True once a post-mortem has been written (or latched by a fault).
  bool dumped() const;

  /// Writes the post-mortem to Options::dump_path now (e.g. on a signal
  /// or an invariant failure). Returns false when no path is configured
  /// or the write failed.
  bool dump(std::string_view reason);

  /// Renders the post-mortem (header + sim-time-ordered events) to `out`.
  void write(std::ostream& out, std::string_view reason) const;

 private:
  struct Snapshot {
    std::vector<FlightEvent> events;
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
  };

  Snapshot snapshot() const;
  bool write_dump(std::string_view reason);

  Options options_;
  mutable std::mutex mutex_;
  std::vector<FlightEvent> ring_;
  std::size_t head_ = 0;
  std::uint64_t recorded_ = 0;
  bool dumped_ = false;
};

}  // namespace fgcs::obs

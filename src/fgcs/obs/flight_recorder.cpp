#include "fgcs/obs/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <tuple>

#include "fgcs/util/error.hpp"

namespace fgcs::obs {

namespace {

// "[10d 03:25:15.000123]" from the sim-time micros — integer math only,
// so formatting is deterministic.
std::string format_stamp(sim::SimTime at) {
  std::int64_t us = at.as_micros();
  const char* sign = "";
  if (us < 0) {
    sign = "-";
    us = -us;
  }
  const std::int64_t days = us / 86'400'000'000;
  us -= days * 86'400'000'000;
  const std::int64_t hours = us / 3'600'000'000;
  us -= hours * 3'600'000'000;
  const std::int64_t minutes = us / 60'000'000;
  us -= minutes * 60'000'000;
  const std::int64_t seconds = us / 1'000'000;
  us -= seconds * 1'000'000;
  char buf[96];
  std::snprintf(buf, sizeof buf, "[%s%lldd %02lld:%02lld:%02lld.%06lld]",
                sign, static_cast<long long>(days),
                static_cast<long long>(hours), static_cast<long long>(minutes),
                static_cast<long long>(seconds), static_cast<long long>(us));
  return buf;
}

const char* fault_kind_name(std::int32_t kind) {
  static const char* const kNames[] = {"crash", "dropout", "skew",
                                       "guest-kill"};
  return (kind >= 0 && kind < 4) ? kNames[kind] : "?";
}

}  // namespace

bool flight_event_before(const FlightEvent& x, const FlightEvent& y) {
  return std::make_tuple(x.at.as_micros(), static_cast<int>(x.kind), x.machine,
                         x.a, x.b, x.dur.as_micros()) <
         std::make_tuple(y.at.as_micros(), static_cast<int>(y.kind), y.machine,
                         y.a, y.b, y.dur.as_micros());
}

std::vector<FlightEvent> sim_time_ordered(std::vector<FlightEvent> events) {
  std::stable_sort(events.begin(), events.end(), flight_event_before);
  return events;
}

std::string format_flight_event(const FlightEvent& e) {
  char body[128];
  const auto dur_us = static_cast<long long>(e.dur.as_micros());
  switch (e.kind) {
    case FlightEventKind::kStateTransition:
      std::snprintf(body, sizeof body, "transition S%d->S%d", e.a, e.b);
      break;
    case FlightEventKind::kFaultInjected:
      std::snprintf(body, sizeof body, "fault %s dur_us=%lld",
                    fault_kind_name(e.a), dur_us);
      break;
    case FlightEventKind::kEpisodeOpened:
      std::snprintf(body, sizeof body, "episode_open cause=S%d", e.a);
      break;
    case FlightEventKind::kEpisodeClosed:
      std::snprintf(body, sizeof body, "episode_close cause=S%d dur_us=%lld",
                    e.a, dur_us);
      break;
    case FlightEventKind::kSensorGap:
      std::snprintf(body, sizeof body, "sensor_gap dur_us=%lld", dur_us);
      break;
    case FlightEventKind::kGuestCheckpoint:
      std::snprintf(body, sizeof body, "guest_checkpoint");
      break;
    case FlightEventKind::kGuestRestart:
      std::snprintf(body, sizeof body, "guest_restart");
      break;
    case FlightEventKind::kGuestMigration:
      std::snprintf(body, sizeof body, "guest_migration");
      break;
    case FlightEventKind::kGuestCompleted:
      std::snprintf(body, sizeof body, "guest_completed");
      break;
    case FlightEventKind::kGuestWorkLost:
      std::snprintf(body, sizeof body, "guest_work_lost dur_us=%lld", dur_us);
      break;
    case FlightEventKind::kMachineDone:
      std::snprintf(body, sizeof body, "machine_done episodes=%d samples=%d",
                    e.a, e.b);
      break;
    case FlightEventKind::kShardDone:
      std::snprintf(body, sizeof body,
                    "shard_done first_machine=%d machines=%d", e.a, e.b);
      break;
    case FlightEventKind::kMachineQuarantined:
      std::snprintf(body, sizeof body, "machine_quarantined failures=%d", e.a);
      break;
    case FlightEventKind::kShardRetry:
      std::snprintf(body, sizeof body,
                    "shard_retry attempt=%d failed_machine=%d", e.a, e.b);
      break;
    default:
      std::snprintf(body, sizeof body, "event kind=%d a=%d b=%d",
                    static_cast<int>(e.kind), e.a, e.b);
      break;
  }
  char line[200];
  const char* scope = e.kind == FlightEventKind::kShardDone ||
                              e.kind == FlightEventKind::kShardRetry
                          ? "shard"
                          : "m";
  std::snprintf(line, sizeof line, "%s %s%04u %s", format_stamp(e.at).c_str(),
                scope, e.machine, body);
  return line;
}

FlightRecorder::FlightRecorder(const Options& options) : options_(options) {
  fgcs::require(options_.capacity > 0,
                "FlightRecorder capacity must be positive");
  ring_.reserve(options_.capacity);
}

void FlightRecorder::record(const FlightEvent& e) {
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.size() < options_.capacity) {
      ring_.push_back(e);
    } else {
      ring_[head_] = e;
      head_ = (head_ + 1) % options_.capacity;
    }
    ++recorded_;
    // A quarantine is the supervisor giving up on a machine — as much of
    // a "something went wrong, capture the context" moment as the first
    // injected fault, so it latches the same automatic dump.
    const bool latching =
        e.kind == FlightEventKind::kFaultInjected ||
        e.kind == FlightEventKind::kMachineQuarantined;
    if (latching && options_.dump_on_fault && !options_.dump_path.empty() &&
        !dumped_) {
      dumped_ = true;  // latch before unlocking so only one thread dumps
      fire = true;
    }
  }
  if (fire) {
    write_dump(FlightEventKind::kMachineQuarantined == e.kind
                   ? "machine-quarantined"
                   : "fault-injected");
  }
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_ - ring_.size();
}

bool FlightRecorder::dumped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dumped_;
}

bool FlightRecorder::dump(std::string_view reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (options_.dump_path.empty()) return false;
    dumped_ = true;
  }
  return write_dump(reason);
}

FlightRecorder::Snapshot FlightRecorder::snapshot() const {
  Snapshot snap;
  snap.events = events();
  std::lock_guard<std::mutex> lock(mutex_);
  snap.recorded = recorded_;
  snap.dropped = recorded_ - ring_.size();
  return snap;
}

void FlightRecorder::write(std::ostream& out, std::string_view reason) const {
  const Snapshot snap = snapshot();
  out << "# fgcs flight recorder post-mortem\n";
  out << "# reason: " << reason << "\n";
  out << "# events: " << snap.events.size() << " retained, " << snap.dropped
      << " dropped (capacity " << options_.capacity << ")\n";
  for (const auto& e : sim_time_ordered(snap.events)) {
    out << format_flight_event(e) << "\n";
  }
}

bool FlightRecorder::write_dump(std::string_view reason) {
  std::ofstream out(options_.dump_path,
                    std::ios::out | std::ios::binary | std::ios::trunc);
  if (!out) return false;
  write(out, reason);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace fgcs::obs

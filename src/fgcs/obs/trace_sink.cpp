#include "fgcs/obs/trace_sink.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace fgcs::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void TraceSink::push(Event&& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++recorded_;
  if (capacity_ == 0) {
    events_.push_back(std::move(event));
    return;
  }
  if (events_.size() < capacity_) {
    events_.push_back(std::move(event));
    return;
  }
  // Ring is full: overwrite the oldest slot.
  events_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
}

void TraceSink::complete(std::string_view category, std::string_view name,
                         sim::SimTime start, sim::SimDuration duration,
                         std::uint32_t track, std::string args) {
  Event e;
  e.phase = Phase::kComplete;
  e.name = std::string(name);
  e.category = std::string(category);
  e.ts_us = start.as_micros();
  e.dur_us = duration.as_micros();
  e.track = track;
  e.args = std::move(args);
  push(std::move(e));
}

void TraceSink::instant(std::string_view category, std::string_view name,
                        sim::SimTime at, std::uint32_t track,
                        std::string args) {
  Event e;
  e.phase = Phase::kInstant;
  e.name = std::string(name);
  e.category = std::string(category);
  e.ts_us = at.as_micros();
  e.track = track;
  e.args = std::move(args);
  push(std::move(e));
}

void TraceSink::counter(std::string_view category, std::string_view name,
                        sim::SimTime at, std::uint32_t track, double value) {
  Event e;
  e.phase = Phase::kCounter;
  e.name = std::string(name);
  e.category = std::string(category);
  e.ts_us = at.as_micros();
  e.track = track;
  char buf[48];
  std::snprintf(buf, sizeof buf, "\"value\":%.17g", value);
  e.args = buf;
  push(std::move(e));
}

void TraceSink::name_track(std::uint32_t track, std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, existing] : track_names_) {
    if (id == track) {
      existing = std::string(name);
      return;
    }
  }
  track_names_.emplace_back(track, std::string(name));
}

std::vector<TraceSink::Event> TraceSink::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  out.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % std::max<std::size_t>(
                              events_.size(), 1)]);
  }
  return out;
}

std::size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t TraceSink::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_ - events_.size();
}

void TraceSink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  head_ = 0;
  recorded_ = 0;
}

void TraceSink::write_chrome_json(std::ostream& out) const {
  const auto snapshot = events();
  std::vector<std::pair<std::uint32_t, std::string>> tracks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tracks = track_names_;
  }

  out << "{\"traceEvents\":[";
  bool first = true;
  auto separator = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n  ";
  };
  for (const auto& [track, name] : tracks) {
    separator();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << track
        << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
  }
  for (const auto& e : snapshot) {
    separator();
    out << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
        << json_escape(e.category) << "\",\"ph\":\""
        << static_cast<char>(e.phase) << "\",\"ts\":" << e.ts_us
        << ",\"pid\":1,\"tid\":" << e.track;
    if (e.phase == Phase::kComplete) out << ",\"dur\":" << e.dur_us;
    if (e.phase == Phase::kInstant) out << ",\"s\":\"t\"";
    if (!e.args.empty()) out << ",\"args\":{" << e.args << "}";
    out << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace fgcs::obs

// Metrics registry: counters, gauges, and histograms with atomic hot paths.
//
// A metric is identified by a name plus an ordered-by-key label set
// ("detector.transitions{from=S1,to=S3}"). The registry hands out stable
// references; increments and observations are lock-free atomic operations
// so instrumented hot paths (event loop, scheduler ticks, detector samples)
// can run concurrently across the testbed's worker threads. Registration
// itself takes a mutex and should happen once per site, not per event.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fgcs::obs {

/// Label set attached to a metric family member, e.g. {{"from","S1"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing integer metric.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins floating-point metric with atomic max/add helpers.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }

  void add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }

  /// Raises the gauge to `v` if it is currently lower.
  void set_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]; one
/// overflow bucket catches the rest.
///
/// observe() costs exactly two relaxed atomic RMWs (bucket + sum): the
/// total count is derived from the bucket counts at read time instead of
/// being maintained as a third shared atomic, which measurably cuts
/// contention when many threads observe into one series (see the
/// histogram_observe microbench).
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  /// Total observations, derived by summing the buckets. Reads are not a
  /// hot path (snapshots/exports); writers stay two-RMW.
  std::uint64_t count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;

  const std::vector<double>& bounds() const { return bounds_; }

  /// Per-bucket counts; size() == bounds().size() + 1 (overflow last).
  std::vector<std::uint64_t> bucket_counts() const;

  /// Quantile estimate by linear interpolation inside the bucket that
  /// contains the q-th observation. Returns 0 when empty.
  double quantile(double q) const;

  /// Exponential 1-2-5 bounds from 1us to 100s — the default for the
  /// wall-clock profiling scopes.
  static std::vector<double> default_time_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<double> sum_{0.0};
};

/// One exported metric value (see MetricRegistry::snapshot).
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Labels labels;  // sorted by key
  Kind kind = Kind::kCounter;

  double value = 0.0;  // counter/gauge value

  // Histogram-only fields.
  std::uint64_t count = 0;
  double sum = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;

  /// "name" or "name{k=v,...}".
  std::string series() const;
};

/// Owns every metric and resolves (name, labels) -> stable reference.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Find-or-create. Throws ConfigError if the series already exists with
  /// a different metric kind.
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Histogram& histogram(std::string_view name, Labels labels = {},
                       std::vector<double> bounds = {});

  /// Consistent point-in-time listing, sorted by series name.
  std::vector<MetricSample> snapshot() const;

  /// CSV export: metric,labels,type,value,count,sum,p50,p90,p99.
  void write_csv(std::ostream& out) const;

  /// JSON export: array of metric objects (histograms include bounds and
  /// bucket counts so consumers can rebuild the distribution).
  void write_json(std::ostream& out) const;

  std::size_t size() const;

 private:
  struct Entry {
    MetricSample::Kind kind;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(std::string_view name, Labels&& labels,
                        MetricSample::Kind kind,
                        std::vector<double>&& bounds);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  // keyed by series string
};

/// Renders a sorted label set as "k=v,k2=v2".
std::string format_labels(const Labels& labels);

/// Quantile estimate from explicit histogram buckets, by linear
/// interpolation inside the bucket containing the q-th observation.
/// Bucket i counts observations <= bounds[i]; counts must have one extra
/// overflow bucket (counts.size() == bounds.size() + 1, clamped to the
/// last bound). Returns 0 when the buckets are empty. Shared by
/// Histogram::quantile and the windowed quantile queries of `fgcs stats`.
double quantile_from_buckets(const std::vector<double>& bounds,
                             const std::vector<std::uint64_t>& counts,
                             double q);

}  // namespace fgcs::obs

#include "fgcs/ishare/discovery.hpp"

#include <algorithm>

#include "fgcs/util/error.hpp"
#include "fgcs/util/rng.hpp"

namespace fgcs::ishare {

DiscoveryOverlay::DiscoveryOverlay(Config config) : config_(config) {
  fgcs::require(config_.per_hop_latency >= sim::SimDuration::zero(),
                "per_hop_latency must be >= 0");
}

PeerId DiscoveryOverlay::key_of(const std::string& name) {
  // FNV-1a over the name, finalized through SplitMix64 for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return util::SplitMix64(h).next();
}

PeerId DiscoveryOverlay::join(const std::string& peer_name) {
  const PeerId id = key_of(peer_name);
  fgcs::require(ring_.count(id) == 0,
                "peer already joined (or hash collision): " + peer_name);
  Peer peer;
  peer.name = peer_name;
  // Keys the new peer now owns migrate from the old owner (its successor):
  // a key belongs to the first peer clockwise at/after it, so after the
  // join that is `id` for exactly the keys whose owner-among-the-union
  // is `id`.
  if (!ring_.empty()) {
    auto succ_it = ring_.lower_bound(id);
    if (succ_it == ring_.end()) succ_it = ring_.begin();
    Peer& successor = succ_it->second;
    auto owner_in_union = [&](PeerId key) {
      // first peer >= key among ring ∪ {id}, wrapping to the smallest.
      auto it = ring_.lower_bound(key);
      PeerId best;
      bool found = false;
      if (it != ring_.end()) {
        best = it->first;
        found = true;
      }
      if (id >= key && (!found || id < best)) {
        best = id;
        found = true;
      }
      if (!found) best = std::min(ring_.begin()->first, id);
      return best;
    };
    for (auto it = successor.store.begin(); it != successor.store.end();) {
      if (owner_in_union(it->first) == id) {
        peer.store.emplace(it->first, std::move(it->second));
        it = successor.store.erase(it);
      } else {
        ++it;
      }
    }
  }
  ring_.emplace(id, std::move(peer));
  rebuild_fingers();
  return id;
}

void DiscoveryOverlay::leave(PeerId peer) {
  auto it = ring_.find(peer);
  fgcs::require(it != ring_.end(), "no such peer");
  if (ring_.size() > 1) {
    auto succ_it = std::next(it);
    if (succ_it == ring_.end()) succ_it = ring_.begin();
    for (auto& [key, descriptor] : it->second.store) {
      succ_it->second.store.emplace(key, std::move(descriptor));
    }
  }
  ring_.erase(it);
  rebuild_fingers();
}

PeerId DiscoveryOverlay::owner_of(PeerId key) const {
  FGCS_ASSERT(!ring_.empty());
  auto it = ring_.lower_bound(key);
  if (it == ring_.end()) return ring_.begin()->first;
  return it->first;
}

void DiscoveryOverlay::rebuild_fingers() {
  for (auto& [id, peer] : ring_) {
    peer.fingers.clear();
    for (int k = 0; k < 64; ++k) {
      const PeerId target = id + (1ULL << k);  // wraps naturally (mod 2^64)
      const PeerId finger = owner_of(target);
      if (peer.fingers.empty() || peer.fingers.back() != finger) {
        peer.fingers.push_back(finger);
      }
    }
  }
}

namespace {
/// Clockwise distance from a to b on the 2^64 ring.
std::uint64_t ring_distance(PeerId a, PeerId b) { return b - a; }
}  // namespace

PeerId DiscoveryOverlay::route(PeerId from, PeerId key, int* hops) const {
  FGCS_ASSERT(ring_.count(from) > 0);
  const PeerId target_owner = owner_of(key);
  PeerId current = from;
  int guard = 0;
  while (current != target_owner) {
    const Peer& peer = ring_.at(current);
    // Greedy Chord routing: the finger that travels furthest clockwise
    // without overshooting the target owner. The owner itself is always a
    // valid final hop (every peer's finger set contains its successor,
    // which guarantees progress).
    PeerId next = target_owner;
    std::uint64_t best_remaining = ring_distance(current, target_owner);
    const std::uint64_t to_owner = ring_distance(current, target_owner);
    for (const PeerId finger : peer.fingers) {
      if (finger == current) continue;
      const std::uint64_t travelled = ring_distance(current, finger);
      if (travelled == 0 || travelled > to_owner) continue;  // overshoot
      const std::uint64_t remaining = ring_distance(finger, target_owner);
      if (remaining < best_remaining) {
        best_remaining = remaining;
        next = finger;
      }
    }
    ++(*hops);
    current = next;
    FGCS_ASSERT(++guard <= 200);  // routing must terminate
  }
  return target_owner;
}

RouteStats DiscoveryOverlay::stats_for(int hops) const {
  RouteStats s;
  s.hops = hops;
  s.latency = config_.per_hop_latency * static_cast<std::int64_t>(hops);
  return s;
}

RouteStats DiscoveryOverlay::publish(PeerId via, ResourceDescriptor descriptor) {
  fgcs::require(!ring_.empty(), "overlay has no peers");
  fgcs::require(!descriptor.name.empty(), "descriptor needs a name");
  const PeerId key = key_of(descriptor.name);
  int hops = 0;
  const PeerId owner = route(via, key, &hops);
  ring_.at(owner).store[key] = std::move(descriptor);
  return stats_for(hops);
}

bool DiscoveryOverlay::unpublish(PeerId via, const std::string& name,
                                 RouteStats* stats) {
  const PeerId key = key_of(name);
  int hops = 0;
  const PeerId owner = route(via, key, &hops);
  if (stats) *stats = stats_for(hops);
  return ring_.at(owner).store.erase(key) > 0;
}

std::optional<ResourceDescriptor> DiscoveryOverlay::lookup(
    PeerId via, const std::string& name, RouteStats* stats) const {
  const PeerId key = key_of(name);
  int hops = 0;
  const PeerId owner = route(via, key, &hops);
  if (stats) *stats = stats_for(hops);
  const auto& store = ring_.at(owner).store;
  const auto it = store.find(key);
  if (it == store.end()) return std::nullopt;
  return it->second;
}

std::vector<ResourceDescriptor> DiscoveryOverlay::find_available(
    PeerId via, double min_cpu_ghz, std::size_t max_results,
    RouteStats* stats) const {
  fgcs::require(ring_.count(via) > 0, "no such peer");
  std::vector<ResourceDescriptor> results;
  int hops = 0;
  // Walk the ring clockwise starting from `via` itself.
  auto it = ring_.find(via);
  for (std::size_t visited = 0;
       visited < ring_.size() && results.size() < max_results; ++visited) {
    for (const auto& [key, descriptor] : it->second.store) {
      if (descriptor.cpu_ghz < min_cpu_ghz) continue;
      if (monitor::is_failure(descriptor.state)) continue;
      results.push_back(descriptor);
      if (results.size() >= max_results) break;
    }
    ++it;
    if (it == ring_.end()) it = ring_.begin();
    ++hops;
  }
  if (stats) *stats = stats_for(hops);
  return results;
}

std::size_t DiscoveryOverlay::descriptor_count() const {
  std::size_t n = 0;
  for (const auto& [id, peer] : ring_) n += peer.store.size();
  return n;
}

}  // namespace fgcs::ishare

// P2P resource publication and discovery — the iShare substrate.
//
// "In iShare, resource publication and discovery are enabled by a
//  Peer-to-Peer network." (§5, citing [12, 13])
//
// DiscoveryOverlay is a Chord-style consistent-hashing ring: every peer
// owns the key range between its predecessor's id and its own id;
// resource descriptors are stored at the peer owning hash(name); requests
// route greedily through finger tables (successor(p + 2^k)) in O(log n)
// hops. Joins and graceful leaves hand the affected keys over, exactly
// like published machines entering and leaving the cycle-sharing pool.
//
// The overlay is synchronous and deterministic: routing returns hop
// counts (and a modelled network latency) instead of scheduling events,
// which is all the availability study needs from the substrate.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fgcs/monitor/availability.hpp"
#include "fgcs/sim/time.hpp"

namespace fgcs::ishare {

using PeerId = std::uint64_t;  // position on the hash ring

/// What a provider publishes about a machine.
struct ResourceDescriptor {
  std::string name;   // unique resource id, e.g. "lab-pc-07"
  std::string owner;  // provider peer name
  double cpu_ghz = 1.0;
  double ram_mb = 1024.0;
  /// The availability-model state the monitor last advertised.
  monitor::AvailabilityState state =
      monitor::AvailabilityState::kS1FullAvailability;
  sim::SimTime published_at;
};

/// Routing cost of one overlay operation.
struct RouteStats {
  int hops = 0;
  /// Modelled network latency (per_hop_latency * hops).
  sim::SimDuration latency;
};

class DiscoveryOverlay {
 public:
  struct Config {
    /// Latency charged per overlay hop (LAN/WAN mix).
    sim::SimDuration per_hop_latency = sim::SimDuration::millis(20);
  };

  DiscoveryOverlay() : DiscoveryOverlay(Config{}) {}
  explicit DiscoveryOverlay(Config config);

  /// Adds a peer; keys it now owns migrate from its successor.
  /// Peer names must be unique.
  PeerId join(const std::string& peer_name);

  /// Graceful leave: the peer's stored keys move to its successor.
  void leave(PeerId peer);

  std::size_t peer_count() const { return ring_.size(); }
  bool has_peer(PeerId peer) const { return ring_.count(peer) > 0; }

  /// Publishes a descriptor, routing from `via` to the owner peer.
  RouteStats publish(PeerId via, ResourceDescriptor descriptor);

  /// Removes a published descriptor by name; returns false if absent.
  bool unpublish(PeerId via, const std::string& name,
                 RouteStats* stats = nullptr);

  /// Exact-name lookup, routed from `via`.
  std::optional<ResourceDescriptor> lookup(PeerId via,
                                           const std::string& name,
                                           RouteStats* stats = nullptr) const;

  /// Attribute search: walks the ring from the peer after `via`, visiting
  /// every peer's store until `max_results` matches are found (published
  /// state S1/S2, at least `min_cpu_ghz`). Hop count reflects the walk.
  std::vector<ResourceDescriptor> find_available(
      PeerId via, double min_cpu_ghz, std::size_t max_results,
      RouteStats* stats = nullptr) const;

  /// Total descriptors stored across the ring.
  std::size_t descriptor_count() const;

  /// The ring id a name hashes to (exposed for tests).
  static PeerId key_of(const std::string& name);

 private:
  struct Peer {
    std::string name;
    std::map<PeerId, ResourceDescriptor> store;  // key -> descriptor
    std::vector<PeerId> fingers;                 // successor(id + 2^k)
  };

  /// Peer owning `key`: the first peer clockwise at or after the key.
  PeerId owner_of(PeerId key) const;

  /// Greedy finger routing from `from` toward the owner of `key`;
  /// returns the owner and accumulates hops.
  PeerId route(PeerId from, PeerId key, int* hops) const;

  void rebuild_fingers();
  RouteStats stats_for(int hops) const;

  Config config_;
  std::map<PeerId, Peer> ring_;  // sorted by ring position
};

}  // namespace fgcs::ishare

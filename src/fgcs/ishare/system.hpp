// An iShare-like FGCS middleware (§5: "an Internet-sharing system ...
// which supports FGCS").
//
// The paper's testbed ran iShare: each published machine runs a resource
// monitor; guest jobs are submitted to published machines, run
// concurrently with host processes, and are reniced / suspended /
// terminated by the §3.2 policy as host load changes. FgcsSystem is that
// middleware over simulated machines:
//
//   * nodes = fine-grained os::Machine instances with their own host
//     workloads, samplers, detectors, and guest controllers;
//   * a FIFO job queue; jobs are dispatched to nodes whose model state is
//     S1/S2 and that run no guest (one guest per machine, §3.2);
//   * a terminated guest loses its work and is requeued after a
//     resubmission delay; completion is the guest process finishing its
//     compute naturally.
//
// The discrete-event kernel drives one sampling sweep per period across
// all nodes, exactly like the deployed monitor's vmstat cadence.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fgcs/monitor/guest_controller.hpp"
#include "fgcs/monitor/machine_sampler.hpp"
#include "fgcs/sim/simulation.hpp"

namespace fgcs::ishare {

using NodeId = std::uint32_t;
using JobId = std::uint32_t;

/// A compute-bound guest job (§1: sequential batch work, response time is
/// the metric).
struct GuestJob {
  std::string name = "guest-job";
  /// CPU-seconds of work at full machine speed.
  sim::SimDuration work = sim::SimDuration::minutes(30);
  double resident_mb = 50.0;
  double working_set_mb = -1.0;  // defaults to resident_mb
};

enum class JobStatus : std::uint8_t { kQueued, kRunning, kCompleted };

const char* to_string(JobStatus s);

struct JobRecord {
  JobId id = 0;
  GuestJob job;
  JobStatus status = JobStatus::kQueued;
  sim::SimTime submitted;
  sim::SimTime completed;  // valid when status == kCompleted
  /// Times the job was killed by the availability policy and requeued.
  int restarts = 0;
  /// Node that ran (or is running) the job most recently.
  NodeId last_node = 0;
  bool ever_started = false;

  sim::SimDuration response() const { return completed - submitted; }
};

/// Per-node configuration: the machine profile plus the host workload
/// that the machine's owner runs.
struct NodeConfig {
  os::SchedulerParams scheduler = os::SchedulerParams::linux_2_4();
  os::MemoryParams memory = os::MemoryParams::linux_1gb();
  monitor::ThresholdPolicy policy = monitor::ThresholdPolicy::linux_testbed();
  std::vector<os::ProcessSpec> host_processes;
};

class FgcsSystem {
 public:
  struct Config {
    sim::SimDuration sample_period = sim::SimDuration::seconds(15);
    /// Detection + re-staging + queue latency after a guest is killed.
    sim::SimDuration resubmit_delay = sim::SimDuration::minutes(5);
    std::uint64_t seed = 1;
  };

  FgcsSystem() : FgcsSystem(Config{}) {}
  explicit FgcsSystem(Config config);

  /// Publishes a machine into the pool. Host processes start immediately.
  NodeId add_node(NodeConfig config);

  /// Submits a job at the current simulated time.
  JobId submit(GuestJob job);

  /// Advances the whole system (machines, monitors, dispatch).
  void run_until(sim::SimTime t);
  void run_for(sim::SimDuration d) { run_until(now() + d); }

  sim::SimTime now() const { return simulation_.now(); }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t job_count() const { return jobs_.size(); }
  const JobRecord& job(JobId id) const;

  /// The availability model state of a node right now.
  monitor::AvailabilityState node_state(NodeId id) const;

  /// Unavailability episodes a node's detector has recorded.
  std::span<const monitor::UnavailabilityEpisode> node_episodes(
      NodeId id) const;

  std::size_t queued_count() const { return queue_.size(); }
  std::size_t running_count() const;

  struct Stats {
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t running = 0;
    std::size_t queued = 0;
    int total_restarts = 0;
    double mean_response_hours = 0.0;  // over completed jobs
  };
  Stats stats() const;

 private:
  struct Node {
    std::unique_ptr<os::Machine> machine;
    std::unique_ptr<monitor::MachineSampler> sampler;
    std::unique_ptr<monitor::UnavailabilityDetector> detector;
    std::optional<monitor::GuestController> controller;
    os::ProcessId guest_pid = 0;
    JobId running_job = 0;
    bool busy = false;
  };

  void ensure_started();
  void sweep();                 // one sampling pass over every node
  void dispatch();              // queue -> free available nodes
  void requeue_later(JobId id);

  Config config_;
  sim::Simulation simulation_;
  std::vector<Node> nodes_;
  std::vector<JobRecord> jobs_;
  std::vector<JobId> queue_;  // FIFO
  bool started_ = false;
};

}  // namespace fgcs::ishare

#include "fgcs/ishare/system.hpp"

#include <algorithm>

#include "fgcs/util/error.hpp"
#include "fgcs/util/rng.hpp"

namespace fgcs::ishare {

const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kCompleted:
      return "completed";
  }
  return "?";
}

FgcsSystem::FgcsSystem(Config config) : config_(config) {
  fgcs::require(config_.sample_period > sim::SimDuration::zero(),
                "sample_period must be > 0");
  fgcs::require(config_.resubmit_delay >= sim::SimDuration::zero(),
                "resubmit_delay must be >= 0");
}

NodeId FgcsSystem::add_node(NodeConfig node_config) {
  const auto id = static_cast<NodeId>(nodes_.size());
  Node node;
  node.machine = std::make_unique<os::Machine>(
      node_config.scheduler, node_config.memory,
      util::RngStream::derive(config_.seed, {0x4E4F4445u, id}));
  for (auto& spec : node_config.host_processes) {
    node.machine->spawn(spec);
  }
  node.sampler = std::make_unique<monitor::MachineSampler>(*node.machine);
  node.detector = std::make_unique<monitor::UnavailabilityDetector>(
      node_config.policy);
  nodes_.push_back(std::move(node));
  return id;
}

JobId FgcsSystem::submit(GuestJob job) {
  fgcs::require(job.work > sim::SimDuration::zero(), "job work must be > 0");
  const auto id = static_cast<JobId>(jobs_.size());
  JobRecord record;
  record.id = id;
  record.job = std::move(job);
  record.submitted = now();
  jobs_.push_back(std::move(record));
  queue_.push_back(id);
  return id;
}

const JobRecord& FgcsSystem::job(JobId id) const {
  fgcs::require(id < jobs_.size(), "no such job");
  return jobs_[id];
}

monitor::AvailabilityState FgcsSystem::node_state(NodeId id) const {
  fgcs::require(id < nodes_.size(), "no such node");
  return nodes_[id].detector->state();
}

std::span<const monitor::UnavailabilityEpisode> FgcsSystem::node_episodes(
    NodeId id) const {
  fgcs::require(id < nodes_.size(), "no such node");
  return nodes_[id].detector->episodes();
}

std::size_t FgcsSystem::running_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.busy) ++n;
  }
  return n;
}

void FgcsSystem::ensure_started() {
  if (started_) return;
  started_ = true;
  simulation_.every(config_.sample_period, [this] {
    sweep();
    dispatch();
  });
}

void FgcsSystem::run_until(sim::SimTime t) {
  fgcs::require(!nodes_.empty(), "add at least one node before running");
  ensure_started();
  simulation_.run_until(t);
  // Bring every machine fully up to the requested instant (the last
  // sampling event may precede it).
  for (auto& node : nodes_) {
    node.machine->run_until(t);
  }
}

void FgcsSystem::sweep() {
  const sim::SimTime t = simulation_.now();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    Node& node = nodes_[id];
    node.machine->run_until(t);
    node.detector->observe(node.sampler->sample());

    if (!node.busy) continue;
    JobRecord& record = jobs_[node.running_job];
    node.controller->apply(*node.detector);

    const auto& guest = node.machine->process(node.guest_pid);
    if (guest.state() == os::ProcState::kExited) {
      const auto& actions = node.controller->actions();
      const bool killed =
          !actions.empty() &&
          (actions.back().action == monitor::GuestAction::kTerminate ||
           actions.back().action == monitor::GuestAction::kObservedKilled);
      if (killed) {
        // Killed by the availability policy — or observed already dead
        // after an external/injected kill: the work is lost; requeue
        // after the detection/re-staging delay.
        ++record.restarts;
        record.status = JobStatus::kQueued;
        requeue_later(record.id);
      } else {
        record.status = JobStatus::kCompleted;
        record.completed = guest.exit_time();
      }
      node.busy = false;
      node.controller.reset();
    }
  }
}

void FgcsSystem::requeue_later(JobId id) {
  simulation_.after(config_.resubmit_delay, [this, id] {
    queue_.push_back(id);
  });
}

void FgcsSystem::dispatch() {
  if (queue_.empty()) return;
  const sim::SimTime t = simulation_.now();
  for (NodeId id = 0; id < nodes_.size() && !queue_.empty(); ++id) {
    Node& node = nodes_[id];
    if (node.busy) continue;
    if (monitor::is_failure(node.detector->state())) continue;
    if (node.detector->transient_high()) continue;
    // §5.2: "the system should wait for about 5 minutes before harvesting
    // a machine recently released from heavy host workloads" — short gaps
    // after an episode are usually noise.
    const auto episodes = node.detector->episodes();
    if (!episodes.empty() && !episodes.back().open &&
        t - episodes.back().end < node.detector->policy().harvest_delay) {
      continue;
    }

    const JobId job_id = queue_.front();
    queue_.erase(queue_.begin());
    JobRecord& record = jobs_[job_id];

    os::ProcessSpec spec;
    spec.name = record.job.name + "#" + std::to_string(job_id);
    spec.kind = os::ProcessKind::kGuest;
    // S2 placement starts at lowest priority immediately (§3.2).
    spec.nice = node.detector->state() ==
                        monitor::AvailabilityState::kS2LowestPriority
                    ? 19
                    : 0;
    spec.resident_mb = record.job.resident_mb;
    spec.working_set_mb = record.job.working_set_mb;
    spec.program = os::fixed_program({os::Phase::compute(record.job.work)});

    node.guest_pid = node.machine->spawn(spec);
    node.controller.emplace(*node.machine, node.guest_pid, 0);
    node.running_job = job_id;
    node.busy = true;
    record.status = JobStatus::kRunning;
    record.last_node = id;
    record.ever_started = true;
  }
}

FgcsSystem::Stats FgcsSystem::stats() const {
  Stats s;
  s.submitted = jobs_.size();
  s.queued = queue_.size();
  double response_sum = 0.0;
  for (const auto& record : jobs_) {
    s.total_restarts += record.restarts;
    switch (record.status) {
      case JobStatus::kCompleted:
        ++s.completed;
        response_sum += record.response().as_hours();
        break;
      case JobStatus::kRunning:
        ++s.running;
        break;
      case JobStatus::kQueued:
        break;
    }
  }
  if (s.completed > 0) {
    s.mean_response_hours = response_sum / static_cast<double>(s.completed);
  }
  return s;
}

}  // namespace fgcs::ishare

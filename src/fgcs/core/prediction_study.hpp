// The prediction study (the paper's §6 future work, built and evaluated).
//
// Runs a panel of predictors over a testbed trace: the paper's proposed
// history-window scheme, a per-machine and a pooled variant, a renewal
// (semi-Markov) predictor, and baselines. Queries roll through a held-out
// evaluation period for several window lengths.
#pragma once

#include <vector>

#include "fgcs/predict/evaluation.hpp"
#include "fgcs/trace/calendar.hpp"
#include "fgcs/trace/trace_set.hpp"

namespace fgcs::core {

struct PredictionStudyConfig {
  /// Days reserved for warm-up history before evaluation starts.
  int train_days = 56;
  /// Window lengths to evaluate (guest-job run-time estimates).
  std::vector<sim::SimDuration> windows = {
      sim::SimDuration::hours(1), sim::SimDuration::hours(2),
      sim::SimDuration::hours(4), sim::SimDuration::hours(8)};
  sim::SimDuration stride = sim::SimDuration::minutes(45);
  double decision_threshold = 0.5;

  /// Evaluate each (machine, window) cell on the global pool instead of
  /// sequentially. Bit-identical to the sequential study (proven by the
  /// "prediction-parallel" diff oracle); flip off to pin everything to
  /// the calling thread.
  bool parallel = true;
};

struct PredictionStudyRow {
  sim::SimDuration window;
  predict::EvaluationResult result;
};

std::vector<PredictionStudyRow> run_prediction_study(
    const trace::TraceSet& trace, const trace::TraceCalendar& calendar,
    const PredictionStudyConfig& config = {});

}  // namespace fgcs::core

#include "fgcs/core/analyzer.hpp"

#include <algorithm>
#include <vector>

#include "fgcs/util/error.hpp"

namespace fgcs::core {

using monitor::AvailabilityState;

TraceAnalyzer::TraceAnalyzer(const trace::TraceSet& trace,
                             trace::TraceCalendar calendar)
    : trace_(trace), calendar_(calendar) {}

Table2Stats TraceAnalyzer::table2() const {
  const std::uint32_t n = trace_.machine_count();
  struct Counts {
    int total = 0, cpu = 0, mem = 0, urr = 0;
  };
  std::vector<Counts> per_machine(n);
  std::size_t urr_total = 0, urr_reboots = 0;

  for (const auto& r : trace_.records()) {
    auto& c = per_machine[r.machine];
    ++c.total;
    switch (r.cause) {
      case AvailabilityState::kS3CpuUnavailable:
        ++c.cpu;
        break;
      case AvailabilityState::kS4MemoryThrashing:
        ++c.mem;
        break;
      case AvailabilityState::kS5MachineUnavailable:
        ++c.urr;
        ++urr_total;
        if (r.is_reboot()) ++urr_reboots;
        break;
      default:
        FGCS_ASSERT(!"trace record with non-failure cause");
    }
  }

  Table2Stats out;
  out.machines = n;
  auto fold = [&](auto member, Table2Stats::Range& range) {
    range.min = per_machine.empty() ? 0 : per_machine[0].*member;
    range.max = range.min;
    double sum = 0.0;
    for (const auto& c : per_machine) {
      range.min = std::min(range.min, c.*member);
      range.max = std::max(range.max, c.*member);
      sum += c.*member;
    }
    range.mean = per_machine.empty() ? 0.0 : sum / static_cast<double>(n);
  };
  fold(&Counts::total, out.total);
  fold(&Counts::cpu, out.cpu_contention);
  fold(&Counts::mem, out.mem_contention);
  fold(&Counts::urr, out.urr);

  bool first = true;
  for (const auto& c : per_machine) {
    if (c.total == 0) continue;
    const double t = c.total;
    const double cpu_pct = c.cpu / t, mem_pct = c.mem / t, urr_pct = c.urr / t;
    if (first) {
      out.cpu_pct_min = out.cpu_pct_max = cpu_pct;
      out.mem_pct_min = out.mem_pct_max = mem_pct;
      out.urr_pct_min = out.urr_pct_max = urr_pct;
      first = false;
    } else {
      out.cpu_pct_min = std::min(out.cpu_pct_min, cpu_pct);
      out.cpu_pct_max = std::max(out.cpu_pct_max, cpu_pct);
      out.mem_pct_min = std::min(out.mem_pct_min, mem_pct);
      out.mem_pct_max = std::max(out.mem_pct_max, mem_pct);
      out.urr_pct_min = std::min(out.urr_pct_min, urr_pct);
      out.urr_pct_max = std::max(out.urr_pct_max, urr_pct);
    }
  }
  if (urr_total > 0) {
    out.reboot_fraction_of_urr =
        static_cast<double>(urr_reboots) / static_cast<double>(urr_total);
  }
  return out;
}

namespace {
IntervalClassStats summarize_intervals(const std::vector<double>& hours) {
  IntervalClassStats s;
  s.count = hours.size();
  s.ecdf_hours = stats::Ecdf{hours};
  // Mean over the samples in *canonical* (machine-then-time) order, not
  // Ecdf::mean()'s sorted order: float addition is order-sensitive, and
  // the streaming query engine reproduces this sum while scanning
  // intervals in canonical order without materializing them — summing
  // here in sorted order would break that bit-identity.
  double sum = 0.0;
  for (const double h : hours) sum += h;
  s.mean_hours =
      hours.empty() ? 0.0 : sum / static_cast<double>(hours.size());
  if (!hours.empty()) {
    const double five_min = 5.0 / 60.0;
    s.frac_under_5min = s.ecdf_hours(five_min);
    s.frac_5min_to_2h = s.ecdf_hours.mass_between(five_min, 2.0);
    s.frac_2h_to_4h = s.ecdf_hours.mass_between(2.0, 4.0);
    s.frac_4h_to_6h = s.ecdf_hours.mass_between(4.0, 6.0);
  }
  return s;
}
}  // namespace

IntervalStats TraceAnalyzer::intervals() const {
  std::vector<double> weekday_hours, weekend_hours;
  for (const auto& iv : trace_.availability_intervals()) {
    const double h = iv.length().as_hours();
    if (calendar_.is_weekend(iv.start)) {
      weekend_hours.push_back(h);
    } else {
      weekday_hours.push_back(h);
    }
  }
  IntervalStats out;
  out.weekday = summarize_intervals(weekday_hours);
  out.weekend = summarize_intervals(weekend_hours);
  return out;
}

HourlyPattern TraceAnalyzer::hourly() const {
  const int days = std::max(
      1, calendar_.day_index(trace_.horizon_end() -
                             sim::SimDuration::micros(1)) +
             1);
  // counts[day][hour]: testbed-wide number of episodes overlapping that
  // hour of that day.
  std::vector<std::array<double, 24>> counts(
      static_cast<std::size_t>(days), std::array<double, 24>{});
  for (const auto& r : trace_.records()) {
    // Clamp the (rare) open-ended or horizon-crossing episodes.
    const sim::SimTime start = std::max(r.start, trace_.horizon_start());
    const sim::SimTime end = std::min(
        std::max(r.end, start + sim::SimDuration::micros(1)),
        trace_.horizon_end());
    const std::int64_t hour_us = sim::SimDuration::hours(1).as_micros();
    std::int64_t first_hour = start.as_micros() / hour_us;
    const std::int64_t last_hour = (end.as_micros() - 1) / hour_us;
    for (std::int64_t hh = first_hour; hh <= last_hour; ++hh) {
      const auto day = static_cast<std::size_t>(hh / 24);
      if (day >= counts.size()) break;
      counts[day][static_cast<std::size_t>(hh % 24)] += 1.0;
    }
  }

  stats::HourOfDayBinner weekday_binner, weekend_binner;
  int wd = 0, we = 0;
  for (int d = 0; d < days; ++d) {
    if (calendar_.is_weekend_day(d)) {
      weekend_binner.add_day(counts[static_cast<std::size_t>(d)]);
      ++we;
    } else {
      weekday_binner.add_day(counts[static_cast<std::size_t>(d)]);
      ++wd;
    }
  }

  HourlyPattern out;
  out.weekday_days = wd;
  out.weekend_days = we;
  for (std::size_t h = 0; h < 24; ++h) {
    const auto w = weekday_binner.hour(h);
    out.weekday[h] = {w.mean, w.min, w.max, w.stddev};
    const auto e = weekend_binner.hour(h);
    out.weekend[h] = {e.mean, e.min, e.max, e.stddev};
  }
  return out;
}

double TraceAnalyzer::hourly_relative_deviation(bool weekend) const {
  const HourlyPattern pattern = hourly();
  const auto& rows = weekend ? pattern.weekend : pattern.weekday;
  double sum = 0.0;
  int n = 0;
  for (const auto& row : rows) {
    if (row.mean < 0.5) continue;  // skip near-empty hours
    sum += row.stddev / row.mean;
    ++n;
  }
  return n == 0 ? 0.0 : sum / n;
}

}  // namespace fgcs::core

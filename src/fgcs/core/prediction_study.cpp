#include "fgcs/core/prediction_study.hpp"

#include <memory>

#include "fgcs/predict/baselines.hpp"
#include "fgcs/predict/history_window.hpp"
#include "fgcs/predict/robust_history.hpp"
#include "fgcs/predict/semi_markov.hpp"
#include "fgcs/util/error.hpp"

namespace fgcs::core {

std::vector<PredictionStudyRow> run_prediction_study(
    const trace::TraceSet& trace, const trace::TraceCalendar& calendar,
    const PredictionStudyConfig& config) {
  fgcs::require(config.train_days >= 1, "train_days must be >= 1");
  const sim::SimTime eval_begin =
      trace.horizon_start() + sim::SimDuration::days(config.train_days);
  fgcs::require(eval_begin < trace.horizon_end(),
                "train period consumes the whole trace");

  const trace::TraceIndex index(trace);

  std::vector<std::unique_ptr<predict::AvailabilityPredictor>> predictors;
  predictors.push_back(std::make_unique<predict::HistoryWindowPredictor>());
  {
    predict::HistoryWindowConfig pooled;
    pooled.pool_machines = true;
    predictors.push_back(
        std::make_unique<predict::HistoryWindowPredictor>(pooled));
  }
  predictors.push_back(std::make_unique<predict::RobustHistoryPredictor>());
  predictors.push_back(std::make_unique<predict::SemiMarkovPredictor>());
  predictors.push_back(std::make_unique<predict::RecentRatePredictor>());
  predictors.push_back(
      std::make_unique<predict::SaturatingCounterPredictor>());
  predictors.push_back(std::make_unique<predict::AlwaysAvailablePredictor>());

  std::vector<PredictionStudyRow> rows;
  for (const auto window : config.windows) {
    predict::EvaluationConfig eval;
    eval.begin = eval_begin;
    eval.end = trace.horizon_end();
    eval.window = window;
    eval.stride = config.stride;
    eval.decision_threshold = config.decision_threshold;
    eval.parallel = config.parallel;
    for (const auto& p : predictors) {
      rows.push_back({window, evaluate_predictor(*p, index, calendar, eval)});
    }
  }
  return rows;
}

}  // namespace fgcs::core

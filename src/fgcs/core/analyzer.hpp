// Trace analysis: regenerates the paper's Table 2, Figure 6, and Figure 7
// statistics from a TraceSet.
#pragma once

#include <array>
#include <cstddef>

#include "fgcs/stats/ecdf.hpp"
#include "fgcs/stats/histogram.hpp"
#include "fgcs/trace/calendar.hpp"
#include "fgcs/trace/trace_set.hpp"

namespace fgcs::core {

/// Table 2: per-machine unavailability counts by cause over the trace.
struct Table2Stats {
  struct Range {
    int min = 0;
    int max = 0;
    double mean = 0.0;
  };
  Range total;          // all causes
  Range cpu_contention; // S3
  Range mem_contention; // S4
  Range urr;            // S5

  /// Per-machine percentage ranges (the paper's "69-79%" style rows).
  double cpu_pct_min = 0.0, cpu_pct_max = 0.0;
  double mem_pct_min = 0.0, mem_pct_max = 0.0;
  double urr_pct_min = 0.0, urr_pct_max = 0.0;

  /// Fraction of URR episodes shorter than one minute (§5.1: ~90% of URR
  /// originated from machine reboots).
  double reboot_fraction_of_urr = 0.0;

  std::uint32_t machines = 0;
};

/// Figure 6: availability-interval length distribution for one day class.
struct IntervalClassStats {
  stats::Ecdf ecdf_hours;
  std::size_t count = 0;
  double mean_hours = 0.0;
  double frac_under_5min = 0.0;   // the paper's ~5% small gaps
  double frac_5min_to_2h = 0.0;   // the paper's "flat" region
  double frac_2h_to_4h = 0.0;     // ~60% on weekdays
  double frac_4h_to_6h = 0.0;     // ~60% on weekends
};

struct IntervalStats {
  IntervalClassStats weekday;
  IntervalClassStats weekend;
};

/// Figure 7: per-hour-of-day unavailability occurrences across the
/// testbed, mean and range over days, by day class. An episode spanning
/// several hours is counted in each hour it overlaps (§5.3).
struct HourlyPattern {
  struct HourRow {
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double stddev = 0.0;
  };
  std::array<HourRow, 24> weekday{};
  std::array<HourRow, 24> weekend{};
  int weekday_days = 0;
  int weekend_days = 0;
};

class TraceAnalyzer {
 public:
  explicit TraceAnalyzer(const trace::TraceSet& trace,
                         trace::TraceCalendar calendar = trace::TraceCalendar{});

  Table2Stats table2() const;
  IntervalStats intervals() const;
  HourlyPattern hourly() const;

  /// Hour-of-day deviation metric used for the predictability claim: the
  /// mean over hours of (stddev / max(mean, eps)) of per-day counts —
  /// small values mean "daily patterns are comparable to recent history".
  double hourly_relative_deviation(bool weekend) const;

 private:
  const trace::TraceSet& trace_;
  trace::TraceCalendar calendar_;
};

}  // namespace fgcs::core

#include "fgcs/core/testbed.hpp"

#include <algorithm>
#include <mutex>
#include <optional>

#include "fgcs/fault/injector.hpp"
#include "fgcs/monitor/detector.hpp"
#include "fgcs/monitor/machine_sampler.hpp"
#include "fgcs/obs/observer.hpp"
#include "fgcs/sim/simulation.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/parallel.hpp"

namespace fgcs::core {

void TestbedConfig::validate() const {
  fgcs::require(machines >= 1, "testbed needs at least one machine");
  fgcs::require(days >= 1, "testbed needs at least one day");
  profile.validate();
  policy.validate();
  fgcs::require(ram_mb > kernel_mb && kernel_mb >= 0,
                "invalid testbed memory sizes");
  faults.validate();
}

namespace {

/// Per-machine fault-injection state while walking: the live session plus
/// the dropout bookkeeping the sampling loop needs to report sensor gaps
/// once per dropout (not once per missed sample).
struct FaultRuntime {
  fault::MachineFaultSession session;
  bool dropped = false;
  sim::SimTime last_sample_time;

  FaultRuntime(const fault::FaultInjector& injector, trace::MachineId machine,
               sim::SimTime begin)
      : session(injector, machine), last_sample_time(begin) {}
};

/// Drives the detector over a machine's synthesized load, invoking
/// `on_sample(sample, state)` for every observation. Sampling runs as a
/// periodic task on a per-machine sim::Simulation — the same event loop
/// the iShare monitor tier uses — so the observability layer sees the
/// testbed's event execution, and each machine's trace events land on its
/// own track. `injector` (nullable) layers the config's fault plan on
/// top: crashes flip service_alive, dropouts swallow samples (reported to
/// the detector as sensor gaps), and clock-skew blips shift the reported
/// sample timestamps (kept monotone and inside the horizon).
template <typename OnSample>
monitor::UnavailabilityDetector walk_machine(
    const TestbedConfig& config, trace::MachineId machine,
    const fault::FaultInjector* injector, OnSample&& on_sample) {
  const auto load = workload::generate_machine_load(
      config.profile, config.seed, machine, config.days,
      static_cast<int>(config.start_dow));

  monitor::TrajectorySampler sampler(load, config.ram_mb, config.kernel_mb);
  monitor::UnavailabilityDetector detector(config.policy);

  const obs::TrackScope track(machine);
  const sim::SimTime begin = sim::SimTime::epoch();
  const sim::SimTime end = begin + sim::SimDuration::days(config.days);
  const sim::SimDuration period = config.policy.sample_period;

  sim::Simulation simulation;
  std::optional<FaultRuntime> fault_state;
  FaultRuntime* faults = nullptr;
  if (injector != nullptr) {
    fault_state.emplace(*injector, machine, begin);
    faults = &*fault_state;
    faults->session.schedule(simulation);
  }

  // Bundled so the periodic callback captures two pointers and stays
  // within the event queue's inline (allocation-free) budget.
  struct WalkLoop {
    monitor::TrajectorySampler& sampler;
    monitor::UnavailabilityDetector& detector;
    sim::Simulation& simulation;
    FaultRuntime* faults;
    sim::SimTime end;
    sim::SimDuration period;
  } loop{sampler, detector, simulation, faults, end, period};

  simulation.every(period, [&loop, &on_sample] {
    const sim::SimTime now = loop.simulation.now();
    FaultRuntime* const fr = loop.faults;
    if (fr != nullptr && fr->session.dropout_active()) {
      fr->dropped = true;  // sample lost; gap reported on resume
      return;
    }
    monitor::HostSample sample = loop.sampler.sample(now, loop.period);
    if (fr != nullptr) {
      if (fr->session.crash_active()) sample.service_alive = false;
      // The monitor reads current load but timestamps it with its skewed
      // clock; keep reported times monotone and inside the horizon. The
      // monotone clamp applies even when no skew is active right now: a
      // positive skew that just ended may have pushed last_sample_time
      // past this sample's raw time.
      if (fr->session.skew() != sim::SimDuration::zero()) {
        sample.time = now + fr->session.skew();
      }
      sample.time =
          std::min(loop.end, std::max(sample.time, fr->last_sample_time));
      if (fr->dropped) {
        // The gap must end exactly where observation resumes — in the
        // monitor's (possibly skewed) clock, not the simulation's —
        // or a negative skew would timestamp this sample before the
        // gap end. A gap the skew collapses to nothing is dropped.
        if (sample.time > fr->last_sample_time) {
          loop.detector.record_gap(fr->last_sample_time, sample.time);
        }
        fr->dropped = false;
      }
      fr->last_sample_time = sample.time;
    }
    const monitor::AvailabilityState state = loop.detector.observe(sample);
    on_sample(sample, state);
  });
  simulation.run_until(end);
  if (faults != nullptr && faults->dropped &&
      faults->last_sample_time < end) {
    detector.record_gap(faults->last_sample_time, end);
  }
  detector.finish(end);

  if (auto* o = obs::observer()) {
    o->on_testbed_machine(machine, begin, end, detector.episodes().size(),
                          simulation.events_executed());
  }
  return detector;
}

/// The columnar fast-path walk for fault-free configs.
///
/// The legacy walk above fires one simulation event per sample period
/// (5,760 per machine-day) and re-evaluates the trajectory cursor and
/// detector state machine each time. But the synthesized load is
/// piecewise-constant with segments far longer than the sample period,
/// so consecutive samples overwhelmingly carry identical inputs. This
/// walk iterates the *columns* directly — trajectory points and
/// downtimes, each with a monotone cursor — and hands every maximal run
/// of constant-input samples to observe_run in one call. Per sample
/// period the work drops from an event dispatch plus full sampler and
/// state-machine evaluation to amortized column arithmetic.
///
/// Equivalence with the legacy walk (checked end-to-end by the
/// soa-machine-step oracle):
///  * sample times are begin+period, ..., end — exactly the periodic
///    event times Simulation::every produces, since the horizon is a
///    whole multiple of the period;
///  * cpu/mem/alive per sample reproduce TrajectorySampler::sample
///    (same cursor advance rules, same free-memory expression);
///  * observe_run is bit-identical to per-sample observe();
///  * the obs batch mirrors the numbers the event loop would flush:
///    one live periodic event peak, total+1 schedules (the final fire
///    reschedules past the horizon), nothing spilled or cancelled.
monitor::UnavailabilityDetector walk_machine_columnar(
    const TestbedConfig& config, trace::MachineId machine,
    util::Arena& arena) {
  workload::ArenaLoadTrace load(&arena);
  workload::generate_machine_load_into(
      config.profile, config.seed, machine, config.days,
      static_cast<int>(config.start_dow), &arena, load);

  monitor::UnavailabilityDetector detector(config.policy, &arena);

  const obs::TrackScope track(machine);
  const sim::SimTime begin = sim::SimTime::epoch();
  const sim::SimTime end = begin + sim::SimDuration::days(config.days);
  const sim::SimDuration period = config.policy.sample_period;

  const std::int64_t period_us = period.as_micros();
  const std::int64_t begin_us = begin.as_micros();
  const std::int64_t end_us = end.as_micros();
  const auto total =
      static_cast<std::uint64_t>((end_us - begin_us) / period_us);

  const auto& pts = load.points;
  const auto& downs = load.downtimes;
  FGCS_ASSERT(!pts.empty());

  std::size_t pi = 0;  // invariant: pts[pi].t <= t (< pts[pi+1].t)
  std::size_t di = 0;  // first downtime not entirely before t
  std::uint64_t done = 0;
  std::int64_t t_us = begin_us + period_us;
  while (done < total) {
    const sim::SimTime t = sim::SimTime::from_micros(t_us);
    while (pi + 1 < pts.size() && pts[pi + 1].t <= t) ++pi;
    while (di < downs.size() &&
           downs[di].start + downs[di].duration <= t) {
      ++di;
    }
    // Downtimes cover [start, start+duration), matching
    // TrajectorySampler::in_downtime.
    const bool alive = !(di < downs.size() && downs[di].start <= t);

    // The instant any input changes: the next trajectory point, or the
    // near edge of the pending downtime.
    std::int64_t change_us = end_us + period_us;  // past the last sample
    if (pi + 1 < pts.size()) {
      change_us = std::min(change_us, pts[pi + 1].t.as_micros());
    }
    if (di < downs.size()) {
      const sim::SimTime edge =
          alive ? downs[di].start : downs[di].start + downs[di].duration;
      change_us = std::min(change_us, edge.as_micros());
    }
    // Samples at t, t+period, ... strictly before the change (cursors
    // guarantee change_us > t_us, so the run is never empty).
    auto run =
        static_cast<std::uint64_t>((change_us - t_us - 1) / period_us) + 1;
    if (run > total - done) run = total - done;

    const double host_mem = pts[pi].mem_mb;
    const double free_mem =
        std::max(0.0, config.ram_mb - config.kernel_mb - host_mem);
    detector.observe_run(t, period, run, pts[pi].cpu, free_mem, alive);
    done += run;
    t_us += period_us * static_cast<std::int64_t>(run);
  }
  detector.finish(end);

  if (auto* o = obs::observer()) {
    o->on_sim_batch(total, 1.0, total + 1, 0, 0, 0, 0);
    if (total > 0) o->on_sim_run("run_until", begin, end, total);
    o->on_testbed_machine(machine, begin, end, detector.episodes().size(),
                          total);
  }
  return detector;
}

void append_records(const monitor::UnavailabilityDetector& detector,
                    trace::MachineId machine,
                    std::vector<trace::UnavailabilityRecord>& out) {
  for (const auto& ep : detector.episodes()) {
    trace::UnavailabilityRecord r;
    r.machine = machine;
    r.start = ep.start;
    r.end = ep.end;
    r.cause = ep.cause;
    r.host_cpu = ep.host_cpu_at_start;
    r.free_mem_mb = ep.free_mem_at_start;
    out.push_back(r);
  }
}

/// Builds the testbed's fault injector when a plan is present.
std::optional<fault::FaultInjector> make_injector(const TestbedConfig& config) {
  if (config.faults.empty()) return std::nullopt;
  const sim::SimTime begin = sim::SimTime::epoch();
  return fault::FaultInjector(config.faults, config.seed, config.machines,
                              begin, begin + sim::SimDuration::days(config.days));
}

std::vector<trace::UnavailabilityRecord> records_from(
    const monitor::UnavailabilityDetector& detector,
    trace::MachineId machine) {
  std::vector<trace::UnavailabilityRecord> records;
  records.reserve(detector.episodes().size());
  append_records(detector, machine, records);
  return records;
}

}  // namespace

TestbedRunner::TestbedRunner(TestbedConfig config)
    : config_(std::move(config)) {
  config_.validate();
  injector_ = make_injector(config_);
}

std::vector<trace::UnavailabilityRecord> TestbedRunner::run(
    trace::MachineId machine) const {
  MachineScratch scratch;
  std::vector<trace::UnavailabilityRecord> records;
  run_into(machine, scratch, records);
  return records;
}

void TestbedRunner::run_into(
    trace::MachineId machine, MachineScratch& scratch,
    std::vector<trace::UnavailabilityRecord>& out) const {
  fgcs::require(machine < config_.machines, "machine id out of range");
  out.clear();
  if (injector_) {
    // Fault plans perturb individual samples (crashes, dropouts, skew);
    // batching buys nothing there, so they keep the event-loop walk.
    const auto detector = walk_machine(config_, machine, &*injector_,
                                       [](const auto&, auto) {});
    append_records(detector, machine, out);
    return;
  }
  scratch.arena.reset();
  const auto detector = walk_machine_columnar(config_, machine, scratch.arena);
  append_records(detector, machine, out);
}

std::vector<trace::UnavailabilityRecord> TestbedRunner::run_reference(
    trace::MachineId machine) const {
  fgcs::require(machine < config_.machines, "machine id out of range");
  const auto detector =
      walk_machine(config_, machine, injector_ ? &*injector_ : nullptr,
                   [](const auto&, auto) {});
  return records_from(detector, machine);
}

std::vector<trace::UnavailabilityRecord> run_testbed_machine(
    const TestbedConfig& config, trace::MachineId machine) {
  return TestbedRunner(config).run(machine);
}

TestbedMachineDetail run_testbed_machine_detailed(const TestbedConfig& config,
                                                  trace::MachineId machine) {
  config.validate();
  fgcs::require(machine < config.machines, "machine id out of range");
  const auto injector = make_injector(config);
  const auto detector = walk_machine(config, machine,
                                     injector ? &*injector : nullptr,
                                     [](const auto&, auto) {});
  TestbedMachineDetail detail;
  detail.records = records_from(detector, machine);
  detail.timeline = monitor::StateTimeline::from_detector(
      detector, sim::SimTime::epoch(),
      sim::SimTime::epoch() + sim::SimDuration::days(config.days));
  return detail;
}

CapacityProfile run_capacity_profile(const TestbedConfig& config) {
  FGCS_OBS_SCOPE("testbed/capacity_profile");
  config.validate();
  const trace::TraceCalendar calendar(config.start_dow);

  struct Acc {
    std::array<double, 24> cpu_sum{};
    std::array<double, 24> mem_sum{};
    std::array<double, 24> load_sum{};
    std::array<std::uint64_t, 24> n{};
    double cpu_total = 0.0;
    std::uint64_t usable = 0;
    std::uint64_t samples = 0;
  };
  std::vector<Acc> weekday_acc(config.machines), weekend_acc(config.machines);

  const auto injector = make_injector(config);
  const fault::FaultInjector* injector_ptr = injector ? &*injector : nullptr;
  util::parallel_for(config.machines, [&](std::size_t m) {
    walk_machine(
        config, static_cast<trace::MachineId>(m), injector_ptr,
        [&](const monitor::HostSample& sample,
            monitor::AvailabilityState state) {
          Acc& acc = calendar.is_weekend(sample.time)
                         ? weekend_acc[m]
                         : weekday_acc[m];
          const auto hour =
              static_cast<std::size_t>(calendar.hour_of_day(sample.time));
          const bool usable = !monitor::is_failure(state);
          const double cpu = usable ? 1.0 - sample.host_cpu : 0.0;
          acc.cpu_sum[hour] += cpu;
          acc.mem_sum[hour] += usable ? sample.free_mem_mb : 0.0;
          acc.load_sum[hour] += sample.host_cpu;
          acc.n[hour] += 1;
          acc.cpu_total += cpu;
          acc.usable += usable ? 1 : 0;
          acc.samples += 1;
        });
  });

  CapacityProfile out;
  double cpu_total = 0.0;
  std::uint64_t usable = 0, samples = 0;
  for (int h = 0; h < 24; ++h) {
    double wd_cpu = 0.0, wd_mem = 0.0, wd_load = 0.0;
    double we_cpu = 0.0, we_mem = 0.0, we_load = 0.0;
    std::uint64_t wd_n = 0, we_n = 0;
    for (std::uint32_t m = 0; m < config.machines; ++m) {
      const auto hh = static_cast<std::size_t>(h);
      wd_cpu += weekday_acc[m].cpu_sum[hh];
      wd_mem += weekday_acc[m].mem_sum[hh];
      wd_load += weekday_acc[m].load_sum[hh];
      wd_n += weekday_acc[m].n[hh];
      we_cpu += weekend_acc[m].cpu_sum[hh];
      we_mem += weekend_acc[m].mem_sum[hh];
      we_load += weekend_acc[m].load_sum[hh];
      we_n += weekend_acc[m].n[hh];
    }
    const auto hh = static_cast<std::size_t>(h);
    out.weekday_cpu[hh] = wd_n ? wd_cpu / static_cast<double>(wd_n) : 0.0;
    out.weekday_free_mem[hh] = wd_n ? wd_mem / static_cast<double>(wd_n) : 0.0;
    out.weekday_host_load[hh] = wd_n ? wd_load / static_cast<double>(wd_n) : 0.0;
    out.weekend_cpu[hh] = we_n ? we_cpu / static_cast<double>(we_n) : 0.0;
    out.weekend_free_mem[hh] = we_n ? we_mem / static_cast<double>(we_n) : 0.0;
    out.weekend_host_load[hh] = we_n ? we_load / static_cast<double>(we_n) : 0.0;
  }
  for (std::uint32_t m = 0; m < config.machines; ++m) {
    for (const auto* acc : {&weekday_acc[m], &weekend_acc[m]}) {
      cpu_total += acc->cpu_total;
      usable += acc->usable;
      samples += acc->samples;
    }
  }
  if (samples > 0) {
    out.overall_cpu = cpu_total / static_cast<double>(samples);
    out.overall_usable =
        static_cast<double>(usable) / static_cast<double>(samples);
  }
  return out;
}

trace::TraceSet run_testbed(const TestbedConfig& config) {
  FGCS_OBS_SCOPE("testbed/run");
  const TestbedRunner runner(config);
  trace::TraceSet trace(config.machines, runner.horizon_start(),
                        runner.horizon_end());

  std::vector<std::vector<trace::UnavailabilityRecord>> per_machine(
      config.machines);
  util::parallel_for(config.machines, [&](std::size_t m) {
    per_machine[m] = runner.run(static_cast<trace::MachineId>(m));
  });
  std::size_t total = 0;
  for (const auto& records : per_machine) total += records.size();
  trace.reserve(total);
  // Machine-major insertion is the canonical order: records() stays O(1),
  // no re-sort.
  for (const auto& records : per_machine) {
    for (const auto& r : records) trace.add(r);
  }
  return trace;
}

}  // namespace fgcs::core

// The testbed simulation (§5): N machines traced for D days.
//
// Each machine's host load is synthesized by the lab workload model; the
// unavailability detector consumes periodic samples and its episodes
// become the trace — the same pipeline the iShare monitor ran on the real
// Purdue lab, with the lab replaced by the model.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fgcs/fault/fault_plan.hpp"
#include "fgcs/fault/injector.hpp"
#include "fgcs/monitor/policy.hpp"
#include "fgcs/monitor/state_timeline.hpp"
#include "fgcs/trace/calendar.hpp"
#include "fgcs/trace/trace_set.hpp"
#include "fgcs/util/arena.hpp"
#include "fgcs/workload/load_model.hpp"

namespace fgcs::core {

struct TestbedConfig {
  /// 20 machines, 3 months (Aug 15 - Nov 14, 2005): ~1800 machine-days.
  std::uint32_t machines = 20;
  int days = 92;
  trace::DayOfWeek start_dow = trace::DayOfWeek::kMonday;

  workload::LabProfile profile = workload::LabProfile::purdue_lab();
  monitor::ThresholdPolicy policy = monitor::ThresholdPolicy::linux_testbed();

  /// Lab machines have "larger than 1 GB" physical memory (§5.1).
  double ram_mb = 1024.0;
  double kernel_mb = 100.0;

  std::uint64_t seed = 20050815;

  /// Injected faults (crashes, sensor dropouts, clock-skew blips) layered
  /// on top of the organic workload. The empty default takes the exact
  /// baseline code path — no injector is built, no per-sample branches on
  /// fault state beyond one null check. Expansion is deterministic in
  /// (faults, seed), and the workload's random streams are untouched, so
  /// the same seed with and without a plan synthesizes the same host load.
  fault::FaultPlan faults;

  void validate() const;
};

/// Runs the testbed simulation; machines are simulated in parallel and the
/// result is deterministic in the config.
trace::TraceSet run_testbed(const TestbedConfig& config);

/// Simulates a single machine (exposed for tests and incremental use).
std::vector<trace::UnavailabilityRecord> run_testbed_machine(
    const TestbedConfig& config, trace::MachineId machine);

/// Reusable per-worker scratch for TestbedRunner::run_into: one bump
/// arena that every transient per-machine allocation (trajectory points,
/// downtimes, overlay deltas, detector transitions/episodes/gaps) draws
/// from. The arena is reset per machine but its chunks are retained, so
/// after the first machine warms it a machine-day performs zero heap
/// allocations. One scratch per worker thread; not shareable.
struct MachineScratch {
  util::Arena arena;
};

/// Validates the config once and builds the (optional) fault injector
/// once, so sweep engines can simulate machines repeatedly without paying
/// per-machine setup. run() is const and thread-safe: concurrent calls
/// for different machines share only immutable state, and each machine's
/// result is identical to run_testbed_machine() for the same config.
///
/// Engine selection: fault-free configs take the columnar fast path —
/// the piecewise-constant trajectory is walked run-of-constant-samples
/// at a time through UnavailabilityDetector::observe_run, with all
/// scratch in the arena — while fault-injected configs (and the
/// reference entry point below) run the legacy per-sample event loop.
/// Both engines produce bit-identical records and telemetry.
class TestbedRunner {
 public:
  explicit TestbedRunner(TestbedConfig config);

  const TestbedConfig& config() const { return config_; }
  sim::SimTime horizon_start() const { return sim::SimTime::epoch(); }
  sim::SimTime horizon_end() const {
    return sim::SimTime::epoch() + sim::SimDuration::days(config_.days);
  }

  std::vector<trace::UnavailabilityRecord> run(trace::MachineId machine) const;

  /// Allocation-free steady-state variant: all transient state draws
  /// from `scratch` (reset here, per call) and records are appended to
  /// `out` (cleared here; its capacity is retained across machines).
  void run_into(trace::MachineId machine, MachineScratch& scratch,
                std::vector<trace::UnavailabilityRecord>& out) const;

  /// Reference implementation: always the legacy per-sample event-loop
  /// walk, regardless of engine eligibility. The soa-machine-step diff
  /// oracle checks run() against this bit-for-bit.
  std::vector<trace::UnavailabilityRecord> run_reference(
      trace::MachineId machine) const;

 private:
  TestbedConfig config_;
  std::optional<fault::FaultInjector> injector_;
};

/// Per-machine detail: the trace records plus the full five-state
/// timeline (the empirical Figure 5 view).
struct TestbedMachineDetail {
  std::vector<trace::UnavailabilityRecord> records;
  monitor::StateTimeline timeline;
};

TestbedMachineDetail run_testbed_machine_detailed(const TestbedConfig& config,
                                                  trace::MachineId machine);

/// Deliverable compute capacity by hour of day — the §2 comparison point
/// with CPU-availability studies ([8], [17]): at each monitor sample, a
/// guest can harvest (1 - host CPU) of the machine when the model is in
/// S1/S2, and nothing in a failure state.
struct CapacityProfile {
  std::array<double, 24> weekday_cpu{};      // mean deliverable CPU fraction
  std::array<double, 24> weekend_cpu{};
  std::array<double, 24> weekday_free_mem{};  // mean free memory, MB
  std::array<double, 24> weekend_free_mem{};
  /// Mean raw host CPU load per hour (regardless of model state) — used
  /// to quantify §5.3's "occurrences are tightly correlated with host
  /// workloads during the corresponding hour".
  std::array<double, 24> weekday_host_load{};
  std::array<double, 24> weekend_host_load{};
  double overall_cpu = 0.0;
  /// Fraction of samples in S1/S2 (machine usable at all).
  double overall_usable = 0.0;
};

CapacityProfile run_capacity_profile(const TestbedConfig& config);

}  // namespace fgcs::core

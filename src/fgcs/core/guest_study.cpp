#include "fgcs/core/guest_study.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "fgcs/fault/injector.hpp"
#include "fgcs/obs/observer.hpp"
#include "fgcs/stats/descriptive.hpp"
#include "fgcs/trace/index.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/rng.hpp"
#include "fgcs/util/table.hpp"

namespace fgcs::core {

using sim::SimDuration;
using sim::SimTime;

void GuestLifecycleConfig::validate() const {
  fgcs::require(job_length > SimDuration::zero(), "job_length must be > 0");
  fgcs::require(submit_spacing > SimDuration::zero(),
                "submit_spacing must be > 0");
  fgcs::require(first_submit_day >= 0, "first_submit_day must be >= 0");
  fgcs::require(checkpoint_interval >= SimDuration::zero(),
                "checkpoint_interval must be >= 0");
  fgcs::require(checkpoint_cost >= SimDuration::zero(),
                "checkpoint_cost must be >= 0");
  fgcs::require(backoff_initial > SimDuration::zero(),
                "backoff_initial must be > 0");
  fgcs::require(backoff_cap >= backoff_initial,
                "backoff_cap must be >= backoff_initial");
  fgcs::require(backoff_factor >= 1.0, "backoff_factor must be >= 1.0");
  fgcs::require(backoff_jitter >= 0.0 && backoff_jitter < 1.0,
                "backoff_jitter must be in [0, 1)");
}

namespace {

/// Substream tag for backoff jitter ("GJIT").
constexpr std::uint64_t kJitterTag = 0x474A4954u;

/// Capped exponential backoff with deterministic jitter. `failures` is the
/// consecutive-failure count before this one.
SimDuration backoff_delay(const GuestLifecycleConfig& cfg, std::uint64_t job,
                          std::uint32_t failures, std::uint64_t draw) {
  double scale = 1.0;
  for (std::uint32_t i = 0; i < failures && scale < 1e6; ++i) {
    scale *= cfg.backoff_factor;
  }
  SimDuration base = cfg.backoff_initial * scale;
  if (base > cfg.backoff_cap) base = cfg.backoff_cap;
  util::RngStream rng(cfg.seed, {kJitterTag, job, draw});
  const double u = rng.uniform(1.0 - cfg.backoff_jitter,
                               1.0 + cfg.backoff_jitter);
  SimDuration jittered = base * u;
  if (jittered <= SimDuration::zero()) jittered = SimDuration::micros(1);
  return jittered;
}

/// Scheduled guest-kill instants per machine, sorted (empty w/o a plan).
std::vector<std::vector<SimTime>> kill_schedule(const TestbedConfig& testbed,
                                                SimTime begin, SimTime end) {
  std::vector<std::vector<SimTime>> kills(testbed.machines);
  if (testbed.faults.empty()) return kills;
  const fault::FaultInjector injector(testbed.faults, testbed.seed,
                                      testbed.machines, begin, end);
  for (const auto& ev : injector.events()) {
    if (ev.kind == fault::FaultKind::kGuestKill) {
      kills[ev.machine].push_back(ev.start);
    }
  }
  return kills;  // events() is sorted by (machine, start)
}

/// First kill instant in [t0, t1), or SimTime::max() when none.
SimTime next_kill(const std::vector<SimTime>& kills, SimTime t0, SimTime t1) {
  const auto it = std::lower_bound(kills.begin(), kills.end(), t0);
  if (it == kills.end() || *it >= t1) return SimTime::max();
  return *it;
}

}  // namespace

GuestStudyResult run_guest_study(const TestbedConfig& testbed,
                                 const trace::TraceSet& trace,
                                 const GuestLifecycleConfig& lifecycle) {
  testbed.validate();
  lifecycle.validate();

  const trace::TraceIndex index(trace);
  const SimTime horizon_start = trace.horizon_start();
  const SimTime horizon = trace.horizon_end();
  const auto kills = kill_schedule(testbed, horizon_start, horizon);

  const SimDuration interval = lifecycle.checkpoint_interval;
  const SimDuration cost = lifecycle.checkpoint_cost;
  const SimDuration slot = interval + cost;

  GuestStudyResult result;
  obs::Observer* const o = obs::observer();

  const SimTime first_submit =
      horizon_start + SimDuration::days(lifecycle.first_submit_day);
  std::uint64_t job_index = 0;
  for (SimTime submit = first_submit; submit + lifecycle.job_length < horizon;
       submit += lifecycle.submit_spacing, ++job_index) {
    GuestJobOutcome job;
    job.submit = submit;
    job.first_machine =
        static_cast<trace::MachineId>(job_index % testbed.machines);
    job.final_machine = job.first_machine;

    trace::MachineId m = job.first_machine;
    SimTime t = submit;
    SimDuration done = SimDuration::zero();  // checkpointed progress
    std::uint32_t failures = 0;              // consecutive, for backoff
    std::uint64_t draws = 0;                 // jitter draw counter

    while (true) {
      if (t >= horizon) {  // censored before finishing
        job.response = horizon - submit;
        break;
      }
      const SimDuration remaining = lifecycle.job_length - done;
      SimDuration wall = remaining;
      if (interval > SimDuration::zero()) {
        wall += cost * (remaining.as_micros() / interval.as_micros());
      }
      if (t + wall > horizon) {  // a clean run no longer fits
        job.response = horizon - submit;
        break;
      }

      const auto* ep = index.first_overlap(m, t, t + wall);
      if (ep != nullptr && ep->start <= t) {
        // Machine unavailable right now: wait out the episode (not a
        // failed attempt — the job was never started).
        t = ep->end;
        continue;
      }
      const SimTime fail_at = ep != nullptr ? ep->start : SimTime::max();
      const SimTime kill_at = next_kill(kills[m], t, t + wall);
      if (fail_at == SimTime::max() && kill_at == SimTime::max()) {
        job.completed = true;
        job.response = (t + wall) - submit;
        if (o != nullptr) o->on_guest_completed(t + wall);
        break;
      }

      // The attempt dies at the earlier interruption.
      const bool revoked = fail_at <= kill_at;
      const SimTime died = revoked ? fail_at : kill_at;
      const SimDuration ran = died - t;
      std::int64_t slots = 0;
      if (interval > SimDuration::zero() && slot > SimDuration::zero()) {
        slots = ran.as_micros() / slot.as_micros();
      }
      SimDuration saved = interval * slots;
      if (saved > remaining) saved = remaining;
      done += saved;
      const SimDuration lost = ran - slot * slots;
      job.work_lost += lost;
      job.checkpoints += static_cast<std::uint32_t>(slots);
      job.restarts += 1;
      if (o != nullptr) {
        for (std::int64_t i = 0; i < slots; ++i) o->on_guest_checkpoint(died);
        o->on_guest_work_lost(died, lost);
        o->on_guest_restart(died);
      }

      const SimDuration delay =
          backoff_delay(lifecycle, job_index, failures, draws++);
      failures = slots > 0 ? 0 : failures + 1;

      if (revoked && lifecycle.migrate_on_revocation &&
          testbed.machines > 1) {
        m = static_cast<trace::MachineId>((m + 1) % testbed.machines);
        job.final_machine = m;
        job.migrations += 1;
        if (o != nullptr) o->on_guest_migration(died);
        t = died + delay;
      } else if (revoked) {
        // Restart on the same machine once the episode clears.
        t = ep->end + delay;
      } else {
        // Injected kill: the machine itself is still available.
        t = died + delay;
      }
    }

    result.completed += job.completed ? 1 : 0;
    result.restarts += job.restarts;
    result.migrations += job.migrations;
    result.checkpoints += job.checkpoints;
    result.work_lost += job.work_lost;
    result.jobs.push_back(job);
  }

  std::vector<double> responses;
  responses.reserve(result.jobs.size());
  for (const auto& j : result.jobs) responses.push_back(j.response.as_hours());
  if (!responses.empty()) {
    result.mean_response_hours = stats::mean(responses);
    result.p90_response_hours = stats::quantile(responses, 0.9);
  }
  return result;
}

GuestStudyResult run_guest_study(const TestbedConfig& testbed,
                                 const GuestLifecycleConfig& lifecycle) {
  return run_guest_study(testbed, run_testbed(testbed), lifecycle);
}

std::string GuestStudyResult::summary_table() const {
  util::TextTable table({"Jobs", "Completed", "Restarts", "Migrations",
                         "Checkpoints", "Work lost", "Mean resp", "P90 resp"});
  table.add(std::to_string(jobs.size()), std::to_string(completed),
            std::to_string(restarts), std::to_string(migrations),
            std::to_string(checkpoints),
            util::format_duration_s(work_lost.as_seconds()),
            util::format_duration_s(mean_response_hours * 3600.0),
            util::format_duration_s(p90_response_hours * 3600.0));
  return table.str();
}

}  // namespace fgcs::core

// Resilient guest-job lifecycle over the testbed trace.
//
// The paper's guest jobs die with the resource (§1, §4): an S3/S4/S5
// occurrence kills the guest and all progress is lost. This study layers
// the recovery machinery a production cycle-sharing scheduler needs on
// top of the simulated availability trace:
//
//   * periodic checkpointing — progress is saved every `checkpoint_interval`
//     of useful work, each checkpoint costing `checkpoint_cost` of
//     sim-time; a killed job resumes from its last checkpoint instead of
//     from scratch;
//   * restart with capped exponential backoff + deterministic jitter —
//     consecutive failures back off `initial * factor^k` (capped), jittered
//     by a keyed util::RngStream so reruns replay bit-identically;
//   * optional migration — a job killed by machine revocation restarts on
//     another machine immediately instead of waiting out the episode.
//
// Injected guest-kill faults (fault::FaultKind::kGuestKill in the
// testbed's FaultPlan) kill a running job even while the machine is
// otherwise available; the lifecycle handles them exactly like a
// revocation. Completion/lost-work accounting is surfaced through the
// obs counters (guest.restarts, guest.migrations, guest.checkpoints,
// guest.completions, guest.work_lost_us) and a testbed summary table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fgcs/core/testbed.hpp"
#include "fgcs/sim/time.hpp"
#include "fgcs/trace/trace_set.hpp"

namespace fgcs::core {

/// Recovery policy for guest jobs run against the testbed trace.
struct GuestLifecycleConfig {
  /// CPU-work per job. Jobs are submitted every `submit_spacing` starting
  /// at `first_submit_day` until a full run no longer fits the horizon.
  sim::SimDuration job_length = sim::SimDuration::hours(8);
  sim::SimDuration submit_spacing = sim::SimDuration::hours(6);
  int first_submit_day = 0;

  /// Checkpoint cadence in useful-work time; zero disables checkpointing
  /// (a killed job restarts from scratch — the paper's behavior).
  sim::SimDuration checkpoint_interval = sim::SimDuration::zero();
  /// Sim-time cost of writing one checkpoint.
  sim::SimDuration checkpoint_cost = sim::SimDuration::minutes(2);

  /// Restart backoff: delay after the k-th consecutive failure is
  /// min(cap, initial * factor^k), scaled by a deterministic jitter drawn
  /// uniformly from [1 - jitter, 1 + jitter]. Progress (any checkpoint
  /// completed during the attempt) resets the backoff.
  sim::SimDuration backoff_initial = sim::SimDuration::minutes(1);
  sim::SimDuration backoff_cap = sim::SimDuration::minutes(30);
  double backoff_factor = 2.0;
  double backoff_jitter = 0.25;

  /// When true, a job killed by machine unavailability restarts on the
  /// next machine (round-robin) after the backoff delay instead of
  /// waiting for its machine to come back.
  bool migrate_on_revocation = false;

  /// Seeds the jitter stream (keyed per job and attempt; independent of
  /// the testbed's workload and fault streams).
  std::uint64_t seed = 1;

  void validate() const;
};

/// Outcome of one guest job.
struct GuestJobOutcome {
  sim::SimTime submit;
  trace::MachineId first_machine = 0;
  trace::MachineId final_machine = 0;
  bool completed = false;
  /// Wall time from submit to completion (or to the horizon when the job
  /// was censored).
  sim::SimDuration response = sim::SimDuration::zero();
  std::uint32_t restarts = 0;
  std::uint32_t migrations = 0;
  std::uint32_t checkpoints = 0;
  /// Useful work lost to kills (work done since the last checkpoint).
  sim::SimDuration work_lost = sim::SimDuration::zero();
};

/// Aggregated lifecycle study results.
struct GuestStudyResult {
  std::vector<GuestJobOutcome> jobs;

  std::uint32_t completed = 0;
  std::uint32_t restarts = 0;
  std::uint32_t migrations = 0;
  std::uint32_t checkpoints = 0;
  sim::SimDuration work_lost = sim::SimDuration::zero();
  double mean_response_hours = 0.0;
  double p90_response_hours = 0.0;

  /// Testbed summary columns (one TextTable row set) for CLI output.
  std::string summary_table() const;
};

/// Runs the lifecycle against an existing trace + the testbed config that
/// produced it (the config supplies the fault plan, seed, and horizon, so
/// injected guest-kill events replay identically).
GuestStudyResult run_guest_study(const TestbedConfig& testbed,
                                 const trace::TraceSet& trace,
                                 const GuestLifecycleConfig& lifecycle);

/// Convenience: simulates the testbed, then runs the lifecycle on it.
GuestStudyResult run_guest_study(const TestbedConfig& testbed,
                                 const GuestLifecycleConfig& lifecycle);

}  // namespace fgcs::core

// Offline resource-contention experiments (§3.2, Figures 1-4, Table 1).
//
// Each experiment runs host processes (optionally with one guest) on a
// fresh simulated machine, measures CPU usage by OS accounting after a
// warm-up, and reports the reduction rate of host CPU usage — exactly the
// paper's methodology, with the physical machines replaced by fgcs::os.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fgcs/os/machine.hpp"
#include "fgcs/workload/musbus.hpp"
#include "fgcs/workload/spec_cpu2000.hpp"
#include "fgcs/workload/synthetic.hpp"

namespace fgcs::core {

/// Shared experiment parameters.
struct ContentionConfig {
  os::SchedulerParams scheduler = os::SchedulerParams::linux_2_4();
  os::MemoryParams memory = os::MemoryParams::linux_1gb();
  /// Measurement duration (after warm-up).
  sim::SimDuration measure = sim::SimDuration::minutes(8);
  sim::SimDuration warmup = sim::SimDuration::seconds(40);
  /// Host-group compositions averaged per grid point (the paper used
  /// "multiple combinations of host processes" per L_H).
  int combinations = 4;
  std::uint64_t seed = 20060815;

  void validate() const;
};

/// Outcome of one contention run.
struct ContentionMeasurement {
  double host_usage_alone = 0.0;     // measured L_H
  double host_usage_together = 0.0;  // with the guest present
  double guest_usage = 0.0;
  bool thrashing = false;            // machine thrashed during the run

  /// The paper's y-axis: (alone - together) / alone.
  double reduction_rate() const {
    if (host_usage_alone <= 0.0) return 0.0;
    return (host_usage_alone - host_usage_together) / host_usage_alone;
  }
};

/// Runs `host_specs` alone, then together with `guest_spec`, on machines
/// configured per `config` (seeded by `run_seed`).
ContentionMeasurement measure_contention(
    const ContentionConfig& config,
    const std::vector<os::ProcessSpec>& host_specs,
    const os::ProcessSpec& guest_spec, std::uint64_t run_seed);

/// Measures the isolated CPU usage of a single process (Table 1's CPU
/// column, via getrusage-equivalent accounting).
double measure_isolated_usage(const ContentionConfig& config,
                              const os::ProcessSpec& spec,
                              std::uint64_t run_seed);

// ---------------------------------------------------------------------------
// Figure 1: reduction rate vs L_H for host group sizes M, guest at equal
// and at lowest priority.

struct Fig1Point {
  double lh_nominal = 0.0;  // grid L_H
  int group_size = 0;       // M
  int guest_nice = 0;       // 0 or 19
  double lh_measured = 0.0;
  double reduction = 0.0;  // mean over combinations
  double reduction_min = 0.0;
  double reduction_max = 0.0;
};

struct Fig1Result {
  std::vector<Fig1Point> points;
  /// Thresholds read off the curves: lowest grid L_H whose reduction
  /// exceeds the slowdown limit at equal (Th1) / lowest (Th2) priority,
  /// minimized over group sizes (§3.2.1).
  double th1 = 0.0;
  double th2 = 0.0;

  const Fig1Point& at(double lh, int m, int nice) const;
};

struct Fig1Config {
  ContentionConfig base;
  std::vector<double> lh_grid = {0.1, 0.2, 0.3, 0.4, 0.5,
                                 0.6, 0.7, 0.8, 0.9, 1.0};
  int max_group_size = 5;
  double slowdown_limit = 0.05;
};

Fig1Result run_fig1(const Fig1Config& config);

// ---------------------------------------------------------------------------
// Figure 2: reduction rate vs (L_H, guest priority), single host process.

struct Fig2Point {
  double lh_nominal = 0.0;
  int guest_nice = 0;
  double reduction = 0.0;
};

std::vector<Fig2Point> run_fig2(const ContentionConfig& config,
                                const std::vector<double>& lh_grid,
                                const std::vector<int>& nice_grid);

// ---------------------------------------------------------------------------
// Figure 3: guest CPU usage at equal vs lowest priority under light host
// load.

struct Fig3Point {
  double host_usage = 0.0;   // isolated host usage (0.1 / 0.2)
  double guest_demand = 0.0; // isolated guest usage (0.7 .. 1.0)
  double guest_usage_equal = 0.0;   // guest priority 0
  double guest_usage_lowest = 0.0;  // guest priority 19
};

std::vector<Fig3Point> run_fig3(const ContentionConfig& config);

// ---------------------------------------------------------------------------
// Figure 4 + Table 1: Musbus host workloads x SPEC guests on the Solaris
// machine; thrashing when working sets exceed physical memory.

struct Fig4Cell {
  std::string host_workload;  // H1..H6
  std::string guest_app;      // apsi/galgel/bzip2/mcf
  int guest_nice = 0;
  double reduction = 0.0;
  bool thrashing = false;
};

struct Fig4Config {
  ContentionConfig base;  // defaults overridden to the Solaris profiles
  Fig4Config();
};

std::vector<Fig4Cell> run_fig4(const Fig4Config& config);

/// Table 1 rows, measured in simulation (CPU usage) plus the modelled
/// memory footprints.
struct Table1Row {
  std::string name;
  double cpu_usage = 0.0;
  double resident_mb = 0.0;
  double virtual_mb = 0.0;
};

std::vector<Table1Row> run_table1(const ContentionConfig& config);

}  // namespace fgcs::core

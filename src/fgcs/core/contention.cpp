#include "fgcs/core/contention.hpp"

#include <algorithm>
#include <atomic>

#include "fgcs/util/error.hpp"
#include "fgcs/util/parallel.hpp"
#include "fgcs/util/rng.hpp"

namespace fgcs::core {

namespace {
constexpr std::uint64_t kContentionTag = 0x434F4E54;  // "CONT"
}

void ContentionConfig::validate() const {
  scheduler.validate();
  memory.validate();
  fgcs::require(measure > sim::SimDuration::zero(), "measure must be > 0");
  fgcs::require(warmup >= sim::SimDuration::zero(), "warmup must be >= 0");
  fgcs::require(combinations >= 1, "combinations must be >= 1");
}

ContentionMeasurement measure_contention(
    const ContentionConfig& config,
    const std::vector<os::ProcessSpec>& host_specs,
    const os::ProcessSpec& guest_spec, std::uint64_t run_seed) {
  config.validate();
  fgcs::require(!host_specs.empty(), "need at least one host process");

  ContentionMeasurement out;

  // Run 1: host group alone (the L_H measurement).
  {
    os::Machine machine(config.scheduler, config.memory, run_seed);
    for (const auto& spec : host_specs) machine.spawn(spec);
    machine.run_for(config.warmup);
    const os::CpuTotals before = machine.totals();
    machine.run_for(config.measure);
    out.host_usage_alone = os::CpuTotals::host_usage(before, machine.totals());
  }

  // Run 2: host group + guest. Same seed: host processes get the same
  // pids (spawned first) and therefore identical phase randomness.
  {
    os::Machine machine(config.scheduler, config.memory, run_seed);
    for (const auto& spec : host_specs) machine.spawn(spec);
    machine.spawn(guest_spec);
    machine.run_for(config.warmup);
    const os::CpuTotals before = machine.totals();
    const sim::SimDuration thrash_before = machine.thrash_time();
    machine.run_for(config.measure);
    out.host_usage_together =
        os::CpuTotals::host_usage(before, machine.totals());
    out.guest_usage = os::CpuTotals::guest_usage(before, machine.totals());
    const sim::SimDuration thrashed = machine.thrash_time() - thrash_before;
    out.thrashing = thrashed > config.measure * 0.10;
  }
  return out;
}

double measure_isolated_usage(const ContentionConfig& config,
                              const os::ProcessSpec& spec,
                              std::uint64_t run_seed) {
  os::Machine machine(config.scheduler, config.memory, run_seed);
  const os::ProcessId pid = machine.spawn(spec);
  machine.run_for(config.warmup);
  const sim::SimDuration cpu_before = machine.process(pid).cpu_time();
  machine.run_for(config.measure);
  return machine.process(pid).usage_since(cpu_before, config.measure);
}

// ---------------------------------------------------------------------------
// Figure 1

const Fig1Point& Fig1Result::at(double lh, int m, int nice) const {
  for (const auto& p : points) {
    if (p.group_size == m && p.guest_nice == nice &&
        std::abs(p.lh_nominal - lh) < 1e-9) {
      return p;
    }
  }
  throw ConfigError("Fig1Result::at: no such point");
}

Fig1Result run_fig1(const Fig1Config& config) {
  config.base.validate();
  fgcs::require(config.max_group_size >= 1, "max_group_size must be >= 1");

  struct Task {
    std::size_t lh_idx;
    int m;
    int nice;
  };
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < config.lh_grid.size(); ++i) {
    for (int m = 1; m <= config.max_group_size; ++m) {
      // A group of M processes needs L_H large enough for M non-trivial
      // shares (the paper only tests feasible combinations).
      if (config.lh_grid[i] < 0.02 * static_cast<double>(m)) continue;
      for (int nice : {0, 19}) {
        tasks.push_back({i, m, nice});
      }
    }
  }

  std::vector<Fig1Point> points(tasks.size());
  util::parallel_for(tasks.size(), [&](std::size_t ti) {
    const Task& task = tasks[ti];
    const double lh = config.lh_grid[task.lh_idx];
    Fig1Point point;
    point.lh_nominal = lh;
    point.group_size = task.m;
    point.guest_nice = task.nice;
    double sum_red = 0.0, sum_lh = 0.0;
    double red_min = 1.0, red_max = -1.0;
    for (int combo = 0; combo < config.base.combinations; ++combo) {
      const std::uint64_t run_seed = util::RngStream::derive(
          config.base.seed,
          {kContentionTag, task.lh_idx, static_cast<std::uint64_t>(task.m),
           static_cast<std::uint64_t>(task.nice),
           static_cast<std::uint64_t>(combo)});
      util::RngStream group_rng(run_seed);
      const auto hosts = workload::make_host_group(
          lh, static_cast<std::size_t>(task.m), group_rng);
      const auto guest = workload::synthetic_guest(task.nice);
      const auto meas =
          measure_contention(config.base, hosts, guest, run_seed);
      const double red = meas.reduction_rate();
      sum_red += red;
      sum_lh += meas.host_usage_alone;
      red_min = std::min(red_min, red);
      red_max = std::max(red_max, red);
    }
    const auto n = static_cast<double>(config.base.combinations);
    point.reduction = sum_red / n;
    point.lh_measured = sum_lh / n;
    point.reduction_min = red_min;
    point.reduction_max = red_max;
    points[ti] = point;
  });

  Fig1Result result;
  result.points = std::move(points);

  // Thresholds: lowest grid L_H whose reduction exceeds the limit for any
  // group size (§3.2.1).
  auto lowest_crossing = [&](int nice) {
    for (double lh : config.lh_grid) {
      for (int m = 1; m <= config.max_group_size; ++m) {
        if (lh < 0.02 * static_cast<double>(m)) continue;
        if (result.at(lh, m, nice).reduction > config.slowdown_limit) {
          return lh;
        }
      }
    }
    return 1.0;
  };
  result.th1 = lowest_crossing(0);
  result.th2 = lowest_crossing(19);
  return result;
}

// ---------------------------------------------------------------------------
// Figure 2

std::vector<Fig2Point> run_fig2(const ContentionConfig& config,
                                const std::vector<double>& lh_grid,
                                const std::vector<int>& nice_grid) {
  config.validate();
  struct Task {
    std::size_t lh_idx;
    std::size_t nice_idx;
  };
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < lh_grid.size(); ++i) {
    for (std::size_t j = 0; j < nice_grid.size(); ++j) {
      tasks.push_back({i, j});
    }
  }
  std::vector<Fig2Point> points(tasks.size());
  util::parallel_for(tasks.size(), [&](std::size_t ti) {
    const Task& task = tasks[ti];
    const double lh = lh_grid[task.lh_idx];
    const int nice = nice_grid[task.nice_idx];
    double sum = 0.0;
    for (int combo = 0; combo < config.combinations; ++combo) {
      const std::uint64_t run_seed = util::RngStream::derive(
          config.seed, {kContentionTag, 2, task.lh_idx, task.nice_idx,
                        static_cast<std::uint64_t>(combo)});
      const std::vector<os::ProcessSpec> hosts{workload::synthetic_host(lh)};
      const auto guest = workload::synthetic_guest(nice);
      sum += measure_contention(config, hosts, guest, run_seed)
                 .reduction_rate();
    }
    points[ti] = {lh, nice, sum / static_cast<double>(config.combinations)};
  });
  return points;
}

// ---------------------------------------------------------------------------
// Figure 3

std::vector<Fig3Point> run_fig3(const ContentionConfig& config) {
  config.validate();
  const std::vector<double> host_usages = {0.2, 0.1};
  const std::vector<double> guest_demands = {1.0, 0.9, 0.8, 0.7};
  struct Task {
    std::size_t h;
    std::size_t g;
  };
  std::vector<Task> tasks;
  for (std::size_t h = 0; h < host_usages.size(); ++h) {
    for (std::size_t g = 0; g < guest_demands.size(); ++g) {
      tasks.push_back({h, g});
    }
  }
  std::vector<Fig3Point> points(tasks.size());
  util::parallel_for(tasks.size(), [&](std::size_t ti) {
    const Task& task = tasks[ti];
    Fig3Point p;
    p.host_usage = host_usages[task.h];
    p.guest_demand = guest_demands[task.g];
    double sum_equal = 0.0, sum_lowest = 0.0;
    for (int combo = 0; combo < config.combinations; ++combo) {
      const std::uint64_t run_seed = util::RngStream::derive(
          config.seed,
          {kContentionTag, 3, task.h, task.g,
           static_cast<std::uint64_t>(combo)});
      const std::vector<os::ProcessSpec> hosts{
          workload::synthetic_host(p.host_usage)};
      sum_equal +=
          measure_contention(config, hosts,
                             workload::synthetic_guest_with_usage(
                                 p.guest_demand, 0),
                             run_seed)
              .guest_usage;
      sum_lowest +=
          measure_contention(config, hosts,
                             workload::synthetic_guest_with_usage(
                                 p.guest_demand, 19),
                             run_seed)
              .guest_usage;
    }
    const auto n = static_cast<double>(config.combinations);
    p.guest_usage_equal = sum_equal / n;
    p.guest_usage_lowest = sum_lowest / n;
    points[ti] = p;
  });
  return points;
}

// ---------------------------------------------------------------------------
// Figure 4 and Table 1

Fig4Config::Fig4Config() {
  base.scheduler = os::SchedulerParams::solaris_ts();
  base.memory = os::MemoryParams::solaris_384mb();
}

std::vector<Fig4Cell> run_fig4(const Fig4Config& config) {
  config.base.validate();
  const auto hosts = workload::musbus_workloads();
  const auto guests = workload::spec_cpu2000_apps();
  struct Task {
    std::size_t h;
    std::size_t g;
    int nice;
  };
  std::vector<Task> tasks;
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    for (std::size_t g = 0; g < guests.size(); ++g) {
      for (int nice : {0, 19}) tasks.push_back({h, g, nice});
    }
  }
  std::vector<Fig4Cell> cells(tasks.size());
  util::parallel_for(tasks.size(), [&](std::size_t ti) {
    const Task& task = tasks[ti];
    const auto& w = hosts[task.h];
    const auto& app = guests[task.g];
    const std::uint64_t run_seed = util::RngStream::derive(
        config.base.seed,
        {kContentionTag, 4, task.h, task.g,
         static_cast<std::uint64_t>(task.nice)});
    const auto host_specs = workload::musbus_processes(w);
    const auto guest_spec = workload::spec_guest(app, task.nice);
    const auto meas =
        measure_contention(config.base, host_specs, guest_spec, run_seed);
    Fig4Cell cell;
    cell.host_workload = std::string(w.name);
    cell.guest_app = std::string(app.name);
    cell.guest_nice = task.nice;
    cell.reduction = meas.reduction_rate();
    cell.thrashing = meas.thrashing;
    cells[ti] = cell;
  });
  return cells;
}

std::vector<Table1Row> run_table1(const ContentionConfig& config) {
  config.validate();
  std::vector<Table1Row> rows;
  for (const auto& app : workload::spec_cpu2000_apps()) {
    Table1Row row;
    row.name = std::string(app.name);
    const std::uint64_t run_seed = util::RngStream::derive(
        config.seed, {kContentionTag, 1, rows.size()});
    row.cpu_usage =
        measure_isolated_usage(config, workload::spec_guest(app), run_seed);
    row.resident_mb = app.resident_mb;
    row.virtual_mb = app.virtual_mb;
    rows.push_back(row);
  }
  for (const auto& w : workload::musbus_workloads()) {
    Table1Row row;
    row.name = std::string(w.name);
    const std::uint64_t run_seed = util::RngStream::derive(
        config.seed, {kContentionTag, 1, rows.size()});
    // Aggregate isolated usage: run the workload's processes together
    // (they are jointly "the host") and measure host CPU usage.
    os::Machine machine(config.scheduler, config.memory, run_seed);
    for (const auto& spec : workload::musbus_processes(w)) {
      machine.spawn(spec);
    }
    machine.run_for(config.warmup);
    const os::CpuTotals before = machine.totals();
    machine.run_for(config.measure);
    row.cpu_usage = os::CpuTotals::host_usage(before, machine.totals());
    row.resident_mb = w.resident_mb;
    row.virtual_mb = w.virtual_mb;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace fgcs::core

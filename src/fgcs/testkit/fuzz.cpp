#include "fgcs/testkit/fuzz.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "fgcs/fault/fault_plan.hpp"
#include "fgcs/query/predicate.hpp"
#include "fgcs/serve/load.hpp"
#include "fgcs/trace/io.hpp"
#include "fgcs/util/cli.hpp"
#include "fgcs/util/error.hpp"
#include "fgcs/util/rng.hpp"

namespace fgcs::testkit {

namespace {

/// "FUZZ": substream tag for mutation draws.
constexpr std::uint64_t kFuzzTag = 0x4655'5A5A;

/// Inputs are capped so pathological growth chains stay cheap.
constexpr std::size_t kMaxInputBytes = 1 << 14;

std::string to_text(const std::uint8_t* data, std::size_t size) {
  return std::string(reinterpret_cast<const char*>(data), size);
}

[[noreturn]] void finding(const std::string& what) {
  // Deliberately NOT IoError/ConfigError: escapes the target's catch
  // blocks and reaches the driver as a crash.
  throw std::logic_error("fuzz finding: " + what);
}

bool traces_identical(const trace::TraceSet& a, const trace::TraceSet& b) {
  if (a.machine_count() != b.machine_count() ||
      a.horizon_start() != b.horizon_start() ||
      a.horizon_end() != b.horizon_end() || a.size() != b.size()) {
    return false;
  }
  const auto ra = a.records();
  const auto rb = b.records();
  for (std::size_t i = 0; i < ra.size(); ++i) {
    if (ra[i].machine != rb[i].machine || ra[i].start != rb[i].start ||
        ra[i].end != rb[i].end || ra[i].cause != rb[i].cause ||
        ra[i].host_cpu != rb[i].host_cpu ||
        ra[i].free_mem_mb != rb[i].free_mem_mb) {
      return false;
    }
  }
  return true;
}

}  // namespace

void fuzz_trace_csv(const std::uint8_t* data, std::size_t size) {
  const std::string text = to_text(data, size);

  // Strict path: IoError is the contract for bad input; success must
  // round-trip exactly through the writer.
  try {
    std::istringstream in(text);
    const trace::TraceSet parsed = trace::read_trace_csv(in, "<fuzz>");
    std::ostringstream out;
    trace::write_trace_csv(parsed, out);
    std::istringstream again(out.str());
    if (!traces_identical(parsed, trace::read_trace_csv(again, "<fuzz2>"))) {
      finding("CSV strict read -> write -> read is not a fixpoint");
    }
  } catch (const IoError&) {
  }

  // Salvage path: never throws, and salvaging its own re-serialization
  // must be clean and lossless.
  std::istringstream in(text);
  const trace::LoadReport report = trace::read_trace_csv_salvage(in, "<fuzz>");
  std::ostringstream out;
  trace::write_trace_csv(report.trace, out);
  std::istringstream again(out.str());
  const trace::LoadReport second =
      trace::read_trace_csv_salvage(again, "<fuzz2>");
  if (!second.clean()) {
    finding("salvaged CSV trace did not re-salvage cleanly");
  }
  if (!traces_identical(report.trace, second.trace)) {
    finding("CSV salvage -> write -> salvage changed the trace");
  }
}

void fuzz_trace_binary(const std::uint8_t* data, std::size_t size) {
  const std::string bytes = to_text(data, size);

  try {
    std::istringstream in(bytes);
    const trace::TraceSet parsed = trace::read_trace_binary(in, "<fuzz>");
    std::ostringstream out;
    trace::write_trace_binary(parsed, out);
    std::istringstream again(out.str());
    if (!traces_identical(parsed,
                          trace::read_trace_binary(again, "<fuzz2>"))) {
      finding("binary strict read -> write -> read is not a fixpoint");
    }
  } catch (const IoError&) {
  }

  std::istringstream in(bytes);
  const trace::LoadReport report =
      trace::read_trace_binary_salvage(in, "<fuzz>");
  std::ostringstream out;
  trace::write_trace_binary(report.trace, out);
  std::istringstream again(out.str());
  const trace::LoadReport second =
      trace::read_trace_binary_salvage(again, "<fuzz2>");
  if (!second.clean()) {
    finding("salvaged binary trace did not re-salvage cleanly");
  }
  if (!traces_identical(report.trace, second.trace)) {
    finding("binary salvage -> write -> salvage changed the trace");
  }
}

void fuzz_fault_plan(const std::uint8_t* data, std::size_t size) {
  const std::string text = to_text(data, size);
  fault::FaultPlan plan;
  try {
    plan = fault::FaultPlan::parse_string(text);
    plan.validate();
  } catch (const ConfigError&) {
    return;  // rejected input: the expected outcome for junk
  }
  // Accepted input: serialization must be a parser fixpoint.
  const std::string written = plan.str();
  fault::FaultPlan reparsed;
  try {
    reparsed = fault::FaultPlan::parse_string(written);
  } catch (const ConfigError& e) {
    finding(std::string("writer emitted an unparseable plan: ") + e.what());
  }
  if (reparsed.str() != written) {
    finding("fault plan write -> parse -> write is not a fixpoint");
  }
}

void fuzz_cli_args(const std::uint8_t* data, std::size_t size) {
  const std::string text = to_text(data, size);
  std::vector<std::string> tokens;
  std::istringstream in(text);
  std::string token;
  while (in >> token) tokens.push_back(token);

  util::CliArgs args;
  try {
    args = util::CliArgs::parse(tokens);
  } catch (const ConfigError&) {
    return;  // malformed option syntax: the documented rejection path
  }
  (void)args.command();
  (void)args.positional();
  // Poke the typed accessors with keys the fuzzer likes to synthesize;
  // ConfigError on a malformed integer is the documented behavior.
  for (const char* key : {"seed", "machines", "days", "out", "fault-plan"}) {
    (void)args.get(key, "");
    (void)args.has_flag(key);
    try {
      (void)args.get_int(key, 0);
    } catch (const ConfigError&) {
    }
  }
}

void fuzz_serve_query(const std::uint8_t* data, std::size_t size) {
  const std::string text = to_text(data, size);

  // The mix sub-grammar alone, fed the first line: ConfigError with a
  // field diagnosis is the contract for junk; an accepted mix must
  // round-trip through str() as a parser fixpoint.
  {
    const std::size_t eol = text.find('\n');
    const std::string first =
        eol == std::string::npos ? text : text.substr(0, eol);
    try {
      const serve::MixSpec mix = serve::MixSpec::parse(first);
      serve::MixSpec reparsed;
      try {
        reparsed = serve::MixSpec::parse(mix.str());
      } catch (const ConfigError& e) {
        finding(std::string("MixSpec::str emitted an unparseable mix: ") +
                e.what());
      }
      if (reparsed.str() != mix.str()) {
        finding("mix spec parse -> str -> parse is not a fixpoint");
      }
    } catch (const ConfigError&) {
    }
  }

  // The full load-spec surface (the bytes behind the CLI's --mix /
  // --machines / --queries arguments and the serve config file).
  serve::LoadSpec spec;
  try {
    spec = serve::LoadSpec::parse(text);
  } catch (const ConfigError&) {
    return;  // line/field-diagnosed rejection: the documented path
  }
  const std::string written = spec.str();
  serve::LoadSpec reparsed;
  try {
    reparsed = serve::LoadSpec::parse(written);
  } catch (const ConfigError& e) {
    finding(std::string("LoadSpec::str emitted an unparseable spec: ") +
            e.what());
  }
  if (reparsed.str() != written) {
    finding("load spec parse -> str -> parse is not a fixpoint");
  }

  // Accepted spec: a bounded generator probe. Every drawn query must
  // respect the spec's own bounds; the draw is random-access so probing
  // scattered indices is cheap regardless of spec.queries.
  const serve::LoadGenerator gen(spec);
  const std::uint64_t probes = std::min<std::uint64_t>(spec.queries, 64);
  for (std::uint64_t i = 0; i < probes; ++i) {
    const std::uint64_t index = (i * 977) % spec.queries;
    const serve::ServeQuery q = gen.query(index);
    if (q.machine >= spec.machines) {
      finding("generated query targets a machine outside the fleet");
    }
    if (!(q.window > sim::SimDuration{})) {
      finding("generated query has a non-positive window");
    }
    const serve::ServeQuery again = gen.query(index);
    if (again.machine != q.machine || again.at != q.at ||
        again.window != q.window) {
      finding("load generator is not deterministic in the query index");
    }
  }
}

void fuzz_query_pred(const std::uint8_t* data, std::size_t size) {
  const std::string text = to_text(data, size);
  query::Predicate pred;
  try {
    pred = query::Predicate::parse(text);
  } catch (const ConfigError&) {
    return;  // diagnosed rejection: the documented path
  }

  // Accepted predicate: str() must be a parser fixpoint.
  const std::string written = pred.str();
  query::Predicate reparsed;
  try {
    reparsed = query::Predicate::parse(written);
  } catch (const ConfigError& e) {
    finding(std::string("Predicate::str emitted an unparseable predicate: ") +
            e.what());
  }
  if (reparsed.str() != written) {
    finding("predicate parse -> str -> parse is not a fixpoint");
  }

  // Eval consistency on a probe grid clustered at the predicate's own
  // boundaries: the reparsed predicate must agree record-for-record, and
  // block-level pruning must never contradict a record-level match (a
  // zone summarizing exactly one matching record may not be prunable).
  const std::uint32_t machine_probes[] = {
      0, 1, pred.machine_lo, pred.machine_hi,
      pred.machine_hi == 0 ? 0 : pred.machine_hi - 1, 0xFFFF'FFFFu};
  const std::int64_t time_probes[] = {
      pred.time_lo_us, pred.time_hi_us, pred.time_lo_us - 1,
      pred.time_hi_us + 1, 0, 86'400'000'000};
  for (const std::uint32_t m : machine_probes) {
    for (const std::int64_t start : time_probes) {
      const std::int64_t end = start + 1'800'000'000;
      for (std::uint8_t cause = 3; cause <= 5; ++cause) {
        const bool hit = pred.matches(m, start, end, cause);
        if (hit != reparsed.matches(m, start, end, cause)) {
          finding("reparsed predicate disagrees with the original");
        }
        if (!hit) continue;
        if (!pred.may_match_machines(m, m)) {
          finding("machine pruning contradicts a record match");
        }
        trace::TraceView::BlockZone zone;
        zone.min_start_us = start;
        zone.max_start_us = start;
        zone.min_end_us = end;
        zone.max_end_us = end;
        zone.cause_mask = static_cast<std::uint8_t>(1u << (cause - 3));
        if (!pred.may_match_zone(zone)) {
          finding("zone pruning contradicts a record match");
        }
      }
    }
  }
}

std::span<const FuzzTargetInfo> fuzz_targets() {
  static constexpr FuzzTargetInfo kTargets[] = {
      {"trace-csv", fuzz_trace_csv, "trace_csv"},
      {"trace-binary", fuzz_trace_binary, "trace_binary"},
      {"fault-plan", fuzz_fault_plan, "fault_plan"},
      {"cli-args", fuzz_cli_args, "cli"},
      {"serve-query", fuzz_serve_query, "serve_query"},
      {"query-pred", fuzz_query_pred, "query_pred"},
  };
  return kTargets;
}

const FuzzTargetInfo* find_fuzz_target(std::string_view name) {
  for (const auto& target : fuzz_targets()) {
    if (name == target.name) return &target;
  }
  return nullptr;
}

std::vector<std::vector<std::uint8_t>> load_corpus(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    throw IoError("fuzz corpus directory missing: " + dir);
  }
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<std::vector<std::uint8_t>> corpus;
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw IoError("cannot read corpus file: " + path.string());
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    corpus.push_back(std::move(bytes));
  }
  if (corpus.empty()) throw IoError("fuzz corpus is empty: " + dir);
  return corpus;
}

namespace {

using Bytes = std::vector<std::uint8_t>;

void op_bit_flip(Bytes& b, util::RngStream& rng) {
  if (b.empty()) return;
  const std::size_t i = rng.uniform_index(b.size());
  b[i] ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
}

void op_overwrite(Bytes& b, util::RngStream& rng) {
  if (b.empty()) return;
  b[rng.uniform_index(b.size())] =
      static_cast<std::uint8_t>(rng.uniform_index(256));
}

void op_insert(Bytes& b, util::RngStream& rng) {
  const std::size_t n = 1 + rng.uniform_index(8);
  const std::size_t at = rng.uniform_index(b.size() + 1);
  Bytes chunk(n);
  for (auto& c : chunk) {
    // Bias toward structure-relevant bytes: digits, separators, newlines.
    static constexpr char kAlphabet[] = "0123456789,=.*-# \n";
    c = rng.bernoulli(0.7)
            ? static_cast<std::uint8_t>(
                  kAlphabet[rng.uniform_index(sizeof(kAlphabet) - 1)])
            : static_cast<std::uint8_t>(rng.uniform_index(256));
  }
  b.insert(b.begin() + static_cast<std::ptrdiff_t>(at), chunk.begin(),
           chunk.end());
}

void op_erase(Bytes& b, util::RngStream& rng) {
  if (b.empty()) return;
  const std::size_t at = rng.uniform_index(b.size());
  const std::size_t n = 1 + rng.uniform_index(std::min<std::size_t>(
                                b.size() - at, 16));
  b.erase(b.begin() + static_cast<std::ptrdiff_t>(at),
          b.begin() + static_cast<std::ptrdiff_t>(at + n));
}

void op_duplicate(Bytes& b, util::RngStream& rng) {
  if (b.empty()) return;
  const std::size_t at = rng.uniform_index(b.size());
  const std::size_t n = 1 + rng.uniform_index(std::min<std::size_t>(
                                b.size() - at, 32));
  Bytes chunk(b.begin() + static_cast<std::ptrdiff_t>(at),
              b.begin() + static_cast<std::ptrdiff_t>(at + n));
  const std::size_t dest = rng.uniform_index(b.size() + 1);
  b.insert(b.begin() + static_cast<std::ptrdiff_t>(dest), chunk.begin(),
           chunk.end());
}

void op_truncate(Bytes& b, util::RngStream& rng) {
  if (b.empty()) return;
  b.resize(rng.uniform_index(b.size()));
}

void op_splice(Bytes& b, const Bytes& other, util::RngStream& rng) {
  if (other.empty()) return;
  const std::size_t keep = b.empty() ? 0 : rng.uniform_index(b.size());
  const std::size_t from = rng.uniform_index(other.size());
  b.resize(keep);
  b.insert(b.end(), other.begin() + static_cast<std::ptrdiff_t>(from),
           other.end());
}

/// Structure-aware: find an ASCII digit run and replace it with a fresh
/// number (possibly huge or negative) — exercises integer/double parsing
/// edges far faster than blind byte noise.
void op_rewrite_number(Bytes& b, util::RngStream& rng) {
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  std::size_t i = 0;
  while (i < b.size()) {
    if (std::isdigit(b[i]) != 0) {
      std::size_t j = i;
      while (j < b.size() && std::isdigit(b[j]) != 0) ++j;
      runs.emplace_back(i, j);
      i = j;
    } else {
      ++i;
    }
  }
  if (runs.empty()) return;
  const auto [lo, hi] = runs[rng.uniform_index(runs.size())];
  std::string fresh;
  switch (rng.uniform_index(4)) {
    case 0: fresh = std::to_string(rng.uniform_int(0, 9)); break;
    case 1: fresh = std::to_string(rng.next_u64()); break;
    case 2: fresh = "-" + std::to_string(rng.uniform_int(0, 1'000'000)); break;
    default:
      fresh = std::to_string(rng.uniform_int(0, 1'000'000)) + "." +
              std::to_string(rng.uniform_int(0, 999));
      break;
  }
  b.erase(b.begin() + static_cast<std::ptrdiff_t>(lo),
          b.begin() + static_cast<std::ptrdiff_t>(hi));
  b.insert(b.begin() + static_cast<std::ptrdiff_t>(lo), fresh.begin(),
           fresh.end());
}

}  // namespace

std::vector<std::uint8_t> mutate_input(const std::vector<std::uint8_t>& base,
                                       const std::vector<std::uint8_t>& other,
                                       std::uint64_t seed,
                                       std::uint64_t iteration) {
  util::RngStream rng(seed, {kFuzzTag, iteration});
  Bytes bytes = base;
  const std::size_t ops = 1 + rng.uniform_index(4);
  for (std::size_t i = 0; i < ops; ++i) {
    switch (rng.uniform_index(8)) {
      case 0: op_bit_flip(bytes, rng); break;
      case 1: op_overwrite(bytes, rng); break;
      case 2: op_insert(bytes, rng); break;
      case 3: op_erase(bytes, rng); break;
      case 4: op_duplicate(bytes, rng); break;
      case 5: op_truncate(bytes, rng); break;
      case 6: op_splice(bytes, other, rng); break;
      default: op_rewrite_number(bytes, rng); break;
    }
    if (bytes.size() > kMaxInputBytes) bytes.resize(kMaxInputBytes);
  }
  return bytes;
}

FuzzRunStats run_fuzz_iterations(
    const FuzzTargetInfo& target,
    std::span<const std::vector<std::uint8_t>> corpus, std::uint64_t seed,
    std::uint64_t iterations) {
  FuzzRunStats stats;
  for (const auto& entry : corpus) {
    target.fn(entry.data(), entry.size());
    ++stats.corpus_entries;
    stats.max_input_bytes = std::max(stats.max_input_bytes,
                                     static_cast<std::uint64_t>(entry.size()));
  }
  const Bytes empty;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    util::RngStream pick(seed, {kFuzzTag, i, 0xBA5E});
    const Bytes& base =
        corpus.empty() ? empty : corpus[pick.uniform_index(corpus.size())];
    const Bytes& other =
        corpus.empty() ? empty : corpus[pick.uniform_index(corpus.size())];
    const Bytes input = mutate_input(base, other, seed, i);
    target.fn(input.data(), input.size());
    ++stats.iterations;
    stats.max_input_bytes = std::max(stats.max_input_bytes,
                                     static_cast<std::uint64_t>(input.size()));
  }
  return stats;
}

}  // namespace fgcs::testkit

// Structure-aware fuzz targets for the parsing surfaces.
//
// Each target is *total* over arbitrary bytes: expected parse failures
// (IoError, ConfigError) are caught inside the target; anything that
// escapes — any other exception, an FGCS_ASSERT, a sanitizer report — is
// a finding. On a successful parse the targets additionally check
// round-trip properties (parse → write → parse must be stable, salvage of
// a salvaged trace must be clean), so the fuzzer hunts semantic
// inconsistencies, not just crashes.
//
// Two drivers share these targets:
//   * libFuzzer entry points when built with Clang and -DFGCS_FUZZ=ON
//     (see tests/fuzz/libfuzzer_entry.cpp);
//   * the deterministic corpus-mutation driver (tests/fuzz/fuzz_driver.cpp)
//     on any toolchain — it replays the checked-in corpus, then runs
//     seeded structure-aware mutations for a bounded iteration count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fgcs::testkit {

/// Trace CSV reader pair (strict + salvage) with round-trip checks.
void fuzz_trace_csv(const std::uint8_t* data, std::size_t size);

/// Trace binary reader pair (strict + salvage) with round-trip checks.
void fuzz_trace_binary(const std::uint8_t* data, std::size_t size);

/// fault::FaultPlan text parser with write/parse idempotence check.
void fuzz_fault_plan(const std::uint8_t* data, std::size_t size);

/// util::CliArgs tokenizer/lookup surface.
void fuzz_cli_args(const std::uint8_t* data, std::size_t size);

/// serve::LoadSpec / serve::MixSpec query-surface parsers with str()
/// fixpoint checks and a bounded LoadGenerator probe on accepted specs.
void fuzz_serve_query(const std::uint8_t* data, std::size_t size);

/// query::Predicate text parser: str() fixpoint, reparse/eval agreement,
/// and zone/machine pruning soundness against matching records.
void fuzz_query_pred(const std::uint8_t* data, std::size_t size);

struct FuzzTargetInfo {
  const char* name;
  void (*fn)(const std::uint8_t* data, std::size_t size);
  /// Corpus directory name under tests/fuzz/corpus/.
  const char* corpus_subdir;
};

/// All registered targets.
std::span<const FuzzTargetInfo> fuzz_targets();

/// Lookup by name; nullptr when unknown.
const FuzzTargetInfo* find_fuzz_target(std::string_view name);

/// Loads every regular file in `dir` (sorted by filename, so corpus order
/// is stable across platforms). Throws IoError when the directory is
/// missing or holds no files — an empty corpus is a harness misconfig.
std::vector<std::vector<std::uint8_t>> load_corpus(const std::string& dir);

/// One structure-aware mutation of `base` (bit flips, splices against
/// `other`, ASCII-number rewrites, truncations...), deterministic in the
/// RNG state. Exposed for the driver and for tests.
std::vector<std::uint8_t> mutate_input(const std::vector<std::uint8_t>& base,
                                       const std::vector<std::uint8_t>& other,
                                       std::uint64_t seed,
                                       std::uint64_t iteration);

struct FuzzRunStats {
  std::uint64_t iterations = 0;       // mutated executions
  std::uint64_t corpus_entries = 0;   // replayed verbatim first
  std::uint64_t max_input_bytes = 0;
};

/// Replays the corpus verbatim, then runs `iterations` seeded mutations
/// through the target. Any escaping exception propagates to the caller
/// (the driver turns it into a crash report with the replay seed).
FuzzRunStats run_fuzz_iterations(
    const FuzzTargetInfo& target,
    std::span<const std::vector<std::uint8_t>> corpus, std::uint64_t seed,
    std::uint64_t iterations);

}  // namespace fgcs::testkit

// The harness's invariant battery.
//
// Every generated scenario, whatever its seed, must satisfy these
// structural laws of the simulation: the five-state timeline tiles the
// horizon, state transitions are legal, trace records are monotone and
// consistent with the timeline, and guest work is conserved by the
// lifecycle accounting. A violation is a bug in the stack (or in the
// invariant), never an unlucky seed.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fgcs/testkit/scenario.hpp"

namespace fgcs::testkit {

/// One failed invariant: which law, and the evidence.
struct InvariantViolation {
  std::string invariant;  // short id, e.g. "timeline-coverage"
  std::string detail;
};

/// Runs the full battery over one scenario outcome. Empty result == pass.
std::vector<InvariantViolation> check_invariants(const Scenario& s,
                                                 const ScenarioOutcome& out);

/// Renders violations one per line for failure reports.
std::string format_violations(std::span<const InvariantViolation> violations);

}  // namespace fgcs::testkit

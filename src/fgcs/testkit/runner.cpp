#include "fgcs/testkit/runner.hpp"

#include <ostream>
#include <sstream>

#include "fgcs/util/rng.hpp"

namespace fgcs::testkit {

namespace {

/// "SWEP": substream tag separating sweep seeds from scenario-internal ones.
constexpr std::uint64_t kSweepTag = 0x5357'4550;

std::string replay_line(std::uint64_t scenario_seed) {
  std::ostringstream out;
  out << "replay: fgcs::testkit::ScenarioRunner().run_one(0x" << std::hex
      << scenario_seed << std::dec << "ULL)";
  return out.str();
}

bool records_equal(const trace::UnavailabilityRecord& a,
                   const trace::UnavailabilityRecord& b) {
  return a.machine == b.machine && a.start == b.start && a.end == b.end &&
         a.cause == b.cause && a.host_cpu == b.host_cpu &&
         a.free_mem_mb == b.free_mem_mb;
}

/// Runs the scenario twice and diffs the observable state bit-for-bit.
std::vector<InvariantViolation> replay_check(const Scenario& s) {
  const ScenarioOutcome first = run_scenario(s);
  const ScenarioOutcome second = run_scenario(s);
  std::vector<InvariantViolation> violations;
  const auto a = first.trace.records();
  const auto b = second.trace.records();
  if (a.size() != b.size()) {
    violations.push_back(
        {"replay-determinism", "re-run produced a different record count"});
    return violations;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!records_equal(a[i], b[i])) {
      std::ostringstream detail;
      detail << "record " << i << " differs between identical runs";
      violations.push_back({"replay-determinism", detail.str()});
      return violations;
    }
  }
  if (first.guests.jobs.size() != second.guests.jobs.size() ||
      first.guests.restarts != second.guests.restarts ||
      first.guests.work_lost != second.guests.work_lost) {
    violations.push_back(
        {"replay-determinism", "guest study differs between identical runs"});
  }
  return violations;
}

}  // namespace

ScenarioRunner::ScenarioRunner(RunnerConfig config) : config_(config) {
  check_ = [this](const Scenario& s) { return default_check(s); };
}

std::vector<InvariantViolation> ScenarioRunner::default_check(
    const Scenario& s) const {
  const ScenarioOutcome out = run_scenario(s);
  return check_invariants(s, out);
}

std::uint64_t ScenarioRunner::scenario_seed_at(int index) const {
  return util::RngStream::derive(
      config_.seed, {kSweepTag, static_cast<std::uint64_t>(index)});
}

std::optional<ScenarioFailure> ScenarioRunner::run_one(
    std::uint64_t scenario_seed) {
  const Scenario scenario = generate_scenario(scenario_seed);
  std::vector<InvariantViolation> violations = check_(scenario);
  if (violations.empty()) return std::nullopt;

  ScenarioFailure failure;
  failure.scenario_seed = scenario_seed;
  failure.scenario = scenario;
  failure.minimized =
      config_.shrink_failures ? shrink(scenario) : scenario;
  failure.violations = std::move(violations);
  failure.replay = replay_line(scenario_seed);
  if (config_.log != nullptr) {
    *config_.log << "testkit: scenario FAILED " << scenario.str() << "\n"
                 << format_violations(failure.violations)
                 << "  " << failure.replay << "\n"
                 << "  minimized: " << failure.minimized.str() << "\n";
  }
  return failure;
}

RunnerReport ScenarioRunner::run() {
  RunnerReport report;
  for (int i = 0; i < config_.scenarios; ++i) {
    const std::uint64_t seed = scenario_seed_at(i);
    if (auto failure = run_one(seed)) {
      report.failures.push_back(std::move(*failure));
    } else if (config_.replay_check_every > 0 &&
               i % config_.replay_check_every == 0) {
      ++report.replay_checks;
      const Scenario s = generate_scenario(seed);
      auto violations = replay_check(s);
      if (!violations.empty()) {
        ScenarioFailure drift;
        drift.scenario_seed = seed;
        drift.scenario = s;
        drift.minimized = s;
        drift.violations = std::move(violations);
        drift.replay = replay_line(seed);
        report.failures.push_back(std::move(drift));
      }
    }
    ++report.scenarios_run;
  }
  return report;
}

Scenario ScenarioRunner::shrink(const Scenario& failing) const {
  int evals = 0;
  auto still_fails = [&](const Scenario& candidate) {
    if (evals >= config_.max_shrink_evals) return false;
    ++evals;
    return !check_(candidate).empty();
  };

  Scenario best = failing;
  bool progressed = true;
  while (progressed && evals < config_.max_shrink_evals) {
    progressed = false;

    // Fleet: jump straight to one machine, then binary-chop.
    for (std::uint32_t target :
         {std::uint32_t{1}, best.testbed.machines / 2}) {
      if (target >= best.testbed.machines || target == 0) continue;
      Scenario candidate = best;
      candidate.testbed.machines = target;
      if (still_fails(candidate)) {
        best = std::move(candidate);
        progressed = true;
        break;
      }
    }

    // Horizon: shortest useful trace is ~2 days (one weekday + weekend
    // boundary), then binary-chop toward it.
    for (int target : {2, best.testbed.days / 2}) {
      if (target >= best.testbed.days || target < 1) continue;
      Scenario candidate = best;
      candidate.testbed.days = target;
      if (still_fails(candidate)) {
        best = std::move(candidate);
        progressed = true;
        break;
      }
    }

    // Lifecycle off entirely.
    if (best.run_lifecycle) {
      Scenario candidate = best;
      candidate.run_lifecycle = false;
      if (still_fails(candidate)) {
        best = std::move(candidate);
        progressed = true;
      }
    }

    // Fault plan: drop one spec at a time.
    for (std::size_t i = 0; i < best.testbed.faults.specs.size(); ++i) {
      Scenario candidate = best;
      candidate.testbed.faults.specs.erase(
          candidate.testbed.faults.specs.begin() +
          static_cast<std::ptrdiff_t>(i));
      if (still_fails(candidate)) {
        best = std::move(candidate);
        progressed = true;
        break;
      }
    }

    // Scripted specs: drop all but the first occurrence time.
    for (std::size_t i = 0; i < best.testbed.faults.specs.size(); ++i) {
      auto& spec = best.testbed.faults.specs[i];
      if (spec.at_hours.size() <= 1) continue;
      Scenario candidate = best;
      candidate.testbed.faults.specs[i].at_hours.resize(1);
      if (still_fails(candidate)) {
        best = std::move(candidate);
        progressed = true;
        break;
      }
    }
  }
  return best;
}

std::string RunnerReport::summary() const {
  std::ostringstream out;
  out << "testkit sweep: " << scenarios_run << " scenario(s), "
      << replay_checks << " replay check(s), " << failures.size()
      << " failure(s)\n";
  for (const auto& f : failures) {
    out << "FAILURE " << f.scenario.str() << "\n"
        << format_violations(f.violations) << "  " << f.replay << "\n"
        << "  minimized: " << f.minimized.str() << "\n";
  }
  return out.str();
}

}  // namespace fgcs::testkit
